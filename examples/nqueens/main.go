// Nqueens: distributed backtracking over a concurrent pool, in the style
// of Finkel & Manber's DIB system, which the paper cites as evidence that
// "the simple forms of concurrent pools [work well] in real applications"
// (they used essentially the linear and random search algorithms).
//
// Each pool element is a partial placement of queens; workers pull a
// partial board, extend it by one row, and push the viable extensions
// back into their local segment. The solution count for N=10 (724) checks
// the run.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pools"
)

const n = 10 // board size; 10-queens has 724 solutions

// state is a partial placement: queens in rows 0..len-1.
type state struct {
	cols [n]int8 // column of the queen in each placed row
	rows int8    // rows placed so far
}

// safe reports whether a queen at (s.rows, col) is unattacked.
func (s state) safe(col int8) bool {
	for r := int8(0); r < s.rows; r++ {
		c := s.cols[r]
		if c == col || c-col == s.rows-r || col-c == s.rows-r {
			return false
		}
	}
	return true
}

func main() {
	const workers = 8
	p, err := pools.New[state](pools.Options{
		Segments: workers,
		Search:   pools.SearchRandom, // DIB used random/linear stealing
		Seed:     1987,               // the year DIB was published
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < workers; i++ {
		p.Handle(i).Register()
	}
	p.Handle(0).Put(state{}) // empty board seeds the search

	var (
		solutions atomic.Int64
		pending   atomic.Int64 // states created but not yet expanded
		expanded  atomic.Int64
	)
	pending.Store(1)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := p.Handle(id)
			for pending.Load() > 0 {
				s, ok := h.Get()
				if !ok {
					continue // transiently empty; termination via pending
				}
				expanded.Add(1)
				children := int64(0)
				for col := int8(0); col < n; col++ {
					if !s.safe(col) {
						continue
					}
					next := s
					next.cols[next.rows] = col
					next.rows++
					if next.rows == n {
						solutions.Add(1)
						continue
					}
					children++
					h.Put(next) // locality: extensions stay local
				}
				pending.Add(children - 1)
			}
			h.Close()
		}(w)
	}
	wg.Wait()

	fmt.Printf("%d-queens: %d solutions (want 724), %d states expanded by %d workers\n",
		n, solutions.Load(), expanded.Load(), workers)
	if solutions.Load() != 724 {
		panic("wrong solution count")
	}
}
