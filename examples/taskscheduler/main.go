// Taskscheduler: the paper's motivating use case — scheduling dynamically
// created tasks. Workers pull tasks from a concurrent pool; processing a
// task may generate new tasks that go back into the worker's local
// segment, preserving locality ("there is no reason to share nodes with
// another process until the local collection has been depleted").
//
// The workload is a synthetic divide-and-conquer computation: each task
// carries an amount of work; tasks above a threshold split into children,
// leaves contribute to a global sum. The result is deterministic, so the
// run checks itself.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pools"
)

// task is a unit of divide-and-conquer work.
type task struct {
	work int
}

// process splits big tasks and returns the leaf contribution of small
// ones.
func process(t task) (children []task, leaf int64) {
	if t.work <= 4 {
		return nil, int64(t.work)
	}
	half := t.work / 2
	return []task{{work: half}, {work: t.work - half}}, 0
}

func main() {
	const workers = 8
	const rootWork = 1_000_000

	p, err := pools.New[task](pools.Options{
		Segments: workers,
		Search:   pools.SearchTree, // fewest remote probes per steal
		Seed:     2026,
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < workers; i++ {
		p.Handle(i).Register()
	}
	p.Handle(0).Put(task{work: rootWork})

	var (
		sum     atomic.Int64
		pending atomic.Int64 // tasks created but not yet fully processed
		tasks   atomic.Int64
	)
	pending.Store(1)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := p.Handle(id)
			for pending.Load() > 0 {
				t, ok := h.Get()
				if !ok {
					continue // transiently empty; termination via pending
				}
				tasks.Add(1)
				children, leaf := process(t)
				sum.Add(leaf)
				pending.Add(int64(len(children)) - 1)
				for _, c := range children {
					h.Put(c) // locality: children go to the local segment
				}
			}
			h.Close()
		}(w)
	}
	wg.Wait()

	fmt.Printf("processed %d tasks across %d workers\n", tasks.Load(), workers)
	fmt.Printf("sum = %d (want %d): %v\n", sum.Load(), int64(rootWork), sum.Load() == int64(rootWork))
}
