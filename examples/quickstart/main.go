// Quickstart: the smallest useful concurrent-pool program. Four workers
// share a pool of integers; each adds to its own segment and removes from
// the pool, stealing from the others when its local segment runs dry.
package main

import (
	"fmt"
	"sync"

	"pools"
)

func main() {
	const workers = 4
	p, err := pools.New[int](pools.Options{
		Segments: workers,
		Search:   pools.SearchLinear,
	})
	if err != nil {
		panic(err)
	}

	// Register every participant up front so that a consumer starting
	// before the first producer's Put does not see a one-process pool.
	for i := 0; i < workers; i++ {
		p.Handle(i).Register()
	}

	var wg sync.WaitGroup
	var consumed sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := p.Handle(id) // this worker's segment
			// Worker 0 produces everything; the rest only consume, so
			// every element they see was stolen.
			if id == 0 {
				for i := 0; i < 1000; i++ {
					h.Put(i)
				}
				h.Close() // done producing: let consumers terminate
				return
			}
			count := 0
			for {
				v, ok := h.Get()
				if !ok {
					// Empty and nobody left to add: drain complete.
					if p.Len() == 0 {
						break
					}
					continue
				}
				consumed.Store(v, id)
				count++
			}
			h.Close()
			fmt.Printf("worker %d consumed %d elements\n", id, count)
		}(w)
	}
	wg.Wait()

	total := 0
	consumed.Range(func(any, any) bool { total++; return true })
	fmt.Printf("total consumed: %d (produced 1000)\n", total)
}
