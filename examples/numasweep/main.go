// Numasweep: emulate a loosely-coupled machine on the real pool by
// injecting busy-wait delays per access (Section 4.3's experiment, wall
// clock edition). As the emulated remote penalty grows, the three search
// algorithms' throughputs converge — the paper's argument that the tree's
// complexity does not pay off on high-latency machines.
package main

import (
	"fmt"
	"sync"
	"time"

	"pools"
	"pools/internal/numa"
)

const (
	workers = 4
	opsPer  = 400
)

// throughput runs a stressed mixed workload and returns ops/second.
func throughput(kind pools.SearchKind, scale time.Duration) float64 {
	p, err := pools.New[int](pools.Options{
		Segments: workers,
		Search:   kind,
		Seed:     7,
		Delay:    numa.Delayer{Model: numa.ButterflyCosts(), Scale: scale},
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < workers; i++ {
		p.Handle(i).Register()
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := p.Handle(id)
			for i := 0; i < opsPer; i++ {
				if i%3 == 0 { // sparse mix: more removes than adds
					h.Put(i)
				} else {
					h.Get()
				}
			}
			h.Close()
		}(w)
	}
	wg.Wait()
	return float64(workers*opsPer) / time.Since(start).Seconds()
}

func main() {
	fmt.Println("search algorithm throughput (ops/s) vs emulated access latency")
	fmt.Println("(delays busy-wait per segment/tree access; see internal/numa)")
	fmt.Printf("%-14s %12s %12s %12s\n", "latency scale", "linear", "random", "tree")
	for _, scale := range []time.Duration{0, 100 * time.Nanosecond, 1 * time.Microsecond} {
		lin := throughput(pools.SearchLinear, scale)
		ran := throughput(pools.SearchRandom, scale)
		tre := throughput(pools.SearchTree, scale)
		fmt.Printf("%-14v %12.0f %12.0f %12.0f\n", scale, lin, ran, tre)
	}
}
