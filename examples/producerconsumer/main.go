// Producerconsumer: the paper's producer/consumer workload on the real
// pool, demonstrating the Section 4.2 placement lesson: spreading
// producers around the segment ring ("balanced") instead of clustering
// them improves steal behaviour. The run prints per-worker steal
// statistics for both arrangements.
package main

import (
	"fmt"
	"runtime"
	"sync"

	"pools"
	"pools/internal/workload"
)

const (
	workers   = 16
	producers = 5
	perProd   = 4000
)

// runArrangement runs the workload with producers at the given positions
// and returns (steals, elements stolen per steal).
func runArrangement(name string, positions []int) {
	p, err := pools.New[int](pools.Options{
		Segments:     workers,
		Search:       pools.SearchLinear,
		CollectStats: true,
	})
	if err != nil {
		panic(err)
	}
	isProducer := map[int]bool{}
	for _, pos := range positions {
		isProducer[pos] = true
	}
	for i := 0; i < workers; i++ {
		p.Handle(i).Register()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := p.Handle(id)
			if isProducer[id] {
				for i := 0; i < perProd; i++ {
					h.Put(i)
					// Yield so producers and consumers interleave even on
					// a single-core host (each paper process had its own
					// processor).
					runtime.Gosched()
				}
				h.Close()
				return
			}
			for {
				if _, ok := h.Get(); !ok && p.Len() == 0 {
					break
				}
				runtime.Gosched()
			}
			h.Close()
		}(w)
	}
	wg.Wait()

	st := p.Stats()
	fmt.Printf("%-12s producers at %v\n", name, positions)
	fmt.Printf("  removes=%d steals=%d (%.1f%% of removes)  elements/steal=%.2f  segments examined/steal=%.2f\n",
		st.Removes, st.Steals, 100*st.StealFraction(),
		st.ElementsStolen.Mean(), st.SegmentsExamined.Mean())
}

func main() {
	fmt.Printf("producer/consumer on a %d-segment pool, %d producers x %d elements\n\n",
		workers, producers, perProd)
	runArrangement("contiguous", workload.ProducerPositions(workers, producers, workload.Contiguous))
	runArrangement("balanced", workload.ProducerPositions(workers, producers, workload.Balanced))
}
