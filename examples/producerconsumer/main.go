// Producerconsumer: the paper's producer/consumer workload on the real
// pool, demonstrating the Section 4.2 placement lesson: spreading
// producers around the segment ring ("balanced") instead of clustering
// them improves steal behaviour, and the batch extension: moving elements
// with PutAll/GetN amortizes one segment lock over the whole burst. The
// run prints per-worker steal statistics for both arrangements and for a
// batched balanced run.
package main

import (
	"fmt"
	"runtime"
	"sync"

	"pools"
	"pools/internal/workload"
)

const (
	workers   = 16
	producers = 5
	perProd   = 4000
)

// runArrangement runs the workload with producers at the given positions.
// With batch > 1, producers add and consumers remove in batches of that
// size via PutAll/GetN instead of one element at a time.
func runArrangement(name string, positions []int, batch int) {
	p, err := pools.New[int](pools.Options{
		Segments:     workers,
		Search:       pools.SearchLinear,
		CollectStats: true,
	})
	if err != nil {
		panic(err)
	}
	isProducer := map[int]bool{}
	for _, pos := range positions {
		isProducer[pos] = true
	}
	for i := 0; i < workers; i++ {
		p.Handle(i).Register()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := p.Handle(id)
			if isProducer[id] {
				buf := make([]int, 0, batch)
				for i := 0; i < perProd; i++ {
					buf = append(buf, i)
					if len(buf) == batch {
						h.PutAll(buf)
						buf = buf[:0]
						// Yield so producers and consumers interleave even
						// on a single-core host (each paper process had
						// its own processor).
						runtime.Gosched()
					}
				}
				h.PutAll(buf)
				h.Close()
				return
			}
			for {
				if out := h.GetN(batch); len(out) == 0 && p.Len() == 0 {
					break
				}
				runtime.Gosched()
			}
			h.Close()
		}(w)
	}
	wg.Wait()

	st := p.Stats()
	fmt.Printf("%-16s producers at %v, batch %d\n", name, positions, batch)
	fmt.Printf("  removes=%d steals=%d (%.1f%% of removes)  elements/steal=%.2f  segments examined/steal=%.2f  pool operations=%d\n",
		st.Removes, st.Steals, 100*st.StealFraction(),
		st.ElementsStolen.Mean(), st.SegmentsExamined.Mean(),
		st.OpCount())
}

func main() {
	fmt.Printf("producer/consumer on a %d-segment pool, %d producers x %d elements\n\n",
		workers, producers, perProd)
	runArrangement("contiguous", workload.ProducerPositions(workers, producers, workload.Contiguous), 1)
	runArrangement("balanced", workload.ProducerPositions(workers, producers, workload.Balanced), 1)
	runArrangement("balanced+batch32", workload.ProducerPositions(workers, producers, workload.Balanced), 32)
}
