# Local dev and CI run the identical commands: .github/workflows/ci.yml
# invokes these targets, so a green `make ci` locally means a green CI run.

GO ?= go

.PHONY: build test race fuzz-smoke bench-smoke vet ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDequeScript -fuzztime=10s ./internal/segment
	$(GO) test -run='^$$' -fuzz=FuzzBoardScript -fuzztime=10s ./internal/ttt

bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

ci: build vet test race fuzz-smoke bench-smoke
