# Local dev and CI run the identical commands: .github/workflows/ci.yml
# invokes these targets, so a green `make ci` locally means a green CI run.

GO ?= go
# Coverage gate: total statement coverage must not fall below this floor
# (baseline was 87.9% when the gate was introduced).
COVER_FLOOR ?= 85.0

.PHONY: build test race fuzz-smoke bench-smoke vet lint stress cover policy-smoke docs-check bench-check bench-baseline trace-smoke introspect-smoke chaos-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet: staticcheck, plus fieldalignment in
# advisory mode (the hot structs — OwnerDeque, Adaptive, Membership —
# deliberately order fields by cache-line contract, not minimal padding,
# so its suggestions inform rather than gate; the layout tests are the
# binding check). Both binaries are optional: CI installs them, local
# runs without them print a skip note instead of fetching anything.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipped (CI installs it)"; \
	fi
	@if command -v fieldalignment >/dev/null 2>&1; then \
		echo "lint: fieldalignment (advisory, does not fail the build)"; \
		fieldalignment ./... || true; \
	else \
		echo "lint: fieldalignment not installed; skipped (CI installs it)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Deque/steal stress: the raced concurrency suites (owner-path deque,
# steal, churn, kill/revive, conservation) repeated STRESS_COUNT times
# at several GOMAXPROCS shapes. The shape sweep matters more than the
# core count of the machine running it: GOMAXPROCS above the physical
# cores forces preemption inside the lock-free owner/thief windows that
# a matched count rarely interleaves.
STRESS_COUNT ?= 20
STRESS_PROCS ?= 2 8 32
STRESS_RUN ?= Steal|Churn|Concurrent|Kill|Revive|Owner|Fallback

stress:
	@for procs in $(STRESS_PROCS); do \
		echo "== stress: GOMAXPROCS=$$procs -race -count=$(STRESS_COUNT) =="; \
		GOMAXPROCS=$$procs $(GO) test -race -count=$(STRESS_COUNT) -run '$(STRESS_RUN)' ./internal/segment ./internal/core || exit 1; \
	done

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDequeScript -fuzztime=10s ./internal/segment
	$(GO) test -run='^$$' -fuzz=FuzzEngineSearch -fuzztime=10s ./internal/engine
	$(GO) test -run='^$$' -fuzz=FuzzBoardScript -fuzztime=10s ./internal/ttt
	$(GO) test -run='^$$' -fuzz=FuzzMembership -fuzztime=10s ./internal/core

bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out > cover.txt
	awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { found = 1; sub("%","",$$3); pct = $$3 + 0 } \
		 END { \
		   if (!found) { print "coverage gate: no total: line in cover.txt"; exit 1 } \
		   if (pct < floor) { printf "coverage %.1f%% is below the %.1f%% gate\n", pct, floor; exit 1 } \
		   printf "coverage %.1f%% (gate %.1f%%)\n", pct, floor }' cover.txt

policy-smoke:
	$(GO) run ./cmd/poolbench -exp policy -trials 1 -ops 1000 -csv > /dev/null
	$(GO) run ./cmd/poolbench -exp hier -trials 1 -ops 1000 -csv > /dev/null

# Benchmark-regression gate: rerun the bench suite and compare per-
# benchmark ns/op against the committed baseline via the geomean rule
# (internal/tools/benchdiff; a geomean regression beyond BENCH_THRESHOLD
# percent fails). The gate is the geomean over the suite, smoothed by
# -count=4, and only benchmarks whose baseline is >= BENCH_MIN_NS gate:
# at -benchtime=1x a sub-100µs benchmark times a handful of operations —
# timer noise, not signal — and would flap the geomean (such rows are
# still printed). The baseline is machine-shaped: after an intentional
# performance change — or when CI runners drift from the machine that
# recorded it — run `make bench-baseline` in the checking environment and
# commit the new BENCH_BASELINE.json.
BENCH_THRESHOLD ?= 15
BENCH_MIN_NS ?= 100000

# Per-cpu scaling sweep appended to the main suite: the hot-path and
# contended benchmarks rerun at each -cpu shape, and benchdiff's
# -keep-cpu keeps their -N suffixes distinct (for every other benchmark
# the suffix is runner shape and is stripped). The per-cpu entries are
# ns-scale, far below BENCH_MIN_NS, so they are recorded and reported
# but never gate the geomean — scaling-shape noise cannot flap CI.
BENCH_CPUS ?= 1,2,4,8,16,32
BENCH_SCALING ?= ^(BenchmarkGetHotPath|BenchmarkPoolContended)$$
BENCH_KEEP_CPU ?= ^Benchmark(GetHotPath|PoolContended)(-|/)

bench-check:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -count=4 . > bench.out || (cat bench.out; exit 1)
	$(GO) test -run='^$$' -bench='$(BENCH_SCALING)' -benchtime=1x -count=4 -cpu=$(BENCH_CPUS) . >> bench.out || (cat bench.out; exit 1)
	$(GO) run ./internal/tools/benchdiff -baseline BENCH_BASELINE.json -threshold $(BENCH_THRESHOLD) -min-ns $(BENCH_MIN_NS) -keep-cpu '$(BENCH_KEEP_CPU)' bench.out

bench-baseline:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -count=4 . > bench.out || (cat bench.out; exit 1)
	$(GO) test -run='^$$' -bench='$(BENCH_SCALING)' -benchtime=1x -count=4 -cpu=$(BENCH_CPUS) . >> bench.out || (cat bench.out; exit 1)
	$(GO) run ./internal/tools/benchdiff -baseline BENCH_BASELINE.json -keep-cpu '$(BENCH_KEEP_CPU)' -update bench.out

# Documentation gate: the handbooks exist and are linked from README,
# every exported identifier in the policy/numa packages carries a doc
# comment (their godoc doubles as the paper-section cross-reference), and
# the Go code fences in the docs still compile (internal/docexamples
# mirrors them under the docsexamples build tag).
docs-check:
	test -f docs/ARCHITECTURE.md
	test -f docs/EXPERIMENTS.md
	test -f docs/WORKLOADS.md
	test -f docs/OBSERVABILITY.md
	grep -q "docs/ARCHITECTURE.md" README.md
	grep -q "docs/EXPERIMENTS.md" README.md
	grep -q "docs/WORKLOADS.md" README.md
	grep -q "docs/OBSERVABILITY.md" README.md
	grep -q "Membership epochs" docs/ARCHITECTURE.md
	grep -q "The owner path" docs/ARCHITECTURE.md
	grep -q "claim-then-validate" docs/ARCHITECTURE.md
	grep -q "false-sharing audit" docs/ARCHITECTURE.md
	grep -q '`chaos`' docs/EXPERIMENTS.md
	grep -q "workload.Churn" docs/WORKLOADS.md
	grep -q "member_leave" docs/OBSERVABILITY.md
	$(GO) run ./internal/tools/doclint ./internal/policy ./internal/numa ./internal/engine ./internal/workload ./internal/trace ./internal/introspect
	$(GO) build -tags docsexamples ./internal/docexamples

# Flight-recorder smoke: a seeded poolbench -trace dump must validate
# against the Chrome trace-event schema (internal/tools/tracecheck), and
# the sim's golden-trace test must agree byte-for-byte with the committed
# export (internal/sim/testdata/golden_trace.json).
trace-smoke:
	$(GO) run ./cmd/poolbench -trace trace-smoke.json -ops 2000 -procs 8 > /dev/null
	$(GO) run ./internal/tools/tracecheck trace-smoke.json
	rm -f trace-smoke.json
	$(GO) test -run 'TestGoldenChromeTrace|TestGoldenChromeChaosTrace|TestEventTimelineContent|TestGoldenRuns' -count=1 ./internal/sim

# Introspection smoke: boot a live run on an ephemeral port, scrape the
# printed address, and hit every endpoint the flag promises (pprof,
# expvar poolstats, /stats, /trace).
introspect-smoke:
	@rm -f introspect-smoke.out
	@$(GO) run ./cmd/poolbench -debug-addr 127.0.0.1:0 -serve 8s -ops 100000 -procs 8 > introspect-smoke.out & \
	for i in $$(seq 1 50); do grep -q 'introspection: http://' introspect-smoke.out 2>/dev/null && break; sleep 0.2; done; \
	ADDR=$$(grep -o 'http://[0-9.:]*' introspect-smoke.out | head -1); \
	test -n "$$ADDR" || { echo "introspect-smoke: server never printed its address"; cat introspect-smoke.out; exit 1; }; \
	set -e; \
	curl -sf $$ADDR/stats | grep -q 'ops='; \
	curl -sf $$ADDR/debug/vars | grep -q 'poolstats'; \
	curl -sf $$ADDR/debug/pprof/ > /dev/null; \
	curl -sf "$$ADDR/trace?handle=0" | grep -q 'traceEvents'; \
	echo "introspect-smoke: all endpoints ok"; \
	wait; rm -f introspect-smoke.out

# Chaos smoke: a short seeded failure-injection sweep must run end to
# end and report recovery in its greppable footer (the full experiment
# is `-exp chaos`; see docs/EXPERIMENTS.md).
chaos-smoke:
	$(GO) run ./cmd/poolbench -exp chaos -trials 1 -ops 2000 > chaos-smoke.out || (cat chaos-smoke.out; exit 1)
	grep -q 'recovered ' chaos-smoke.out
	rm -f chaos-smoke.out

ci: build vet lint test race stress fuzz-smoke bench-smoke cover policy-smoke docs-check trace-smoke introspect-smoke chaos-smoke bench-check
