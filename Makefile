# Local dev and CI run the identical commands: .github/workflows/ci.yml
# invokes these targets, so a green `make ci` locally means a green CI run.

GO ?= go
# Coverage gate: total statement coverage must not fall below this floor
# (baseline was 87.9% when the gate was introduced).
COVER_FLOOR ?= 85.0

.PHONY: build test race fuzz-smoke bench-smoke vet cover policy-smoke docs-check bench-check bench-baseline ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDequeScript -fuzztime=10s ./internal/segment
	$(GO) test -run='^$$' -fuzz=FuzzEngineSearch -fuzztime=10s ./internal/engine
	$(GO) test -run='^$$' -fuzz=FuzzBoardScript -fuzztime=10s ./internal/ttt

bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out > cover.txt
	awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { found = 1; sub("%","",$$3); pct = $$3 + 0 } \
		 END { \
		   if (!found) { print "coverage gate: no total: line in cover.txt"; exit 1 } \
		   if (pct < floor) { printf "coverage %.1f%% is below the %.1f%% gate\n", pct, floor; exit 1 } \
		   printf "coverage %.1f%% (gate %.1f%%)\n", pct, floor }' cover.txt

policy-smoke:
	$(GO) run ./cmd/poolbench -exp policy -trials 1 -ops 1000 -csv > /dev/null
	$(GO) run ./cmd/poolbench -exp hier -trials 1 -ops 1000 -csv > /dev/null

# Benchmark-regression gate: rerun the bench suite and compare per-
# benchmark ns/op against the committed baseline via the geomean rule
# (internal/tools/benchdiff; a geomean regression beyond BENCH_THRESHOLD
# percent fails). The gate is the geomean over the suite, smoothed by
# -count=4, and only benchmarks whose baseline is >= BENCH_MIN_NS gate:
# at -benchtime=1x a sub-100µs benchmark times a handful of operations —
# timer noise, not signal — and would flap the geomean (such rows are
# still printed). The baseline is machine-shaped: after an intentional
# performance change — or when CI runners drift from the machine that
# recorded it — run `make bench-baseline` in the checking environment and
# commit the new BENCH_BASELINE.json.
BENCH_THRESHOLD ?= 15
BENCH_MIN_NS ?= 100000

bench-check:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -count=4 . > bench.out || (cat bench.out; exit 1)
	$(GO) run ./internal/tools/benchdiff -baseline BENCH_BASELINE.json -threshold $(BENCH_THRESHOLD) -min-ns $(BENCH_MIN_NS) bench.out

bench-baseline:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -count=4 . > bench.out || (cat bench.out; exit 1)
	$(GO) run ./internal/tools/benchdiff -baseline BENCH_BASELINE.json -update bench.out

# Documentation gate: the handbooks exist and are linked from README,
# every exported identifier in the policy/numa packages carries a doc
# comment (their godoc doubles as the paper-section cross-reference), and
# the Go code fences in the docs still compile (internal/docexamples
# mirrors them under the docsexamples build tag).
docs-check:
	test -f docs/ARCHITECTURE.md
	test -f docs/EXPERIMENTS.md
	test -f docs/WORKLOADS.md
	grep -q "docs/ARCHITECTURE.md" README.md
	grep -q "docs/EXPERIMENTS.md" README.md
	grep -q "docs/WORKLOADS.md" README.md
	$(GO) run ./internal/tools/doclint ./internal/policy ./internal/numa ./internal/engine ./internal/workload
	$(GO) build -tags docsexamples ./internal/docexamples

ci: build vet test race fuzz-smoke bench-smoke cover policy-smoke docs-check bench-check
