package pools_test

// Hot-path allocation guarantees: the local Put/Get fast path — and the
// steal path once its reusable buffers are warm — performs zero heap
// allocations per operation, across the configurations that decorate the
// hot path (stats + topology accounting, Director placements, keyed
// buckets). BenchmarkGetHotPath in bench_test.go reports the same paths
// under the benchmark gate; these tests make the 0 allocs/op contract a
// hard failure instead of a number to eyeball.

import (
	"testing"

	"pools"
	"pools/internal/metrics"
)

// requireZeroAllocs runs f through testing.AllocsPerRun and fails on any
// per-call allocation.
func requireZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	f() // warm caches and reusable buffers outside the measurement
	if avg := testing.AllocsPerRun(200, f); avg != 0 {
		t.Errorf("%s: %.2f allocs/op, want 0", name, avg)
	}
}

func TestHotPathAllocFree(t *testing.T) {
	// The default pool: plain local Put/Get.
	p, err := pools.New[int](pools.Options{Segments: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := p.Handle(0)
	requireZeroAllocs(t, "core local Put/Get", func() {
		h.Put(1)
		if _, ok := h.Get(); !ok {
			t.Fatal("local Get missed")
		}
	})

	// Stats and topology accounting on: the probe classification uses the
	// precomputed masks, not per-probe interface calls.
	ps, err := pools.New[int](pools.Options{
		Segments: 4, CollectStats: true, Topology: pools.ClusterTopology{Size: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := ps.Handle(0)
	requireZeroAllocs(t, "core stats+topology Put/Get", func() {
		hs.Put(1)
		hs.Get()
	})
	// Every stats-on operation also lands in the per-op latency histogram
	// (three atomic adds into a fixed bucket array — covered by the 0
	// allocs/op assertion above); confirm the recordings are visible on
	// the merged pool stats.
	if st := ps.Stats(); st.OpLat.N() == 0 {
		t.Error("stats-on pool recorded no per-op latencies")
	}
	// And the histogram itself, bare: Record must stay allocation-free at
	// any magnitude, including the saturating top bucket.
	var hist metrics.LatencyHist
	v := int64(1)
	requireZeroAllocs(t, "LatencyHist.Record", func() {
		hist.Record(v)
		v <<= 1
	})

	// A Director placement probes sizes through the engine's cached
	// closure: no per-Put closure allocation.
	pd, err := pools.New[int](pools.Options{
		Segments: 4, Policies: pools.PolicySet{Place: pools.EmptiestPlacement{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	hd := pd.Handle(0)
	requireZeroAllocs(t, "core director Put/Get", func() {
		hd.Put(1)
		for {
			if _, ok := hd.Get(); !ok {
				break
			}
		}
	})

	// The steal path: the victim's share is reserved into the handle's
	// reusable buffer, so a warm Get-with-steal does not allocate either.
	pv, err := pools.New[int](pools.Options{Segments: 4})
	if err != nil {
		t.Fatal(err)
	}
	victim, thief := pv.Handle(1), pv.Handle(0)
	for i := 0; i < 1<<14; i++ {
		victim.Put(i)
	}
	thief.Get() // warm the steal buffer
	requireZeroAllocs(t, "core steal Get", func() {
		if _, ok := thief.Get(); !ok {
			t.Fatal("steal Get missed")
		}
	})

	// Flight recorder on: Record is a clock read, a mutex, and an array
	// store into the preallocated ring — the traced hot path keeps the 0
	// allocs/op contract too (the tracing-off side of the contract is
	// every other case in this test, all built with TraceBuf 0).
	pt, err := pools.New[int](pools.Options{
		Segments: 4, CollectStats: true, Topology: pools.ClusterTopology{Size: 2},
		TraceBuf: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	ht := pt.Handle(0)
	requireZeroAllocs(t, "core traced Put/Get", func() {
		ht.Put(1)
		if _, ok := ht.Get(); !ok {
			t.Fatal("traced Get missed")
		}
	})
	if tl := pt.Tracer(0).Timeline(); len(tl.Events) == 0 {
		t.Error("traced pool recorded no events")
	}

	// Keyed local Put/Get, including the drain-to-empty cycle: the spare
	// bucket cache keeps a hot class from allocating a fresh bucket every
	// time it empties and refills.
	kp, err := pools.NewKeyed[string, int](pools.KeyedOptions{Segments: 4})
	if err != nil {
		t.Fatal(err)
	}
	kh := kp.Handle(0)
	requireZeroAllocs(t, "keyed local Put/Get", func() {
		kh.Put("hot", 1)
		if _, ok := kh.Get("hot"); !ok {
			t.Fatal("keyed Get missed")
		}
	})
}
