package core

import (
	"sync"
	"testing"

	"pools/internal/numa"
	"pools/internal/policy"
	"pools/internal/search"
)

// TestPerHandleControllersIndependent drives two consumer handles with
// opposite steal pressure on a real pool and checks their controllers
// converge to different fractions — the property the pool-wide adaptive
// set cannot have.
func TestPerHandleControllersIndependent(t *testing.T) {
	set, err := policy.Named("per-handle")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New[int](Options{Segments: 3, Policies: set, Search: search.Linear})
	if err != nil {
		t.Fatal(err)
	}
	producer := p.Handle(2)
	thief := p.Handle(0)   // always steals: its segment is never fed
	local := p.Handle(1)   // always removes locally
	for _, h := range p.handles {
		h.Register()
	}
	for i := 0; i < 400; i++ {
		// The local handle's put/get pair completes before the thief
		// searches, so the thief's linear walk only ever finds the
		// producer's segment and every thief remove is a steal.
		local.Put(i)
		if _, ok := local.Get(); !ok {
			t.Fatalf("local Get %d failed with elements available", i)
		}
		producer.Put(i)
		if _, ok := thief.Get(); !ok {
			t.Fatalf("thief Get %d failed with elements available", i)
		}
	}
	tf := thief.Controller().StealFraction()
	lf := local.Controller().StealFraction()
	if tf <= lf {
		t.Fatalf("thief fraction %v <= local fraction %v: controllers are not independent", tf, lf)
	}
	if tf <= 0.5 {
		t.Fatalf("thief fraction %v did not rise under sustained stealing", tf)
	}
	if lf >= 0.5 {
		t.Fatalf("local fraction %v did not decay under pure local removes", lf)
	}
	if producer.Controller() == thief.Controller() {
		t.Fatal("two handles share one controller under the per-handle set")
	}
	if thief.BatchSize(4) < 4 {
		t.Fatalf("BatchSize(4) = %d, want >= 4", thief.BatchSize(4))
	}
}

// TestLocalityOrderOnRealPool checks the real pool runs a cost-ranked
// searcher: with victims in the near and the far cluster, the steal takes
// the near one even though the far one is closer in ring distance.
func TestLocalityOrderOnRealPool(t *testing.T) {
	model := numa.ButterflyCosts().WithTopology(numa.Clusters{Size: 4}).WithExtraDelay(100)
	p, err := New[int](Options{
		Segments: 8,
		Policies: policy.Set{Order: policy.LocalityOrder{Model: model}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Consumer owns segment 1 (cluster {0..3}). Segment 4 is one ring hop
	// beyond 3 but in the far cluster; segment 3 is in-cluster.
	p.Handle(4).PutAll(make([]int, 10))
	p.Handle(3).PutAll(make([]int, 10))
	consumer := p.Handle(1)
	for i := range p.handles {
		p.Handle(i).Register()
	}
	if _, ok := consumer.Get(); !ok {
		t.Fatal("Get failed with 20 elements pooled")
	}
	if got := p.SegmentLen(3); got != 5 {
		t.Fatalf("in-cluster victim left with %d elements, want 5 (steal-half took the near victim)", got)
	}
	if got := p.SegmentLen(4); got != 10 {
		t.Fatalf("far victim lost elements (left %d), want untouched 10", got)
	}
}

// TestEmptiestPlacementOnRealPool checks Put and PutAll land on the
// emptiest segment when the pool runs the gift-to-emptiest placement.
func TestEmptiestPlacementOnRealPool(t *testing.T) {
	p, err := New[int](Options{
		Segments: 4,
		Policies: policy.Set{Place: policy.GiftToEmptiest{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Handle(0).PutAll(make([]int, 6)) // all segments empty: stays local
	if got := p.SegmentLen(0); got != 6 {
		t.Fatalf("first batch left %d elements on segment 0, want 6 (all-empty tie keeps local)", got)
	}
	p.Handle(0).Put(7) // segments 1..3 empty: 1 is the nearest emptiest
	if got := p.SegmentLen(1); got != 1 {
		t.Fatalf("single add landed elsewhere (segment 1 holds %d), want directed to the emptiest", got)
	}
	p.Handle(1).PutAll(make([]int, 3)) // 2 and 3 empty: 2 is nearest
	if got := p.SegmentLen(2); got != 3 {
		t.Fatalf("batch landed elsewhere (segment 2 holds %d), want 3", got)
	}
	if p.Len() != 10 {
		t.Fatalf("Len = %d, want 10", p.Len())
	}
}

// TestEmptiestPlacementUnderConcurrentMutation races four producers
// placing via gift-to-emptiest against four consumers; the race detector
// guards the probe path, and conservation plus a balance check validate
// the behavior. (Probed sizes may be stale by the time the add lands —
// the policy is best-effort by design — but every element must still be
// accounted for.)
func TestEmptiestPlacementUnderConcurrentMutation(t *testing.T) {
	const segs = 8
	const perWorker = 300
	p, err := New[int](Options{
		Segments: segs,
		Policies: policy.Set{Place: policy.GiftToEmptiest{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < segs; i++ {
		p.Handle(i).Register()
	}
	var wg sync.WaitGroup
	var consumed [4]int
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			h := p.Handle(w)
			for i := 0; i < perWorker; i++ {
				if i%3 == 0 {
					h.PutAll([]int{i, i + 1})
				} else {
					h.Put(i)
				}
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			h := p.Handle(4 + w)
			for i := 0; i < perWorker/2; i++ {
				if _, ok := h.Get(); ok {
					consumed[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	// Per producer: i%3==0 fires 100 times (PutAll of 2), the other 200
	// iterations Put 1 — 400 elements each, 1600 total.
	wantAdded := 4 * 400
	got := p.Len()
	total := got
	for w := range consumed {
		total += consumed[w]
	}
	if total != wantAdded {
		t.Fatalf("conservation violated: %d pooled + consumed, want %d", total, wantAdded)
	}
}
