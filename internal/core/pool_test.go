package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"pools/internal/rng"
	"pools/internal/search"
)

func newTestPool(t *testing.T, opts Options) *Pool[int] {
	t.Helper()
	p, err := New[int](opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	cases := []Options{
		{Segments: 0},
		{Segments: -1},
		{Segments: 4, Search: search.Kind(9)},
		{Segments: 4, SegmentCap: -1},
	}
	for i, o := range cases {
		if _, err := New[int](o); !errors.Is(err, ErrBadOptions) {
			t.Errorf("case %d: err = %v, want ErrBadOptions", i, err)
		}
	}
}

func TestDefaultSearchIsLinear(t *testing.T) {
	p := newTestPool(t, Options{Segments: 4})
	if k := p.handles[0].eng.Searcher().Kind(); k != search.Linear {
		t.Fatalf("default search = %v, want linear", k)
	}
}

func TestStealPolicyString(t *testing.T) {
	if StealHalf.String() != "steal-half" || StealOne.String() != "steal-one" {
		t.Fatal("StealPolicy names wrong")
	}
}

func TestPutGetLocal(t *testing.T) {
	for _, kind := range search.Kinds() {
		p := newTestPool(t, Options{Segments: 4, Search: kind})
		h := p.Handle(0)
		h.Put(42)
		h.Put(43)
		if p.Len() != 2 {
			t.Fatalf("%v: Len = %d", kind, p.Len())
		}
		v, ok := h.Get()
		if !ok || v != 43 {
			t.Fatalf("%v: Get = (%d,%v)", kind, v, ok)
		}
		v, ok = h.Get()
		if !ok || v != 42 {
			t.Fatalf("%v: Get = (%d,%v)", kind, v, ok)
		}
	}
}

func TestGetStealsFromRemoteSegment(t *testing.T) {
	for _, kind := range search.Kinds() {
		p := newTestPool(t, Options{Segments: 8, Search: kind, CollectStats: true})
		producer := p.Handle(5)
		for i := 0; i < 10; i++ {
			producer.Put(i)
		}
		consumer := p.Handle(0)
		v, ok := consumer.Get()
		if !ok {
			t.Fatalf("%v: Get failed with elements present", kind)
		}
		if v < 0 || v > 9 {
			t.Fatalf("%v: Get returned unknown element %d", kind, v)
		}
		st := consumer.Stats()
		if st.Steals != 1 {
			t.Fatalf("%v: Steals = %d, want 1", kind, st.Steals)
		}
		if st.ElementsStolen.Mean() != 5 {
			t.Fatalf("%v: stole %v elements, want 5", kind, st.ElementsStolen.Mean())
		}
		// Half the victim's elements moved to the consumer's segment
		// (one was consumed).
		if got := p.SegmentLen(0); got != 4 {
			t.Fatalf("%v: consumer segment has %d, want 4", kind, got)
		}
		if got := p.SegmentLen(5); got != 5 {
			t.Fatalf("%v: victim segment has %d, want 5", kind, got)
		}
	}
}

func TestStealOnePolicy(t *testing.T) {
	p := newTestPool(t, Options{Segments: 4, Steal: StealOne, CollectStats: true})
	producer := p.Handle(1)
	for i := 0; i < 10; i++ {
		producer.Put(i)
	}
	consumer := p.Handle(0)
	if _, ok := consumer.Get(); !ok {
		t.Fatal("Get failed")
	}
	if got := p.SegmentLen(1); got != 9 {
		t.Fatalf("victim has %d, want 9 under steal-one", got)
	}
	if got := p.SegmentLen(0); got != 0 {
		t.Fatalf("consumer segment has %d, want 0 under steal-one", got)
	}
}

func TestGetAbortsWhenEmptyAndAlone(t *testing.T) {
	p := newTestPool(t, Options{Segments: 4, CollectStats: true})
	h := p.Handle(0)
	if _, ok := h.Get(); ok {
		t.Fatal("Get on empty pool with a single participant should abort")
	}
	if st := h.Stats(); st.Aborts != 1 {
		t.Fatalf("Aborts = %d, want 1", st.Aborts)
	}
}

func TestGetAfterPoolClose(t *testing.T) {
	p := newTestPool(t, Options{Segments: 2})
	h := p.Handle(0)
	h.Put(1)
	p.Close()
	if !p.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if _, ok := h.Get(); ok {
		t.Fatal("Get should fail on closed pool")
	}
}

func TestHandleClose(t *testing.T) {
	p := newTestPool(t, Options{Segments: 2})
	h := p.Handle(0)
	h.Put(1)
	h.Close()
	if !h.Closed() {
		t.Fatal("Closed() = false")
	}
	if _, ok := h.Get(); ok {
		t.Fatal("Get on closed handle should fail")
	}
	h.Close() // idempotent
	if got := p.open.Load(); got != 0 {
		t.Fatalf("open = %d after close, want 0", got)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	p := newTestPool(t, Options{Segments: 2})
	h := p.Handle(0)
	h.Register()
	h.Register()
	h.Put(1)
	if got := p.open.Load(); got != 1 {
		t.Fatalf("open = %d, want 1", got)
	}
}

func TestSeedEvenlyAndDrain(t *testing.T) {
	p := newTestPool(t, Options{Segments: 4})
	items := make([]int, 10)
	for i := range items {
		items[i] = i
	}
	p.SeedEvenly(items)
	if p.Len() != 10 {
		t.Fatalf("Len = %d", p.Len())
	}
	// Round-robin: segments get 3,3,2,2.
	want := []int{3, 3, 2, 2}
	for i, w := range want {
		if got := p.SegmentLen(i); got != w {
			t.Errorf("segment %d has %d, want %d", i, got, w)
		}
	}
	got := p.Drain()
	if len(got) != 10 || p.Len() != 0 {
		t.Fatalf("Drain returned %d, Len now %d", len(got), p.Len())
	}
	seen := map[int]bool{}
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatal("Drain lost elements")
	}
}

func TestTryPutRespectsCapAndSpills(t *testing.T) {
	p := newTestPool(t, Options{Segments: 3, SegmentCap: 2})
	h := p.Handle(0)
	for i := 0; i < 6; i++ {
		if !h.TryPut(i) {
			t.Fatalf("TryPut %d failed with space available", i)
		}
	}
	if !h.TryPut(99) == false {
		t.Fatal("TryPut should fail when all segments are full")
	}
	for i := 0; i < 3; i++ {
		if got := p.SegmentLen(i); got != 2 {
			t.Fatalf("segment %d has %d, want 2", i, got)
		}
	}
}

func TestTryPutUncappedAlwaysLocal(t *testing.T) {
	p := newTestPool(t, Options{Segments: 3})
	h := p.Handle(1)
	for i := 0; i < 100; i++ {
		if !h.TryPut(i) {
			t.Fatal("uncapped TryPut failed")
		}
	}
	if got := p.SegmentLen(1); got != 100 {
		t.Fatalf("segment 1 has %d, want 100", got)
	}
}

func TestTryGetLocalDoesNotSearch(t *testing.T) {
	p := newTestPool(t, Options{Segments: 2})
	p.Handle(1).Put(7)
	if _, ok := p.Handle(0).TryGetLocal(); ok {
		t.Fatal("TryGetLocal should not steal")
	}
	if v, ok := p.Handle(1).TryGetLocal(); !ok || v != 7 {
		t.Fatalf("TryGetLocal = (%d,%v)", v, ok)
	}
}

// Conservation under heavy concurrency: what goes in comes out exactly once.
func TestConcurrentConservation(t *testing.T) {
	for _, kind := range search.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			const procs = 8
			const perProc = 2000
			p := newTestPool(t, Options{Segments: procs, Search: kind, Seed: 7})
			for i := 0; i < procs; i++ {
				p.Handle(i).Register()
			}
			var got [procs][]int
			var wg sync.WaitGroup
			for i := 0; i < procs; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					h := p.Handle(id)
					x := rng.NewXoshiro256(uint64(id) + 1)
					puts := 0
					for puts < perProc {
						if x.Bool(0.55) {
							h.Put(id*perProc + puts)
							puts++
						} else if v, ok := h.Get(); ok {
							got[id] = append(got[id], v)
						}
					}
					h.Close()
				}(i)
			}
			wg.Wait()
			remaining := p.Drain()
			total := len(remaining)
			seen := map[int]bool{}
			check := func(v int) {
				if seen[v] {
					t.Fatalf("element %d delivered twice", v)
				}
				seen[v] = true
			}
			for _, v := range remaining {
				check(v)
			}
			for i := 0; i < procs; i++ {
				total += len(got[i])
				for _, v := range got[i] {
					check(v)
				}
			}
			if total != procs*perProc {
				t.Fatalf("conservation broken: %d in, %d out", procs*perProc, total)
			}
		})
	}
}

// Producer/consumer: consumers must obtain every element producers add.
func TestProducerConsumerDelivery(t *testing.T) {
	for _, kind := range search.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			const procs = 8
			const producers = 3
			const perProducer = 3000
			p := newTestPool(t, Options{Segments: procs, Search: kind, Seed: 3})
			for i := 0; i < procs; i++ {
				p.Handle(i).Register()
			}
			var delivered atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < procs; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					h := p.Handle(id)
					if id < producers {
						for j := 0; j < perProducer; j++ {
							h.Put(j)
						}
						h.Close() // withdraw so consumers can terminate
						return
					}
					for {
						if _, ok := h.Get(); !ok {
							// Abort: either drained or all remaining
							// participants are searching. Only exit for
							// good once the pool is truly empty and all
							// producers are done; otherwise retry.
							if p.Len() == 0 && p.open.Load() <= int32(procs-producers) {
								h.Close()
								return
							}
							continue
						}
						delivered.Add(1)
					}
				}(i)
			}
			wg.Wait()
			want := int64(producers * perProducer)
			if delivered.Load() != want {
				t.Fatalf("delivered %d, want %d", delivered.Load(), want)
			}
		})
	}
}

func TestTreeLockingVariant(t *testing.T) {
	p := newTestPool(t, Options{Segments: 8, Search: search.Tree, TreeLocking: true})
	producer := p.Handle(7)
	for i := 0; i < 20; i++ {
		producer.Put(i)
	}
	consumer := p.Handle(0)
	for i := 0; i < 20; i++ {
		if _, ok := consumer.Get(); !ok {
			t.Fatalf("Get %d failed", i)
		}
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d, want 0", p.Len())
	}
}

// Property: any single-threaded op sequence conserves elements exactly.
func TestSequentialConservationProperty(t *testing.T) {
	f := func(ops []uint8, segsRaw uint8, kindRaw uint8) bool {
		segs := int(segsRaw)%8 + 1
		kind := search.Kinds()[int(kindRaw)%3]
		p, err := New[int](Options{Segments: segs, Search: kind, Seed: 1})
		if err != nil {
			return false
		}
		in, out := 0, 0
		next := 0
		for _, op := range ops {
			h := p.Handle(int(op) % segs)
			if op%2 == 0 {
				h.Put(next)
				next++
				in++
			} else if _, ok := h.Get(); ok {
				out++
			}
		}
		return in-out == p.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStatsAggregation(t *testing.T) {
	p := newTestPool(t, Options{Segments: 2, CollectStats: true})
	a, b := p.Handle(0), p.Handle(1)
	a.Put(1)
	a.Put(2)
	b.Put(3)
	a.Get()
	b.Get()
	st := p.Stats()
	if st.Adds != 3 || st.Removes != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Ops() != 5 {
		t.Fatalf("Ops = %d", st.Ops())
	}
}

func TestGetUsesLastFoundLocality(t *testing.T) {
	// After stealing from segment k, the linear algorithm's next search
	// starts at k: the consumer should keep draining the same producer.
	p := newTestPool(t, Options{Segments: 16, Search: search.Linear, CollectStats: true})
	producer := p.Handle(9)
	for i := 0; i < 64; i++ {
		producer.Put(i)
	}
	consumer := p.Handle(2)
	count := 0
	for {
		if _, ok := consumer.Get(); !ok {
			break
		}
		count++
	}
	if count != 64 {
		t.Fatalf("consumed %d, want 64", count)
	}
	st := consumer.Stats()
	// First steal walks 2..9 (8 probes); subsequent steals hit segment 9
	// immediately, so the mean must be far below a full lap.
	if st.SegmentsExamined.Mean() > 4 {
		t.Fatalf("mean segments examined %.1f, locality not exploited", st.SegmentsExamined.Mean())
	}
}

// Regression: a single goroutine driving several registered handles must
// not search forever on an empty pool (the all-searching rule alone cannot
// fire there; the staleness rule must).
func TestSequentialMultiHandleGetAborts(t *testing.T) {
	for _, kind := range search.Kinds() {
		p := newTestPool(t, Options{Segments: 4, Search: kind, Seed: 2})
		for i := 0; i < 4; i++ {
			p.Handle(i).Register()
		}
		done := make(chan bool, 1)
		go func() {
			_, ok := p.Handle(0).Get()
			done <- ok
		}()
		select {
		case ok := <-done:
			if ok {
				t.Fatalf("%v: Get on empty pool returned ok", kind)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%v: Get on empty pool hung", kind)
		}
	}
}

// A mutation during a stale search re-arms it: the searcher must find the
// late-arriving element rather than abort.
func TestStaleSearchRearmsOnMutation(t *testing.T) {
	p := newTestPool(t, Options{Segments: 4, Search: search.Linear})
	consumer := p.Handle(0)
	producer := p.Handle(2)
	consumer.Register()
	producer.Register()
	go func() {
		time.Sleep(20 * time.Millisecond)
		producer.Put(7)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := consumer.Get(); ok {
			if v != 7 {
				t.Fatalf("got %d, want 7", v)
			}
			return
		}
	}
	t.Fatal("consumer never received the late element")
}
