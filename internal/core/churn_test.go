package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"pools/internal/rng"
	"pools/internal/search"
)

// aliveHandle returns the lowest-indexed live handle (tests only call it
// while at least one member is alive, which Kill guarantees).
func aliveHandle(p *Pool[int]) *Handle[int] {
	for i := 0; i < p.Segments(); i++ {
		if p.Alive(i) {
			return p.Handle(i)
		}
	}
	panic("no live handle")
}

func liveCount(p *Pool[int]) int {
	n := 0
	for i := 0; i < p.Segments(); i++ {
		if p.Alive(i) {
			n++
		}
	}
	return n
}

func TestKillDrainRedistributes(t *testing.T) {
	p := newTestPool(t, Options{Segments: 4, Search: search.Linear, Seed: 3})
	h0 := p.Handle(0)
	for i := 0; i < 40; i++ {
		h0.Put(i)
	}
	epoch := p.Epoch()
	if !p.Kill(0, true) {
		t.Fatal("kill refused")
	}
	if p.Alive(0) || p.Victim(0) {
		t.Error("drain-killed segment should leave both the alive and victim sets")
	}
	if p.Epoch() <= epoch {
		t.Error("kill must bump the membership epoch")
	}
	if got := p.Len(); got != 40 {
		t.Errorf("redistribution lost elements: Len = %d, want 40", got)
	}
	n0 := p.segs[0].dq.Len()
	if n0 != 0 {
		t.Errorf("drained segment still holds %d elements", n0)
	}
	// Every element is reachable by the survivors.
	h1 := p.Handle(1)
	for i := 0; i < 40; i++ {
		if _, ok := h1.Get(); !ok {
			t.Fatalf("element %d unreachable after drain kill", i)
		}
	}
	// A deposit aimed at the dead segment redirects to a victim.
	h0.Put(99)
	n0 = p.segs[0].dq.Len()
	if n0 != 0 {
		t.Error("deposit landed in a non-victim segment")
	}
	if _, ok := h1.Get(); !ok {
		t.Error("redirected deposit unreachable")
	}
}

func TestKillStealOnlyDrainsViaSteals(t *testing.T) {
	p := newTestPool(t, Options{Segments: 4, Search: search.Linear, Seed: 5})
	h0 := p.Handle(0)
	for i := 0; i < 30; i++ {
		h0.Put(i)
	}
	if !p.Kill(0, false) {
		t.Fatal("kill refused")
	}
	if p.Alive(0) {
		t.Error("killed handle still alive")
	}
	if !p.Victim(0) {
		t.Error("steal-only kill must keep the segment in the victim set")
	}
	h2 := p.Handle(2)
	for i := 0; i < 30; i++ {
		if _, ok := h2.Get(); !ok {
			t.Fatalf("reserve element %d did not drain via steals", i)
		}
	}
	if p.Len() != 0 {
		t.Errorf("Len = %d after draining the reserve, want 0", p.Len())
	}
}

func TestKillLastAliveRefused(t *testing.T) {
	p := newTestPool(t, Options{Segments: 2, Search: search.Linear})
	if !p.Kill(0, true) {
		t.Fatal("first kill refused")
	}
	if p.Kill(1, true) {
		t.Fatal("killing the last live member must be refused")
	}
	if !p.Alive(1) {
		t.Error("refused kill still removed the member")
	}
	if p.Kill(0, true) {
		t.Error("killing a dead member must be refused")
	}
	if !p.Revive(0) {
		t.Fatal("revive failed")
	}
	if !p.Kill(1, false) {
		t.Error("kill after revive should succeed")
	}
}

func TestReviveRestoresOperation(t *testing.T) {
	p := newTestPool(t, Options{Segments: 3, Search: search.Tree, Seed: 8})
	h1 := p.Handle(1)
	h1.Put(7)
	if !p.Kill(1, true) {
		t.Fatal("kill refused")
	}
	if v, ok := h1.Get(); ok {
		t.Errorf("killed handle's Get succeeded with %d", v)
	}
	if p.Revive(1) != true {
		t.Fatal("revive failed")
	}
	if p.Revive(1) {
		t.Error("reviving a live member must report false")
	}
	if !p.Alive(1) || !p.Victim(1) {
		t.Error("revived member not fully re-admitted")
	}
	// The revived handle operates again (auto re-registers).
	h1.Put(8)
	if _, ok := h1.Get(); !ok {
		t.Error("revived handle cannot operate")
	}
}

// The tentpole invariant, serially: across at least 1000 random seeded
// kill/revive transitions interleaved with operations, no element is
// ever lost (Len tracks the model count exactly) and the coverage rule
// never certifies emptiness while elements exist — a Get by a live
// handle with a non-empty pool must produce an element, whatever the
// membership looks like.
func TestChurnInvariants1000(t *testing.T) {
	const segments = 8
	p := newTestPool(t, Options{Segments: segments, Search: search.Linear, Seed: 17})
	r := rng.NewXoshiro256(20260808)
	count := 0
	transitions := 0
	for step := 0; transitions < 1000; step++ {
		switch r.Intn(4) {
		case 0:
			aliveHandle(p).Put(step)
			count++
		case 1:
			_, ok := aliveHandle(p).Get()
			if ok {
				count--
			} else if count > 0 {
				t.Fatalf("step %d: false-empty certification with %d elements in the pool", step, count)
			}
		case 2:
			tgt := r.Intn(segments)
			drain := r.Intn(2) == 0
			wasAlive := p.Alive(tgt)
			killable := wasAlive && liveCount(p) > 1
			if got := p.Kill(tgt, drain); got != killable {
				t.Fatalf("step %d: Kill(%d) = %v, want %v (alive=%v live=%d)",
					step, tgt, got, killable, wasAlive, liveCount(p))
			}
			if killable {
				transitions++
			}
		case 3:
			tgt := r.Intn(segments)
			wasDead := !p.Alive(tgt)
			if got := p.Revive(tgt); got != wasDead {
				t.Fatalf("step %d: Revive(%d) = %v, want %v", step, tgt, got, wasDead)
			}
			if wasDead {
				transitions++
			}
		}
		if got := p.Len(); got != count {
			t.Fatalf("step %d: conservation violated: Len = %d, model = %d", step, got, count)
		}
	}
}

// The Close/steal race window (fixed in this layer): a handle Closing
// while thieves hold its segment's elements mid-TakeOut must not let a
// subsequent observer miss those in-flight elements — Close waits out
// the transfer count. Under -race this also pins the memory safety of
// the close-vs-steal interleaving.
func TestCloseStealRace(t *testing.T) {
	const fill = 64
	iters := 200
	if testing.Short() {
		iters = 20
	}
	for it := 0; it < iters; it++ {
		p := newTestPool(t, Options{Segments: 4, Search: search.Linear, Seed: uint64(it + 1)})
		h0 := p.Handle(0)
		for i := 0; i < fill; i++ {
			h0.Put(i)
		}
		var got atomic.Int64
		var wg sync.WaitGroup
		for w := 1; w < 4; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				h := p.Handle(id)
				for {
					vs := h.GetN(8)
					if len(vs) == 0 {
						h.Close()
						return
					}
					got.Add(int64(len(vs)))
				}
			}(w)
		}
		// Close races the thieves' TakeOut/deposit windows.
		h0.Close()
		wg.Wait()
		if n := int(got.Load()) + p.Len(); n != fill {
			t.Fatalf("iter %d: conservation violated across Close/steal race: got %d + len %d != %d",
				it, got.Load(), p.Len(), fill)
		}
	}
}

// Concurrent churn under the race detector: workers operate while a
// driver performs kills and revives; every element put is either
// consumed or still in the pool at the end.
func TestChurnConcurrentConservation(t *testing.T) {
	const procs = 4
	const perProc = 3000
	p := newTestPool(t, Options{Segments: procs, Search: search.Tree, Seed: 23})
	for i := 0; i < procs; i++ {
		p.Handle(i).Register()
	}
	var puts, gets atomic.Int64
	var workers sync.WaitGroup
	for i := 0; i < procs; i++ {
		workers.Add(1)
		go func(id int) {
			defer workers.Done()
			h := p.Handle(id)
			for j := 0; j < perProc; j++ {
				if j%2 == 0 {
					h.Put(j)
					puts.Add(1)
				} else if _, ok := h.Get(); ok {
					gets.Add(1)
				}
			}
		}(i)
	}
	// The driver churns until the workers finish. Workers never block
	// forever on a kill: a killed handle's operations fail fast and its
	// loop continues, so the join below terminates.
	stop := make(chan struct{})
	driverDone := make(chan int)
	go func() {
		transitions := 0
		r := rng.NewXoshiro256(99)
		for {
			select {
			case <-stop:
				driverDone <- transitions
				return
			default:
			}
			tgt := r.Intn(procs)
			if p.Kill(tgt, r.Intn(2) == 0) {
				if !p.Revive(tgt) {
					t.Error("revive of killed handle failed")
				}
				transitions += 2
			}
		}
	}()
	workers.Wait()
	close(stop)
	transitions := <-driverDone
	if transitions == 0 {
		t.Error("driver performed no transitions; test proved nothing")
	}
	if got, want := int64(p.Len()), puts.Load()-gets.Load(); got != want {
		t.Errorf("conservation violated under concurrent churn: Len = %d, puts-gets = %d", got, want)
	}
}
