package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"pools/internal/search"
)

func newBatchPool(t testing.TB, opts Options) *Pool[int] {
	t.Helper()
	p, err := New[int](opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPutAllGetNLocal(t *testing.T) {
	p := newBatchPool(t, Options{Segments: 4, CollectStats: true})
	h := p.Handle(0)
	h.PutAll(nil)
	h.PutAll([]int{})
	if p.Len() != 0 {
		t.Fatalf("empty PutAll grew pool to %d", p.Len())
	}
	h.PutAll([]int{1, 2, 3, 4, 5})
	if got := p.SegmentLen(0); got != 5 {
		t.Fatalf("segment 0 has %d elements, want 5", got)
	}
	out := h.GetN(3)
	if len(out) != 3 {
		t.Fatalf("GetN(3) returned %d elements", len(out))
	}
	if out2 := h.GetN(10); len(out2) != 2 {
		t.Fatalf("GetN(10) returned %d elements, want the remaining 2", len(out2))
	}
	st := h.Stats()
	if st.BatchAdds != 1 || st.BatchRemoves != 2 {
		t.Fatalf("batch counters = %d/%d, want 1/2", st.BatchAdds, st.BatchRemoves)
	}
	if st.Adds != 5 || st.Removes != 5 {
		t.Fatalf("element counters = %d/%d, want 5/5", st.Adds, st.Removes)
	}
}

func TestPutAllHuge(t *testing.T) {
	p := newBatchPool(t, Options{Segments: 2})
	h := p.Handle(1)
	big := make([]int, 100_000)
	for i := range big {
		big[i] = i
	}
	h.PutAll(big)
	if p.Len() != len(big) {
		t.Fatalf("pool holds %d elements, want %d", p.Len(), len(big))
	}
	seen := make([]bool, len(big))
	total := 0
	for {
		out := h.GetN(4096)
		if len(out) == 0 {
			break
		}
		for _, v := range out {
			if seen[v] {
				t.Fatalf("element %d returned twice", v)
			}
			seen[v] = true
		}
		total += len(out)
	}
	if total != len(big) {
		t.Fatalf("drained %d elements, want %d", total, len(big))
	}
}

// TestGetNAcrossSteal is the tentpole's contract: a GetN on a dry local
// segment that steals half of a remote segment returns the stolen batch,
// not a single element.
func TestGetNAcrossSteal(t *testing.T) {
	for _, kind := range search.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p := newBatchPool(t, Options{Segments: 8, Search: kind, Seed: 7, CollectStats: true})
			producer := p.Handle(5)
			consumer := p.Handle(0)
			items := make([]int, 40)
			for i := range items {
				items[i] = i
			}
			producer.PutAll(items)

			out := consumer.GetN(64)
			// Steal-half takes ceil(40/2) = 20 elements; all of them should
			// come back in the one batch.
			if len(out) != 20 {
				t.Fatalf("GetN across steal returned %d elements, want 20", len(out))
			}
			seen := map[int]bool{}
			for _, v := range out {
				if v < 0 || v >= 40 || seen[v] {
					t.Fatalf("element %d duplicated or unknown", v)
				}
				seen[v] = true
			}
			st := consumer.Stats()
			if st.Steals != 1 || st.BatchRemoves != 1 {
				t.Fatalf("steals=%d batchRemoves=%d, want 1/1", st.Steals, st.BatchRemoves)
			}
			if p.Len() != 20 {
				t.Fatalf("pool left with %d elements, want 20", p.Len())
			}
		})
	}
}

// TestGetNCapsBelowSteal checks that a GetN with max smaller than the
// stolen batch returns exactly max and leaves the rest in the local
// segment for the next (now local and cheap) operation.
func TestGetNCapsBelowSteal(t *testing.T) {
	p := newBatchPool(t, Options{Segments: 4, Seed: 3})
	producer := p.Handle(2)
	consumer := p.Handle(0)
	producer.PutAll(make([]int, 32))

	out := consumer.GetN(4)
	if len(out) != 4 {
		t.Fatalf("GetN(4) returned %d elements", len(out))
	}
	// ceil(32/2) = 16 stolen, 4 returned, 12 parked locally.
	if got := p.SegmentLen(0); got != 12 {
		t.Fatalf("local segment holds %d, want 12", got)
	}
	if out = consumer.GetN(100); len(out) != 12 {
		t.Fatalf("follow-up GetN returned %d, want 12", len(out))
	}
}

func TestGetNClosedAndEmpty(t *testing.T) {
	p := newBatchPool(t, Options{Segments: 2})
	h := p.Handle(0)
	if out := h.GetN(0); out != nil {
		t.Fatalf("GetN(0) = %v, want nil", out)
	}
	if out := h.GetN(-3); out != nil {
		t.Fatalf("GetN(-3) = %v, want nil", out)
	}
	// Only participant searching an empty pool: the abort rule fires.
	if out := h.GetN(5); out != nil {
		t.Fatalf("GetN on empty pool = %v, want nil", out)
	}
	h.PutAll([]int{1})
	p.Close()
	if out := h.GetN(5); out != nil {
		t.Fatalf("GetN on closed pool = %v, want nil", out)
	}
}

// TestPutAllDirectedAdds checks that a batch arrival feeds a hungry
// searcher: the consumer blocked in a search receives a gift from the
// producer's PutAll and completes its GetN with it.
func TestPutAllDirectedAdds(t *testing.T) {
	p := newBatchPool(t, Options{Segments: 2, DirectedAdds: true, CollectStats: true})
	producer := p.Handle(1)
	consumer := p.Handle(0)
	consumer.Register()
	producer.Register()

	var wg sync.WaitGroup
	wg.Add(1)
	results := make(chan []int, 1)
	go func() {
		defer wg.Done()
		for {
			out := consumer.GetN(8)
			if len(out) > 0 {
				results <- out
				return
			}
			// Abort races with the gift; retry until the batch lands.
			if p.Closed() {
				results <- nil
				return
			}
		}
	}()
	producer.PutAll([]int{10, 20, 30, 40})
	wg.Wait()
	out := <-results
	if len(out) == 0 {
		t.Fatal("consumer never received elements")
	}
	if p.Len()+len(out) != 4 {
		t.Fatalf("conservation violated: pool=%d returned=%d", p.Len(), len(out))
	}
}

func TestPutAllGetNConcurrent(t *testing.T) {
	const (
		workers = 4
		batches = 200
		batch   = 16
	)
	p := newBatchPool(t, Options{Segments: workers, Seed: 11})
	for i := 0; i < workers; i++ {
		p.Handle(i).Register()
	}
	var got atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := p.Handle(id)
			items := make([]int, batch)
			if id%2 == 0 {
				for i := 0; i < batches; i++ {
					h.PutAll(items)
				}
				h.Close()
				return
			}
			for {
				out := h.GetN(batch)
				if len(out) == 0 {
					if p.Len() == 0 {
						break
					}
					continue
				}
				got.Add(int64(len(out)))
			}
			h.Close()
		}(w)
	}
	wg.Wait()
	total := got.Load() + int64(p.Len())
	want := int64(workers / 2 * batches * batch)
	if total != want {
		t.Fatalf("elements accounted = %d, want %d", total, want)
	}
}
