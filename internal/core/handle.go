package core

import (
	"runtime"
	"sync/atomic"
	"time"

	"pools/internal/engine"
	"pools/internal/metrics"
	"pools/internal/numa"
	"pools/internal/policy"
	"pools/internal/search"
	"pools/internal/trace"
)

// Handle lifecycle states. The lifecycle is a tiny atomic state machine
// rather than two owner-written bools because Pool.Kill closes a handle
// from outside its owning goroutine: idle (created or revived, not yet
// counted by the abort rule), open (registered, counted), closed
// (withdrawn — by the owner's Close or an external Kill).
const (
	hsIdle int32 = iota
	hsOpen
	hsClosed
)

// Handle is a process's attachment to one segment of a Pool. All pool
// operations go through a handle so that locality ("most operations are
// done within the local components") is explicit in the API.
//
// A Handle may be used by only one goroutine at a time. Distinct handles
// may be used concurrently; that is the entire point of the structure.
//
// The search-steal protocol itself lives in internal/engine; the handle
// supplies the substrate (mutex-protected segments, directed-add
// mailboxes, wall-clock delays) and keeps the per-operation accounting.
type Handle[T any] struct {
	pool       *Pool[T]
	id         int
	eng        *engine.Engine
	steal      policy.StealAmount // resolved steal amount, cached off the engine for the probe loop
	sub        substrate[T]
	stealBuf []T // reused steal-transfer buffer (reserve under the victim's lock, deposit outside)
	stats    metrics.PoolStats
	tr       *trace.Recorder // flight recorder (nil unless Options.TraceBuf > 0)
	state    atomic.Int32    // hsIdle | hsOpen | hsClosed; atomic so Pool.Kill can close externally
}

// ID returns the handle's segment index.
func (h *Handle[T]) ID() int { return h.id }

// observe feeds one remove outcome to this handle's controller, if any.
// Under a per-handle policy set each handle tunes from its own feedback
// stream; under a pool-wide set every handle feeds the shared controller.
func (h *Handle[T]) observe(fb policy.Feedback) { h.eng.Observe(fb) }

// BatchSize returns the batch size this handle's controller recommends
// for a workload configured at current, or current itself without a
// controller. Batch drivers consult it before every PutAll/GetN cycle,
// mirroring the simulator's burst loop, so online batch tuning behaves
// identically on both substrates — and, under per-handle sets, every
// handle recommends from its own observed workload.
func (h *Handle[T]) BatchSize(current int) int { return h.eng.BatchSize(current) }

// Controller returns this handle's controller (nil when the policy set
// has none), for observability and controller-trajectory traces.
func (h *Handle[T]) Controller() policy.Controller { return h.eng.Controller() }

// Register marks this handle as a participant in the pool's operations.
// Participation is what the abort rule counts: a Get aborts when every
// registered, unclosed handle is simultaneously searching. Operations
// register implicitly, but a process that will begin by removing should
// Register all participants first so that a consumer starting before the
// first producer's Put does not observe a one-process pool and abort
// immediately. Register is idempotent.
func (h *Handle[T]) Register() {
	if h.state.Load() == hsIdle && h.state.CompareAndSwap(hsIdle, hsOpen) {
		h.pool.open.Add(1)
	}
}

// Close withdraws this handle from the pool's participant set. A closed
// handle's operations fail; searches by other handles no longer wait for
// this process to add elements. Any gift stranded in the handle's mailbox
// (a directed add that raced with the end of its last search) is parked
// in the local segment first, where other processes' steals can reach it
// — otherwise a worker exiting on a perceived-empty pool would strand a
// whole batch until Drain. Before returning, Close waits out any steal
// mid-transfer: withdrawing from the open count can make the
// all-searching observation true for the remaining searchers, and the
// certificate must not race a thief's not-yet-deposited surplus (the
// Coverage rule's TransfersInFlight guard covers searchers, but a
// closing worker often tears the pool down next, and Drain does not
// consult the rule). Close is idempotent.
func (h *Handle[T]) Close() {
	p := h.pool
	if p.boxes != nil {
		if g, ok := p.boxes[h.id].tryTake(); ok {
			h.parkLocal(g.elements())
			if p.opts.CollectStats {
				h.stats.DirectedReceives += int64(g.count())
			}
			if h.tr != nil {
				h.tr.Record(trace.GiftRecv, -1, int32(g.count()))
			}
		}
	}
	if !h.withdraw() {
		return
	}
	// The closer never holds a segment lock here and a thief needs only
	// its own segment's lock to land the deposit, so this wait cannot
	// deadlock.
	for p.moving.Load() > 0 {
		runtime.Gosched()
	}
}

// withdraw moves the handle to closed, releasing its open-count slot if
// it held one. It reports whether this call performed the transition.
func (h *Handle[T]) withdraw() bool {
	for {
		s := h.state.Load()
		if s == hsClosed {
			return false
		}
		if h.state.CompareAndSwap(s, hsClosed) {
			if s == hsOpen {
				h.pool.open.Add(-1)
			}
			return true
		}
	}
}

// Closed reports whether Close has been called on this handle.
func (h *Handle[T]) Closed() bool { return h.state.Load() == hsClosed }

// Stats returns a snapshot of this handle's operation statistics.
func (h *Handle[T]) Stats() metrics.PoolStats { return h.stats }

// now returns nanoseconds since pool creation when stats are being
// collected, -1 otherwise. It reads only the monotonic clock (one
// nanotime; p.base carries a monotonic reading, so time.Since never
// touches the wall clock) — the stats-on hot path was dominated by
// time.Now's paired wall+monotonic reads before this.
func (h *Handle[T]) now() int64 {
	if !h.pool.opts.CollectStats {
		return -1
	}
	return int64(time.Since(h.pool.base))
}

// since returns elapsed µs since a now() stamp (0 when stats are
// disabled).
func (h *Handle[T]) since(start int64) int64 {
	if start < 0 {
		return 0
	}
	return (int64(time.Since(h.pool.base)) - start) / 1000
}

// Put adds an element to the pool: into a hungry searcher's mailbox when
// the Placement policy directs it there, into the segment a Director
// placement (e.g. policy.GiftToEmptiest) selects, otherwise into the
// local segment. It never fails and never blocks on other segments'
// operations beyond the placement's own probes.
func (h *Handle[T]) Put(v T) {
	h.Register()
	p := h.pool
	start := h.now()
	if p.boxes != nil && p.giftOut(h.id, []T{v}) == 1 {
		p.version.Add(1)
		if p.opts.CollectStats {
			h.stats.DirectedGives++
			h.stats.RecordAdd(h.since(start))
		}
		if h.tr != nil {
			h.tr.Record(trace.GiftSend, -1, 1)
		}
		return
	}
	target := p.placeTarget(h.eng.DirectTarget(1))
	p.opts.Delay.Delay(numa.AccessAdd, h.id, target)
	if target == h.id {
		// The owner's lock-free bottom: no lock on the local add path.
		p.segs[target].dq.PushBottom(v)
	} else {
		// A Director placement aimed elsewhere: only the owner may touch
		// a segment's bottom, so the add goes through the target's
		// lock-guarded foreign overflow.
		p.segs[target].dq.AddForeign(v)
	}
	p.version.Add(1)
	if p.opts.CollectStats {
		h.stats.RecordAdd(h.since(start))
	}
}

// PutAll adds every element of items to one segment under a single lock
// acquisition, amortizing the lock (and any NUMA add delay) over the
// whole batch. With directed adds enabled, a leading portion of the batch
// — the Placement policy's choice, by default the whole slice — is gifted
// to hungry searchers first, split evenly among them, so a batch arrival
// can hand each starving consumer an entire reserve; the remainder lands
// on the segment a Director placement selects (the local segment
// otherwise). PutAll of an empty slice is a no-op. The items slice is not
// retained.
func (h *Handle[T]) PutAll(items []T) {
	if len(items) == 0 {
		return
	}
	h.Register()
	p := h.pool
	start := h.now()
	gifted := 0
	if p.boxes != nil {
		gifted = p.giftOut(h.id, items)
		if p.opts.CollectStats {
			h.stats.DirectedGives += int64(gifted)
		}
		if h.tr != nil && gifted > 0 {
			h.tr.Record(trace.GiftSend, -1, int32(gifted))
		}
		if gifted == len(items) {
			p.version.Add(1)
			if p.opts.CollectStats {
				h.stats.RecordBatchAdd(h.since(start), gifted)
			}
			return
		}
	}
	target := p.placeTarget(h.eng.DirectTarget(len(items) - gifted))
	p.opts.Delay.Delay(numa.AccessAdd, h.id, target)
	if target == h.id {
		p.segs[target].dq.PushBottomAll(items[gifted:])
	} else {
		p.segs[target].dq.AddForeignAll(items[gifted:])
	}
	p.version.Add(1)
	if p.opts.CollectStats {
		h.stats.RecordBatchAdd(h.since(start), len(items))
	}
}

// TryPut adds an element respecting Options.SegmentCap: if the local
// segment is full it walks the ring for a segment with spare capacity (the
// paper's symmetric remote-add footnote) and reports whether the element
// was placed. With SegmentCap == 0 it always places locally.
func (h *Handle[T]) TryPut(v T) bool {
	p := h.pool
	h.Register()
	cap := p.opts.SegmentCap
	if cap <= 0 {
		h.Put(v)
		return true
	}
	start := h.now()
	n := len(p.segs)
	for off := 0; off < n; off++ {
		idx := (h.id + off) % n
		if !p.members.Victim(idx) {
			continue // departed drain-mode segment: searches skip it
		}
		p.opts.Delay.Delay(numa.AccessAdd, h.id, idx)
		s := &p.segs[idx]
		placed := false
		if idx == h.id {
			// Own segment: the owner is the only bottom-pusher, but a
			// foreign add can land between the lock-free size check and
			// the push, so cap is best-effort here — overshoot is bounded
			// by the number of concurrently racing foreign adders, and
			// cap is exact whenever the segment is quiescent. (The remote
			// branch has the mirror-image race: AddForeignIfUnder's
			// locked check reads the ring span lock-free against the
			// owner's in-flight push, with the same bound.)
			if s.dq.Len() < cap {
				s.dq.PushBottom(v)
				placed = true
			}
		} else {
			placed = s.dq.AddForeignIfUnder(v, cap)
		}
		if placed {
			p.version.Add(1)
			if p.opts.CollectStats {
				h.stats.RecordAdd(h.since(start))
			}
			return true
		}
	}
	return false
}

// TryGetLocal removes an element from the local segment only, without
// searching. It returns false if the local segment is empty.
func (h *Handle[T]) TryGetLocal() (T, bool) {
	h.Register()
	p := h.pool
	start := h.now()
	p.opts.Delay.Delay(numa.AccessRemove, h.id, h.id)
	v, ok := p.segs[h.id].dq.PopBottom()
	if ok && p.opts.CollectStats {
		h.stats.RecordLocalRemove(h.since(start))
	}
	return v, ok
}

// Get removes an element from the pool: locally when possible, otherwise
// by searching remote segments (in the VictimOrder policy's order) and
// stealing a StealAmount-policy-chosen share of the first non-empty one.
// It returns ok=false when the pool or handle is closed, or when every
// open handle is simultaneously searching (the pool is empty and no
// participant can be adding — the paper's abort rule).
func (h *Handle[T]) Get() (T, bool) {
	var zero T
	p := h.pool
	if h.state.Load() == hsClosed || p.closed.Load() {
		return zero, false
	}
	h.Register()
	start := h.now()

	// Fast path: the owner's lock-free bottom. Only a thief contending
	// for the very last element can send this to the segment lock.
	p.opts.Delay.Delay(numa.AccessRemove, h.id, h.id)
	v, ok := p.segs[h.id].dq.PopBottom()
	if ok {
		if p.opts.CollectStats {
			h.stats.RecordLocalRemove(h.since(start))
		}
		h.observe(policy.Feedback{Got: 1, Elapsed: h.since(start)})
		return v, true
	}

	// Slow path: the engine's search-steal protocol, then the gift races.
	searchStart := h.now()
	res := h.eng.Search(1)
	g, gotGift, stole := h.resolveSearch(res)
	if !stole {
		if gotGift {
			v = g.first()
			h.parkLocal(g.rest())
			if p.opts.CollectStats {
				h.stats.DirectedReceives += int64(g.count())
				h.stats.RecordStealRemove(h.since(start), h.since(searchStart), res.Examined, g.count())
			}
			h.observe(policy.Feedback{Examined: res.Examined, Got: g.count(), Elapsed: h.since(start)})
			return v, true
		}
		if p.opts.CollectStats {
			h.stats.RecordAbort(h.since(start))
		}
		h.observe(policy.Feedback{Aborted: true, Examined: res.Examined, Elapsed: h.since(start)})
		return zero, false
	}
	v = h.sub.takeReserved()
	if p.opts.CollectStats {
		h.stats.RecordStealRemove(h.since(start), h.since(searchStart), res.Examined, res.Got)
	}
	h.observe(policy.Feedback{Stole: true, Examined: res.Examined, Got: res.Got, Elapsed: h.since(start)})
	return v, true
}

// parkLocal adds elements to the local segment, where subsequent removes
// find them on the fast path (and other searchers' steals can reach
// them) — or, when a drain-kill has removed the local segment from the
// victim set, to the nearest victim segment so the parked elements stay
// visible to searches. A nil or empty slice is a no-op.
func (h *Handle[T]) parkLocal(items []T) {
	if len(items) == 0 {
		return
	}
	p := h.pool
	if t := p.placeTarget(h.id); t == h.id {
		p.segs[t].dq.PushBottomAll(items)
	} else {
		p.segs[t].dq.AddForeignAll(items)
	}
	p.version.Add(1)
}

// resolveSearch settles the gift races after one engine search. A
// successful search (res.Got > 0) already moved the stolen elements into
// the local segment with one reserved in the substrate; any gift that
// raced with it is parked in the local segment, where it stays visible to
// every searcher instead of stranded in the mailbox until this handle's
// next slow path. On stole=false, gotGift reports that a directed add
// landed in the mailbox instead (a gift may race with a genuine abort);
// otherwise the operation aborted empty-handed.
func (h *Handle[T]) resolveSearch(res search.Result) (g gift[T], gotGift, stole bool) {
	p := h.pool
	if p.boxes != nil {
		g, gotGift = p.boxes[h.id].tryTake()
	}
	if h.tr != nil && gotGift {
		h.tr.Record(trace.GiftRecv, -1, int32(g.count()))
	}
	if res.Got > 0 {
		if gotGift {
			h.parkLocal(g.elements())
			if p.opts.CollectStats {
				h.stats.DirectedReceives += int64(g.count())
			}
		}
		return gift[T]{}, false, true
	}
	return g, gotGift, false
}

// GetN removes up to max elements from the pool in one operation. The
// local fast path drains the segment under a single lock acquisition; on a
// dry local segment it searches and steals exactly like Get — a successful
// steal already lands a policy-sized batch in the local segment (the
// StealAmount policy sees max as the requester's appetite), and GetN
// surfaces that batch instead of returning one element and re-locking for
// the rest. It returns nil under the same conditions Get returns
// ok=false: pool or handle closed, or the abort rule certified emptiness.
func (h *Handle[T]) GetN(max int) []T {
	if max <= 0 {
		return nil
	}
	p := h.pool
	if h.state.Load() == hsClosed || p.closed.Load() {
		return nil
	}
	h.Register()
	start := h.now()

	// Fast path: drain the local segment through the owner's bottom.
	p.opts.Delay.Delay(numa.AccessRemove, h.id, h.id)
	s := &p.segs[h.id]
	out := s.dq.PopBottomN(max)
	if len(out) > 0 {
		if p.opts.CollectStats {
			h.stats.RecordBatchLocalRemove(h.since(start), len(out))
		}
		h.observe(policy.Feedback{Got: len(out), Elapsed: h.since(start)})
		return out
	}

	// Slow path: search and steal, exactly as Get.
	searchStart := h.now()
	res := h.eng.Search(max)
	g, gotGift, stole := h.resolveSearch(res)
	if !stole {
		if gotGift {
			if g.batch == nil {
				out = []T{g.one}
			} else if len(g.batch) <= max {
				out = g.batch
			} else {
				out = g.batch[:max]
				h.parkLocal(g.batch[max:])
			}
			if p.opts.CollectStats {
				h.stats.DirectedReceives += int64(g.count())
				h.stats.RecordBatchStealRemove(h.since(start), h.since(searchStart), res.Examined, g.count(), len(out))
			}
			h.observe(policy.Feedback{Examined: res.Examined, Got: g.count(), Elapsed: h.since(start)})
			return out
		}
		if p.opts.CollectStats {
			h.stats.RecordAbort(h.since(start))
		}
		h.observe(policy.Feedback{Aborted: true, Examined: res.Examined, Elapsed: h.since(start)})
		return nil
	}
	// The steal moved res.Got elements into the local segment and reserved
	// one; collect the reserved element plus up to max-1 more in one lock.
	out = make([]T, 1, max)
	out[0] = h.sub.takeReserved()
	if max > 1 {
		out = append(out, s.dq.PopBottomN(max-1)...)
	}
	if p.opts.CollectStats {
		h.stats.RecordBatchStealRemove(h.since(start), h.since(searchStart), res.Examined, res.Got, len(out))
	}
	h.observe(policy.Feedback{Stole: true, Examined: res.Examined, Got: res.Got, Elapsed: h.since(start)})
	return out
}

// substrate adapts a Handle to engine.Substrate / engine.TreeSubstrate:
// the typed reserve/transfer half of the steal protocol, over
// mutex-protected segments with wall-clock delay injection. Coverage
// tracking, probe classification, and the abort rule live in the engine.
type substrate[T any] struct {
	h        *Handle[T]
	reserved T
	has      bool
}

var _ engine.TreeSubstrate = (*substrate[int])(nil)

func (w *substrate[T]) takeReserved() T {
	var zero T
	v := w.reserved
	w.reserved = zero
	w.has = false
	return v
}

// Enter implements engine.Substrate: join the lookers count (the livelock
// rule's evidence) and raise the hungry flag for directed adds.
func (w *substrate[T]) Enter(int) {
	p := w.h.pool
	p.lookers.Add(1)
	if p.boxes != nil {
		p.boxes[w.h.id].hungry.Store(true)
	}
}

// Exit implements engine.Substrate.
func (w *substrate[T]) Exit() {
	p := w.h.pool
	if p.boxes != nil {
		p.boxes[w.h.id].hungry.Store(false)
	}
	p.lookers.Add(-1)
}

// Stopped implements engine.Substrate: the pool or handle closed, or a
// directed-add gift landed in the mailbox — Get's slow path collects it.
func (w *substrate[T]) Stopped() bool {
	p := w.h.pool
	if p.closed.Load() || w.h.state.Load() == hsClosed {
		return true
	}
	return p.boxes != nil && len(p.boxes[w.h.id].slot) > 0
}

// Probe implements engine.Substrate. Probing the local segment reports
// its size and reserves one element if available, through the owner's
// lock-free bottom. Probing a remote segment reserves the StealAmount
// policy's share into the handle's private steal buffer under the
// victim's steal lock alone (OwnerDeque.StealInto: foreign overflow
// first, then claim-validated top-of-ring takes), then deposits the
// surplus into the local segment after unlocking — the lock-hold
// shortening that keeps a steal from serializing the victim against the
// thief's own segment. The buffer is reused across calls, so the steal
// path performs no per-call allocation once warm.
func (w *substrate[T]) Probe(sIdx, want int) int {
	h := w.h
	p := h.pool
	self := h.id
	p.opts.Delay.Delay(numa.AccessProbe, self, sIdx)

	if sIdx == self {
		s := &p.segs[self]
		n := s.dq.Len()
		if n > 0 {
			v, ok := s.dq.PopBottom()
			if !ok {
				// A thief emptied the segment between the size read and
				// the pop; nothing was reserved, so report empty. The
				// element the thief took is covered by its own transfer
				// accounting.
				return 0
			}
			w.reserved = v
			w.has = true
		}
		return n
	}

	// Between the victim unlock and the local deposit the stolen batch
	// lives only in the handle's buffer — in no segment, invisible to
	// probes. The moving count keeps the Coverage rule from certifying
	// emptiness over it; raised before the claims begin so there is no
	// gap, dropped only after the deposit's version bump so a searcher
	// that reads zero is guaranteed to see the bump and re-arm.
	p.moving.Add(1)
	src := &p.segs[sIdx]
	buf := src.dq.StealInto(h.stealBuf[:0], func(n int) int {
		// Consulted under the victim's steal lock, only when n > 0 —
		// the same point the lock-era path sized its TakeOut.
		p.opts.Delay.Delay(numa.AccessSplit, self, sIdx)
		return h.steal.Amount(n, want)
	})
	moved := len(buf)
	if moved == 0 {
		p.moving.Add(-1)
		return 0
	}
	w.reserved = buf[moved-1]
	w.has = true
	if moved > 1 {
		// A kill can drain this thief's own segment between the search's
		// start and this deposit; placeTarget reads the victim bit after
		// Kill's membership store, so the surplus lands where searches
		// (and the kill-time drain's moving-wait) still find it.
		if t := p.placeTarget(self); t == self {
			p.segs[t].dq.PushBottomAll(buf[:moved-1])
		} else {
			p.segs[t].dq.AddForeignAll(buf[:moved-1])
		}
	}
	clear(buf) // release element references for GC; the buffer itself is kept
	h.stealBuf = buf[:0]
	p.version.Add(1) // elements relocated: other searchers must re-scan
	p.moving.Add(-1)
	if h.tr != nil {
		h.tr.Record(trace.ReserveTransfer, int32(sIdx), int32(moved))
	}
	return moved
}

// NumLeaves implements engine.TreeSubstrate.
func (w *substrate[T]) NumLeaves() int { return w.h.pool.leaves }

// RoundOf implements engine.TreeSubstrate.
func (w *substrate[T]) RoundOf(n int) uint64 {
	p := w.h.pool
	p.opts.Delay.Delay(numa.AccessNode, w.h.id, -1)
	return p.roundOf(n)
}

// MaxRound implements engine.TreeSubstrate.
func (w *substrate[T]) MaxRound(n int, r uint64) {
	p := w.h.pool
	p.opts.Delay.Delay(numa.AccessNode, w.h.id, -1)
	p.maxRound(n, r)
}

// coverageState exposes the pool-wide evidence engine.Coverage consults.
type coverageState[T any] struct{ p *Pool[T] }

var _ engine.CoverageState = coverageState[int]{}

// Version implements engine.CoverageState.
func (c coverageState[T]) Version() uint64 { return c.p.version.Load() }

// AllSearching implements engine.CoverageState.
func (c coverageState[T]) AllSearching() bool { return c.p.lookers.Load() >= c.p.open.Load() }

// GiftsInFlight implements engine.CoverageState.
func (c coverageState[T]) GiftsInFlight() bool { return c.p.giftsInFlight() }

// TransfersInFlight implements engine.CoverageState.
func (c coverageState[T]) TransfersInFlight() bool { return c.p.moving.Load() > 0 }

// Epoch implements engine.CoverageState: the pool's membership epoch —
// one atomic load, the whole cost of churn-awareness on the abort path.
func (c coverageState[T]) Epoch() uint64 { return c.p.members.Epoch() }
