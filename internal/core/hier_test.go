package core

import (
	"sync"
	"testing"

	"pools/internal/numa"
	"pools/internal/policy"
)

// hierTopo is the 8-segment, 4-per-cluster topology the real-pool
// hierarchical tests run on: clusters {0..3} and {4..7}.
var hierTopo = numa.Clusters{Size: 4}

// TestHierarchicalOrderOnRealPool checks the real pool runs the
// cluster-first searcher: with victims in the near and the far cluster,
// the steal takes the cluster mate even when the far victim is closer in
// ring distance, and the cross-probe accounting sees no crossing.
func TestHierarchicalOrderOnRealPool(t *testing.T) {
	p, err := New[int](Options{
		Segments:     8,
		Topology:     hierTopo,
		Policies:     policy.Set{Order: policy.HierarchicalOrder{Topo: hierTopo}},
		CollectStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Consumer owns segment 3 (cluster {0..3}). Segment 4 is its ring
	// neighbor but across the cluster boundary; segment 0 is in-cluster.
	p.Handle(4).PutAll(make([]int, 10))
	p.Handle(0).PutAll(make([]int, 10))
	consumer := p.Handle(3)
	for i := 0; i < 8; i++ {
		p.Handle(i).Register()
	}
	if _, ok := consumer.Get(); !ok {
		t.Fatal("Get failed with 20 elements pooled")
	}
	if got := p.SegmentLen(0); got != 5 {
		t.Fatalf("in-cluster victim left with %d elements, want 5", got)
	}
	if got := p.SegmentLen(4); got != 10 {
		t.Fatalf("cross-cluster victim lost elements (left %d), want untouched 10", got)
	}
	st := consumer.Stats()
	if st.RemoteProbes == 0 {
		t.Fatal("no remote probes recorded with stats on")
	}
	if st.CrossProbes != 0 {
		t.Fatalf("%d cross-cluster probes recorded, want 0 (near victim available)", st.CrossProbes)
	}
}

// TestHierarchicalEscalatesAcrossClusters checks the searcher does cross
// once its own cluster is dry — and that the crossing is visible in the
// cross-probe accounting.
func TestHierarchicalEscalatesAcrossClusters(t *testing.T) {
	p, err := New[int](Options{
		Segments:     8,
		Topology:     hierTopo,
		Policies:     policy.Set{Order: policy.HierarchicalOrder{Topo: hierTopo}},
		CollectStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Handle(6).PutAll(make([]int, 10)) // only the far cluster has elements
	consumer := p.Handle(0)
	for i := 0; i < 8; i++ {
		p.Handle(i).Register()
	}
	if _, ok := consumer.Get(); !ok {
		t.Fatal("Get failed with 10 elements pooled")
	}
	if got := p.SegmentLen(6); got != 5 {
		t.Fatalf("far victim left with %d elements, want 5", got)
	}
	st := consumer.Stats()
	if st.CrossProbes == 0 {
		t.Fatal("steal crossed clusters but no cross probe was recorded")
	}
	if st.CrossProbes >= st.RemoteProbes {
		t.Fatalf("cross %d >= remote %d: the near ring was never probed first", st.CrossProbes, st.RemoteProbes)
	}
}

// TestHierarchicalThresholdEdgesTerminate drives the escalation-threshold
// edge cases on the real pool: the structural default (0), a threshold
// far larger than the cluster (the searcher laps its cluster before
// crossing), and the negative immediate-escalation ablation. Each must
// steal successfully from a far cluster and — the part a broken
// escalation would hang on — certify emptiness and abort once the pool
// drains.
func TestHierarchicalThresholdEdgesTerminate(t *testing.T) {
	for _, threshold := range []int{0, 64, -1} {
		p, err := New[int](Options{
			Segments: 8,
			Topology: hierTopo,
			Policies: policy.Set{Order: policy.HierarchicalOrder{Topo: hierTopo, Threshold: threshold}},
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Handle(5).PutAll(make([]int, 4))
		consumer := p.Handle(0)
		consumer.Register()
		for i := 0; i < 4; i++ {
			if _, ok := consumer.Get(); !ok {
				t.Fatalf("threshold %d: Get %d failed with elements pooled", threshold, i)
			}
		}
		// Drained: the search must cover every ring and abort, not spin
		// inside the near frontier forever.
		if _, ok := consumer.Get(); ok {
			t.Fatalf("threshold %d: Get succeeded on a drained pool", threshold)
		}
	}
}

// TestHierarchicalOrderUnderRace hammers a hierarchical-order pool with
// the per-handle adaptive set — so each goroutine's searcher consults its
// own spawned controller as an escalation tuner while feedback streams in
// concurrently — and checks conservation plus the probe accounting's
// internal consistency. The race detector guards the Escalator path.
func TestHierarchicalOrderUnderRace(t *testing.T) {
	const segs = 8
	const perWorker = 250
	set, err := policy.Named("per-handle")
	if err != nil {
		t.Fatal(err)
	}
	set.Order = policy.HierarchicalOrder{Topo: hierTopo}
	p, err := New[int](Options{
		Segments:     segs,
		Topology:     hierTopo,
		Policies:     set,
		CollectStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < segs; i++ {
		p.Handle(i).Register()
	}
	var wg sync.WaitGroup
	var consumed [segs / 2]int
	for w := 0; w < segs/2; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			h := p.Handle(w) // producers live in cluster {0..3}
			for i := 0; i < perWorker; i++ {
				h.Put(i)
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			h := p.Handle(4 + w) // consumers in cluster {4..7}: every Get crosses
			for i := 0; i < perWorker/2; i++ {
				if _, ok := h.Get(); ok {
					consumed[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := p.Len()
	for w := range consumed {
		total += consumed[w]
	}
	if want := (segs / 2) * perWorker; total != want {
		t.Fatalf("conservation violated: %d pooled + consumed, want %d", total, want)
	}
	st := p.Stats()
	if st.CrossProbes > st.RemoteProbes {
		t.Fatalf("cross probes %d exceed remote probes %d", st.CrossProbes, st.RemoteProbes)
	}
	if st.Steals > 0 && st.CrossProbes == 0 {
		t.Fatal("consumers stole across clusters yet no cross probe was recorded")
	}
}

// TestNearestEmptiestPlacementOnRealPool checks the topology-aware
// placement stays inside the adder's cluster under a heavy per-hop delay
// even when a far segment is emptier, and crosses when hops are free.
func TestNearestEmptiestPlacementOnRealPool(t *testing.T) {
	costly := numa.ButterflyCosts().WithTopology(hierTopo).WithExtraDelay(5000)
	p, err := New[int](Options{
		Segments: 8,
		Topology: hierTopo,
		Policies: policy.Set{Place: policy.GiftToNearestEmptiest{Model: costly, Probes: -1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Adder's cluster lightly loaded, far cluster empty: the far
	// segments' emptiness cannot buy back four hops at this delay.
	p.Handle(0).PutAll(make([]int, 2))
	p.Handle(1).PutAll(make([]int, 2))
	p.Handle(2).PutAll(make([]int, 2))
	p.Handle(3).PutAll(make([]int, 2))
	if p.SegmentLen(4)+p.SegmentLen(5)+p.SegmentLen(6)+p.SegmentLen(7) != 0 {
		t.Fatal("adds crossed the cluster boundary under a heavy hop cost")
	}

	cheap := numa.ButterflyCosts().WithTopology(hierTopo)
	q, err := New[int](Options{
		Segments: 8,
		Policies: policy.Set{Place: policy.GiftToNearestEmptiest{Model: cheap, Probes: -1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	q.Handle(0).PutAll(make([]int, 4)) // all empty: stays local
	if got := q.SegmentLen(0); got != 4 {
		t.Fatalf("first batch left %d on segment 0, want 4", got)
	}
	q.Handle(0).Put(9) // everything else empty, hops nearly free: gift away
	if got := q.SegmentLen(0); got != 4 {
		t.Fatalf("add stayed on the loaded segment (len %d) with empty segments a cheap hop away", got)
	}
}

// TestNearestEmptiestUnderRace races producers placing through the
// topology-aware director against consumers, with conservation as the
// oracle; the race detector guards the probe path.
func TestNearestEmptiestUnderRace(t *testing.T) {
	const segs = 8
	const perWorker = 250
	model := numa.ButterflyCosts().WithTopology(hierTopo).WithExtraDelay(50)
	p, err := New[int](Options{
		Segments: segs,
		Topology: hierTopo,
		Policies: policy.Set{Place: policy.GiftToNearestEmptiest{Model: model}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < segs; i++ {
		p.Handle(i).Register()
	}
	var wg sync.WaitGroup
	var consumed [4]int
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			h := p.Handle(w)
			for i := 0; i < perWorker; i++ {
				if i%3 == 0 {
					h.PutAll([]int{i, i + 1})
				} else {
					h.Put(i)
				}
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			h := p.Handle(4 + w)
			for i := 0; i < perWorker/2; i++ {
				if _, ok := h.Get(); ok {
					consumed[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := p.Len()
	for w := range consumed {
		total += consumed[w]
	}
	// Per producer: 84 PutAll×2 + 166 Put — 334 each (250 iterations).
	wantAdded := 0
	for i := 0; i < perWorker; i++ {
		if i%3 == 0 {
			wantAdded += 2
		} else {
			wantAdded++
		}
	}
	wantAdded *= 4
	if total != wantAdded {
		t.Fatalf("conservation violated: %d pooled + consumed, want %d", total, wantAdded)
	}
}

// TestTopologyInheritedByDelayer checks Options.Topology threads into an
// active Delayer that has no topology of its own, so injected busy-waits
// scale with hop distance (observable indirectly: the pool still works
// and classifies probes; the wiring itself is a construction-time copy).
func TestTopologyInheritedByDelayer(t *testing.T) {
	p, err := New[int](Options{
		Segments:     8,
		Topology:     hierTopo,
		Delay:        numa.Delayer{Model: numa.ButterflyCosts().WithExtraDelay(1), Scale: 1},
		CollectStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.opts.Delay.Model.Topo == nil {
		t.Fatal("Options.Topology not inherited by the Delayer's cost model")
	}
	if p.topo == nil {
		t.Fatal("pool topology unresolved")
	}
	// An explicit Delayer topology wins over Options.Topology.
	q, err := New[int](Options{
		Segments: 4,
		Topology: numa.Clusters{Size: 2},
		Delay:    numa.Delayer{Model: numa.ButterflyCosts().WithTopology(numa.Uniform{}), Scale: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.opts.Delay.Model.Topo.(numa.Uniform); !ok {
		t.Fatal("explicit Delayer topology overwritten")
	}
}
