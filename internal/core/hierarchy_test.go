package core

import (
	"testing"

	"pools/internal/numa"
	"pools/internal/policy"
)

// TestThreeRingEscalationOrder pins the escalation ladder on a
// deeper-than-two-level machine: 8 segments as 2-processor boards inside
// a 4-processor cabinet (numa.NestedClusters{Inner: 2, Outer: 4}), so
// handle 0's ladder is board {0,1} → cabinet ring {2,3} → far ring
// {4..7}. A search must exhaust each ring — one full fruitless pass, the
// structural threshold — before admitting the next, so with elements in
// both the cabinet ring and the far ring the steal lands on the cabinet,
// and only once the cabinet is dry does a search cross to the far ring.
// The probe counts are exact: the ladder's shape is the assertion.
func TestThreeRingEscalationOrder(t *testing.T) {
	topo := numa.NestedClusters{Inner: 2, Outer: 4}
	p, err := New[int](Options{
		Segments:     8,
		Policies:     policy.Set{Order: policy.HierarchicalOrder{Topo: topo}},
		Topology:     topo,
		CollectStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Handle(3).Put(30) // cabinet ring (hop distance 2 from handle 0)
	p.Handle(6).Put(60) // far ring (hop distance 4)

	h := p.Handle(0)
	// Ring 0 is {0,1}: two fruitless probes escalate to the cabinet ring,
	// where probes 2 (empty) and 3 succeed — 4 probes, and the steal must
	// take the cabinet's element even though the far ring also has one.
	v, ok := h.Get()
	if !ok || v != 30 {
		t.Fatalf("first Get = %d, %v; want the cabinet-ring element 30", v, ok)
	}
	st := h.Stats()
	if st.Steals != 1 || st.SegmentsExamined.Sum() != 4 {
		t.Fatalf("first steal examined %.0f segments over %d steals, want 4 over 1 (board pass then cabinet)",
			st.SegmentsExamined.Sum(), st.Steals)
	}

	// With the cabinet dry the ladder must climb all three rings: board
	// pass (0,1), cabinet frontier pass (2,3 then 0,1 again — the
	// admitted frontier is four wide), then the far ring (4, 5, 6) —
	// 9 probes ending at segment 6.
	v, ok = h.Get()
	if !ok || v != 60 {
		t.Fatalf("second Get = %d, %v; want the far-ring element 60", v, ok)
	}
	st = h.Stats()
	if st.Steals != 2 || st.SegmentsExamined.Sum() != 4+9 {
		t.Fatalf("second steal brought examined to %.0f over %d steals, want 13 over 2 (board, cabinet lap, far ring)",
			st.SegmentsExamined.Sum(), st.Steals)
	}
}

// TestGiftRankedByHopCost pins the hierarchy-aware directed-add order on
// a two-cluster topology: gifts go to hungry searchers in the giver's own
// cluster before any cross-cluster mailbox, even when the ring order
// would reach the cross-cluster searcher first.
func TestGiftRankedByHopCost(t *testing.T) {
	p, err := New[int](Options{
		Segments: 8,
		Policies: policy.Set{Place: policy.GiftAll{}},
		Topology: numa.Clusters{Size: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Giver 3's cluster is {2,3}. Handle 4 is the giver's ring successor
	// but lives across the boundary; handle 2 is ring-last but one hop.
	p.boxes[4].hungry.Store(true)
	p.boxes[2].hungry.Store(true)

	if got := p.giftOut(3, []int{42}); got != 1 {
		t.Fatalf("giftOut delivered %d, want 1", got)
	}
	g, ok := p.boxes[2].tryTake()
	if !ok || g.first() != 42 {
		t.Fatalf("near mailbox got (%v, %v), want the single gift 42", g, ok)
	}
	if _, ok := p.boxes[4].tryTake(); ok {
		t.Fatal("cross-cluster mailbox received the gift over a hungry near searcher")
	}

	// A batch splits near-first too: quota 3 over two hungry searchers is
	// chunked ceil(3/2)=2, and the near mailbox must get the first chunk.
	p.boxes[4].hungry.Store(true)
	p.boxes[2].hungry.Store(true)
	if got := p.giftOut(3, []int{1, 2, 3}); got != 3 {
		t.Fatalf("batch giftOut delivered %d, want 3", got)
	}
	g, ok = p.boxes[2].tryTake()
	if !ok || g.count() != 2 {
		t.Fatalf("near mailbox got %d elements, want the first chunk of 2", g.count())
	}
	g, ok = p.boxes[4].tryTake()
	if !ok || g.count() != 1 || g.first() != 3 {
		t.Fatalf("cross mailbox got (%v, %v), want the leftover element 3", g, ok)
	}
}

// TestGiftRingOrderWithoutTopology checks the topology-less delivery
// order is the original ring scan from the giver's successor, so pools
// without hop structure keep the paper's spread-around-the-ring behavior.
func TestGiftRingOrderWithoutTopology(t *testing.T) {
	p, err := New[int](Options{Segments: 4, Policies: policy.Set{Place: policy.GiftAll{}}})
	if err != nil {
		t.Fatal(err)
	}
	p.boxes[0].hungry.Store(true)
	p.boxes[2].hungry.Store(true)
	if got := p.giftOut(1, []int{7}); got != 1 {
		t.Fatalf("giftOut delivered %d, want 1", got)
	}
	if _, ok := p.boxes[2].tryTake(); !ok {
		t.Fatal("ring order from giver 1 should reach hungry box 2 before box 0")
	}
}
