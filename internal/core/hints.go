package core

// This file implements the paper's first suggested extension (Section 5):
// "how might concurrent pools be modified so that searching processors
// leave hints in the pool, and elements added by another processor can be
// directed to the searching process."
//
// Mechanism: every handle owns a one-element mailbox. A searching process
// raises a "hungry" flag; Put on another handle (with Options.DirectedAdds
// enabled) scans for a hungry process and delivers the element straight
// into its mailbox instead of the local segment. The searcher notices the
// gift at its next abort-check and completes its remove without stealing.
// The scan starts just past the giver's own segment, so gifts spread
// around the ring instead of piling onto one consumer.

import "sync/atomic"

// mailbox is a single-slot handoff for directed adds. A buffered channel
// of capacity 1 gives exactly the required semantics: non-blocking
// try-send by the giver, non-blocking try-receive by the owner.
type mailbox[T any] struct {
	slot   chan T
	hungry atomic.Bool
	_      pad
}

func (m *mailbox[T]) init() { m.slot = make(chan T, 1) }

// tryGive attempts to hand v to this mailbox's owner; it reports whether
// the element was delivered.
func (m *mailbox[T]) tryGive(v T) bool {
	if !m.hungry.Load() {
		return false
	}
	select {
	case m.slot <- v:
		return true
	default:
		return false
	}
}

// tryTake removes a delivered element, if any.
func (m *mailbox[T]) tryTake() (T, bool) {
	select {
	case v := <-m.slot:
		return v, true
	default:
		var zero T
		return zero, false
	}
}

// directPut attempts to deliver v to some hungry process other than the
// giver, scanning the ring from the giver's successor. It reports whether
// the element was delivered.
func (p *Pool[T]) directPut(giver int, v T) bool {
	n := len(p.boxes)
	for off := 1; off <= n; off++ {
		if p.boxes[(giver+off)%n].tryGive(v) {
			return true
		}
	}
	return false
}
