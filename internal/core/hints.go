package core

// This file implements the paper's first suggested extension (Section 5):
// "how might concurrent pools be modified so that searching processors
// leave hints in the pool, and elements added by another processor can be
// directed to the searching process."
//
// Mechanism: every handle owns a one-slot mailbox. A searching process
// raises a "hungry" flag; Put/PutAll on another handle (when directed
// adds are enabled) consults the pool's Placement policy for how much of
// the batch to gift and delivers it straight into hungry processes'
// mailboxes instead of the local segment. The searcher notices the gift
// at its next abort-check and completes its remove without stealing.
// Mailboxes carry whole batches, so a PutAll can hand a starving
// consumer an entire reserve (policy.GiftAll), one element per searcher
// (policy.GiftOne), or any policy-chosen split; deliveries scan hungry
// searchers in hop-cost order — nearest ring first under the pool's
// topology, plain ring order from just past the giver's segment without
// one — so gifts spread around the near ring before a cross-cluster
// delivery is even considered. A gift is a remote write to the
// receiver's mailbox, so on a loosely-coupled machine a cross-cluster
// gift costs Far hops exactly like a cross-cluster steal; ranking makes
// it the last resort rather than a ring-position accident.

import (
	"sort"
	"sync/atomic"

	"pools/internal/numa"
)

// gift is a mailbox delivery: either a single element (batch nil — the
// Put fast path, which must not heap-allocate) or a batch slice owned by
// the mailbox once sent.
type gift[T any] struct {
	one   T
	batch []T // nil means the gift is the single element `one`
}

// count returns the number of elements carried.
func (g gift[T]) count() int {
	if g.batch != nil {
		return len(g.batch)
	}
	return 1
}

// first returns the gift's first element.
func (g gift[T]) first() T {
	if g.batch != nil {
		return g.batch[0]
	}
	return g.one
}

// rest returns the elements after the first (nil for single-element
// gifts).
func (g gift[T]) rest() []T {
	if g.batch != nil {
		return g.batch[1:]
	}
	return nil
}

// elements returns every carried element as a slice (allocating for
// single-element gifts — callers on hot paths use first/rest instead).
func (g gift[T]) elements() []T {
	if g.batch != nil {
		return g.batch
	}
	return []T{g.one}
}

// mailbox is a single-slot handoff for directed adds. A buffered channel
// of capacity 1 gives exactly the required semantics: non-blocking
// try-send by the giver, non-blocking try-receive by the owner. banked
// tracks the element count parked in the slot so Pool.Len stays cheap.
type mailbox[T any] struct {
	slot   chan gift[T]
	banked atomic.Int64
	hungry atomic.Bool
	_      pad
}

func (m *mailbox[T]) init() { m.slot = make(chan gift[T], 1) }

// tryGive attempts to hand g to this mailbox's owner; it reports whether
// it was delivered. The giver transfers ownership of g.batch.
func (m *mailbox[T]) tryGive(g gift[T]) bool {
	if !m.hungry.Load() {
		return false
	}
	n := int64(g.count())
	m.banked.Add(n)
	select {
	case m.slot <- g:
		return true
	default:
		m.banked.Add(-n)
		return false
	}
}

// tryTake removes a delivered gift, if any.
func (m *mailbox[T]) tryTake() (gift[T], bool) {
	select {
	case g := <-m.slot:
		m.banked.Add(-int64(g.count()))
		return g, true
	default:
		return gift[T]{}, false
	}
}

// giftOrders precomputes every giver's mailbox delivery order: all other
// segments ranked by hop distance under the topology (cross-cluster
// deliveries last), with ring order from the giver's successor as the
// tiebreak so equal-distance gifts still spread around the ring instead
// of piling onto one consumer. Computed once at pool construction
// (directed placements on pools with a topology only — the topology-less
// ring scan needs no table), so deliveries walk a precomputed slice
// instead of consulting the topology per probe.
func giftOrders(n int, topo numa.Topology) [][]int {
	flat := make([]int, 0, n*(n-1))
	orders := make([][]int, n)
	for g := 0; g < n; g++ {
		start := len(flat)
		for off := 1; off < n; off++ {
			flat = append(flat, (g+off)%n)
		}
		row := flat[start:]
		g := g
		sort.SliceStable(row, func(i, j int) bool {
			return topo.Distance(g, row[i]) < topo.Distance(g, row[j])
		})
		orders[g] = row
	}
	return orders
}

// giftOut offers items to hungry searchers per the pool's Placement
// policy: the policy picks how many elements to gift given the batch size
// and the number of currently-hungry processes, and the quota is split
// into near-even chunks delivered in the giver's hop-ranked order
// (giftOrders) — hungry searchers in the giver's own cluster are fed
// before a gift crosses a boundary. It returns the number of elements
// delivered; the caller adds the remainder to its local segment.
// Single-element chunks travel by value (no allocation — the Put fast
// path); larger chunks are copied, so the caller's backing array is never
// retained.
func (p *Pool[T]) giftOut(giver int, items []T) int {
	n := len(p.boxes)
	// Delivery order: the hop-ranked table when the pool has a topology,
	// otherwise the ring from the giver's successor, computed with
	// modular arithmetic (no table needed for the uniform case).
	var order []int
	if p.giftOrder != nil {
		order = p.giftOrder[giver]
	}
	target := func(j int) int {
		if order != nil {
			return order[j]
		}
		return (giver + 1 + j) % n
	}
	// Single-element fast path (Put): the split decision is binary —
	// gift or keep — so the first hungry box settles it without first
	// counting every hungry searcher on the ring, and delivery needs no
	// chunking or copying.
	if len(items) == 1 {
		for j := 0; j < n-1; j++ {
			t := target(j)
			b := &p.boxes[t]
			// A killed handle's abandoned search may leave its hungry
			// flag momentarily visible; the alive check keeps a gift
			// from landing in a mailbox nobody will ever empty.
			if !b.hungry.Load() || !p.members.Alive(t) {
				continue
			}
			if p.pol.Place.GiftSplit(1, 1) < 1 {
				return 0 // placement keeps single adds local
			}
			if b.tryGive(gift[T]{one: items[0]}) {
				return 1
			}
		}
		return 0
	}
	hungry := 0
	for i := range p.boxes {
		if i != giver && p.boxes[i].hungry.Load() && p.members.Alive(i) {
			hungry++
		}
	}
	if hungry == 0 {
		return 0
	}
	quota := p.pol.Place.GiftSplit(len(items), hungry)
	if quota <= 0 {
		return 0
	}
	if quota > len(items) {
		quota = len(items)
	}
	chunk := (quota + hungry - 1) / hungry
	delivered := 0
	for j := 0; j < n-1 && delivered < quota; j++ {
		t := target(j)
		b := &p.boxes[t]
		if !b.hungry.Load() || !p.members.Alive(t) {
			continue // don't build a chunk for a box that will refuse it
		}
		take := chunk
		if rem := quota - delivered; take > rem {
			take = rem
		}
		var g gift[T]
		if take == 1 {
			g = gift[T]{one: items[delivered]}
		} else {
			batch := make([]T, take)
			copy(batch, items[delivered:delivered+take])
			g = gift[T]{batch: batch}
		}
		if b.tryGive(g) {
			delivered += take
		}
	}
	return delivered
}

// giftsInFlight reports whether any mailbox holds a banked gift whose
// owner is still searching. Those elements are about to surface: the
// owner's next abort check ends its search with the gift, and any surplus
// is parked in its segment with a version bump. A covered search must
// therefore not certify emptiness while one exists. A gift stranded after
// its owner's search ended (the give/abort race the paper accepts) does
// not block: it surfaces on the owner's next remove.
func (p *Pool[T]) giftsInFlight() bool {
	for i := range p.boxes {
		if p.boxes[i].banked.Load() > 0 && p.boxes[i].hungry.Load() {
			return true
		}
	}
	return false
}
