package core

import (
	"sync"
	"testing"
	"time"

	"pools/internal/numa"
	"pools/internal/search"
)

// Failure injection: closing the pool while consumers are deep in searches
// must release every one of them promptly.
func TestCloseReleasesStuckSearchers(t *testing.T) {
	for _, kind := range search.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			const consumers = 3
			p := newTestPool(t, Options{Segments: consumers + 1, Search: kind, Seed: 4})
			for i := 0; i <= consumers; i++ {
				p.Handle(i).Register() // a registered producer keeps searches alive
			}
			var wg sync.WaitGroup
			for i := 0; i < consumers; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					// Empty pool + registered non-searching producer:
					// searches run until the staleness rule or Close fires.
					for {
						if _, ok := p.Handle(id).Get(); !ok && p.Closed() {
							return
						}
					}
				}(i)
			}
			time.Sleep(10 * time.Millisecond)
			p.Close()
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("Close did not release searchers")
			}
		})
	}
}

// Closing a handle from its own goroutine mid-run keeps the remaining
// participants' emptiness detection sound.
func TestHandleCloseMidRunTermination(t *testing.T) {
	const procs = 4
	p := newTestPool(t, Options{Segments: procs, Search: search.Linear})
	for i := 0; i < procs; i++ {
		p.Handle(i).Register()
	}
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := p.Handle(id)
			for j := 0; j < 100; j++ {
				h.Put(j)
			}
			for {
				if _, ok := h.Get(); !ok {
					break // aborted: everyone else closed or all searching
				}
			}
			h.Close()
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("workers never terminated after handle closes")
	}
}

// The NUMA delayer must actually slow operations down in proportion.
func TestDelayerSlowsOperations(t *testing.T) {
	run := func(scale time.Duration) time.Duration {
		p := newTestPool(t, Options{
			Segments: 2,
			Delay:    numa.Delayer{Model: numa.ButterflyCosts(), Scale: scale},
		})
		h := p.Handle(0)
		start := time.Now()
		for i := 0; i < 50; i++ {
			h.Put(i)
		}
		for i := 0; i < 50; i++ {
			h.Get()
		}
		return time.Since(start)
	}
	fast := run(0)
	slow := run(50 * time.Microsecond) // local add=70 vu -> 3.5ms each
	if slow < 10*fast {
		t.Fatalf("delayer had little effect: fast=%v slow=%v", fast, slow)
	}
}

// Two pools must be fully independent (no shared global state).
func TestPoolsAreIndependent(t *testing.T) {
	a := newTestPool(t, Options{Segments: 2, Search: search.Tree})
	b := newTestPool(t, Options{Segments: 2, Search: search.Tree})
	a.Handle(0).Put(1)
	if b.Len() != 0 {
		t.Fatal("pools share state")
	}
	b.Close()
	if v, ok := a.Handle(0).Get(); !ok || v != 1 {
		t.Fatalf("closing pool b broke pool a: (%d,%v)", v, ok)
	}
}

// Steal-one under concurrency conserves elements exactly like steal-half.
func TestStealOneConcurrentConservation(t *testing.T) {
	const procs = 4
	const perProc = 2000
	p := newTestPool(t, Options{Segments: procs, Search: search.Random, Steal: StealOne, Seed: 9})
	for i := 0; i < procs; i++ {
		p.Handle(i).Register()
	}
	var got [procs]int
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := p.Handle(id)
			for j := 0; j < perProc; j++ {
				if j%2 == 0 {
					h.Put(j)
				} else if _, ok := h.Get(); ok {
					got[id]++
				}
			}
			h.Close()
		}(i)
	}
	wg.Wait()
	total := p.Len()
	for _, g := range got {
		total += g
	}
	if total != procs*perProc/2 {
		t.Fatalf("conservation broken: %d of %d", total, procs*perProc/2)
	}
}

// Tree round counters in the pool never decrease (monotonicity invariant)
// even under the locked variant.
func TestPoolTreeRoundsMonotone(t *testing.T) {
	for _, locked := range []bool{false, true} {
		p := newTestPool(t, Options{Segments: 8, Search: search.Tree, TreeLocking: locked})
		producer := p.Handle(3)
		consumer := p.Handle(6)
		prev := make([]uint64, len(p.nodes))
		for round := 0; round < 50; round++ {
			producer.Put(round)
			consumer.Get()
			for i := range p.nodes {
				cur := p.nodes[i].round.Load()
				if cur < prev[i] {
					t.Fatalf("locked=%v node %d round decreased %d -> %d", locked, i, prev[i], cur)
				}
				prev[i] = cur
			}
		}
	}
}
