package core

import (
	"sync"
	"testing"
	"time"

	"pools/internal/search"
)

func TestDirectedAddDeliversToSearcher(t *testing.T) {
	for _, kind := range search.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			p := newTestPool(t, Options{
				Segments: 4, Search: kind, DirectedAdds: true, CollectStats: true,
			})
			consumer := p.Handle(0)
			producer := p.Handle(2)
			consumer.Register()
			producer.Register()

			// The consumer spends nearly all its time hungry inside
			// searches (the pool is empty); the producer trickles
			// elements in. At least one must travel via the mailbox.
			const elems = 200
			done := make(chan int)
			go func() {
				received := 0
				deadline := time.Now().Add(30 * time.Second)
				for received < elems && time.Now().Before(deadline) {
					if _, ok := consumer.Get(); ok {
						received++
					}
				}
				done <- received
			}()
			for i := 0; i < elems; i++ {
				producer.Put(i)
				time.Sleep(time.Millisecond)
			}
			received := <-done
			if received != elems {
				t.Fatalf("consumer received %d of %d", received, elems)
			}
			ps, cs := producer.Stats(), consumer.Stats()
			if ps.DirectedGives == 0 {
				t.Error("no add was ever directed to the hungry consumer")
			}
			if cs.DirectedReceives != ps.DirectedGives {
				t.Errorf("DirectedReceives = %d, DirectedGives = %d",
					cs.DirectedReceives, ps.DirectedGives)
			}
			if p.Len() != 0 {
				t.Errorf("Len = %d after drain", p.Len())
			}
		})
	}
}

func TestDirectedAddFallsBackToLocalSegment(t *testing.T) {
	p := newTestPool(t, Options{Segments: 4, DirectedAdds: true, CollectStats: true})
	h := p.Handle(1)
	// Nobody is hungry: Put must land locally.
	h.Put(7)
	if got := p.SegmentLen(1); got != 1 {
		t.Fatalf("segment 1 has %d, want 1", got)
	}
	if st := h.Stats(); st.DirectedGives != 0 {
		t.Fatalf("DirectedGives = %d, want 0", st.DirectedGives)
	}
}

func TestDirectedAddLenAndDrainSeeMailboxes(t *testing.T) {
	p := newTestPool(t, Options{Segments: 2, DirectedAdds: true})
	// Force a gift into handle 0's mailbox directly (simulating the race
	// where a gift lands as the search ends).
	p.boxes[0].hungry.Store(true)
	if got := p.giftOut(1, []int{99}); got != 1 {
		t.Fatalf("giftOut delivered %d with a hungry mailbox, want 1", got)
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (mailbox element)", p.Len())
	}
	got := p.Drain()
	if len(got) != 1 || got[0] != 99 {
		t.Fatalf("Drain = %v", got)
	}
	if p.Len() != 0 {
		t.Fatalf("Len after drain = %d", p.Len())
	}
}

func TestDirectedAddConservationUnderLoad(t *testing.T) {
	const procs = 8
	const perProducer = 3000
	const producers = 3
	p := newTestPool(t, Options{
		Segments: procs, Search: search.Linear, DirectedAdds: true, Seed: 5,
	})
	for i := 0; i < procs; i++ {
		p.Handle(i).Register()
	}
	var mu sync.Mutex
	seen := map[int]bool{}
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := p.Handle(id)
			if id < producers {
				for j := 0; j < perProducer; j++ {
					h.Put(id*perProducer + j)
				}
				h.Close()
				return
			}
			for {
				v, ok := h.Get()
				if !ok {
					if p.Len() == 0 && p.open.Load() <= int32(procs-producers) {
						h.Close()
						return
					}
					continue
				}
				mu.Lock()
				if seen[v] {
					mu.Unlock()
					t.Errorf("element %d delivered twice", v)
					return
				}
				seen[v] = true
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("delivered %d, want %d", len(seen), producers*perProducer)
	}
}

func TestDirectedAddShortensSearches(t *testing.T) {
	// With directed adds, a producer/consumer run should satisfy some
	// removes via the mailbox (DirectedReceives > 0), demonstrating the
	// extension actually engages under load.
	run := func(directed bool) (receives, steals int64) {
		p := newTestPool(t, Options{
			Segments: 4, Search: search.Linear, DirectedAdds: directed, CollectStats: true, Seed: 2,
		})
		for i := 0; i < 4; i++ {
			p.Handle(i).Register()
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				h := p.Handle(id)
				if id == 0 {
					for j := 0; j < 5000; j++ {
						h.Put(j)
					}
					// Engagement coda: trickle elements with real sleeps.
					// A gift engages only when a Put lands while a consumer
					// is mid-search; on GOMAXPROCS=1 the flood above runs
					// largely uninterrupted, but a sleeping producer forces
					// the scheduler to preempt a spinning consumer — often
					// mid-search with its hunger flag raised — exactly as
					// in TestDirectedAddDeliversToSearcher.
					for j := 0; j < 50 && h.stats.DirectedGives == 0; j++ {
						time.Sleep(time.Millisecond)
						h.Put(5000 + j)
					}
					h.Close()
					return
				}
				for {
					if _, ok := h.Get(); !ok {
						if p.Len() == 0 && p.open.Load() <= 3 {
							h.Close()
							return
						}
					}
				}
			}(i)
		}
		wg.Wait()
		st := p.Stats()
		return st.DirectedReceives, st.Steals
	}
	// Engagement is still scheduling-dependent; retry a few runs before
	// declaring the mechanism dead.
	var receives int64
	for attempt := 0; attempt < 10 && receives == 0; attempt++ {
		receives, _ = run(true)
	}
	if receives == 0 {
		t.Fatal("directed adds never engaged under producer/consumer load")
	}
	offReceives, _ := run(false)
	if offReceives != 0 {
		t.Fatalf("DirectedReceives = %d with the extension disabled", offReceives)
	}
}
