package core

import (
	"testing"

	"pools/internal/policy"
	"pools/internal/search"
)

// TestTenantStealClassification checks the end-to-end interference
// accounting: with a tenant-aware placement on the set, every successful
// steal is classified by whether the victim segment belongs to the
// thief's own tenant, and the foreign fraction surfaces as
// PoolStats.StealInterference.
func TestTenantStealClassification(t *testing.T) {
	tm := policy.EvenTenants(4, 2) // tenant 0: segments 0,1; tenant 1: 2,3
	p, err := New[int](Options{
		Segments:     4,
		Search:       search.Linear,
		CollectStats: true,
		Policies:     policy.Set{Place: policy.TenantFair{Map: tm, Probes: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	thief := p.Handle(0)
	sibling := p.Handle(1)  // same tenant as the thief
	stranger := p.Handle(2) // other tenant

	// Same-tenant steal: only segment 1 holds elements, so the thief's
	// linear walk steals from its own tenant.
	sibling.Put(1)
	sibling.Put(2)
	if _, ok := thief.Get(); !ok {
		t.Fatal("same-tenant steal failed")
	}
	st := p.Stats()
	if st.TenantSteals != 1 || st.ForeignSteals != 0 {
		t.Fatalf("after own-tenant steal: TenantSteals=%d ForeignSteals=%d, want 1,0",
			st.TenantSteals, st.ForeignSteals)
	}

	// Drain the remainder of the first transfer so the next Get must
	// search again, then make the only stocked segment a foreign one.
	for {
		if _, ok := thief.Get(); !ok {
			break
		}
	}
	stranger.Put(3)
	stranger.Put(4)
	if _, ok := thief.Get(); !ok {
		t.Fatal("cross-tenant steal failed")
	}
	st = p.Stats()
	if st.ForeignSteals != 1 {
		t.Fatalf("after foreign steal: ForeignSteals=%d, want 1", st.ForeignSteals)
	}
	if got := st.StealInterference(); got <= 0 || got > 1 {
		t.Errorf("StealInterference = %v, want in (0,1]", got)
	}

	// Every successful steal is classified (TenantSteals is the
	// denominator: all classified steals), and a local remove classifies
	// nothing.
	thief.Put(5)
	thief.Get()
	after := p.Stats()
	if after.TenantSteals != after.Steals {
		t.Errorf("classified %d of %d steals", after.TenantSteals, after.Steals)
	}
	if after.ForeignSteals != st.ForeignSteals {
		t.Errorf("local remove changed foreign classification: %d -> %d",
			st.ForeignSteals, after.ForeignSteals)
	}
}

// TestTenantFairPlacementConfinesAdds checks the placement side on the
// real pool: a tenant's adds land only inside its own segment block even
// when another tenant's segments are emptier.
func TestTenantFairPlacementConfinesAdds(t *testing.T) {
	tm := policy.EvenTenants(4, 2)
	p, err := New[int](Options{
		Segments: 4,
		Search:   search.Linear,
		Policies: policy.Set{Place: policy.TenantFair{Map: tm, Probes: -1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := p.Handle(0)
	for i := 0; i < 40; i++ {
		h.Put(i)
	}
	if n := p.SegmentLen(2) + p.SegmentLen(3); n != 0 {
		t.Errorf("%d elements leaked into the foreign tenant's segments", n)
	}
	if n := p.SegmentLen(0) + p.SegmentLen(1); n != 40 {
		t.Errorf("own tenant holds %d elements, want all 40", n)
	}
}
