package core

import (
	"testing"

	"pools/internal/engine"
	"pools/internal/policy"
	"pools/internal/search"
)

// TestProportionalStealOnRealPool checks the real pool consults a
// non-default StealAmount: a GetN(4) against a remote victim of 40 steals
// exactly 4 under the proportional policy (steal-half would take 20).
func TestProportionalStealOnRealPool(t *testing.T) {
	p, err := New[int](Options{
		Segments: 4,
		Policies: policy.Set{Steal: policy.Proportional{}},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	producer := p.Handle(2)
	consumer := p.Handle(0)
	producer.PutAll(make([]int, 40))

	out := consumer.GetN(4)
	if len(out) != 4 {
		t.Fatalf("GetN(4) returned %d elements", len(out))
	}
	if got := p.SegmentLen(0); got != 0 {
		t.Fatalf("proportional steal parked %d elements locally, want 0", got)
	}
	if got := p.SegmentLen(2); got != 36 {
		t.Fatalf("victim left with %d elements, want 36", got)
	}
}

// TestAdaptiveControllerOnRealPool checks a pool wired with an adaptive
// set runs a produce/consume cycle and feeds the controller (the fraction
// moves off its starting point under sustained stealing).
func TestAdaptiveControllerOnRealPool(t *testing.T) {
	set, err := policy.Named("adaptive")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New[int](Options{Segments: 2, Policies: set, Search: search.Linear})
	if err != nil {
		t.Fatal(err)
	}
	producer := p.Handle(1)
	consumer := p.Handle(0)
	producer.Register()
	consumer.Register()
	// Alternate a remote deposit with a consumer remove: every consumer
	// Get steals, which is maximal steal pressure on the controller.
	for i := 0; i < 200; i++ {
		producer.Put(i)
		if _, ok := consumer.Get(); !ok {
			t.Fatalf("Get %d failed with elements available", i)
		}
	}
	if f := set.Control.StealFraction(); f <= 0.5 {
		t.Fatalf("controller fraction = %v after sustained steal pressure, want > 0.5", f)
	}
}

// TestGiftOutPlacements checks the Placement policies split batches among
// hungry mailboxes as specified: gift-one delivers one element per hungry
// searcher, gift-all splits the whole batch across them.
func TestGiftOutPlacements(t *testing.T) {
	build := func(place policy.Placement) *Pool[int] {
		p, err := New[int](Options{
			Segments: 4,
			Policies: policy.Set{Place: place},
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	items := []int{1, 2, 3, 4, 5}

	p := build(policy.GiftOne{})
	p.boxes[1].hungry.Store(true)
	p.boxes[3].hungry.Store(true)
	if got := p.giftOut(0, items); got != 2 {
		t.Fatalf("gift-one delivered %d of 5 with 2 hungry, want 2", got)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d after gift-one delivery, want 2", p.Len())
	}

	p = build(policy.GiftAll{})
	p.boxes[1].hungry.Store(true)
	p.boxes[3].hungry.Store(true)
	if got := p.giftOut(0, items); got != 5 {
		t.Fatalf("gift-all delivered %d of 5 with 2 hungry, want 5", got)
	}
	g1, ok1 := p.boxes[1].tryTake()
	g3, ok3 := p.boxes[3].tryTake()
	if !ok1 || !ok3 || g1.count()+g3.count() != 5 {
		t.Fatalf("gift-all split = %d + %d elements, want 5 total", g1.count(), g3.count())
	}

	p = build(policy.GiftHalf{})
	p.boxes[2].hungry.Store(true)
	if got := p.giftOut(0, items); got != 3 {
		t.Fatalf("gift-half delivered %d of 5, want ceil(5/2) = 3", got)
	}

	// No hungry searchers: nothing is delivered under any placement.
	p = build(policy.GiftAll{})
	if got := p.giftOut(0, items); got != 0 {
		t.Fatalf("delivered %d with nobody hungry", got)
	}
}

// TestGiftsInFlightHoldsOffAbort checks the abort rule does not certify
// emptiness while a batch gift sits banked in a still-searching process's
// mailbox: the elements are invisible to probes but about to surface.
func TestGiftsInFlightHoldsOffAbort(t *testing.T) {
	p, err := New[int](Options{Segments: 2, Policies: policy.Set{Place: policy.GiftAll{}}})
	if err != nil {
		t.Fatal(err)
	}
	p.Handle(0).Register()
	p.Handle(1).Register()
	p.boxes[1].hungry.Store(true)
	if got := p.giftOut(0, make([]int, 5)); got != 5 {
		t.Fatalf("giftOut delivered %d, want 5", got)
	}

	// Handle 0 has covered the pool (both segments probed empty) with no
	// version change: without gifts the staleness rule would abort. The
	// rule is the same engine.Coverage instance the handle's searches
	// consult, built over the pool's coverage evidence.
	cov := engine.NewCoverage(2, coverageState[int]{p})
	cov.Begin(1)
	cov.SawEmpty(0)
	cov.SawEmpty(1)
	if cov.Aborted() {
		t.Fatal("search aborted while a hungry searcher held a banked batch gift")
	}
	// The gift guard must also outrank the all-searching livelock rule:
	// the gift's owner is itself one of the searchers, so lookers == open
	// holds exactly while the gift is in flight.
	p.lookers.Add(2)
	if cov.Aborted() {
		t.Fatal("all-searching rule certified emptiness over an in-flight batch gift")
	}
	p.lookers.Add(-2)
	// Once the owner's search ends (hunger cleared), a stranded gift no
	// longer blocks: that is the paper's accepted give/abort race, and it
	// surfaces on the owner's next remove.
	p.boxes[1].hungry.Store(false)
	if !cov.Aborted() {
		t.Fatal("covered search failed to abort with no gift in flight")
	}
}

// TestStealEnumAlias checks the deprecated Options.Steal enum still
// selects the steal-one policy when Policies.Steal is nil.
func TestStealEnumAlias(t *testing.T) {
	p, err := New[int](Options{Segments: 2, Steal: StealOne, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.pol.Steal.Name(); got != "steal-one" {
		t.Fatalf("resolved steal policy = %q, want steal-one", got)
	}
	// An explicit Policies.Steal wins over the enum.
	p, err = New[int](Options{
		Segments: 2,
		Steal:    StealOne,
		Policies: policy.Set{Steal: policy.Half{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.pol.Steal.Name(); got != "steal-half" {
		t.Fatalf("resolved steal policy = %q, want steal-half", got)
	}
}
