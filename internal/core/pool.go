// Package core implements the concurrent pool data structure the paper
// evaluates: an unordered collection partitioned into per-processor
// segments, with local adds and removes and a remote steal protocol whose
// every tunable decision — how much a steal transfers, which victims the
// search visits, where adds land, and how those knobs adapt online — is a
// pluggable value from internal/policy (Options.Policies). The paper's
// configuration is the default policy.Set: steal-half over one of the
// three search algorithms (tree, linear, or random; see internal/search).
//
// This is the "real" execution substrate: goroutines, mutex-protected
// element segments, and atomic round counters, suitable for adoption as a
// work-distribution structure. The paper's measured substrate (counter
// segments on a simulated 16-processor Butterfly) lives in internal/sim
// and consults the same policy.Set and search algorithms as this package.
//
// # Usage model
//
// A Pool has a fixed number of segments. Each participating process
// (goroutine) claims the Handle for one segment and performs all its
// operations through it:
//
//	p, _ := core.New[Task](core.Options{Segments: 8, Search: search.Linear})
//	h := p.Handle(3)       // this goroutine owns segment 3
//	h.Put(t)               // local add
//	t, ok := h.Get()       // local remove, stealing remotely if empty
//
// A Handle may be used by only one goroutine at a time. Get returns
// ok=false only when the pool is closed, the handle is closed, or every
// open handle is simultaneously searching — the paper's livelock
// resolution ("when any process discovers that all the processes involved
// in the pool operations are looking ... it aborts its operation").
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pools/internal/engine"
	"pools/internal/metrics"
	"pools/internal/numa"
	"pools/internal/policy"
	"pools/internal/rng"
	"pools/internal/search"
	"pools/internal/segment"
	"pools/internal/trace"
)

// StealPolicy selects how many elements a successful steal transfers.
//
// Deprecated: the enum survives as an alias for the two original
// policies. Set Options.Policies.Steal instead — StealHalf becomes
// Policies.Steal = policy.Half{} (or leave it nil, the default) and
// StealOne becomes Policies.Steal = policy.One{} — which also admits the
// proportional, adaptive, and per-handle policies.
type StealPolicy int

const (
	// StealHalf is the paper's policy: take ceil(n/2) of the victim's
	// elements, "trying to balance the available reserves and prevent its
	// next request from also having to perform a search".
	//
	// Deprecated: use Options.Policies.Steal = policy.Half{} (the default
	// when Policies.Steal is nil).
	StealHalf StealPolicy = iota
	// StealOne takes a single element, the ablation the paper's design
	// argues against.
	//
	// Deprecated: use Options.Policies.Steal = policy.One{}.
	StealOne
)

// String names the policy.
func (s StealPolicy) String() string {
	if s == StealOne {
		return "steal-one"
	}
	return "steal-half"
}

// Options configures a Pool.
type Options struct {
	// Segments is the number of segments (and the maximum number of
	// participating processes). Required, >= 1.
	Segments int
	// Search selects the steal-search algorithm. Default: search.Linear.
	Search search.Kind
	// Seed drives the random search algorithm's per-process streams.
	Seed uint64
	// Policies selects the pool's tunable decisions: steal amount, victim
	// order, placement of adds, and optional online control. Nil slots
	// take paper defaults (steal-half, the Search algorithm's order, local
	// placement — or whole-batch gifting when DirectedAdds is set). See
	// internal/policy.
	Policies policy.Set
	// Steal selects the transfer policy.
	//
	// Deprecated: kept as an alias for the paper's two original policies;
	// it is consulted only when Policies.Steal is nil. Set Policies.Steal
	// = policy.Half{} or policy.One{} instead.
	Steal StealPolicy
	// Delay, when non-zero, injects wall-clock busy-waits per access to
	// emulate a NUMA or loosely-coupled machine (Section 4.3's delays).
	Delay numa.Delayer
	// Topology assigns hop distances to segment pairs, making "remote"
	// non-uniform on the real pool exactly as CostModel.Topo does in the
	// simulator. It feeds two things: CollectStats classifies every remote
	// probe as near or cross-cluster (metrics.PoolStats.CrossProbes), and
	// when Delay is active with no topology of its own, the Delayer's cost
	// model inherits this one so busy-wait delays scale with hop distance.
	// Nil falls back to Delay.Model.Topo (uniform when that is nil too).
	Topology numa.Topology
	// TreeLocking, when true, protects tree round counters with mutexes as
	// the paper describes; the default uses lock-free atomic max, a modern
	// equivalent measured as an ablation.
	TreeLocking bool
	// CollectStats enables per-operation timing and steal accounting
	// (small overhead; required by the benchmarks and harness).
	CollectStats bool
	// SegmentCap, when positive, bounds each segment for TryPut; Put
	// ignores it. This implements the paper's footnote: "an add operation
	// encountering a full segment ... could be handled in a symmetric
	// fashion, adding remotely to a segment with sufficient capacity."
	SegmentCap int
	// DirectedAdds enables the paper's Section 5 hint extension: an add
	// that observes another process searching hands elements straight to
	// that process's mailbox, sparing it the steal.
	//
	// Deprecated: the flag is exactly Policies.Place = policy.GiftAll{};
	// set Policies.Place (GiftAll, GiftHalf, GiftOne, or GiftToEmptiest)
	// instead, which both enables the mailboxes and chooses how much of a
	// batch is gifted.
	DirectedAdds bool
	// TraceBuf, when positive, attaches a flight recorder of that many
	// events to every handle (internal/trace): searches, probes, ring
	// escalations, reserve/transfer edges, gift traffic, and termination
	// verdicts, timestamped in microseconds since pool creation. Zero
	// disables tracing; the disabled hot path stays 0 allocs/op and pays
	// only a nil check per emission site.
	TraceBuf int
}

// ErrBadOptions is returned by New for invalid configuration.
var ErrBadOptions = errors.New("core: invalid options")

// pad keeps hot per-segment state on separate cache lines.
type pad [64]byte

// seg is one segment: an OwnerDeque whose lock-free bottom belongs to the
// segment's handle and whose steal lock serializes thieves. The deque
// pads its own header (owner line / thief line / lock tail) and tiles to
// a cache-line multiple, so adjacent segments in the slice never share a
// line — see segment.TestOwnerDequeLayout.
type seg[T any] struct {
	dq segment.OwnerDeque[T]
}

type treeNode struct {
	round atomic.Uint64
	mu    sync.Mutex // used only when Options.TreeLocking
	_     pad
}

// Pool is a concurrent pool of T. Create with New; the zero value is not
// usable.
type Pool[T any] struct {
	opts      Options
	pol       policy.Set    // resolved policies (no nil slots)
	topo      numa.Topology // resolved hop distances (nil = uniform)
	segs      []seg[T]
	nodes     []treeNode   // heap-indexed tree round counters (tree search only)
	boxes     []mailbox[T] // directed-add mailboxes (directed placement only)
	giftOrder [][]int      // per-giver mailbox delivery order (hop-cost ranked under a topology)
	leaves    int
	handles   []*Handle[T]
	members   *engine.Membership // dynamic membership: alive/victim bits + the coverage epoch
	base      time.Time          // monotonic time zero for op timing and the flight recorder

	lookers atomic.Int32  // registered handles currently inside a search
	open    atomic.Int32  // handles registered and not yet closed
	moving  atomic.Int32  // steals mid-transfer (victim unlocked, surplus not yet deposited)
	version atomic.Uint64 // bumped on every mutation that can feed a search
	closed  atomic.Bool
}

// New creates a pool with the given options.
func New[T any](opts Options) (*Pool[T], error) {
	if opts.Segments < 1 {
		return nil, fmt.Errorf("%w: Segments = %d, need >= 1", ErrBadOptions, opts.Segments)
	}
	if opts.Search == 0 {
		opts.Search = search.Linear
	}
	switch opts.Search {
	case search.Linear, search.Random, search.Tree:
	default:
		return nil, fmt.Errorf("%w: unknown search kind %d", ErrBadOptions, int(opts.Search))
	}
	if opts.SegmentCap < 0 {
		return nil, fmt.Errorf("%w: SegmentCap = %d", ErrBadOptions, opts.SegmentCap)
	}
	if opts.TraceBuf < 0 {
		return nil, fmt.Errorf("%w: TraceBuf = %d", ErrBadOptions, opts.TraceBuf)
	}
	// Resolve the policy set: the deprecated enum and flag act as aliases
	// for the two original steal policies and the gifting placement, then
	// nil slots take paper defaults.
	pol := opts.Policies
	if pol.Steal == nil && opts.Steal == StealOne {
		pol.Steal = policy.One{}
	}
	pol = pol.WithDefaults(opts.Search, opts.DirectedAdds)
	// Mailboxes exist only under a placement that can actually gift:
	// an explicit policy.Local (the no-op placement) gets the same
	// zero-overhead pool as the zero-value configuration.
	_, localPlace := pol.Place.(policy.Local)
	directed := !localPlace
	// Resolve the hop topology: an explicit Options.Topology wins and is
	// threaded into an active Delayer that has none, so the same rings
	// drive both the injected delays and the cross-probe accounting.
	topo := opts.Topology
	if topo == nil {
		topo = opts.Delay.Model.Topo
	} else if opts.Delay.Scale != 0 && opts.Delay.Model.Topo == nil {
		opts.Delay.Model.Topo = topo
	}
	p := &Pool[T]{
		opts:    opts,
		pol:     pol,
		topo:    topo,
		segs:    make([]seg[T], opts.Segments),
		leaves:  search.NumLeavesFor(opts.Segments),
		members: engine.NewMembership(opts.Segments),
		base:    time.Now(),
	}
	if opts.Search == search.Tree || policy.KindOf(pol.Order) == search.Tree {
		p.nodes = make([]treeNode, 2*p.leaves)
	}
	if directed {
		p.boxes = make([]mailbox[T], opts.Segments)
		for i := range p.boxes {
			p.boxes[i].init()
		}
		if topo != nil {
			// Without a topology the delivery order is the plain ring
			// scan, which giftOut computes with modular arithmetic for
			// free; the O(n²) precompute pays off only when there are
			// hop distances to rank by.
			p.giftOrder = giftOrders(opts.Segments, topo)
		}
	}
	p.handles = make([]*Handle[T], opts.Segments)
	for i := range p.handles {
		h := &Handle[T]{pool: p, id: i}
		h.sub.h = h
		var stats *metrics.PoolStats
		if opts.CollectStats {
			stats = &h.stats
		}
		if opts.TraceBuf > 0 {
			h.tr = trace.NewRecorder(i, opts.TraceBuf, p.traceClock)
		}
		h.eng = engine.New(engine.Config{
			Self:      i,
			Segments:  opts.Segments,
			Policies:  pol,
			Seed:      rng.SubSeed(opts.Seed, i),
			Topology:  topo,
			Stats:     stats,
			SizeProbe: h.sizeProbe(),
			Tracer:    h.tr,
			Members:   p.members,
		}, &h.sub, engine.NewCoverage(opts.Segments, coverageState[T]{p}))
		h.steal = h.eng.StealAmount()
		p.handles[i] = h
	}
	return p, nil
}

// traceClock is the flight recorder's wall clock: microseconds since
// pool creation, shared by every handle so their tracks align. It reads
// the monotonic clock only (p.base carries a monotonic reading), the
// same time zero the op-latency stats use.
func (p *Pool[T]) traceClock() int64 { return time.Since(p.base).Microseconds() }

// Tracer returns segment i's flight recorder, nil unless the pool was
// built with Options.TraceBuf > 0. Safe to call (and dump) while the
// pool runs; the recorder synchronizes record-vs-snapshot itself.
func (p *Pool[T]) Tracer(i int) *trace.Recorder { return p.handles[i].tr }

// Timelines snapshots every handle's flight recorder for export
// (trace.ChromeJSON / trace.WriteCSV). It returns nil when tracing is
// disabled.
func (p *Pool[T]) Timelines() []trace.Timeline {
	if p.opts.TraceBuf <= 0 {
		return nil
	}
	recs := make([]*trace.Recorder, len(p.handles))
	for i, h := range p.handles {
		recs[i] = h.tr
	}
	return trace.Collect(recs...)
}

// sizeProbe builds the handle's Director size-probe closure once, so the
// add hot path under a size-aware placement does not allocate a closure
// per Put. Each call charges one probe delay and counts in the
// cross-probe accounting — probing is not free, exactly as in the
// simulator.
func (h *Handle[T]) sizeProbe() func(s int) int {
	return func(s int) int {
		p := h.pool
		p.opts.Delay.Delay(numa.AccessProbe, h.id, s)
		h.eng.NoteProbe(s)
		return p.segs[s].dq.Len()
	}
}

// BatchSize returns the batch size the pool-wide controller recommends
// for a workload configured at current, or current itself without one.
// Per-handle controllers (policy.PerHandle) recommend through
// Handle.BatchSize instead, which batch drivers should prefer; this
// pool-level view exists for observability and pool-wide sets.
func (p *Pool[T]) BatchSize(current int) int {
	if p.pol.Control == nil {
		return current
	}
	return p.pol.Control.BatchSize(current)
}

// Segments returns the number of segments.
func (p *Pool[T]) Segments() int { return p.opts.Segments }

// Handle returns the handle for segment i. Handles are created with the
// pool; repeated calls return the same handle. It panics if i is out of
// range (a programmer error).
func (p *Pool[T]) Handle(i int) *Handle[T] {
	return p.handles[i]
}

// Len returns the current total number of elements, including undelivered
// directed-add gifts. Each segment is read with lock-free per-segment
// snapshots, so the result is consistent per segment, not a linearizable
// global count.
func (p *Pool[T]) Len() int {
	total := 0
	for i := range p.segs {
		total += p.segs[i].dq.Len()
	}
	for i := range p.boxes {
		total += int(p.boxes[i].banked.Load())
	}
	return total
}

// SegmentLen returns the current size of segment i, for observability and
// the segment-trace experiments.
func (p *Pool[T]) SegmentLen(i int) int {
	return p.segs[i].dq.Len()
}

// SeedEvenly distributes items round-robin across segments, bypassing
// per-operation accounting. It is intended for initializing experiments
// ("a pool initialized with only 320 elements") and must not race with
// concurrent operations. Seeds arrive through each segment's foreign
// overflow (the seeder owns no segment); the owner migrates them into
// its ring on first contact.
func (p *Pool[T]) SeedEvenly(items []T) {
	for i, v := range items {
		p.segs[i%len(p.segs)].dq.AddForeign(v)
	}
	p.version.Add(1)
}

// Drain removes and returns all elements, including undelivered
// directed-add gifts. It must not race with concurrent operations.
func (p *Pool[T]) Drain() []T {
	var out []T
	for i := range p.segs {
		out = p.segs[i].dq.StealAll(out)
	}
	for i := range p.boxes {
		if g, ok := p.boxes[i].tryTake(); ok {
			out = append(out, g.elements()...)
		}
	}
	return out
}

// Kill forcibly removes handle i from the pool's membership, as if its
// process had crashed (or been descheduled for good). Unlike Close —
// which the owning goroutine calls on itself — Kill may be called from
// any goroutine; the victim's in-flight operation aborts at its next
// stop check. With drain=true the killed segment's elements (and any
// gift stranded in its mailbox) are redistributed across the surviving
// victim segments and the segment leaves the victim set — searches skip
// it, deposits aimed at it are redirected. With drain=false the segment
// degrades to a steal-only victim: its reserve stays in place and
// drains through the survivors' steals, the dynamic generalization of
// Close's parked-gift path. Either way the membership epoch is bumped,
// so no in-flight search can certify emptiness against the old
// membership. Kill refuses to remove the last live member and reports
// whether the kill happened.
func (p *Pool[T]) Kill(i int, drain bool) bool {
	h := p.handles[i]
	// Order matters: the membership store first, so any deposit that
	// starts after it sees the new victim bit and redirects; then the
	// handle state, so the owner's next operation fails; then the wait
	// on in-flight transfers, so a surplus reserved before the kill has
	// landed (possibly in segment i) before the drain collects it.
	if !p.members.Leave(i, !drain) {
		return false
	}
	h.withdraw()
	if h.tr != nil {
		d := int32(0)
		if drain {
			d = 1
		}
		h.tr.Record(trace.MemberLeave, int32(i), d)
	}
	if drain {
		for p.moving.Load() > 0 {
			runtime.Gosched()
		}
		p.redistribute(i)
	}
	return true
}

// redistribute empties killed segment i — deque and stranded mailbox
// gift — across the surviving victim segments, round-robin. The moving
// count guards the whole relocation exactly like a steal's in-buffer
// window, and the epoch bump at the end forces every search that had
// already covered a destination segment to re-scan it before it may
// certify emptiness.
func (p *Pool[T]) redistribute(i int) {
	p.moving.Add(1)
	items := p.segs[i].dq.StealAll(nil)
	if p.boxes != nil {
		if g, ok := p.boxes[i].tryTake(); ok {
			items = append(items, g.elements()...)
		}
	}
	n := len(p.segs)
	placed := 0
	for off, k := 0, 0; off < n && k < len(items); off++ {
		t := (i + 1 + off) % n
		if !p.members.Victim(t) {
			continue
		}
		// Victims share the relocated elements evenly: ceil of what
		// remains over the victims not yet visited this pass.
		take := (len(items) - k + (p.members.Live() - placed) - 1) / max(p.members.Live()-placed, 1)
		if take < 1 {
			take = 1
		}
		if k+take > len(items) {
			take = len(items) - k
		}
		// The redistributor is not the destination's owner, so the
		// relocated elements go through its foreign overflow.
		p.segs[t].dq.AddForeignAll(items[k : k+take])
		k += take
		placed++
	}
	p.version.Add(1)
	e := p.members.Bump()
	if h := p.handles[i]; h.tr != nil {
		h.tr.Record(trace.EpochBump, int32(e&0x7fffffff), int32(len(items)))
	}
	p.moving.Add(-1)
}

// Revive re-admits a killed (or closed) handle i: the handle returns to
// its pre-Register idle state — its owner's next operation re-registers
// it — and segment i rejoins the victim set, re-entering victim orders,
// gift deliveries, and Director placements. The epoch bump re-arms
// in-flight searches so the rejoined (possibly refilled) segment is
// probed before any emptiness certificate. Revive reports whether the
// handle was in fact dead.
func (p *Pool[T]) Revive(i int) bool {
	h := p.handles[i]
	if !h.state.CompareAndSwap(hsClosed, hsIdle) {
		return false
	}
	p.members.Join(i)
	if h.tr != nil {
		h.tr.Record(trace.MemberJoin, int32(i), 0)
	}
	return true
}

// Alive reports whether handle i is a live member (not killed or
// closed out of the membership).
func (p *Pool[T]) Alive(i int) bool { return p.members.Alive(i) }

// Victim reports whether searches still probe segment i.
func (p *Pool[T]) Victim(i int) bool { return p.members.Victim(i) }

// Epoch returns the pool's membership epoch: bumped on every Kill,
// Revive, and kill-time redistribution.
func (p *Pool[T]) Epoch() uint64 { return p.members.Epoch() }

// placeTarget redirects a deposit aimed at segment s to the nearest
// victim segment when s has left the victim set (a drain-mode kill), so
// no element lands where searches no longer look. On the no-churn path
// it costs one atomic load.
func (p *Pool[T]) placeTarget(s int) int {
	if p.members.Victim(s) {
		return s
	}
	if t := p.members.FallbackVictim(s); t >= 0 {
		return t
	}
	return s
}

// Close marks the pool closed: every in-flight and future search aborts
// and Get returns false. Close is idempotent and safe to call from any
// goroutine.
func (p *Pool[T]) Close() { p.closed.Store(true) }

// Closed reports whether Close has been called.
func (p *Pool[T]) Closed() bool { return p.closed.Load() }

// Stats aggregates the per-handle statistics. Call it only while no
// operations are in flight (for example, after the worker goroutines have
// joined); per-handle collectors are unsynchronized by design.
func (p *Pool[T]) Stats() metrics.PoolStats {
	var total metrics.PoolStats
	for _, h := range p.handles {
		total.Merge(&h.stats)
	}
	return total
}

// roundOf reads tree node n's round counter.
func (p *Pool[T]) roundOf(n int) uint64 {
	if p.opts.TreeLocking {
		nd := &p.nodes[n]
		nd.mu.Lock()
		defer nd.mu.Unlock()
		return nd.round.Load()
	}
	return p.nodes[n].round.Load()
}

// maxRound raises node n's counter to r if greater.
func (p *Pool[T]) maxRound(n int, r uint64) {
	nd := &p.nodes[n]
	if p.opts.TreeLocking {
		nd.mu.Lock()
		if nd.round.Load() < r {
			nd.round.Store(r)
		}
		nd.mu.Unlock()
		return
	}
	for {
		cur := nd.round.Load()
		if cur >= r || nd.round.CompareAndSwap(cur, r) {
			return
		}
	}
}
