package core

import (
	"testing"

	"pools/internal/search"
)

// FuzzMembership interprets a byte script as interleaved pool operations
// and membership transitions, and checks the chaos layer's three
// invariants after every step:
//
//   - conservation: the pool holds exactly puts-takes elements, whatever
//     sequence of drain kills, steal-only kills, and revives ran;
//   - no false-empty certification: a Get by a live handle must produce
//     an element whenever the model says one exists (the coverage abort
//     rule stays exact across every membership epoch);
//   - transition soundness: Kill succeeds exactly when the target is
//     alive and not the last live member, Revive exactly when it is dead.
//
// Script encoding, one byte per step: top two bits select the operation
// (0 put, 1 get, 2 kill, 3 revive), the low two bits the target segment,
// and bit 2 the kill mode (set = drain).
func FuzzMembership(f *testing.F) {
	// Seeds: a drain-kill cycle with elements in flight, a steal-only
	// reserve drained by a survivor, a kill cascade down to the refusal
	// on the last live member, and revives interleaved with operations.
	f.Add([]byte{0x00, 0x00, 0x00, 0x84, 0x41, 0x41, 0xc0, 0x41})
	f.Add([]byte{0x00, 0x00, 0x81, 0x42, 0x42, 0xc1, 0x00, 0x42})
	f.Add([]byte{0x84, 0x85, 0x86, 0x87, 0xc0, 0xc1, 0xc2, 0xc3})
	f.Add([]byte{0x00, 0x86, 0x00, 0x41, 0xc2, 0x85, 0x41, 0x00, 0xc1, 0x41})
	f.Fuzz(func(t *testing.T, script []byte) {
		const segments = 4
		p, err := New[int](Options{Segments: segments, Search: search.Linear, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for step, b := range script {
			tgt := int(b & 3)
			drain := b&4 != 0
			switch b >> 6 {
			case 0:
				aliveHandle(p).Put(step)
				count++
			case 1:
				if _, ok := aliveHandle(p).Get(); ok {
					count--
				} else if count > 0 {
					t.Fatalf("step %d: false-empty certification with %d elements present", step, count)
				}
			case 2:
				killable := p.Alive(tgt) && liveCount(p) > 1
				if got := p.Kill(tgt, drain); got != killable {
					t.Fatalf("step %d: Kill(%d, drain=%v) = %v, want %v", step, tgt, drain, got, killable)
				}
			case 3:
				wasDead := !p.Alive(tgt)
				if got := p.Revive(tgt); got != wasDead {
					t.Fatalf("step %d: Revive(%d) = %v, want %v", step, tgt, got, wasDead)
				}
			}
			if got := p.Len(); got != count {
				t.Fatalf("step %d: conservation violated: Len = %d, model = %d", step, got, count)
			}
		}
	})
}
