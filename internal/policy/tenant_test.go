package policy

import "testing"

func TestEvenTenants(t *testing.T) {
	m := EvenTenants(16, 4)
	if m.NumTenants() != 4 {
		t.Fatalf("NumTenants = %d, want 4", m.NumTenants())
	}
	for s := 0; s < 16; s++ {
		if got, want := m.TenantOf(s), s/4; got != want {
			t.Errorf("TenantOf(%d) = %d, want %d (contiguous blocks)", s, got, want)
		}
	}
	// Uneven division still partitions every segment, ids stay dense.
	m = EvenTenants(10, 3)
	if m.NumTenants() != 3 {
		t.Errorf("NumTenants = %d, want 3", m.NumTenants())
	}
	for s := 1; s < 10; s++ {
		if m.TenantOf(s) < m.TenantOf(s-1) {
			t.Errorf("tenant ids not monotone at segment %d", s)
		}
	}
	// Degenerate tenant counts clamp to one tenant.
	if m := EvenTenants(4, 0); m.NumTenants() != 1 {
		t.Errorf("EvenTenants(4,0).NumTenants = %d, want 1", m.NumTenants())
	}
}

func TestTenantMapDegradesToSingleTenant(t *testing.T) {
	var nilMap TenantMap
	if nilMap.TenantOf(3) != 0 || nilMap.NumTenants() != 1 {
		t.Error("nil map should mean a single tenant owning everything")
	}
	short := TenantMap{0, 1}
	if short.TenantOf(5) != 0 {
		t.Error("out-of-range segment should belong to tenant 0")
	}
	if short.TenantOf(-1) != 0 {
		t.Error("negative segment should belong to tenant 0")
	}
}

func TestTenantFairStaysInPartition(t *testing.T) {
	m := EvenTenants(8, 2) // tenant 0: segments 0-3, tenant 1: 4-7
	tf := TenantFair{Map: m, Probes: -1}
	sizes := make([]int, 8)
	size := func(s int) int { return sizes[s] }

	// The emptiest segment overall is foreign: Direct must not pick it.
	for s := range sizes {
		sizes[s] = 10
	}
	sizes[6] = 0 // tenant 1's segment, tempting but off-limits to tenant 0
	sizes[2] = 3 // tenant 0's emptiest
	if got := tf.Direct(0, 8, 1, size); got != 2 {
		t.Errorf("Direct(0) = %d, want 2 (own tenant's emptiest)", got)
	}
	if got := tf.Direct(5, 8, 1, size); got != 6 {
		t.Errorf("Direct(5) = %d, want 6 (tenant 1's emptiest)", got)
	}

	// Ties keep the nearest probed segment — an all-equal tenant places
	// locally.
	for s := range sizes {
		sizes[s] = 7
	}
	if got := tf.Direct(3, 8, 1, size); got != 3 {
		t.Errorf("Direct(3) on uniform sizes = %d, want self", got)
	}
}

func TestTenantFairProbeBudget(t *testing.T) {
	m := EvenTenants(8, 1) // one tenant: the whole ring is eligible
	tf := TenantFair{Map: m, Probes: 2}
	sizes := []int{5, 4, 0, 0, 0, 0, 0, 0}
	size := func(s int) int { return sizes[s] }
	// Only segments 0 and 1 are probed under the budget; the empty ones
	// beyond are never seen.
	if got := tf.Direct(0, 8, 1, size); got != 1 {
		t.Errorf("Direct with Probes=2 = %d, want 1", got)
	}
}

func TestTenantFairPlacementContract(t *testing.T) {
	tf := TenantFair{Map: EvenTenants(4, 2)}
	if got := tf.GiftSplit(8, 3); got != 0 {
		t.Errorf("GiftSplit = %d, want 0 (mailbox gifts cannot be routed by tenant)", got)
	}
	if tf.Name() == "" {
		t.Error("Name must be non-empty")
	}
	var g Grouped = tf
	if got := g.Partition().NumTenants(); got != 2 {
		t.Errorf("Partition().NumTenants = %d, want 2", got)
	}
}
