package policy

import (
	"testing"

	"pools/internal/numa"
	"pools/internal/search"
)

// clusteredModel returns a cost model with a 4-wide cluster topology and
// a large per-hop delay, the skewed geometry the locality order ranks
// under.
func clusteredModel() numa.CostModel {
	return numa.ButterflyCosts().WithTopology(numa.Clusters{Size: 4}).WithExtraDelay(1000)
}

// TestLocalityOrderRankSkewed checks the victim ranking under a skewed
// cost model: self first, then the in-cluster victims in ring order, then
// the far clusters.
func TestLocalityOrderRankSkewed(t *testing.T) {
	o := LocalityOrder{Model: clusteredModel()}
	rank := o.Rank(5, 16)
	if len(rank) != 16 {
		t.Fatalf("rank has %d entries, want 16", len(rank))
	}
	if rank[0] != 5 {
		t.Fatalf("rank[0] = %d, want self (5)", rank[0])
	}
	// Positions 1..3 must be the rest of cluster {4,5,6,7}, in ring order
	// from self: 6, 7, 4.
	wantNear := []int{6, 7, 4}
	for i, want := range wantNear {
		if rank[1+i] != want {
			t.Fatalf("rank[%d] = %d, want %d (in-cluster victims first, ring tiebreak; rank %v)", 1+i, rank[1+i], want, rank)
		}
	}
	// Every segment appears exactly once.
	seen := map[int]bool{}
	for _, s := range rank {
		if seen[s] {
			t.Fatalf("segment %d appears twice in rank %v", s, rank)
		}
		seen[s] = true
	}
	// Far victims (everything outside cluster 1) fill the tail.
	for _, s := range rank[4:] {
		if s/4 == 1 {
			t.Fatalf("in-cluster victim %d ranked after far victims: %v", s, rank)
		}
	}
}

// TestLocalityOrderSearcher checks the constructed searcher: ordered
// under a skewed model, the fallback algorithm under a victim-uniform one
// (the flat Butterfly), and tree-node allocation via KindOf.
func TestLocalityOrderSearcher(t *testing.T) {
	skewed := LocalityOrder{Model: clusteredModel()}
	if s := skewed.Searcher(2, 16, 1); s.Kind() != search.Ordered {
		t.Fatalf("skewed model searcher kind = %v, want ordered", s.Kind())
	}
	flat := LocalityOrder{Model: numa.ButterflyCosts().WithExtraDelay(500)}
	if s := flat.Searcher(2, 16, 1); s.Kind() != search.Linear {
		t.Fatalf("flat model searcher kind = %v, want the linear fallback", s.Kind())
	}
	tree := LocalityOrder{Model: numa.ButterflyCosts(), Fallback: search.Tree}
	if s := tree.Searcher(2, 16, 1); s.Kind() != search.Tree {
		t.Fatalf("fallback searcher kind = %v, want tree", s.Kind())
	}
	if KindOf(tree) != search.Tree {
		t.Fatalf("KindOf(LocalityOrder{Fallback: Tree}) = %v, want tree (nodes must be allocated)", KindOf(tree))
	}
	if skewed.Name() != "locality" || skewed.SearchKind() != search.Linear {
		t.Fatalf("Name/SearchKind drifted: %q, %v", skewed.Name(), skewed.SearchKind())
	}
	// Two segments: the single remote victim is trivially uniform.
	if s := skewed.Searcher(0, 2, 1); s.Kind() != search.Linear {
		t.Fatalf("two-segment searcher kind = %v, want linear fallback", s.Kind())
	}
	// Rank mirrors the fallback: nil under victim-uniform costs, so
	// ranked-sweep consumers (the keyed pool) keep their default order.
	if r := flat.Rank(2, 16); r != nil {
		t.Fatalf("flat model Rank = %v, want nil", r)
	}
	if r := skewed.Rank(2, 16); r == nil {
		t.Fatal("skewed model Rank = nil, want an order")
	}
}

// TestPerHandleIndependence checks the headline property: two handles fed
// opposite steal rates converge to different fractions, and neither
// disturbs the other.
func TestPerHandleIndependence(t *testing.T) {
	ph := NewPerHandle()
	thief := ph.Spawn(0)
	local := ph.Spawn(1)
	if ph.Spawn(0) != thief {
		t.Fatal("Spawn(0) returned a different instance on the second call")
	}
	for i := 0; i < 20*adaptWindow; i++ {
		thief.Observe(Feedback{Stole: true, Examined: 4, Got: 8})
		local.Observe(Feedback{Got: 1})
	}
	tf, lf := thief.StealFraction(), local.StealFraction()
	if tf != 1 {
		t.Fatalf("always-stealing handle fraction = %v, want 1", tf)
	}
	if lf >= 0.5 {
		t.Fatalf("never-stealing handle fraction = %v, want decayed below 0.5", lf)
	}
	// The aggregate reports the mean; the thief's steal amount uses its
	// own fraction, not the pool mean.
	if mean := ph.StealFraction(); mean <= lf || mean >= tf {
		t.Fatalf("aggregate fraction %v outside (%v, %v)", mean, lf, tf)
	}
	if amt, ok := thief.(StealAmount); !ok || amt.Amount(10, 1) != 10 {
		t.Fatal("thief's spawned controller is not a full-fraction StealAmount")
	}
}

// TestPerHandleAggregate checks the pool-level Controller/StealAmount
// view: fresh aggregates behave like steal-half, Observe is discarded,
// and BatchSize passes through.
func TestPerHandleAggregate(t *testing.T) {
	ph := NewPerHandle()
	if f := ph.StealFraction(); f != 0.5 {
		t.Fatalf("fresh aggregate fraction = %v, want 0.5", f)
	}
	if got := ph.Amount(9, 1); got != 5 {
		t.Fatalf("fresh aggregate Amount(9,1) = %d, want ceil(9/2) = 5", got)
	}
	if got := ph.Amount(4, 6); got != 4 {
		t.Fatalf("Amount(4,6) = %d, want clamped to 4", got)
	}
	for i := 0; i < 10*adaptWindow; i++ {
		ph.Observe(Feedback{Stole: true}) // discarded by design
	}
	if f := ph.StealFraction(); f != 0.5 {
		t.Fatalf("aggregate Observe moved the fraction to %v", f)
	}
	if got := ph.BatchSize(16); got != 16 {
		t.Fatalf("aggregate BatchSize(16) = %d, want 16", got)
	}
	if got := ph.BatchSize(0); got != 1 {
		t.Fatalf("aggregate BatchSize(0) = %d, want 1", got)
	}
	if ph.Name() != "per-handle" {
		t.Fatalf("Name = %q", ph.Name())
	}
	if ph.Handle(3) != nil {
		t.Fatal("Handle(3) non-nil before any Spawn")
	}
	ph.Spawn(3)
	if ph.Handle(3) == nil {
		t.Fatal("Handle(3) nil after Spawn")
	}
}

// TestForHandle checks the resolution rule: per-handle sets hand each
// handle its own spawned controller as both controller and steal amount;
// pool-wide sets pass through; a custom steal amount is never overridden
// by a spawned controller.
func TestForHandle(t *testing.T) {
	set, err := Named("per-handle")
	if err != nil {
		t.Fatal(err)
	}
	c0, s0 := set.ForHandle(0)
	c1, s1 := set.ForHandle(1)
	if c0 == c1 {
		t.Fatal("two handles resolved to the same controller under per-handle")
	}
	if any(c0) != any(s0) || any(c1) != any(s1) {
		t.Fatal("handle's steal amount is not its spawned controller")
	}
	ad, _ := Named("adaptive")
	ca, sa := ad.ForHandle(0)
	cb, _ := ad.ForHandle(1)
	if ca != cb || any(ca) != any(sa) {
		t.Fatal("pool-wide adaptive must resolve to the shared instance for every handle")
	}
	// Custom steal + spawning controller: the steal amount stays.
	mixed := Set{Steal: One{}, Control: NewPerHandle()}
	cm, sm := mixed.ForHandle(0)
	if _, ok := sm.(One); !ok {
		t.Fatalf("explicit steal amount overridden: %T", sm)
	}
	if cm == nil {
		t.Fatal("spawning controller not resolved")
	}
	// No controller at all: everything passes through.
	plain := Set{Steal: Half{}}
	cp, sp := plain.ForHandle(0)
	if cp != nil || sp.Name() != "steal-half" {
		t.Fatal("plain set mangled by ForHandle")
	}
}

// TestGiftToEmptiest checks the Director law: the emptiest probed segment
// wins, ties keep the nearest, the probe budget is honored, and
// GiftSplit mirrors GiftAll.
func TestGiftToEmptiest(t *testing.T) {
	sizes := []int{5, 3, 9, 0, 7, 2}
	size := func(s int) int { return sizes[s] }
	g := GiftToEmptiest{}
	// The zero value probes DefaultProbes (4) segments: from 0 it sees
	// {0,1,2,3} and finds the empty segment 3.
	if got := g.Direct(0, 6, 4, size); got != 3 {
		t.Fatalf("Direct chose %d, want 3 (the empty segment)", got)
	}
	// From segment 4 the default window {4,5,0,1} misses segment 3; the
	// exhaustive variant (negative Probes) finds it.
	if got := g.Direct(4, 6, 1, size); got != 5 {
		t.Fatalf("default-window Direct chose %d, want 5", got)
	}
	if got := (GiftToEmptiest{Probes: -1}).Direct(4, 6, 1, size); got != 3 {
		t.Fatalf("exhaustive Direct chose %d, want 3", got)
	}
	// Probe budget: from segment 4, probing 2 segments sees only {4, 5}.
	lim := GiftToEmptiest{Probes: 2}
	if got := lim.Direct(4, 6, 1, size); got != 5 {
		t.Fatalf("limited Direct chose %d, want 5", got)
	}
	// All-equal sizes: the adder's own segment wins the tie.
	flat := func(int) int { return 4 }
	if got := g.Direct(2, 6, 1, flat); got != 2 {
		t.Fatalf("tie broke to %d, want self (2)", got)
	}
	probes := 0
	counting := func(s int) int { probes++; return sizes[s] }
	lim.Direct(0, 6, 1, counting)
	if probes != 2 {
		t.Fatalf("limited Direct probed %d segments, want 2", probes)
	}
	if g.GiftSplit(7, 0) != 0 || g.GiftSplit(7, 2) != 7 {
		t.Fatal("GiftToEmptiest.GiftSplit must mirror GiftAll")
	}
	if g.Name() != "emptiest" {
		t.Fatalf("Name = %q", g.Name())
	}
}
