package policy

import (
	"math"
	"sync"
)

// Spawner is an optional Controller extension: a pool consults it once per
// handle at construction time so that every handle tunes from its own
// feedback stream. The paper's processes are heterogeneous — its
// producer/consumer workloads (Section 3.3) give half the processes a
// steal rate of zero and the other half a steal rate near one — and a
// single pool-wide controller averages those opposing signals into a
// fraction that suits neither; per-handle controllers let each process
// converge on its own operating point.
type Spawner interface {
	// Spawn returns the controller for the handle owning segment handle.
	// Repeated calls with the same index return the same instance, so a
	// pool and a tracer observing it see one trajectory per handle.
	Spawn(handle int) Controller
}

// PerHandle is the per-handle adaptive policy: a Controller/StealAmount
// pair whose Spawn hands every pool handle its own independent Adaptive
// instance. Two handles with opposite steal rates (a pure producer and a
// pure consumer, say) converge to different steal fractions instead of
// fighting over one shared window — the ROADMAP's "per-handle
// controllers" follow-on to the pool-wide adaptive policy.
//
// The PerHandle value itself implements Controller and StealAmount as the
// aggregate view: StealFraction reports the mean across spawned handles
// (for tables), Amount applies that mean (callers with a handle context —
// every in-repo substrate — use the spawned instance instead, via
// Set.ForHandle), and Observe discards feedback, which only flows through
// the spawned per-handle instances.
//
// A PerHandle must not be shared between independent runs: construct a
// fresh one per trial (Named does).
type PerHandle struct {
	mu   sync.Mutex
	subs map[int]*Adaptive
}

var (
	_ Controller  = (*PerHandle)(nil)
	_ StealAmount = (*PerHandle)(nil)
	_ Spawner     = (*PerHandle)(nil)
)

// NewPerHandle returns a per-handle adaptive policy with no spawned
// controllers yet; each handle's instance starts at the paper's
// steal-half fraction, exactly like NewAdaptive.
func NewPerHandle() *PerHandle {
	return &PerHandle{subs: map[int]*Adaptive{}}
}

// Spawn implements Spawner: the handle's own Adaptive, created on first
// request and remembered so trajectories can be read back per handle.
func (p *PerHandle) Spawn(handle int) Controller {
	p.mu.Lock()
	defer p.mu.Unlock()
	a := p.subs[handle]
	if a == nil {
		a = NewAdaptive()
		p.subs[handle] = a
	}
	return a
}

// Handle returns the spawned controller for a handle, or nil if that
// handle never spawned one.
func (p *PerHandle) Handle(handle int) Controller {
	p.mu.Lock()
	defer p.mu.Unlock()
	if a := p.subs[handle]; a != nil {
		return a
	}
	return nil
}

// meanFraction averages the spawned fractions (fracStart when none).
func (p *PerHandle) meanFraction() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.subs) == 0 {
		return float64(fracStart) / fracUnit
	}
	sum := 0.0
	for _, a := range p.subs {
		sum += a.StealFraction()
	}
	return sum / float64(len(p.subs))
}

// Observe implements Controller on the aggregate: it discards feedback.
// Per-handle state is fed only through the spawned instances; a substrate
// wired with Set.ForHandle never calls this.
func (p *PerHandle) Observe(Feedback) {}

// BatchSize implements Controller on the aggregate: no pool-wide batch
// recommendation (handles recommend individually via their spawned
// instances).
func (p *PerHandle) BatchSize(current int) int {
	if current < 1 {
		return 1
	}
	return current
}

// StealFraction implements Controller on the aggregate: the mean fraction
// across spawned handles, for tables and observability.
func (p *PerHandle) StealFraction() float64 { return p.meanFraction() }

// Amount implements StealAmount on the aggregate, applying the mean
// fraction with Adaptive's law (floored at the requester's appetite).
// Handle-level steals use the spawned instance's Amount instead.
func (p *PerHandle) Amount(n, want int) int {
	k := int(math.Ceil(p.meanFraction() * float64(n)))
	if want > k {
		k = want
	}
	return clamp(k, n)
}

// Name implements Controller and StealAmount.
func (p *PerHandle) Name() string { return "per-handle" }
