package policy

import "sync/atomic"

// Adaptive tuning constants. The window is the number of removes between
// parameter adjustments; fractions are fixed-point with fracUnit = 1.0.
// The window must be short enough to fire several times within one
// paper-protocol run (5000 element-moves across 16 processors is only a
// few hundred remove operations at large batch sizes — a 64-op window
// would never complete and the controller would never adapt).
const (
	adaptWindow = 16              // removes per adjustment window
	fracUnit    = 1024            // fixed-point scale for the steal fraction
	fracMin     = fracUnit / 16   // never steal less than 1/16 of a victim
	fracMax     = fracUnit        // never steal more than everything
	fracStart   = fracUnit / 2    // start at the paper's steal-half
	maxShift    = 2               // batch recommendation caps at 4x configured
	batchCap    = 64              // and never exceeds the largest swept batch
)

// Adaptive is both a StealAmount and a Controller: it steals an online-
// tuned fraction of the victim (never less than the requester's appetite)
// and adjusts that fraction — plus a recommended batch size — from the
// per-remove feedback stream.
//
// Control law, evaluated every adaptWindow removes:
//
//   - steal rate above 25%: local reserves drain between removes, so the
//     fraction rises (×3/2, capped at 1.0) to haul bigger reserves;
//   - steal rate below 5%: hauls outlast the window, so the fraction
//     decays (×2/3, floored at 1/16) to leave victims balanced;
//   - searches averaging more than two probes per steal: each remote trip
//     is expensive, so the recommended batch doubles (up to 4× the
//     configured size, never above 64) to amortize it;
//   - any abort in the window: the pool is draining, so the batch
//     recommendation steps back down.
//
// All state is atomic: many real-pool handles may Observe concurrently.
// Under the sequential simulator the observation order — and therefore
// the parameter trajectory — is deterministic for a fixed seed.
//
// An Adaptive must not be shared between independent runs: construct a
// fresh one per trial (policy.Named does).
//
// The layout is the per-handle controller half of the false-sharing
// audit: the read-mostly control outputs (frac, consulted on every steal
// sizing; shift, on every batch recommendation) sit a cache line away
// from the write-hot window counters that every Observe hammers, and the
// struct tiles to a cache-line multiple so per-handle instances
// (policy.PerHandle allocates one per handle, in a size class that would
// otherwise pack two to a line) never share a line. Verified by
// TestAdaptiveLayout.
type Adaptive struct {
	frac  atomic.Int64 // steal fraction, fixed-point (fracUnit = 1.0)
	shift atomic.Int64 // batch multiplier exponent, 0..maxShift
	_     [48]byte

	// Current-window counters, swapped out at each boundary.
	ops      atomic.Int64
	steals   atomic.Int64
	aborts   atomic.Int64
	examined atomic.Int64
	_        [32]byte
}

var (
	_ StealAmount = (*Adaptive)(nil)
	_ Controller  = (*Adaptive)(nil)
)

// NewAdaptive returns an adaptive policy starting at the paper's
// steal-half fraction with no batch scaling.
func NewAdaptive() *Adaptive {
	a := &Adaptive{}
	a.frac.Store(fracStart)
	return a
}

// Amount implements StealAmount: ceil(n * fraction), floored at the
// requester's appetite (a steal always satisfies the GetN that triggered
// it when the victim can) and clamped to [1, n].
func (a *Adaptive) Amount(n, want int) int {
	f := a.frac.Load()
	k := (int64(n)*f + fracUnit - 1) / fracUnit
	if int64(want) > k {
		k = int64(want)
	}
	return clamp(int(k), n)
}

// Observe implements Controller.
func (a *Adaptive) Observe(fb Feedback) {
	if fb.Stole {
		a.steals.Add(1)
	}
	if fb.Aborted {
		a.aborts.Add(1)
	}
	if fb.Examined > 0 {
		a.examined.Add(int64(fb.Examined))
	}
	if a.ops.Add(1)%adaptWindow != 0 {
		return
	}
	a.adjust(a.steals.Swap(0), a.aborts.Swap(0), a.examined.Swap(0))
}

// adjust applies the control law at a window boundary.
func (a *Adaptive) adjust(steals, aborts, examined int64) {
	f := a.frac.Load()
	switch rate := float64(steals) / adaptWindow; {
	case rate > 0.25:
		f = f * 3 / 2
	case rate < 0.05:
		f = f * 2 / 3
	}
	if f < fracMin {
		f = fracMin
	}
	if f > fracMax {
		f = fracMax
	}
	a.frac.Store(f)

	sh := a.shift.Load()
	if aborts > 0 {
		if sh > 0 {
			sh--
		}
	} else if steals > 0 && examined > 2*steals && sh < maxShift {
		sh++
	}
	a.shift.Store(sh)
}

// BatchSize implements Controller: the configured size scaled by the
// tuned multiplier, capped at batchCap (configurations already above the
// cap are returned unchanged).
func (a *Adaptive) BatchSize(current int) int {
	if current < 1 {
		current = 1
	}
	b := current << uint(a.shift.Load())
	if b > batchCap {
		b = batchCap
	}
	if b < current {
		b = current
	}
	return b
}

// StealFraction implements Controller.
func (a *Adaptive) StealFraction() float64 {
	return float64(a.frac.Load()) / fracUnit
}

// Name implements StealAmount and Controller.
func (a *Adaptive) Name() string { return "adaptive" }
