package policy

// Local keeps every added element in the adder's own segment — the
// paper's base pool, no directed adds.
type Local struct{}

// GiftSplit implements Placement.
func (Local) GiftSplit(int, int) int { return 0 }

// Name implements Placement.
func (Local) Name() string { return "local" }

// GiftOne hands at most one element to each hungry searcher and keeps the
// rest local — the paper's Section 5 directed-add extension applied
// per-element: a batch arrival feeds each starving consumer one element.
type GiftOne struct{}

// GiftSplit implements Placement.
func (GiftOne) GiftSplit(n, hungry int) int {
	if hungry < n {
		return hungry
	}
	return n
}

// Name implements Placement.
func (GiftOne) Name() string { return "gift-one" }

// GiftHalf gifts ceil(n/2) of a batch to hungry searchers and keeps the
// other half local — the steal-half intuition applied on the add side:
// balance reserves between the producer and the starving consumers.
type GiftHalf struct{}

// GiftSplit implements Placement.
func (GiftHalf) GiftSplit(n, hungry int) int {
	if hungry == 0 {
		return 0
	}
	return (n + 1) / 2
}

// Name implements Placement.
func (GiftHalf) Name() string { return "gift-half" }

// GiftAll gifts the entire batch whenever anyone is hungry, split evenly
// among the hungry searchers — the batch-aware directed add: a PutAll
// that observes searchers hands them whole slices, sparing each an entire
// search instead of a single element's worth.
type GiftAll struct{}

// GiftSplit implements Placement.
func (GiftAll) GiftSplit(n, hungry int) int {
	if hungry == 0 {
		return 0
	}
	return n
}

// Name implements Placement.
func (GiftAll) Name() string { return "gift-all" }
