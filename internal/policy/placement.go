package policy

// Local keeps every added element in the adder's own segment — the
// paper's base pool, no directed adds.
type Local struct{}

// GiftSplit implements Placement.
func (Local) GiftSplit(int, int) int { return 0 }

// Name implements Placement.
func (Local) Name() string { return "local" }

// GiftOne hands at most one element to each hungry searcher and keeps the
// rest local — the paper's Section 5 directed-add extension applied
// per-element: a batch arrival feeds each starving consumer one element.
type GiftOne struct{}

// GiftSplit implements Placement.
func (GiftOne) GiftSplit(n, hungry int) int {
	if hungry < n {
		return hungry
	}
	return n
}

// Name implements Placement.
func (GiftOne) Name() string { return "gift-one" }

// GiftHalf gifts ceil(n/2) of a batch to hungry searchers and keeps the
// other half local — the steal-half intuition applied on the add side:
// balance reserves between the producer and the starving consumers.
type GiftHalf struct{}

// GiftSplit implements Placement.
func (GiftHalf) GiftSplit(n, hungry int) int {
	if hungry == 0 {
		return 0
	}
	return (n + 1) / 2
}

// Name implements Placement.
func (GiftHalf) Name() string { return "gift-half" }

// GiftAll gifts the entire batch whenever anyone is hungry, split evenly
// among the hungry searchers — the batch-aware directed add: a PutAll
// that observes searchers hands them whole slices, sparing each an entire
// search instead of a single element's worth.
type GiftAll struct{}

// GiftSplit implements Placement.
func (GiftAll) GiftSplit(n, hungry int) int {
	if hungry == 0 {
		return 0
	}
	return n
}

// Name implements Placement.
func (GiftAll) Name() string { return "gift-all" }

// Director is an optional Placement extension: size-aware placements that
// pick the destination segment for an add by probing segment sizes. It
// generalizes the paper's symmetric remote-add footnote ("an add
// operation encountering a full segment ... could be handled in a
// symmetric fashion, adding remotely to a segment with sufficient
// capacity") from a capacity escape hatch into a placement policy: the
// producer spends probe accesses to steer reserves toward starving
// consumers before they must search.
type Director interface {
	Placement
	// Direct returns the segment that should receive an add of n elements
	// (n >= 1) by the process owning segment self in a pool of segments
	// segments. size reports a segment's current length; every call is
	// charged as one numa.AccessProbe by the substrate, so probing is not
	// free — under the Section 4.3 delay models a wide probe sweep can
	// cost more than it saves. Returning self (or an out-of-range index,
	// which callers clamp to self) keeps the add local.
	Direct(self, segments, n int, size func(seg int) int) int
}

// GiftToEmptiest is the size-aware placement the ROADMAP calls "gift
// toward the emptiest": each add probes segment sizes (walking the ring
// from the adder's own segment) and lands on the emptiest segment probed.
// It attacks the imbalance behind the paper's Section 4.2 bunching result
// — producers' segments overflow while consumers' run dry and "the
// consumers bunch up behind the producers" — from the add side: instead
// of rebalancing via steals after the fact, reserves are placed where
// they are scarcest. Hungry searchers are the extreme of an empty
// segment, so GiftSplit gifts to them first, exactly like GiftAll.
type GiftToEmptiest struct {
	// Probes bounds how many segments each add examines, walking the ring
	// from the adder's own segment. 0 means DefaultProbes: on the real
	// pool every probe takes a segment lock (and under delay models a
	// charged AccessProbe), so an unbounded sweep on the Put hot path
	// would serialize producers across the whole ring. Negative probes
	// every segment — the exhaustive variant the simulator can afford.
	Probes int
}

// DefaultProbes is the zero-value GiftToEmptiest probe budget: the
// adder's own segment plus its next three ring neighbors. A small sample
// already captures most of the balancing benefit (the power-of-d-choices
// effect) at a fixed, segment-count-independent cost per add.
const DefaultProbes = 4

var _ Director = GiftToEmptiest{}

// GiftSplit implements Placement: like GiftAll, the whole batch goes to
// hungry searchers when any exist (a mailbox delivery beats even an
// empty-segment placement — it spares the consumer its whole search).
func (GiftToEmptiest) GiftSplit(n, hungry int) int {
	if hungry == 0 {
		return 0
	}
	return n
}

// Direct implements Director: probe up to Probes segments from self
// around the ring and return the one with the fewest elements. Ties keep
// the earliest (nearest) probed segment, so an all-empty pool places
// locally.
func (g GiftToEmptiest) Direct(self, segments, _ int, size func(seg int) int) int {
	probes := g.Probes
	if probes == 0 {
		probes = DefaultProbes
	}
	if probes < 0 || probes > segments {
		probes = segments
	}
	best, bestLen := self, -1
	for off := 0; off < probes; off++ {
		s := (self + off) % segments
		if l := size(s); bestLen < 0 || l < bestLen {
			best, bestLen = s, l
		}
	}
	return best
}

// Name implements Placement.
func (GiftToEmptiest) Name() string { return "emptiest" }
