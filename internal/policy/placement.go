package policy

import (
	"pools/internal/numa"
)

// Local keeps every added element in the adder's own segment — the
// paper's base pool, no directed adds.
type Local struct{}

// GiftSplit implements Placement.
func (Local) GiftSplit(int, int) int { return 0 }

// Name implements Placement.
func (Local) Name() string { return "local" }

// GiftOne hands at most one element to each hungry searcher and keeps the
// rest local — the paper's Section 5 directed-add extension applied
// per-element: a batch arrival feeds each starving consumer one element.
type GiftOne struct{}

// GiftSplit implements Placement.
func (GiftOne) GiftSplit(n, hungry int) int {
	if hungry < n {
		return hungry
	}
	return n
}

// Name implements Placement.
func (GiftOne) Name() string { return "gift-one" }

// GiftHalf gifts ceil(n/2) of a batch to hungry searchers and keeps the
// other half local — the steal-half intuition applied on the add side:
// balance reserves between the producer and the starving consumers.
type GiftHalf struct{}

// GiftSplit implements Placement.
func (GiftHalf) GiftSplit(n, hungry int) int {
	if hungry == 0 {
		return 0
	}
	return (n + 1) / 2
}

// Name implements Placement.
func (GiftHalf) Name() string { return "gift-half" }

// GiftAll gifts the entire batch whenever anyone is hungry, split evenly
// among the hungry searchers — the batch-aware directed add: a PutAll
// that observes searchers hands them whole slices, sparing each an entire
// search instead of a single element's worth.
type GiftAll struct{}

// GiftSplit implements Placement.
func (GiftAll) GiftSplit(n, hungry int) int {
	if hungry == 0 {
		return 0
	}
	return n
}

// Name implements Placement.
func (GiftAll) Name() string { return "gift-all" }

// Director is an optional Placement extension: size-aware placements that
// pick the destination segment for an add by probing segment sizes. It
// generalizes the paper's symmetric remote-add footnote ("an add
// operation encountering a full segment ... could be handled in a
// symmetric fashion, adding remotely to a segment with sufficient
// capacity") from a capacity escape hatch into a placement policy: the
// producer spends probe accesses to steer reserves toward starving
// consumers before they must search.
type Director interface {
	Placement
	// Direct returns the segment that should receive an add of n elements
	// (n >= 1) by the process owning segment self in a pool of segments
	// segments. size reports a segment's current length; every call is
	// charged as one numa.AccessProbe by the substrate, so probing is not
	// free — under the Section 4.3 delay models a wide probe sweep can
	// cost more than it saves. Returning self (or an out-of-range index,
	// which callers clamp to self) keeps the add local.
	Direct(self, segments, n int, size func(seg int) int) int
}

// GiftToEmptiest is the size-aware placement the ROADMAP calls "gift
// toward the emptiest": each add probes segment sizes (walking the ring
// from the adder's own segment) and lands on the emptiest segment probed.
// It attacks the imbalance behind the paper's Section 4.2 bunching result
// — producers' segments overflow while consumers' run dry and "the
// consumers bunch up behind the producers" — from the add side: instead
// of rebalancing via steals after the fact, reserves are placed where
// they are scarcest. Hungry searchers are the extreme of an empty
// segment, so GiftSplit gifts to them first, exactly like GiftAll.
type GiftToEmptiest struct {
	// Probes bounds how many segments each add examines, walking the ring
	// from the adder's own segment. 0 means DefaultProbes: on the real
	// pool every probe takes a segment lock (and under delay models a
	// charged AccessProbe), so an unbounded sweep on the Put hot path
	// would serialize producers across the whole ring. Negative probes
	// every segment — the exhaustive variant the simulator can afford.
	Probes int
}

// DefaultProbes is the zero-value GiftToEmptiest probe budget: the
// adder's own segment plus its next three ring neighbors. A small sample
// already captures most of the balancing benefit (the power-of-d-choices
// effect) at a fixed, segment-count-independent cost per add.
const DefaultProbes = 4

var _ Director = GiftToEmptiest{}

// GiftSplit implements Placement: like GiftAll, the whole batch goes to
// hungry searchers when any exist (a mailbox delivery beats even an
// empty-segment placement — it spares the consumer its whole search).
func (GiftToEmptiest) GiftSplit(n, hungry int) int {
	if hungry == 0 {
		return 0
	}
	return n
}

// Direct implements Director: probe up to Probes segments from self
// around the ring and return the one with the fewest elements. Ties keep
// the earliest (nearest) probed segment, so an all-empty pool places
// locally.
func (g GiftToEmptiest) Direct(self, segments, _ int, size func(seg int) int) int {
	probes := g.Probes
	if probes == 0 {
		probes = DefaultProbes
	}
	if probes < 0 || probes > segments {
		probes = segments
	}
	best, bestLen := self, -1
	for off := 0; off < probes; off++ {
		s := (self + off) % segments
		if l := size(s); bestLen < 0 || l < bestLen {
			best, bestLen = s, l
		}
	}
	return best
}

// Name implements Placement.
func (GiftToEmptiest) Name() string { return "emptiest" }

// GiftToNearestEmptiest is the topology-aware Director: where
// GiftToEmptiest chases pure emptiness — paying a far cluster's add cost
// whenever a far segment happens to be emptiest — this placement weighs a
// candidate's emptiness against the hop cost of reaching it. Each add
// probes the Probes cheapest segments (nearest rings first under the cost
// model's topology) and lands on the segment minimizing
//
//	Model.Cost(AccessAdd, self, seg) + Weight × size(seg)
//
// i.e. the transfer cost of the add itself plus a per-queued-element
// penalty: an element parked behind size(seg) others is that much less
// useful to a starving consumer. With a zero-valued Model every candidate
// costs alike and the policy degenerates to GiftToEmptiest's ring sweep.
type GiftToNearestEmptiest struct {
	// Model supplies hop-aware access costs (and, through Model.Topo, the
	// nearest-first probe order). The zero value charges nothing, reducing
	// the score to pure emptiness.
	Model numa.CostModel
	// Probes bounds how many segments each add examines, cheapest-first.
	// 0 means DefaultProbes; negative probes every segment.
	Probes int
	// Weight is the score penalty per element already queued at a
	// candidate, in the Model's virtual µs. 0 means one near-remote add
	// (AddCost × RemoteFactor + one hop of RemoteExtra): a surplus element
	// costs roughly what it costs a dry neighbor to come steal it. 1 when
	// the model is zero-valued (pure emptiness).
	Weight int64
}

var _ Director = GiftToNearestEmptiest{}

// GiftSplit implements Placement: like GiftToEmptiest, hungry searchers
// get the whole batch first (a mailbox delivery spares a search — no hop
// cost competes with that).
func (GiftToNearestEmptiest) GiftSplit(n, hungry int) int {
	if hungry == 0 {
		return 0
	}
	return n
}

// weight resolves the per-queued-element penalty: one near-remote add
// under the model, or 1 for a zero-valued model.
func (g GiftToNearestEmptiest) weight() int64 {
	if g.Weight > 0 {
		return g.Weight
	}
	f := g.Model.RemoteFactor
	if f < 1 {
		f = 1
	}
	if w := g.Model.AddCost*f + g.Model.RemoteExtra; w > 0 {
		return w
	}
	return 1
}

// Direct implements Director: probe the Probes cheapest candidates and
// return the one with the lowest transfer-plus-queue score. Candidates are
// ordered by ascending add cost with ring order from self as the tiebreak,
// so the local segment is always probed and equal-cost ties stay near.
// This runs on the Put hot path, so the cheapest-candidate selection is a
// single bounded insertion pass (two probes-sized buffers), not a
// segments-sized sort.
func (g GiftToNearestEmptiest) Direct(self, segments, _ int, size func(seg int) int) int {
	probes := g.Probes
	if probes == 0 {
		probes = DefaultProbes
	}
	if probes < 0 || probes > segments {
		probes = segments
	}
	w := g.weight()
	if probes == segments {
		// Exhaustive: every segment is probed, no selection needed.
		best, bestScore := self, int64(-1)
		for off := 0; off < segments; off++ {
			s := (self + off) % segments // ring order = score tiebreak
			score := g.Model.Cost(numa.AccessAdd, self, s) + w*int64(size(s))
			if bestScore < 0 || score < bestScore {
				best, bestScore = s, score
			}
		}
		return best
	}
	// Keep the probes cheapest segments, walking the ring from self so
	// equal-cost ties stay near (strict > below preserves that order).
	cand := make([]int, 0, probes)
	cost := make([]int64, 0, probes)
	for off := 0; off < segments; off++ {
		s := (self + off) % segments
		c := g.Model.Cost(numa.AccessAdd, self, s)
		if len(cand) == probes && c >= cost[probes-1] {
			continue
		}
		i := len(cand)
		if i < probes {
			cand = append(cand, 0)
			cost = append(cost, 0)
		} else {
			i--
		}
		for ; i > 0 && cost[i-1] > c; i-- {
			cand[i], cost[i] = cand[i-1], cost[i-1]
		}
		cand[i], cost[i] = s, c
	}
	best, bestScore := self, int64(-1)
	for i, s := range cand {
		score := cost[i] + w*int64(size(s))
		if bestScore < 0 || score < bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// Name implements Placement.
func (GiftToNearestEmptiest) Name() string { return "near-emptiest" }
