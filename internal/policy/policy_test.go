package policy

import (
	"testing"

	"pools/internal/search"
)

// TestStealAmountBounds checks every StealAmount implementation returns a
// legal transfer size in [1, n] across a grid of victim sizes and
// requester appetites, and matches its closed-form law.
func TestStealAmountBounds(t *testing.T) {
	impls := []struct {
		name string
		s    StealAmount
		want func(n, want int) int
	}{
		{"half", Half{}, func(n, _ int) int { return (n + 1) / 2 }},
		{"one", One{}, func(_, _ int) int { return 1 }},
		{"proportional", Proportional{}, func(n, want int) int {
			if want > n {
				return n
			}
			return want
		}},
		{"proportional-2x", Proportional{Factor: 2}, func(n, want int) int {
			if 2*want > n {
				return n
			}
			return 2 * want
		}},
		{"adaptive-start", NewAdaptive(), func(n, want int) int {
			// Fresh adaptive starts at the steal-half fraction, floored at
			// the requester's appetite.
			k := (n + 1) / 2
			if want > k {
				k = want
			}
			if k > n {
				k = n
			}
			return k
		}},
	}
	for _, im := range impls {
		t.Run(im.name, func(t *testing.T) {
			for n := 1; n <= 130; n++ {
				for _, want := range []int{1, 2, 7, 16, 64, 1000} {
					got := im.s.Amount(n, want)
					if got < 1 || got > n {
						t.Fatalf("%s.Amount(%d, %d) = %d, outside [1, %d]", im.name, n, want, got, n)
					}
					if exp := im.want(n, want); got != exp {
						t.Fatalf("%s.Amount(%d, %d) = %d, want %d", im.name, n, want, got, exp)
					}
				}
			}
		})
	}
}

// TestPlacementGiftSplit checks each Placement's split law on a grid of
// batch sizes and hungry-searcher counts.
func TestPlacementGiftSplit(t *testing.T) {
	impls := []struct {
		name string
		p    Placement
		want func(n, hungry int) int
	}{
		{"local", Local{}, func(_, _ int) int { return 0 }},
		{"gift-one", GiftOne{}, func(n, hungry int) int {
			if hungry < n {
				return hungry
			}
			return n
		}},
		{"gift-half", GiftHalf{}, func(n, hungry int) int {
			if hungry == 0 {
				return 0
			}
			return (n + 1) / 2
		}},
		{"gift-all", GiftAll{}, func(n, hungry int) int {
			if hungry == 0 {
				return 0
			}
			return n
		}},
	}
	for _, im := range impls {
		t.Run(im.name, func(t *testing.T) {
			for n := 1; n <= 65; n++ {
				for hungry := 0; hungry <= 17; hungry++ {
					got := im.p.GiftSplit(n, hungry)
					if exp := im.want(n, hungry); got != exp {
						t.Fatalf("%s.GiftSplit(%d, %d) = %d, want %d", im.name, n, hungry, got, exp)
					}
					if got < 0 || got > n {
						t.Fatalf("%s.GiftSplit(%d, %d) = %d, outside [0, %d]", im.name, n, hungry, got, n)
					}
				}
			}
		})
	}
}

// TestAdaptiveRaisesFractionUnderStealPressure drives the controller with
// a window of steal-heavy feedback and checks the fraction rises, then
// with steal-free feedback and checks it decays — both within bounds.
func TestAdaptiveRaisesFractionUnderStealPressure(t *testing.T) {
	a := NewAdaptive()
	if f := a.StealFraction(); f != 0.5 {
		t.Fatalf("fresh adaptive fraction = %v, want 0.5", f)
	}
	// Every remove steals: fraction must rise toward 1 and never exceed it.
	prev := a.StealFraction()
	for w := 0; w < 10; w++ {
		for i := 0; i < adaptWindow; i++ {
			a.Observe(Feedback{Stole: true, Examined: 4, Got: 8})
		}
		f := a.StealFraction()
		if f < prev {
			t.Fatalf("fraction fell under steal pressure: %v -> %v", prev, f)
		}
		if f > 1 {
			t.Fatalf("fraction exceeded 1: %v", f)
		}
		prev = f
	}
	if prev != 1 {
		t.Fatalf("fraction after sustained steal pressure = %v, want 1", prev)
	}
	// No remove steals: fraction must decay and respect the floor.
	for w := 0; w < 20; w++ {
		for i := 0; i < adaptWindow; i++ {
			a.Observe(Feedback{Got: 1})
		}
	}
	if f := a.StealFraction(); f < 1.0/16-1e-9 || f >= 0.5 {
		t.Fatalf("fraction after sustained local removes = %v, want decayed within [1/16, 0.5)", f)
	}
}

// TestAdaptiveBatchRecommendation checks long searches raise the batch
// recommendation (capped), aborts lower it, and the recommendation never
// drops below the configured size.
func TestAdaptiveBatchRecommendation(t *testing.T) {
	a := NewAdaptive()
	if b := a.BatchSize(16); b != 16 {
		t.Fatalf("fresh BatchSize(16) = %d, want 16", b)
	}
	// Expensive searches, no aborts: recommendation grows to the cap.
	for w := 0; w < 5; w++ {
		for i := 0; i < adaptWindow; i++ {
			a.Observe(Feedback{Stole: true, Examined: 8, Got: 4})
		}
	}
	if b := a.BatchSize(16); b != batchCap {
		t.Fatalf("BatchSize(16) under long searches = %d, want %d", b, batchCap)
	}
	if b := a.BatchSize(128); b != 128 {
		t.Fatalf("BatchSize(128) = %d, want configurations above the cap unchanged", b)
	}
	// A window with aborts steps the recommendation back down.
	for i := 0; i < adaptWindow; i++ {
		a.Observe(Feedback{Aborted: true})
	}
	if b := a.BatchSize(16); b != 32 {
		t.Fatalf("BatchSize(16) after aborts = %d, want 32", b)
	}
	if b := a.BatchSize(0); b < 1 {
		t.Fatalf("BatchSize(0) = %d, want >= 1", b)
	}
}

// TestNamed checks the registry constructs every advertised policy and
// that adaptive sets from separate calls do not share controller state.
func TestNamed(t *testing.T) {
	for _, name := range Names() {
		set, err := Named(name)
		if err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
		if set.Steal == nil {
			t.Fatalf("Named(%q) has no StealAmount", name)
		}
		if set.Steal.Name() == "" {
			t.Fatalf("Named(%q) steal policy has empty name", name)
		}
	}
	if _, err := Named("nonsense"); err == nil {
		t.Fatal("Named(nonsense) succeeded")
	}
	a1, _ := Named("adaptive")
	a2, _ := Named("adaptive")
	if a1.Control == nil || a2.Control == nil {
		t.Fatal("adaptive set missing controller")
	}
	if a1.Control == a2.Control {
		t.Fatal("adaptive sets share a controller; trials would contaminate each other")
	}
	for i := 0; i < 10*adaptWindow; i++ {
		a1.Control.Observe(Feedback{Stole: true, Examined: 4})
	}
	if a2.Control.StealFraction() != 0.5 {
		t.Fatalf("observing one adaptive set moved another's fraction to %v", a2.Control.StealFraction())
	}
}

// TestSetDefaultsAndName checks WithDefaults fills every slot and Name
// renders something stable for tables.
func TestSetDefaultsAndName(t *testing.T) {
	s := Set{}.WithDefaults(search.Tree, false)
	if s.Steal.Name() != "steal-half" || s.Order.Name() != "tree" || s.Place.Name() != "local" {
		t.Fatalf("defaults = %s/%s/%s", s.Steal.Name(), s.Order.Name(), s.Place.Name())
	}
	s = Set{}.WithDefaults(0, true)
	if s.Order.Name() != "linear" || s.Place.Name() != "gift-all" {
		t.Fatalf("directed defaults = %s/%s", s.Order.Name(), s.Place.Name())
	}
	if got := (Set{}).Name(); got != "default" {
		t.Fatalf("zero Set.Name() = %q", got)
	}
	ad, _ := Named("adaptive")
	if got := ad.Name(); got != "adaptive" {
		t.Fatalf("adaptive Set.Name() = %q", got)
	}
	if w := (Order{Kind: search.Random}).Searcher(2, 8, 42); w.Kind() != search.Random {
		t.Fatalf("Order.Searcher kind = %v", w.Kind())
	}
}
