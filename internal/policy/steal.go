package policy

// Half is the paper's steal policy: take ceil(n/2) of the victim's
// elements, "trying to balance the available reserves and prevent its next
// request from also having to perform a search". A single remaining
// element is taken outright.
type Half struct{}

// Amount implements StealAmount.
func (Half) Amount(n, _ int) int { return clamp((n+1)/2, n) }

// Name implements StealAmount.
func (Half) Name() string { return "steal-half" }

// One takes a single element per steal — the ablation the paper's design
// argues against: it leaves the victim's reserves intact but guarantees
// the thief's very next remove searches again.
type One struct{}

// Amount implements StealAmount.
func (One) Amount(n, _ int) int { return clamp(1, n) }

// Name implements StealAmount.
func (One) Name() string { return "steal-one" }

// Proportional scales the transfer with the requester's appetite: a GetN
// asking for k elements steals about Factor*k, so batch consumers haul
// batch-sized chunks while single-element consumers behave like steal-one.
// This is the ROADMAP's "split proportionally to the requester's max".
type Proportional struct {
	// Factor scales the requested batch size; 0 means 1.0 (take exactly
	// what was asked for, up to the victim's holdings).
	Factor float64
}

// Amount implements StealAmount.
func (p Proportional) Amount(n, want int) int {
	f := p.Factor
	if f <= 0 {
		f = 1
	}
	k := int(f*float64(want) + 0.5)
	return clamp(k, n)
}

// Name implements StealAmount.
func (Proportional) Name() string { return "proportional" }
