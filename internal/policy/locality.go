package policy

import (
	"sort"

	"pools/internal/numa"
	"pools/internal/search"
)

// Ranker is an optional VictimOrder extension: orders that can express
// their preference as an explicit visit sequence. Substrates that do not
// run a search.Searcher — the keyed pool's ring sweep is the in-repo case
// — consult it to walk victims in the order's preference instead of raw
// ring order.
type Ranker interface {
	// Rank returns the victim visit order for the process owning segment
	// self in a pool of segments segments, or nil when ranking adds
	// nothing (victim-uniform costs) and the caller should keep its own
	// default order. In a non-nil order the first entry is conventionally
	// self (the cheapest probe) and every segment appears exactly once.
	Rank(self, segments int) []int
}

// LocalityOrder is the latency-aware VictimOrder: it consults a
// numa.CostModel and visits victims cheapest-first, so a searching
// process exhausts its near neighborhood before paying for far
// references. The paper's Section 4.3 delay experiments (1 µs .. 100 ms
// added per remote operation) show all three of its search algorithms
// converging as remote costs grow — they are equally blind to where a
// victim lives; LocalityOrder is the policy that stops being blind, and
// it separates from them exactly when the cost model makes "remote"
// non-uniform (e.g. numa.Clusters).
//
// When the model charges every remote victim identically (the measured
// Butterfly: a flat switch network, no topology), ranking adds nothing
// and the order falls back to the configured paper algorithm.
type LocalityOrder struct {
	// Model is the access cost model victims are ranked under. Ranking
	// uses probe costs; any access kind gives the same order since cost is
	// monotone in distance.
	Model numa.CostModel
	// Fallback is the search algorithm used when Model charges every
	// remote victim the same (ranking would be arbitrary); 0 means
	// search.Linear, the paper's cheapest algorithm.
	Fallback search.Kind
}

var (
	_ VictimOrder = LocalityOrder{}
	_ Ranker      = LocalityOrder{}
)

// fallbackKind returns the fallback algorithm, defaulting to Linear.
func (o LocalityOrder) fallbackKind() search.Kind {
	if o.Fallback == 0 {
		return search.Linear
	}
	return o.Fallback
}

// SearchKind reports the fallback algorithm. KindOf consults it so pools
// allocate tree round-counter nodes when the fallback is search.Tree.
func (o LocalityOrder) SearchKind() search.Kind { return o.fallbackKind() }

// probeCosts returns the model's probe cost from self to every segment.
func (o LocalityOrder) probeCosts(self, segments int) []int64 {
	costs := make([]int64, segments)
	for v := 0; v < segments; v++ {
		costs[v] = o.Model.Cost(numa.AccessProbe, self, v)
	}
	return costs
}

// uniform reports whether every remote victim costs the same to probe, in
// which case ranking degenerates and the fallback algorithm is used.
func uniform(self int, costs []int64) bool {
	first := int64(-1)
	for v, c := range costs {
		if v == self {
			continue
		}
		if first < 0 {
			first = c
			continue
		}
		if c != first {
			return false
		}
	}
	return true
}

// Rank implements Ranker: segments in ascending probe-cost order, ties
// broken by ring distance from self (so the local segment — the only
// non-remote probe — always ranks first, and equal-cost victims are
// visited in the paper's linear order). Under a victim-uniform model it
// returns nil — there is nothing to rank, and callers (the keyed pool's
// sweep) keep their own default order, mirroring Searcher's fallback.
func (o LocalityOrder) Rank(self, segments int) []int {
	costs := o.probeCosts(self, segments)
	if uniform(self, costs) {
		return nil
	}
	order := make([]int, segments)
	for i := range order {
		order[i] = (self + i) % segments // ring order from self = tiebreak
	}
	sort.SliceStable(order, func(i, j int) bool {
		return costs[order[i]] < costs[order[j]]
	})
	return order
}

// Searcher implements VictimOrder: a cost-ranked ordered searcher, or the
// fallback algorithm when the model is victim-uniform (Rank returns nil).
func (o LocalityOrder) Searcher(self, segments int, seed uint64) search.Searcher {
	if rank := o.Rank(self, segments); rank != nil {
		return search.NewOrderedSearcher(rank)
	}
	return search.New(o.fallbackKind(), self, segments, seed)
}

// Name implements VictimOrder.
func (o LocalityOrder) Name() string { return "locality" }
