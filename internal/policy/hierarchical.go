package policy

import (
	"sort"

	"pools/internal/numa"
	"pools/internal/rng"
	"pools/internal/search"
)

// ControlAware is an optional VictimOrder extension: orders whose
// searchers consult the handle's Controller while they run. Substrates
// resolve the handle's controller first (Set.ForHandle) and then build the
// searcher through BuildSearcher, so a per-handle controller tunes the
// very search that feeds it — HierarchicalOrder's escalation threshold is
// the in-repo case.
type ControlAware interface {
	VictimOrder
	// SearcherFor is Searcher with the handle's resolved controller (nil
	// when the policy set has none).
	SearcherFor(self, segments int, seed uint64, ctl Controller) search.Searcher
}

// BuildSearcher constructs the search strategy for one handle: orders that
// are ControlAware receive the handle's controller, every other order gets
// the plain Searcher call. Both substrates (internal/core and
// internal/sim) build their per-handle searchers through this helper.
func BuildSearcher(o VictimOrder, self, segments int, seed uint64, ctl Controller) search.Searcher {
	if ca, ok := o.(ControlAware); ok {
		return ca.SearcherFor(self, segments, seed, ctl)
	}
	return o.Searcher(self, segments, seed)
}

// Escalator is an optional Controller extension consulted by hierarchical
// searchers: it tunes how many consecutive fruitless probes a searcher
// invests in its current hop frontier before escalating to the next ring.
// Adaptive implements it from the same feedback window that drives its
// batch recommendation: when searches run long relative to steals the
// local rings are evidently dry, so the threshold drops and the searcher
// crosses sooner.
type Escalator interface {
	// EscalationThreshold returns the tuned threshold for a frontier whose
	// untuned (structural) threshold is base (>= 1). Implementations must
	// return a value >= 1: a searcher must always invest at least one probe
	// per frontier, or escalation degenerates into a flat search.
	EscalationThreshold(base int) int
}

// EscalationThreshold implements Escalator: the structural base shrinks by
// the same power-of-two shift that grows the batch recommendation. The
// shift rises when searches average many probes per steal — exactly the
// signal that the cheap rings are dry and persistence there is wasted —
// and falls back when aborts show the whole pool draining (crossing
// clusters cannot help an empty machine). Never below one probe.
func (a *Adaptive) EscalationThreshold(base int) int {
	t := base >> uint(a.shift.Load())
	if t < 1 {
		return 1
	}
	return t
}

// EscalationThreshold implements Escalator on the aggregate: the
// structural base, untuned. Handle-level searchers built via Set.ForHandle
// consult their spawned Adaptive instance instead.
func (p *PerHandle) EscalationThreshold(base int) int {
	if base < 1 {
		return 1
	}
	return base
}

// HierarchicalOrder is the cluster-first VictimOrder for machines whose
// numa.Topology groups processors into hop rings: a searching process
// exhausts every victim in its own cluster — repeatedly, in the Inner
// order's preference — before escalating to the next ring, and so on
// outward until the whole machine is in play. The paper's loosely-coupled
// setting makes cross-machine probes the dominant cost; LocalityOrder
// stops being blind to that cost by visiting cheapest-first, and
// HierarchicalOrder goes one step further by *refusing* to pay it until
// the near rings have proven fruitless.
//
// Escalation is governed by a threshold of consecutive fruitless probes
// within the current frontier. The structural default (Threshold == 0) is
// one full fruitless pass over the frontier; when the handle's Controller
// implements Escalator (the adaptive policies do), the threshold is tuned
// online from the same feedback window that drives batch recommendations.
//
// Under a nil or victim-uniform Topology there are no rings to climb and
// the order delegates to Inner entirely, mirroring LocalityOrder's
// fallback under victim-uniform costs.
type HierarchicalOrder struct {
	// Topo assigns the hop rings. Nil behaves like numa.Uniform (one
	// remote ring), which delegates everything to Inner.
	Topo numa.Topology
	// Inner orders victims within each ring: a paper search order
	// (policy.Order) or LocalityOrder. Rankers (LocalityOrder) contribute
	// their preference; Order{Kind: search.Random} shuffles each ring with
	// the searcher's seed; every other order visits rings clockwise from
	// self. Nil means Order{Kind: search.Linear}.
	Inner VictimOrder
	// Threshold is the consecutive-fruitless-probe count that triggers
	// escalation to the next ring. 0 means the structural default (the
	// current frontier's size: one full fruitless pass); negative means
	// escalate immediately (every probe admits the next ring — the flat
	// ablation). Explicit positive values larger than the frontier make
	// the searcher lap its cluster several times before crossing.
	Threshold int
}

var (
	_ ControlAware = HierarchicalOrder{}
	_ Ranker       = HierarchicalOrder{}
)

// inner returns the within-ring order, defaulting to linear.
func (o HierarchicalOrder) inner() VictimOrder {
	if o.Inner == nil {
		return Order{Kind: search.Linear}
	}
	return o.Inner
}

// SearchKind reports the algorithm the order delegates to under a
// ring-less topology, so pools allocate tree round-counter nodes when the
// inner order needs them.
func (o HierarchicalOrder) SearchKind() search.Kind { return KindOf(o.inner()) }

// Name implements VictimOrder.
func (o HierarchicalOrder) Name() string { return "hier-" + o.inner().Name() }

// distances returns each segment's hop distance from self (numa.Uniform
// when Topo is nil) and whether every remote segment sits at the same
// distance (no rings: hierarchy adds nothing).
func (o HierarchicalOrder) distances(self, segments int) (dist []int, uniform bool) {
	topo := o.Topo
	if topo == nil {
		topo = numa.Uniform{}
	}
	dist = make([]int, segments)
	uniform = true
	first := -1
	for s := 0; s < segments; s++ {
		if s == self {
			continue
		}
		dist[s] = topo.Distance(self, s)
		if dist[s] < 1 {
			dist[s] = 1
		}
		if first < 0 {
			first = dist[s]
		} else if dist[s] != first {
			uniform = false
		}
	}
	return dist, uniform
}

// innerPositions returns each segment's preference index under the inner
// order: a Ranker's explicit rank when it offers one, a seeded shuffle for
// the random order, ring offset from self otherwise. Smaller is preferred.
func (o HierarchicalOrder) innerPositions(self, segments int, seed uint64) []int {
	pos := make([]int, segments)
	in := o.inner()
	if r, ok := in.(Ranker); ok {
		if rank := r.Rank(self, segments); rank != nil {
			for i, s := range rank {
				pos[s] = i
			}
			return pos
		}
	}
	if ord, ok := in.(Order); ok && ord.Kind == search.Random {
		perm := make([]int, segments)
		for i := range perm {
			perm[i] = i
		}
		x := rng.NewXoshiro256(seed)
		for i := segments - 1; i > 0; i-- {
			j := int(x.Next() % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		for i, s := range perm {
			pos[s] = i
		}
		pos[self] = -1 // self stays first within ring 0
		return pos
	}
	for s := 0; s < segments; s++ {
		pos[s] = (s - self + segments) % segments // clockwise from self
	}
	return pos
}

// plan builds the full visit order (self first, then rings outward, inner
// preference within each ring) and the frontier prefix lengths, one per
// distinct hop distance: levels[0] covers self plus the nearest ring (the
// searcher's own cluster), each subsequent level admits the next ring.
func (o HierarchicalOrder) plan(self, segments int, seed uint64) (order, levels []int) {
	dist, _ := o.distances(self, segments)
	pos := o.innerPositions(self, segments, seed)
	order = make([]int, segments)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		da, db := dist[a], dist[b]
		if a == self {
			da = -1
		}
		if b == self {
			db = -1
		}
		if da != db {
			return da < db
		}
		return pos[a] < pos[b]
	})
	last := -2
	for i, s := range order {
		d := dist[s]
		if s == self {
			d = -1
		}
		if d != last && i > 0 {
			levels = append(levels, i)
		}
		last = d
	}
	levels = append(levels, segments)
	// Self alone is not a frontier: merge it into the nearest ring so the
	// first escalation level is "my cluster", not "my own segment".
	if len(levels) > 1 && levels[0] == 1 {
		levels = levels[1:]
	}
	return order, levels
}

// Rank implements Ranker: rings outward from self, inner preference within
// each ring — the sweep order the keyed pool walks. Under a ring-less
// topology it delegates to the inner order's Ranker (nil when the inner
// order has no ranking to offer, keeping the caller's default sweep).
func (o HierarchicalOrder) Rank(self, segments int) []int {
	if _, uniform := o.distances(self, segments); uniform {
		if r, ok := o.inner().(Ranker); ok {
			return r.Rank(self, segments)
		}
		return nil
	}
	order, _ := o.plan(self, segments, 0)
	return order
}

// Searcher implements VictimOrder: SearcherFor without a controller (the
// structural threshold applies untuned).
func (o HierarchicalOrder) Searcher(self, segments int, seed uint64) search.Searcher {
	return o.SearcherFor(self, segments, seed, nil)
}

// SearcherFor implements ControlAware: the escalating cluster-first
// searcher, with its threshold tuned by ctl when ctl is an Escalator.
// Under a ring-less topology the inner order's searcher is returned
// unchanged (there is nothing to escalate through).
func (o HierarchicalOrder) SearcherFor(self, segments int, seed uint64, ctl Controller) search.Searcher {
	if _, uniform := o.distances(self, segments); uniform {
		return BuildSearcher(o.inner(), self, segments, seed, ctl)
	}
	order, levels := o.plan(self, segments, seed)
	h := &hierSearcher{order: order, levels: levels, threshold: o.Threshold}
	if esc, ok := ctl.(Escalator); ok {
		h.esc = esc
	}
	return h
}

// hierSearcher probes an expanding frontier of hop rings: cycle the
// current frontier in preference order, and after enough consecutive
// fruitless probes admit the next ring — jumping straight to its first
// victim, since the near ring was just seen empty. Once every ring is
// admitted it behaves like an OrderedSearcher over the whole preference,
// which is what lets the substrates' abort rules (coverage in core, the
// lap rule in sim) terminate a search on a genuinely empty pool.
type hierSearcher struct {
	order     []int
	levels    []int // frontier prefix lengths, innermost first
	threshold int   // configured HierarchicalOrder.Threshold
	esc       Escalator
}

var _ search.Searcher = (*hierSearcher)(nil)

// Kind implements search.Searcher.
func (h *hierSearcher) Kind() search.Kind { return search.Hierarchical }

// Reset implements search.Searcher: hierarchical searches carry no
// cross-search state — every search restarts at the innermost frontier.
func (h *hierSearcher) Reset() {}

// thresholdFor resolves the escalation threshold for a frontier of size
// base: the structural rule (one full pass, or the configured override),
// tuned by the controller when one is attached. Negative configured
// thresholds escalate on every probe.
func (h *hierSearcher) thresholdFor(base int) int {
	t := base
	if h.threshold > 0 {
		t = h.threshold
	} else if h.threshold < 0 {
		return 0
	}
	if h.esc != nil {
		t = h.esc.EscalationThreshold(t)
		if t < 1 {
			t = 1
		}
	}
	return t
}

// Search implements search.Searcher.
func (h *hierSearcher) Search(w search.World) search.Result {
	level := 0
	fruitless := 0
	examined := 0
	i := 0
	for !w.Aborted() {
		end := h.levels[level]
		s := h.order[i%end]
		got := w.TrySteal(s)
		examined++
		if got > 0 {
			return search.Result{Got: got, FoundAt: s, Examined: examined}
		}
		fruitless++
		i++
		if level < len(h.levels)-1 && fruitless >= h.thresholdFor(end) {
			// Escalate: admit the next ring and probe it first — the
			// frontier we just exhausted stays in rotation behind it.
			i = end
			level++
			fruitless = 0
		}
	}
	return search.Result{FoundAt: -1, Examined: examined}
}
