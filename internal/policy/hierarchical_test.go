package policy

import (
	"reflect"
	"testing"

	"pools/internal/numa"
	"pools/internal/search"
)

// probeWorld is a scripted search.World: segment sizes are fixed, every
// probe is recorded, and the search aborts after maxProbes fruitless
// probes so escalation paths can be observed on an empty pool.
type probeWorld struct {
	self    int
	sizes   []int
	visited []int
	max     int
}

func (w *probeWorld) Segments() int { return len(w.sizes) }
func (w *probeWorld) Self() int     { return w.self }
func (w *probeWorld) Aborted() bool { return len(w.visited) >= w.max }
func (w *probeWorld) TrySteal(s int) int {
	w.visited = append(w.visited, s)
	return w.sizes[s]
}

// clustered2 is the 6-segment, 2-per-cluster topology the tests use:
// rings from segment 0 are {0}, {1}, {2,3,4,5}.
var clustered2 = numa.Clusters{Size: 2}

func TestHierarchicalRankClusterFirst(t *testing.T) {
	o := HierarchicalOrder{Topo: clustered2}
	got := o.Rank(3, 6)
	// Cluster of 3 is {2,3}: self first, cluster mate next, then the far
	// ring clockwise from self.
	want := []int{3, 2, 4, 5, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Rank(3,6) = %v, want %v", got, want)
	}
}

func TestHierarchicalRankUniformDelegates(t *testing.T) {
	if got := (HierarchicalOrder{Topo: numa.Uniform{}}).Rank(0, 6); got != nil {
		t.Fatalf("uniform topology ranked %v, want nil (keep default sweep)", got)
	}
	// A ranking inner order still contributes under a ring-less topology.
	costs := numa.ButterflyCosts().WithTopology(clustered2).WithExtraDelay(10)
	o := HierarchicalOrder{Topo: numa.Uniform{}, Inner: LocalityOrder{Model: costs}}
	inner := LocalityOrder{Model: costs}.Rank(0, 6)
	if got := o.Rank(0, 6); !reflect.DeepEqual(got, inner) {
		t.Fatalf("uniform-topology rank = %v, want inner locality rank %v", got, inner)
	}
}

func TestHierarchicalSearcherExhaustsClusterBeforeCrossing(t *testing.T) {
	o := HierarchicalOrder{Topo: clustered2}
	s := o.Searcher(0, 6, 1)
	if s.Kind() != search.Hierarchical {
		t.Fatalf("Kind = %v, want Hierarchical", s.Kind())
	}
	w := &probeWorld{self: 0, sizes: make([]int, 6), max: 8}
	s.Search(w)
	// Default threshold = one full fruitless pass of the frontier {0,1},
	// then the far ring in order, then wrap to the full preference.
	want := []int{0, 1, 2, 3, 4, 5, 0, 1}
	if !reflect.DeepEqual(w.visited, want) {
		t.Fatalf("visit order = %v, want %v", w.visited, want)
	}
}

func TestHierarchicalSearcherFindsLocalWithoutCrossing(t *testing.T) {
	o := HierarchicalOrder{Topo: clustered2}
	s := o.Searcher(4, 6, 1)
	w := &probeWorld{self: 4, sizes: []int{9, 9, 9, 9, 0, 2}, max: 100}
	res := s.Search(w)
	if res.FoundAt != 5 || res.Examined != 2 {
		t.Fatalf("result = %+v, want steal from cluster mate 5 on probe 2", res)
	}
	for _, v := range w.visited {
		if clustered2.Distance(4, v) > 1 {
			t.Fatalf("crossed cluster boundary to %d with a non-empty mate available", v)
		}
	}
}

func TestHierarchicalThresholdLargerThanCluster(t *testing.T) {
	// Threshold 5 over a 2-segment frontier: the searcher laps its own
	// cluster before admitting the far ring.
	o := HierarchicalOrder{Topo: clustered2, Threshold: 5}
	s := o.Searcher(0, 6, 1)
	w := &probeWorld{self: 0, sizes: make([]int, 6), max: 7}
	s.Search(w)
	want := []int{0, 1, 0, 1, 0, 2, 3}
	if !reflect.DeepEqual(w.visited, want) {
		t.Fatalf("visit order = %v, want %v", w.visited, want)
	}
}

func TestHierarchicalThresholdNegativeEscalatesImmediately(t *testing.T) {
	// The flat ablation: every fruitless probe admits the next ring, so
	// the searcher reaches the far ring after a single local probe.
	o := HierarchicalOrder{Topo: clustered2, Threshold: -1}
	s := o.Searcher(0, 6, 1)
	w := &probeWorld{self: 0, sizes: make([]int, 6), max: 6}
	s.Search(w)
	if w.visited[1] != 2 {
		t.Fatalf("visit order = %v, want far ring admitted after one probe", w.visited)
	}
	// Every segment is still reached once the full preference cycles.
	seen := map[int]bool{}
	for _, v := range w.visited {
		seen[v] = true
	}
	for seg := 0; seg < 6; seg++ {
		if seg == 1 {
			continue // reached on the next wrap beyond this probe budget
		}
		if !seen[seg] {
			t.Fatalf("segment %d never probed in %v", seg, w.visited)
		}
	}
}

func TestHierarchicalUniformDelegatesToInner(t *testing.T) {
	o := HierarchicalOrder{Inner: Order{Kind: search.Linear}}
	s := o.Searcher(0, 4, 1)
	if s.Kind() != search.Linear {
		t.Fatalf("nil-topology searcher kind = %v, want delegation to linear", s.Kind())
	}
	if k := o.SearchKind(); k != search.Linear {
		t.Fatalf("SearchKind = %v, want linear", k)
	}
	if name := o.Name(); name != "hier-linear" {
		t.Fatalf("Name = %q", name)
	}
}

func TestHierarchicalRandomInnerIsSeededPermutation(t *testing.T) {
	o := HierarchicalOrder{Topo: clustered2, Inner: Order{Kind: search.Random}}
	a := o.SearcherFor(0, 6, 7, nil).(*hierSearcher)
	b := o.SearcherFor(0, 6, 7, nil).(*hierSearcher)
	c := o.SearcherFor(0, 6, 8, nil).(*hierSearcher)
	if !reflect.DeepEqual(a.order, b.order) {
		t.Fatalf("same seed gave different orders: %v vs %v", a.order, b.order)
	}
	if reflect.DeepEqual(a.order, c.order) {
		t.Logf("distinct seeds coincided (possible but unlikely): %v", a.order)
	}
	if a.order[0] != 0 {
		t.Fatalf("self not first: %v", a.order)
	}
	// Ring structure must survive the shuffle: cluster mate before any
	// far segment.
	if a.order[1] != 1 {
		t.Fatalf("cluster mate not in the first frontier: %v", a.order)
	}
}

// fixedEscalator pins the tuned threshold for testing ControlAware wiring.
type fixedEscalator struct{ t int }

func (f fixedEscalator) Observe(Feedback)            {}
func (f fixedEscalator) BatchSize(c int) int         { return c }
func (f fixedEscalator) StealFraction() float64      { return 0.5 }
func (f fixedEscalator) Name() string                { return "fixed" }
func (f fixedEscalator) EscalationThreshold(int) int { return f.t }

func TestHierarchicalControllerTunesThreshold(t *testing.T) {
	o := HierarchicalOrder{Topo: clustered2}
	s := BuildSearcher(o, 0, 6, 1, fixedEscalator{t: 1})
	w := &probeWorld{self: 0, sizes: make([]int, 6), max: 3}
	s.Search(w)
	// Tuned threshold 1: one fruitless probe escalates, so the far ring
	// is admitted after probing self only.
	want := []int{0, 2, 3}
	if !reflect.DeepEqual(w.visited, want) {
		t.Fatalf("visit order = %v, want %v (threshold tuned to 1)", w.visited, want)
	}
}

func TestAdaptiveEscalationThreshold(t *testing.T) {
	a := NewAdaptive()
	if got := a.EscalationThreshold(4); got != 4 {
		t.Fatalf("fresh adaptive threshold = %d, want untouched base 4", got)
	}
	// Long searches (many probes per steal, no aborts) raise the batch
	// shift, which halves the escalation threshold.
	for i := 0; i < adaptWindow; i++ {
		a.Observe(Feedback{Stole: true, Examined: 10, Got: 1})
	}
	if got := a.EscalationThreshold(4); got != 2 {
		t.Fatalf("post-window threshold = %d, want 2 (shift 1)", got)
	}
	if got := a.EscalationThreshold(1); got != 1 {
		t.Fatalf("threshold floor = %d, want 1", got)
	}
	p := NewPerHandle()
	if got := p.EscalationThreshold(3); got != 3 {
		t.Fatalf("aggregate per-handle threshold = %d, want base", got)
	}
	if got := p.EscalationThreshold(0); got != 1 {
		t.Fatalf("aggregate per-handle threshold floor = %d, want 1", got)
	}
}

func TestNearestEmptiestZeroModelActsLikeEmptiest(t *testing.T) {
	g := GiftToNearestEmptiest{}
	sizes := []int{5, 3, 0, 7}
	got := g.Direct(0, 4, 1, func(s int) int { return sizes[s] })
	if got != 2 {
		t.Fatalf("Direct = %d, want emptiest segment 2", got)
	}
}

func TestNearestEmptiestPrefersNearUnderHopCost(t *testing.T) {
	// Clusters of 2 over 6 segments with a heavy per-hop delay: segment 4
	// is empty but four hops away; the cluster mate holds 2. The add
	// should stay near — the far segment's emptiness cannot buy back
	// 3 extra hops of RemoteExtra.
	costs := numa.ButterflyCosts().WithTopology(clustered2).WithExtraDelay(1000)
	g := GiftToNearestEmptiest{Model: costs, Probes: -1}
	sizes := []int{3, 2, 9, 9, 0, 9}
	probed := 0
	got := g.Direct(0, 6, 1, func(s int) int { probed++; return sizes[s] })
	if got != 1 {
		t.Fatalf("Direct = %d, want near segment 1 despite far empty segment", got)
	}
	if probed != 6 {
		t.Fatalf("probed %d segments, want all 6 under Probes=-1", probed)
	}
}

func TestNearestEmptiestCrossesWhenWorthIt(t *testing.T) {
	// With a negligible hop cost the far empty segment wins again.
	costs := numa.ButterflyCosts().WithTopology(clustered2)
	g := GiftToNearestEmptiest{Model: costs, Probes: -1}
	sizes := []int{3, 2, 9, 9, 0, 9}
	got := g.Direct(0, 6, 1, func(s int) int { return sizes[s] })
	if got != 4 {
		t.Fatalf("Direct = %d, want far empty segment 4 under cheap hops", got)
	}
}

func TestNearestEmptiestProbeBudgetStaysNear(t *testing.T) {
	// Probe budget 2 under the clustered model: only the two cheapest
	// candidates (self and the cluster mate) are ever examined.
	costs := numa.ButterflyCosts().WithTopology(clustered2).WithExtraDelay(10)
	g := GiftToNearestEmptiest{Model: costs, Probes: 2}
	var probedSegs []int
	g.Direct(0, 6, 1, func(s int) int { probedSegs = append(probedSegs, s); return 0 })
	if !reflect.DeepEqual(probedSegs, []int{0, 1}) {
		t.Fatalf("probed %v, want only the near cluster [0 1]", probedSegs)
	}
}

func TestNearestEmptiestGiftSplit(t *testing.T) {
	g := GiftToNearestEmptiest{}
	if got := g.GiftSplit(8, 0); got != 0 {
		t.Fatalf("GiftSplit(8,0) = %d, want 0", got)
	}
	if got := g.GiftSplit(8, 3); got != 8 {
		t.Fatalf("GiftSplit(8,3) = %d, want whole batch", got)
	}
	if g.Name() != "near-emptiest" {
		t.Fatalf("Name = %q", g.Name())
	}
}
