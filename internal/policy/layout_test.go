package policy

import (
	"testing"
	"unsafe"
)

// TestAdaptiveLayout pins the false-sharing contract of the Adaptive
// controller: the read-mostly control outputs (frac, shift) must sit on
// a different cache line from the write-hot window counters, and the
// struct must tile to a whole number of 64-byte lines so separately
// allocated per-handle instances never share one.
func TestAdaptiveLayout(t *testing.T) {
	var a Adaptive
	if gap := unsafe.Offsetof(a.ops) - unsafe.Offsetof(a.frac); gap < 64 {
		t.Errorf("ops only %d bytes after frac; want >= 64 (separate cache line)", gap)
	}
	if sz := unsafe.Sizeof(a); sz%64 != 0 {
		t.Errorf("Adaptive size %d is not a multiple of 64", sz)
	}
	if tail := unsafe.Sizeof(a) - unsafe.Offsetof(a.examined); tail < 40 {
		t.Errorf("only %d bytes from examined to end; counters bleed into the next object", tail)
	}
}
