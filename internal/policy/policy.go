// Package policy factors every tunable decision in the concurrent pool
// into small, composable interfaces, so that the choices the paper studies
// — how much a steal transfers, which victims a search visits, where an
// add lands — are pluggable values instead of enums and if-branches
// scattered through internal/core and internal/sim.
//
// Four decision points are modelled:
//
//   - StealAmount: how many elements a successful steal transfers
//     (the paper's steal-half, the steal-one ablation, a split
//     proportional to the requester's batch size, and an adaptive
//     fraction tuned online — pool-wide or per handle);
//   - VictimOrder: which remote segments a searching process visits and
//     in what order — the three internal/search algorithms, plus
//     LocalityOrder, which ranks victims by a numa.CostModel so near
//     victims are probed first (the policy the paper's Section 4.3
//     delayed-architecture experiments motivate but could not test);
//   - Placement: where added elements land — the local segment, gifted
//     (whole or split) to hungry searchers via directed-add mailboxes
//     (the paper's Section 5 hint extension, batch-aware), or directed
//     to the emptiest segment by probing sizes (GiftToEmptiest, the
//     Director extension of the paper's symmetric remote-add footnote);
//   - Controller: an online tuner fed per-remove feedback (steal rate,
//     search length, haul size, operation time) that adjusts the steal
//     fraction and the recommended batch size while a run executes;
//     Spawner controllers (PerHandle) mint one instance per handle so
//     heterogeneous processes tune independently.
//
// A Set bundles one choice per decision point. Both execution substrates
// — the real pool (internal/core) and the virtual-time Butterfly
// (internal/sim) — consult the same Set values, so a policy measured in
// simulation is exactly the policy the library executes.
//
// Implementations must be deterministic functions of their inputs and
// observed feedback: the simulator replays byte-identical runs for a
// fixed seed, and that property must hold under every policy.
package policy

import (
	"fmt"
	"strings"

	"pools/internal/search"
)

// StealAmount decides how many elements a successful steal transfers from
// a victim segment into the thief's local segment.
type StealAmount interface {
	// Amount returns the number of elements to take from a victim
	// currently holding n elements (n >= 1) when the requesting operation
	// wants up to want elements (want >= 1; a plain Get wants 1, a GetN
	// wants its max). Implementations must return a value in [1, n]: a
	// steal never returns empty-handed from a non-empty victim, and never
	// takes more than the victim holds.
	Amount(n, want int) int
	// Name identifies the policy in tables and CSV output.
	Name() string
}

// VictimOrder decides which remote segments a searching process visits,
// and in what order, by supplying the search strategy it runs. It layers
// over internal/search: the three paper algorithms are orderings (ring,
// shuffled, tree-guided), and custom orders plug in the same way.
type VictimOrder interface {
	// Searcher returns the search strategy for the process owning segment
	// self in a pool of segments segments. The seed feeds randomized
	// orders; deterministic orders ignore it.
	Searcher(self, segments int, seed uint64) search.Searcher
	// Name identifies the order in tables and CSV output.
	Name() string
}

// Placement decides where a Put or PutAll lands: how many of the added
// elements are offered to hungry searchers through directed-add mailboxes
// (the rest go to the adder's local segment).
type Placement interface {
	// GiftSplit returns how many of a batch of n added elements (n >= 1)
	// should be gifted to hungry searchers, of which there are currently
	// hungry (>= 0). The result is clamped by the caller to [0, n];
	// returning 0 keeps the whole batch local. For single-element adds
	// the decision is binary, and callers may report hungry as 1 once any
	// hungry searcher is found rather than counting them all.
	GiftSplit(n, hungry int) int
	// Name identifies the placement in tables and CSV output.
	Name() string
}

// Feedback is one completed remove operation's outcome, the signal a
// Controller tunes from. The fields mirror what internal/metrics
// aggregates: steal rate, search length, haul size, and operation time.
type Feedback struct {
	Stole    bool  // the remove needed a successful steal (false for local removes and for directed-add gifts, which spared the steal)
	Aborted  bool  // the remove aborted (livelock rule / exhaustion)
	Examined int   // segments probed by the search (0 for local removes)
	Got      int   // elements obtained (haul size; 0 on abort)
	Elapsed  int64 // operation duration (µs, virtual or wall-clock)
}

// Controller tunes pool parameters online from per-remove feedback.
// Implementations must tolerate concurrent Observe calls (the real pool
// feeds one controller from many goroutines); under the single-threaded
// simulator the observation order is deterministic and so must be the
// resulting parameter trajectory.
type Controller interface {
	// Observe folds one remove outcome into the controller's state.
	Observe(Feedback)
	// BatchSize recommends the batch size for the next batched operation,
	// given the workload-configured size. Static policies return current.
	BatchSize(current int) int
	// StealFraction reports the currently tuned steal fraction in (0, 1],
	// for observability and rendering.
	StealFraction() float64
	// Name identifies the controller in tables and CSV output.
	Name() string
}

// Set bundles one policy per decision point. The zero value means "paper
// defaults": steal-half, the pool's configured search algorithm, local
// placement (or whole-batch gifting when directed adds are enabled), and
// no online control.
type Set struct {
	Steal   StealAmount // nil → Half
	Order   VictimOrder // nil → Order{pool's configured search.Kind}
	Place   Placement   // nil → Local (GiftAll when directed adds are on)
	Control Controller  // nil → no online tuning
}

// Name renders the set compactly: the steal policy's name, with non-default
// components appended.
func (s Set) Name() string {
	parts := []string{}
	if s.Steal != nil {
		parts = append(parts, s.Steal.Name())
	}
	if s.Order != nil {
		parts = append(parts, "order="+s.Order.Name())
	}
	if s.Place != nil {
		parts = append(parts, "place="+s.Place.Name())
	}
	if s.Control != nil && (s.Steal == nil || s.Control.Name() != s.Steal.Name()) {
		parts = append(parts, "ctl="+s.Control.Name())
	}
	if len(parts) == 0 {
		return "default"
	}
	return strings.Join(parts, ",")
}

// WithDefaults returns s with nil slots filled: steal-half, the given
// search kind as victim order, and — when directed is true — whole-batch
// gifting, otherwise local placement.
func (s Set) WithDefaults(kind search.Kind, directed bool) Set {
	if s.Steal == nil {
		s.Steal = Half{}
	}
	if s.Order == nil {
		if kind == 0 {
			kind = search.Linear
		}
		s.Order = Order{Kind: kind}
	}
	if s.Place == nil {
		if directed {
			s.Place = GiftAll{}
		} else {
			s.Place = Local{}
		}
	}
	return s
}

// Names lists the steal policies Named constructs, in presentation order.
func Names() []string { return []string{"half", "one", "proportional", "adaptive", "per-handle"} }

// Named returns a fresh Set for a steal-policy name: "half", "one",
// "proportional", "adaptive", or "per-handle". Each call constructs new
// state, so adaptive and per-handle sets from separate calls never share
// a controller — required for independent trials.
func Named(name string) (Set, error) {
	switch strings.ToLower(name) {
	case "half", "steal-half", "":
		return Set{Steal: Half{}}, nil
	case "one", "steal-one":
		return Set{Steal: One{}}, nil
	case "proportional", "prop":
		return Set{Steal: Proportional{}}, nil
	case "adaptive":
		a := NewAdaptive()
		return Set{Steal: a, Control: a}, nil
	case "per-handle", "adaptive-per-handle":
		p := NewPerHandle()
		return Set{Steal: p, Control: p}, nil
	default:
		return Set{}, fmt.Errorf("policy: unknown steal policy %q (have %v)", name, Names())
	}
}

// ForHandle resolves the controller and steal amount one handle should
// consult. When the set's controller is a Spawner (the per-handle
// adaptive pattern), the handle receives its own spawned instance — and
// when the set's steal amount is that same controller object, the spawned
// instance also becomes the handle's steal amount, so each handle steals
// by its own tuned fraction. Pool-wide controllers and static steal
// amounts pass through unchanged. Both substrates (internal/core and
// internal/sim) and the keyed pool call this once per handle at
// construction, which is what makes a policy measured in simulation
// exactly the policy the library executes.
func (s Set) ForHandle(handle int) (Controller, StealAmount) {
	ctl, steal := s.Control, s.Steal
	if sp, ok := ctl.(Spawner); ok {
		sub := sp.Spawn(handle)
		if sa, ok := sub.(StealAmount); ok && any(steal) == any(ctl) {
			steal = sa
		}
		ctl = sub
	}
	return ctl, steal
}

// Order is the VictimOrder wrapping one of the paper's three search
// algorithms: linear visits the ring clockwise from the last success,
// random visits in a private shuffled order, and tree follows Manber's
// round-counter tree.
type Order struct{ Kind search.Kind }

// Searcher implements VictimOrder.
func (o Order) Searcher(self, segments int, seed uint64) search.Searcher {
	return search.New(o.Kind, self, segments, seed)
}

// Name implements VictimOrder.
func (o Order) Name() string { return o.Kind.String() }

// KindOf returns the search algorithm behind a VictimOrder, or 0 for
// custom orders. The pools use it to decide whether the tree search's
// round-counter nodes must be allocated. Orders that may delegate to a
// paper algorithm (LocalityOrder's uniform-cost fallback) report it via a
// SearchKind method; other custom orders that need the tree should embed
// Order{Kind: search.Tree} or expose the same method.
func KindOf(o VictimOrder) search.Kind {
	switch v := o.(type) {
	case Order:
		return v.Kind
	case interface{ SearchKind() search.Kind }:
		return v.SearchKind()
	}
	return 0
}

// clamp bounds a steal amount to [1, n] (n >= 1).
func clamp(k, n int) int {
	if k < 1 {
		return 1
	}
	if k > n {
		return n
	}
	return k
}
