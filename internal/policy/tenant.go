package policy

// TenantMap assigns each segment to a tenant: entry i is the tenant id
// (0-based, small, dense) of segment i. A multi-tenant pool is one shared
// pool whose segments are partitioned among N tenants; the map is how
// tenant-aware policies — and the engine's steal-interference accounting —
// learn the partition. Segments beyond the map's length (or a nil map)
// belong to tenant 0.
type TenantMap []int

// TenantOf returns the tenant owning segment seg (0 for out-of-range
// segments, so a short or nil map degrades to a single tenant).
func (m TenantMap) TenantOf(seg int) int {
	if seg < 0 || seg >= len(m) {
		return 0
	}
	return m[seg]
}

// NumTenants returns the number of tenants the map names (max id + 1),
// at least 1.
func (m TenantMap) NumTenants() int {
	n := 1
	for _, t := range m {
		if t+1 > n {
			n = t + 1
		}
	}
	return n
}

// EvenTenants builds the contiguous block partition: segments
// [t*segments/tenants, (t+1)*segments/tenants) belong to tenant t. This
// mirrors how the multi-tenant workload assigns processes to tenants, so
// a process and its own segment always share a tenant.
func EvenTenants(segments, tenants int) TenantMap {
	if tenants < 1 {
		tenants = 1
	}
	m := make(TenantMap, segments)
	for s := range m {
		m[s] = s * tenants / segments
	}
	return m
}

// Grouped is implemented by policies that carry a tenant partition. The
// engine looks for it on the policy set's Placement (then VictimOrder) at
// construction time; when found, it precomputes a foreign-segment mask
// and classifies every successful steal as same-tenant or cross-tenant
// (PoolStats.RecordStealVictim), which is what `poolbench -exp tenants`
// reports as steal interference.
type Grouped interface {
	// Partition returns the tenant map. Called once at engine
	// construction; the map must not change afterwards.
	Partition() TenantMap
}

// TenantFair is the tenant-aware fairness placement: a Director that
// confines each add to segments of the adder's own tenant, walking them
// emptiest-first under a probe budget (GiftToEmptiest restricted to the
// partition). It attacks multi-tenant interference from the add side — a
// hot tenant's surplus is spread across that tenant's own segments
// instead of piling onto one, so its neighbors steal within the tenant
// before plundering a stranger's reserve.
//
// Mailbox gifts are anonymous — a hungry searcher from any tenant could
// receive one — so GiftSplit keeps every batch out of the mailboxes;
// fairness placement never donates across the partition.
type TenantFair struct {
	// Map is the tenant partition. A nil map means one tenant, which
	// degenerates to GiftToEmptiest's ring sweep.
	Map TenantMap
	// Probes bounds how many own-tenant segments each add examines,
	// walking the ring from the adder's own segment. 0 means
	// DefaultProbes; negative probes the whole tenant.
	Probes int
}

var (
	_ Director = TenantFair{}
	_ Grouped  = TenantFair{}
)

// GiftSplit implements Placement: nothing is gifted to mailboxes, because
// a gift cannot be routed by tenant (see the type comment).
func (TenantFair) GiftSplit(int, int) int { return 0 }

// Partition implements Grouped.
func (t TenantFair) Partition() TenantMap { return t.Map }

// Direct implements Director: probe up to Probes segments of the adder's
// own tenant, walking the ring from self, and return the emptiest one
// probed. Ties keep the earliest (nearest) probed segment, so an
// all-empty tenant places locally.
func (t TenantFair) Direct(self, segments, _ int, size func(seg int) int) int {
	probes := t.Probes
	if probes == 0 {
		probes = DefaultProbes
	}
	if probes < 0 || probes > segments {
		probes = segments
	}
	mine := t.Map.TenantOf(self)
	best, bestLen := self, -1
	probed := 0
	for off := 0; off < segments && probed < probes; off++ {
		s := (self + off) % segments
		if t.Map.TenantOf(s) != mine {
			continue
		}
		probed++
		if l := size(s); bestLen < 0 || l < bestLen {
			best, bestLen = s, l
		}
	}
	return best
}

// Name implements Placement.
func (TenantFair) Name() string { return "tenant-fair" }
