package workload

import (
	"fmt"
	"math"

	"pools/internal/rng"
)

// Churn is a seeded kill/revive schedule layered over a workload: the
// chaos driver kills one live process at a time (exponentially
// distributed gaps around KillEvery), holds it down for ReviveAfter,
// then re-admits it. One victim at a time keeps the schedule's effect
// measurable — each downtime window has a clean before/after throughput
// to compare — and matches the Dynamo-style hinted-handoff experiments
// the chaos harness models: a node departs, the survivors absorb its
// load, it rejoins.
//
// The zero value disables churn entirely; drivers must not charge any
// cost for a disabled schedule, so zero-churn runs stay byte-identical
// to pre-churn fingerprints.
type Churn struct {
	// KillEvery is the mean gap between a revive and the next kill, in
	// the driver's time unit (virtual µs in the simulator, wall-clock µs
	// on the real pool). Zero or negative disables churn.
	KillEvery int64
	// ReviveAfter is the downtime between a kill and its revive, in the
	// same unit. Zero revives at the driver's next tick.
	ReviveAfter int64
	// Drain selects the kill mode: true drains and redistributes the
	// victim's segment at kill time (the segment leaves the victim set);
	// false degrades it to a steal-only victim whose reserve drains
	// through the survivors' steals.
	Drain bool
	// MaxKills, when positive, caps the number of kills the schedule
	// issues (a bounded fault injection); zero means unbounded.
	MaxKills int
}

// Enabled reports whether the schedule injects any churn.
func (c Churn) Enabled() bool { return c.KillEvery > 0 }

// Validate rejects nonsensical schedules.
func (c Churn) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.ReviveAfter < 0 {
		return fmt.Errorf("workload: Churn.ReviveAfter = %d, need >= 0", c.ReviveAfter)
	}
	if c.MaxKills < 0 {
		return fmt.Errorf("workload: Churn.MaxKills = %d, need >= 0", c.MaxKills)
	}
	return nil
}

// ChurnGen draws one schedule's kill gaps and victims, deterministic for
// a seed. The gap stream and the victim stream are independent draws
// from one generator, so a schedule replays exactly under the same seed
// regardless of how the driver interleaves the two.
type ChurnGen struct {
	churn Churn
	r     *rng.Xoshiro256
	kills int
}

// Gen returns the schedule's generator for a seeded run.
func (c Churn) Gen(seed uint64) *ChurnGen {
	return &ChurnGen{churn: c, r: rng.NewXoshiro256(rng.SubSeed(seed, 0x6368))}
}

// NextGap draws the gap before the next kill (exponential with mean
// KillEvery, floored at 1), or -1 when the schedule is exhausted
// (MaxKills reached or churn disabled).
func (g *ChurnGen) NextGap() int64 {
	c := g.churn
	if !c.Enabled() || (c.MaxKills > 0 && g.kills >= c.MaxKills) {
		return -1
	}
	g.kills++
	u := g.r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	gap := int64(-float64(c.KillEvery) * math.Log(u))
	if gap < 1 {
		gap = 1
	}
	return gap
}

// PickVictim draws the next kill's victim uniformly from the n
// processes. Drivers retry (the pool refuses to kill the last live
// member) or skip already-dead picks; the draw is consumed either way,
// keeping the schedule deterministic under churn races.
func (g *ChurnGen) PickVictim(n int) int { return g.r.Intn(n) }
