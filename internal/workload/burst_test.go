package workload

import (
	"sync"
	"testing"

	"pools/internal/metrics"
)

func TestBurstValidate(t *testing.T) {
	base := Config{
		Procs: 8, Model: Burst, Producers: 3, Arrangement: Balanced,
		BatchSize: 4, TotalOps: 100, InitialElements: 10,
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid burst config rejected: %v", err)
	}
	bad := base
	bad.BatchSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("BatchSize 0 accepted for burst model")
	}
	pc := base
	pc.Model = ProducerConsumer
	pc.BatchSize = 0 // irrelevant outside Burst
	if err := pc.Validate(); err != nil {
		t.Fatalf("producer/consumer config rejected: %v", err)
	}
}

func TestBurstChooserRoles(t *testing.T) {
	cfg := Config{
		Procs: 4, Model: Burst, Producers: 2, Arrangement: Contiguous,
		BatchSize: 8, TotalOps: 100,
	}
	for proc := 0; proc < cfg.Procs; proc++ {
		ch := NewChooser(cfg, proc, 1)
		want := metrics.OpRemove
		if proc < 2 {
			want = metrics.OpAdd
		}
		for i := 0; i < 10; i++ {
			if got := ch.Next(); got != want {
				t.Fatalf("proc %d op %d = %v, want %v", proc, i, got, want)
			}
		}
	}
}

func TestTryClaimN(t *testing.T) {
	b := NewBudget(10)
	if got := b.TryClaimN(4); got != 4 {
		t.Fatalf("TryClaimN(4) = %d", got)
	}
	if got := b.TryClaimN(0); got != 0 {
		t.Fatalf("TryClaimN(0) = %d", got)
	}
	if got := b.TryClaimN(-2); got != 0 {
		t.Fatalf("TryClaimN(-2) = %d", got)
	}
	if got := b.TryClaimN(100); got != 6 {
		t.Fatalf("TryClaimN(100) = %d, want the remaining 6", got)
	}
	if got := b.TryClaimN(1); got != 0 {
		t.Fatalf("TryClaimN on exhausted budget = %d", got)
	}
	if !b.Exhausted() || b.Used() != 10 {
		t.Fatalf("budget state: used=%d exhausted=%v", b.Used(), b.Exhausted())
	}
}

func TestTryClaimNConcurrent(t *testing.T) {
	const limit = 10_000
	b := NewBudget(limit)
	var wg sync.WaitGroup
	totals := make([]int, 8)
	for w := range totals {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				n := b.TryClaimN(7)
				if n == 0 {
					return
				}
				totals[w] += n
			}
		}(w)
	}
	wg.Wait()
	sum := 0
	for _, n := range totals {
		sum += n
	}
	if sum != limit {
		t.Fatalf("claimed %d total, want exactly %d", sum, limit)
	}
}
