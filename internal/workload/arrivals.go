package workload

import (
	"fmt"
	"math"

	"pools/internal/rng"
)

// serviceClasses is the number of zipf service-time classes an ArrivalGen
// distinguishes. Class k (1-based) takes k service units, weighted
// k^-ServiceZipf; 256 classes give the heavy tail three decades of spread
// while the cumulative-weight table stays one cache line per generator.
const serviceClasses = 256

// DefaultBurstLen is the mean number of arrivals per burst when
// Arrivals.Burstiness > 1 and BurstLen is left zero.
const DefaultBurstLen = 8

// Arrivals describes an open-loop arrival process for one process: unlike
// the closed-loop models (where the next operation starts when the
// previous one finishes), operations arrive on their own clock and queue
// behind a busy process, so overload shows up as unbounded sojourn times
// instead of a longer makespan. This is the ROADMAP's "heavy traffic"
// regime: arrival rate is set by the outside world, and the quantity to
// watch is the tail of sojourn time (completion minus arrival).
type Arrivals struct {
	// Lambda is the mean arrival rate per process, in arrivals per µs
	// (virtual µs under sim.Run, wall-clock under harness.RealRun).
	// Required (> 0). The per-process service rate on the simulated
	// Butterfly is roughly 1/(200µs + ServiceMean), so Lambda near that
	// reciprocal saturates a process.
	Lambda float64

	// Burstiness selects the inter-arrival process. Values <= 1 give
	// Poisson arrivals (exponential gaps of mean 1/Lambda). Values > 1
	// give the bursty-exponential process: arrivals come in bursts of
	// geometrically distributed length (mean BurstLen) with short
	// within-burst gaps of mean 1/(Burstiness*Lambda), separated by long
	// idle gaps sized so the overall mean rate stays exactly Lambda.
	Burstiness float64

	// BurstLen is the mean number of arrivals per burst when Burstiness
	// > 1. 0 means DefaultBurstLen.
	BurstLen float64

	// ServiceMean is the mean post-operation service time in µs — the
	// work a process does with each element outside the pool. 0 means no
	// service time.
	ServiceMean int64

	// ServiceZipf shapes service times across serviceClasses classes with
	// weight k^-ServiceZipf for class k; draws are scaled so the mean
	// stays ServiceMean. 0 (or no ServiceMean) makes every service take
	// exactly ServiceMean. Exponents near 1 give the heavy-tailed service
	// mix that separates p50 from p999.
	ServiceZipf float64
}

// Validate reports configuration errors.
func (a Arrivals) Validate() error {
	if a.Lambda <= 0 || math.IsNaN(a.Lambda) || math.IsInf(a.Lambda, 0) {
		return fmt.Errorf("workload: Arrivals.Lambda = %v, need > 0", a.Lambda)
	}
	if a.Burstiness < 0 || a.BurstLen < 0 {
		return fmt.Errorf("workload: negative Arrivals shape (Burstiness=%v, BurstLen=%v)", a.Burstiness, a.BurstLen)
	}
	if a.BurstLen > 0 && a.BurstLen < 1 {
		return fmt.Errorf("workload: Arrivals.BurstLen = %v, need >= 1 (mean arrivals per burst)", a.BurstLen)
	}
	if a.ServiceMean < 0 || a.ServiceZipf < 0 {
		return fmt.Errorf("workload: negative Arrivals service (ServiceMean=%v, ServiceZipf=%v)", a.ServiceMean, a.ServiceZipf)
	}
	return nil
}

// ArrivalGen draws one process's arrival stream: inter-arrival gaps and
// per-arrival service times, in µs. It is deterministic in (proc,
// trialSeed) and not safe for concurrent use; each process owns one. All
// allocation happens at Gen time — Next is allocation-free.
type ArrivalGen struct {
	rng     *rng.Xoshiro256
	onMean  float64 // within-burst (or Poisson) mean gap
	offMean float64 // between-burst mean gap (0 = pure Poisson)
	burst   float64 // mean arrivals per burst
	left    int     // arrivals remaining in the current burst
	svc     [serviceClasses]int64 // service time per zipf class
	svcCum  [serviceClasses]float64 // cumulative class weights, normalized to 1
	svcFlat int64 // deterministic service time when zipf is off (-1 = zipf on)
}

// Gen builds the arrival generator for processor proc under trial seed
// trialSeed. The stream is independent of the operation Chooser's (a
// distinct rng substream), so the op mix and the arrival clock do not
// correlate.
func (a Arrivals) Gen(proc int, trialSeed uint64) *ArrivalGen {
	// Offset the rng stream index so the arrival stream never collides
	// with the Chooser's SubSeed(trialSeed, proc) op-mix stream.
	const arrivalStream = 1 << 20
	g := &ArrivalGen{
		rng:    rng.NewXoshiro256(rng.SubSeed(trialSeed, arrivalStream+proc)),
		onMean: 1 / a.Lambda,
		burst:  a.BurstLen,
	}
	if a.Burstiness > 1 {
		if g.burst == 0 {
			g.burst = DefaultBurstLen
		}
		// Within-burst gaps shrink by the burstiness factor; the idle gap
		// between bursts restores the overall mean to exactly 1/Lambda:
		// each burst cycle holds `burst` arrivals over one off-gap plus
		// `burst` on-gaps, so offMean = burst*(1/λ − onMean).
		g.onMean = 1 / (a.Burstiness * a.Lambda)
		g.offMean = g.burst * (1/a.Lambda - g.onMean)
	}
	g.svcFlat = a.ServiceMean
	if a.ServiceMean > 0 && a.ServiceZipf > 0 {
		g.svcFlat = -1
		// Class k takes k service units with weight k^-zipf; the unit is
		// chosen so the mean over the class distribution is ServiceMean.
		var wsum, ksum float64
		for k := 1; k <= serviceClasses; k++ {
			w := math.Pow(float64(k), -a.ServiceZipf)
			wsum += w
			ksum += w * float64(k)
			g.svcCum[k-1] = wsum
		}
		unit := float64(a.ServiceMean) * wsum / ksum
		for k := 1; k <= serviceClasses; k++ {
			g.svcCum[k-1] /= wsum
			s := int64(math.Round(unit * float64(k)))
			if s < 1 {
				s = 1
			}
			g.svc[k-1] = s
		}
	}
	return g
}

// exp draws an exponential with the given mean, rounded up to at least
// 1 µs so virtual-time drivers always advance.
func (g *ArrivalGen) exp(mean float64) int64 {
	u := g.rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	d := int64(math.Round(-math.Log(1-u) * mean))
	if d < 1 {
		d = 1
	}
	return d
}

// Next returns the gap to the next arrival and that arrival's service
// time, both in µs. Next never allocates.
func (g *ArrivalGen) Next() (gap, service int64) {
	if g.offMean <= 0 {
		gap = g.exp(g.onMean)
	} else {
		if g.left <= 0 {
			// Start a new burst after a long idle gap; the burst length is
			// ~geometric with mean g.burst.
			gap = g.exp(g.offMean)
			g.left = 1
			if g.burst > 1 {
				g.left += int(g.exp(g.burst - 1))
			}
		} else {
			gap = g.exp(g.onMean)
		}
		g.left--
	}
	if g.svcFlat >= 0 {
		return gap, g.svcFlat
	}
	u := g.rng.Float64()
	lo, hi := 0, serviceClasses-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.svcCum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return gap, g.svc[lo]
}

// MeanService returns the analytic mean of the service distribution the
// generator draws from (ServiceMean by construction; exposed for tests
// and capacity planning).
func (a Arrivals) MeanService() float64 { return float64(a.ServiceMean) }

// TenantCount returns the effective number of tenants: Config.Tenants,
// clamped to [1, Procs].
func (c Config) TenantCount() int {
	n := c.Tenants
	if n < 1 {
		n = 1
	}
	if n > c.Procs {
		n = c.Procs
	}
	return n
}

// TenantOf returns the tenant owning processor proc: contiguous blocks,
// the same partition policy.EvenTenants builds for segments, so a process
// and its own segment always agree.
func (c Config) TenantOf(proc int) int {
	n := c.TenantCount()
	if n <= 1 || proc < 0 || proc >= c.Procs {
		return 0
	}
	return proc * n / c.Procs
}

// TenantMapping returns the tenant id of every processor — the slice to
// hand policy.TenantMap and the tenant-aware placements.
func (c Config) TenantMapping() []int {
	m := make([]int, c.Procs)
	for p := range m {
		m[p] = c.TenantOf(p)
	}
	return m
}

// TenantWeight returns tenant t's arrival-rate multiplier under the
// zipf(TenantSkew) tenant skew, normalized so the mean multiplier across
// tenants is 1 (total offered load is skew-invariant): weight t+1 raised
// to -TenantSkew, scaled. Skew 0 gives every tenant weight 1; higher skew
// concentrates load on tenant 0.
func (c Config) TenantWeight(t int) float64 {
	n := c.TenantCount()
	if n <= 1 || c.TenantSkew == 0 {
		return 1
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -c.TenantSkew)
	}
	return math.Pow(float64(t+1), -c.TenantSkew) * float64(n) / sum
}

// ArrivalsFor returns processor proc's arrival process: the configured
// Arrivals with Lambda scaled by the processor's tenant weight. Drivers
// call this once per process at startup.
func (c Config) ArrivalsFor(proc int) Arrivals {
	a := c.Arrivals
	a.Lambda *= c.TenantWeight(c.TenantOf(proc))
	return a
}
