package workload

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"pools/internal/metrics"
)

func TestModelAndArrangementStrings(t *testing.T) {
	if RandomOps.String() != "random-ops" || ProducerConsumer.String() != "producer-consumer" {
		t.Fatal("model names wrong")
	}
	if Contiguous.String() != "contiguous" || Balanced.String() != "balanced" {
		t.Fatal("arrangement names wrong")
	}
	if Model(9).String() != "Model(9)" || Arrangement(9).String() != "Arrangement(9)" {
		t.Fatal("unknown enum strings wrong")
	}
}

func TestPaperDefaults(t *testing.T) {
	c := Paper(RandomOps)
	if c.Procs != 16 || c.TotalOps != 5000 || c.InitialElements != 320 {
		t.Fatalf("paper constants wrong: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Procs: 0, Model: RandomOps},
		{Procs: 4, Model: Model(9)},
		{Procs: 4, Model: RandomOps, AddFraction: -0.1},
		{Procs: 4, Model: RandomOps, AddFraction: 1.1},
		{Procs: 4, Model: ProducerConsumer, Producers: 5, Arrangement: Contiguous},
		{Procs: 4, Model: ProducerConsumer, Producers: -1, Arrangement: Contiguous},
		{Procs: 4, Model: ProducerConsumer, Producers: 2, Arrangement: Arrangement(9)},
		{Procs: 4, Model: RandomOps, TotalOps: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
}

func TestProducerPositionsContiguous(t *testing.T) {
	got := ProducerPositions(16, 5, Contiguous)
	want := []int{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestProducerPositionsBalanced(t *testing.T) {
	// 5 producers over 16 processors spread to 0,3,6,9,12.
	got := ProducerPositions(16, 5, Balanced)
	want := []int{0, 3, 6, 9, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// 8 producers alternate 0,2,4,...,14 ("eight producers and eight
	// consumers would be arranged in an alternating fashion").
	got = ProducerPositions(16, 8, Balanced)
	for i, p := range got {
		if p != 2*i {
			t.Fatalf("8 balanced producers = %v", got)
		}
	}
}

func TestBalancedSpreadProperty(t *testing.T) {
	f := func(procsRaw, prodRaw uint8) bool {
		procs := int(procsRaw)%31 + 2
		producers := int(prodRaw)%procs + 1
		pos := ProducerPositions(procs, producers, Balanced)
		if len(pos) != producers {
			return false
		}
		seen := map[int]bool{}
		for _, p := range pos {
			if p < 0 || p >= procs || seen[p] {
				return false
			}
			seen[p] = true
		}
		// Max gap between successive producers (around the ring) is at
		// most ceil(procs/producers)+1.
		maxGap := 0
		for i := range pos {
			next := pos[(i+1)%len(pos)]
			gap := next - pos[i]
			if gap <= 0 {
				gap += procs
			}
			if gap > maxGap {
				maxGap = gap
			}
		}
		return maxGap <= (procs+producers-1)/producers+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsProducer(t *testing.T) {
	c := Paper(ProducerConsumer)
	c.Producers = 5
	c.Arrangement = Balanced
	want := map[int]bool{0: true, 3: true, 6: true, 9: true, 12: true}
	for p := 0; p < 16; p++ {
		if c.IsProducer(p) != want[p] {
			t.Errorf("IsProducer(%d) = %v", p, c.IsProducer(p))
		}
	}
}

func TestChooserRandomOpsMixConverges(t *testing.T) {
	for _, mix := range []float64{0, 0.3, 0.5, 0.8, 1} {
		c := Paper(RandomOps)
		c.AddFraction = mix
		ch := NewChooser(c, 0, 42)
		adds := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if ch.Next() == metrics.OpAdd {
				adds++
			}
		}
		got := float64(adds) / n
		if math.Abs(got-mix) > 0.02 {
			t.Errorf("mix %.1f: achieved %.3f", mix, got)
		}
	}
}

func TestChooserProducerConsumerRolesFixed(t *testing.T) {
	c := Paper(ProducerConsumer)
	c.Producers = 5
	for proc := 0; proc < 16; proc++ {
		ch := NewChooser(c, proc, 1)
		want := metrics.OpRemove
		if proc < 5 {
			want = metrics.OpAdd
		}
		for i := 0; i < 100; i++ {
			if got := ch.Next(); got != want {
				t.Fatalf("proc %d op %d = %v, want %v", proc, i, got, want)
			}
		}
	}
}

func TestChooserDeterministicPerSeed(t *testing.T) {
	c := Paper(RandomOps)
	c.AddFraction = 0.5
	a := NewChooser(c, 3, 99)
	b := NewChooser(c, 3, 99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("choosers diverged at %d", i)
		}
	}
}

func TestChooserDistinctProcsDiffer(t *testing.T) {
	c := Paper(RandomOps)
	c.AddFraction = 0.5
	a := NewChooser(c, 0, 99)
	b := NewChooser(c, 1, 99)
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > n*3/4 {
		t.Fatalf("streams for distinct procs look identical: %d/%d equal", same, n)
	}
}

func TestDynamicRolesRotate(t *testing.T) {
	c := Paper(ProducerConsumer)
	c.Producers = 1
	c.RoleFlipEvery = 10
	// Proc 0 starts as the producer; after 10 ops the role moves to proc 1.
	ch0 := NewChooser(c, 0, 1)
	ch1 := NewChooser(c, 1, 1)
	for i := 0; i < 9; i++ { // ops 1..9: rotation 0
		if ch0.Next() != metrics.OpAdd {
			t.Fatalf("op %d: proc 0 should produce", i)
		}
		if ch1.Next() != metrics.OpRemove {
			t.Fatalf("op %d: proc 1 should consume", i)
		}
	}
	// ops 10..19: rotation 1 -> proc 1 produces.
	ch0.Next()
	ch1.Next()
	for i := 0; i < 9; i++ {
		if ch0.Next() != metrics.OpRemove {
			t.Fatal("after flip, proc 0 should consume")
		}
		if ch1.Next() != metrics.OpAdd {
			t.Fatal("after flip, proc 1 should produce")
		}
	}
}

func TestBudgetExactLimit(t *testing.T) {
	b := NewBudget(100)
	claimed := 0
	for b.TryClaim() {
		claimed++
	}
	if claimed != 100 {
		t.Fatalf("claimed %d, want 100", claimed)
	}
	if !b.Exhausted() || b.Used() != 100 {
		t.Fatalf("Used = %d, Exhausted = %v", b.Used(), b.Exhausted())
	}
}

func TestBudgetConcurrentExact(t *testing.T) {
	b := NewBudget(10000)
	var wg sync.WaitGroup
	counts := make([]int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for b.TryClaim() {
				counts[id]++
			}
		}(i)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10000 {
		t.Fatalf("concurrent budget claimed %d, want 10000", total)
	}
}

func TestSweeps(t *testing.T) {
	mixes := MixSweep()
	if len(mixes) != 11 || mixes[0] != 0 || mixes[10] != 1 {
		t.Fatalf("MixSweep = %v", mixes)
	}
	prods := ProducerSweep(16)
	if len(prods) != 17 || prods[0] != 0 || prods[16] != 16 {
		t.Fatalf("ProducerSweep = %v", prods)
	}
}
