package workload

import (
	"math"
	"testing"
)

func TestArrivalsValidate(t *testing.T) {
	good := Arrivals{Lambda: 0.001, ServiceMean: 100, ServiceZipf: 1.1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid arrivals rejected: %v", err)
	}
	bad := []Arrivals{
		{},                             // Lambda required
		{Lambda: -1},                   // negative rate
		{Lambda: math.NaN()},           // NaN rate
		{Lambda: 1, Burstiness: -1},    // negative shape
		{Lambda: 1, BurstLen: 0.5},     // burst length below one arrival
		{Lambda: 1, ServiceMean: -5},   // negative service
		{Lambda: 1, ServiceZipf: -0.1}, // negative exponent
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("bad arrivals %d (%+v) accepted", i, a)
		}
	}
}

func TestArrivalGenDeterministic(t *testing.T) {
	a := Arrivals{Lambda: 0.002, Burstiness: 4, ServiceMean: 50, ServiceZipf: 1.1}
	g1 := a.Gen(3, 1989)
	g2 := a.Gen(3, 1989)
	other := a.Gen(4, 1989)
	differs := false
	for i := 0; i < 200; i++ {
		gap1, svc1 := g1.Next()
		gap2, svc2 := g2.Next()
		if gap1 != gap2 || svc1 != svc2 {
			t.Fatalf("same (proc,seed) diverged at draw %d", i)
		}
		if gap3, svc3 := other.Next(); gap3 != gap1 || svc3 != svc1 {
			differs = true
		}
	}
	if !differs {
		t.Error("different processors drew identical streams")
	}
}

func TestArrivalGenPoissonMean(t *testing.T) {
	// The empirical mean gap of the Poisson process approaches 1/Lambda.
	a := Arrivals{Lambda: 0.001} // mean gap 1000 µs
	g := a.Gen(0, 7)
	const n = 200000
	var sum int64
	for i := 0; i < n; i++ {
		gap, svc := g.Next()
		if svc != 0 {
			t.Fatal("no ServiceMean configured but service drawn")
		}
		sum += gap
	}
	mean := float64(sum) / n
	if mean < 950 || mean > 1050 {
		t.Errorf("Poisson mean gap = %.1f µs, want ~1000", mean)
	}
}

func TestArrivalGenBurstyPreservesRate(t *testing.T) {
	// Burstiness reshapes the gaps but the long-run rate stays Lambda:
	// short within-burst gaps, long idle gaps, same mean.
	a := Arrivals{Lambda: 0.001, Burstiness: 8, BurstLen: 4}
	g := a.Gen(1, 11)
	const n = 200000
	var sum int64
	short := 0
	for i := 0; i < n; i++ {
		gap, _ := g.Next()
		sum += gap
		if float64(gap) < 1/(2*a.Lambda) {
			short++
		}
	}
	mean := float64(sum) / n
	if mean < 930 || mean > 1070 {
		t.Errorf("bursty mean gap = %.1f µs, want ~1000 (rate preserved)", mean)
	}
	// Most gaps are the short within-burst kind — that is what "bursty"
	// means — while the mean is carried by the rare long idles.
	if frac := float64(short) / n; frac < 0.5 {
		t.Errorf("only %.0f%% of gaps are within-burst short, want a majority", frac*100)
	}
}

func TestArrivalGenZipfServiceMean(t *testing.T) {
	a := Arrivals{Lambda: 0.01, ServiceMean: 100, ServiceZipf: 1.1}
	g := a.Gen(0, 3)
	const n = 200000
	var sum, max int64
	for i := 0; i < n; i++ {
		_, svc := g.Next()
		if svc < 1 {
			t.Fatal("service below 1 µs")
		}
		sum += svc
		if svc > max {
			max = svc
		}
	}
	mean := float64(sum) / n
	if mean < 90 || mean > 110 {
		t.Errorf("zipf service mean = %.1f µs, want ~%d", mean, a.ServiceMean)
	}
	// Heavy tail: the largest class dwarfs the mean.
	if float64(max) < 5*mean {
		t.Errorf("max service %d not heavy-tailed relative to mean %.1f", max, mean)
	}
	// Zipf off: every draw is exactly ServiceMean.
	flat := Arrivals{Lambda: 0.01, ServiceMean: 100}.Gen(0, 3)
	for i := 0; i < 100; i++ {
		if _, svc := flat.Next(); svc != 100 {
			t.Fatalf("flat service drew %d, want exactly 100", svc)
		}
	}
}

func TestTenantHelpers(t *testing.T) {
	c := Config{Procs: 16, Tenants: 4, TenantSkew: 1.2,
		Arrivals: Arrivals{Lambda: 0.001}}
	if c.TenantCount() != 4 {
		t.Fatalf("TenantCount = %d, want 4", c.TenantCount())
	}
	// Contiguous blocks, matching policy.EvenTenants' partition.
	m := c.TenantMapping()
	for p := 0; p < 16; p++ {
		if m[p] != p/4 {
			t.Errorf("TenantOf(%d) = %d, want %d", p, m[p], p/4)
		}
	}
	// Weights decrease with tenant id and average to exactly 1, so skew
	// moves load around without changing the total offered load.
	var sum float64
	for i := 0; i < 4; i++ {
		w := c.TenantWeight(i)
		sum += w
		if i > 0 && w >= c.TenantWeight(i-1) {
			t.Errorf("weight not decreasing at tenant %d", i)
		}
	}
	if math.Abs(sum/4-1) > 1e-12 {
		t.Errorf("mean tenant weight = %v, want 1", sum/4)
	}
	// ArrivalsFor scales Lambda by the processor's tenant weight.
	hot := c.ArrivalsFor(0).Lambda
	cold := c.ArrivalsFor(15).Lambda
	if hot <= c.Arrivals.Lambda || cold >= c.Arrivals.Lambda {
		t.Errorf("skewed lambdas hot=%v cold=%v around base %v", hot, cold, c.Arrivals.Lambda)
	}
	// Skew 0 (or one tenant) leaves every processor at the base rate.
	c.TenantSkew = 0
	if c.ArrivalsFor(0).Lambda != c.Arrivals.Lambda {
		t.Error("skew 0 must not change Lambda")
	}
	// Tenants clamps to [1, Procs].
	if (Config{Procs: 4, Tenants: 9}).TenantCount() != 4 {
		t.Error("TenantCount must clamp to Procs")
	}
	if (Config{Procs: 4}).TenantCount() != 1 {
		t.Error("zero Tenants means one tenant")
	}
}

func TestOpenLoopValidate(t *testing.T) {
	c := Config{Procs: 4, TotalOps: 100, Model: OpenLoop, AddFraction: 0.5,
		Arrivals: Arrivals{Lambda: 0.001}}
	if err := c.Validate(); err != nil {
		t.Fatalf("valid open-loop config rejected: %v", err)
	}
	c.Arrivals.Lambda = 0
	if err := c.Validate(); err == nil {
		t.Error("open-loop config without Lambda accepted")
	}
	c.Arrivals.Lambda = 0.001
	c.Tenants = 9 // more tenants than processors
	if err := c.Validate(); err == nil {
		t.Error("Tenants > Procs accepted")
	}
}
