// Package workload generates the operation patterns of Section 3.3:
//
//   - the random operations model, where every process draws each
//     operation from the same add/remove job mix (swept 0%..100% adds in
//     10% steps; mixes below 50% adds are "sparse", at or above 50%
//     "sufficient");
//   - the producer/consumer model, where a fixed subset of processes only
//     add and the rest only remove, with the producers arranged either
//     contiguously (the paper's default, which causes consumer "bunching")
//     or balanced (spread evenly, Section 4.2's fix);
//   - the dynamic-roles extension (Section 3.3 notes that "in many real
//     systems, the identity of the processes acting as producers may
//     change dynamically over time");
//   - the burst model, a producer/consumer variant beyond the paper in
//     which processes move elements in batches of Config.BatchSize via the
//     pools' batch operations (PutAll/GetN), modelling the bursty arrivals
//     of real producer/consumer systems;
//   - the open-loop model (also beyond the paper), where operations arrive
//     on an external clock (Poisson or bursty-exponential, with
//     zipf-distributed service times) and queue behind busy processes, with
//     an optional multi-tenant partition skewing arrival rates — the
//     heavy-traffic regime judged by sojourn-time tails instead of mean
//     operation time. See Arrivals and docs/WORKLOADS.md.
//
// The experiment protocol constants (5000 operations against a pool seeded
// with 320 elements on 16 processors, averaged over 10 trials) also live
// here so the harness, simulator, and benchmarks agree.
package workload

import (
	"fmt"
	"sync/atomic"

	"pools/internal/metrics"
	"pools/internal/rng"
)

// Paper protocol constants (Section 3.1 and 3.4).
const (
	// PaperProcs is the pool size: "We have experimented with 16-processor
	// pools ... with one segment and one process on each processor."
	PaperProcs = 16
	// PaperTotalOps is the shared operation budget: "5000 operations were
	// performed ...".
	PaperTotalOps = 5000
	// PaperInitialElements seeds the pool: "... on a pool initialized with
	// only 320 elements."
	PaperInitialElements = 320
	// PaperTrials is the number of averaged repetitions: "For each
	// workload, ten trials were performed."
	PaperTrials = 10
)

// Model selects the operation pattern.
type Model int

// The two workload models of Section 3.3, plus the batched
// producer/consumer extension and the open-loop arrivals extension.
const (
	RandomOps Model = iota + 1
	ProducerConsumer
	Burst
	// OpenLoop replaces the closed loop (next op starts when the previous
	// finishes) with an external arrival clock (Config.Arrivals): each
	// process draws inter-arrival gaps and per-arrival service times, ops
	// queue behind a busy process, and the quantity measured is the tail
	// of sojourn time. The op mix is AddFraction, like RandomOps.
	OpenLoop
)

// String names the model.
func (m Model) String() string {
	switch m {
	case RandomOps:
		return "random-ops"
	case ProducerConsumer:
		return "producer-consumer"
	case Burst:
		return "burst"
	case OpenLoop:
		return "open-loop"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Arrangement selects how producer roles map onto processors.
type Arrangement int

// Producer arrangements (Section 4.2).
const (
	// Contiguous assigns producers to processors 0..k-1, the arrangement
	// that causes consumer bunching.
	Contiguous Arrangement = iota + 1
	// Balanced spreads the k producers evenly around the ring
	// (processors floor(i*P/k)), the fix evaluated in Figures 4 and 6.
	Balanced
)

// String names the arrangement.
func (a Arrangement) String() string {
	switch a {
	case Contiguous:
		return "contiguous"
	case Balanced:
		return "balanced"
	default:
		return fmt.Sprintf("Arrangement(%d)", int(a))
	}
}

// Config describes one workload.
type Config struct {
	Procs int   // number of processes (= segments)
	Model Model // operation pattern

	// AddFraction is the job mix for RandomOps and OpenLoop: the
	// probability that an operation is an add.
	AddFraction float64

	// Arrivals drives the OpenLoop model: the per-process arrival rate,
	// burstiness, and service-time distribution.
	Arrivals Arrivals

	// Tenants partitions the processors of an OpenLoop run into that many
	// contiguous blocks, each a tenant sharing the one pool; 0 or 1 means
	// a single tenant. TenantSkew is the zipf exponent skewing arrival
	// rates across tenants (0 = uniform; see TenantWeight). Use
	// TenantMapping to derive the matching segment partition for
	// policy.TenantMap.
	Tenants    int
	TenantSkew float64

	// Producers and Arrangement configure ProducerConsumer.
	Producers   int
	Arrangement Arrangement

	// RoleFlipEvery, when positive under ProducerConsumer or Burst,
	// rotates the producer set by one position after every RoleFlipEvery
	// elements a process moves — the dynamic-roles extension. Under the
	// single-element model an operation moves one element; under Burst a
	// batched operation advances the per-process count by BatchSize, so
	// the cadence stays element-denominated (and meaningful) at every
	// batch size.
	RoleFlipEvery int

	// BatchSize is the number of elements each Burst operation moves
	// (PutAll for producers, GetN for consumers). Burst only; must be
	// >= 1.
	BatchSize int

	TotalOps        int // shared operation budget (PaperTotalOps)
	InitialElements int // pool seed (PaperInitialElements)
}

// Paper returns the paper's base configuration for the given model.
func Paper(model Model) Config {
	return Config{
		Procs:           PaperProcs,
		Model:           model,
		Arrangement:     Contiguous,
		TotalOps:        PaperTotalOps,
		InitialElements: PaperInitialElements,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Procs < 1 {
		return fmt.Errorf("workload: Procs = %d, need >= 1", c.Procs)
	}
	switch c.Model {
	case RandomOps:
		if c.AddFraction < 0 || c.AddFraction > 1 {
			return fmt.Errorf("workload: AddFraction = %v, need [0,1]", c.AddFraction)
		}
	case OpenLoop:
		if c.AddFraction < 0 || c.AddFraction > 1 {
			return fmt.Errorf("workload: AddFraction = %v, need [0,1]", c.AddFraction)
		}
		if err := c.Arrivals.Validate(); err != nil {
			return err
		}
		if c.Tenants < 0 || c.Tenants > c.Procs {
			return fmt.Errorf("workload: Tenants = %d, need [0,%d]", c.Tenants, c.Procs)
		}
		if c.TenantSkew < 0 {
			return fmt.Errorf("workload: TenantSkew = %v, need >= 0", c.TenantSkew)
		}
	case ProducerConsumer, Burst:
		if c.Producers < 0 || c.Producers > c.Procs {
			return fmt.Errorf("workload: Producers = %d, need [0,%d]", c.Producers, c.Procs)
		}
		switch c.Arrangement {
		case Contiguous, Balanced:
		default:
			return fmt.Errorf("workload: unknown arrangement %d", int(c.Arrangement))
		}
		if c.Model == Burst && c.BatchSize < 1 {
			return fmt.Errorf("workload: BatchSize = %d, need >= 1 for the burst model", c.BatchSize)
		}
	default:
		return fmt.Errorf("workload: unknown model %d", int(c.Model))
	}
	if c.TotalOps < 0 || c.InitialElements < 0 {
		return fmt.Errorf("workload: negative budget (ops=%d, seed=%d)", c.TotalOps, c.InitialElements)
	}
	return nil
}

// ProducerPositions returns the processor indices holding producer roles.
func ProducerPositions(procs, producers int, arr Arrangement) []int {
	pos := make([]int, 0, producers)
	switch arr {
	case Balanced:
		for i := 0; i < producers; i++ {
			pos = append(pos, i*procs/producers)
		}
	default: // Contiguous
		for i := 0; i < producers; i++ {
			pos = append(pos, i)
		}
	}
	return pos
}

// IsProducer reports whether processor proc holds a producer role under
// the configuration (ProducerConsumer and Burst models only).
func (c Config) IsProducer(proc int) bool {
	for _, p := range ProducerPositions(c.Procs, c.Producers, c.Arrangement) {
		if p == proc {
			return true
		}
	}
	return false
}

// Chooser draws the next operation for one process. It is not safe for
// concurrent use; each process owns one.
type Chooser struct {
	cfg      Config
	proc     int
	rng      *rng.Xoshiro256
	producer bool
	ops      int // elements this process has moved (the role-flip clock)
}

// NewChooser returns the operation chooser for processor proc, seeded
// deterministically from the trial seed.
func NewChooser(cfg Config, proc int, trialSeed uint64) *Chooser {
	return &Chooser{
		cfg:      cfg,
		proc:     proc,
		rng:      rng.NewXoshiro256(rng.SubSeed(trialSeed, proc)),
		producer: (cfg.Model == ProducerConsumer || cfg.Model == Burst) && cfg.IsProducer(proc),
	}
}

// Next returns the next operation kind for this process. The role-flip
// clock advances per element the operation intends to move: one for the
// single-element models, BatchSize for Burst. Burst drivers whose actual
// batch differs from the configured size (an adaptive controller may
// raise it) should use NextBatch instead so the cadence stays honest.
func (ch *Chooser) Next() metrics.OpKind {
	step := 1
	if ch.cfg.Model == Burst && ch.cfg.BatchSize > 1 {
		step = ch.cfg.BatchSize
	}
	return ch.next(step)
}

// NextBatch returns the next operation kind for a batched operation about
// to move up to take elements, advancing the role-flip clock by take.
func (ch *Chooser) NextBatch(take int) metrics.OpKind {
	if take < 1 {
		take = 1
	}
	return ch.next(take)
}

// next advances the role-flip clock by step elements and draws the
// operation kind.
func (ch *Chooser) next(step int) metrics.OpKind {
	ch.ops += step
	switch ch.cfg.Model {
	case ProducerConsumer, Burst:
		producer := ch.producer
		if ch.cfg.RoleFlipEvery > 0 {
			// Rotate the producer set by one position per flip interval.
			rot := ch.ops / ch.cfg.RoleFlipEvery
			shifted := (ch.proc - rot) % ch.cfg.Procs
			if shifted < 0 {
				shifted += ch.cfg.Procs
			}
			producer = ch.cfg.IsProducer(shifted)
		}
		if producer {
			return metrics.OpAdd
		}
		return metrics.OpRemove
	default: // RandomOps
		if ch.rng.Bool(ch.cfg.AddFraction) {
			return metrics.OpAdd
		}
		return metrics.OpRemove
	}
}

// Budget is the shared operation counter implementing the paper's stopping
// rule: "the processes performed operations until the combined total
// number of operations reached the desired amount." It is safe for
// concurrent use.
type Budget struct {
	limit int64
	used  atomic.Int64
}

// NewBudget returns a budget of n operations.
func NewBudget(n int) *Budget {
	b := &Budget{limit: int64(n)}
	return b
}

// TryClaim consumes one operation from the budget, reporting false when
// the budget is exhausted.
func (b *Budget) TryClaim() bool {
	return b.TryClaimN(1) == 1
}

// TryClaimN consumes up to k operations from the budget, returning how
// many were claimed (0 when exhausted). A burst worker claims one budget
// unit per element it intends to move, so batched and single-element runs
// spend the same total budget.
func (b *Budget) TryClaimN(k int) int {
	if k <= 0 {
		return 0
	}
	for {
		cur := b.used.Load()
		rem := b.limit - cur
		if rem <= 0 {
			return 0
		}
		take := int64(k)
		if take > rem {
			take = rem
		}
		if b.used.CompareAndSwap(cur, cur+take) {
			return int(take)
		}
	}
}

// Refund returns n unused operations to the budget: a burst worker claims
// BatchSize units up front and refunds the ones its GetN could not move.
// A refund may briefly revive a budget another worker already observed as
// exhausted; workers that exited on that observation simply leave the
// refunded units unspent.
func (b *Budget) Refund(n int) {
	if n > 0 {
		b.used.Add(int64(-n))
	}
}

// Used returns the number of operations claimed so far.
func (b *Budget) Used() int { return int(b.used.Load()) }

// Exhausted reports whether no operations remain.
func (b *Budget) Exhausted() bool { return b.used.Load() >= b.limit }

// MixSweep returns the job-mix values of the paper's random-ops sweep:
// 0%, 10%, ..., 100% adds.
func MixSweep() []float64 {
	out := make([]float64, 0, 11)
	for i := 0; i <= 10; i++ {
		out = append(out, float64(i)/10)
	}
	return out
}

// ProducerSweep returns the producer counts of the paper's
// producer/consumer sweep: 0..procs.
func ProducerSweep(procs int) []int {
	out := make([]int, 0, procs+1)
	for i := 0; i <= procs; i++ {
		out = append(out, i)
	}
	return out
}
