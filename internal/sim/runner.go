package sim

import (
	"pools/internal/metrics"
	"pools/internal/numa"
	"pools/internal/policy"
	"pools/internal/search"
	"pools/internal/trace"
	"pools/internal/workload"
)

// RunConfig describes one simulated trial of the paper's protocol: P
// processors issuing a continuous stream of operations against a seeded
// pool until the shared operation budget is exhausted (Section 3.4).
type RunConfig struct {
	Workload workload.Config
	Search   search.Kind
	Costs    numa.CostModel
	Seed     uint64
	// Policies selects the pool's steal/search/control policies for this
	// trial. Adaptive sets carry state: construct a fresh Set per trial
	// (policy.Named does).
	Policies policy.Set
	// StealOne is the deprecated steal-one alias; see PoolConfig.StealOne.
	StealOne bool
	Trace    bool
	// ControlTrace enables per-processor controller-trajectory traces
	// (steal fraction and recommended batch size sampled after every
	// operation); meaningful only for sets with a Controller.
	ControlTrace bool
	// EventBuf, when positive, attaches a flight recorder of that many
	// events to every processor (PoolConfig.EventBuf); the recorded
	// timelines come back in RunResult.Events, deterministic for a seed.
	EventBuf int
	// Churn, when enabled, layers a seeded kill/revive schedule over the
	// run: an extra driver process ticks on the virtual clock, kills one
	// live processor at a time (workload.Churn), revives it after the
	// configured downtime, and samples cumulative completed operations
	// into RunResult.OpsTrace so throughput dip and recovery are
	// measurable. Killed processors idle (consuming virtual time but no
	// budget) until revived. Not supported under the OpenLoop model,
	// whose arrival streams assume a fixed processor set. A disabled
	// schedule leaves the run byte-identical to a config without it.
	Churn workload.Churn
}

// ChurnEvent is one membership transition the chaos driver performed.
type ChurnEvent struct {
	// Time is the virtual time of the transition (µs).
	Time int64
	// Proc is the processor killed or revived.
	Proc int
	// Revive distinguishes the two transitions.
	Revive bool
	// Drain records the kill mode (meaningless on revives).
	Drain bool
}

// ControllerTrace is one processor's controller trajectory over virtual
// time: the steal fraction (in permil, 500 = the paper's steal-half), the
// recommended batch size, and the processor's cumulative cross-cluster
// probe fraction (permil; 0 without a hop topology), sampled after every
// operation the processor completes. Under a per-handle policy set each
// processor traces its own controller; under a pool-wide set all
// processors trace the shared one — the cross-probe fraction is always
// the processor's own.
type ControllerTrace struct {
	FracPermil  metrics.Trace
	Batch       metrics.Trace
	CrossPermil metrics.Trace
}

// RunResult carries everything the paper measures from one trial.
type RunResult struct {
	// Stats aggregates all processors' operation statistics.
	Stats metrics.PoolStats
	// PerProc holds each processor's own statistics.
	PerProc []metrics.PoolStats
	// Makespan is the final virtual time (µs).
	Makespan int64
	// Traces are per-segment size traces (only when RunConfig.Trace).
	Traces []metrics.Trace
	// Controls are per-processor controller trajectories (only when
	// RunConfig.ControlTrace and the policy set has a controller).
	Controls []ControllerTrace
	// SegmentWaited is the queueing delay suffered at each segment, the
	// interference measure behind the bunching analysis.
	SegmentWaited []int64
	// Sojourns are per-processor sojourn-time histograms (completion minus
	// arrival, µs) under the OpenLoop model; nil for closed-loop models.
	// Aggregate across processors (or a tenant's processors) with
	// LatencyHist.Merge before reading percentiles.
	Sojourns []metrics.LatencyHist
	// Remaining is the number of elements left in the pool at the end.
	Remaining int
	// Events are the per-processor flight-recorder timelines (only when
	// RunConfig.EventBuf), on the virtual clock.
	Events []trace.Timeline
	// OpsTrace is cumulative completed operations sampled on the virtual
	// clock by the chaos driver (only when RunConfig.Churn is enabled).
	// Windowed differences give the throughput curve around each kill.
	OpsTrace metrics.Trace
	// Churn lists the membership transitions the chaos driver performed,
	// in virtual-time order (only when RunConfig.Churn is enabled).
	Churn []ChurnEvent
}

// Chaos-driver cadence on the virtual clock: how often the driver
// samples cumulative ops (and checks its kill/revive schedule), and how
// long a killed processor idles between alive checks. Coarse enough not
// to distort the run, fine enough to resolve a downtime window.
const (
	churnSampleEvery = 100 // µs between driver ticks
	churnIdleTick    = 50  // µs a killed processor idles per alive check
)

// Run executes one trial and returns its measurements. It is deterministic
// given RunConfig (including Seed).
func Run(cfg RunConfig) RunResult {
	wl := cfg.Workload
	if err := wl.Validate(); err != nil {
		panic(err) // programmer error: harness configs are static
	}
	churn := cfg.Churn
	if err := churn.Validate(); err != nil {
		panic(err)
	}
	churnOn := churn.Enabled()
	if churnOn && wl.Model == workload.OpenLoop {
		// The open-loop arrival streams assume a fixed processor set; a
		// killed processor's arrivals have nowhere to go.
		panic("sim: Churn is not supported under the OpenLoop model")
	}
	if churnOn && wl.Procs < 2 {
		panic("sim: Churn needs at least 2 processors (the last live member cannot be killed)")
	}
	searchLaps := 0
	if wl.Model == workload.OpenLoop {
		// Bounded search instead of the all-searching livelock rule: under
		// external arrivals the idle processes never enter a search, so the
		// all-searching observation would pin a searcher on a drained pool
		// until the next add happens to arrive. See PoolConfig.SearchLaps.
		searchLaps = 2
	}
	pool := NewPool[Token](PoolConfig{
		Procs:      wl.Procs,
		Search:     cfg.Search,
		Costs:      cfg.Costs,
		Seed:       cfg.Seed,
		Policies:   cfg.Policies,
		StealOne:   cfg.StealOne,
		Trace:      cfg.Trace,
		SearchLaps: searchLaps,
		EventBuf:   cfg.EventBuf,
	})
	pool.Seed(wl.InitialElements, func(int) Token { return Token{} })

	// The chaos driver, when churn is on, is one extra scheduler process
	// with the highest id: at equal clocks the scheduler grants lower
	// ids first, so every worker binds its Proc before the driver's
	// first tick can kill one.
	nprocs := wl.Procs
	if churnOn {
		nprocs++
	}
	s := New(nprocs)
	// The shared operation counter is a real shared-memory location in the
	// paper's driver ("the processes performed operations until the
	// combined total number of operations reached the desired amount"):
	// claiming an operation charges a remote shared access.
	budget := wl.TotalOps
	budgetRes := Resource{Name: "op-budget"}
	procs := make([]*Proc[Token], wl.Procs)
	var controls []ControllerTrace
	if cfg.ControlTrace {
		controls = make([]ControllerTrace, wl.Procs)
	}
	var sojourns []metrics.LatencyHist
	if wl.Model == workload.OpenLoop {
		sojourns = make([]metrics.LatencyHist, wl.Procs)
	}
	for id := 0; id < wl.Procs; id++ {
		id := id
		s.Spawn(id, func(env *Env) {
			pr := pool.Proc(env)
			procs[id] = pr
			ch := workload.NewChooser(wl, id, cfg.Seed)
			// sample records the controller's operating point after an
			// operation, building the trajectory traces.
			sample := func() {
				if controls == nil {
					return
				}
				if frac, batch, ok := pr.ControlSample(wl.BatchSize); ok {
					controls[id].FracPermil.Record(env.Now(), frac)
					controls[id].Batch.Record(env.Now(), batch)
					cross := int64(pr.Stats().CrossProbeFraction()*1000 + 0.5)
					controls[id].CrossPermil.Record(env.Now(), cross)
				}
			}
			if wl.Model == workload.OpenLoop {
				// Open loop: operations arrive on the external clock, not
				// when the previous one finishes. A processor behind on its
				// arrival schedule starts the next operation immediately —
				// the backlog is what inflates sojourn time under overload.
				gen := wl.ArrivalsFor(id).Gen(id, cfg.Seed)
				var arrival int64
				for {
					env.Charge(&budgetRes, cfg.Costs.Cost(numa.AccessShared, id, -1))
					if budget <= 0 {
						pool.AbortAll()
						return
					}
					budget--
					gap, svc := gen.Next()
					arrival += gap
					if wait := arrival - env.Now(); wait > 0 {
						env.Compute(wait) // idle until the arrival
					}
					if ch.Next() == metrics.OpAdd {
						pr.Put(Token{})
					} else {
						pr.Get()
					}
					if svc > 0 {
						env.Compute(svc)
					}
					sojourns[id].Record(env.Now() - arrival)
					sample()
				}
			}
			for {
				if churnOn && !pool.Alive(id) {
					// Killed: idle on the virtual clock — no budget
					// claims, no pool accesses — until revived or the
					// run ends. (Zero-churn runs never reach this check,
					// so their schedules are untouched.)
					if budget <= 0 {
						pool.AbortAll()
						return
					}
					env.Compute(churnIdleTick)
					continue
				}
				env.Charge(&budgetRes, cfg.Costs.Cost(numa.AccessShared, id, -1))
				if budget <= 0 {
					// Run over: release any processors stuck searching.
					pool.AbortAll()
					return
				}
				if wl.Model == workload.Burst {
					// One budget unit per element moved, or one per aborted
					// operation (as in the single-element model): a batch
					// claims up to BatchSize units in one shared-counter
					// access and refunds what it could not move, so
					// Ops()+Aborts == TotalOps holds at every batch size.
					// An online controller (adaptive or per-handle) may
					// retune the batch between operations; each processor
					// asks its own controller instance.
					take := pr.BatchSize(wl.BatchSize)
					if take > budget {
						take = budget
					}
					budget -= take
					if ch.NextBatch(take) == metrics.OpAdd {
						pr.PutAll(make([]Token, take))
					} else {
						consumed := len(pr.GetN(take))
						if consumed == 0 {
							consumed = 1 // an abort costs one unit
						}
						budget += take - consumed
					}
					sample()
					continue
				}
				budget--
				if ch.Next() == metrics.OpAdd {
					pr.Put(Token{})
				} else {
					pr.Get()
				}
				sample()
			}
		})
	}
	var opsTrace metrics.Trace
	var churnEvents []ChurnEvent
	if churnOn {
		s.Spawn(wl.Procs, func(env *Env) {
			gen := churn.Gen(cfg.Seed)
			victim := -1
			var nextRevive int64
			nextKill := gen.NextGap() // schedule the first kill from t=0
			for {
				env.Compute(churnSampleEvery)
				if budget <= 0 {
					return
				}
				ops := int64(0)
				for _, pr := range procs {
					if pr != nil {
						ops += pr.Stats().Ops()
					}
				}
				opsTrace.Record(env.Now(), ops)
				switch {
				case victim < 0 && nextKill >= 0 && env.Now() >= nextKill:
					t := gen.PickVictim(wl.Procs)
					if !pool.Kill(env, t, churn.Drain) {
						break // refused (last live member): retry next tick
					}
					victim = t
					churnEvents = append(churnEvents, ChurnEvent{Time: env.Now(), Proc: t, Drain: churn.Drain})
					nextRevive = env.Now() + churn.ReviveAfter
				case victim >= 0 && env.Now() >= nextRevive:
					pool.Revive(victim)
					churnEvents = append(churnEvents, ChurnEvent{Time: env.Now(), Proc: victim, Revive: true})
					victim = -1
					if gap := gen.NextGap(); gap >= 0 {
						nextKill = env.Now() + gap
					} else {
						nextKill = -1 // schedule exhausted (MaxKills)
					}
				}
			}
		})
	}
	makespan := s.Run()

	res := RunResult{
		Makespan:      makespan,
		PerProc:       make([]metrics.PoolStats, wl.Procs),
		SegmentWaited: make([]int64, wl.Procs),
		Traces:        pool.Traces(),
		Controls:      controls,
		Remaining:     pool.Len(),
		Sojourns:      sojourns,
		Events:        pool.Timelines(),
		OpsTrace:      opsTrace,
		Churn:         churnEvents,
	}
	for id, pr := range procs {
		res.PerProc[id] = *pr.Stats()
		res.Stats.Merge(pr.Stats())
		res.SegmentWaited[id] = pool.SegmentWaited(id)
	}
	return res
}
