package sim

import (
	"testing"

	"pools/internal/numa"
	"pools/internal/search"
	"pools/internal/workload"
)

func TestSimSingleProcClock(t *testing.T) {
	s := New(1)
	var r Resource
	s.Spawn(0, func(e *Env) {
		e.Charge(&r, 10)
		e.Compute(5)
		e.Charge(&r, 20)
	})
	if makespan := s.Run(); makespan != 35 {
		t.Fatalf("makespan = %d, want 35", makespan)
	}
	if r.Accesses() != 2 || r.Waited() != 0 {
		t.Fatalf("resource stats: accesses=%d waited=%d", r.Accesses(), r.Waited())
	}
}

func TestSimResourceContentionSerializes(t *testing.T) {
	// Two processors hammer one resource with equal-cost accesses: the
	// makespan must be the *sum* of costs (full serialization), and the
	// waiting time must be charged.
	s := New(2)
	var r Resource
	body := func(e *Env) {
		for i := 0; i < 10; i++ {
			e.Charge(&r, 10)
		}
	}
	s.Spawn(0, body)
	s.Spawn(1, body)
	if makespan := s.Run(); makespan != 200 {
		t.Fatalf("makespan = %d, want 200 (20 serialized accesses)", makespan)
	}
	if r.Waited() == 0 {
		t.Fatal("contention charged no waiting time")
	}
}

func TestSimIndependentResourcesParallel(t *testing.T) {
	// Two processors on private resources run fully in parallel.
	s := New(2)
	var r0, r1 Resource
	s.Spawn(0, func(e *Env) {
		for i := 0; i < 10; i++ {
			e.Charge(&r0, 10)
		}
	})
	s.Spawn(1, func(e *Env) {
		for i := 0; i < 10; i++ {
			e.Charge(&r1, 10)
		}
	})
	if makespan := s.Run(); makespan != 100 {
		t.Fatalf("makespan = %d, want 100 (perfect overlap)", makespan)
	}
}

func TestSimDeterministicInterleaving(t *testing.T) {
	run := func() []int {
		s := New(4)
		var r Resource
		var order []int
		for id := 0; id < 4; id++ {
			id := id
			s.Spawn(id, func(e *Env) {
				for i := 0; i < 5; i++ {
					e.Charge(&r, int64(id+1))
					order = append(order, id)
				}
			})
		}
		s.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 20 {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleaving diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestSimClocksMonotonePerProc(t *testing.T) {
	s := New(3)
	var r Resource
	for id := 0; id < 3; id++ {
		s.Spawn(id, func(e *Env) {
			prev := e.Now()
			for i := 0; i < 20; i++ {
				e.Charge(&r, 7)
				if e.Now() < prev {
					t.Errorf("clock went backwards: %d -> %d", prev, e.Now())
				}
				prev = e.Now()
			}
		})
	}
	s.Run()
}

func TestSimPanicsOnBadUse(t *testing.T) {
	for i, f := range []func(){
		func() { New(0) },
		func() {
			s := New(1)
			s.Run()
			s.Run()
		},
		func() {
			s := New(1)
			s.Run()
			s.Spawn(0, func(*Env) {})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSimPoolLocalOps(t *testing.T) {
	pool := NewPool[int](PoolConfig{Procs: 4, Costs: numa.ButterflyCosts()})
	s := New(4)
	s.Spawn(0, func(e *Env) {
		pr := pool.Proc(e)
		pr.Put(11)
		pr.Put(22)
		if v, ok := pr.Get(); !ok || v != 22 {
			t.Errorf("Get = (%d,%v)", v, ok)
		}
	})
	s.Run()
	if pool.Len() != 1 {
		t.Fatalf("Len = %d, want 1", pool.Len())
	}
	// Local add (70) + add (70) + remove (110) = 250.
}

func TestSimPoolStealAcrossProcs(t *testing.T) {
	for _, kind := range search.Kinds() {
		pool := NewPool[int](PoolConfig{Procs: 4, Search: kind, Costs: numa.ButterflyCosts(), Seed: 5})
		pool.Seed(8, func(i int) int { return i }) // 2 per segment
		s := New(4)
		got := make([][]int, 4)
		for id := 0; id < 4; id++ {
			id := id
			s.Spawn(id, func(e *Env) {
				pr := pool.Proc(e)
				for {
					v, ok := pr.Get()
					if !ok {
						return
					}
					got[id] = append(got[id], v)
				}
			})
		}
		s.Run()
		seen := map[int]bool{}
		total := 0
		for _, g := range got {
			for _, v := range g {
				if seen[v] {
					t.Fatalf("%v: element %d delivered twice", kind, v)
				}
				seen[v] = true
				total++
			}
		}
		if total != 8 || pool.Len() != 0 {
			t.Fatalf("%v: delivered %d, remaining %d", kind, total, pool.Len())
		}
	}
}

func TestSimPoolAbortsWhenAllSearching(t *testing.T) {
	// Empty pool, all consumers: every Get must abort (not hang).
	pool := NewPool[Token](PoolConfig{Procs: 4, Costs: numa.ButterflyCosts()})
	s := New(4)
	aborted := 0
	for id := 0; id < 4; id++ {
		s.Spawn(id, func(e *Env) {
			pr := pool.Proc(e)
			if _, ok := pr.Get(); !ok {
				aborted++
			}
		})
	}
	s.Run()
	if aborted != 4 {
		t.Fatalf("aborted = %d, want 4", aborted)
	}
}

func TestRunPaperProtocolConservation(t *testing.T) {
	for _, kind := range search.Kinds() {
		wl := workload.Paper(workload.RandomOps)
		wl.AddFraction = 0.5
		res := Run(RunConfig{Workload: wl, Search: kind, Costs: numa.ButterflyCosts(), Seed: 42})
		st := res.Stats
		if got := st.Ops() + st.Aborts; got != int64(wl.TotalOps) {
			t.Fatalf("%v: ops+aborts = %d, want %d", kind, got, wl.TotalOps)
		}
		// Conservation: seed + adds - removes = remaining.
		want := int64(wl.InitialElements) + st.Adds - st.Removes
		if int64(res.Remaining) != want {
			t.Fatalf("%v: remaining = %d, want %d", kind, res.Remaining, want)
		}
		if res.Makespan <= 0 {
			t.Fatalf("%v: makespan = %d", kind, res.Makespan)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	wl := workload.Paper(workload.ProducerConsumer)
	wl.Producers = 5
	cfg := RunConfig{Workload: wl, Search: search.Tree, Costs: numa.ButterflyCosts(), Seed: 9}
	a := Run(cfg)
	b := Run(cfg)
	if a.Makespan != b.Makespan || a.Stats.AvgOpTime() != b.Stats.AvgOpTime() ||
		a.Stats.Steals != b.Stats.Steals || a.Remaining != b.Remaining {
		t.Fatalf("same seed diverged: %+v vs %+v", a.Stats, b.Stats)
	}
	c := Run(RunConfig{Workload: wl, Search: search.Tree, Costs: numa.ButterflyCosts(), Seed: 10})
	if a.Makespan == c.Makespan && a.Stats.Steals == c.Stats.Steals {
		t.Log("warning: different seeds produced identical results (possible but suspicious)")
	}
}

func TestRunSufficientMixHasFewSteals(t *testing.T) {
	// "no steals are performed with a sufficient mix" — with 80% adds the
	// pool grows; steals should be essentially absent.
	wl := workload.Paper(workload.RandomOps)
	wl.AddFraction = 0.8
	res := Run(RunConfig{Workload: wl, Search: search.Linear, Costs: numa.ButterflyCosts(), Seed: 1})
	if frac := res.Stats.StealFraction(); frac > 0.05 {
		t.Fatalf("steal fraction %.3f at 80%% adds, want ~0", frac)
	}
}

func TestRunSparseMixStealsOften(t *testing.T) {
	wl := workload.Paper(workload.RandomOps)
	wl.AddFraction = 0.3
	res := Run(RunConfig{Workload: wl, Search: search.Linear, Costs: numa.ButterflyCosts(), Seed: 1})
	if res.Stats.Steals == 0 {
		t.Fatal("sparse mix produced no steals")
	}
	// Sparse runs drain the pool; average op time must exceed the
	// sufficient-mix time.
	wl.AddFraction = 0.9
	rich := Run(RunConfig{Workload: wl, Search: search.Linear, Costs: numa.ButterflyCosts(), Seed: 1})
	if res.Stats.AvgOpTime() <= rich.Stats.AvgOpTime() {
		t.Fatalf("sparse avg %.1f <= sufficient avg %.1f", res.Stats.AvgOpTime(), rich.Stats.AvgOpTime())
	}
}

func TestRunProducerConsumerStealsAtAllMixes(t *testing.T) {
	// "the producer/consumer model forces consumers to steal all of the
	// elements they use, regardless of the ratio" — even at 50%+ mixes.
	wl := workload.Paper(workload.ProducerConsumer)
	wl.Producers = 10 // 62% adds: sufficient
	res := Run(RunConfig{Workload: wl, Search: search.Linear, Costs: numa.ButterflyCosts(), Seed: 3})
	if res.Stats.Steals == 0 {
		t.Fatal("producer/consumer with sufficient mix still must steal")
	}
}

func TestRunTraceRecordsSegments(t *testing.T) {
	wl := workload.Paper(workload.ProducerConsumer)
	wl.Producers = 5
	res := Run(RunConfig{Workload: wl, Search: search.Linear, Costs: numa.ButterflyCosts(), Seed: 3, Trace: true})
	if len(res.Traces) != 16 {
		t.Fatalf("traces = %d, want 16", len(res.Traces))
	}
	points := 0
	for i := range res.Traces {
		points += res.Traces[i].Len()
	}
	if points < 1000 {
		t.Fatalf("only %d trace points over 5000 ops", points)
	}
}

func TestRunZeroProducersAborts(t *testing.T) {
	// All consumers on a 320-element pool: exactly 320 removes succeed and
	// the rest abort; the run must terminate.
	wl := workload.Paper(workload.ProducerConsumer)
	wl.Producers = 0
	res := Run(RunConfig{Workload: wl, Search: search.Random, Costs: numa.ButterflyCosts(), Seed: 2})
	if res.Stats.Removes != int64(wl.InitialElements) {
		t.Fatalf("removes = %d, want %d", res.Stats.Removes, wl.InitialElements)
	}
	if res.Stats.Aborts == 0 {
		t.Fatal("expected aborts after the pool drained")
	}
}

func TestRunAllProducers(t *testing.T) {
	wl := workload.Paper(workload.ProducerConsumer)
	wl.Producers = 16
	res := Run(RunConfig{Workload: wl, Search: search.Tree, Costs: numa.ButterflyCosts(), Seed: 2})
	if res.Stats.Adds != int64(wl.TotalOps) {
		t.Fatalf("adds = %d, want %d", res.Stats.Adds, wl.TotalOps)
	}
	if res.Remaining != wl.InitialElements+wl.TotalOps {
		t.Fatalf("remaining = %d", res.Remaining)
	}
}

func TestRunExtraDelayRaisesOpTimes(t *testing.T) {
	wl := workload.Paper(workload.RandomOps)
	wl.AddFraction = 0.3
	base := Run(RunConfig{Workload: wl, Search: search.Linear, Costs: numa.ButterflyCosts(), Seed: 5})
	slow := Run(RunConfig{Workload: wl, Search: search.Linear,
		Costs: numa.ButterflyCosts().WithExtraDelay(1000), Seed: 5})
	if slow.Stats.AvgOpTime() <= base.Stats.AvgOpTime() {
		t.Fatalf("extra delay did not slow ops: %.1f vs %.1f",
			slow.Stats.AvgOpTime(), base.Stats.AvgOpTime())
	}
}

func BenchmarkRunRandomMix30Linear(b *testing.B) {
	wl := workload.Paper(workload.RandomOps)
	wl.AddFraction = 0.3
	for i := 0; i < b.N; i++ {
		Run(RunConfig{Workload: wl, Search: search.Linear, Costs: numa.ButterflyCosts(), Seed: uint64(i)})
	}
}

func BenchmarkRunPC5Tree(b *testing.B) {
	wl := workload.Paper(workload.ProducerConsumer)
	wl.Producers = 5
	for i := 0; i < b.N; i++ {
		Run(RunConfig{Workload: wl, Search: search.Tree, Costs: numa.ButterflyCosts(), Seed: uint64(i)})
	}
}

func TestSimPoolRetireAllowsRemainingToAbort(t *testing.T) {
	// Two consumers; one retires after its first failed Get. The survivor
	// must still reach the all-searching abort against the reduced
	// participant count rather than searching forever.
	pool := NewPool[Token](PoolConfig{Procs: 2, Costs: numa.ButterflyCosts()})
	s := New(2)
	aborted := make([]bool, 2)
	s.Spawn(0, func(e *Env) {
		pr := pool.Proc(e)
		if _, ok := pr.Get(); !ok {
			aborted[0] = true
		}
		pr.Retire()
	})
	s.Spawn(1, func(e *Env) {
		pr := pool.Proc(e)
		for i := 0; i < 3; i++ {
			if _, ok := pr.Get(); !ok {
				aborted[1] = true
			}
		}
		pr.Retire()
	})
	s.Run()
	if !aborted[0] || !aborted[1] {
		t.Fatalf("aborts = %v, want both", aborted)
	}
}

func TestSimPoolInjectSeedsSegmentZero(t *testing.T) {
	pool := NewPool[int](PoolConfig{Procs: 4, Costs: numa.ButterflyCosts()})
	pool.Inject(7)
	if pool.SegmentLen(0) != 1 || pool.Len() != 1 {
		t.Fatalf("Inject misplaced: seg0=%d len=%d", pool.SegmentLen(0), pool.Len())
	}
	s := New(4)
	s.Spawn(0, func(e *Env) {
		pr := pool.Proc(e)
		if v, ok := pr.Get(); !ok || v != 7 {
			t.Errorf("Get = (%d,%v)", v, ok)
		}
	})
	s.Run()
}

func TestSimPoolEmptyAbortLatchClearsOnPut(t *testing.T) {
	pool := NewPool[Token](PoolConfig{Procs: 2, Costs: numa.ButterflyCosts()})
	s := New(2)
	var firstAborted, secondOK bool
	s.Spawn(0, func(e *Env) {
		pr := pool.Proc(e)
		if _, ok := pr.Get(); !ok {
			firstAborted = true // latches emptyAbort
		}
		// Retry until the late producer's Put clears the latch; each
		// failed attempt advances this processor's virtual clock, so the
		// loop is bounded.
		for i := 0; i < 5000; i++ {
			if _, ok := pr.Get(); ok {
				secondOK = true
				return
			}
		}
	})
	s.Spawn(1, func(e *Env) {
		pr := pool.Proc(e)
		pr.Get() // joins the all-searching abort
		e.Compute(100000)
		pr.Put(Token{})
		pr.Retire()
	})
	s.Run()
	if !firstAborted {
		t.Fatal("first Get should have aborted on the empty pool")
	}
	if !secondOK {
		t.Fatal("Put did not clear the empty-abort latch")
	}
}

func TestRunDynamicRolesWorkload(t *testing.T) {
	wl := workload.Paper(workload.ProducerConsumer)
	wl.Producers = 4
	wl.RoleFlipEvery = 10
	res := Run(RunConfig{Workload: wl, Search: search.Linear, Costs: numa.ButterflyCosts(), Seed: 6})
	if res.Stats.Adds == 0 || res.Stats.Removes == 0 {
		t.Fatalf("rotation produced a degenerate run: %+v", res.Stats)
	}
	// With rotating roles every processor eventually adds.
	producersSeen := 0
	for _, st := range res.PerProc {
		if st.Adds > 0 {
			producersSeen++
		}
	}
	// Rotation spreads production well beyond the 4 static producer slots
	// (processors reach rotations at slightly different op counts, so a
	// straggler may not produce before the budget ends).
	if producersSeen < 3*wl.Procs/4 {
		t.Fatalf("only %d/%d processors ever produced under rotation", producersSeen, wl.Procs)
	}
}

func TestResourceChargeNegativeClamped(t *testing.T) {
	s := New(1)
	var r Resource
	s.Spawn(0, func(e *Env) {
		e.Charge(&r, -50)
		e.Compute(10)
	})
	if makespan := s.Run(); makespan != 10 {
		t.Fatalf("makespan = %d, want 10 (negative cost clamps to 0)", makespan)
	}
}
