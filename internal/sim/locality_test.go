package sim

import (
	"testing"

	"pools/internal/numa"
	"pools/internal/policy"
	"pools/internal/search"
	"pools/internal/workload"
)

// localityTrial runs one sparse random-ops trial under the given victim
// order on a clustered machine with the given added remote delay.
func localityTrial(t *testing.T, set policy.Set, extra int64, seed uint64) RunResult {
	t.Helper()
	costs := numa.ButterflyCosts().WithTopology(numa.Clusters{Size: 4}).WithExtraDelay(extra)
	w := workload.Config{
		Procs:           16,
		Model:           workload.RandomOps,
		AddFraction:     0.3,
		TotalOps:        1200,
		InitialElements: 96,
	}
	return Run(RunConfig{
		Workload: w, Search: search.Linear, Costs: costs, Seed: seed, Policies: set,
	})
}

// TestLocalityOrderBeatsBlindUnderDelay checks the tentpole property in
// simulation: on a clustered machine with a large added remote delay, the
// cost-ranked victim order finishes the same workload in less virtual
// time than the blind random and tree orders (linear, the strongest blind
// order here, must at least not dominate it).
func TestLocalityOrderBeatsBlindUnderDelay(t *testing.T) {
	const extra = 5000
	mk := func(order string) int64 {
		var set policy.Set
		costs := numa.ButterflyCosts().WithTopology(numa.Clusters{Size: 4}).WithExtraDelay(extra)
		switch order {
		case "locality":
			set = policy.Set{Order: policy.LocalityOrder{Model: costs}}
		case "random":
			set = policy.Set{Order: policy.Order{Kind: search.Random}}
		case "tree":
			set = policy.Set{Order: policy.Order{Kind: search.Tree}}
		case "linear":
			set = policy.Set{Order: policy.Order{Kind: search.Linear}}
		}
		var total int64
		for seed := uint64(1); seed <= 3; seed++ {
			total += localityTrial(t, set, extra, seed).Makespan
		}
		return total
	}
	loc := mk("locality")
	if ran := mk("random"); loc >= ran {
		t.Fatalf("locality makespan %d >= random %d under clustered delay", loc, ran)
	}
	if tr := mk("tree"); loc >= tr {
		t.Fatalf("locality makespan %d >= tree %d under clustered delay", loc, tr)
	}
	if lin := mk("linear"); loc > lin+lin/10 {
		t.Fatalf("locality makespan %d more than 10%% above linear %d", loc, lin)
	}
}

// TestLocalityFallbackMatchesLinear checks that on the flat Butterfly
// (victim-uniform costs) the locality order is exactly its linear
// fallback: byte-identical results for the same seed.
func TestLocalityFallbackMatchesLinear(t *testing.T) {
	costs := numa.ButterflyCosts() // no topology, no extra: uniform
	w := workload.Config{
		Procs: 8, Model: workload.RandomOps, AddFraction: 0.3,
		TotalOps: 800, InitialElements: 64,
	}
	run := func(set policy.Set) RunResult {
		return Run(RunConfig{Workload: w, Search: search.Linear, Costs: costs, Seed: 42, Policies: set})
	}
	a := run(policy.Set{Order: policy.LocalityOrder{Model: costs}})
	b := run(policy.Set{Order: policy.Order{Kind: search.Linear}})
	if a.Makespan != b.Makespan || a.Stats != b.Stats {
		t.Fatalf("uniform-cost locality diverged from linear: makespan %d vs %d", a.Makespan, b.Makespan)
	}
}

// TestControlTraceRecordsPerHandleTrajectories checks the runner's
// controller tracing: every processor gets a trajectory, producers hold
// the steal-half fraction, and at least one consumer's fraction moves off
// it — the per-handle divergence the trace experiment plots.
func TestControlTraceRecordsPerHandleTrajectories(t *testing.T) {
	set, err := policy.Named("per-handle")
	if err != nil {
		t.Fatal(err)
	}
	w := workload.Config{
		Procs:           8,
		Model:           workload.Burst,
		Producers:       3,
		Arrangement:     workload.Balanced,
		BatchSize:       1,
		TotalOps:        2000,
		InitialElements: 64,
	}
	res := Run(RunConfig{
		Workload: w, Search: search.Tree, Costs: numa.ButterflyCosts(),
		Seed: 7, Policies: set, ControlTrace: true,
	})
	if len(res.Controls) != 8 {
		t.Fatalf("got %d controller traces, want 8", len(res.Controls))
	}
	producers := map[int]bool{}
	for _, p := range workload.ProducerPositions(8, 3, workload.Balanced) {
		producers[p] = true
	}
	moved := false
	for id := range res.Controls {
		tr := &res.Controls[id]
		if tr.FracPermil.Len() == 0 || tr.Batch.Len() == 0 {
			t.Fatalf("processor %d has an empty trajectory", id)
		}
		final := tr.FracPermil.Points()[tr.FracPermil.Len()-1].Value
		if producers[id] {
			if final != 500 {
				t.Fatalf("producer %d final fraction %d permil, want 500 (producers observe no removes)", id, final)
			}
		} else if final != 500 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("no consumer fraction moved off steal-half: per-handle control is not visible")
	}
	// Without the flag, no traces are collected.
	res = Run(RunConfig{
		Workload: w, Search: search.Tree, Costs: numa.ButterflyCosts(),
		Seed: 7, Policies: set,
	})
	if res.Controls != nil {
		t.Fatal("ControlTrace off but traces collected")
	}
}

// TestEmptiestPlacementInSim checks the simulated pool honors a Director
// placement and charges its probes: a directed run's adds spread across
// segments, and the probe charges show up as a longer makespan than the
// local-placement run.
func TestEmptiestPlacementInSim(t *testing.T) {
	w := workload.Config{
		Procs: 8, Model: workload.ProducerConsumer, Producers: 2,
		Arrangement: workload.Contiguous, TotalOps: 600, InitialElements: 0,
	}
	costs := numa.ButterflyCosts()
	directed := Run(RunConfig{
		Workload: w, Search: search.Linear, Costs: costs, Seed: 5,
		Policies: policy.Set{Place: policy.GiftToEmptiest{}},
	})
	local := Run(RunConfig{
		Workload: w, Search: search.Linear, Costs: costs, Seed: 5,
	})
	if directed.Makespan <= local.Makespan {
		t.Fatalf("directed makespan %d <= local %d: probe charges missing", directed.Makespan, local.Makespan)
	}
	if directed.Stats.Adds == 0 {
		t.Fatal("directed run recorded no adds")
	}
	// Element conservation under the director.
	if directed.Stats.Adds != directed.Stats.Removes+int64(directed.Remaining) {
		t.Fatalf("conservation violated: adds=%d removes=%d remaining=%d",
			directed.Stats.Adds, directed.Stats.Removes, directed.Remaining)
	}
}
