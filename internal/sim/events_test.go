package sim

// Flight-recorder coverage on the simulated substrate: a seeded run's
// event timeline is deterministic (the recorder stamps the virtual
// clock), so the Chrome trace-event export can be pinned byte-for-byte
// by a golden file — the committed schema `make trace-smoke` and the
// poolbench -trace path are validated against. Regenerate after an
// intentional protocol or exporter change with
//
//	go test ./internal/sim -run TestGoldenChromeTrace -update-golden
//
// and review the diff like any other golden update.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pools/internal/numa"
	"pools/internal/search"
	"pools/internal/trace"
	"pools/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden trace files")

// goldenRun is the pinned 2-handle configuration: a consumer-heavy mix
// over a small seed forces searches, steals, reserve/transfer edges,
// and termination verdicts onto both tracks.
func goldenRun() RunResult {
	return Run(RunConfig{
		Workload: workload.Config{
			Procs:           2,
			Model:           workload.RandomOps,
			AddFraction:     0.3,
			TotalOps:        80,
			InitialElements: 6,
		},
		Search:   search.Linear,
		Costs:    numa.ButterflyCosts(),
		Seed:     7,
		EventBuf: 512,
	})
}

func TestGoldenChromeTrace(t *testing.T) {
	res := goldenRun()
	if len(res.Events) != 2 {
		t.Fatalf("timelines = %d, want 2", len(res.Events))
	}
	for _, tl := range res.Events {
		if len(tl.Events) == 0 {
			t.Fatalf("handle %d recorded no events", tl.Handle)
		}
	}

	var buf bytes.Buffer
	if err := trace.ChromeJSON(&buf, res.Events); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_trace.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace diverged from golden file (len %d vs %d); "+
			"if the protocol or exporter changed intentionally, rerun with -update-golden",
			buf.Len(), len(want))
	}

	// The run is deterministic end to end: a second run must produce the
	// identical timeline, not merely the same shape.
	again := goldenRun()
	var buf2 bytes.Buffer
	if err := trace.ChromeJSON(&buf2, again.Events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("seeded trace is not deterministic across runs")
	}
}

// goldenChaosRun is the pinned churn configuration: a short steady run
// with a drain-kill schedule aggressive enough that kills, epoch bumps,
// and revives all land on the timeline.
func goldenChaosRun() RunResult {
	return Run(RunConfig{
		Workload: workload.Config{
			Procs:           3,
			Model:           workload.RandomOps,
			AddFraction:     0.5,
			TotalOps:        300,
			InitialElements: 24,
		},
		Search:   search.Linear,
		Costs:    numa.ButterflyCosts(),
		Seed:     7,
		EventBuf: 2048,
		Churn:    workload.Churn{KillEvery: 400, ReviveAfter: 300, Drain: true, MaxKills: 4},
	})
}

// TestGoldenChromeChaosTrace pins the churn run's Chrome export the same
// way TestGoldenChromeTrace pins the steady one, and requires every
// membership kind to appear: member_leave and epoch_bump from the drain
// kills, member_join from the revives.
func TestGoldenChromeChaosTrace(t *testing.T) {
	res := goldenChaosRun()
	counts := map[trace.Kind]int{}
	for _, tl := range res.Events {
		for _, ev := range tl.Events {
			counts[ev.Kind]++
		}
	}
	for _, k := range []trace.Kind{trace.MemberLeave, trace.MemberJoin, trace.EpochBump} {
		if counts[k] == 0 {
			t.Errorf("no %s events recorded; churn schedule too gentle to pin", k)
		}
	}
	if counts[trace.MemberLeave] != counts[trace.EpochBump] {
		t.Errorf("drain kills must bump the epoch once each: %d leaves, %d bumps",
			counts[trace.MemberLeave], counts[trace.EpochBump])
	}
	if len(res.Churn) == 0 {
		t.Fatal("run reported no churn events")
	}

	var buf bytes.Buffer
	if err := trace.ChromeJSON(&buf, res.Events); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_chaos_trace.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chaos Chrome trace diverged from golden file (len %d vs %d); "+
			"if the protocol or exporter changed intentionally, rerun with -update-golden",
			buf.Len(), len(want))
	}

	again := goldenChaosRun()
	var buf2 bytes.Buffer
	if err := trace.ChromeJSON(&buf2, again.Events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("seeded chaos trace is not deterministic across runs")
	}
}

// TestEventTimelineContent sanity-checks the recorded protocol against
// the run's aggregate stats: every steal the stats counted appears as a
// reserve/transfer edge, and searches are balanced begin/end.
func TestEventTimelineContent(t *testing.T) {
	res := goldenRun()
	var transfers, begins, ends int64
	var moved int64
	for _, tl := range res.Events {
		if tl.Dropped != 0 {
			t.Errorf("handle %d dropped %d events; grow EventBuf", tl.Handle, tl.Dropped)
		}
		for _, ev := range tl.Events {
			switch ev.Kind {
			case trace.ReserveTransfer:
				transfers++
				moved += int64(ev.Arg2)
			case trace.SearchBegin:
				begins++
			case trace.SearchEnd:
				ends++
			}
		}
	}
	if transfers != res.Stats.Steals {
		t.Errorf("reserve_transfer events = %d, stats.Steals = %d", transfers, res.Stats.Steals)
	}
	if want := int64(res.Stats.ElementsStolen.Sum()); moved != want {
		t.Errorf("transferred elements on timeline = %d, stats say %d", moved, want)
	}
	if begins != ends {
		t.Errorf("unbalanced searches: %d begins, %d ends", begins, ends)
	}
	if begins == 0 {
		t.Error("golden run performed no searches; config too gentle to pin the protocol")
	}
}
