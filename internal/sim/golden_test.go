package sim

// Golden end-to-end runs: one regenerable dataset of seeded simulator
// results (completed ops, steals, probe accounting, makespan) pinned
// exactly, replacing scattered per-test fingerprints — the companion to
// internal/engine's equivalence tests, but covering the full workload ×
// topology × churn matrix in one reviewable file. After an intentional
// protocol change, regenerate with
//
//	go test ./internal/sim -run TestGoldenRuns -update
//
// and review the JSON diff like any other golden update. An unintended
// diff is a determinism or equivalence regression: every field is an
// exact integer, so even a one-probe drift fails.

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"pools/internal/numa"
	"pools/internal/search"
	"pools/internal/workload"
)

var updateRuns = flag.Bool("update", false, "rewrite testdata/golden_runs.json")

// goldenRecord is one config's pinned outcome. Integer fields only, so
// equality is exact (cross-probe fractions are pinned via the two probe
// counters they derive from).
type goldenRecord struct {
	Ops          int64 `json:"ops"`
	Adds         int64 `json:"adds"`
	Removes      int64 `json:"removes"`
	Steals       int64 `json:"steals"`
	Aborts       int64 `json:"aborts"`
	RemoteProbes int64 `json:"remote_probes"`
	CrossProbes  int64 `json:"cross_probes"`
	Makespan     int64 `json:"makespan_us"`
	Remaining    int   `json:"remaining"`
	Kills        int   `json:"kills"`
	Revives      int   `json:"revives"`
}

// goldenConfigs is the pinned matrix: the paper's two models under both
// searches, batching, a clustered topology (exercising the cross-probe
// counters), and both churn kill modes (exercising the chaos driver and
// the membership epoch end to end).
func goldenConfigs() map[string]RunConfig {
	base := func(model workload.Model) workload.Config {
		return workload.Config{
			Procs:           16,
			Model:           model,
			Arrangement:     workload.Contiguous,
			TotalOps:        2000,
			InitialElements: 320,
		}
	}
	pc := func(arr workload.Arrangement) workload.Config {
		w := base(workload.ProducerConsumer)
		w.Producers = 5
		w.Arrangement = arr
		return w
	}
	random := func(mix float64) workload.Config {
		w := base(workload.RandomOps)
		w.AddFraction = mix
		return w
	}
	burst := base(workload.Burst)
	burst.Producers = 5
	burst.Arrangement = workload.Balanced
	burst.BatchSize = 8

	clustered := numa.ButterflyCosts().WithTopology(numa.Clusters{Size: 4}).WithExtraDelay(500)

	churn := func(drain bool) RunConfig {
		return RunConfig{
			Workload: random(0.5), Search: search.Linear, Costs: numa.ButterflyCosts(), Seed: 1989,
			Churn: workload.Churn{KillEvery: 2000, ReviveAfter: 1500, Drain: drain, MaxKills: 4},
		}
	}

	return map[string]RunConfig{
		"linear/pc5-contiguous": {Workload: pc(workload.Contiguous), Search: search.Linear, Costs: numa.ButterflyCosts(), Seed: 1989},
		"tree/pc5-balanced":     {Workload: pc(workload.Balanced), Search: search.Tree, Costs: numa.ButterflyCosts(), Seed: 1989},
		"linear/random-mix30":   {Workload: random(0.3), Search: search.Linear, Costs: numa.ButterflyCosts(), Seed: 1989},
		"tree/random-mix70":     {Workload: random(0.7), Search: search.Tree, Costs: numa.ButterflyCosts(), Seed: 1989},
		"tree/burst-batch8":     {Workload: burst, Search: search.Tree, Costs: numa.ButterflyCosts(), Seed: 1989},
		"linear/clustered-mix40": {
			Workload: random(0.4), Search: search.Linear, Costs: clustered, Seed: 1989,
		},
		"linear/churn-drain":     churn(true),
		"linear/churn-stealonly": churn(false),
	}
}

// record runs one config and extracts its pinned outcome.
func record(cfg RunConfig) goldenRecord {
	res := Run(cfg)
	kills, revives := 0, 0
	for _, ev := range res.Churn {
		if ev.Revive {
			revives++
		} else {
			kills++
		}
	}
	return goldenRecord{
		Ops:          res.Stats.Ops(),
		Adds:         res.Stats.Adds,
		Removes:      res.Stats.Removes,
		Steals:       res.Stats.Steals,
		Aborts:       res.Stats.Aborts,
		RemoteProbes: res.Stats.RemoteProbes,
		CrossProbes:  res.Stats.CrossProbes,
		Makespan:     res.Makespan,
		Remaining:    res.Remaining,
		Kills:        kills,
		Revives:      revives,
	}
}

func TestGoldenRuns(t *testing.T) {
	configs := goldenConfigs()
	got := make(map[string]goldenRecord, len(configs))
	for name, cfg := range configs {
		got[name] = record(cfg)
	}

	golden := filepath.Join("testdata", "golden_runs.json")
	if *updateRuns {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var want map[string]goldenRecord
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}

	var names []string
	for name := range configs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: missing from golden dataset (regenerate with -update)", name)
			continue
		}
		if got[name] != w {
			t.Errorf("%s: diverged from golden dataset\n got %+v\nwant %+v\n"+
				"(rerun with -update only if the protocol change is intentional)", name, got[name], w)
		}
	}
	for name := range want {
		if _, ok := configs[name]; !ok {
			t.Errorf("golden dataset has stale config %q (regenerate with -update)", name)
		}
	}

	// Structural sanity independent of the pinned numbers: the clustered
	// config must exercise the cross-probe counters, and the churn
	// configs the chaos driver.
	if got["linear/clustered-mix40"].CrossProbes == 0 {
		t.Error("clustered config recorded no cross probes; topology wiring broken")
	}
	for _, name := range []string{"linear/churn-drain", "linear/churn-stealonly"} {
		if got[name].Kills == 0 {
			t.Errorf("%s: no kills; chaos schedule too gentle to pin", name)
		}
		if got[name].Kills < got[name].Revives {
			t.Errorf("%s: %d kills < %d revives", name, got[name].Kills, got[name].Revives)
		}
	}
}
