// Package sim is the measurement substrate that stands in for the paper's
// 16-processor BBN Butterfly: a deterministic virtual-time multiprocessor.
//
// The paper's experimental effects — long searches under sparse job mixes,
// consumer bunching at producers' segments, convergence of the three
// algorithms as remote delays grow — are latency-accounting phenomena:
// they depend on how many accesses a process performs, how expensive each
// is (local vs remote), and how much queueing it suffers at contended
// objects. This simulator models exactly that:
//
//   - each virtual processor is a goroutine with its own virtual clock
//     (microseconds);
//   - a central scheduler always runs the processor with the smallest
//     clock, so execution is deterministic given a seed;
//   - shared objects (segments, tree nodes, shared counters) are
//     Resources with a busy-until time: accessing one queues behind the
//     previous holder, charging queueing delay exactly like a contended
//     lock on the Butterfly;
//   - access costs come from internal/numa's CostModel (remote = 4x
//     local, plus the Section 4.3 additive delay sweep).
//
// Between two Charge calls a processor's Go code runs exclusively (the
// scheduler grants one processor at a time), so simulation state needs no
// locks and real Go data structures (deques, game boards) can serve as
// the simulated memory contents.
package sim

import "fmt"

// Resource is a shared object in the simulated machine: a pool segment, a
// tree node, or a shared counter. Accesses serialize: a processor arriving
// while the resource is busy waits until it frees, accumulating queueing
// delay (the simulated analogue of lock contention).
type Resource struct {
	Name      string
	busyUntil int64
	waited    int64 // total queueing delay suffered at this resource
	accesses  int64
}

// Waited returns the total queueing delay (virtual µs) suffered by all
// processors at this resource — the contention measure behind the paper's
// "increased interference between the processes as they collide at the
// producers' segments".
func (r *Resource) Waited() int64 { return r.waited }

// Accesses returns the number of charged accesses.
func (r *Resource) Accesses() int64 { return r.accesses }

// proc is one virtual processor.
type proc struct {
	id    int
	clock int64
	grant chan struct{}
	park  chan struct{}
	done  bool
}

// Sim is a virtual-time multiprocessor. Create with New, provide one body
// per processor with Spawn, then call Run.
type Sim struct {
	procs   []*proc
	bodies  []func(*Env)
	started bool
}

// New returns a simulator with n virtual processors.
func New(n int) *Sim {
	if n < 1 {
		panic(fmt.Sprintf("sim: %d processors", n))
	}
	s := &Sim{
		procs:  make([]*proc, n),
		bodies: make([]func(*Env), n),
	}
	for i := range s.procs {
		s.procs[i] = &proc{
			id:    i,
			grant: make(chan struct{}),
			park:  make(chan struct{}),
		}
	}
	return s
}

// Procs returns the number of virtual processors.
func (s *Sim) Procs() int { return len(s.procs) }

// Spawn sets the body executed by virtual processor id. The body runs
// inside the simulation: every Charge call may suspend it while other
// processors catch up in virtual time.
func (s *Sim) Spawn(id int, body func(*Env)) {
	if s.started {
		panic("sim: Spawn after Run")
	}
	s.bodies[id] = body
}

// Run executes all processor bodies to completion and returns the final
// virtual time (the makespan: the largest processor clock).
func (s *Sim) Run() int64 {
	if s.started {
		panic("sim: Run called twice")
	}
	s.started = true
	for i, p := range s.procs {
		body := s.bodies[i]
		env := &Env{sim: s, p: p}
		go func(p *proc) {
			<-p.grant
			if body != nil {
				body(env)
			}
			p.done = true
			p.park <- struct{}{}
		}(p)
	}
	for {
		var next *proc
		for _, p := range s.procs {
			if p.done {
				continue
			}
			if next == nil || p.clock < next.clock {
				next = p
			}
		}
		if next == nil {
			break
		}
		next.grant <- struct{}{}
		<-next.park
	}
	var makespan int64
	for _, p := range s.procs {
		if p.clock > makespan {
			makespan = p.clock
		}
	}
	return makespan
}

// Env is a virtual processor's interface to the simulation. Each body
// receives its own Env; it must not be shared across goroutines.
type Env struct {
	sim *Sim
	p   *proc
}

// ID returns the virtual processor's index.
func (e *Env) ID() int { return e.p.id }

// Now returns the processor's current virtual time (µs).
func (e *Env) Now() int64 { return e.p.clock }

// Charge spends cost virtual µs accessing r. If r is busy the processor
// first waits for it to free (queueing). A nil resource models private
// computation with no contention. Charge is the scheduling point: the
// processor may be suspended here while others run.
func (e *Env) Charge(r *Resource, cost int64) {
	if cost < 0 {
		cost = 0
	}
	e.yield()
	p := e.p
	start := p.clock
	if r != nil {
		if r.busyUntil > start {
			r.waited += r.busyUntil - start
			start = r.busyUntil
		}
		r.accesses++
	}
	p.clock = start + cost
	if r != nil {
		r.busyUntil = p.clock
	}
}

// Compute spends cost virtual µs of private computation.
func (e *Env) Compute(cost int64) { e.Charge(nil, cost) }

// yield parks the processor until the scheduler grants it the floor
// (i.e., until it holds the minimum virtual clock).
func (e *Env) yield() {
	e.p.park <- struct{}{}
	<-e.p.grant
}
