package sim

import (
	"fmt"

	"pools/internal/metrics"
	"pools/internal/numa"
	"pools/internal/policy"
	"pools/internal/rng"
	"pools/internal/search"
	"pools/internal/segment"
)

// PoolConfig configures a simulated concurrent pool.
type PoolConfig struct {
	Procs  int            // one segment and one process per processor
	Search search.Kind    // steal-search algorithm
	Costs  numa.CostModel // access cost model (numa.ButterflyCosts())
	Seed   uint64         // drives the random search algorithm
	// Policies selects the pool's tunable decisions (steal amount, victim
	// order, size-aware placement, online control), exactly as
	// core.Options.Policies does for the real pool; nil slots take paper
	// defaults. Mailbox placements (GiftAll and friends) are ignored — the
	// simulated pool has no directed-add mailboxes — but Director
	// placements (policy.GiftToEmptiest) are honored, with every size
	// probe charged at the cost model's AccessProbe rate.
	Policies policy.Set
	// StealOne switches the transfer policy from the paper's steal-half
	// to steal-one (ablation).
	//
	// Deprecated: consulted only when Policies.Steal is nil; use
	// Policies.Steal.
	StealOne bool
	// Trace enables per-segment size traces (Figures 3-6).
	Trace bool
}

// Pool is a concurrent pool living inside a simulation: segments hold real
// elements of type T, every access charges virtual time, and segment/tree
// contention is modelled by Resources. The paper's measured configuration
// (counter-only segments) corresponds to Pool[Token].
type Pool[T any] struct {
	cfg    PoolConfig
	pol    policy.Set      // resolved policies (no nil slots)
	dir    policy.Director // size-aware placement, if Policies.Place is one
	leaves int

	segs    []segment.Deque[T]
	segRes  []Resource
	rounds  []uint64
	nodeRes []Resource
	counter Resource // the shared "processes looking" counter

	lookers      int
	participants int
	drainAbort   bool
	emptyAbort   bool // latched when all participants were seen searching

	traces []metrics.Trace
}

// Token is the element type for workload experiments where element values
// do not matter (the paper stores only counts).
type Token struct{}

// NewPool creates a simulated pool. One Proc handle per processor must be
// created before Run.
func NewPool[T any](cfg PoolConfig) *Pool[T] {
	if cfg.Procs < 1 {
		panic(fmt.Sprintf("sim: pool with %d procs", cfg.Procs))
	}
	if cfg.Search == 0 {
		cfg.Search = search.Linear
	}
	pol := cfg.Policies
	if pol.Steal == nil && cfg.StealOne {
		pol.Steal = policy.One{}
	}
	pol = pol.WithDefaults(cfg.Search, false)
	leaves := search.NumLeavesFor(cfg.Procs)
	p := &Pool[T]{
		cfg:          cfg,
		pol:          pol,
		leaves:       leaves,
		segs:         make([]segment.Deque[T], cfg.Procs),
		segRes:       make([]Resource, cfg.Procs),
		counter:      Resource{Name: "lookers"},
		participants: cfg.Procs,
	}
	if d, ok := pol.Place.(policy.Director); ok {
		p.dir = d
	}
	for i := range p.segRes {
		p.segRes[i].Name = fmt.Sprintf("segment-%d", i)
	}
	if cfg.Search == search.Tree || policy.KindOf(pol.Order) == search.Tree {
		p.rounds = make([]uint64, 2*leaves)
		p.nodeRes = make([]Resource, 2*leaves)
		for i := range p.nodeRes {
			p.nodeRes[i].Name = fmt.Sprintf("tree-node-%d", i)
		}
	}
	if cfg.Trace {
		p.traces = make([]metrics.Trace, cfg.Procs)
	}
	return p
}

// BatchSize returns the batch size the pool-wide controller recommends
// for a workload configured at current, or current itself without one.
// Per-handle controllers recommend through Proc.BatchSize instead, which
// the burst driver consults before every batched operation.
func (p *Pool[T]) BatchSize(current int) int {
	if p.pol.Control == nil {
		return current
	}
	return p.pol.Control.BatchSize(current)
}

// Seed deposits n elements round-robin across the segments before the run
// ("a pool initialized with only 320 elements"), charging no virtual time.
// gen supplies element values; for Token pools use func(int) Token.
func (p *Pool[T]) Seed(n int, gen func(i int) T) {
	for i := 0; i < n; i++ {
		p.segs[i%len(p.segs)].Add(gen(i))
	}
}

// Inject places an element in segment 0 before the run without charging
// virtual time (used to seed task roots).
func (p *Pool[T]) Inject(v T) { p.segs[0].Add(v) }

// Len returns the total number of elements currently pooled.
func (p *Pool[T]) Len() int {
	total := 0
	for i := range p.segs {
		total += p.segs[i].Len()
	}
	return total
}

// SegmentLen returns segment i's size.
func (p *Pool[T]) SegmentLen(i int) int { return p.segs[i].Len() }

// Traces returns the per-segment size traces (nil unless PoolConfig.Trace).
func (p *Pool[T]) Traces() []metrics.Trace { return p.traces }

// SegmentWaited returns the total queueing delay suffered at segment i,
// the paper's interference measure.
func (p *Pool[T]) SegmentWaited(i int) int64 { return p.segRes[i].Waited() }

// AbortAll makes every in-progress and future search abort; the harness
// sets it when the operation budget is exhausted so that a consumer
// mid-search does not spin forever after the run ends.
func (p *Pool[T]) AbortAll() { p.drainAbort = true }

// recordTrace logs segment s's size at the current virtual time.
func (p *Pool[T]) recordTrace(env *Env, s int) {
	if p.traces == nil {
		return
	}
	p.traces[s].Record(env.Now(), int64(p.segs[s].Len()))
}

// Proc is one virtual processor's attachment to a simulated pool,
// analogous to core.Handle.
type Proc[T any] struct {
	pool     *Pool[T]
	env      *Env
	id       int
	ctl      policy.Controller  // this processor's controller (own instance under per-handle sets)
	steal    policy.StealAmount // this processor's steal amount
	searcher search.Searcher
	stats    metrics.PoolStats
	world    simWorld[T]
}

// Proc binds virtual processor env to segment env.ID(). Call once per
// processor, inside or before its body.
func (p *Pool[T]) Proc(env *Env) *Proc[T] {
	id := env.ID()
	ctl, steal := p.pol.ForHandle(id)
	pr := &Proc[T]{
		pool:     p,
		env:      env,
		id:       id,
		ctl:      ctl,
		steal:    steal,
		searcher: policy.BuildSearcher(p.pol.Order, id, p.cfg.Procs, rng.SubSeed(p.cfg.Seed, id), ctl),
	}
	pr.world = simWorld[T]{proc: pr}
	return pr
}

// Stats returns the processor's operation statistics collector.
func (pr *Proc[T]) Stats() *metrics.PoolStats { return &pr.stats }

// observe feeds one remove outcome to this processor's controller, if
// any (its own instance under a per-handle set, the shared one
// otherwise) — mirroring core.Handle.observe exactly.
func (pr *Proc[T]) observe(fb policy.Feedback) {
	if pr.ctl != nil {
		pr.ctl.Observe(fb)
	}
}

// BatchSize returns the batch size this processor's controller recommends
// for a workload configured at current, or current itself without a
// controller — the simulated analogue of core.Handle.BatchSize.
func (pr *Proc[T]) BatchSize(current int) int {
	if pr.ctl == nil {
		return current
	}
	return pr.ctl.BatchSize(current)
}

// ControlSample reports the controller's current operating point for
// trajectory traces: the steal fraction in permil and the batch size it
// would recommend for the configured batch. ok is false without a
// controller.
func (pr *Proc[T]) ControlSample(configured int) (fracPermil, batch int64, ok bool) {
	if pr.ctl == nil {
		return 0, 0, false
	}
	return int64(pr.ctl.StealFraction()*1000 + 0.5), int64(pr.ctl.BatchSize(configured)), true
}

// Retire withdraws this processor from the participant count when its body
// finishes while others may still be searching (mirrors core.Handle.Close).
func (pr *Proc[T]) Retire() {
	if pr.pool.participants > 0 {
		pr.pool.participants--
	}
}

// noteProbe classifies one remote segment probe against the cost model's
// hop topology for the cross-cluster accounting (no-op for local probes).
func (pr *Proc[T]) noteProbe(s int) {
	if s == pr.id {
		return
	}
	t := pr.pool.cfg.Costs.Topo
	pr.stats.RecordProbe(t != nil && t.Distance(pr.id, s) > 1)
}

// directTarget consults the Director placement (when the pool has one)
// for where an add of n elements should land, charging one AccessProbe
// per examined segment — on the simulated machine, probing for the
// emptiest segment visibly costs virtual time, which is the trade-off
// the locality experiments measure.
func (pr *Proc[T]) directTarget(n int) int {
	p := pr.pool
	if p.dir == nil {
		return pr.id
	}
	t := p.dir.Direct(pr.id, p.cfg.Procs, n, func(s int) int {
		pr.env.Charge(&p.segRes[s], p.cfg.Costs.Cost(numa.AccessProbe, pr.id, s))
		pr.noteProbe(s)
		return p.segs[s].Len()
	})
	if t < 0 || t >= p.cfg.Procs {
		return pr.id
	}
	return t
}

// Put adds an element to the local segment — or to the segment a
// Director placement selects — charging the add cost at the local or
// remote rate accordingly.
func (pr *Proc[T]) Put(v T) {
	p := pr.pool
	start := pr.env.Now()
	target := pr.directTarget(1)
	pr.env.Charge(&p.segRes[target], p.cfg.Costs.Cost(numa.AccessAdd, pr.id, target))
	p.segs[target].Add(v)
	p.emptyAbort = false // elements exist again: searches may proceed
	p.recordTrace(pr.env, target)
	pr.stats.RecordAdd(pr.env.Now() - start)
}

// PutAll adds every element of vs to one segment (the local one, or a
// Director placement's choice), charging a single add access for the
// whole batch — the amortization the batch API exists to measure: one
// segment acquisition (and one queueing exposure at a contended segment)
// covers k elements.
func (pr *Proc[T]) PutAll(vs []T) {
	if len(vs) == 0 {
		return
	}
	p := pr.pool
	start := pr.env.Now()
	target := pr.directTarget(len(vs))
	pr.env.Charge(&p.segRes[target], p.cfg.Costs.Cost(numa.AccessAdd, pr.id, target))
	for _, v := range vs {
		p.segs[target].Add(v)
	}
	p.emptyAbort = false // elements exist again: searches may proceed
	p.recordTrace(pr.env, target)
	pr.stats.RecordBatchAdd(pr.env.Now()-start, len(vs))
}

// GetN removes up to max elements in one operation: it drains the local
// segment under a single charged access, or — when the local segment is
// dry — searches like Get and surfaces the batch the steal-half
// transferred. It returns nil on an aborted operation.
func (pr *Proc[T]) GetN(max int) []T {
	if max <= 0 {
		return nil
	}
	p := pr.pool
	start := pr.env.Now()
	pr.env.Charge(&p.segRes[pr.id], p.cfg.Costs.Cost(numa.AccessRemove, pr.id, pr.id))
	if out := p.segs[pr.id].RemoveN(max); len(out) > 0 {
		p.recordTrace(pr.env, pr.id)
		pr.stats.RecordBatchLocalRemove(pr.env.Now()-start, len(out))
		pr.observe(policy.Feedback{Got: len(out), Elapsed: pr.env.Now() - start})
		return out
	}

	searchStart := pr.env.Now()
	res := pr.searchSteal(max)
	if res.Got == 0 {
		pr.stats.RecordAbort(pr.env.Now() - start)
		pr.observe(policy.Feedback{Aborted: true, Examined: res.Examined, Elapsed: pr.env.Now() - start})
		return nil
	}
	out := make([]T, 1, max)
	out[0] = pr.world.takeReserved()
	if max > 1 {
		out = append(out, p.segs[pr.id].RemoveN(max-1)...)
		p.recordTrace(pr.env, pr.id)
	}
	pr.stats.RecordBatchStealRemove(pr.env.Now()-start, pr.env.Now()-searchStart, res.Examined, res.Got, len(out))
	pr.observe(policy.Feedback{Stole: true, Examined: res.Examined, Got: res.Got, Elapsed: pr.env.Now() - start})
	return out
}

// Get removes an element: locally when possible, otherwise via the
// configured search algorithm's steal protocol. ok=false reports an
// aborted operation (the paper's livelock rule or AbortAll).
func (pr *Proc[T]) Get() (T, bool) {
	var zero T
	p := pr.pool
	start := pr.env.Now()
	pr.env.Charge(&p.segRes[pr.id], p.cfg.Costs.Cost(numa.AccessRemove, pr.id, pr.id))
	if v, ok := p.segs[pr.id].Remove(); ok {
		p.recordTrace(pr.env, pr.id)
		pr.stats.RecordLocalRemove(pr.env.Now() - start)
		pr.observe(policy.Feedback{Got: 1, Elapsed: pr.env.Now() - start})
		return v, true
	}

	searchStart := pr.env.Now()
	res := pr.searchSteal(1)
	if res.Got == 0 {
		pr.stats.RecordAbort(pr.env.Now() - start)
		pr.observe(policy.Feedback{Aborted: true, Examined: res.Examined, Elapsed: pr.env.Now() - start})
		return zero, false
	}
	v := pr.world.takeReserved()
	pr.stats.RecordStealRemove(pr.env.Now()-start, pr.env.Now()-searchStart, res.Examined, res.Got)
	pr.observe(policy.Feedback{Stole: true, Examined: res.Examined, Got: res.Got, Elapsed: pr.env.Now() - start})
	return v, true
}

// searchSteal is the slow path shared by Get and GetN: bump the shared
// lookers counter (a remote shared object on the Butterfly), search, and
// drop the counter, charging both shared accesses. want is the
// requesting operation's appetite, consulted by the StealAmount policy.
// On success the stolen elements are in the local segment with one
// reserved in pr.world.
func (pr *Proc[T]) searchSteal(want int) search.Result {
	p := pr.pool
	pr.world.resetCoverage()
	pr.world.want = want
	pr.env.Charge(&p.counter, p.cfg.Costs.Cost(numa.AccessShared, pr.id, -1))
	p.lookers++
	res := pr.searcher.Search(&pr.world)
	pr.env.Charge(&p.counter, p.cfg.Costs.Cost(numa.AccessShared, pr.id, -1))
	p.lookers--
	return res
}

// simWorld adapts a Proc to search.World / search.TreeWorld, charging
// virtual time per access.
type simWorld[T any] struct {
	proc     *Proc[T]
	reserved T
	has      bool
	want     int // the in-flight operation's appetite (Get: 1, GetN: max)
	failed   int // consecutive fruitless probes in the current search
}

var _ search.TreeWorld = (*simWorld[Token])(nil)

// resetCoverage clears the fruitless-probe count.
func (w *simWorld[T]) resetCoverage() { w.failed = 0 }

// sawEmpty records a fruitless probe.
func (w *simWorld[T]) sawEmpty(int) { w.failed++ }

func (w *simWorld[T]) takeReserved() T {
	var zero T
	v := w.reserved
	w.reserved = zero
	w.has = false
	return v
}

// Segments implements search.World.
func (w *simWorld[T]) Segments() int { return w.proc.pool.cfg.Procs }

// Self implements search.World.
func (w *simWorld[T]) Self() int { return w.proc.id }

// Aborted implements search.World: all participants searching (the
// paper's shared-count livelock rule) or an external AbortAll. The
// all-searching observation is latched so that every concurrent search
// aborts, not just the process that made the observation (otherwise the
// first abort lowers the count and strands the rest); the next add clears
// the latch.
func (w *simWorld[T]) Aborted() bool {
	p := w.proc.pool
	if p.drainAbort || p.emptyAbort {
		return true
	}
	// All participants searching certifies emptiness only once this
	// searcher has also invested a full lap's worth of fruitless probes —
	// the paper's processes keep searching between checks of the shared
	// count, and charging that effort is what reproduces the measured
	// cost of sparse-mix aborts. (The real pool in internal/core uses an
	// exact coverage rule instead; a simulation trial tolerates the rare
	// spurious abort that consecutive counting allows, a 5000-op library
	// run must not.)
	if p.lookers >= p.participants && w.failed >= p.cfg.Procs {
		p.emptyAbort = true
		return true
	}
	return false
}

// TrySteal implements search.World: probe (remote) segment s and move the
// StealAmount policy's share into the local segment, reserving one
// element.
func (w *simWorld[T]) TrySteal(s int) int {
	pr := w.proc
	p := pr.pool
	env := pr.env
	env.Charge(&p.segRes[s], p.cfg.Costs.Cost(numa.AccessProbe, pr.id, s))
	pr.noteProbe(s)

	if s == pr.id {
		n := p.segs[s].Len()
		if n > 0 {
			w.reserved, _ = p.segs[s].Remove()
			w.has = true
			w.resetCoverage()
			p.recordTrace(env, s)
		} else {
			w.sawEmpty(s)
		}
		return n
	}
	n := p.segs[s].Len()
	if n == 0 {
		w.sawEmpty(s)
		return 0
	}
	env.Charge(&p.segRes[s], p.cfg.Costs.Cost(numa.AccessSplit, pr.id, s))
	// The split charge is a scheduling point: another processor may have
	// drained the victim since the probe read n (TakeInto clamps to what
	// is actually there). A steal that arrives to an emptied victim is a
	// fruitless probe — it must not touch the local segment, or it would
	// reserve an unrelated element (a directed add that landed locally
	// mid-search) and lose it when a later steal overwrites the slot.
	moved := p.segs[s].TakeInto(&p.segs[pr.id], pr.steal.Amount(n, w.want))
	if moved == 0 {
		w.sawEmpty(s)
		return 0
	}
	w.reserved, _ = p.segs[pr.id].Remove()
	w.has = true
	w.resetCoverage()
	p.recordTrace(env, s)
	p.recordTrace(env, pr.id)
	return moved
}

// NumLeaves implements search.TreeWorld.
func (w *simWorld[T]) NumLeaves() int { return w.proc.pool.leaves }

// RoundOf implements search.TreeWorld, charging a (remote) node access.
func (w *simWorld[T]) RoundOf(n int) uint64 {
	p := w.proc.pool
	w.proc.env.Charge(&p.nodeRes[n], p.cfg.Costs.Cost(numa.AccessNode, w.proc.id, -1))
	return p.rounds[n]
}

// MaxRound implements search.TreeWorld.
func (w *simWorld[T]) MaxRound(n int, r uint64) {
	p := w.proc.pool
	w.proc.env.Charge(&p.nodeRes[n], p.cfg.Costs.Cost(numa.AccessNode, w.proc.id, -1))
	if p.rounds[n] < r {
		p.rounds[n] = r
	}
}
