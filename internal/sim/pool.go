package sim

import (
	"fmt"

	"pools/internal/engine"
	"pools/internal/metrics"
	"pools/internal/numa"
	"pools/internal/policy"
	"pools/internal/rng"
	"pools/internal/search"
	"pools/internal/segment"
	"pools/internal/trace"
)

// PoolConfig configures a simulated concurrent pool.
type PoolConfig struct {
	Procs  int            // one segment and one process per processor
	Search search.Kind    // steal-search algorithm
	Costs  numa.CostModel // access cost model (numa.ButterflyCosts())
	Seed   uint64         // drives the random search algorithm
	// Policies selects the pool's tunable decisions (steal amount, victim
	// order, size-aware placement, online control), exactly as
	// core.Options.Policies does for the real pool; nil slots take paper
	// defaults. Mailbox placements (GiftAll and friends) are ignored — the
	// simulated pool has no directed-add mailboxes — but Director
	// placements (policy.GiftToEmptiest) are honored, with every size
	// probe charged at the cost model's AccessProbe rate.
	Policies policy.Set
	// StealOne switches the transfer policy from the paper's steal-half
	// to steal-one (ablation).
	//
	// Deprecated: consulted only when Policies.Steal is nil; use
	// Policies.Steal.
	StealOne bool
	// Trace enables per-segment size traces (Figures 3-6).
	Trace bool
	// SearchLaps, when positive, replaces the paper's all-searching
	// livelock rule with a bounded search: a remove gives up after
	// SearchLaps fruitless laps of the ring (engine.Bounded). The open-loop
	// driver requires this — under external arrivals most processes are
	// idle between operations, never "searching", so the all-searching
	// observation can starve a lone searcher on a drained pool for tens of
	// virtual milliseconds. An open-loop remove instead times out quickly
	// (an abort, charged for its probes) and the arrival stream moves on.
	SearchLaps int
	// EventBuf, when positive, attaches a flight recorder of that many
	// events to every processor (internal/trace), timestamped on the
	// simulator's virtual clock — so the recorded protocol timeline is
	// deterministic for a given seed and can be pinned by golden files.
	EventBuf int
}

// Pool is a concurrent pool living inside a simulation: segments hold real
// elements of type T, every access charges virtual time, and segment/tree
// contention is modelled by Resources. The paper's measured configuration
// (counter-only segments) corresponds to Pool[Token].
type Pool[T any] struct {
	cfg    PoolConfig
	pol    policy.Set // resolved policies (no nil slots)
	leaves int

	segs    []segment.Deque[T]
	segRes  []Resource
	rounds  []uint64
	nodeRes []Resource
	counter Resource // the shared "processes looking" counter

	lookers      int
	participants int
	drainAbort   bool
	emptyAbort   bool // latched when all participants were seen searching

	members *engine.Membership // dynamic membership: alive/victim bits + epoch

	traces []metrics.Trace
	recs   []*trace.Recorder // per-proc flight recorders (EventBuf only)
}

// Token is the element type for workload experiments where element values
// do not matter (the paper stores only counts).
type Token struct{}

// NewPool creates a simulated pool. One Proc handle per processor must be
// created before Run.
func NewPool[T any](cfg PoolConfig) *Pool[T] {
	if cfg.Procs < 1 {
		panic(fmt.Sprintf("sim: pool with %d procs", cfg.Procs))
	}
	if cfg.Search == 0 {
		cfg.Search = search.Linear
	}
	pol := cfg.Policies
	if pol.Steal == nil && cfg.StealOne {
		pol.Steal = policy.One{}
	}
	pol = pol.WithDefaults(cfg.Search, false)
	leaves := search.NumLeavesFor(cfg.Procs)
	p := &Pool[T]{
		cfg:          cfg,
		pol:          pol,
		leaves:       leaves,
		segs:         make([]segment.Deque[T], cfg.Procs),
		segRes:       make([]Resource, cfg.Procs),
		counter:      Resource{Name: "lookers"},
		participants: cfg.Procs,
		members:      engine.NewMembership(cfg.Procs),
	}
	for i := range p.segRes {
		p.segRes[i].Name = fmt.Sprintf("segment-%d", i)
	}
	if cfg.Search == search.Tree || policy.KindOf(pol.Order) == search.Tree {
		p.rounds = make([]uint64, 2*leaves)
		p.nodeRes = make([]Resource, 2*leaves)
		for i := range p.nodeRes {
			p.nodeRes[i].Name = fmt.Sprintf("tree-node-%d", i)
		}
	}
	if cfg.Trace {
		p.traces = make([]metrics.Trace, cfg.Procs)
	}
	if cfg.EventBuf > 0 {
		p.recs = make([]*trace.Recorder, cfg.Procs)
	}
	return p
}

// Timelines snapshots every processor's flight recorder for export,
// nil unless PoolConfig.EventBuf was set. Processors that never bound
// a Proc contribute no timeline.
func (p *Pool[T]) Timelines() []trace.Timeline {
	if p.recs == nil {
		return nil
	}
	return trace.Collect(p.recs...)
}

// BatchSize returns the batch size the pool-wide controller recommends
// for a workload configured at current, or current itself without one.
// Per-handle controllers recommend through Proc.BatchSize instead, which
// the burst driver consults before every batched operation.
func (p *Pool[T]) BatchSize(current int) int {
	if p.pol.Control == nil {
		return current
	}
	return p.pol.Control.BatchSize(current)
}

// Seed deposits n elements round-robin across the segments before the run
// ("a pool initialized with only 320 elements"), charging no virtual time.
// gen supplies element values; for Token pools use func(int) Token.
func (p *Pool[T]) Seed(n int, gen func(i int) T) {
	for i := 0; i < n; i++ {
		p.segs[i%len(p.segs)].Add(gen(i))
	}
}

// Inject places an element in segment 0 before the run without charging
// virtual time (used to seed task roots).
func (p *Pool[T]) Inject(v T) { p.segs[0].Add(v) }

// Len returns the total number of elements currently pooled.
func (p *Pool[T]) Len() int {
	total := 0
	for i := range p.segs {
		total += p.segs[i].Len()
	}
	return total
}

// SegmentLen returns segment i's size.
func (p *Pool[T]) SegmentLen(i int) int { return p.segs[i].Len() }

// Traces returns the per-segment size traces (nil unless PoolConfig.Trace).
func (p *Pool[T]) Traces() []metrics.Trace { return p.traces }

// SegmentWaited returns the total queueing delay suffered at segment i,
// the paper's interference measure.
func (p *Pool[T]) SegmentWaited(i int) int64 { return p.segRes[i].Waited() }

// AbortAll makes every in-progress and future search abort; the harness
// sets it when the operation budget is exhausted so that a consumer
// mid-search does not spin forever after the run ends.
func (p *Pool[T]) AbortAll() { p.drainAbort = true }

// Kill removes processor i from the simulated membership at the current
// virtual time, as if its processor failed: the victim's in-flight
// search aborts at its next stop check and it stops counting toward the
// all-searching rule. With drain=true its segment is emptied and
// redistributed across the surviving victim segments (charged to the
// calling driver, like any relocation on the simulated machine); with
// drain=false the segment degrades to a steal-only victim. Kill refuses
// to remove the last live member and reports whether it happened.
func (p *Pool[T]) Kill(env *Env, i int, drain bool) bool {
	if !p.members.Leave(i, !drain) {
		return false
	}
	if p.participants > 0 {
		p.participants--
	}
	if p.recs != nil && p.recs[i] != nil {
		d := int32(0)
		if drain {
			d = 1
		}
		p.recs[i].Record(trace.MemberLeave, int32(i), d)
	}
	if drain {
		p.relocate(env, i)
	}
	return true
}

// relocate empties killed segment i round-robin across the surviving
// victim segments, charging the driver one remove access for the drain
// and one add access per destination visit. The simulator is
// cooperative — no other processor runs during the relocation — so no
// transfer guard is needed; the epoch bump still mirrors the real
// pool's, keeping traces comparable across substrates.
func (p *Pool[T]) relocate(env *Env, i int) {
	env.Charge(&p.segRes[i], p.cfg.Costs.Cost(numa.AccessRemove, i, i))
	items := p.segs[i].Drain()
	p.recordTrace(env, i)
	k := 0
	for off := 0; k < len(items); off++ {
		t := (i + 1 + off) % len(p.segs)
		if !p.members.Victim(t) {
			continue
		}
		env.Charge(&p.segRes[t], p.cfg.Costs.Cost(numa.AccessAdd, i, t))
		p.segs[t].Add(items[k])
		k++
		p.recordTrace(env, t)
	}
	e := p.members.Bump()
	if p.recs != nil && p.recs[i] != nil {
		p.recs[i].Record(trace.EpochBump, int32(e&0x7fffffff), int32(len(items)))
	}
}

// Revive re-admits processor i: it rejoins the membership (and the
// participant count), its segment rejoins the victim set, and the
// empty-abort latch is cleared so searches re-observe the pool under
// the new membership. It reports whether i was in fact dead.
func (p *Pool[T]) Revive(i int) bool {
	if !p.members.Join(i) {
		return false
	}
	p.participants++
	p.emptyAbort = false
	if p.recs != nil && p.recs[i] != nil {
		p.recs[i].Record(trace.MemberJoin, int32(i), 0)
	}
	return true
}

// Alive reports whether processor i is a live member.
func (p *Pool[T]) Alive(i int) bool { return p.members.Alive(i) }

// Epoch returns the pool's membership epoch (bumped on every kill,
// revive, and kill-time relocation).
func (p *Pool[T]) Epoch() uint64 { return p.members.Epoch() }

// recordTrace logs segment s's size at the current virtual time.
func (p *Pool[T]) recordTrace(env *Env, s int) {
	if p.traces == nil {
		return
	}
	p.traces[s].Record(env.Now(), int64(p.segs[s].Len()))
}

// Proc is one virtual processor's attachment to a simulated pool,
// analogous to core.Handle. The search-steal protocol lives in
// internal/engine; the Proc supplies the substrate (virtual-time charges
// against simulated resources) and keeps the per-operation accounting.
type Proc[T any] struct {
	pool  *Pool[T]
	env   *Env
	id    int
	eng   *engine.Engine
	steal policy.StealAmount // resolved steal amount, cached off the engine for the probe loop
	stats metrics.PoolStats
	tr    *trace.Recorder // flight recorder (nil unless PoolConfig.EventBuf > 0)
	sub   simSubstrate[T]
}

// Proc binds virtual processor env to segment env.ID(). Call once per
// processor, inside or before its body.
func (p *Pool[T]) Proc(env *Env) *Proc[T] {
	id := env.ID()
	pr := &Proc[T]{pool: p, env: env, id: id}
	pr.sub.proc = pr
	var term engine.Termination = engine.NewLaps(p.cfg.Procs, lapsState[T]{p})
	if p.cfg.SearchLaps > 0 {
		term = engine.NewBounded(p.cfg.SearchLaps * p.cfg.Procs)
	}
	var rec *trace.Recorder
	if p.recs != nil {
		rec = trace.NewRecorder(id, p.cfg.EventBuf, env.Now)
		p.recs[id] = rec
		pr.tr = rec
	}
	pr.eng = engine.New(engine.Config{
		Self:      id,
		Segments:  p.cfg.Procs,
		Policies:  p.pol,
		Seed:      rng.SubSeed(p.cfg.Seed, id),
		Topology:  p.cfg.Costs.Topo,
		Stats:     &pr.stats,
		SizeProbe: pr.sizeProbe(),
		Tracer:    rec,
		Members:   p.members,
	}, &pr.sub, term)
	pr.steal = pr.eng.StealAmount()
	return pr
}

// sizeProbe builds the Director size-probe closure once per processor: on
// the simulated machine, probing for the emptiest segment visibly costs
// virtual time, which is the trade-off the locality experiments measure.
func (pr *Proc[T]) sizeProbe() func(s int) int {
	return func(s int) int {
		p := pr.pool
		pr.env.Charge(&p.segRes[s], p.cfg.Costs.Cost(numa.AccessProbe, pr.id, s))
		pr.eng.NoteProbe(s)
		return p.segs[s].Len()
	}
}

// Stats returns the processor's operation statistics collector.
func (pr *Proc[T]) Stats() *metrics.PoolStats { return &pr.stats }

// observe feeds one remove outcome to this processor's controller, if
// any (its own instance under a per-handle set, the shared one
// otherwise) — mirroring core.Handle.observe exactly.
func (pr *Proc[T]) observe(fb policy.Feedback) { pr.eng.Observe(fb) }

// BatchSize returns the batch size this processor's controller recommends
// for a workload configured at current, or current itself without a
// controller — the simulated analogue of core.Handle.BatchSize.
func (pr *Proc[T]) BatchSize(current int) int { return pr.eng.BatchSize(current) }

// ControlSample reports the controller's current operating point for
// trajectory traces: the steal fraction in permil and the batch size it
// would recommend for the configured batch. ok is false without a
// controller.
func (pr *Proc[T]) ControlSample(configured int) (fracPermil, batch int64, ok bool) {
	ctl := pr.eng.Controller()
	if ctl == nil {
		return 0, 0, false
	}
	return int64(ctl.StealFraction()*1000 + 0.5), int64(ctl.BatchSize(configured)), true
}

// Retire withdraws this processor from the participant count when its body
// finishes while others may still be searching (mirrors core.Handle.Close).
func (pr *Proc[T]) Retire() {
	if pr.pool.participants > 0 {
		pr.pool.participants--
	}
}

// Put adds an element to the local segment — or to the segment a
// Director placement selects — charging the add cost at the local or
// remote rate accordingly.
func (pr *Proc[T]) Put(v T) {
	p := pr.pool
	start := pr.env.Now()
	target := pr.eng.DirectTarget(1)
	pr.env.Charge(&p.segRes[target], p.cfg.Costs.Cost(numa.AccessAdd, pr.id, target))
	p.segs[target].Add(v)
	p.emptyAbort = false // elements exist again: searches may proceed
	p.recordTrace(pr.env, target)
	pr.stats.RecordAdd(pr.env.Now() - start)
}

// PutAll adds every element of vs to one segment (the local one, or a
// Director placement's choice), charging a single add access for the
// whole batch — the amortization the batch API exists to measure: one
// segment acquisition (and one queueing exposure at a contended segment)
// covers k elements.
func (pr *Proc[T]) PutAll(vs []T) {
	if len(vs) == 0 {
		return
	}
	p := pr.pool
	start := pr.env.Now()
	target := pr.eng.DirectTarget(len(vs))
	pr.env.Charge(&p.segRes[target], p.cfg.Costs.Cost(numa.AccessAdd, pr.id, target))
	for _, v := range vs {
		p.segs[target].Add(v)
	}
	p.emptyAbort = false // elements exist again: searches may proceed
	p.recordTrace(pr.env, target)
	pr.stats.RecordBatchAdd(pr.env.Now()-start, len(vs))
}

// GetN removes up to max elements in one operation: it drains the local
// segment under a single charged access, or — when the local segment is
// dry — searches like Get and surfaces the batch the steal-half
// transferred. It returns nil on an aborted operation.
func (pr *Proc[T]) GetN(max int) []T {
	if max <= 0 {
		return nil
	}
	p := pr.pool
	start := pr.env.Now()
	pr.env.Charge(&p.segRes[pr.id], p.cfg.Costs.Cost(numa.AccessRemove, pr.id, pr.id))
	if out := p.segs[pr.id].RemoveN(max); len(out) > 0 {
		p.recordTrace(pr.env, pr.id)
		pr.stats.RecordBatchLocalRemove(pr.env.Now()-start, len(out))
		pr.observe(policy.Feedback{Got: len(out), Elapsed: pr.env.Now() - start})
		return out
	}

	searchStart := pr.env.Now()
	res := pr.eng.Search(max)
	if res.Got == 0 {
		pr.stats.RecordAbort(pr.env.Now() - start)
		pr.observe(policy.Feedback{Aborted: true, Examined: res.Examined, Elapsed: pr.env.Now() - start})
		return nil
	}
	out := make([]T, 1, max)
	out[0] = pr.sub.takeReserved()
	if max > 1 {
		out = append(out, p.segs[pr.id].RemoveN(max-1)...)
		p.recordTrace(pr.env, pr.id)
	}
	pr.stats.RecordBatchStealRemove(pr.env.Now()-start, pr.env.Now()-searchStart, res.Examined, res.Got, len(out))
	pr.observe(policy.Feedback{Stole: true, Examined: res.Examined, Got: res.Got, Elapsed: pr.env.Now() - start})
	return out
}

// Get removes an element: locally when possible, otherwise via the
// configured search algorithm's steal protocol. ok=false reports an
// aborted operation (the paper's livelock rule or AbortAll).
func (pr *Proc[T]) Get() (T, bool) {
	var zero T
	p := pr.pool
	start := pr.env.Now()
	pr.env.Charge(&p.segRes[pr.id], p.cfg.Costs.Cost(numa.AccessRemove, pr.id, pr.id))
	if v, ok := p.segs[pr.id].Remove(); ok {
		p.recordTrace(pr.env, pr.id)
		pr.stats.RecordLocalRemove(pr.env.Now() - start)
		pr.observe(policy.Feedback{Got: 1, Elapsed: pr.env.Now() - start})
		return v, true
	}

	searchStart := pr.env.Now()
	res := pr.eng.Search(1)
	if res.Got == 0 {
		pr.stats.RecordAbort(pr.env.Now() - start)
		pr.observe(policy.Feedback{Aborted: true, Examined: res.Examined, Elapsed: pr.env.Now() - start})
		return zero, false
	}
	v := pr.sub.takeReserved()
	pr.stats.RecordStealRemove(pr.env.Now()-start, pr.env.Now()-searchStart, res.Examined, res.Got)
	pr.observe(policy.Feedback{Stole: true, Examined: res.Examined, Got: res.Got, Elapsed: pr.env.Now() - start})
	return v, true
}

// simSubstrate adapts a Proc to engine.Substrate / engine.TreeSubstrate:
// the typed reserve/transfer half of the steal protocol, charging virtual
// time per access. The fruitless-lap accounting, probe classification,
// and the livelock rule live in the engine (engine.Laps).
type simSubstrate[T any] struct {
	proc     *Proc[T]
	reserved T
	has      bool
}

var _ engine.TreeSubstrate = (*simSubstrate[Token])(nil)

func (w *simSubstrate[T]) takeReserved() T {
	var zero T
	v := w.reserved
	w.reserved = zero
	w.has = false
	return v
}

// Enter implements engine.Substrate: bump the shared lookers counter (a
// remote shared object on the Butterfly), charging the access.
func (w *simSubstrate[T]) Enter(int) {
	pr := w.proc
	p := pr.pool
	pr.env.Charge(&p.counter, p.cfg.Costs.Cost(numa.AccessShared, pr.id, -1))
	p.lookers++
}

// Exit implements engine.Substrate.
func (w *simSubstrate[T]) Exit() {
	pr := w.proc
	p := pr.pool
	pr.env.Charge(&p.counter, p.cfg.Costs.Cost(numa.AccessShared, pr.id, -1))
	p.lookers--
}

// Stopped implements engine.Substrate: an external AbortAll, or the
// latched all-searching observation (engine.Laps latches it so that every
// concurrent search aborts, not just the process that made the
// observation; the next add clears the latch).
func (w *simSubstrate[T]) Stopped() bool {
	p := w.proc.pool
	return p.drainAbort || p.emptyAbort || !p.members.Alive(w.proc.id)
}

// Probe implements engine.Substrate: probe (remote) segment s and move
// the StealAmount policy's share into the local segment, reserving one
// element.
func (w *simSubstrate[T]) Probe(s, want int) int {
	pr := w.proc
	p := pr.pool
	env := pr.env
	env.Charge(&p.segRes[s], p.cfg.Costs.Cost(numa.AccessProbe, pr.id, s))

	if s == pr.id {
		n := p.segs[s].Len()
		if n > 0 {
			w.reserved, _ = p.segs[s].Remove()
			w.has = true
			p.recordTrace(env, s)
		}
		return n
	}
	n := p.segs[s].Len()
	if n == 0 {
		return 0
	}
	env.Charge(&p.segRes[s], p.cfg.Costs.Cost(numa.AccessSplit, pr.id, s))
	// The split charge is a scheduling point: another processor may have
	// drained the victim since the probe read n (TakeInto clamps to what
	// is actually there). A steal that arrives to an emptied victim is a
	// fruitless probe — it must not touch the local segment, or it would
	// reserve an unrelated element (a directed add that landed locally
	// mid-search) and lose it when a later steal overwrites the slot.
	moved := p.segs[s].TakeInto(&p.segs[pr.id], pr.steal.Amount(n, want))
	if moved == 0 {
		return 0
	}
	w.reserved, _ = p.segs[pr.id].Remove()
	w.has = true
	p.recordTrace(env, s)
	p.recordTrace(env, pr.id)
	if pr.tr != nil {
		pr.tr.Record(trace.ReserveTransfer, int32(s), int32(moved))
	}
	return moved
}

// NumLeaves implements engine.TreeSubstrate.
func (w *simSubstrate[T]) NumLeaves() int { return w.proc.pool.leaves }

// RoundOf implements engine.TreeSubstrate, charging a (remote) node
// access.
func (w *simSubstrate[T]) RoundOf(n int) uint64 {
	p := w.proc.pool
	w.proc.env.Charge(&p.nodeRes[n], p.cfg.Costs.Cost(numa.AccessNode, w.proc.id, -1))
	return p.rounds[n]
}

// MaxRound implements engine.TreeSubstrate.
func (w *simSubstrate[T]) MaxRound(n int, r uint64) {
	p := w.proc.pool
	w.proc.env.Charge(&p.nodeRes[n], p.cfg.Costs.Cost(numa.AccessNode, w.proc.id, -1))
	if p.rounds[n] < r {
		p.rounds[n] = r
	}
}

// lapsState exposes the shared evidence engine.Laps consults: the
// all-searching observation over the participant count, and the latch
// that makes every concurrent search abort on it.
type lapsState[T any] struct{ p *Pool[T] }

var _ engine.LapsState = lapsState[Token]{}

// AllSearching implements engine.LapsState.
func (l lapsState[T]) AllSearching() bool { return l.p.lookers >= l.p.participants }

// LatchEmpty implements engine.LapsState.
func (l lapsState[T]) LatchEmpty() { l.p.emptyAbort = true }
