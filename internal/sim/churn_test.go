package sim

import (
	"testing"

	"pools/internal/numa"
	"pools/internal/search"
	"pools/internal/workload"
)

func churnRunConfig(drain bool) RunConfig {
	return RunConfig{
		Workload: workload.Config{
			Procs:           8,
			Model:           workload.RandomOps,
			AddFraction:     0.5,
			TotalOps:        1500,
			InitialElements: 120,
		},
		Search: search.Tree,
		Costs:  numa.ButterflyCosts(),
		Seed:   42,
		Churn:  workload.Churn{KillEvery: 1000, ReviveAfter: 600, Drain: drain, MaxKills: 6},
	}
}

// TestSimChurnConservation checks the chaos layer's conservation
// invariant end to end on the simulated substrate: whatever the
// kill/revive schedule did, every element put is either taken or still
// in the pool at the end.
func TestSimChurnConservation(t *testing.T) {
	for _, mode := range []struct {
		name  string
		drain bool
	}{{"drain", true}, {"steal-only", false}} {
		t.Run(mode.name, func(t *testing.T) {
			res := Run(churnRunConfig(mode.drain))
			if len(res.Churn) == 0 {
				t.Fatal("schedule performed no transitions; config too gentle")
			}
			fill := int64(churnRunConfig(mode.drain).Workload.InitialElements)
			if got, want := int64(res.Remaining), fill+res.Stats.Adds-res.Stats.Removes; got != want {
				t.Errorf("conservation violated: remaining = %d, fill+adds-removes = %d", got, want)
			}
			if res.Stats.Ops() == 0 {
				t.Error("no operations completed under churn")
			}
		})
	}
}

// TestSimChurnEvents checks the shape of the chaos driver's transition
// log: kills and revives strictly alternate (one victim down at a time),
// targets are valid processors, times never run backwards, and the ops
// trace the driver samples is monotone.
func TestSimChurnEvents(t *testing.T) {
	cfg := churnRunConfig(true)
	res := Run(cfg)
	down := -1
	var last int64
	for i, ev := range res.Churn {
		if ev.Proc < 0 || ev.Proc >= cfg.Workload.Procs {
			t.Fatalf("event %d targets invalid proc %d", i, ev.Proc)
		}
		if ev.Time < last {
			t.Fatalf("event %d time %d before previous %d", i, ev.Time, last)
		}
		last = ev.Time
		if ev.Revive {
			if down != ev.Proc {
				t.Fatalf("event %d revives proc %d but %d is down", i, ev.Proc, down)
			}
			down = -1
		} else {
			if down != -1 {
				t.Fatalf("event %d kills proc %d while %d is still down", i, ev.Proc, down)
			}
			if !ev.Drain {
				t.Errorf("event %d lost the schedule's drain flag", i)
			}
			down = ev.Proc
		}
	}
	if res.OpsTrace.Len() == 0 {
		t.Fatal("churn run recorded no ops trace")
	}
	var prev int64
	for _, pt := range res.OpsTrace.Points() {
		if pt.Value < prev {
			t.Fatalf("ops trace decreased: %d after %d", pt.Value, prev)
		}
		prev = pt.Value
	}

	// Determinism: a second run of the same config produces the identical
	// transition log.
	again := Run(cfg)
	if len(again.Churn) != len(res.Churn) {
		t.Fatalf("churn log length varies across runs: %d vs %d", len(again.Churn), len(res.Churn))
	}
	for i := range res.Churn {
		if again.Churn[i] != res.Churn[i] {
			t.Fatalf("churn event %d varies across runs: %+v vs %+v", i, again.Churn[i], res.Churn[i])
		}
	}
}

// TestSimChurnZeroChurnUnaffected pins the no-churn fast path: a config
// with churn disabled produces the identical result whether or not the
// Churn field is the zero value it always was — i.e. the chaos layer is
// inert when off.
func TestSimChurnZeroChurnUnaffected(t *testing.T) {
	cfg := churnRunConfig(true)
	cfg.Churn = workload.Churn{}
	res := Run(cfg)
	if len(res.Churn) != 0 || res.OpsTrace.Len() != 0 {
		t.Error("disabled churn still drove transitions or sampling")
	}
	if res.Remaining < 0 || res.Stats.Ops() == 0 {
		t.Error("zero-churn run did not complete normally")
	}
}

// TestSimChurnRejects checks the documented config panics.
func TestSimChurnRejects(t *testing.T) {
	mustPanic := func(name string, cfg RunConfig) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("Run accepted an invalid churn config")
				}
			}()
			Run(cfg)
		})
	}

	open := churnRunConfig(true)
	open.Workload.Model = workload.OpenLoop
	open.Workload.Arrivals = workload.Arrivals{Lambda: 0.01}
	open.Workload.AddFraction = 0.5
	mustPanic("openloop", open)

	solo := churnRunConfig(true)
	solo.Workload.Procs = 1
	mustPanic("single-proc", solo)

	bad := churnRunConfig(true)
	bad.Churn.ReviveAfter = -1
	mustPanic("invalid-schedule", bad)
}
