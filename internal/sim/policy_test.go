package sim

import (
	"testing"

	"pools/internal/numa"
	"pools/internal/policy"
	"pools/internal/search"
	"pools/internal/workload"
)

// policyTrial runs one small burst trial under the named steal policy.
func policyTrial(t *testing.T, name string, seed uint64) RunResult {
	t.Helper()
	set, err := policy.Named(name)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.Config{
		Procs:           8,
		Model:           workload.Burst,
		Producers:       3,
		Arrangement:     workload.Balanced,
		BatchSize:       8,
		TotalOps:        1500,
		InitialElements: 80,
	}
	return Run(RunConfig{
		Workload: w,
		Search:   search.Tree,
		Costs:    numa.ButterflyCosts(),
		Seed:     seed,
		Policies: set,
	})
}

// TestPolicyDeterminism re-runs the same seeded trial under every steal
// policy and checks the virtual-time results are identical: the policy
// subsystem (including the adaptive controller's parameter trajectory)
// must be a deterministic function of the seed.
func TestPolicyDeterminism(t *testing.T) {
	for _, name := range policy.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a := policyTrial(t, name, 1989)
			b := policyTrial(t, name, 1989)
			if a.Makespan != b.Makespan {
				t.Fatalf("makespan diverged for %s: %d vs %d", name, a.Makespan, b.Makespan)
			}
			if a.Stats != b.Stats {
				t.Fatalf("stats diverged for %s:\n%+v\nvs\n%+v", name, a.Stats, b.Stats)
			}
			if a.Remaining != b.Remaining {
				t.Fatalf("remaining diverged for %s: %d vs %d", name, a.Remaining, b.Remaining)
			}
		})
	}
}

// TestPolicyAmountsDiffer checks the policies actually steer the steal
// path: steal-one hauls exactly one element per steal, proportional hauls
// about the batch size, and steal-half hauls the most.
func TestPolicyAmountsDiffer(t *testing.T) {
	one := policyTrial(t, "one", 7).Stats
	prop := policyTrial(t, "proportional", 7).Stats
	half := policyTrial(t, "half", 7).Stats
	if one.Steals == 0 || prop.Steals == 0 || half.Steals == 0 {
		t.Fatalf("no steals recorded: one=%d prop=%d half=%d", one.Steals, prop.Steals, half.Steals)
	}
	if got := one.ElementsStolen.Mean(); got != 1 {
		t.Fatalf("steal-one hauled %.2f elements per steal, want exactly 1", got)
	}
	if got := prop.ElementsStolen.Mean(); got <= 1 || got > 8 {
		t.Fatalf("proportional hauled %.2f per steal, want in (1, 8] for batch 8", got)
	}
	if half.ElementsStolen.Mean() <= prop.ElementsStolen.Mean() {
		t.Fatalf("steal-half hauled %.2f <= proportional's %.2f on large victims",
			half.ElementsStolen.Mean(), prop.ElementsStolen.Mean())
	}
}

// TestPolicyConservation checks element conservation holds under every
// policy: initial + adds == removes + remaining.
func TestPolicyConservation(t *testing.T) {
	for _, name := range policy.Names() {
		res := policyTrial(t, name, 13)
		st := res.Stats
		if st.Adds+80 != st.Removes+int64(res.Remaining) {
			t.Fatalf("%s: conservation violated: adds=%d removes=%d remaining=%d",
				name, st.Adds, st.Removes, res.Remaining)
		}
	}
}
