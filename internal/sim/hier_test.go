package sim

import (
	"reflect"
	"testing"

	"pools/internal/numa"
	"pools/internal/policy"
	"pools/internal/search"
	"pools/internal/workload"
)

// hierRun executes one clustered sparse-mix trial under the given policy
// set and returns its result.
func hierRun(t *testing.T, set policy.Set, costs numa.CostModel, seed uint64) RunResult {
	t.Helper()
	w := workload.Config{
		Procs:           16,
		Model:           workload.RandomOps,
		AddFraction:     0.3,
		Arrangement:     workload.Contiguous,
		TotalOps:        1500,
		InitialElements: 96,
	}
	return Run(RunConfig{Workload: w, Search: search.Linear, Costs: costs, Seed: seed, Policies: set})
}

// TestSimHierarchicalReducesCrossProbes runs the clustered workload under
// the flat linear order and the hierarchical order and compares the
// cross-cluster probe accounting: the hierarchical searcher must cross on
// a smaller fraction of its probes.
func TestSimHierarchicalReducesCrossProbes(t *testing.T) {
	topo := numa.Clusters{Size: 4}
	costs := numa.ButterflyCosts().WithTopology(topo).WithExtraDelay(1000)
	flat := hierRun(t, policy.Set{Order: policy.Order{Kind: search.Linear}}, costs, 11)
	hier := hierRun(t, policy.Set{Order: policy.HierarchicalOrder{Topo: topo}}, costs, 11)
	if flat.Stats.RemoteProbes == 0 || hier.Stats.RemoteProbes == 0 {
		t.Fatalf("no remote probes recorded: flat %+v hier %+v", flat.Stats.RemoteProbes, hier.Stats.RemoteProbes)
	}
	ff := flat.Stats.CrossProbeFraction()
	hf := hier.Stats.CrossProbeFraction()
	if hf >= ff {
		t.Fatalf("hierarchical cross fraction %.3f >= flat %.3f", hf, ff)
	}
}

// TestSimHierarchicalDeterministic replays the same seed twice and
// requires byte-identical measurements — the escalating searcher (and its
// per-handle tuned threshold) must not break the simulator's determinism
// contract.
func TestSimHierarchicalDeterministic(t *testing.T) {
	topo := numa.Clusters{Size: 4}
	costs := numa.ButterflyCosts().WithTopology(topo).WithExtraDelay(100)
	mk := func() policy.Set {
		p := policy.NewPerHandle()
		return policy.Set{Order: policy.HierarchicalOrder{Topo: topo}, Steal: p, Control: p}
	}
	a := hierRun(t, mk(), costs, 42)
	b := hierRun(t, mk(), costs, 42)
	if a.Makespan != b.Makespan {
		t.Fatalf("makespans differ: %d vs %d", a.Makespan, b.Makespan)
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Fatalf("stats differ across identical seeds:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

// TestSimNearestEmptiestPlacement checks the topology-aware director is
// honored by the simulated pool and its probes are classified.
func TestSimNearestEmptiestPlacement(t *testing.T) {
	topo := numa.Clusters{Size: 4}
	costs := numa.ButterflyCosts().WithTopology(topo).WithExtraDelay(1000)
	res := hierRun(t, policy.Set{
		Order: policy.HierarchicalOrder{Topo: topo},
		Place: policy.GiftToNearestEmptiest{Model: costs},
	}, costs, 11)
	if res.Stats.RemoteProbes == 0 {
		t.Fatal("director placed without probing")
	}
	if res.Stats.CrossProbes > res.Stats.RemoteProbes {
		t.Fatalf("cross probes %d exceed remote probes %d", res.Stats.CrossProbes, res.Stats.RemoteProbes)
	}
	if res.Stats.Ops() == 0 {
		t.Fatal("run completed no operations")
	}
}
