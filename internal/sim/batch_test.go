package sim

import (
	"testing"

	"pools/internal/numa"
	"pools/internal/search"
	"pools/internal/workload"
)

// TestProcBatchCharging: a PutAll of k elements charges one segment
// access, so it must cost the same virtual time as a single Put.
func TestProcBatchCharging(t *testing.T) {
	costs := numa.ButterflyCosts()
	run := func(body func(pr *Proc[Token])) int64 {
		p := NewPool[Token](PoolConfig{Procs: 1, Costs: costs})
		s := New(1)
		s.Spawn(0, func(env *Env) {
			body(p.Proc(env))
		})
		return s.Run()
	}
	single := run(func(pr *Proc[Token]) { pr.Put(Token{}) })
	batch := run(func(pr *Proc[Token]) { pr.PutAll(make([]Token, 64)) })
	if batch != single {
		t.Fatalf("PutAll(64) charged %d µs, single Put charged %d: batch should amortize to one access", batch, single)
	}

	getSingle := run(func(pr *Proc[Token]) {
		pr.PutAll(make([]Token, 64))
		pr.Get()
	})
	getBatch := run(func(pr *Proc[Token]) {
		pr.PutAll(make([]Token, 64))
		pr.GetN(64)
	})
	if getBatch != getSingle {
		t.Fatalf("GetN(64) charged %d µs, single Get charged %d", getBatch, getSingle)
	}
}

// TestProcGetNStealBatch: a dry local segment steals and returns the
// transferred batch in one operation.
func TestProcGetNStealBatch(t *testing.T) {
	p := NewPool[Token](PoolConfig{Procs: 2, Costs: numa.ButterflyCosts()})
	p.Seed(40, func(int) Token { return Token{} }) // 20 in each segment
	s := New(2)
	var got []Token
	s.Spawn(0, func(env *Env) {
		pr := p.Proc(env)
		pr.GetN(40) // drain local 20 first
		got = pr.GetN(40)
		pr.Retire()
	})
	s.Spawn(1, func(env *Env) {
		p.Proc(env).Retire()
	})
	s.Run()
	// Steal-half of the remote 20 moves 10; all should return at once.
	if len(got) != 10 {
		t.Fatalf("GetN across steal returned %d, want 10", len(got))
	}
	if p.Len() != 10 {
		t.Fatalf("pool left with %d, want 10", p.Len())
	}
}

// TestRunBurstConservation runs the burst model end-to-end on the
// simulator and checks element conservation and batch accounting.
func TestRunBurstConservation(t *testing.T) {
	wl := workload.Config{
		Procs:           8,
		Model:           workload.Burst,
		Producers:       3,
		Arrangement:     workload.Balanced,
		BatchSize:       16,
		TotalOps:        2000,
		InitialElements: 64,
	}
	res := Run(RunConfig{Workload: wl, Search: search.Tree, Costs: numa.ButterflyCosts(), Seed: 5})
	st := res.Stats
	if st.BatchAdds == 0 || st.BatchRemoves == 0 {
		t.Fatalf("burst run recorded no batch ops: adds=%d removes=%d", st.BatchAdds, st.BatchRemoves)
	}
	total := int64(wl.InitialElements) + st.Adds
	if st.Removes+int64(res.Remaining) != total {
		t.Fatalf("conservation violated: removes=%d remaining=%d added=%d", st.Removes, res.Remaining, total)
	}
	// Budget accounting: one unit per element moved plus one per abort,
	// exactly as in the single-element protocol (short batches refund).
	if got := st.Ops() + st.Aborts; got != int64(wl.TotalOps) {
		t.Fatalf("ops+aborts = %d, want the full budget %d", got, wl.TotalOps)
	}
	// The achieved add batch size should approach the configured one.
	if avg := float64(st.Adds) / float64(st.BatchAdds); avg < 8 {
		t.Fatalf("average add batch %.1f, want near %d", avg, wl.BatchSize)
	}
}
