package segment

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

func TestOwnerDequeZeroValueUsable(t *testing.T) {
	var d OwnerDeque[int]
	if d.Len() != 0 {
		t.Fatal("zero value should be empty")
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("PopBottom on empty returned ok")
	}
	d.PushBottom(42)
	v, ok := d.PopBottom()
	if !ok || v != 42 {
		t.Fatalf("got (%v,%v), want (42,true)", v, ok)
	}
}

func TestOwnerDequeLIFO(t *testing.T) {
	var d OwnerDeque[int]
	const n = 1000
	for i := 0; i < n; i++ {
		d.PushBottom(i)
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	for i := n - 1; i >= 0; i-- {
		v, ok := d.PopBottom()
		if !ok || v != i {
			t.Fatalf("PopBottom = (%v,%v), want (%d,true)", v, ok, i)
		}
	}
	if d.Len() != 0 {
		t.Fatal("should be empty")
	}
}

// Wraparound: interleaved push/pop cycles the ring through many times its
// capacity without growing, and values survive each lap.
func TestOwnerDequeWraparound(t *testing.T) {
	var d OwnerDeque[int]
	next := 0
	for lap := 0; lap < 200; lap++ {
		for i := 0; i < 5; i++ {
			d.PushBottom(next)
			next++
		}
		for i := 0; i < 5; i++ {
			v, ok := d.PopBottom()
			if !ok || v != next-1-i {
				t.Fatalf("lap %d: got (%v,%v), want (%d,true)", lap, v, ok, next-1-i)
			}
		}
	}
	if got := len(d.buf); got != ownerMinCap {
		t.Fatalf("ring grew to %d during steady-state cycling", got)
	}
}

func TestOwnerDequePushBottomAll(t *testing.T) {
	var d OwnerDeque[int]
	batch := make([]int, 100)
	for i := range batch {
		batch[i] = i
	}
	d.PushBottomAll(nil)
	d.PushBottomAll(batch)
	if d.Len() != 100 {
		t.Fatalf("Len = %d, want 100", d.Len())
	}
	for i := 99; i >= 0; i-- {
		v, ok := d.PopBottom()
		if !ok || v != i {
			t.Fatalf("got (%v,%v), want (%d,true)", v, ok, i)
		}
	}
}

// Foreign adds are invisible to the owner's LIFO ring until it runs dry;
// then they come out newest-first, exactly as if the owner had popped the
// overflow directly.
func TestOwnerDequeForeignOrder(t *testing.T) {
	var d OwnerDeque[int]
	d.PushBottom(1)
	d.PushBottom(2)
	d.AddForeign(10)
	d.AddForeignAll([]int{11, 12})
	if d.Len() != 5 {
		t.Fatalf("Len = %d, want 5", d.Len())
	}
	want := []int{2, 1, 12, 11, 10}
	for _, w := range want {
		v, ok := d.PopBottom()
		if !ok || v != w {
			t.Fatalf("got (%v,%v), want (%d,true)", v, ok, w)
		}
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("expected empty")
	}
}

// After a foreign migration the ring keeps serving lock-free pops, and
// new owner pushes stack on top of the migrated elements.
func TestOwnerDequeForeignMigrationInterleaved(t *testing.T) {
	var d OwnerDeque[int]
	d.AddForeignAll([]int{10, 11, 12})
	v, _ := d.PopBottom() // migrates, returns 12
	if v != 12 {
		t.Fatalf("got %d, want 12", v)
	}
	d.PushBottom(99)
	want := []int{99, 11, 10}
	for _, w := range want {
		v, ok := d.PopBottom()
		if !ok || v != w {
			t.Fatalf("got (%v,%v), want (%d,true)", v, ok, w)
		}
	}
}

func TestOwnerDequePopBottomN(t *testing.T) {
	var d OwnerDeque[int]
	if got := d.PopBottomN(5); got != nil {
		t.Fatalf("PopBottomN on empty = %v, want nil", got)
	}
	for i := 0; i < 10; i++ {
		d.PushBottom(i)
	}
	d.AddForeign(100)
	if got := d.PopBottomN(0); got != nil {
		t.Fatalf("PopBottomN(0) = %v, want nil", got)
	}
	got := d.PopBottomN(4)
	for i, w := range []int{9, 8, 7, 6} {
		if got[i] != w {
			t.Fatalf("PopBottomN[%d] = %d, want %d", i, got[i], w)
		}
	}
	// Asking for more than present clamps and reaches into the overflow.
	got = d.PopBottomN(100)
	if len(got) != 7 || got[6] != 100 {
		t.Fatalf("PopBottomN(100) = %v, want 7 elements ending in 100", got)
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d, want 0", d.Len())
	}
}

func TestOwnerDequeAddForeignIfUnder(t *testing.T) {
	var d OwnerDeque[int]
	for i := 0; i < 3; i++ {
		if !d.AddForeignIfUnder(i, 3) {
			t.Fatalf("add %d rejected below limit", i)
		}
	}
	if d.AddForeignIfUnder(99, 3) {
		t.Fatal("add accepted at limit")
	}
	d.PushBottom(7) // ring content counts toward the limit too
	if d.AddForeignIfUnder(99, 4) {
		t.Fatal("add accepted at limit including ring")
	}
	if !d.AddForeignIfUnder(99, 5) {
		t.Fatal("add rejected below limit")
	}
	if d.Len() != 5 {
		t.Fatalf("Len = %d, want 5", d.Len())
	}
}

func TestOwnerDequeStealInto(t *testing.T) {
	var d OwnerDeque[int]
	// Empty victim: take must not be consulted.
	buf := d.StealInto(nil, func(n int) int {
		t.Fatal("take called on empty victim")
		return 0
	})
	if len(buf) != 0 {
		t.Fatalf("stole %v from empty", buf)
	}
	for i := 0; i < 6; i++ {
		d.PushBottom(i)
	}
	d.AddForeignAll([]int{100, 101})
	var sawN int
	buf = d.StealInto(nil, func(n int) int { sawN = n; return 4 })
	if sawN != 8 {
		t.Fatalf("take saw n=%d, want 8", sawN)
	}
	// Overflow first (coldest, head-first), then the top of the ring.
	want := []int{100, 101, 0, 1}
	if len(buf) != len(want) {
		t.Fatalf("stole %v, want %v", buf, want)
	}
	for i, w := range want {
		if buf[i] != w {
			t.Fatalf("stole %v, want %v", buf, want)
		}
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	// take asking for more than n clamps.
	buf = d.StealAll(buf[:0])
	if len(buf) != 4 {
		t.Fatalf("StealAll got %v, want 4 elements", buf)
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d after drain", d.Len())
	}
}

func TestOwnerDequeGrowPreservesOrder(t *testing.T) {
	var d OwnerDeque[int]
	// Force wrapped state before a grow: advance top via steals, then
	// push past capacity so the copy has to unwrap.
	for i := 0; i < ownerMinCap-1; i++ {
		d.PushBottom(i)
	}
	d.StealInto(nil, func(int) int { return 3 }) // top = 3
	for i := ownerMinCap - 1; i < 40; i++ {
		d.PushBottom(i)
	}
	for i := 39; i >= 3; i-- {
		v, ok := d.PopBottom()
		if !ok || v != i {
			t.Fatalf("got (%v,%v), want (%d,true)", v, ok, i)
		}
	}
}

// TestOwnerDequeStealStress is the conservation / no-double-take check
// from the issue: one owner hammers its lock-free bottom while thieves
// batch-steal through StealInto. Every pushed value must be seen exactly
// once across owner pops, steals, and the final drain.
func TestOwnerDequeStealStress(t *testing.T) {
	const (
		thieves = 4
		pushes  = 20000
	)
	var d OwnerDeque[uint32]
	seen := make([]atomic.Uint32, pushes+thieves*100)
	mark := func(t2 *testing.T, v uint32) {
		if seen[v].Add(1) != 1 {
			t2.Errorf("value %d taken twice", v)
		}
	}
	var stop atomic.Bool
	var foreignAdded atomic.Int64
	var wg sync.WaitGroup
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			buf := make([]uint32, 0, 16)
			next, end := pushes+id*100, pushes+(id+1)*100
			for !stop.Load() {
				buf = d.StealInto(buf[:0], func(n int) int {
					if n > 8 {
						return 8
					}
					return n
				})
				for _, v := range buf {
					mark(t, v)
				}
				// Thieves are also foreign adders: inject tagged values
				// through the overflow so migration races with steals.
				if len(buf) > 0 && next < end {
					d.AddForeign(uint32(next))
					foreignAdded.Add(1)
					next++
				}
				runtime.Gosched()
			}
		}(th)
	}
	// Owner: push everything, popping in bursts so the boundary case
	// (last element contended) is hit constantly.
	for i := 0; i < pushes; i++ {
		d.PushBottom(uint32(i))
		if i%3 == 0 {
			for j := 0; j < 2; j++ {
				if v, ok := d.PopBottom(); ok {
					mark(t, v)
				}
			}
		}
	}
	for {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		mark(t, v)
	}
	stop.Store(true)
	wg.Wait()
	for _, v := range d.StealAll(nil) {
		mark(t, v)
	}
	// Conservation: every pushed value came out exactly once. (The marks
	// already caught double-takes; this catches losses.)
	for i := 0; i < pushes; i++ {
		if seen[i].Load() != 1 {
			t.Fatalf("value %d seen %d times, want 1", i, seen[i].Load())
		}
	}
	var taggedSeen int64
	for i := pushes; i < len(seen); i++ {
		taggedSeen += int64(seen[i].Load())
	}
	if taggedSeen != foreignAdded.Load() {
		t.Fatalf("foreign-added values: saw %d, added %d", taggedSeen, foreignAdded.Load())
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d after full drain", d.Len())
	}
}

// TestOwnerDequeOwnerVsSingleThief narrows the race to the interesting
// boundary: a one-element deque fought over by the owner and one thief.
// Exactly one side may win each round.
func TestOwnerDequeOwnerVsSingleThief(t *testing.T) {
	const rounds = 5000
	var d OwnerDeque[int]
	var popped int
	var wg sync.WaitGroup
	start := make(chan struct{})
	var stolenN atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < rounds; i++ {
			got := d.StealInto(nil, func(n int) int { return 1 })
			stolenN.Add(int64(len(got)))
			runtime.Gosched()
		}
	}()
	close(start)
	for i := 0; i < rounds; i++ {
		d.PushBottom(i)
		if _, ok := d.PopBottom(); ok {
			popped++
		}
	}
	wg.Wait()
	stolen := int(stolenN.Load())
	leftover := len(d.StealAll(nil))
	if popped+stolen+leftover != rounds {
		t.Fatalf("conservation: popped=%d + stolen=%d + leftover=%d != rounds=%d",
			popped, stolen, leftover, rounds)
	}
}

// TestOwnerDequeLenNoFalseEmptyDuringMigration pins the no-false-empty
// contract between popForeign and the lock-free Len: the migration
// publishes the enlarged ring span before clearing fcount, and Len
// loads fcount before the span, so a reader overlapping the migration
// in any way overcounts rather than reading 0. The searchers' coverage
// pass certifies emptiness from exactly these lock-free reads at a
// stable version — and a migration (it runs inside the owner's Get)
// bumps no version — so a false-empty window would let a Probe falsely
// succeed while n-1 elements exist. Each iteration the owner parks the
// readers, restocks the overflow and drains the ring (those ops DO bump
// the pool version in real use, so tearing across them is excused by
// the re-arm rule and must stay outside the measurement window), then
// lets the readers hammer Len while the only racing mutation is one
// overflow migration that keeps the deque at one element or more.
func TestOwnerDequeLenNoFalseEmptyDuringMigration(t *testing.T) {
	// The false-empty windows are a few instructions wide; on a single-P
	// runtime the readers never land inside one, so force real
	// interleaving even when the host (or -cpu) gives us one proc.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	const (
		readers = 3
		iters   = 3000
		reads   = 32
	)
	var d OwnerDeque[int]
	d.PushBottom(0) // ring holds one element at the top of every cycle
	var sawEmpty atomic.Bool
	ready := make([]chan struct{}, readers)
	done := make(chan struct{}, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		ready[r] = make(chan struct{})
		wg.Add(1)
		go func(ch chan struct{}) {
			defer wg.Done()
			for range ch {
				for k := 0; k < reads; k++ {
					if d.Len() == 0 {
						sawEmpty.Store(true)
					}
				}
				done <- struct{}{}
			}
		}(ready[r])
	}
	for i := 0; i < iters && !sawEmpty.Load(); i++ {
		// Outside the window: overflow 0→2, then drain the ring's one
		// element, leaving {ring: 0, overflow: 2}.
		d.AddForeign(i)
		d.AddForeign(i)
		if _, ok := d.PopBottom(); !ok {
			t.Fatal("ring drain failed")
		}
		// Window: the pop below migrates both overflow elements into the
		// ring and takes one — the deque's size never drops below one,
		// so no reader may observe zero.
		for _, ch := range ready {
			ch <- struct{}{}
		}
		if _, ok := d.PopBottom(); !ok {
			t.Fatal("migration pop failed")
		}
		for r := 0; r < readers; r++ {
			<-done
		}
	}
	for _, ch := range ready {
		close(ch)
	}
	wg.Wait()
	if sawEmpty.Load() {
		t.Fatal("lock-free Len read 0 while the deque held elements (migration published a false-empty window)")
	}
}

// TestOwnerDequeLayout is the false-sharing audit for the deque header:
// the owner-hot bottom/buf line, the thief-written top, and the shared
// lock tail must each sit at least a cache line apart, and the struct
// must tile cleanly so adjacent segments in a slice never share a line
// between one deque's tail and the next deque's bottom.
func TestOwnerDequeLayout(t *testing.T) {
	var d OwnerDeque[int]
	const line = 64
	offBottom := unsafe.Offsetof(d.bottom)
	offTop := unsafe.Offsetof(d.top)
	offMu := unsafe.Offsetof(d.mu)
	if offTop-offBottom < line {
		t.Errorf("top is %d bytes from bottom, want >= %d", offTop-offBottom, line)
	}
	if offMu-offTop < line {
		t.Errorf("mu is %d bytes from top, want >= %d", offMu-offTop, line)
	}
	size := unsafe.Sizeof(d)
	if size%line != 0 {
		t.Errorf("Sizeof(OwnerDeque) = %d, not a multiple of %d", size, line)
	}
	offFcount := unsafe.Offsetof(d.fcount)
	if size-offFcount < line {
		t.Errorf("fcount is %d bytes from the struct end, want >= %d (neighbor's bottom)", size-offFcount, line)
	}
}
