package segment

import (
	"sync"
	"sync/atomic"
)

// OwnerDeque is a concurrent segment with a lock-free owner path, the
// CAS-era successor to the mutex-guarded Deque the paper's protocol was
// built on. One designated goroutine — the segment's owner — pushes and
// pops at the bottom of a power-of-two ring with plain slot stores
// published by sequentially-consistent index stores and no lock; thieves
// serialize on the segment lock and claim elements at the top one
// compare-style claim at a time, falling back to nothing: the lock IS the
// steal path, exactly the lock + TakeOut reserve-transfer discipline the
// pools already use, now paid only by thieves. Non-owner adds (Director
// placements, kill-time redistribution, seeding) land in a lock-guarded
// overflow Deque that the owner migrates into its ring when the ring runs
// dry, so a foreign add never touches the owner's bottom index.
//
// # Memory-ordering argument
//
// Elements live at ring indices [top, bottom); slot i is buf[i&(cap-1)].
// bottom is written only by the owner; top is written by thieves under
// mu and by the owner's lock-free last-element CAS. All index accesses
// go through sync/atomic, which Go guarantees sequentially consistent,
// so both sides can run the classic claim-then-validate handshake:
//
//   - a thief (holding mu) claims slot t with CompareAndSwap(top, t,
//     t+1), then validates bottom >= t+1. If validation fails the owner
//     has claimed the same last element; the thief rolls its claim back
//     and stops.
//   - the owner claims slot b-1 by storing bottom = b-1, then validates
//     top < b-1. On top == b-1 exactly (one element left) it tries
//     CompareAndSwap(top, b-1, b) itself — claims are CASes on both
//     sides, so exactly one party wins the final slot — provided no
//     steal claim section is in flight (the stealing flag below). Any
//     other boundary goes through mu, by which time the thief has
//     committed or rolled back, and re-checks — so the last element
//     goes to exactly one side and a rolled-back claim strands nothing.
//
// Because both sides publish their claim before validating, at least one
// observes the other (SC total order) on the contended last element.
//
// Plain slot accesses are race-free by two rules. First, thieves read a
// slot only after a validated claim, and the slot's value was published
// by the owner's SC bottom store, which the thief's bottom load acquired.
// Second, the owner reuses a slot (ring wraparound) only after every
// foreign access to it is happens-before-ordered: lock-free pushes
// require occupancy to stay at or below cap-2 against the observed top
// (one free slot of margin). A top value stored by a mu critical section
// orders every EARLIER section's slot accesses before the owner (the
// mutex chains the sections, the SC load of top chains the last of them
// to the owner) but not the storing section's own, later slot work —
// that is what the margin slot absorbs. A top value stored by the
// owner's own CAS is stronger, not weaker: the CAS fires only after the
// owner observed the stealing flag clear, whose clearing store (chained
// through mu) orders every completed section's slot work, and a section
// racing the flag load can only claim at or above the contested slot,
// where it either loses the CAS or takes nothing. A thief's claim can
// inflate the observed top by at most one (claims resolve one at a time
// under mu before the next), which the margin also absorbs: worst-case
// occupancy reaches cap with every slot distinct, and the next push
// re-checks and grows under mu.
//
// Only the owner grows the ring, under mu, so thieves (who read buf under
// mu) and the owner (the only other toucher) both see a stable buffer.
//
// The zero value is an empty, usable deque.
type OwnerDeque[T any] struct {
	// Owner-hot line: the bottom index and the ring header, both written
	// by the owner alone (the header only under mu, but read lock-free).
	bottom atomic.Int64
	buf    []T
	_      [32]byte
	// Thief-written line: top and the steal-section flag move only while
	// mu is held (except the owner's last-element CAS on top) but are
	// loaded lock-free by the owner on every push and pop, so they get a
	// cache line away from both the owner's bottom and the lock.
	top      atomic.Int64
	stealing atomic.Int32 // inside a StealInto claim section (set under mu)
	_        [52]byte
	// Shared tail: the steal lock, the foreign-add overflow it guards,
	// and the overflow's lock-free size mirror. The trailing pad keeps a
	// neighboring OwnerDeque's bottom off this line (segments are stored
	// in one slice), verified by TestOwnerDequeLayout.
	mu      sync.Mutex
	foreign Deque[T]
	fcount  atomic.Int64
	_       [72]byte
}

// ownerMinCap is the smallest ring allocated; must be a power of two.
const ownerMinCap = 8

// Len returns the segment's current size: ring span plus foreign
// overflow. It takes no lock, so under concurrency it is a momentary
// snapshot: mid-claim it is at most one off, and mid-migration
// (popForeign moving the overflow into the ring) it can transiently
// OVERcount — never falsely read empty, so a concurrent searcher's
// coverage pass cannot certify emptiness while elements exist. Exact
// whenever the segment is quiescent, which is all the deterministic
// drivers need.
//
// The load order is load-bearing and pairs with popForeign's store
// order. The migration publishes the enlarged ring span BEFORE clearing
// fcount; Len loads fcount BEFORE the span. So if this load sees the
// cleared fcount, the clearing store already happened, hence so did the
// span store (SC total order), and the later bottom load must observe
// the migrated span — the elements are counted on at least one side.
// Loading the span first would leave a torn read (stale dry span + new
// zero fcount) summing to a false empty across an otherwise-quiescent
// migration.
func (d *OwnerDeque[T]) Len() int {
	f := d.fcount.Load()
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		n = 0
	}
	return int(n) + int(f)
}

// lenLocked is Len with mu held: the ring span is still racing the
// owner, but the foreign count is exact.
func (d *OwnerDeque[T]) lenLocked() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		n = 0
	}
	return int(n) + d.foreign.Len()
}

// grow ensures ring capacity for the current span plus extra plus the
// one-slot margin the push-path memory-ordering argument needs. Owner
// only, mu held (thieves excluded, so the copy and the buffer swap are
// safe against their slot reads).
func (d *OwnerDeque[T]) grow(extra int) {
	b, t := d.bottom.Load(), d.top.Load()
	n := int(b - t)
	if n < 0 {
		n = 0
	}
	need := n + extra + 1
	newCap := len(d.buf)
	if newCap < ownerMinCap {
		newCap = ownerMinCap
	}
	for newCap < need {
		newCap *= 2
	}
	if newCap == len(d.buf) {
		return
	}
	nb := make([]T, newCap)
	oldMask := int64(len(d.buf) - 1)
	newMask := int64(newCap - 1)
	for i := int64(0); i < int64(n); i++ {
		nb[(t+i)&newMask] = d.buf[(t+i)&oldMask]
	}
	d.buf = nb
}

// PushBottom adds an element at the owner end. Owner only. The common
// case is two atomic loads, a slot store, and one SC index store; the
// lock is taken only to grow the ring.
func (d *OwnerDeque[T]) PushBottom(v T) {
	b := d.bottom.Load()
	if t := d.top.Load(); len(d.buf) == 0 || b-t >= int64(len(d.buf)-1) {
		d.mu.Lock()
		d.grow(1)
		d.mu.Unlock()
	}
	d.buf[b&int64(len(d.buf)-1)] = v
	d.bottom.Store(b + 1)
}

// PushBottomAll adds every element of vs at the owner end under a single
// capacity check and a single index publication. Owner only. The slice
// is not retained.
func (d *OwnerDeque[T]) PushBottomAll(vs []T) {
	if len(vs) == 0 {
		return
	}
	b := d.bottom.Load()
	if t := d.top.Load(); len(d.buf) == 0 || b-t+int64(len(vs)) > int64(len(d.buf)-1) {
		d.mu.Lock()
		d.grow(len(vs))
		d.mu.Unlock()
	}
	mask := int64(len(d.buf) - 1)
	for i, v := range vs {
		d.buf[(b+int64(i))&mask] = v
	}
	d.bottom.Store(b + int64(len(vs)))
}

// PopBottom removes the most recently pushed element (LIFO, preserving
// task locality exactly like Deque.Remove). Owner only. The common case
// is lock-free: claim the last slot with an SC bottom store, validate
// against top. The boundary — one element left, or a thief's claim in
// flight — resolves under mu, where the thief has already committed or
// rolled back. A dry ring falls back to the foreign overflow, migrating
// it into the ring so subsequent pops are lock-free again.
func (d *OwnerDeque[T]) PopBottom() (T, bool) {
	var zero T
	b0 := d.bottom.Load()
	if t0 := d.top.Load(); b0-t0 <= 0 {
		return d.popForeign()
	}
	b := b0 - 1
	d.bottom.Store(b) // claim; SC, so the top load below cannot float above it
	mask := int64(len(d.buf) - 1)
	t := d.top.Load()
	if t < b {
		v := d.buf[b&mask]
		d.buf[b&mask] = zero
		return v, true
	}
	if t == b && d.stealing.Load() == 0 && d.top.CompareAndSwap(t, t+1) {
		// Last element, and the CAS beat any thief to it: claims are
		// CASes on both sides, so exactly one party can move top past
		// the final slot. The stealing check first is load-bearing for
		// the push path's slot-reuse argument: a thief's claim-CAS
		// publishes its new top BEFORE the thief touches the slot, so
		// acquiring top alone does not order that thief's in-flight
		// slot reads/zeroes — but acquiring the flag at zero orders
		// every completed steal section (the last section's clearing
		// store, chained through mu to all earlier ones), and a section
		// starting after the load can only claim at or above t, where
		// it loses this CAS or takes nothing. So on success every
		// foreign slot access below t+1 happens-before the owner, and
		// the one-slot push margin stays sufficient. Restore bottom to
		// the canonical empty state (top == bottom == b+1) and take the
		// element without the lock — this is the steady-state pop of a
		// pool hovering near size one, the serial hot path.
		v := d.buf[b&mask]
		d.buf[b&mask] = zero
		d.bottom.Store(b + 1)
		return v, true
	}
	// Boundary lost or ambiguous: a thief's claim is in flight (its
	// commit or rollback resolves inside mu), or the ring emptied
	// between the size check and the claim.
	d.mu.Lock()
	if t := d.top.Load(); t <= b {
		v := d.buf[b&mask]
		d.buf[b&mask] = zero
		d.mu.Unlock()
		return v, true
	}
	d.bottom.Store(b + 1) // the element went to a thief: undo the claim
	d.mu.Unlock()
	return d.popForeign()
}

// popForeign migrates the foreign overflow into the ring (owner only,
// under mu, head-first so pop order matches popping the overflow
// directly) and returns its most recent element. Allocation-free once
// the ring has capacity.
func (d *OwnerDeque[T]) popForeign() (T, bool) {
	var zero T
	if d.fcount.Load() == 0 {
		return zero, false
	}
	d.mu.Lock()
	n := d.foreign.Len()
	if n == 0 {
		d.mu.Unlock()
		return zero, false
	}
	d.grow(n)
	b := d.bottom.Load()
	mask := int64(len(d.buf) - 1)
	for i := int64(n) - 1; i >= 0; i-- {
		v, _ := d.foreign.Remove() // tail-first out of the overflow...
		d.buf[(b+i)&mask] = v      // ...so slot order is head-first
	}
	// Take the migrated tail directly; thieves are excluded by mu, so the
	// index stores need no handshake. Publication order matters for the
	// LOCK-FREE Len readers, though (sizeProbe, a searcher's coverage
	// pass): the enlarged ring span must land before fcount is cleared,
	// and Len loads in the REVERSE order (fcount first), so any torn
	// read lands on the overcounting side — span plus still-nonzero
	// fcount — never on a false empty. Either half alone is insufficient:
	// clearing fcount first makes all n migrated elements invisible
	// between the stores, and a span-first Len can straddle the whole
	// migration (stale dry span, then cleared fcount). See Len's comment
	// for the pairing argument.
	v := d.buf[(b+int64(n)-1)&mask]
	d.buf[(b+int64(n)-1)&mask] = zero
	d.bottom.Store(b + int64(n) - 1)
	d.fcount.Store(0)
	d.mu.Unlock()
	return v, true
}

// PopBottomN removes up to k of the most recently pushed elements
// (foreign overflow included, after the ring). Owner only. Returns nil
// when k <= 0 or the segment is empty.
func (d *OwnerDeque[T]) PopBottomN(k int) []T {
	if k <= 0 {
		return nil
	}
	if n := d.Len(); k > n {
		k = n
	}
	if k == 0 {
		return nil
	}
	out := make([]T, 0, k)
	for len(out) < k {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// AddForeign adds an element from a goroutine that does not own the
// segment: Director placements, kill-time redistribution, seeding. It
// lands in the lock-guarded overflow; the owner's bottom is untouched.
func (d *OwnerDeque[T]) AddForeign(v T) {
	d.mu.Lock()
	d.foreign.Add(v)
	d.fcount.Add(1)
	d.mu.Unlock()
}

// AddForeignAll adds every element of vs through the foreign overflow.
// The slice is not retained.
func (d *OwnerDeque[T]) AddForeignAll(vs []T) {
	if len(vs) == 0 {
		return
	}
	d.mu.Lock()
	d.foreign.AddAll(vs)
	d.fcount.Add(int64(len(vs)))
	d.mu.Unlock()
}

// AddForeignIfUnder adds v through the overflow only while the segment's
// size is below limit, reporting whether it was placed — the capacity-
// respecting remote add behind TryPut's ring walk.
func (d *OwnerDeque[T]) AddForeignIfUnder(v T, limit int) bool {
	d.mu.Lock()
	if d.lenLocked() >= limit {
		d.mu.Unlock()
		return false
	}
	d.foreign.Add(v)
	d.fcount.Add(1)
	d.mu.Unlock()
	return true
}

// StealInto is the thief's batch reserve-transfer: under the segment
// lock it sizes the victim once (n > 0 guaranteed when take is called),
// asks take for the transfer amount, then pulls that many elements —
// foreign overflow first (head-first, the coldest), then top-of-ring
// claims one validated claim at a time — appending them to buf and
// returning the extended slice. A claim the owner wins ends the batch
// short; the caller gets what was actually reserved. take must not call
// back into the deque (the lock is held). Passing a buffer with spare
// capacity makes StealInto allocation-free.
func (d *OwnerDeque[T]) StealInto(buf []T, take func(n int) int) []T {
	d.mu.Lock()
	n := d.lenLocked()
	if n == 0 {
		d.mu.Unlock()
		return buf
	}
	// Mark the claim section open for the owner's last-element CAS fast
	// path; cleared (with release ordering on this section's slot
	// writes) before the unlock.
	d.stealing.Store(1)
	defer func() {
		d.stealing.Store(0)
		d.mu.Unlock()
	}()
	k := take(n)
	if k > n {
		k = n
	}
	if fl := d.foreign.Len(); k > 0 && fl > 0 {
		fk := k
		if fk > fl {
			fk = fl
		}
		buf = d.foreign.TakeOut(buf, fk)
		d.fcount.Add(int64(-fk))
		k -= fk
	}
	var zero T
	mask := int64(len(d.buf) - 1)
	for k > 0 {
		t := d.top.Load()
		if d.bottom.Load()-t <= 0 {
			break
		}
		// Claim slot t. The CAS (not a plain store) can lose only to the
		// owner's lock-free last-element CAS; on failure re-evaluate —
		// the reloaded span goes non-positive and the batch ends.
		if !d.top.CompareAndSwap(t, t+1) {
			continue
		}
		if d.bottom.Load() < t+1 {
			d.top.Store(t) // the owner claimed the same last element: roll back
			break
		}
		buf = append(buf, d.buf[t&mask])
		d.buf[t&mask] = zero
		k--
	}
	return buf
}

// StealAll drains the whole segment through the steal path, appending to
// buf. Any goroutine may call it; elements the owner pops concurrently
// are the owner's, exactly as with a racing Get.
func (d *OwnerDeque[T]) StealAll(buf []T) []T {
	return d.StealInto(buf, func(n int) int { return n })
}
