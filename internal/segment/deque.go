// Package segment implements the local components of a concurrent pool.
//
// Manber's pool partitions its elements into one segment per processor.
// The paper uses two representations:
//
//   - arbitrary-element segments with O(1) add, O(1) remove, and split
//     (Deque here; Manber's original achieves O(1) split with a linked
//     representation — ours is an amortized-O(1) ring buffer whose split
//     is O(k) in the number of moved elements, which is the same cost as
//     the block transfer of stolen elements the paper notes it elided);
//   - a simplified representation storing only the element count (Counter
//     here), which is what the paper actually measures: "we simplified the
//     segments, representing them as a single counter that is atomically
//     added to, subtracted from, or split in half".
//
// Segments are NOT synchronized: the pool (or the simulator) owns locking,
// because the locking regime is precisely what the experiments vary.
package segment

// Deque is an unordered element segment backed by a growable ring buffer.
// Add pushes at the tail; Remove pops at the tail (LIFO within a segment —
// pools impose no ordering, and LIFO preserves locality for task loads);
// SplitInto removes roughly half the elements from the head (the coldest
// ones) into another segment, implementing the steal protocol.
//
// The zero value is an empty, usable segment.
type Deque[T any] struct {
	buf  []T
	head int // index of first element
	n    int // number of elements
}

// Len returns the number of elements held.
func (d *Deque[T]) Len() int { return d.n }

// Empty reports whether the segment holds no elements.
func (d *Deque[T]) Empty() bool { return d.n == 0 }

// Add inserts an element. Amortized O(1).
func (d *Deque[T]) Add(v T) {
	d.grow(1)
	d.buf[(d.head+d.n)%len(d.buf)] = v
	d.n++
}

// Remove extracts an arbitrary element (the most recently added).
// It returns false if the segment is empty.
func (d *Deque[T]) Remove() (T, bool) {
	var zero T
	if d.n == 0 {
		return zero, false
	}
	idx := (d.head + d.n - 1) % len(d.buf)
	v := d.buf[idx]
	d.buf[idx] = zero // release for GC
	d.n--
	return v, true
}

// AddAll inserts every element of vs. It grows the buffer at most once
// and bulk-copies in at most two contiguous spans (the ring wrap), so a
// batch of k elements costs one capacity check and two copies instead of
// k per-element stores — the structural half of the batch-amortization
// the pool's PutAll exposes.
func (d *Deque[T]) AddAll(vs []T) {
	if len(vs) == 0 {
		return
	}
	d.grow(len(vs))
	start := d.head + d.n
	if start >= len(d.buf) {
		start -= len(d.buf)
	}
	copied := copy(d.buf[start:], vs)
	copy(d.buf, vs[copied:])
	d.n += len(vs)
}

// RemoveN extracts up to k elements (the most recently added first) and
// returns them. It returns nil when k <= 0 or the segment is empty. The
// tail walk keeps the ring index with compare-and-wrap arithmetic rather
// than a modulo per element.
func (d *Deque[T]) RemoveN(k int) []T {
	if k > d.n {
		k = d.n
	}
	if k <= 0 {
		return nil
	}
	out := make([]T, k)
	var zero T
	idx := (d.head + d.n - 1) % len(d.buf)
	for i := 0; i < k; i++ {
		out[i] = d.buf[idx]
		d.buf[idx] = zero // release for GC
		if idx == 0 {
			idx = len(d.buf)
		}
		idx--
	}
	d.n -= k
	if d.n == 0 {
		d.head = 0
	}
	return out
}

// SplitInto moves ceil(n/2) elements from d into dst and returns the number
// moved. Following the paper: "it steals roughly half of the elements ...
// unless there is only one element in the remote segment, in which case
// that element is taken immediately" — a 1-element segment yields exactly
// that element. Splitting an empty segment moves nothing.
func (d *Deque[T]) SplitInto(dst *Deque[T]) int {
	take := SplitCount(d.n)
	d.moveInto(dst, take)
	return take
}

// TakeInto moves up to k elements from d into dst and returns the number
// moved. It implements the steal-one ablation policy and partial transfers.
func (d *Deque[T]) TakeInto(dst *Deque[T], k int) int {
	if k > d.n {
		k = d.n
	}
	if k < 0 {
		k = 0
	}
	d.moveInto(dst, k)
	return k
}

// TakeOut removes up to k elements from the head of d (the coldest ones,
// the ones a steal takes), appending them to buf and returning the
// extended slice. It moves exactly the elements TakeInto(dst, k) would,
// in the same order, but into a caller-owned buffer instead of another
// segment — the primitive behind short-lock-hold steals: the thief
// reserves the victim's share into its private buffer under the victim's
// lock alone, then deposits the surplus into its own segment after
// unlocking. Passing a buffer with spare capacity makes TakeOut
// allocation-free.
func (d *Deque[T]) TakeOut(buf []T, k int) []T {
	if k > d.n {
		k = d.n
	}
	var zero T
	for i := 0; i < k; i++ {
		buf = append(buf, d.buf[d.head])
		d.buf[d.head] = zero
		d.head = (d.head + 1) % len(d.buf)
	}
	if k > 0 {
		d.n -= k
		if d.n == 0 {
			d.head = 0
		}
	}
	return buf
}

// moveInto transfers take elements from the head of d to dst.
func (d *Deque[T]) moveInto(dst *Deque[T], take int) {
	dst.grow(take)
	var zero T
	for i := 0; i < take; i++ {
		v := d.buf[d.head]
		d.buf[d.head] = zero
		d.head = (d.head + 1) % len(d.buf)
		dst.buf[(dst.head+dst.n)%len(dst.buf)] = v
		dst.n++
	}
	d.n -= take
	if d.n == 0 {
		d.head = 0
	}
}

// grow ensures capacity for extra more elements.
func (d *Deque[T]) grow(extra int) {
	need := d.n + extra
	if need <= len(d.buf) {
		return
	}
	newCap := len(d.buf) * 2
	if newCap < 8 {
		newCap = 8
	}
	for newCap < need {
		newCap *= 2
	}
	buf := make([]T, newCap)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = buf
	d.head = 0
}

// Drain removes and returns all elements, leaving the segment empty.
func (d *Deque[T]) Drain() []T {
	out := make([]T, 0, d.n)
	for {
		v, ok := d.Remove()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// SplitCount returns the number of elements a steal takes from a segment
// holding n elements: ceil(n/2), so a single remaining element is taken
// outright and a steal never leaves the thief empty-handed on a non-empty
// segment.
func SplitCount(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + 1) / 2
}
