package segment

import (
	"sort"
	"testing"
	"testing/quick"

	"pools/internal/rng"
)

func TestDequeZeroValueUsable(t *testing.T) {
	var d Deque[int]
	if !d.Empty() || d.Len() != 0 {
		t.Fatal("zero value should be empty")
	}
	if _, ok := d.Remove(); ok {
		t.Fatal("Remove on empty returned ok")
	}
	d.Add(42)
	v, ok := d.Remove()
	if !ok || v != 42 {
		t.Fatalf("got (%v,%v), want (42,true)", v, ok)
	}
}

func TestDequeAddRemoveMany(t *testing.T) {
	var d Deque[int]
	const n = 1000
	for i := 0; i < n; i++ {
		d.Add(i)
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	// LIFO within a segment.
	for i := n - 1; i >= 0; i-- {
		v, ok := d.Remove()
		if !ok || v != i {
			t.Fatalf("Remove = (%v,%v), want (%d,true)", v, ok, i)
		}
	}
	if !d.Empty() {
		t.Fatal("should be empty")
	}
}

func TestSplitCount(t *testing.T) {
	cases := []struct{ n, want int }{
		{-3, 0}, {0, 0}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {40, 20}, {41, 21},
	}
	for _, c := range cases {
		if got := SplitCount(c.n); got != c.want {
			t.Errorf("SplitCount(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestDequeSplitMovesHalf(t *testing.T) {
	for n := 0; n <= 65; n++ {
		var src, dst Deque[int]
		for i := 0; i < n; i++ {
			src.Add(i)
		}
		moved := src.SplitInto(&dst)
		if moved != SplitCount(n) {
			t.Fatalf("n=%d: moved %d, want %d", n, moved, SplitCount(n))
		}
		if src.Len()+dst.Len() != n {
			t.Fatalf("n=%d: conservation broken: %d + %d != %d", n, src.Len(), dst.Len(), n)
		}
		if diff := dst.Len() - src.Len(); diff < 0 || diff > 1 {
			t.Fatalf("n=%d: split unbalanced: src=%d dst=%d", n, src.Len(), dst.Len())
		}
	}
}

func TestDequeSplitSingleElementTakenOutright(t *testing.T) {
	var src, dst Deque[string]
	src.Add("only")
	if moved := src.SplitInto(&dst); moved != 1 {
		t.Fatalf("moved = %d, want 1", moved)
	}
	if !src.Empty() || dst.Len() != 1 {
		t.Fatal("single element should move entirely")
	}
}

func TestDequeSplitPreservesElements(t *testing.T) {
	f := func(vals []int16, preDst []int16) bool {
		var src, dst Deque[int]
		want := map[int]int{}
		for _, v := range vals {
			src.Add(int(v))
			want[int(v)]++
		}
		for _, v := range preDst {
			dst.Add(int(v))
			want[int(v)]++
		}
		src.SplitInto(&dst)
		got := map[int]int{}
		for _, v := range src.Drain() {
			got[v]++
		}
		for _, v := range dst.Drain() {
			got[v]++
		}
		if len(got) != len(want) {
			return false
		}
		for k, c := range want {
			if got[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDequeTakeInto(t *testing.T) {
	var src, dst Deque[int]
	for i := 0; i < 10; i++ {
		src.Add(i)
	}
	if got := src.TakeInto(&dst, 3); got != 3 {
		t.Fatalf("TakeInto(3) = %d", got)
	}
	if got := src.TakeInto(&dst, 100); got != 7 {
		t.Fatalf("TakeInto(100) = %d, want 7", got)
	}
	if got := src.TakeInto(&dst, -1); got != 0 {
		t.Fatalf("TakeInto(-1) = %d, want 0", got)
	}
	if dst.Len() != 10 || !src.Empty() {
		t.Fatalf("dst=%d src=%d", dst.Len(), src.Len())
	}
}

// Model-based test: a Deque subjected to a random operation sequence always
// agrees with a multiset model on size and contents.
func TestDequeModelBased(t *testing.T) {
	x := rng.NewXoshiro256(1989)
	var d Deque[int]
	model := map[int]int{}
	size := 0
	next := 0
	for step := 0; step < 20000; step++ {
		switch x.Intn(3) {
		case 0: // add
			d.Add(next)
			model[next]++
			next++
			size++
		case 1: // remove
			v, ok := d.Remove()
			if ok != (size > 0) {
				t.Fatalf("step %d: Remove ok=%v with model size %d", step, ok, size)
			}
			if ok {
				if model[v] == 0 {
					t.Fatalf("step %d: removed element %d not in model", step, v)
				}
				model[v]--
				if model[v] == 0 {
					delete(model, v)
				}
				size--
			}
		case 2: // split into a scratch segment, then merge back
			var scratch Deque[int]
			moved := d.SplitInto(&scratch)
			if moved != SplitCount(size) {
				t.Fatalf("step %d: split moved %d of %d", step, moved, size)
			}
			for _, v := range scratch.Drain() {
				d.Add(v)
			}
		}
		if d.Len() != size {
			t.Fatalf("step %d: Len=%d model=%d", step, d.Len(), size)
		}
	}
	got := d.Drain()
	if len(got) != size {
		t.Fatalf("drained %d, want %d", len(got), size)
	}
	sort.Ints(got)
	for _, v := range got {
		if model[v] == 0 {
			t.Fatalf("drained unexpected element %d", v)
		}
		model[v]--
	}
}

func TestDequeGrowthAcrossWrap(t *testing.T) {
	var d Deque[int]
	// Force head to wrap: fill, remove some, add more.
	for i := 0; i < 8; i++ {
		d.Add(i)
	}
	var scratch Deque[int]
	d.SplitInto(&scratch) // advances head by 4
	for i := 100; i < 120; i++ {
		d.Add(i) // forces regrow with non-zero head
	}
	want := d.Len()
	seen := map[int]bool{}
	for _, v := range d.Drain() {
		if seen[v] {
			t.Fatalf("duplicate element %d after regrow", v)
		}
		seen[v] = true
	}
	if len(seen) != want {
		t.Fatalf("lost elements: %d != %d", len(seen), want)
	}
}

func TestCounterBasics(t *testing.T) {
	var c Counter
	if !c.Empty() || c.Remove() {
		t.Fatal("zero Counter should be empty")
	}
	c.Add(5)
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
	if !c.Remove() || c.Len() != 4 {
		t.Fatal("Remove failed")
	}
}

func TestCounterSplitMatchesSplitCount(t *testing.T) {
	for n := 0; n <= 64; n++ {
		var c, dst Counter
		c.Add(int64(n))
		moved := c.SplitInto(&dst)
		if moved != SplitCount(n) {
			t.Fatalf("n=%d: moved %d, want %d", n, moved, SplitCount(n))
		}
		if c.Len()+dst.Len() != n {
			t.Fatalf("n=%d: conservation broken", n)
		}
	}
}

func TestCounterTakeInto(t *testing.T) {
	var c, dst Counter
	c.Add(10)
	if got := c.TakeInto(&dst, 4); got != 4 {
		t.Fatalf("TakeInto = %d", got)
	}
	if got := c.TakeInto(&dst, 100); got != 6 {
		t.Fatalf("TakeInto over = %d", got)
	}
	if got := c.TakeInto(&dst, -2); got != 0 {
		t.Fatalf("TakeInto negative = %d", got)
	}
	if dst.Len() != 10 || c.Len() != 0 {
		t.Fatalf("dst=%d c=%d", dst.Len(), c.Len())
	}
}

// Property: Counter and Deque agree on every operation's observable count.
func TestCounterDequeEquivalence(t *testing.T) {
	x := rng.NewXoshiro256(7)
	var c, cDst Counter
	var d, dDst Deque[int]
	for step := 0; step < 10000; step++ {
		switch x.Intn(4) {
		case 0:
			c.Add(1)
			d.Add(step)
		case 1:
			co := c.Remove()
			_, do := d.Remove()
			if co != do {
				t.Fatalf("step %d: Remove disagreement", step)
			}
		case 2:
			if c.SplitInto(&cDst) != d.SplitInto(&dDst) {
				t.Fatalf("step %d: Split disagreement", step)
			}
		case 3:
			k := x.Intn(5)
			if c.TakeInto(&cDst, k) != d.TakeInto(&dDst, k) {
				t.Fatalf("step %d: Take disagreement", step)
			}
		}
		if c.Len() != d.Len() || cDst.Len() != dDst.Len() {
			t.Fatalf("step %d: sizes diverged: %d/%d %d/%d", step, c.Len(), d.Len(), cDst.Len(), dDst.Len())
		}
	}
}

func BenchmarkDequeAddRemove(b *testing.B) {
	var d Deque[int]
	for i := 0; i < b.N; i++ {
		d.Add(i)
		d.Remove()
	}
}

func BenchmarkDequeSplit40(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var src, dst Deque[int]
		for j := 0; j < 40; j++ {
			src.Add(j)
		}
		b.StartTimer()
		src.SplitInto(&dst)
	}
}

func BenchmarkCounterSplit(b *testing.B) {
	var src, dst Counter
	for i := 0; i < b.N; i++ {
		src.Add(40)
		src.SplitInto(&dst)
		dst = Counter{}
		src = Counter{}
		src.Add(40)
	}
}
