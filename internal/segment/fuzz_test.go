package segment

import (
	"testing"

	"pools/internal/policy"
)

// FuzzDequeScript interprets a byte script as deque operations and checks
// conservation and agreement with the Counter segment at every step. The
// opcode space includes the policy-driven steal paths: a RemoveN/TakeInto
// whose k is chosen by the proportional and adaptive StealAmount policies,
// exactly as the pools' steal slow paths size their transfers.
func FuzzDequeScript(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 0, 3, 1, 1})
	f.Add([]byte{2, 2, 2})
	f.Add([]byte{4, 4, 5, 4, 5, 5})
	f.Add([]byte{0, 0, 0, 6, 0, 7, 6, 7})
	f.Add([]byte{4, 6, 6, 6, 1, 7, 7, 7})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, script []byte) {
		var d, dDst Deque[int]
		var c, cDst Counter
		adaptive := policy.NewAdaptive()
		next := 0
		for _, op := range script {
			switch op % 8 {
			case 0:
				d.Add(next)
				c.Add(1)
				next++
			case 1:
				_, dok := d.Remove()
				cok := c.Remove()
				if dok != cok {
					t.Fatal("Remove disagreement")
				}
			case 2:
				if d.SplitInto(&dDst) != c.SplitInto(&cDst) {
					t.Fatal("Split disagreement")
				}
			case 3:
				k := int(op) / 8
				if d.TakeInto(&dDst, k) != c.TakeInto(&cDst, k) {
					t.Fatal("Take disagreement")
				}
			case 4:
				k := int(op) / 8
				batch := make([]int, k)
				for i := range batch {
					batch[i] = next
					next++
				}
				d.AddAll(batch)
				c.Add(int64(k))
			case 5:
				k := int(op) / 8
				got := d.RemoveN(k)
				if len(got) != c.RemoveN(k) {
					t.Fatal("RemoveN disagreement")
				}
				// Cross-check the returned batch against the model: every
				// element must be one that was added and never seen before.
				for _, v := range got {
					if v < 0 || v >= next {
						t.Fatalf("RemoveN returned unknown element %d", v)
					}
				}
				// Removed elements leave the conservation universe; re-add
				// them to dDst/cDst so the drain check below still covers
				// them exactly once.
				dDst.AddAll(got)
				cDst.Add(int64(len(got)))
			case 6:
				// Proportional steal: k chosen by the policy from the
				// victim's size and a script-derived appetite, mirrored on
				// the counter model (sizes agree, so k does too).
				if d.Len() == 0 {
					continue
				}
				want := int(op)/8 + 1
				k := policy.Proportional{}.Amount(d.Len(), want)
				if k < 1 || k > d.Len() {
					t.Fatalf("proportional Amount(%d, %d) = %d out of range", d.Len(), want, k)
				}
				if d.TakeInto(&dDst, k) != c.TakeInto(&cDst, k) {
					t.Fatal("proportional steal disagreement")
				}
			case 7:
				// Adaptive steal: the controller's fraction evolves with
				// script-driven feedback, and its chosen k drives the same
				// transfer on both representations.
				adaptive.Observe(policy.Feedback{
					Stole:    op&16 != 0,
					Examined: int(op) / 32,
					Got:      1,
				})
				if d.Len() == 0 {
					continue
				}
				want := int(op)/64 + 1
				k := adaptive.Amount(d.Len(), want)
				if k < 1 || k > d.Len() {
					t.Fatalf("adaptive Amount(%d, %d) = %d out of range", d.Len(), want, k)
				}
				if d.TakeInto(&dDst, k) != c.TakeInto(&cDst, k) {
					t.Fatal("adaptive steal disagreement")
				}
			}
			if d.Len() != c.Len() || dDst.Len() != cDst.Len() {
				t.Fatalf("size divergence: %d/%d %d/%d", d.Len(), c.Len(), dDst.Len(), cDst.Len())
			}
			if d.Len()+dDst.Len() > next {
				t.Fatalf("more elements than added: %d > %d", d.Len()+dDst.Len(), next)
			}
		}
		// Drain everything; each element must appear exactly once.
		seen := map[int]bool{}
		for _, v := range append(d.Drain(), dDst.Drain()...) {
			if v < 0 || v >= next || seen[v] {
				t.Fatalf("element %d duplicated or unknown", v)
			}
			seen[v] = true
		}
	})
}
