package segment

import (
	"testing"

	"pools/internal/policy"
)

// FuzzDequeScript interprets a byte script as deque operations and checks
// conservation and agreement with the Counter segment at every step. The
// opcode space includes the policy-driven steal paths: a RemoveN/TakeInto
// whose k is chosen by the proportional and adaptive StealAmount policies,
// exactly as the pools' steal slow paths size their transfers. Opcodes
// 8-11 drive the lock-free OwnerDeque through the same universe of
// values — owner push/pop, foreign adds, and StealInto batches — so the
// fuzzer interleaves the ring, the overflow migration, and the claim
// protocol's single-threaded boundary cases against a counter model.
func FuzzDequeScript(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 0, 3, 1, 1})
	f.Add([]byte{2, 2, 2})
	f.Add([]byte{4, 4, 5, 4, 5, 5})
	f.Add([]byte{0, 0, 0, 6, 0, 7, 6, 7})
	f.Add([]byte{4, 6, 6, 6, 1, 7, 7, 7})
	f.Add([]byte{8, 8, 8, 9, 11, 9, 9, 10})
	f.Add([]byte{11, 11, 9, 8, 10, 9, 22, 21})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, script []byte) {
		var d, dDst Deque[int]
		var c, cDst Counter
		var o OwnerDeque[int]
		var oc Counter
		var oStolen []int
		adaptive := policy.NewAdaptive()
		next := 0
		for _, op := range script {
			switch op % 12 {
			case 0:
				d.Add(next)
				c.Add(1)
				next++
			case 1:
				_, dok := d.Remove()
				cok := c.Remove()
				if dok != cok {
					t.Fatal("Remove disagreement")
				}
			case 2:
				if d.SplitInto(&dDst) != c.SplitInto(&cDst) {
					t.Fatal("Split disagreement")
				}
			case 3:
				k := int(op) / 8
				if d.TakeInto(&dDst, k) != c.TakeInto(&cDst, k) {
					t.Fatal("Take disagreement")
				}
			case 4:
				k := int(op) / 8
				batch := make([]int, k)
				for i := range batch {
					batch[i] = next
					next++
				}
				d.AddAll(batch)
				c.Add(int64(k))
			case 5:
				k := int(op) / 8
				got := d.RemoveN(k)
				if len(got) != c.RemoveN(k) {
					t.Fatal("RemoveN disagreement")
				}
				// Cross-check the returned batch against the model: every
				// element must be one that was added and never seen before.
				for _, v := range got {
					if v < 0 || v >= next {
						t.Fatalf("RemoveN returned unknown element %d", v)
					}
				}
				// Removed elements leave the conservation universe; re-add
				// them to dDst/cDst so the drain check below still covers
				// them exactly once.
				dDst.AddAll(got)
				cDst.Add(int64(len(got)))
			case 6:
				// Proportional steal: k chosen by the policy from the
				// victim's size and a script-derived appetite, mirrored on
				// the counter model (sizes agree, so k does too).
				if d.Len() == 0 {
					continue
				}
				want := int(op)/8 + 1
				k := policy.Proportional{}.Amount(d.Len(), want)
				if k < 1 || k > d.Len() {
					t.Fatalf("proportional Amount(%d, %d) = %d out of range", d.Len(), want, k)
				}
				if d.TakeInto(&dDst, k) != c.TakeInto(&cDst, k) {
					t.Fatal("proportional steal disagreement")
				}
			case 7:
				// Adaptive steal: the controller's fraction evolves with
				// script-driven feedback, and its chosen k drives the same
				// transfer on both representations.
				adaptive.Observe(policy.Feedback{
					Stole:    op&16 != 0,
					Examined: int(op) / 32,
					Got:      1,
				})
				if d.Len() == 0 {
					continue
				}
				want := int(op)/64 + 1
				k := adaptive.Amount(d.Len(), want)
				if k < 1 || k > d.Len() {
					t.Fatalf("adaptive Amount(%d, %d) = %d out of range", d.Len(), want, k)
				}
				if d.TakeInto(&dDst, k) != c.TakeInto(&cDst, k) {
					t.Fatal("adaptive steal disagreement")
				}
			case 8:
				// Owner push onto the lock-free bottom.
				o.PushBottom(next)
				oc.Add(1)
				next++
			case 9:
				// Owner pop; falls back to the foreign overflow when the
				// ring is dry, which exercises the migration path.
				v, ook := o.PopBottom()
				if ook != oc.Remove() {
					t.Fatal("PopBottom disagreement")
				}
				if ook {
					oStolen = append(oStolen, v)
				}
			case 10:
				// Thief batch through the claim protocol; k from the
				// script, sized against the reported n.
				want := int(op)/12 + 1
				before := len(oStolen)
				oStolen = o.StealInto(oStolen, func(n int) int {
					if n <= 0 {
						t.Fatalf("take consulted with n=%d", n)
					}
					k := policy.Proportional{}.Amount(n, want)
					if k < 1 || k > n {
						t.Fatalf("proportional Amount(%d, %d) = %d out of range", n, want, k)
					}
					return k
				})
				if oc.RemoveN(len(oStolen)-before) != len(oStolen)-before {
					t.Fatal("StealInto removed more than the model held")
				}
			case 11:
				// Foreign add into the overflow.
				o.AddForeign(next)
				oc.Add(1)
				next++
			}
			if d.Len() != c.Len() || dDst.Len() != cDst.Len() {
				t.Fatalf("size divergence: %d/%d %d/%d", d.Len(), c.Len(), dDst.Len(), cDst.Len())
			}
			if o.Len() != oc.Len() {
				t.Fatalf("owner-deque size divergence: %d/%d", o.Len(), oc.Len())
			}
			if d.Len()+dDst.Len()+o.Len()+len(oStolen) > next {
				t.Fatalf("more elements than added: %d > %d",
					d.Len()+dDst.Len()+o.Len()+len(oStolen), next)
			}
		}
		// Drain everything; each element must appear exactly once.
		seen := map[int]bool{}
		drained := append(d.Drain(), dDst.Drain()...)
		drained = append(drained, o.StealAll(nil)...)
		drained = append(drained, oStolen...)
		for _, v := range drained {
			if v < 0 || v >= next || seen[v] {
				t.Fatalf("element %d duplicated or unknown", v)
			}
			seen[v] = true
		}
	})
}
