package segment

import "testing"

func TestDequeAddAllRemoveN(t *testing.T) {
	var d Deque[int]
	d.AddAll(nil)
	d.AddAll([]int{})
	if d.Len() != 0 {
		t.Fatalf("AddAll of empty slices changed Len to %d", d.Len())
	}
	d.AddAll([]int{1, 2, 3})
	if d.Len() != 3 {
		t.Fatalf("Len = %d after AddAll of 3", d.Len())
	}
	// RemoveN pops LIFO, like repeated Remove.
	got := d.RemoveN(2)
	if len(got) != 2 || got[0] != 3 || got[1] != 2 {
		t.Fatalf("RemoveN(2) = %v, want [3 2]", got)
	}
	if got := d.RemoveN(10); len(got) != 1 || got[0] != 1 {
		t.Fatalf("RemoveN(10) = %v, want [1]", got)
	}
	if got := d.RemoveN(1); got != nil {
		t.Fatalf("RemoveN on empty = %v, want nil", got)
	}
	if got := d.RemoveN(-1); got != nil {
		t.Fatalf("RemoveN(-1) = %v, want nil", got)
	}
}

func TestDequeAddAllWraps(t *testing.T) {
	// Force the ring to wrap: fill, drain from the head via moveInto, then
	// AddAll across the wrap point.
	var d, side Deque[int]
	for i := 0; i < 6; i++ {
		d.Add(i)
	}
	d.TakeInto(&side, 4) // head advances to index 4 of an 8-slot buffer
	batch := []int{100, 101, 102, 103, 104}
	d.AddAll(batch)
	if d.Len() != 7 {
		t.Fatalf("Len = %d, want 7", d.Len())
	}
	want := map[int]bool{4: true, 5: true, 100: true, 101: true, 102: true, 103: true, 104: true}
	for _, v := range d.Drain() {
		if !want[v] {
			t.Fatalf("unexpected element %d", v)
		}
		delete(want, v)
	}
	if len(want) != 0 {
		t.Fatalf("missing elements %v", want)
	}
}

func TestDequeAddAllLarge(t *testing.T) {
	var d Deque[int]
	big := make([]int, 10_000)
	for i := range big {
		big[i] = i
	}
	d.AddAll(big)
	if d.Len() != len(big) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(big))
	}
	seen := make([]bool, len(big))
	for _, v := range d.RemoveN(len(big)) {
		if seen[v] {
			t.Fatalf("element %d duplicated", v)
		}
		seen[v] = true
	}
	if !d.Empty() {
		t.Fatal("deque not empty after full RemoveN")
	}
}

func TestCounterRemoveN(t *testing.T) {
	var c Counter
	c.Add(5)
	if got := c.RemoveN(3); got != 3 {
		t.Fatalf("RemoveN(3) = %d, want 3", got)
	}
	if got := c.RemoveN(10); got != 2 {
		t.Fatalf("RemoveN(10) = %d, want 2", got)
	}
	if got := c.RemoveN(1); got != 0 {
		t.Fatalf("RemoveN on empty = %d, want 0", got)
	}
	if got := c.RemoveN(-2); got != 0 {
		t.Fatalf("RemoveN(-2) = %d, want 0", got)
	}
}

func BenchmarkDequeAddAllRemoveN64(b *testing.B) {
	var d Deque[int]
	batch := make([]int, 64)
	for i := 0; i < b.N; i++ {
		d.AddAll(batch)
		d.RemoveN(64)
	}
}
