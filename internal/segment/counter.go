package segment

// Counter is the paper's simplified segment: only the number of elements is
// stored, "since the values of the elements do not matter to the
// simulation". Add, Remove, and SplitInto mirror Deque semantics on the
// count alone. Like Deque, Counter is unsynchronized; callers own locking.
//
// The zero value is an empty segment.
type Counter struct {
	n int64
}

// Len returns the stored element count.
func (c *Counter) Len() int { return int(c.n) }

// Empty reports whether the count is zero.
func (c *Counter) Empty() bool { return c.n == 0 }

// Add records one added element.
func (c *Counter) Add(k int64) { c.n += k }

// Remove records one removed element; it returns false if empty.
func (c *Counter) Remove() bool {
	if c.n == 0 {
		return false
	}
	c.n--
	return true
}

// RemoveN records up to k removed elements and returns the number removed
// (0 when k <= 0 or the count is empty). It mirrors Deque.RemoveN on the
// count alone.
func (c *Counter) RemoveN(k int) int {
	t := int64(k)
	if t > c.n {
		t = c.n
	}
	if t < 0 {
		t = 0
	}
	c.n -= t
	return int(t)
}

// SplitInto moves ceil(n/2) of c's count into dst, returning the number
// moved (0 if c is empty).
func (c *Counter) SplitInto(dst *Counter) int {
	take := int64(SplitCount(int(c.n)))
	c.n -= take
	dst.n += take
	return int(take)
}

// TakeInto moves up to k of c's count into dst, returning the number moved.
func (c *Counter) TakeInto(dst *Counter, k int) int {
	t := int64(k)
	if t > c.n {
		t = c.n
	}
	if t < 0 {
		t = 0
	}
	c.n -= t
	dst.n += t
	return int(t)
}
