package keyed

import (
	"sync"
	"testing"

	"pools/internal/numa"
	"pools/internal/policy"
)

// TestKeyedHierarchicalRank checks the keyed sweep walks cluster-first
// under a hierarchical order: a Get that misses locally steals from the
// cluster mate's bucket, never crossing while a near match exists, and
// the probe accounting agrees.
func TestKeyedHierarchicalRank(t *testing.T) {
	topo := numa.Clusters{Size: 4}
	p, err := New[string, int](Options{
		Segments: 8,
		Policies: policy.Set{Order: policy.HierarchicalOrder{Topo: topo}},
		Topology: topo,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Class "x" lives both at the cluster mate (segment 1) and across the
	// boundary (segment 5).
	p.Handle(1).PutAll("x", []int{1, 2, 3, 4})
	p.Handle(5).PutAll("x", []int{5, 6, 7, 8})
	if _, ok := p.Handle(0).Get("x"); !ok {
		t.Fatal("Get missed with 8 matching elements pooled")
	}
	if got := p.LenKey("x"); got != 7 {
		t.Fatalf("LenKey = %d, want 7", got)
	}
	remote, cross := p.ProbeStats()
	if remote == 0 {
		t.Fatal("no remote probes recorded")
	}
	if cross != 0 {
		t.Fatalf("%d cross probes recorded, want 0 (near bucket available)", cross)
	}
	// Drain the near copies; the next misses must escalate and cross.
	h := p.Handle(0)
	for p.LenKey("x") > 0 {
		if _, ok := h.Get("x"); !ok {
			t.Fatal("Get missed with matching elements pooled")
		}
	}
	if _, cross := p.ProbeStats(); cross == 0 {
		t.Fatal("far bucket consumed without a recorded crossing")
	}
	// Absent class: the sweep still terminates (full coverage) and
	// reports a miss.
	if _, ok := h.Get("nope"); ok {
		t.Fatal("Get invented an element of an absent class")
	}
}

// TestKeyedProbeStatsUnderRace drives concurrent keyed handles with the
// hierarchical rank and topology accounting on; the race detector guards
// the per-handle counters, and ProbeStats is read only after the workers
// join.
func TestKeyedProbeStatsUnderRace(t *testing.T) {
	topo := numa.Clusters{Size: 2}
	p, err := New[int, int](Options{
		Segments: 4,
		Policies: policy.Set{Order: policy.HierarchicalOrder{Topo: topo}},
		Topology: topo,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := p.Handle(w)
			for i := 0; i < 200; i++ {
				h.Put(i%3, i)
				h.Get((i + 1) % 3)
			}
		}(w)
	}
	wg.Wait()
	remote, cross := p.ProbeStats()
	if cross > remote {
		t.Fatalf("cross probes %d exceed remote probes %d", cross, remote)
	}
	if remote == 0 {
		t.Fatal("no sweeps recorded under contention")
	}
}
