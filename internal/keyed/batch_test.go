package keyed

import "testing"

func newBatchPool(t *testing.T, opts Options) *Pool[string, int] {
	t.Helper()
	p, err := New[string, int](opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestKeyedPutAllGetNLocal(t *testing.T) {
	p := newBatchPool(t, Options{Segments: 4})
	h := p.Handle(0)
	h.PutAll("a", nil)
	if p.Len() != 0 {
		t.Fatalf("empty PutAll grew pool to %d", p.Len())
	}
	h.PutAll("a", []int{1, 2, 3, 4})
	h.PutAll("b", []int{10})
	if p.LenKey("a") != 4 || p.LenKey("b") != 1 {
		t.Fatalf("LenKey = %d/%d, want 4/1", p.LenKey("a"), p.LenKey("b"))
	}
	out := h.GetN("a", 3)
	if len(out) != 3 {
		t.Fatalf("GetN(a,3) returned %d elements", len(out))
	}
	if out = h.GetN("a", 10); len(out) != 1 {
		t.Fatalf("GetN(a,10) returned %d, want the remaining 1", len(out))
	}
	if p.LenKey("a") != 0 || p.Len() != 1 {
		t.Fatalf("pool left with LenKey(a)=%d Len=%d", p.LenKey("a"), p.Len())
	}
}

// TestKeyedGetNKeyMiss is the key-miss fallback: a GetN for an absent
// class completes its sweeps and returns nil without disturbing other
// classes.
func TestKeyedGetNKeyMiss(t *testing.T) {
	p := newBatchPool(t, Options{Segments: 4, Sweeps: 2})
	producer := p.Handle(2)
	producer.PutAll("present", []int{1, 2, 3})
	consumer := p.Handle(0)
	if out := consumer.GetN("absent", 5); out != nil {
		t.Fatalf("GetN of absent class = %v, want nil", out)
	}
	if p.LenKey("present") != 3 {
		t.Fatalf("key-miss sweep disturbed other classes: LenKey = %d", p.LenKey("present"))
	}
	if out := consumer.GetN("present", 5); len(out) == 0 {
		t.Fatal("GetN of present class found nothing")
	}
}

// TestKeyedGetNAcrossSteal checks the batch surfaces through a bucket
// steal: a dry local segment steals half the remote bucket and returns it
// as one batch.
func TestKeyedGetNAcrossSteal(t *testing.T) {
	p := newBatchPool(t, Options{Segments: 8})
	producer := p.Handle(5)
	items := make([]int, 40)
	for i := range items {
		items[i] = i
	}
	producer.PutAll("k", items)

	consumer := p.Handle(0)
	out := consumer.GetN("k", 64)
	// Steal-half transfers ceil(40/2) = 20; all should come back at once.
	if len(out) != 20 {
		t.Fatalf("GetN across steal returned %d, want 20", len(out))
	}
	seen := map[int]bool{}
	for _, v := range out {
		if v < 0 || v >= 40 || seen[v] {
			t.Fatalf("element %d duplicated or unknown", v)
		}
		seen[v] = true
	}
	if p.LenKey("k") != 20 {
		t.Fatalf("pool left with %d elements of class k, want 20", p.LenKey("k"))
	}
}

// TestKeyedGetNCapsBelowSteal: max below the stolen batch parks the rest
// locally for the next (local) GetN.
func TestKeyedGetNCapsBelowSteal(t *testing.T) {
	p := newBatchPool(t, Options{Segments: 4})
	p.Handle(2).PutAll("k", make([]int, 32))
	consumer := p.Handle(0)
	if out := consumer.GetN("k", 4); len(out) != 4 {
		t.Fatalf("GetN(k,4) returned %d", len(out))
	}
	// 16 stolen, 4 returned, 12 parked in the local bucket.
	if out := consumer.GetN("k", 100); len(out) != 12 {
		t.Fatalf("follow-up GetN returned %d, want 12", len(out))
	}
}
