package keyed

import (
	"testing"

	"pools/internal/numa"
	"pools/internal/policy"
)

// TestKeyedPoliciesSteal checks Options.Policies.Steal drives bucket
// steals and wins over the deprecated Steal field.
func TestKeyedPoliciesSteal(t *testing.T) {
	p, err := New[string, int](Options{
		Segments: 4,
		Steal:    policy.Half{}, // deprecated alias: must lose to Policies
		Policies: policy.Set{Steal: policy.One{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Handle(2).PutAll("k", make([]int, 10))
	if _, ok := p.Handle(0).Get("k"); !ok {
		t.Fatal("Get failed with 10 elements pooled")
	}
	// Steal-one moved exactly 1: the victim keeps 9 and nothing parked.
	if got := p.LenKey("k"); got != 9 {
		t.Fatalf("pool holds %d k-elements after a steal-one Get, want 9", got)
	}
}

// TestKeyedPerHandleControl checks per-handle controllers tune from the
// keyed pool's feedback: a handle that always steals rises, one that
// always removes locally decays, independently.
func TestKeyedPerHandleControl(t *testing.T) {
	set, err := policy.Named("per-handle")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New[string, int](Options{Segments: 3, Policies: set})
	if err != nil {
		t.Fatal(err)
	}
	producer := p.Handle(2)
	thief := p.Handle(0)
	local := p.Handle(1)
	for i := 0; i < 400; i++ {
		local.Put("k", i)
		if _, ok := local.Get("k"); !ok {
			t.Fatalf("local Get %d failed", i)
		}
		producer.Put("k", i)
		if _, ok := thief.Get("k"); !ok {
			t.Fatalf("thief Get %d failed", i)
		}
	}
	ph := set.Control.(*policy.PerHandle)
	tf := ph.Handle(0).StealFraction()
	lf := ph.Handle(1).StealFraction()
	if tf <= 0.5 || lf >= 0.5 {
		t.Fatalf("keyed per-handle fractions thief=%v local=%v, want >0.5 and <0.5", tf, lf)
	}
}

// TestKeyedRankedSweep checks a Ranker victim order reorders the sweep:
// under a clustered cost model the consumer steals from the in-cluster
// victim even when a far victim is nearer in ring distance.
func TestKeyedRankedSweep(t *testing.T) {
	model := numa.ButterflyCosts().WithTopology(numa.Clusters{Size: 4}).WithExtraDelay(100)
	p, err := New[string, int](Options{
		Segments: 8,
		Policies: policy.Set{Order: policy.LocalityOrder{Model: model}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Consumer owns segment 1 (cluster {0..3}); victims at 4 (far
	// cluster, ring-adjacent to 3) and 3 (in-cluster).
	p.Handle(4).PutAll("k", make([]int, 10))
	p.Handle(3).PutAll("k", make([]int, 10))
	out := p.Handle(1).GetN("k", 2)
	if len(out) != 2 {
		t.Fatalf("GetN returned %d elements, want 2", len(out))
	}
	near, far := 0, 0
	for i := 0; i < 8; i++ {
		s := &p.segs[i]
		s.mu.Lock()
		if b := s.buckets["k"]; b != nil && i == 3 {
			near = b.Len()
		} else if b != nil && i == 4 {
			far = b.Len()
		}
		s.mu.Unlock()
	}
	if far != 10 {
		t.Fatalf("far victim lost elements (left %d), want untouched 10", far)
	}
	if near != 5 {
		t.Fatalf("in-cluster victim left with %d, want 5 (steal-half from the ranked victim)", near)
	}
}

// TestKeyedEmptiestPlacement checks a Director placement steers keyed
// adds toward the emptiest segment.
func TestKeyedEmptiestPlacement(t *testing.T) {
	p, err := New[string, int](Options{
		Segments: 4,
		Policies: policy.Set{Place: policy.GiftToEmptiest{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := p.Handle(0)
	h.PutAll("a", make([]int, 5)) // all empty: stays local (tie keeps self)
	h.Put("a", 1)                 // segment 1 is now the nearest emptiest
	seg1 := &p.segs[1]
	seg1.mu.Lock()
	got := seg1.total
	seg1.mu.Unlock()
	if got != 1 {
		t.Fatalf("directed keyed add landed elsewhere (segment 1 holds %d), want 1", got)
	}
	if p.Len() != 6 {
		t.Fatalf("Len = %d, want 6", p.Len())
	}
}
