package keyed

import (
	"sync"
	"testing"
	"testing/quick"

	"pools/internal/rng"
)

func newPool(t *testing.T, segs int) *Pool[string, int] {
	t.Helper()
	p, err := New[string, int](Options{Segments: segs})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New[int, int](Options{Segments: 0}); err == nil {
		t.Error("Segments=0 accepted")
	}
	if _, err := New[int, int](Options{Segments: 2, Sweeps: -1}); err == nil {
		t.Error("negative sweeps accepted")
	}
	p, err := New[int, int](Options{Segments: 2})
	if err != nil || p.Segments() != 2 {
		t.Fatalf("New: %v", err)
	}
}

func TestLocalPutGet(t *testing.T) {
	p := newPool(t, 4)
	h := p.Handle(0)
	h.Put("red", 1)
	h.Put("red", 2)
	h.Put("blue", 3)
	if p.Len() != 3 || p.LenKey("red") != 2 || p.LenKey("blue") != 1 {
		t.Fatalf("Len=%d red=%d blue=%d", p.Len(), p.LenKey("red"), p.LenKey("blue"))
	}
	if v, ok := h.Get("red"); !ok || v != 2 {
		t.Fatalf("Get(red) = (%d,%v)", v, ok)
	}
	if v, ok := h.Get("blue"); !ok || v != 3 {
		t.Fatalf("Get(blue) = (%d,%v)", v, ok)
	}
	if _, ok := h.Get("blue"); ok {
		t.Fatal("Get on drained class succeeded")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestGetStealsMatchingClassOnly(t *testing.T) {
	p := newPool(t, 8)
	producer := p.Handle(5)
	for i := 0; i < 10; i++ {
		producer.Put("red", i)
		producer.Put("blue", 100+i)
	}
	consumer := p.Handle(0)
	v, ok := consumer.Get("red")
	if !ok || v < 0 || v > 9 {
		t.Fatalf("Get(red) = (%d,%v)", v, ok)
	}
	// Half the red bucket moved; blue untouched at the victim.
	if got := p.LenKey("blue"); got != 10 {
		t.Fatalf("blue class disturbed: %d", got)
	}
	if got := p.LenKey("red"); got != 9 {
		t.Fatalf("red remaining = %d, want 9", got)
	}
}

func TestGetMissingClassReturnsFalse(t *testing.T) {
	p := newPool(t, 4)
	p.Handle(1).Put("red", 1)
	if _, ok := p.Handle(0).Get("green"); ok {
		t.Fatal("found element of absent class")
	}
}

func TestGetAnyPrefersLocal(t *testing.T) {
	p := newPool(t, 4)
	p.Handle(0).Put("red", 1)
	p.Handle(1).Put("blue", 2)
	k, v, ok := p.Handle(0).GetAny()
	if !ok || k != "red" || v != 1 {
		t.Fatalf("GetAny = (%s,%d,%v)", k, v, ok)
	}
}

func TestGetAnySteals(t *testing.T) {
	p := newPool(t, 4)
	p.Handle(2).Put("blue", 7)
	k, v, ok := p.Handle(0).GetAny()
	if !ok || k != "blue" || v != 7 {
		t.Fatalf("GetAny = (%s,%d,%v)", k, v, ok)
	}
	if _, _, ok := p.Handle(0).GetAny(); ok {
		t.Fatal("GetAny on empty pool succeeded")
	}
}

func TestLastFoundLocality(t *testing.T) {
	p := newPool(t, 16)
	producer := p.Handle(9)
	for i := 0; i < 32; i++ {
		producer.Put("k", i)
	}
	consumer := p.Handle(2)
	for i := 0; i < 32; i++ {
		if _, ok := consumer.Get("k"); !ok {
			t.Fatalf("Get %d failed", i)
		}
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestConservationProperty(t *testing.T) {
	keys := []string{"a", "b", "c"}
	f := func(ops []uint8, segsRaw uint8) bool {
		segs := int(segsRaw)%6 + 1
		p, err := New[string, int](Options{Segments: segs})
		if err != nil {
			return false
		}
		in := map[string]int{}
		out := map[string]int{}
		next := 0
		for _, op := range ops {
			h := p.Handle(int(op) % segs)
			k := keys[int(op/8)%len(keys)]
			if op%2 == 0 {
				h.Put(k, next)
				next++
				in[k]++
			} else if _, ok := h.Get(k); ok {
				out[k]++
			}
		}
		for _, k := range keys {
			if in[k]-out[k] != p.LenKey(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentKeyedConservation(t *testing.T) {
	const procs = 6
	const perProc = 2000
	p := newPool(t, procs)
	keys := []string{"x", "y", "z"}
	var mu sync.Mutex
	seen := map[int]bool{}
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := p.Handle(id)
			x := rng.NewXoshiro256(uint64(id) + 1)
			puts := 0
			for puts < perProc {
				k := keys[x.Intn(len(keys))]
				if x.Bool(0.6) {
					h.Put(k, id*perProc+puts)
					puts++
				} else if v, ok := h.Get(k); ok {
					mu.Lock()
					if seen[v] {
						mu.Unlock()
						t.Errorf("element %d delivered twice", v)
						return
					}
					seen[v] = true
					mu.Unlock()
				}
			}
		}(i)
	}
	wg.Wait()
	total := len(seen) + p.Len()
	if total != procs*perProc {
		t.Fatalf("conservation broken: %d of %d", total, procs*perProc)
	}
}

func TestBucketsCleanedUp(t *testing.T) {
	p := newPool(t, 2)
	h := p.Handle(0)
	h.Put("k", 1)
	h.Get("k")
	s := &p.segs[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buckets) != 0 {
		t.Fatalf("empty bucket not removed: %d buckets", len(s.buckets))
	}
}

func TestMultiSweepOption(t *testing.T) {
	p, err := New[string, int](Options{Segments: 4, Sweeps: 3})
	if err != nil {
		t.Fatal(err)
	}
	p.Handle(3).Put("k", 9)
	if v, ok := p.Handle(0).Get("k"); !ok || v != 9 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
}

func BenchmarkKeyedLocalPutGet(b *testing.B) {
	p, _ := New[int, int](Options{Segments: 4})
	h := p.Handle(0)
	for i := 0; i < b.N; i++ {
		h.Put(i%8, i)
		h.Get(i % 8)
	}
}

func BenchmarkKeyedSteal(b *testing.B) {
	p, _ := New[int, int](Options{Segments: 16})
	producer := p.Handle(9)
	consumer := p.Handle(0)
	for i := 0; i < b.N; i++ {
		producer.Put(1, i)
		producer.Put(1, i)
		consumer.Get(1)
		consumer.Get(1)
	}
}
