package keyed

import (
	"testing"
)

func TestKeyedKillDrainPreservesKeys(t *testing.T) {
	p := newPool(t, 4)
	h0 := p.Handle(0)
	for i := 0; i < 5; i++ {
		h0.Put("red", i)
	}
	for i := 0; i < 3; i++ {
		h0.Put("blue", 100+i)
	}
	epoch := p.Epoch()
	if !p.Kill(0, true) {
		t.Fatal("kill refused")
	}
	if p.Alive(0) || p.Victim(0) {
		t.Error("drain-killed segment should leave the alive and victim sets")
	}
	if p.Epoch() <= epoch {
		t.Error("drain kill must bump the epoch")
	}
	// Key classes survive the relocation intact.
	if got := p.LenKey("red"); got != 5 {
		t.Errorf("LenKey(red) = %d after drain, want 5", got)
	}
	if got := p.LenKey("blue"); got != 3 {
		t.Errorf("LenKey(blue) = %d after drain, want 3", got)
	}
	// And remain reachable by class from a survivor.
	h1 := p.Handle(1)
	for i := 0; i < 5; i++ {
		if _, ok := h1.Get("red"); !ok {
			t.Fatalf("red element %d unreachable after drain kill", i)
		}
	}
	for i := 0; i < 3; i++ {
		if _, ok := h1.Get("blue"); !ok {
			t.Fatalf("blue element %d unreachable after drain kill", i)
		}
	}
	if p.Len() != 0 {
		t.Errorf("Len = %d after draining all classes, want 0", p.Len())
	}
}

func TestKeyedKillStealOnlyDrainsViaSweeps(t *testing.T) {
	p := newPool(t, 4)
	h0 := p.Handle(0)
	for i := 0; i < 8; i++ {
		h0.Put("red", i)
	}
	if !p.Kill(0, false) {
		t.Fatal("kill refused")
	}
	if p.Alive(0) {
		t.Error("killed handle still alive")
	}
	if !p.Victim(0) {
		t.Error("steal-only kill must keep the segment a victim")
	}
	h2 := p.Handle(2)
	for i := 0; i < 8; i++ {
		if _, ok := h2.Get("red"); !ok {
			t.Fatalf("reserve element %d did not drain via the sweep", i)
		}
	}
}

func TestKeyedKilledHandleSweepAborts(t *testing.T) {
	p := newPool(t, 4)
	p.Handle(1).Put("red", 1)
	if !p.Kill(0, true) {
		t.Fatal("kill refused")
	}
	// The killed handle's local segment is empty (drained), and its
	// sweep aborts at the stop check, so the remote element stays put.
	if _, ok := p.Handle(0).Get("red"); ok {
		t.Error("killed handle's sweep obtained an element")
	}
	if got := p.LenKey("red"); got != 1 {
		t.Errorf("killed handle's Get moved elements: LenKey = %d, want 1", got)
	}
}

func TestKeyedKillLastAliveRefusedAndRevive(t *testing.T) {
	p := newPool(t, 2)
	if !p.Kill(1, false) {
		t.Fatal("first kill refused")
	}
	if p.Kill(0, true) {
		t.Error("killing the last live member must be refused")
	}
	if p.Kill(1, true) {
		t.Error("killing a dead member must be refused")
	}
	if !p.Revive(1) {
		t.Fatal("revive failed")
	}
	if p.Revive(1) {
		t.Error("reviving a live member must report false")
	}
	if !p.Alive(1) || !p.Victim(1) {
		t.Error("revived member not fully re-admitted")
	}
	// The revived handle operates normally again.
	h1 := p.Handle(1)
	h1.Put("red", 9)
	if v, ok := h1.Get("red"); !ok || v != 9 {
		t.Errorf("revived handle Get = (%d, %v), want (9, true)", v, ok)
	}
}

func TestKeyedPutRedirectsOffDeadSegment(t *testing.T) {
	p := newPool(t, 4)
	if !p.Kill(0, true) {
		t.Fatal("kill refused")
	}
	h0 := p.Handle(0)
	h0.Put("red", 1)
	h0.PutAll("blue", []int{2, 3})
	// Nothing may land in the dead (non-victim) segment.
	s := &p.segs[0]
	s.mu.Lock()
	n0 := s.total
	s.mu.Unlock()
	if n0 != 0 {
		t.Errorf("dead segment holds %d elements; deposits must redirect", n0)
	}
	if p.LenKey("red") != 1 || p.LenKey("blue") != 2 {
		t.Errorf("redirected deposits lost: red=%d blue=%d", p.LenKey("red"), p.LenKey("blue"))
	}
	// Reachable by survivors.
	if _, ok := p.Handle(1).Get("red"); !ok {
		t.Error("redirected element unreachable")
	}
}
