// Package keyed answers the paper's second Section 5 question: "How might
// pools be extended to handle distinguishable elements?"
//
// A keyed pool partitions elements by segment (for locality, exactly like
// the plain pool) and, within each segment, by a comparable key class.
// Processes may remove an element of a *specific* class or of any class.
// Local operations stay O(1); when the local segment has no element of
// the requested class, the process walks the segment ring and steals half
// of the first matching bucket it finds — the plain pool's linear
// algorithm lifted to buckets.
//
// Unlike the plain pool, a keyed removal knows exactly what it is looking
// for, so emptiness is decidable without the all-searching livelock rule:
// a Get that completes a full sweep without finding its class returns
// false. (A concurrent add of that class can race past a sweep, exactly
// as it can in the paper's pool; callers retry if their protocol expects
// late arrivals.)
//
// The keyed pool consults the same policy.Set as the plain pool
// (Options.Policies): the StealAmount sizes bucket steals, a VictimOrder
// that implements policy.Ranker (policy.LocalityOrder) reorders the ring
// sweep cheapest-victim-first, a policy.Director placement steers adds
// toward the emptiest segment, and a Controller — per-handle or
// pool-wide — tunes from each remove's outcome.
package keyed

import (
	"fmt"
	"sync"

	"pools/internal/numa"
	"pools/internal/policy"
	"pools/internal/search"
	"pools/internal/segment"
)

// Options configures a keyed Pool.
type Options struct {
	// Segments is the number of segments (and worker handles). Required.
	Segments int
	// Sweeps is the number of full ring sweeps a searching Get performs
	// before concluding the requested class is absent. Default 1.
	Sweeps int
	// Policies selects the pool's tunable decisions, exactly as
	// core.Options.Policies does for the plain pool; nil slots take paper
	// defaults (steal-half, ring sweep order, local placement, no
	// control). Victim orders apply when they implement policy.Ranker;
	// mailbox placements are ignored (the keyed pool has no directed-add
	// mailboxes) but policy.Director placements are honored.
	Policies policy.Set
	// Topology assigns hop distances to segment pairs. When set, every
	// remote probe a sweep performs is classified as near or cross-cluster
	// (see Pool.ProbeStats) — the measure the keyed locality experiments
	// report. It does not change the sweep order by itself; pair it with a
	// topology-aware Ranker order (policy.HierarchicalOrder or
	// policy.LocalityOrder) to make sweeps cluster-first.
	Topology numa.Topology
	// Steal selects how many elements a bucket steal transfers.
	//
	// Deprecated: consulted only when Policies.Steal is nil. Set
	// Policies.Steal instead (policy.Half{}, policy.One{}, ...), which
	// also admits the adaptive and per-handle policies.
	Steal policy.StealAmount
}

// Pool is a concurrent pool of key-classed elements. Create with New.
type Pool[K comparable, V any] struct {
	opts    Options
	pol     policy.Set      // resolved policies (no nil slots)
	dir     policy.Director // size-aware placement, if Policies.Place is one
	segs    []seg[K, V]
	handles []*Handle[K, V]
}

type seg[K comparable, V any] struct {
	mu      sync.Mutex
	buckets map[K]*segment.Deque[V]
	total   int
	_       [64]byte
}

// New creates a keyed pool.
func New[K comparable, V any](opts Options) (*Pool[K, V], error) {
	if opts.Segments < 1 {
		return nil, fmt.Errorf("keyed: Segments = %d, need >= 1", opts.Segments)
	}
	if opts.Sweeps == 0 {
		opts.Sweeps = 1
	}
	if opts.Sweeps < 0 {
		return nil, fmt.Errorf("keyed: Sweeps = %d, need >= 0", opts.Sweeps)
	}
	pol := opts.Policies
	if pol.Steal == nil {
		pol.Steal = opts.Steal // deprecated alias; nil is filled below
	}
	pol = pol.WithDefaults(search.Linear, false)
	p := &Pool[K, V]{opts: opts, pol: pol, segs: make([]seg[K, V], opts.Segments)}
	if d, ok := pol.Place.(policy.Director); ok {
		p.dir = d
	}
	var ranker policy.Ranker
	if r, ok := pol.Order.(policy.Ranker); ok {
		ranker = r
	}
	for i := range p.segs {
		p.segs[i].buckets = make(map[K]*segment.Deque[V])
	}
	p.handles = make([]*Handle[K, V], opts.Segments)
	for i := range p.handles {
		ctl, steal := pol.ForHandle(i)
		p.handles[i] = &Handle[K, V]{pool: p, id: i, ctl: ctl, steal: steal, lastFound: i}
		if ranker != nil {
			// Rank returns nil under victim-uniform costs: the handle
			// keeps the default ring sweep, matching the plain pool's
			// fallback to a paper algorithm.
			p.handles[i].rank = ranker.Rank(i, opts.Segments)
		}
	}
	return p, nil
}

// Segments returns the number of segments.
func (p *Pool[K, V]) Segments() int { return p.opts.Segments }

// Handle returns the handle for segment i.
func (p *Pool[K, V]) Handle(i int) *Handle[K, V] { return p.handles[i] }

// Len returns the total number of elements across all segments.
func (p *Pool[K, V]) Len() int {
	total := 0
	for i := range p.segs {
		s := &p.segs[i]
		s.mu.Lock()
		total += s.total
		s.mu.Unlock()
	}
	return total
}

// LenKey returns the number of elements of class k.
func (p *Pool[K, V]) LenKey(k K) int {
	total := 0
	for i := range p.segs {
		s := &p.segs[i]
		s.mu.Lock()
		if b := s.buckets[k]; b != nil {
			total += b.Len()
		}
		s.mu.Unlock()
	}
	return total
}

// Handle is one process's attachment to a keyed pool segment. A Handle
// may be used by only one goroutine at a time.
type Handle[K comparable, V any] struct {
	pool      *Pool[K, V]
	id        int
	ctl       policy.Controller  // this handle's controller (own instance under per-handle sets)
	steal     policy.StealAmount // this handle's steal amount
	rank      []int              // ranked sweep order (nil = ring order from lastFound)
	lastFound int                // segment where elements were last stolen

	// Probe accounting under Options.Topology (unsynchronized, like the
	// plain pool's per-handle stats; read via Pool.ProbeStats after the
	// workers join).
	remoteProbes int64
	crossProbes  int64
}

// ProbeStats sums every handle's remote-probe accounting: how many sweep
// probes touched another segment, and how many of those crossed a cluster
// boundary under Options.Topology (always 0 without one). Like Stats on
// the plain pool, call it only while no operations are in flight.
func (p *Pool[K, V]) ProbeStats() (remote, cross int64) {
	for _, h := range p.handles {
		remote += h.remoteProbes
		cross += h.crossProbes
	}
	return remote, cross
}

// ID returns the handle's segment index.
func (h *Handle[K, V]) ID() int { return h.id }

// observe feeds one remove outcome to this handle's controller, if any —
// the same feedback stream core.Handle reports, so adaptive and
// per-handle policies tune identically on the keyed pool.
func (h *Handle[K, V]) observe(fb policy.Feedback) {
	if h.ctl != nil {
		h.ctl.Observe(fb)
	}
}

// directTarget consults the Director placement (when the pool has one)
// for where an add of n elements should land.
func (h *Handle[K, V]) directTarget(n int) int {
	p := h.pool
	if p.dir == nil {
		return h.id
	}
	t := p.dir.Direct(h.id, len(p.segs), n, func(sIdx int) int {
		if sIdx != h.id {
			h.remoteProbes++
			if topo := p.opts.Topology; topo != nil && topo.Distance(h.id, sIdx) > 1 {
				h.crossProbes++
			}
		}
		s := &p.segs[sIdx]
		s.mu.Lock()
		l := s.total
		s.mu.Unlock()
		return l
	})
	if t < 0 || t >= len(p.segs) {
		return h.id
	}
	return t
}

// Put adds an element of class k to the local segment — or to the
// segment a Director placement selects. O(1) without a Director.
func (h *Handle[K, V]) Put(k K, v V) {
	s := &h.pool.segs[h.directTarget(1)]
	s.mu.Lock()
	b := s.buckets[k]
	if b == nil {
		b = &segment.Deque[V]{}
		s.buckets[k] = b
	}
	b.Add(v)
	s.total++
	s.mu.Unlock()
}

// PutAll adds every element of vs to one segment's class-k bucket (the
// local segment, or a Director placement's choice) under a single lock
// acquisition. PutAll of an empty slice is a no-op.
func (h *Handle[K, V]) PutAll(k K, vs []V) {
	if len(vs) == 0 {
		return
	}
	s := &h.pool.segs[h.directTarget(len(vs))]
	s.mu.Lock()
	b := s.buckets[k]
	if b == nil {
		b = &segment.Deque[V]{}
		s.buckets[k] = b
	}
	b.AddAll(vs)
	s.total += len(vs)
	s.mu.Unlock()
}

// GetN removes up to max elements of class k in one operation: it drains
// the local bucket under one lock when possible, otherwise sweeps the
// segments and surfaces the batch a policy-sized bucket steal transfers.
// It returns nil when max <= 0 or no element of class k was found within
// Options.Sweeps full sweeps (the key-miss fallback: absence is
// decidable, no livelock rule needed).
func (h *Handle[K, V]) GetN(k K, max int) []V {
	if max <= 0 {
		return nil
	}
	if out := h.takeLocalN(k, max); len(out) > 0 {
		h.observe(policy.Feedback{Got: len(out)})
		return out
	}
	var out []V
	stole := false
	found, probes := h.sweep(func(sIdx int) bool {
		if sIdx == h.id {
			out = h.takeLocalN(k, max)
		} else {
			out = h.stealNFrom(sIdx, k, max)
			stole = len(out) > 0
		}
		return len(out) > 0
	})
	h.observe(policy.Feedback{Stole: stole, Aborted: !found, Examined: probes, Got: len(out)})
	return out
}

// sweep visits segments — in the victim order's ranked preference when
// the pool has one, otherwise around the ring from where elements were
// last found — for Options.Sweeps full passes, calling probe on each
// segment (including the local one) until probe reports success. A
// successful remote probe under ring order updates lastFound so the next
// search starts there; ranked orders always restart cheapest-first. It
// reports whether any probe succeeded and how many probes were spent —
// the shared walk behind Get, GetAny, and GetN.
func (h *Handle[K, V]) sweep(probe func(sIdx int) bool) (bool, int) {
	n := len(h.pool.segs)
	topo := h.pool.opts.Topology
	probes := n * h.pool.opts.Sweeps
	for i := 0; i < probes; i++ {
		var sIdx int
		if h.rank != nil {
			sIdx = h.rank[i%n]
		} else {
			sIdx = h.lastFound + i
			for sIdx >= n {
				sIdx -= n
			}
		}
		if sIdx != h.id {
			h.remoteProbes++
			if topo != nil && topo.Distance(h.id, sIdx) > 1 {
				h.crossProbes++
			}
		}
		if probe(sIdx) {
			if sIdx != h.id && h.rank == nil {
				h.lastFound = sIdx
			}
			return true, i + 1
		}
	}
	return false, probes
}

// Get removes an element of class k: locally when possible, otherwise by
// sweeping the segments and stealing a policy-sized share of the first
// non-empty k-bucket. It returns false after Options.Sweeps full sweeps
// found no element of class k.
func (h *Handle[K, V]) Get(k K) (V, bool) {
	// Local fast path.
	if v, ok := h.takeLocal(k); ok {
		h.observe(policy.Feedback{Got: 1})
		return v, true
	}
	// Search from where elements were last found (or cheapest-first).
	var out V
	stole := false
	found, probes := h.sweep(func(sIdx int) bool {
		var ok bool
		if sIdx == h.id {
			out, ok = h.takeLocal(k)
		} else {
			out, ok = h.stealFrom(sIdx, k)
			stole = ok
		}
		return ok
	})
	got := 0
	if found {
		got = 1
	}
	h.observe(policy.Feedback{Stole: stole, Aborted: !found, Examined: probes, Got: got})
	return out, found
}

// GetAny removes an element of any class, preferring local ones. It
// returns false when the pool appears empty after the configured sweeps.
func (h *Handle[K, V]) GetAny() (K, V, bool) {
	if k, v, ok := h.takeLocalAny(); ok {
		h.observe(policy.Feedback{Got: 1})
		return k, v, ok
	}
	var outK K
	var outV V
	stole := false
	found, probes := h.sweep(func(sIdx int) bool {
		var ok bool
		if sIdx == h.id {
			outK, outV, ok = h.takeLocalAny()
		} else {
			outK, outV, ok = h.stealAnyFrom(sIdx)
			stole = ok
		}
		return ok
	})
	got := 0
	if found {
		got = 1
	}
	h.observe(policy.Feedback{Stole: stole, Aborted: !found, Examined: probes, Got: got})
	return outK, outV, found
}

// takeLocal pops a class-k element from the local segment.
func (h *Handle[K, V]) takeLocal(k K) (V, bool) {
	s := &h.pool.segs[h.id]
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buckets[k]
	if b == nil {
		var zero V
		return zero, false
	}
	v, ok := b.Remove()
	if ok {
		s.total--
		if b.Empty() {
			delete(s.buckets, k)
		}
	}
	return v, ok
}

// takeLocalN pops up to max class-k elements from the local segment.
func (h *Handle[K, V]) takeLocalN(k K, max int) []V {
	s := &h.pool.segs[h.id]
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buckets[k]
	if b == nil {
		return nil
	}
	out := b.RemoveN(max)
	s.total -= len(out)
	if b.Empty() {
		delete(s.buckets, k)
	}
	return out
}

// stealNFrom steals the policy-chosen share of segment sIdx's class-k
// bucket into the local segment (the StealAmount sees max as the
// requester's appetite) and returns up to max of the transferred
// elements, leaving the rest parked locally.
func (h *Handle[K, V]) stealNFrom(sIdx int, k K, max int) []V {
	p := h.pool
	a, b := sIdx, h.id
	if a > b {
		a, b = b, a
	}
	p.segs[a].mu.Lock()
	p.segs[b].mu.Lock()
	defer p.segs[a].mu.Unlock()
	defer p.segs[b].mu.Unlock()

	src := &p.segs[sIdx]
	srcB := src.buckets[k]
	if srcB == nil || srcB.Empty() {
		return nil
	}
	dst := &p.segs[h.id]
	dstB := dst.buckets[k]
	if dstB == nil {
		dstB = &segment.Deque[V]{}
		dst.buckets[k] = dstB
	}
	moved := srcB.TakeInto(dstB, h.steal.Amount(srcB.Len(), max))
	src.total -= moved
	dst.total += moved
	if srcB.Empty() {
		delete(src.buckets, k)
	}
	out := dstB.RemoveN(max)
	dst.total -= len(out)
	if dstB.Empty() {
		delete(dst.buckets, k)
	}
	return out
}

// takeLocalAny pops an element of any class from the local segment.
func (h *Handle[K, V]) takeLocalAny() (K, V, bool) {
	s := &h.pool.segs[h.id]
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, b := range s.buckets {
		if v, ok := b.Remove(); ok {
			s.total--
			if b.Empty() {
				delete(s.buckets, k)
			}
			return k, v, true
		}
	}
	var zeroK K
	var zeroV V
	return zeroK, zeroV, false
}

// stealFrom steals half of segment sIdx's class-k bucket into the local
// segment and returns one element.
func (h *Handle[K, V]) stealFrom(sIdx int, k K) (V, bool) {
	out := h.stealNFrom(sIdx, k, 1)
	if len(out) == 0 {
		var zero V
		return zero, false
	}
	return out[0], true
}

// stealAnyFrom steals the policy-chosen share of some non-empty bucket of
// segment sIdx.
func (h *Handle[K, V]) stealAnyFrom(sIdx int) (K, V, bool) {
	var zeroK K
	var zeroV V
	p := h.pool
	a, b := sIdx, h.id
	if a > b {
		a, b = b, a
	}
	p.segs[a].mu.Lock()
	p.segs[b].mu.Lock()
	defer p.segs[a].mu.Unlock()
	defer p.segs[b].mu.Unlock()

	src := &p.segs[sIdx]
	for k, srcB := range src.buckets {
		if srcB.Empty() {
			continue
		}
		dst := &p.segs[h.id]
		dstB := dst.buckets[k]
		if dstB == nil {
			dstB = &segment.Deque[V]{}
			dst.buckets[k] = dstB
		}
		moved := srcB.TakeInto(dstB, h.steal.Amount(srcB.Len(), 1))
		src.total -= moved
		dst.total += moved
		if srcB.Empty() {
			delete(src.buckets, k)
		}
		v, _ := dstB.Remove()
		dst.total--
		if dstB.Empty() {
			delete(dst.buckets, k)
		}
		return k, v, true
	}
	return zeroK, zeroV, false
}
