// Package keyed answers the paper's second Section 5 question: "How might
// pools be extended to handle distinguishable elements?"
//
// A keyed pool partitions elements by segment (for locality, exactly like
// the plain pool) and, within each segment, by a comparable key class.
// Processes may remove an element of a *specific* class or of any class.
// Local operations stay O(1); when the local segment has no element of
// the requested class, the process walks the segment ring and steals half
// of the first matching bucket it finds — the plain pool's linear
// algorithm lifted to buckets. The walk itself is the shared search-steal
// protocol from internal/engine: the keyed pool supplies a bucket-probing
// substrate and a bounded termination rule, and the engine drives the
// same searcher/feedback loop the plain pool and the simulator run.
//
// Unlike the plain pool, a keyed removal knows exactly what it is looking
// for, so emptiness is decidable without the all-searching livelock rule:
// a Get that completes Options.Sweeps full passes without finding its
// class returns false (engine.Bounded). (A concurrent add of that class
// can race past a sweep, exactly as it can in the paper's pool; callers
// retry if their protocol expects late arrivals.)
//
// The keyed pool consults the same policy.Set as the plain pool
// (Options.Policies): the StealAmount sizes bucket steals, a VictimOrder
// that implements policy.Ranker (policy.LocalityOrder,
// policy.HierarchicalOrder) reorders the ring sweep cheapest-victim-
// first, a policy.Director placement steers adds toward the emptiest
// segment, and a Controller — per-handle or pool-wide — tunes from each
// remove's outcome.
package keyed

import (
	"fmt"
	"sync"
	"time"

	"pools/internal/engine"
	"pools/internal/metrics"
	"pools/internal/numa"
	"pools/internal/policy"
	"pools/internal/search"
	"pools/internal/segment"
	"pools/internal/trace"
)

// Options configures a keyed Pool.
type Options struct {
	// Segments is the number of segments (and worker handles). Required.
	Segments int
	// Sweeps is the number of full ring sweeps a searching Get performs
	// before concluding the requested class is absent. Default 1.
	Sweeps int
	// Policies selects the pool's tunable decisions, exactly as
	// core.Options.Policies does for the plain pool; nil slots take paper
	// defaults (steal-half, ring sweep order, local placement, no
	// control). Victim orders apply when they implement policy.Ranker;
	// mailbox placements are ignored (the keyed pool has no directed-add
	// mailboxes) but policy.Director placements are honored.
	Policies policy.Set
	// Topology assigns hop distances to segment pairs. When set, every
	// remote probe a sweep performs is classified as near or cross-cluster
	// (see Pool.ProbeStats) — the measure the keyed locality experiments
	// report. It does not change the sweep order by itself; pair it with a
	// topology-aware Ranker order (policy.HierarchicalOrder or
	// policy.LocalityOrder) to make sweeps cluster-first.
	Topology numa.Topology
	// Steal selects how many elements a bucket steal transfers.
	//
	// Deprecated: consulted only when Policies.Steal is nil. Set
	// Policies.Steal instead (policy.Half{}, policy.One{}, ...), which
	// also admits the adaptive and per-handle policies.
	Steal policy.StealAmount
	// TraceBuf, when positive, attaches a flight recorder of that many
	// events to every handle (internal/trace): sweep probes, bucket
	// reserve/transfer edges, and termination verdicts, timestamped in
	// microseconds since pool creation. Zero disables tracing.
	TraceBuf int
}

// Pool is a concurrent pool of key-classed elements. Create with New.
type Pool[K comparable, V any] struct {
	opts    Options
	pol     policy.Set // resolved policies (no nil slots)
	segs    []seg[K, V]
	handles []*Handle[K, V]
	members *engine.Membership // dynamic membership: alive/victim bits + epoch
	epoch   time.Time          // flight-recorder time zero (tracing only)
}

type seg[K comparable, V any] struct {
	mu      sync.Mutex
	buckets map[K]*segment.Deque[V]
	total   int
	// spare caches the most recently emptied bucket's deque (buffer and
	// all) for reuse, so a key that drains and refills — the steady state
	// of a hot class — does not allocate a fresh bucket per cycle.
	spare *segment.Deque[V]
	_     [64]byte
}

// bucket returns segment s's class-k bucket, creating it (from the spare
// cache when possible) if absent. Callers hold s.mu.
func (s *seg[K, V]) bucket(k K) *segment.Deque[V] {
	b := s.buckets[k]
	if b == nil {
		if s.spare != nil {
			b = s.spare
			s.spare = nil
		} else {
			b = &segment.Deque[V]{}
		}
		s.buckets[k] = b
	}
	return b
}

// drop removes class k's emptied bucket from the map, caching its deque
// for reuse. Callers hold s.mu and guarantee b is empty.
func (s *seg[K, V]) drop(k K, b *segment.Deque[V]) {
	delete(s.buckets, k)
	s.spare = b
}

// New creates a keyed pool.
func New[K comparable, V any](opts Options) (*Pool[K, V], error) {
	if opts.Segments < 1 {
		return nil, fmt.Errorf("keyed: Segments = %d, need >= 1", opts.Segments)
	}
	if opts.Sweeps == 0 {
		opts.Sweeps = 1
	}
	if opts.Sweeps < 0 {
		return nil, fmt.Errorf("keyed: Sweeps = %d, need >= 0", opts.Sweeps)
	}
	if opts.TraceBuf < 0 {
		return nil, fmt.Errorf("keyed: TraceBuf = %d, need >= 0", opts.TraceBuf)
	}
	pol := opts.Policies
	if pol.Steal == nil {
		pol.Steal = opts.Steal // deprecated alias; nil is filled below
	}
	pol = pol.WithDefaults(search.Linear, false)
	p := &Pool[K, V]{opts: opts, pol: pol, segs: make([]seg[K, V], opts.Segments)}
	p.members = engine.NewMembership(opts.Segments)
	var ranker policy.Ranker
	if r, ok := pol.Order.(policy.Ranker); ok {
		ranker = r
	}
	for i := range p.segs {
		p.segs[i].buckets = make(map[K]*segment.Deque[V])
	}
	p.handles = make([]*Handle[K, V], opts.Segments)
	for i := range p.handles {
		h := &Handle[K, V]{pool: p, id: i}
		h.sub.members = p.members
		h.sub.id = i
		// The sweep is a search.Searcher like every other substrate's:
		// the ranked preference when the victim order offers one, the
		// ring from where elements were last found otherwise. Rank
		// returns nil under victim-uniform costs: the handle keeps the
		// ring sweep, matching the plain pool's fallback to a paper
		// algorithm.
		var srch search.Searcher
		if ranker != nil {
			if rank := ranker.Rank(i, opts.Segments); rank != nil {
				srch = search.NewOrderedSearcher(rank)
			}
		}
		if srch == nil {
			srch = search.NewLinearSearcher(i)
		}
		if opts.TraceBuf > 0 {
			if p.epoch.IsZero() {
				p.epoch = time.Now()
			}
			h.tr = trace.NewRecorder(i, opts.TraceBuf, p.traceClock)
		}
		h.eng = engine.New(engine.Config{
			Self:      i,
			Segments:  opts.Segments,
			Policies:  pol,
			Topology:  opts.Topology,
			Stats:     &h.stats,
			Searcher:  srch,
			SizeProbe: h.sizeProbe(),
			Tracer:    h.tr,
			Members:   p.members,
		}, &h.sub, engine.NewBounded(opts.Segments*opts.Sweeps))
		h.steal = h.eng.StealAmount()
		p.handles[i] = h
	}
	return p, nil
}

// traceClock is the flight recorder's wall clock: microseconds since
// pool creation, shared by every handle so their tracks align.
func (p *Pool[K, V]) traceClock() int64 { return time.Since(p.epoch).Microseconds() }

// Tracer returns segment i's flight recorder, nil unless the pool was
// built with Options.TraceBuf > 0.
func (p *Pool[K, V]) Tracer(i int) *trace.Recorder { return p.handles[i].tr }

// Timelines snapshots every handle's flight recorder for export, nil
// when tracing is disabled.
func (p *Pool[K, V]) Timelines() []trace.Timeline {
	if p.opts.TraceBuf <= 0 {
		return nil
	}
	recs := make([]*trace.Recorder, len(p.handles))
	for i, h := range p.handles {
		recs[i] = h.tr
	}
	return trace.Collect(recs...)
}

// Segments returns the number of segments.
func (p *Pool[K, V]) Segments() int { return p.opts.Segments }

// Handle returns the handle for segment i.
func (p *Pool[K, V]) Handle(i int) *Handle[K, V] { return p.handles[i] }

// Len returns the total number of elements across all segments.
func (p *Pool[K, V]) Len() int {
	total := 0
	for i := range p.segs {
		s := &p.segs[i]
		s.mu.Lock()
		total += s.total
		s.mu.Unlock()
	}
	return total
}

// LenKey returns the number of elements of class k.
func (p *Pool[K, V]) LenKey(k K) int {
	total := 0
	for i := range p.segs {
		s := &p.segs[i]
		s.mu.Lock()
		if b := s.buckets[k]; b != nil {
			total += b.Len()
		}
		s.mu.Unlock()
	}
	return total
}

// Kill removes handle i from the pool's membership at runtime. With
// drain, segment i's buckets are redistributed key-preserving across the
// surviving victim segments and the segment leaves the victim set (adds
// aimed at it redirect, sweeps skip it); without drain the segment stays
// a steal-only victim whose reserve drains through the survivors'
// steals. Kill refuses (returning false) to remove the last live
// member, or a member already dead. The keyed pool's Bounded termination
// never certifies exact emptiness, so unlike the plain pool no
// transfer-wait is needed — a sweep racing the redistribution at worst
// misses a class this pass and retries, the documented keyed semantics.
func (p *Pool[K, V]) Kill(i int, drain bool) bool {
	if !p.members.Leave(i, !drain) {
		return false
	}
	if h := p.handles[i]; h.tr != nil {
		d := int32(0)
		if drain {
			d = 1
		}
		h.tr.Record(trace.MemberLeave, int32(i), d)
	}
	if drain {
		p.redistribute(i)
	}
	return true
}

// redistribute drains segment i's buckets into the surviving victim
// segments, round-robin by bucket from i's ring successor so one
// survivor does not absorb the whole segment, and bumps the membership
// epoch once the elements have landed.
func (p *Pool[K, V]) redistribute(i int) {
	s := &p.segs[i]
	s.mu.Lock()
	buckets := s.buckets
	moved := s.total
	s.buckets = make(map[K]*segment.Deque[V])
	s.total = 0
	s.spare = nil
	s.mu.Unlock()
	n := len(p.segs)
	next := i
	for k, b := range buckets {
		elems := b.TakeOut(nil, b.Len())
		if len(elems) == 0 {
			continue
		}
		t := -1
		for off := 1; off <= n; off++ {
			c := (next + off) % n
			if p.members.Victim(c) {
				t = c
				break
			}
		}
		if t < 0 {
			t = i // unreachable: Leave keeps at least one live (victim) member
		}
		next = t
		dst := &p.segs[t]
		dst.mu.Lock()
		dst.bucket(k).AddAll(elems)
		dst.total += len(elems)
		dst.mu.Unlock()
	}
	e := p.members.Bump()
	if h := p.handles[i]; h.tr != nil {
		h.tr.Record(trace.EpochBump, int32(e&0x7fffffff), int32(moved))
	}
}

// Revive re-admits a killed handle: its segment rejoins the victim set
// and alive set, and the membership epoch bumps so in-flight sweeps see
// the topology change. Reviving a live member returns false.
func (p *Pool[K, V]) Revive(i int) bool {
	if !p.members.Join(i) {
		return false
	}
	if h := p.handles[i]; h.tr != nil {
		h.tr.Record(trace.MemberJoin, int32(i), 0)
	}
	return true
}

// Alive reports whether handle i is a live member.
func (p *Pool[K, V]) Alive(i int) bool { return p.members.Alive(i) }

// Victim reports whether segment i is in the victim set.
func (p *Pool[K, V]) Victim(i int) bool { return p.members.Victim(i) }

// Epoch returns the current membership epoch.
func (p *Pool[K, V]) Epoch() uint64 { return p.members.Epoch() }

// Handle is one process's attachment to a keyed pool segment. A Handle
// may be used by only one goroutine at a time. Its searches run through
// the shared engine: the handle supplies bucket probes, the engine owns
// the sweep order, the probe budget, and the feedback plumbing.
type Handle[K comparable, V any] struct {
	pool     *Pool[K, V]
	id       int
	eng      *engine.Engine
	steal    policy.StealAmount // resolved steal amount, cached off the engine for the probe loop
	sub      keyedSubstrate
	stealBuf []V             // reused bucket-steal buffer (reserve under the victim's lock, deposit outside)
	tr       *trace.Recorder // flight recorder (nil unless Options.TraceBuf > 0)

	// stats carries the remote-probe accounting under Options.Topology
	// (unsynchronized, like the plain pool's per-handle stats; read via
	// Pool.ProbeStats after the workers join).
	stats metrics.PoolStats
}

// ProbeStats sums every handle's remote-probe accounting: how many sweep
// probes touched another segment, and how many of those crossed a cluster
// boundary under Options.Topology (always 0 without one). Like Stats on
// the plain pool, call it only while no operations are in flight.
func (p *Pool[K, V]) ProbeStats() (remote, cross int64) {
	for _, h := range p.handles {
		remote += h.stats.RemoteProbes
		cross += h.stats.CrossProbes
	}
	return remote, cross
}

// ID returns the handle's segment index.
func (h *Handle[K, V]) ID() int { return h.id }

// observe feeds one remove outcome to this handle's controller, if any —
// the same feedback stream core.Handle reports, so adaptive and
// per-handle policies tune identically on the keyed pool.
func (h *Handle[K, V]) observe(fb policy.Feedback) { h.eng.Observe(fb) }

// sizeProbe builds the Director size-probe closure once per handle, so
// the add hot path under a size-aware placement does not allocate a
// closure per Put.
func (h *Handle[K, V]) sizeProbe() func(s int) int {
	return func(sIdx int) int {
		h.eng.NoteProbe(sIdx)
		s := &h.pool.segs[sIdx]
		s.mu.Lock()
		l := s.total
		s.mu.Unlock()
		return l
	}
}

// placeTarget redirects a deposit aimed at segment s to a live victim
// when s has left the victim set (drain-killed), so a dead member's
// segment stays empty and sweeps may skip it. The common case — s still
// a victim — is one atomic load.
func (p *Pool[K, V]) placeTarget(s int) int {
	if p.members.Victim(s) {
		return s
	}
	if t := p.members.FallbackVictim(s); t >= 0 {
		return t
	}
	return s
}

// Put adds an element of class k to the local segment — or to the
// segment a Director placement selects. O(1) without a Director.
func (h *Handle[K, V]) Put(k K, v V) {
	s := &h.pool.segs[h.pool.placeTarget(h.eng.DirectTarget(1))]
	s.mu.Lock()
	s.bucket(k).Add(v)
	s.total++
	s.mu.Unlock()
}

// PutAll adds every element of vs to one segment's class-k bucket (the
// local segment, or a Director placement's choice) under a single lock
// acquisition. PutAll of an empty slice is a no-op.
func (h *Handle[K, V]) PutAll(k K, vs []V) {
	if len(vs) == 0 {
		return
	}
	s := &h.pool.segs[h.pool.placeTarget(h.eng.DirectTarget(len(vs)))]
	s.mu.Lock()
	s.bucket(k).AddAll(vs)
	s.total += len(vs)
	s.mu.Unlock()
}

// search runs one engine-driven sweep with the given probe, returning the
// search result. probe reports the number of elements it obtained from a
// segment (0 = nothing of interest there).
func (h *Handle[K, V]) search(want int, probe func(sIdx int) int) search.Result {
	h.sub.probe = probe
	res := h.eng.Search(want)
	h.sub.probe = nil
	return res
}

// GetN removes up to max elements of class k in one operation: it drains
// the local bucket under one lock when possible, otherwise sweeps the
// segments and surfaces the batch a policy-sized bucket steal transfers.
// It returns nil when max <= 0 or no element of class k was found within
// Options.Sweeps full sweeps (the key-miss fallback: absence is
// decidable, no livelock rule needed).
func (h *Handle[K, V]) GetN(k K, max int) []V {
	if max <= 0 {
		return nil
	}
	if out := h.takeLocalN(k, max); len(out) > 0 {
		h.observe(policy.Feedback{Got: len(out)})
		return out
	}
	var out []V
	stole := false
	res := h.search(max, func(sIdx int) int {
		if sIdx == h.id {
			out = h.takeLocalN(k, max)
		} else {
			out = h.stealNFrom(sIdx, k, max)
			stole = len(out) > 0
		}
		return len(out)
	})
	h.observe(policy.Feedback{Stole: stole, Aborted: res.Got == 0, Examined: res.Examined, Got: len(out)})
	return out
}

// Get removes an element of class k: locally when possible, otherwise by
// sweeping the segments and stealing a policy-sized share of the first
// non-empty k-bucket. It returns false after Options.Sweeps full sweeps
// found no element of class k.
func (h *Handle[K, V]) Get(k K) (V, bool) {
	// Local fast path.
	if v, ok := h.takeLocal(k); ok {
		h.observe(policy.Feedback{Got: 1})
		return v, true
	}
	// Search from where elements were last found (or in the victim
	// order's ranked preference).
	var out V
	stole := false
	res := h.search(1, func(sIdx int) int {
		var ok bool
		if sIdx == h.id {
			out, ok = h.takeLocal(k)
		} else {
			out, ok = h.stealFrom(sIdx, k)
			stole = ok
		}
		if ok {
			return 1
		}
		return 0
	})
	found := res.Got > 0
	got := 0
	if found {
		got = 1
	}
	h.observe(policy.Feedback{Stole: stole, Aborted: !found, Examined: res.Examined, Got: got})
	return out, found
}

// GetAny removes an element of any class, preferring local ones. It
// returns false when the pool appears empty after the configured sweeps.
func (h *Handle[K, V]) GetAny() (K, V, bool) {
	if k, v, ok := h.takeLocalAny(); ok {
		h.observe(policy.Feedback{Got: 1})
		return k, v, ok
	}
	var outK K
	var outV V
	stole := false
	res := h.search(1, func(sIdx int) int {
		var ok bool
		if sIdx == h.id {
			outK, outV, ok = h.takeLocalAny()
		} else {
			outK, outV, ok = h.stealAnyFrom(sIdx)
			stole = ok
		}
		if ok {
			return 1
		}
		return 0
	})
	found := res.Got > 0
	got := 0
	if found {
		got = 1
	}
	h.observe(policy.Feedback{Stole: stole, Aborted: !found, Examined: res.Examined, Got: got})
	return outK, outV, found
}

// takeLocal pops a class-k element from the local segment.
func (h *Handle[K, V]) takeLocal(k K) (V, bool) {
	s := &h.pool.segs[h.id]
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buckets[k]
	if b == nil {
		var zero V
		return zero, false
	}
	v, ok := b.Remove()
	if ok {
		s.total--
		if b.Empty() {
			s.drop(k, b)
		}
	}
	return v, ok
}

// takeLocalN pops up to max class-k elements from the local segment.
func (h *Handle[K, V]) takeLocalN(k K, max int) []V {
	s := &h.pool.segs[h.id]
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buckets[k]
	if b == nil {
		return nil
	}
	out := b.RemoveN(max)
	s.total -= len(out)
	if b.Empty() {
		s.drop(k, b)
	}
	return out
}

// stealNFrom steals the policy-chosen share of segment sIdx's class-k
// bucket (the StealAmount sees max as the requester's appetite) and
// returns up to max of the transferred elements, parking the rest in the
// local segment. The share is reserved into the handle's private buffer
// under the victim's lock alone and deposited after unlocking, so a
// bucket steal never holds two segment locks at once.
func (h *Handle[K, V]) stealNFrom(sIdx int, k K, max int) []V {
	p := h.pool
	src := &p.segs[sIdx]
	src.mu.Lock()
	srcB := src.buckets[k]
	if srcB == nil || srcB.Empty() {
		src.mu.Unlock()
		return nil
	}
	buf := srcB.TakeOut(h.stealBuf[:0], h.steal.Amount(srcB.Len(), max))
	src.total -= len(buf)
	if srcB.Empty() {
		src.drop(k, srcB)
	}
	src.mu.Unlock()
	if h.tr != nil {
		h.tr.Record(trace.ReserveTransfer, int32(sIdx), int32(len(buf)))
	}

	moved := len(buf)
	n := moved
	if n > max {
		n = max
	}
	// The caller receives the most recently transferred elements (the
	// order a bucket pop would surface them); the surplus parks locally.
	out := make([]V, n)
	for i := 0; i < n; i++ {
		out[i] = buf[moved-1-i]
	}
	if moved > n {
		dst := &p.segs[p.placeTarget(h.id)]
		dst.mu.Lock()
		dst.bucket(k).AddAll(buf[:moved-n])
		dst.total += moved - n
		dst.mu.Unlock()
	}
	clear(buf) // release element references for GC; the buffer itself is kept
	h.stealBuf = buf[:0]
	return out
}

// takeLocalAny pops an element of any class from the local segment.
func (h *Handle[K, V]) takeLocalAny() (K, V, bool) {
	s := &h.pool.segs[h.id]
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, b := range s.buckets {
		if v, ok := b.Remove(); ok {
			s.total--
			if b.Empty() {
				s.drop(k, b)
			}
			return k, v, true
		}
	}
	var zeroK K
	var zeroV V
	return zeroK, zeroV, false
}

// stealFrom steals the policy-chosen share of segment sIdx's class-k
// bucket into the local segment and returns one element.
func (h *Handle[K, V]) stealFrom(sIdx int, k K) (V, bool) {
	out := h.stealNFrom(sIdx, k, 1)
	if len(out) == 0 {
		var zero V
		return zero, false
	}
	return out[0], true
}

// stealAnyFrom steals the policy-chosen share of some non-empty bucket of
// segment sIdx, returning one element and parking the rest locally.
func (h *Handle[K, V]) stealAnyFrom(sIdx int) (K, V, bool) {
	p := h.pool
	src := &p.segs[sIdx]
	src.mu.Lock()
	var key K
	var srcB *segment.Deque[V]
	for k, b := range src.buckets {
		if !b.Empty() {
			key, srcB = k, b
			break
		}
	}
	if srcB == nil {
		src.mu.Unlock()
		var zeroK K
		var zeroV V
		return zeroK, zeroV, false
	}
	buf := srcB.TakeOut(h.stealBuf[:0], h.steal.Amount(srcB.Len(), 1))
	src.total -= len(buf)
	if srcB.Empty() {
		src.drop(key, srcB)
	}
	src.mu.Unlock()
	if h.tr != nil {
		h.tr.Record(trace.ReserveTransfer, int32(sIdx), int32(len(buf)))
	}

	moved := len(buf)
	v := buf[moved-1]
	if moved > 1 {
		dst := &p.segs[p.placeTarget(h.id)]
		dst.mu.Lock()
		dst.bucket(key).AddAll(buf[:moved-1])
		dst.total += moved - 1
		dst.mu.Unlock()
	}
	clear(buf)
	h.stealBuf = buf[:0]
	return key, v, true
}

// keyedSubstrate adapts a keyed handle to engine.Substrate: each remove
// operation installs its bucket probe (class-specific or any-class), and
// the engine drives it in the sweep order. The keyed pool needs no
// Enter/Exit bookkeeping — emptiness is decidable per class, so there is
// no lookers count to maintain — and no hard stops.
type keyedSubstrate struct {
	probe   func(sIdx int) int
	members *engine.Membership
	id      int
}

var _ engine.Substrate = (*keyedSubstrate)(nil)

// Probe implements engine.Substrate.
func (s *keyedSubstrate) Probe(sIdx, _ int) int { return s.probe(sIdx) }

// Stopped implements engine.Substrate. A killed handle's in-flight
// sweep aborts at the next stop check instead of walking the ring on a
// dead member's behalf.
func (s *keyedSubstrate) Stopped() bool { return !s.members.Alive(s.id) }

// Enter implements engine.Substrate.
func (s *keyedSubstrate) Enter(int) {}

// Exit implements engine.Substrate.
func (s *keyedSubstrate) Exit() {}
