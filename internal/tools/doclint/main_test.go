package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLintDir checks the linter flags exactly the undocumented exported
// declarations: documented and unexported ones pass, grouped const
// blocks are covered by their group comment, and test files are skipped.
func TestLintDir(t *testing.T) {
	dir := t.TempDir()
	src := `package x

// Documented is fine.
func Documented() {}

func Exported() {}

type T struct{}

// M is documented.
func (T) M() {}

func (T) N() {}

const C = 1

// Grouped constants share the group comment.
const (
	D = 2
	E = 3
)

var V = 4

func unexported() {}
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Undocumented exports in test files must not be flagged.
	if err := os.WriteFile(filepath.Join(dir, "a_test.go"), []byte("package x\n\nfunc TestHelperExported() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := lintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"Exported": false, "T": false, "N": false, "C": false, "V": false}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(findings), len(want), strings.Join(findings, "\n"))
	}
	for _, f := range findings {
		matched := false
		for name := range want {
			if strings.Contains(f, " "+name+" ") {
				want[name] = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("undocumented %s not flagged", name)
		}
	}
}

// TestLintDirError checks unparsable input surfaces as an error.
func TestLintDirError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte("not go"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lintDir(dir); err == nil {
		t.Fatal("lintDir accepted unparsable source")
	}
}
