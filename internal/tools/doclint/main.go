// Command doclint enforces the repo's godoc contract: every exported
// identifier in the given packages must carry a doc comment. It is the
// revive-style exported-comment check without the external dependency,
// run by `make docs-check` over the policy and numa packages (whose doc
// comments double as the paper-section cross-reference).
//
// Usage: doclint <pkg-dir> [<pkg-dir>...]
//
// Exits non-zero listing every exported declaration that lacks a doc
// comment. Test files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <pkg-dir> [<pkg-dir>...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		findings, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifiers lack doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses one package directory and returns a finding line for
// every exported declaration without a doc comment.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return out, nil
}

// lintGenDecl checks type, const, and var declarations. A doc comment on
// the grouped declaration covers its members (the Go convention for
// const blocks); an undocumented group requires per-spec comments.
func lintGenDecl(d *ast.GenDecl, report func(pos token.Pos, kind, name string)) {
	kind := map[token.Token]string{token.TYPE: "type", token.CONST: "const", token.VAR: "var"}[d.Tok]
	if kind == "" {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), kind, s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(s.Pos(), kind, name.Name)
				}
			}
		}
	}
}
