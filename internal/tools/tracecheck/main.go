// Command tracecheck validates a Chrome trace-event JSON file against
// the schema the flight-recorder exporter (internal/trace.ChromeJSON)
// commits to: a {"traceEvents": [...]} document whose events all carry a
// name, a known phase, and pid/tid coordinates; complete ("X") slices
// carry non-negative timestamps and durations; and every referenced
// track is introduced by a thread_name metadata record. CI's trace-smoke
// target runs it over a fresh `poolbench -trace` dump so a drifting
// exporter fails the build rather than silently producing files Perfetto
// rejects.
//
// Usage:
//
//	tracecheck file.json...
//
// Exits non-zero with one line per violation.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// event mirrors the exporter's wire format loosely: unknown fields are
// ignored, missing ones are validated explicitly.
type event struct {
	Name *string        `json:"name"`
	Ph   *string        `json:"ph"`
	TS   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

type document struct {
	TraceEvents []event `json:"traceEvents"`
}

// check validates one file and returns its violations.
func check(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{err.Error()}
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		return []string{fmt.Sprintf("%s: not valid JSON: %v", path, err)}
	}
	var errs []string
	bad := func(i int, format string, a ...any) {
		errs = append(errs, fmt.Sprintf("%s: event %d: %s", path, i, fmt.Sprintf(format, a...)))
	}
	if len(doc.TraceEvents) == 0 {
		return []string{fmt.Sprintf("%s: traceEvents is empty or missing", path)}
	}
	// Tracks named by metadata, then tracks used by real events.
	named := map[[2]int]bool{}
	used := map[[2]int]bool{}
	sawThreadName := false
	for i, ev := range doc.TraceEvents {
		if ev.Name == nil || *ev.Name == "" {
			bad(i, "missing name")
			continue
		}
		if ev.Ph == nil {
			bad(i, "%q: missing ph", *ev.Name)
			continue
		}
		if ev.Pid == nil || ev.Tid == nil {
			bad(i, "%q: missing pid/tid", *ev.Name)
			continue
		}
		track := [2]int{*ev.Pid, *ev.Tid}
		switch *ev.Ph {
		case "M":
			if *ev.Name == "thread_name" {
				sawThreadName = true
				named[track] = true
			}
		case "X":
			used[track] = true
			if ev.TS == nil || *ev.TS < 0 {
				bad(i, "%q: X slice needs ts >= 0", *ev.Name)
			}
			if ev.Dur == nil || *ev.Dur < 0 {
				bad(i, "%q: X slice needs dur >= 0", *ev.Name)
			}
		case "i":
			used[track] = true
			if ev.TS == nil || *ev.TS < 0 {
				bad(i, "%q: instant needs ts >= 0", *ev.Name)
			}
			if ev.S != "" && ev.S != "t" && ev.S != "p" && ev.S != "g" {
				bad(i, "%q: instant scope %q not one of t/p/g", *ev.Name, ev.S)
			}
		default:
			bad(i, "%q: unknown phase %q (want X, i, or M)", *ev.Name, *ev.Ph)
		}
	}
	if !sawThreadName {
		errs = append(errs, fmt.Sprintf("%s: no thread_name metadata; tracks would be anonymous", path))
	}
	for track := range used {
		if !named[track] {
			errs = append(errs, fmt.Sprintf("%s: track pid=%d tid=%d has events but no thread_name metadata",
				path, track[0], track[1]))
		}
	}
	return errs
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck file.json...")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		errs := check(path)
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, e)
		}
		if len(errs) > 0 {
			failed = true
		} else {
			fmt.Printf("%s: ok\n", path)
		}
	}
	if failed {
		os.Exit(1)
	}
}
