package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pools/internal/trace"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckAcceptsExporterOutput(t *testing.T) {
	tls := []trace.Timeline{{Handle: 0, Events: []trace.Event{
		{TS: 1, Kind: trace.SearchBegin, Arg1: 1},
		{TS: 4, Kind: trace.ProbeCross, Arg1: 2, Arg2: 3},
		{TS: 9, Kind: trace.SearchEnd, Arg1: 3, Arg2: 2},
	}}}
	var buf bytes.Buffer
	if err := trace.ChromeJSON(&buf, tls); err != nil {
		t.Fatal(err)
	}
	path := writeFile(t, "good.json", buf.String())
	if errs := check(path); len(errs) != 0 {
		t.Errorf("exporter output rejected: %v", errs)
	}
}

func TestCheckRejections(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"not-json", "{", "not valid JSON"},
		{"empty", `{"traceEvents":[]}`, "empty or missing"},
		{"no-name", `{"traceEvents":[{"ph":"i","ts":1,"pid":0,"tid":0}]}`, "missing name"},
		{"no-ph", `{"traceEvents":[{"name":"x","ts":1,"pid":0,"tid":0}]}`, "missing ph"},
		{"no-track", `{"traceEvents":[{"name":"x","ph":"i","ts":1}]}`, "missing pid/tid"},
		{"bad-phase", `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":0,"tid":0}]}`, "unknown phase"},
		{"negative-dur", `{"traceEvents":[{"name":"x","ph":"X","ts":1,"dur":-2,"pid":0,"tid":0}]}`, "dur >= 0"},
		{"bad-scope", `{"traceEvents":[{"name":"x","ph":"i","ts":1,"s":"q","pid":0,"tid":0}]}`, "not one of t/p/g"},
		{"no-thread-name", `{"traceEvents":[{"name":"x","ph":"i","ts":1,"pid":0,"tid":0}]}`, "no thread_name"},
		{"anonymous-track", `{"traceEvents":[
			{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"handle 0"}},
			{"name":"x","ph":"i","ts":1,"pid":0,"tid":7}]}`, "no thread_name metadata"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := check(writeFile(t, tc.name+".json", tc.body))
			if len(errs) == 0 {
				t.Fatalf("%s accepted", tc.name)
			}
			joined := strings.Join(errs, "\n")
			if !strings.Contains(joined, tc.want) {
				t.Errorf("errors %q missing %q", joined, tc.want)
			}
		})
	}
}

func TestCheckMissingFile(t *testing.T) {
	if errs := check(filepath.Join(t.TempDir(), "absent.json")); len(errs) == 0 {
		t.Error("missing file accepted")
	}
}
