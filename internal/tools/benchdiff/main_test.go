package main

import (
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: pools
BenchmarkPoolLocalPutGet/linear-8         	 4000000	       311.5 ns/op
BenchmarkPoolLocalPutGet/linear-8         	 4100000	       280.1 ns/op
BenchmarkBatchPutGet/batch-8-8            	 1000000	      1200 ns/op	         150.0 ns/element
BenchmarkFig2-8                           	       1	 250000000 ns/op	        12.5 sparse20%-ms/op
PASS
ok  	pools	3.021s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	// Repeats reduce to their geomean; the -8 suffix is stripped.
	want := math.Sqrt(311.5 * 280.1)
	if v := got["BenchmarkPoolLocalPutGet/linear"]; math.Abs(v-want) > 1e-9 {
		t.Errorf("repeat geomean = %v, want %v", v, want)
	}
	if v := got["BenchmarkBatchPutGet/batch-8"]; v != 1200 {
		t.Errorf("batch-8 ns/op = %v, want 1200 (the batch size must survive suffix stripping)", v)
	}
	if v := got["BenchmarkFig2"]; v != 250000000 {
		t.Errorf("Fig2 ns/op = %v", v)
	}
}

// TestParseBenchGomaxprocsOne covers a single-core run: Go appends no
// GOMAXPROCS suffix, so sub-benchmark numeric suffixes must survive.
func TestParseBenchGomaxprocsOne(t *testing.T) {
	in := `BenchmarkBatchPutGet/batch-8     	 1000	      1200 ns/op
BenchmarkBatchPutGet/batch-512   	  100	      9000 ns/op
BenchmarkFig2                    	    1	 250000000 ns/op
`
	got, err := parseBench(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BenchmarkBatchPutGet/batch-8", "BenchmarkBatchPutGet/batch-512", "BenchmarkFig2"} {
		if _, ok := got[want]; !ok {
			t.Errorf("name %q lost its sub-benchmark suffix: %v", want, got)
		}
	}
}

// TestParseBenchKeepCPU covers a file mixing an ordinary run (uniform
// runner-shape suffix, stripped) with a -cpu scaling sweep (per-cpu
// suffixes that ARE the measurement, kept): without the keep partition
// the varied scaling suffixes would disable stripping for the whole
// file, and every ordinary entry would miss the baseline on a runner
// with a different core count.
func TestParseBenchKeepCPU(t *testing.T) {
	in := `BenchmarkPoolLocalPutGet/linear-4  	 4000000	       311.5 ns/op
BenchmarkFig2-4                    	       1	 250000000 ns/op
BenchmarkGetHotPath-2              	 4000000	       300.0 ns/op
BenchmarkGetHotPath-4              	 4000000	       310.0 ns/op
BenchmarkGetHotPath-32             	 4000000	       460.0 ns/op
BenchmarkPoolContended/linear-16   	 1000000	      2100.0 ns/op
`
	keep := regexp.MustCompile(`^Benchmark(GetHotPath|PoolContended)(-|/)`)
	got, err := parseBench(strings.NewReader(in), keep)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"BenchmarkPoolLocalPutGet/linear", // -4 stripped: runner shape
		"BenchmarkFig2",
		"BenchmarkGetHotPath-2", // per-cpu entries stay distinct
		"BenchmarkGetHotPath-4",
		"BenchmarkGetHotPath-32",
		"BenchmarkPoolContended/linear-16",
	} {
		if _, ok := got[want]; !ok {
			t.Errorf("missing %q in parsed set %v", want, got)
		}
	}
	if len(got) != 6 {
		t.Errorf("parsed %d benchmarks, want 6: %v", len(got), got)
	}

	// Without -keep-cpu the mixed suffixes disable stripping entirely —
	// the pre-partition behavior the flag exists to fix.
	got, err = parseBench(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["BenchmarkPoolLocalPutGet/linear-4"]; !ok {
		t.Errorf("nil keep: expected stripping disabled by mixed suffixes, got %v", got)
	}
}

func TestCompareAndGeomean(t *testing.T) {
	base := map[string]float64{"A": 100, "B": 200, "Gone": 50}
	cur := map[string]float64{"A": 110, "B": 190, "New": 70}
	rep := compare(base, cur, 0)
	if len(rep.deltas) != 2 {
		t.Fatalf("compared %d benchmarks, want 2", len(rep.deltas))
	}
	if rep.deltas[0].name != "A" {
		t.Errorf("worst ratio first: got %q", rep.deltas[0].name)
	}
	want := math.Sqrt(1.10 * 0.95)
	if g := rep.geomeanRatio(); math.Abs(g-want) > 1e-9 {
		t.Errorf("geomean = %v, want %v", g, want)
	}
	if len(rep.onlyBase) != 1 || rep.onlyBase[0] != "Gone" {
		t.Errorf("onlyBase = %v", rep.onlyBase)
	}
	if len(rep.onlyCurrent) != 1 || rep.onlyCurrent[0] != "New" {
		t.Errorf("onlyCurrent = %v", rep.onlyCurrent)
	}
	out := rep.render(15)
	for _, wantStr := range []string{"geomean ratio", "missing from this run", "new benchmark"} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("render missing %q:\n%s", wantStr, out)
		}
	}
}

// TestCompareNoiseFloor checks sub-floor benchmarks leave the gated set
// (they cannot flap the geomean) but remain visible in the report.
func TestCompareNoiseFloor(t *testing.T) {
	base := map[string]float64{"Tiny": 300, "Big": 2e6}
	cur := map[string]float64{"Tiny": 900, "Big": 2e6} // Tiny 3x: timer noise at 1x
	rep := compare(base, cur, 100000)
	if len(rep.deltas) != 1 || rep.deltas[0].name != "Big" {
		t.Fatalf("gated set = %+v, want only Big", rep.deltas)
	}
	if g := rep.geomeanRatio(); g != 1 {
		t.Errorf("geomean = %v, want 1.0 with Tiny excluded", g)
	}
	if len(rep.tooSmall) != 1 || rep.tooSmall[0] != "Tiny" {
		t.Errorf("tooSmall = %v", rep.tooSmall)
	}
	if out := rep.render(15); !strings.Contains(out, "below the noise floor") {
		t.Errorf("render does not report the excluded benchmark:\n%s", out)
	}
}

func TestRunUpdateThenPassAndFail(t *testing.T) {
	dir := t.TempDir()
	baselinePath := filepath.Join(dir, "BENCH_BASELINE.json")
	benchPath := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(benchPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"-baseline", baselinePath, "-update", benchPath}, &out); err != nil {
		t.Fatalf("update: %v", err)
	}
	if !strings.Contains(out.String(), "baseline") {
		t.Errorf("update output: %q", out.String())
	}

	// Same numbers against the fresh baseline: ratio 1.0, passes.
	out.Reset()
	if err := run([]string{"-baseline", baselinePath, benchPath}, &out); err != nil {
		t.Fatalf("identical run failed the gate: %v\n%s", err, out.String())
	}

	// A uniform 2x slowdown must fail the 15% gate.
	slow := strings.NewReplacer(
		"311.5 ns/op", "623.0 ns/op",
		"280.1 ns/op", "560.2 ns/op",
		"1200 ns/op", "2400 ns/op",
		"250000000 ns/op", "500000000 ns/op",
	).Replace(sampleBench)
	slowPath := filepath.Join(dir, "slow.out")
	if err := os.WriteFile(slowPath, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-baseline", baselinePath, slowPath}, &out); err == nil {
		t.Fatalf("2x regression passed the gate:\n%s", out.String())
	}

	// A uniform 2x speedup passes (the gate is one-sided).
	fast := strings.NewReplacer(
		"311.5 ns/op", "155.7 ns/op",
		"280.1 ns/op", "140.0 ns/op",
		"1200 ns/op", "600 ns/op",
		"250000000 ns/op", "125000000 ns/op",
	).Replace(sampleBench)
	fastPath := filepath.Join(dir, "fast.out")
	if err := os.WriteFile(fastPath, []byte(fast), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-baseline", baselinePath, fastPath}, &out); err != nil {
		t.Fatalf("speedup failed the gate: %v", err)
	}
}

func TestRunMissingBaseline(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(benchPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-baseline", filepath.Join(dir, "nope.json"), benchPath}, &out)
	if err == nil || !strings.Contains(err.Error(), "-update") {
		t.Fatalf("missing baseline error = %v, want a hint to run -update", err)
	}
}

func TestRunNoCommonBenchmarksFails(t *testing.T) {
	dir := t.TempDir()
	baselinePath := filepath.Join(dir, "BENCH_BASELINE.json")
	if err := os.WriteFile(baselinePath,
		[]byte(`{"benchmarks":{"BenchmarkRenamedAway":100}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	benchPath := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(benchPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-baseline", baselinePath, benchPath}, &out)
	if err == nil || !strings.Contains(err.Error(), "common") {
		t.Fatalf("zero-overlap comparison passed (err=%v): the gate is vacuous", err)
	}
}

func TestRunEmptyInput(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.out")
	if err := os.WriteFile(empty, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-baseline", "x.json", empty}, &out); err == nil {
		t.Fatal("empty bench output accepted")
	}
}
