// Command benchdiff is the benchmark-regression gate: it parses `go test
// -bench` output, compares each benchmark's ns/op against a committed
// baseline (BENCH_BASELINE.json at the repo root), and fails when the
// geometric mean of the current/baseline ratios regresses past a
// threshold.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x . > bench.out
//	go run ./internal/tools/benchdiff -baseline BENCH_BASELINE.json bench.out
//	go run ./internal/tools/benchdiff -baseline BENCH_BASELINE.json -update bench.out
//
// The gate is the geomean, not any single benchmark: wall-clock noise on
// shared CI runners swings individual benchmarks far more than 15%, but a
// uniform shift of the whole suite is a real regression. Per-benchmark
// ratios are still printed (worst first) so a regression is attributable.
// Benchmarks present only in the baseline or only in the current run are
// reported and skipped; -update rewrites the baseline from the current
// run (do this whenever a PR intentionally changes performance or adds
// benchmarks, and commit the result).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_BASELINE.json", "baseline file to compare against (or write with -update)")
	update := fs.Bool("update", false, "rewrite the baseline from the current run instead of comparing")
	threshold := fs.Float64("threshold", 15, "allowed geomean regression, percent")
	minNs := fs.Float64("min-ns", 0, "exclude benchmarks whose baseline ns/op is below this from the geomean (at -benchtime=1x a sub-µs benchmark times one iteration — timer noise, not signal); excluded rows are still reported")
	keepCPU := fs.String("keep-cpu", "", "regexp of benchmark names whose -N GOMAXPROCS suffix is significant (they came from a -cpu scaling run) and must not be stripped; other names still get a common runner-shape suffix stripped")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var keep *regexp.Regexp
	if *keepCPU != "" {
		var err error
		if keep, err = regexp.Compile(*keepCPU); err != nil {
			return fmt.Errorf("bad -keep-cpu pattern: %w", err)
		}
	}
	in := os.Stdin
	if fs.NArg() > 1 {
		return fmt.Errorf("at most one input file, got %v", fs.Args())
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in, keep)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark results in input")
	}
	if *update {
		if err := writeBaseline(*baselinePath, current); err != nil {
			return err
		}
		fmt.Fprintf(out, "benchdiff: baseline %s updated with %d benchmarks\n", *baselinePath, len(current))
		return nil
	}
	base, err := readBaseline(*baselinePath)
	if err != nil {
		return fmt.Errorf("%w (run with -update to create the baseline)", err)
	}
	rep := compare(base.Benchmarks, current, *minNs)
	fmt.Fprint(out, rep.render(*threshold))
	if len(rep.deltas) == 0 {
		// A gate that compares nothing must not pass: a suite rename (or a
		// mis-parsed run) would otherwise disable the check silently.
		return fmt.Errorf("no benchmarks in common with the baseline — re-record it with -update")
	}
	if rep.geomeanRatio() > 1+*threshold/100 {
		return fmt.Errorf("geomean regression %.1f%% exceeds the %.0f%% gate",
			(rep.geomeanRatio()-1)*100, *threshold)
	}
	return nil
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkBatchSteal/loop-8   125  9371 ns/op  42.0 extra/metric
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+(?:e[+-]?[0-9]+)?) ns/op`)

// gomaxSuffix matches a candidate -GOMAXPROCS name suffix.
var gomaxSuffix = regexp.MustCompile(`-(\d+)$`)

// stripGomaxprocs removes the -N GOMAXPROCS suffix so baselines survive
// runner shape. The suffix is only present when GOMAXPROCS != 1 and is
// identical on every line of a run, while sub-benchmark numeric suffixes
// (batch-512) vary — so it is stripped exactly when every parsed name
// carries the same trailing -N.
//
// Names matching keep are per-cpu scaling entries from a -cpu run: their
// suffix IS the data point (BenchmarkGetHotPath-32 at GOMAXPROCS=32 is a
// different measurement from -2), so they pass through untouched and do
// not participate in the common-suffix determination. Without this
// partition one -cpu sweep in the file would disable stripping for the
// whole run, and every ordinary baseline entry would miss on runners
// with a different core count.
func stripGomaxprocs(vals map[string][]float64, keep *regexp.Regexp) map[string][]float64 {
	kept := map[string][]float64{}
	strippable := map[string][]float64{}
	for name, vs := range vals {
		if keep != nil && keep.MatchString(name) {
			kept[name] = vs
		} else {
			strippable[name] = vs
		}
	}
	common := ""
	for name := range strippable {
		m := gomaxSuffix.FindStringSubmatch(name)
		if m == nil {
			common = ""
			break
		}
		if common == "" {
			common = m[1]
		} else if common != m[1] {
			common = ""
			break
		}
	}
	if common == "" {
		return vals
	}
	out := make(map[string][]float64, len(vals))
	for name, vs := range strippable {
		short := strings.TrimSuffix(name, "-"+common)
		out[short] = append(out[short], vs...)
	}
	for name, vs := range kept {
		out[name] = append(out[name], vs...)
	}
	return out
}

// parseBench extracts ns/op per benchmark from `go test -bench` output.
// Repeated runs of one benchmark (e.g. -count > 1) are reduced to their
// geometric mean, matching the cross-benchmark reduction. keep (may be
// nil) marks per-cpu scaling entries whose GOMAXPROCS suffix survives —
// see stripGomaxprocs.
func parseBench(r io.Reader, keep *regexp.Regexp) (map[string]float64, error) {
	vals := map[string][]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil || ns <= 0 {
			continue // a zero-cost line carries no signal and breaks the geomean
		}
		vals[m[1]] = append(vals[m[1]], ns)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	vals = stripGomaxprocs(vals, keep)
	out := make(map[string]float64, len(vals))
	for name, vs := range vals {
		if len(vs) == 1 {
			out[name] = vs[0] // exact: no reduction to round-trip through logs
			continue
		}
		s := 0.0
		for _, v := range vs {
			s += math.Log(v)
		}
		out[name] = math.Exp(s / float64(len(vs)))
	}
	return out, nil
}

// baseline is the committed BENCH_BASELINE.json shape.
type baseline struct {
	// Note documents the file for humans reading the diff.
	Note string `json:"note"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// baseline ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
}

func readBaseline(path string) (baseline, error) {
	var b baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return b, fmt.Errorf("%s holds no benchmarks", path)
	}
	return b, nil
}

func writeBaseline(path string, current map[string]float64) error {
	b := baseline{
		Note:       "ns/op per benchmark (geomean across repeats, GOMAXPROCS suffix stripped); regenerate with `make bench-baseline`.",
		Benchmarks: current,
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// delta is one compared benchmark.
type delta struct {
	name      string
	base, cur float64
	ratio     float64
}

// report is the outcome of one comparison.
type report struct {
	deltas      []delta  // gated benchmarks, worst ratio first
	tooSmall    []string // common but below the noise floor: not gated
	onlyBase    []string // in the baseline, missing from the run
	onlyCurrent []string // in the run, missing from the baseline
}

// compare joins baseline and current results by name; benchmarks whose
// baseline ns/op is below minNs are excluded from the gated set.
func compare(base, current map[string]float64, minNs float64) report {
	var rep report
	for name, b := range base {
		c, ok := current[name]
		if !ok {
			rep.onlyBase = append(rep.onlyBase, name)
			continue
		}
		if b < minNs {
			rep.tooSmall = append(rep.tooSmall, name)
			continue
		}
		rep.deltas = append(rep.deltas, delta{name: name, base: b, cur: c, ratio: c / b})
	}
	for name := range current {
		if _, ok := base[name]; !ok {
			rep.onlyCurrent = append(rep.onlyCurrent, name)
		}
	}
	sort.Slice(rep.deltas, func(i, j int) bool { return rep.deltas[i].ratio > rep.deltas[j].ratio })
	sort.Strings(rep.tooSmall)
	sort.Strings(rep.onlyBase)
	sort.Strings(rep.onlyCurrent)
	return rep
}

// geomeanRatio reduces the per-benchmark current/baseline ratios to their
// geometric mean (1.0 with no common benchmarks).
func (r report) geomeanRatio() float64 {
	if len(r.deltas) == 0 {
		return 1
	}
	s := 0.0
	for _, d := range r.deltas {
		s += math.Log(d.ratio)
	}
	return math.Exp(s / float64(len(r.deltas)))
}

// render formats the comparison: the geomean verdict line, the worst
// per-benchmark ratios, and any membership drift.
func (r report) render(threshold float64) string {
	var b strings.Builder
	g := r.geomeanRatio()
	fmt.Fprintf(&b, "benchdiff: geomean ratio %.4f over %d benchmarks (gate %.4f)\n",
		g, len(r.deltas), 1+threshold/100)
	for i, d := range r.deltas {
		if i >= 10 && d.ratio <= 1.0 {
			fmt.Fprintf(&b, "  ... %d more at or below baseline\n", len(r.deltas)-i)
			break
		}
		fmt.Fprintf(&b, "  %-55s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
			d.name, d.base, d.cur, (d.ratio-1)*100)
	}
	if len(r.tooSmall) > 0 {
		fmt.Fprintf(&b, "  below the noise floor, not gated: %s\n", strings.Join(r.tooSmall, ", "))
	}
	for _, name := range r.onlyBase {
		fmt.Fprintf(&b, "  missing from this run (skipped): %s\n", name)
	}
	for _, name := range r.onlyCurrent {
		fmt.Fprintf(&b, "  new benchmark, not in baseline (skipped; -update to adopt): %s\n", name)
	}
	return b.String()
}
