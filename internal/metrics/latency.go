package metrics

import (
	"math/bits"
	"sync/atomic"
)

// LatBuckets is the number of log-2 latency buckets a LatencyHist holds.
// Bucket i (i >= 1) counts observations v with 2^(i-1) <= v < 2^i; bucket
// 0 counts v == 0. Forty buckets cover latencies up to 2^39 µs (about
// eighteen years); anything larger saturates into the last bucket.
const LatBuckets = 40

// LatencyHist is a fixed-size log-bucket latency histogram built for the
// 0-alloc hot path: Record is three atomic adds into a flat array — no
// allocation, no lock, no interface call. Each handle owns one (embedded
// in its metrics.PoolStats) and records into it privately; report-time
// readers Merge per-handle histograms into a quiescent accumulator and
// query percentiles there.
//
// Concurrency contract: Record may run concurrently with Merge, Quantile,
// and other Records (all cross-goroutine access is atomic). Merge's
// *receiver* must be quiescent — it is the report-side accumulator — and
// a merge concurrent with recording yields a snapshot that may trail the
// newest observation by one in-flight Record. The zero value is ready to
// use.
type LatencyHist struct {
	n       int64
	sum     int64
	buckets [LatBuckets]int64
}

// latBucketOf returns the bucket index for one observation: 0 for v <= 0,
// 1+floor(log2 v) otherwise, saturating at the last bucket.
func latBucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= LatBuckets {
		b = LatBuckets - 1
	}
	return b
}

// Record folds one latency observation (µs, virtual or wall-clock) into
// the histogram. Negative values clamp to zero. Record never allocates.
func (h *LatencyHist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	atomic.AddInt64(&h.n, 1)
	atomic.AddInt64(&h.sum, v)
	atomic.AddInt64(&h.buckets[latBucketOf(v)], 1)
}

// Merge folds another histogram into h, as if every observation of o had
// been recorded into h. o is read atomically (it may still be receiving
// Records); h must be quiescent — the report-time accumulator.
func (h *LatencyHist) Merge(o *LatencyHist) {
	atomic.AddInt64(&h.n, atomic.LoadInt64(&o.n))
	atomic.AddInt64(&h.sum, atomic.LoadInt64(&o.sum))
	for i := range o.buckets {
		atomic.AddInt64(&h.buckets[i], atomic.LoadInt64(&o.buckets[i]))
	}
}

// N returns the number of recorded observations.
func (h *LatencyHist) N() int64 { return atomic.LoadInt64(&h.n) }

// Mean returns the arithmetic mean of recorded values, or 0 when empty.
func (h *LatencyHist) Mean() float64 {
	n := atomic.LoadInt64(&h.n)
	if n == 0 {
		return 0
	}
	return float64(atomic.LoadInt64(&h.sum)) / float64(n)
}

// Quantile returns the q-quantile (0 <= q <= 1; clamped) with linear
// interpolation inside the matched bucket: the fractional rank's position
// within the bucket's count interpolates between the bucket's lower and
// upper edge, so q at a bucket's first observation returns (close to) the
// lower edge and q at its last returns the upper edge exactly. The result
// is exact to within a factor of two (the bucket width); observations
// saturated into the last bucket report that bucket's edges. An empty
// histogram returns 0.
func (h *LatencyHist) Quantile(q float64) float64 {
	var b [LatBuckets]int64
	var total int64
	for i := range h.buckets {
		b[i] = atomic.LoadInt64(&h.buckets[i])
		total += b[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var seen float64
	for i, c := range b {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if seen+fc >= rank {
			if i == 0 {
				return 0
			}
			lo := float64(int64(1) << (i - 1))
			frac := (rank - seen) / fc
			if frac < 0 {
				frac = 0
			}
			return lo + frac*lo // lo + frac*(hi-lo), hi = 2*lo
		}
		seen += fc
	}
	// Unreachable when total > 0 (the last non-empty bucket satisfies
	// seen+fc >= rank since rank <= total), but keep a defined answer.
	return 0
}

// P50 returns the median latency.
func (h *LatencyHist) P50() float64 { return h.Quantile(0.50) }

// P99 returns the 99th-percentile latency.
func (h *LatencyHist) P99() float64 { return h.Quantile(0.99) }

// P999 returns the 99.9th-percentile latency — the tail the open-loop
// experiments report.
func (h *LatencyHist) P999() float64 { return h.Quantile(0.999) }
