package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSummaryAgainstNaive(t *testing.T) {
	data := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8.5, -2, 0}
	var s Summary
	sum := 0.0
	for _, x := range data {
		s.Add(x)
		sum += x
	}
	mean := sum / float64(len(data))
	varSum := 0.0
	for _, x := range data {
		varSum += (x - mean) * (x - mean)
	}
	wantVar := varSum / float64(len(data))

	if s.N() != int64(len(data)) {
		t.Fatalf("N = %d, want %d", s.N(), len(data))
	}
	if !almostEqual(s.Mean(), mean, 1e-12) {
		t.Errorf("Mean = %v, want %v", s.Mean(), mean)
	}
	if !almostEqual(s.Var(), wantVar, 1e-12) {
		t.Errorf("Var = %v, want %v", s.Var(), wantVar)
	}
	if s.Min() != -2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want -2/9", s.Min(), s.Max())
	}
	if !almostEqual(s.Sum(), sum, 1e-12) {
		t.Errorf("Sum = %v, want %v", s.Sum(), sum)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Std() != 0 || s.N() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		var merged, left, right Summary
		for _, x := range a {
			x = math.Mod(x, 1e6) // keep magnitudes sane
			if math.IsNaN(x) {
				x = 0
			}
			left.Add(x)
			merged.Add(x)
		}
		for _, x := range b {
			x = math.Mod(x, 1e6)
			if math.IsNaN(x) {
				x = 0
			}
			right.Add(x)
			merged.Add(x)
		}
		left.Merge(right)
		return left.N() == merged.N() &&
			almostEqual(left.Mean(), merged.Mean(), 1e-9) &&
			almostEqual(left.Var(), merged.Var(), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryMergeEmptySides(t *testing.T) {
	var a, b Summary
	b.Add(5)
	b.Add(7)
	a.Merge(b) // empty <- non-empty
	if a.N() != 2 || a.Mean() != 6 {
		t.Fatalf("merge into empty: n=%d mean=%v", a.N(), a.Mean())
	}
	var c Summary
	a.Merge(c) // non-empty <- empty
	if a.N() != 2 || a.Mean() != 6 {
		t.Fatalf("merge of empty changed state: n=%d mean=%v", a.N(), a.Mean())
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
}

func TestHistogramMeanAndQuantile(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Add(i)
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if !almostEqual(h.Mean(), 50.5, 1e-12) {
		t.Errorf("Mean = %v, want 50.5", h.Mean())
	}
	// Median of 1..100 is ~50; the bucket upper bound containing rank 50 is 63.
	if q := h.Quantile(0.5); q != 63 {
		t.Errorf("Quantile(0.5) = %d, want 63", q)
	}
	if q := h.Quantile(0); q != 0 {
		// rank clamps to 1 -> value 1 lives in bucket 1 (upper bound 1)
		if q != 1 {
			t.Errorf("Quantile(0) = %d, want 1", q)
		}
	}
	if q := h.Quantile(1); q != 127 {
		t.Errorf("Quantile(1) = %d, want 127", q)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Add(-5)
	if h.Mean() != 0 || h.N() != 1 {
		t.Fatalf("negative not clamped: mean=%v n=%d", h.Mean(), h.N())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := int64(0); i < 50; i++ {
		a.Add(i)
		b.Add(i + 50)
	}
	a.Merge(&b)
	if a.N() != 100 {
		t.Fatalf("merged N = %d", a.N())
	}
	if !almostEqual(a.Mean(), 49.5, 1e-12) {
		t.Errorf("merged Mean = %v, want 49.5", a.Mean())
	}
}

func TestTraceSampleAtStepSemantics(t *testing.T) {
	var tr Trace
	tr.Record(10, 5)
	tr.Record(20, 8)
	tr.Record(30, 2)
	got := tr.SampleAt([]int64{0, 10, 15, 20, 25, 30, 99})
	want := []int64{5, 5, 5, 8, 8, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SampleAt[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestTraceEmpty(t *testing.T) {
	var tr Trace
	got := tr.SampleAt([]int64{1, 2, 3})
	for _, v := range got {
		if v != 0 {
			t.Fatal("empty trace should sample zeros")
		}
	}
	if tr.MaxTime() != 0 || tr.MaxValue() != 0 {
		t.Fatal("empty trace max should be 0")
	}
}

func TestTraceMaxes(t *testing.T) {
	var tr Trace
	tr.Record(5, 100)
	tr.Record(50, 3)
	if tr.MaxTime() != 50 || tr.MaxValue() != 100 {
		t.Fatalf("MaxTime=%d MaxValue=%d", tr.MaxTime(), tr.MaxValue())
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestTracePointsIsCopy(t *testing.T) {
	var tr Trace
	tr.Record(1, 1)
	p := tr.Points()
	p[0].Value = 999
	if tr.Points()[0].Value != 1 {
		t.Fatal("Points returned a reference to internal storage")
	}
}

func TestPoolStatsAccounting(t *testing.T) {
	var s PoolStats
	s.RecordAdd(70)
	s.RecordAdd(90)
	s.RecordLocalRemove(110)
	s.RecordStealRemove(500, 390, 3, 10)
	s.RecordAbort(30)

	if s.Adds != 2 || s.Removes != 2 || s.LocalRemoves != 1 || s.Steals != 1 || s.Aborts != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if got := s.Ops(); got != 4 {
		t.Errorf("Ops = %d, want 4", got)
	}
	wantAvg := (70.0 + 90 + 110 + 500 + 30) / 5
	if !almostEqual(s.AvgOpTime(), wantAvg, 1e-12) {
		t.Errorf("AvgOpTime = %v, want %v", s.AvgOpTime(), wantAvg)
	}
	if !almostEqual(s.StealFraction(), 0.5, 1e-12) {
		t.Errorf("StealFraction = %v, want 0.5", s.StealFraction())
	}
	if !almostEqual(s.MixAchieved(), 0.5, 1e-12) {
		t.Errorf("MixAchieved = %v, want 0.5", s.MixAchieved())
	}
	if s.SegmentsExamined.Mean() != 3 || s.ElementsStolen.Mean() != 10 {
		t.Errorf("steal summaries wrong: %v %v", s.SegmentsExamined.Mean(), s.ElementsStolen.Mean())
	}
}

func TestPoolStatsMerge(t *testing.T) {
	var a, b PoolStats
	a.RecordAdd(10)
	b.RecordLocalRemove(20)
	b.RecordStealRemove(30, 15, 2, 4)
	b.RecordAbort(10)
	a.Merge(&b)
	if a.Adds != 1 || a.Removes != 2 || a.Steals != 1 || a.Aborts != 1 {
		t.Fatalf("merged counts wrong: %+v", a)
	}
	if a.Ops() != 3 {
		t.Fatalf("merged Ops = %d", a.Ops())
	}
}

func TestPoolStatsEmptyRatios(t *testing.T) {
	var s PoolStats
	if s.AvgOpTime() != 0 || s.StealFraction() != 0 || s.MixAchieved() != 0 {
		t.Fatal("empty stats should report zero ratios")
	}
}

func TestOpKindString(t *testing.T) {
	if OpAdd.String() != "add" || OpRemove.String() != "remove" || OpKind(0).String() != "unknown" {
		t.Fatal("OpKind.String wrong")
	}
}

func TestPoolStatsSummary(t *testing.T) {
	var s PoolStats
	s.RecordAdd(10)
	s.RecordLocalRemove(20)
	s.RecordStealRemove(30, 15, 2, 4)
	s.RecordAbort(40)
	s.RecordStealVictim(true)
	s.RecordStealVictim(false)
	s.RecordProbe(true)
	s.RecordProbe(false)
	got := s.Summary()
	// ops = 1 add + 2 completed removes; one steal, one
	// abort; 1/2 foreign steals; 1/2 cross probes.
	for _, want := range []string{
		"ops=3", "steals=1", "aborts=1",
		"interference=0.500", "cross_probe=0.500",
		"p50=", "p99=", "p999=",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Summary %q missing %q", got, want)
		}
	}
	if strings.Contains(got, "\n") {
		t.Errorf("Summary is not one line: %q", got)
	}
}
