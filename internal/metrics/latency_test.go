package metrics

import (
	"sync"
	"testing"
)

func TestLatencyHistEmpty(t *testing.T) {
	var h LatencyHist
	if h.N() != 0 || h.Mean() != 0 {
		t.Fatalf("empty hist: N=%d Mean=%v, want zeros", h.N(), h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestLatencyHistEmptyMerge(t *testing.T) {
	var a, b LatencyHist
	a.Record(100)
	a.Record(200)
	// Merging an empty histogram is a no-op.
	before := a
	a.Merge(&b)
	if a != before {
		t.Error("merging an empty histogram changed the receiver")
	}
	// Merging into an empty histogram copies the source exactly.
	b.Merge(&a)
	if b != a {
		t.Error("merge into empty receiver differs from source")
	}
	if b.N() != 2 || b.Mean() != 150 {
		t.Errorf("merged: N=%d Mean=%v, want 2 and 150", b.N(), b.Mean())
	}
}

func TestLatencyHistNegativeAndZero(t *testing.T) {
	var h LatencyHist
	h.Record(-50) // clamps to 0
	h.Record(0)
	if h.N() != 2 || h.Mean() != 0 {
		t.Fatalf("N=%d Mean=%v, want 2 and 0", h.N(), h.Mean())
	}
	if got := h.Quantile(1); got != 0 {
		t.Errorf("all-zero Quantile(1) = %v, want 0", got)
	}
}

func TestLatencyHistSaturation(t *testing.T) {
	// Everything at or above 2^39 lands in the last bucket; quantiles
	// report that bucket's edges rather than overflowing.
	var h LatencyHist
	lo := float64(int64(1) << (LatBuckets - 2)) // last bucket's lower edge
	for _, v := range []int64{1 << 39, 1 << 50, 1<<63 - 1} {
		h.Record(v)
	}
	if h.N() != 3 {
		t.Fatalf("N=%d, want 3", h.N())
	}
	for _, q := range []float64{0.01, 0.5, 1} {
		got := h.Quantile(q)
		if got < lo || got > 2*lo {
			t.Errorf("saturated Quantile(%v) = %v, want within [%v, %v]", q, got, lo, 2*lo)
		}
	}
}

func TestLatencyHistQuantileInterpolation(t *testing.T) {
	// 50 observations in bucket [2,4), 50 in bucket [1024,2048): the
	// median rank lands exactly on the low bucket's last observation, so
	// interpolation must return that bucket's upper edge, not jump to the
	// high bucket.
	var h LatencyHist
	for i := 0; i < 50; i++ {
		h.Record(2)
		h.Record(1024)
	}
	if got := h.Quantile(0.5); got != 4 {
		t.Errorf("Quantile(0.5) = %v, want the low bucket's upper edge 4", got)
	}
	if got := h.Quantile(0.25); got < 2 || got > 4 {
		t.Errorf("Quantile(0.25) = %v, want within [2,4]", got)
	}
	if got := h.Quantile(0.75); got < 1024 || got > 2048 {
		t.Errorf("Quantile(0.75) = %v, want within [1024,2048]", got)
	}
	if got := h.Quantile(1); got != 2048 {
		t.Errorf("Quantile(1) = %v, want the high bucket's upper edge 2048", got)
	}
	// Monotonic in q across the boundary.
	prev := 0.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("Quantile not monotonic: q=%v gave %v after %v", q, cur, prev)
		}
		prev = cur
	}
}

func TestLatencyHistConcurrentRecordMerge(t *testing.T) {
	// Record concurrently with report-side merges and quantile reads (the
	// documented contract); run under -race this validates the atomics.
	const recorders, perRecorder = 4, 2000
	var src [recorders]LatencyHist
	var wg sync.WaitGroup
	for r := 0; r < recorders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perRecorder; i++ {
				src[r].Record(int64(i % 1000))
			}
		}(r)
	}
	for i := 0; i < 20; i++ {
		var acc LatencyHist
		for r := range src {
			acc.Merge(&src[r])
		}
		_ = acc.P99()
	}
	wg.Wait()
	var final LatencyHist
	for r := range src {
		final.Merge(&src[r])
	}
	if want := int64(recorders * perRecorder); final.N() != want {
		t.Errorf("final merged N = %d, want %d", final.N(), want)
	}
	if p := final.P50(); p < 256 || p > 1024 {
		t.Errorf("P50 = %v, want within [256,1024] for uniform 0..999", p)
	}
}
