// Package metrics provides the measurement primitives used by the
// experiment harness: streaming summaries (Welford), counters, log-bucket
// histograms, and timestamped traces.
//
// The paper reports, for every workload: average operation time, segments
// examined per steal, elements stolen per steal, the fraction of removes
// that required a steal, steal frequency, and per-segment size traces over
// time (Figures 3-6). Every one of those reductions lives here so that the
// simulator, the real pool, and the harness all aggregate measurements the
// same way.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a streaming mean and variance using Welford's
// algorithm, plus min and max. The zero value is an empty summary.
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a new observation into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Merge folds another summary into s, as if every observation of o had been
// added to s. Uses Chan et al.'s parallel combination formula.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	s.mean += delta * float64(o.n) / float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the (population) variance, or 0 with fewer than two samples.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 { return s.max }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// String renders "mean ± std (n=N)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f (n=%d)", s.Mean(), s.Std(), s.n)
}

// Histogram is a base-2 log-bucket histogram of non-negative int64 values.
// Bucket i counts values v with 2^(i-1) <= v < 2^i (bucket 0 counts v == 0).
// The zero value is ready to use.
type Histogram struct {
	buckets [65]int64
	n       int64
	sum     int64
}

// Add records one observation. Negative values are clamped to zero.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.n++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

func bucketOf(v int64) int {
	if v == 0 {
		return 0
	}
	b := 1
	for x := uint64(v); x > 1; x >>= 1 {
		b++
	}
	return b
}

// Merge folds another histogram into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.n += o.n
	h.sum += o.sum
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n }

// Mean returns the arithmetic mean of recorded values.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) using
// bucket upper edges; it is exact to within a factor of two.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			if i == 0 {
				return 0
			}
			return int64(1)<<uint(i) - 1
		}
	}
	return math.MaxInt64
}

// TracePoint is one sample in a timestamped series: the size of a segment
// at a virtual (or real) time.
type TracePoint struct {
	Time  int64
	Value int64
}

// Trace is an append-only timestamped series. It records segment sizes over
// time for the Figure 3-6 style plots. The zero value is ready to use.
type Trace struct {
	points []TracePoint
}

// Record appends a sample. Samples should arrive in non-decreasing time
// order; out-of-order samples are kept but SampleAt sorts before querying.
func (t *Trace) Record(time, value int64) {
	t.points = append(t.points, TracePoint{Time: time, Value: value})
}

// Len returns the number of recorded points.
func (t *Trace) Len() int { return len(t.points) }

// Points returns a copy of the recorded samples.
func (t *Trace) Points() []TracePoint {
	out := make([]TracePoint, len(t.points))
	copy(out, t.points)
	return out
}

// SampleAt resamples the trace at the given times using last-value-carried-
// forward semantics (a step function, matching how a segment size evolves).
// Times before the first sample yield the first sample's value, or 0 for an
// empty trace.
func (t *Trace) SampleAt(times []int64) []int64 {
	out := make([]int64, len(times))
	if len(t.points) == 0 {
		return out
	}
	pts := t.Points()
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].Time < pts[j].Time })
	for i, tm := range times {
		// Find the last point with Time <= tm.
		idx := sort.Search(len(pts), func(j int) bool { return pts[j].Time > tm })
		if idx == 0 {
			out[i] = pts[0].Value
		} else {
			out[i] = pts[idx-1].Value
		}
	}
	return out
}

// MaxTime returns the largest timestamp in the trace, or 0 if empty.
func (t *Trace) MaxTime() int64 {
	var m int64
	for _, p := range t.points {
		if p.Time > m {
			m = p.Time
		}
	}
	return m
}

// MaxValue returns the largest value in the trace, or 0 if empty.
func (t *Trace) MaxValue() int64 {
	var m int64
	for _, p := range t.points {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}
