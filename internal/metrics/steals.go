package metrics

import "fmt"

// OpKind identifies the kind of pool operation being measured.
type OpKind int

// Operation kinds. The paper measures adds and removes separately (typical
// undelayed times were ~70 µs per add and ~110 µs per remove on the
// Butterfly) and attributes steal costs to the removes that triggered them.
const (
	OpAdd OpKind = iota + 1
	OpRemove
)

// String returns "add" or "remove".
func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	default:
		return "unknown"
	}
}

// PoolStats aggregates every per-operation measurement the paper reports
// for one experiment run (one trial). It is not safe for concurrent use;
// concurrent collectors keep one PoolStats per processor and Merge at the
// end of the run.
type PoolStats struct {
	AddTime    Summary // duration of add operations (µs, virtual or real)
	RemoveTime Summary // duration of remove operations, including searches
	StealTime  Summary // duration of the search+steal portion of removes
	AbortTime  Summary // duration of removes aborted by the livelock rule

	SegmentsExamined Summary // segments probed per steal
	ElementsStolen   Summary // elements obtained per successful steal

	Adds         int64 // completed add operations
	Removes      int64 // completed remove operations (element obtained)
	LocalRemoves int64 // removes satisfied by the local segment
	Steals       int64 // removes that required a successful steal
	Aborts       int64 // removes aborted by the all-searching rule

	// Directed-add extension (paper Section 5): elements handed straight
	// to a searching process instead of the giver's local segment.
	DirectedGives    int64 // adds delivered into another process's mailbox
	DirectedReceives int64 // removes satisfied by a mailbox gift

	// Batch operations (PutAll/GetN): each batch op contributes one timing
	// observation to AddTime/RemoveTime but counts every element it moved
	// in Adds/Removes, so Adds/AddTime.N() is the achieved add batch size.
	BatchAdds    int64 // PutAll calls that placed at least one element
	BatchRemoves int64 // GetN calls that obtained at least one element

	// Topology accounting (hierarchical-steal extension): every remote
	// segment probe — steal searches and Director placement sweeps alike —
	// is classified by the pool's numa.Topology. A probe is "cross" when
	// its hop distance exceeds 1 (it left the prober's cluster), the
	// dominant cost on loosely-coupled machines.
	RemoteProbes int64 // probes of segments other than the prober's own
	CrossProbes  int64 // remote probes that crossed a cluster boundary

	// Tenant accounting (multi-tenant extension): when the policy set
	// carries a tenant partition (policy.Grouped), the engine classifies
	// every successful steal from a remote segment by whether the victim
	// belonged to another tenant. ForeignSteals/TenantSteals is the
	// steal-interference measure of `poolbench -exp tenants`.
	TenantSteals  int64 // successful remote steals classified by a tenant partition
	ForeignSteals int64 // classified steals whose victim belonged to another tenant

	// OpLat is the per-operation latency histogram: one observation per
	// completed operation (adds, removes — local, stolen, batch — and
	// aborts), recorded with the operation's duration in µs (virtual or
	// wall-clock). Recording is three atomic adds, so it stays on the
	// 0-alloc hot path; percentiles are read at report time, after Merge.
	OpLat LatencyHist
}

// RecordProbe classifies one remote segment probe: cross reports whether
// it crossed a cluster boundary (hop distance > 1).
func (s *PoolStats) RecordProbe(cross bool) {
	s.RemoteProbes++
	if cross {
		s.CrossProbes++
	}
}

// CrossProbeFraction returns the fraction of remote probes that crossed a
// cluster boundary — the headline measure of the hierarchical-steal and
// topology-aware-placement policies (0 when nothing was probed, or when
// the pool ran without a topology).
func (s *PoolStats) CrossProbeFraction() float64 {
	if s.RemoteProbes == 0 {
		return 0
	}
	return float64(s.CrossProbes) / float64(s.RemoteProbes)
}

// RecordAdd records one completed add and its duration.
func (s *PoolStats) RecordAdd(d int64) {
	s.Adds++
	s.AddTime.Add(float64(d))
	s.OpLat.Record(d)
}

// RecordLocalRemove records a remove satisfied locally.
func (s *PoolStats) RecordLocalRemove(d int64) {
	s.Removes++
	s.LocalRemoves++
	s.RemoveTime.Add(float64(d))
	s.OpLat.Record(d)
}

// RecordStealRemove records a remove that needed a steal: total duration d,
// steal portion sd, number of segments examined, and elements obtained.
func (s *PoolStats) RecordStealRemove(d, sd int64, examined, stolen int) {
	s.Removes++
	s.Steals++
	s.RemoveTime.Add(float64(d))
	s.StealTime.Add(float64(sd))
	s.SegmentsExamined.Add(float64(examined))
	s.ElementsStolen.Add(float64(stolen))
	s.OpLat.Record(d)
}

// RecordBatchAdd records one PutAll of n elements taking d in total.
func (s *PoolStats) RecordBatchAdd(d int64, n int) {
	s.BatchAdds++
	s.Adds += int64(n)
	s.AddTime.Add(float64(d))
	s.OpLat.Record(d)
}

// RecordBatchLocalRemove records one GetN satisfied by the local segment:
// n elements obtained in one operation of duration d.
func (s *PoolStats) RecordBatchLocalRemove(d int64, n int) {
	s.BatchRemoves++
	s.Removes += int64(n)
	s.LocalRemoves += int64(n)
	s.RemoveTime.Add(float64(d))
	s.OpLat.Record(d)
}

// RecordBatchStealRemove records one GetN that needed a steal: total
// duration d, steal portion sd, segments examined, elements transferred by
// the steal, and n elements returned to the caller.
func (s *PoolStats) RecordBatchStealRemove(d, sd int64, examined, stolen, n int) {
	s.BatchRemoves++
	s.Removes += int64(n)
	s.Steals++
	s.RemoveTime.Add(float64(d))
	s.StealTime.Add(float64(sd))
	s.SegmentsExamined.Add(float64(examined))
	s.ElementsStolen.Add(float64(stolen))
	s.OpLat.Record(d)
}

// RecordAbort records a remove aborted because every participant was
// searching (the paper's livelock resolution), and the time spent before
// the abort was detected.
func (s *PoolStats) RecordAbort(d int64) {
	s.Aborts++
	s.AbortTime.Add(float64(d))
	s.OpLat.Record(d)
}

// RecordStealVictim classifies one successful remote steal against the
// pool's tenant partition: foreign reports whether the victim segment
// belonged to a different tenant than the thief. Called by the engine
// only when the policy set carries a partition (policy.Grouped).
func (s *PoolStats) RecordStealVictim(foreign bool) {
	s.TenantSteals++
	if foreign {
		s.ForeignSteals++
	}
}

// Merge folds another collector into s.
func (s *PoolStats) Merge(o *PoolStats) {
	s.AddTime.Merge(o.AddTime)
	s.RemoveTime.Merge(o.RemoveTime)
	s.StealTime.Merge(o.StealTime)
	s.AbortTime.Merge(o.AbortTime)
	s.SegmentsExamined.Merge(o.SegmentsExamined)
	s.ElementsStolen.Merge(o.ElementsStolen)
	s.Adds += o.Adds
	s.Removes += o.Removes
	s.LocalRemoves += o.LocalRemoves
	s.Steals += o.Steals
	s.Aborts += o.Aborts
	s.DirectedGives += o.DirectedGives
	s.DirectedReceives += o.DirectedReceives
	s.BatchAdds += o.BatchAdds
	s.BatchRemoves += o.BatchRemoves
	s.RemoteProbes += o.RemoteProbes
	s.CrossProbes += o.CrossProbes
	s.TenantSteals += o.TenantSteals
	s.ForeignSteals += o.ForeignSteals
	s.OpLat.Merge(&o.OpLat)
}

// Ops returns the number of completed element movements (adds + removes).
// Under single-element operations this is also the operation count; under
// batching it counts elements. The experiment drivers charge their
// operation budget one unit per element moved and one per abort (refunding
// a batch's unmoved remainder), so Ops()+Aborts == TotalOps at any batch
// size. See OpCount for the per-operation denominator.
func (s *PoolStats) Ops() int64 { return s.Adds + s.Removes }

// OpCount returns the number of operations performed — adds, removes, and
// aborted removes — counting one per call: a batch PutAll/GetN is one
// operation however many elements it moves. Equals Ops()+Aborts under
// single-element operations.
func (s *PoolStats) OpCount() int64 {
	return s.AddTime.N() + s.RemoveTime.N() + s.AbortTime.N()
}

// AvgOpTime returns the mean duration over all operations — adds,
// removes, and aborted removes — the quantity plotted in the paper's
// Figure 2.
func (s *PoolStats) AvgOpTime() float64 {
	total := s.AddTime.Sum() + s.RemoveTime.Sum() + s.AbortTime.Sum()
	n := s.AddTime.N() + s.RemoveTime.N() + s.AbortTime.N()
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// AvgTimePerElement returns the mean operation time divided across the
// elements moved: total time over adds, removes, and aborts, per element
// added or removed. With single-element operations it equals AvgOpTime;
// under batch operations it is the amortized per-element cost the batch
// API exists to lower.
func (s *PoolStats) AvgTimePerElement() float64 {
	total := s.AddTime.Sum() + s.RemoveTime.Sum() + s.AbortTime.Sum()
	n := s.Adds + s.Removes + s.Aborts
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// StealFraction returns the fraction of completed remove *operations*
// that required a steal ("the percentage of remove operations that
// required a steal"). Remove operations are counted per call (a GetN is
// one operation), so the fraction stays comparable between batched and
// single-element runs.
func (s *PoolStats) StealFraction() float64 {
	if s.RemoveTime.N() == 0 {
		return 0
	}
	return float64(s.Steals) / float64(s.RemoveTime.N())
}

// StealInterference returns the fraction of tenant-classified steals whose
// victim belonged to another tenant — how much of one tenant's backlog is
// drained (or plundered) by the others. 0 when the pool ran without a
// tenant partition.
func (s *PoolStats) StealInterference() float64 {
	if s.TenantSteals == 0 {
		return 0
	}
	return float64(s.ForeignSteals) / float64(s.TenantSteals)
}

// Summary renders the collector's headline numbers as one line —
// element movements, steals, aborts, the steal-interference and
// cross-probe fractions, and the per-op latency quantiles — the shared
// format behind poolbench's report footers and the introspection
// endpoint's expvar snapshot, so every surface prints the same digest.
func (s *PoolStats) Summary() string {
	return fmt.Sprintf(
		"ops=%d steals=%d aborts=%d interference=%.3f cross_probe=%.3f p50=%.0fµs p99=%.0fµs p999=%.0fµs",
		s.Ops(), s.Steals, s.Aborts, s.StealInterference(), s.CrossProbeFraction(),
		s.OpLat.P50(), s.OpLat.P99(), s.OpLat.P999())
}

// MixAchieved returns the fraction of completed element movements that
// were adds, the x-axis of Figure 2 for the producer/consumer series.
func (s *PoolStats) MixAchieved() float64 {
	ops := s.Ops()
	if ops == 0 {
		return 0
	}
	return float64(s.Adds) / float64(ops)
}
