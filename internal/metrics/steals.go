package metrics

// OpKind identifies the kind of pool operation being measured.
type OpKind int

// Operation kinds. The paper measures adds and removes separately (typical
// undelayed times were ~70 µs per add and ~110 µs per remove on the
// Butterfly) and attributes steal costs to the removes that triggered them.
const (
	OpAdd OpKind = iota + 1
	OpRemove
)

// String returns "add" or "remove".
func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	default:
		return "unknown"
	}
}

// PoolStats aggregates every per-operation measurement the paper reports
// for one experiment run (one trial). It is not safe for concurrent use;
// concurrent collectors keep one PoolStats per processor and Merge at the
// end of the run.
type PoolStats struct {
	AddTime    Summary // duration of add operations (µs, virtual or real)
	RemoveTime Summary // duration of remove operations, including searches
	StealTime  Summary // duration of the search+steal portion of removes
	AbortTime  Summary // duration of removes aborted by the livelock rule

	SegmentsExamined Summary // segments probed per steal
	ElementsStolen   Summary // elements obtained per successful steal

	Adds         int64 // completed add operations
	Removes      int64 // completed remove operations (element obtained)
	LocalRemoves int64 // removes satisfied by the local segment
	Steals       int64 // removes that required a successful steal
	Aborts       int64 // removes aborted by the all-searching rule

	// Directed-add extension (paper Section 5): elements handed straight
	// to a searching process instead of the giver's local segment.
	DirectedGives    int64 // adds delivered into another process's mailbox
	DirectedReceives int64 // removes satisfied by a mailbox gift
}

// RecordAdd records one completed add and its duration.
func (s *PoolStats) RecordAdd(d int64) {
	s.Adds++
	s.AddTime.Add(float64(d))
}

// RecordLocalRemove records a remove satisfied locally.
func (s *PoolStats) RecordLocalRemove(d int64) {
	s.Removes++
	s.LocalRemoves++
	s.RemoveTime.Add(float64(d))
}

// RecordStealRemove records a remove that needed a steal: total duration d,
// steal portion sd, number of segments examined, and elements obtained.
func (s *PoolStats) RecordStealRemove(d, sd int64, examined, stolen int) {
	s.Removes++
	s.Steals++
	s.RemoveTime.Add(float64(d))
	s.StealTime.Add(float64(sd))
	s.SegmentsExamined.Add(float64(examined))
	s.ElementsStolen.Add(float64(stolen))
}

// RecordAbort records a remove aborted because every participant was
// searching (the paper's livelock resolution), and the time spent before
// the abort was detected.
func (s *PoolStats) RecordAbort(d int64) {
	s.Aborts++
	s.AbortTime.Add(float64(d))
}

// Merge folds another collector into s.
func (s *PoolStats) Merge(o *PoolStats) {
	s.AddTime.Merge(o.AddTime)
	s.RemoveTime.Merge(o.RemoveTime)
	s.StealTime.Merge(o.StealTime)
	s.AbortTime.Merge(o.AbortTime)
	s.SegmentsExamined.Merge(o.SegmentsExamined)
	s.ElementsStolen.Merge(o.ElementsStolen)
	s.Adds += o.Adds
	s.Removes += o.Removes
	s.LocalRemoves += o.LocalRemoves
	s.Steals += o.Steals
	s.Aborts += o.Aborts
	s.DirectedGives += o.DirectedGives
	s.DirectedReceives += o.DirectedReceives
}

// Ops returns the number of completed operations (adds + removes).
func (s *PoolStats) Ops() int64 { return s.Adds + s.Removes }

// AvgOpTime returns the mean duration over all operations — adds,
// removes, and aborted removes — the quantity plotted in the paper's
// Figure 2.
func (s *PoolStats) AvgOpTime() float64 {
	total := s.AddTime.Sum() + s.RemoveTime.Sum() + s.AbortTime.Sum()
	n := s.AddTime.N() + s.RemoveTime.N() + s.AbortTime.N()
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// StealFraction returns the fraction of completed removes that required a
// steal ("the percentage of remove operations that required a steal").
func (s *PoolStats) StealFraction() float64 {
	if s.Removes == 0 {
		return 0
	}
	return float64(s.Steals) / float64(s.Removes)
}

// MixAchieved returns the fraction of completed operations that were adds,
// the x-axis of Figure 2 for the producer/consumer series.
func (s *PoolStats) MixAchieved() float64 {
	ops := s.Ops()
	if ops == 0 {
		return 0
	}
	return float64(s.Adds) / float64(ops)
}
