package baseline

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestGlobalStackLIFO(t *testing.T) {
	s := NewGlobalStack[int]()
	if _, ok := s.Get(); ok {
		t.Fatal("empty stack Get should fail")
	}
	for i := 0; i < 10; i++ {
		s.Put(i)
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 9; i >= 0; i-- {
		v, ok := s.Get()
		if !ok || v != i {
			t.Fatalf("Get = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
}

func TestGlobalQueueFIFO(t *testing.T) {
	q := NewGlobalQueue[int]()
	if _, ok := q.Get(); ok {
		t.Fatal("empty queue Get should fail")
	}
	for i := 0; i < 100; i++ {
		q.Put(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Get()
		if !ok || v != i {
			t.Fatalf("Get = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
}

func TestGlobalQueueWrapAndRegrow(t *testing.T) {
	q := NewGlobalQueue[int]()
	next, expect := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			q.Put(next)
			next++
		}
		for i := 0; i < 5; i++ {
			v, ok := q.Get()
			if !ok || v != expect {
				t.Fatalf("round %d: Get = (%d,%v), want (%d,true)", round, v, ok, expect)
			}
			expect++
		}
	}
	if q.Len() != next-expect {
		t.Fatalf("Len = %d, want %d", q.Len(), next-expect)
	}
}

func TestChanPoolBasics(t *testing.T) {
	c := NewChanPool[int](4)
	if _, ok := c.Get(); ok {
		t.Fatal("empty ChanPool Get should fail")
	}
	// Exceed channel capacity to exercise the overflow path.
	for i := 0; i < 20; i++ {
		c.Put(i)
	}
	if c.Len() != 20 {
		t.Fatalf("Len = %d", c.Len())
	}
	seen := map[int]bool{}
	for i := 0; i < 20; i++ {
		v, ok := c.Get()
		if !ok || seen[v] {
			t.Fatalf("Get %d = (%d,%v)", i, v, ok)
		}
		seen[v] = true
	}
	if _, ok := c.Get(); ok {
		t.Fatal("drained ChanPool Get should fail")
	}
}

func TestChanPoolMinCapacity(t *testing.T) {
	c := NewChanPool[int](0)
	c.Put(1)
	if v, ok := c.Get(); !ok || v != 1 {
		t.Fatal("capacity-clamped pool broken")
	}
}

func TestAllBaselinesConserveConcurrently(t *testing.T) {
	impls := map[string]WorkList[int]{
		"stack": NewGlobalStack[int](),
		"queue": NewGlobalQueue[int](),
		"chan":  NewChanPool[int](64),
	}
	for name, w := range impls {
		w := w
		t.Run(name, func(t *testing.T) {
			const workers = 8
			const perWorker = 5000
			var wg sync.WaitGroup
			var mu sync.Mutex
			seen := map[int]bool{}
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for j := 0; j < perWorker; j++ {
						w.Put(id*perWorker + j)
						if v, ok := w.Get(); ok {
							mu.Lock()
							if seen[v] {
								mu.Unlock()
								t.Errorf("element %d delivered twice", v)
								return
							}
							seen[v] = true
							mu.Unlock()
						}
					}
				}(i)
			}
			wg.Wait()
			remaining := 0
			for {
				v, ok := w.Get()
				if !ok {
					break
				}
				if seen[v] {
					t.Fatalf("element %d delivered twice at drain", v)
				}
				seen[v] = true
				remaining++
			}
			if len(seen) != workers*perWorker {
				t.Fatalf("conserved %d, want %d", len(seen), workers*perWorker)
			}
		})
	}
}

func TestStackQueueEquivalentMultiset(t *testing.T) {
	f := func(ops []uint8) bool {
		s := NewGlobalStack[int]()
		q := NewGlobalQueue[int]()
		next := 0
		sCount, qCount := 0, 0
		for _, op := range ops {
			if op%2 == 0 {
				s.Put(next)
				q.Put(next)
				next++
			} else {
				_, okS := s.Get()
				_, okQ := q.Get()
				if okS != okQ {
					return false
				}
				if okS {
					sCount++
					qCount++
				}
			}
		}
		return s.Len() == q.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkGlobalStackPutGet(b *testing.B) {
	s := NewGlobalStack[int]()
	for i := 0; i < b.N; i++ {
		s.Put(i)
		s.Get()
	}
}

func BenchmarkGlobalQueuePutGet(b *testing.B) {
	q := NewGlobalQueue[int]()
	for i := 0; i < b.N; i++ {
		q.Put(i)
		q.Get()
	}
}

func BenchmarkChanPoolPutGet(b *testing.B) {
	c := NewChanPool[int](1024)
	for i := 0; i < b.N; i++ {
		c.Put(i)
		c.Get()
	}
}
