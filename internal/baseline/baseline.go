// Package baseline provides the centralized work-list structures the paper
// compares concurrent pools against, plus a modern channel-based
// alternative used as an ablation.
//
// Section 4.4: "The original version that used a stack with a global lock
// for the work list was 40% slower and had worse speedup (only 10.7 for 16
// processors)." GlobalStack is that comparator. GlobalQueue is the FIFO
// variant, and ChanPool is what idiomatic Go would reach for today.
package baseline

import "sync"

// WorkList is the minimal interface shared by the pool and the baselines
// when used as a task work list: unordered put/get with a false return
// when no element can be obtained.
type WorkList[T any] interface {
	Put(v T)
	Get() (T, bool)
	Len() int
}

// GlobalStack is a LIFO work list protected by a single global mutex —
// the paper's original tic-tac-toe work list.
type GlobalStack[T any] struct {
	mu    sync.Mutex
	items []T
}

// NewGlobalStack returns an empty stack.
func NewGlobalStack[T any]() *GlobalStack[T] { return &GlobalStack[T]{} }

var _ WorkList[int] = (*GlobalStack[int])(nil)

// Put pushes an element.
func (s *GlobalStack[T]) Put(v T) {
	s.mu.Lock()
	s.items = append(s.items, v)
	s.mu.Unlock()
}

// Get pops the most recently pushed element.
func (s *GlobalStack[T]) Get() (T, bool) {
	var zero T
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.items)
	if n == 0 {
		return zero, false
	}
	v := s.items[n-1]
	s.items[n-1] = zero
	s.items = s.items[:n-1]
	return v, true
}

// Len returns the current size.
func (s *GlobalStack[T]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// GlobalQueue is a FIFO work list protected by a single global mutex,
// backed by a ring buffer.
type GlobalQueue[T any] struct {
	mu   sync.Mutex
	buf  []T
	head int
	n    int
}

// NewGlobalQueue returns an empty queue.
func NewGlobalQueue[T any]() *GlobalQueue[T] { return &GlobalQueue[T]{} }

var _ WorkList[int] = (*GlobalQueue[int])(nil)

// Put enqueues an element.
func (q *GlobalQueue[T]) Put(v T) {
	q.mu.Lock()
	if q.n == len(q.buf) {
		newCap := len(q.buf) * 2
		if newCap < 8 {
			newCap = 8
		}
		buf := make([]T, newCap)
		for i := 0; i < q.n; i++ {
			buf[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = buf
		q.head = 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
	q.mu.Unlock()
}

// Get dequeues the oldest element.
func (q *GlobalQueue[T]) Get() (T, bool) {
	var zero T
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	if q.n == 0 {
		q.head = 0
	}
	return v, true
}

// Len returns the current size.
func (q *GlobalQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// ChanPool adapts a buffered channel to the WorkList interface: the
// idiomatic Go answer to work distribution, measured as an ablation. Put
// on a full channel falls back to a mutex-protected overflow list so that
// it never blocks (a work list must accept unbounded production).
type ChanPool[T any] struct {
	ch       chan T
	mu       sync.Mutex
	overflow []T
}

// NewChanPool returns a channel pool with the given buffer capacity
// (minimum 1).
func NewChanPool[T any](capacity int) *ChanPool[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &ChanPool[T]{ch: make(chan T, capacity)}
}

var _ WorkList[int] = (*ChanPool[int])(nil)

// Put delivers to the channel, spilling to the overflow list if full.
func (c *ChanPool[T]) Put(v T) {
	// Drain overflow opportunistically to preserve rough ordering.
	c.mu.Lock()
	for len(c.overflow) > 0 {
		select {
		case c.ch <- c.overflow[0]:
			c.overflow = c.overflow[1:]
			continue
		default:
		}
		break
	}
	c.mu.Unlock()
	select {
	case c.ch <- v:
	default:
		c.mu.Lock()
		c.overflow = append(c.overflow, v)
		c.mu.Unlock()
	}
}

// Get receives without blocking; it checks the overflow list first.
func (c *ChanPool[T]) Get() (T, bool) {
	c.mu.Lock()
	if len(c.overflow) > 0 {
		v := c.overflow[0]
		c.overflow = c.overflow[1:]
		c.mu.Unlock()
		return v, true
	}
	c.mu.Unlock()
	select {
	case v := <-c.ch:
		return v, true
	default:
		var zero T
		return zero, false
	}
}

// Len returns the approximate current size.
func (c *ChanPool[T]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ch) + len(c.overflow)
}
