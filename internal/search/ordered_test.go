package search

import "testing"

// TestOrderedSearcherVisitsPreferenceOrder checks the searcher probes
// segments in exactly the given order, restarting from the front on every
// search.
func TestOrderedSearcherVisitsPreferenceOrder(t *testing.T) {
	w := newFakeWorld(0, 8)
	w.fill(map[int]int{6: 8})
	s := NewOrderedSearcher([]int{0, 2, 4, 6, 1, 3, 5, 7})
	if s.Kind() != Ordered || Ordered.String() != "ordered" {
		t.Fatalf("Kind = %v (%s)", s.Kind(), s.Kind())
	}
	res := s.Search(w)
	if res.Aborted() || res.FoundAt != 6 {
		t.Fatalf("search found segment %d (got %d), want 6", res.FoundAt, res.Got)
	}
	if res.Examined != 4 {
		t.Fatalf("examined %d segments, want 4 (0,2,4,6)", res.Examined)
	}
	wantLog := []int{0, 2, 4, 6}
	for i, s := range wantLog {
		if w.probeLog[i] != s {
			t.Fatalf("probe %d hit segment %d, want %d (log %v)", i, w.probeLog[i], s, w.probeLog)
		}
	}
	// The second search restarts at the front of the order (the local
	// segment, which now holds the stolen elements) — a linear searcher
	// would have resumed at lastFound = 6 instead.
	w.probeLog = nil
	res = s.Search(w)
	if res.FoundAt != 0 || res.Examined != 1 {
		t.Fatalf("second search found %d after %d probes, want 0 after 1 (restart at front)", res.FoundAt, res.Examined)
	}
	s.Reset() // no state: must not panic or change behavior
}

// TestOrderedSearcherWrapsAndAborts checks an empty world wraps through
// the order repeatedly until the abort signal fires.
func TestOrderedSearcherWrapsAndAborts(t *testing.T) {
	w := newFakeWorld(1, 4)
	w.probeBudget = 10
	s := NewOrderedSearcher([]int{1, 0, 2, 3})
	res := s.Search(w)
	if !res.Aborted() {
		t.Fatal("search on an empty world did not abort")
	}
	if res.Examined != 10 {
		t.Fatalf("examined %d, want the full probe budget 10", res.Examined)
	}
	// Wrapped: probe 5 (index 4) revisits the front of the order.
	if w.probeLog[4] != 1 {
		t.Fatalf("wrap probe hit %d, want 1 (log %v)", w.probeLog[4], w.probeLog)
	}
}

// TestOrderedSearcherEmptyOrderPanics checks the constructor rejects an
// empty preference order (a programmer error).
func TestOrderedSearcherEmptyOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewOrderedSearcher(nil) did not panic")
		}
	}()
	NewOrderedSearcher(nil)
}
