package search

import (
	"testing"
)

// Exhaustive model check: for every non-empty occupancy pattern of a small
// pool, every starting segment, and every algorithm, a search must find an
// element without aborting, conserve the total, and touch at most a
// bounded number of segments.
func TestExhaustiveSmallPools(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		for mask := 1; mask < 1<<uint(n); mask++ {
			for self := 0; self < n; self++ {
				for _, kind := range Kinds() {
					w := newFakeWorld(self, n)
					total := 0
					for s := 0; s < n; s++ {
						if mask&(1<<uint(s)) != 0 {
							amount := 2 + s // distinct sizes catch split bugs
							w.fill(map[int]int{s: amount})
							total += amount
						}
					}
					searcher := New(kind, self, n, 77)
					res := searcher.Search(w)
					if res.Aborted() {
						t.Fatalf("n=%d mask=%b self=%d %v: aborted with elements present",
							n, mask, self, kind)
					}
					if w.total() != total {
						t.Fatalf("n=%d mask=%b self=%d %v: conservation broken: %d != %d",
							n, mask, self, kind, w.total(), total)
					}
					if mask&(1<<uint(res.FoundAt)) == 0 {
						t.Fatalf("n=%d mask=%b self=%d %v: found at empty segment %d",
							n, mask, self, kind, res.FoundAt)
					}
					// Linear visits each segment at most once per lap and
					// must succeed within one lap here.
					if kind == Linear && res.Examined > n {
						t.Fatalf("n=%d mask=%b self=%d: linear examined %d > %d",
							n, mask, self, res.Examined, n)
					}
				}
			}
		}
	}
}

// Repeated searches against a refilling world: per-search state (rounds,
// last-found) must never wedge an algorithm across many configurations.
func TestRepeatedSearchesNeverWedge(t *testing.T) {
	const n = 8
	for _, kind := range Kinds() {
		w := newFakeWorld(3, n)
		s := New(kind, 3, n, 5)
		for round := 0; round < 200; round++ {
			target := (round * 5) % n
			amount := round%7 + 1
			w.fill(map[int]int{target: amount})
			res := s.Search(w)
			if res.Aborted() {
				t.Fatalf("%v wedged at round %d (target %d)", kind, round, target)
			}
			// Drain for the next round.
			for !w.segs[3].Empty() {
				w.segs[3].Remove()
			}
			for !w.segs[res.FoundAt].Empty() {
				w.segs[res.FoundAt].Remove()
			}
		}
	}
}

// Two tree searchers sharing one world interleave arbitrarily; tree round
// counters must stay monotone and both searchers must keep finding
// elements.
func TestInterleavedTreeSearchers(t *testing.T) {
	const n = 8
	w := newFakeWorld(0, n)
	a := NewTreeSearcher(0, n)
	b := NewTreeSearcher(5, n)
	prev := make([]uint64, len(w.rounds))
	for round := 0; round < 100; round++ {
		w.fill(map[int]int{(round*3 + 1) % n: 4})
		var res Result
		if round%2 == 0 {
			res = a.Search(w)
		} else {
			w.self = 5
			res = b.Search(w)
			w.self = 0
		}
		if res.Aborted() {
			t.Fatalf("round %d aborted", round)
		}
		for i, r := range w.rounds {
			if r < prev[i] {
				t.Fatalf("round %d: node %d counter decreased %d -> %d", round, i, prev[i], r)
			}
			prev[i] = r
		}
		for i := range w.segs {
			for !w.segs[i].Empty() {
				w.segs[i].Remove()
			}
		}
	}
}

// A searcher's round counter never exceeds the maximum node round + 1
// (the invariant DESIGN.md lists), checked across many empty traversals.
func TestTreeRoundInvariantAcrossAborts(t *testing.T) {
	const n = 4
	w := newFakeWorld(1, n)
	s := NewTreeSearcher(1, n)
	for trial := 0; trial < 50; trial++ {
		w.aborted = false
		w.probes = 0
		w.probeBudget = 20 + trial
		s.Search(w) // aborts; rounds advance
		var maxNode uint64
		for _, r := range w.rounds {
			if r > maxNode {
				maxNode = r
			}
		}
		if s.MyRound() > maxNode+1 {
			t.Fatalf("trial %d: MyRound %d > max node round %d + 1", trial, s.MyRound(), maxNode)
		}
	}
}
