package search

import (
	"testing"
	"testing/quick"

	"pools/internal/rng"
)

func TestKindString(t *testing.T) {
	if Linear.String() != "linear" || Random.String() != "random" || Tree.String() != "tree" {
		t.Fatal("Kind names wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind string wrong")
	}
	if len(Kinds()) != 3 {
		t.Fatal("Kinds should list all three algorithms")
	}
}

func TestNumLeavesFor(t *testing.T) {
	cases := []struct{ segs, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16}, {16, 16}, {17, 32},
	}
	for _, c := range cases {
		if got := NumLeavesFor(c.segs); got != c.want {
			t.Errorf("NumLeavesFor(%d) = %d, want %d", c.segs, got, c.want)
		}
		if got := NumTreeNodes(c.segs); got != 2*c.want {
			t.Errorf("NumTreeNodes(%d) = %d, want %d", c.segs, got, 2*c.want)
		}
	}
}

func TestNewFactory(t *testing.T) {
	for _, k := range Kinds() {
		s := New(k, 3, 16, 1)
		if s.Kind() != k {
			t.Errorf("New(%v).Kind() = %v", k, s.Kind())
		}
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	cases := []func(){
		func() { New(Linear, 0, 0, 1) },
		func() { New(Linear, -1, 4, 1) },
		func() { New(Linear, 4, 4, 1) },
		func() { New(Kind(0), 0, 4, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestLinearFindsNextNonEmpty(t *testing.T) {
	w := newFakeWorld(0, 16)
	w.fill(map[int]int{5: 10})
	s := NewLinearSearcher(0)
	res := s.Search(w)
	if res.Aborted() {
		t.Fatal("search aborted")
	}
	if res.FoundAt != 5 {
		t.Fatalf("FoundAt = %d, want 5", res.FoundAt)
	}
	// Probes 0 (self), 1, 2, 3, 4, 5 = 6 probes.
	if res.Examined != 6 {
		t.Fatalf("Examined = %d, want 6", res.Examined)
	}
	if res.Got != 5 {
		t.Fatalf("Got = %d, want 5 (half of 10)", res.Got)
	}
	if w.segs[0].Len() != 5 || w.segs[5].Len() != 5 {
		t.Fatalf("elements not moved: self=%d remote=%d", w.segs[0].Len(), w.segs[5].Len())
	}
}

func TestLinearStartsAtLastFound(t *testing.T) {
	w := newFakeWorld(0, 16)
	w.fill(map[int]int{5: 10})
	s := NewLinearSearcher(0)
	s.Search(w)
	// Empty self again and put elements at 5 once more: next search should
	// begin exactly at 5 (self holds 5 elements from the steal).
	w.segs[0].TakeInto(&w.segs[5], 5)
	w.probeLog = nil
	res := s.Search(w)
	if res.FoundAt != 5 || res.Examined != 1 {
		t.Fatalf("resumed search: FoundAt=%d Examined=%d, want 5,1", res.FoundAt, res.Examined)
	}
	if w.probeLog[0] != 5 {
		t.Fatalf("first probe at %d, want 5", w.probeLog[0])
	}
}

func TestLinearWrapsRing(t *testing.T) {
	w := newFakeWorld(10, 16)
	w.fill(map[int]int{2: 4})
	s := NewLinearSearcher(10)
	res := s.Search(w)
	if res.FoundAt != 2 {
		t.Fatalf("FoundAt = %d, want 2", res.FoundAt)
	}
	// 10,11,12,13,14,15,0,1,2 = 9 probes.
	if res.Examined != 9 {
		t.Fatalf("Examined = %d, want 9", res.Examined)
	}
}

func TestLinearAbortsOnEmptyPool(t *testing.T) {
	w := newFakeWorld(0, 8)
	w.probeBudget = 100
	s := NewLinearSearcher(0)
	res := s.Search(w)
	if !res.Aborted() || res.FoundAt != -1 {
		t.Fatalf("expected abort, got %+v", res)
	}
	if res.Examined == 0 {
		t.Fatal("aborted search should still report probes")
	}
}

func TestLinearVisitsAllWithinOneLap(t *testing.T) {
	// Property: starting anywhere, an element in any segment is found
	// within Segments() probes.
	f := func(selfRaw, targetRaw uint8) bool {
		const n = 16
		self := int(selfRaw) % n
		target := int(targetRaw) % n
		w := newFakeWorld(self, n)
		w.fill(map[int]int{target: 3})
		s := NewLinearSearcher(self)
		res := s.Search(w)
		return !res.Aborted() && res.FoundAt == target && res.Examined <= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearReset(t *testing.T) {
	w := newFakeWorld(3, 8)
	w.fill(map[int]int{6: 2})
	s := NewLinearSearcher(3)
	s.Search(w)
	s.Reset()
	w2 := newFakeWorld(3, 8)
	w2.fill(map[int]int{6: 2})
	res := s.Search(w2)
	// After reset the search starts at self (3): probes 3,4,5,6.
	if res.Examined != 4 {
		t.Fatalf("Examined after reset = %d, want 4", res.Examined)
	}
}

func TestRandomFindsElement(t *testing.T) {
	w := newFakeWorld(0, 16)
	w.fill(map[int]int{9: 8})
	s := NewRandomSearcher(0, 42)
	res := s.Search(w)
	if res.Aborted() || res.FoundAt != 9 {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.Got != 4 {
		t.Fatalf("Got = %d, want 4", res.Got)
	}
}

func TestRandomDeterministicAfterReset(t *testing.T) {
	run := func(s *RandomSearcher) []int {
		w := newFakeWorld(0, 16)
		w.fill(map[int]int{13: 2})
		s.Search(w)
		return w.probeLog
	}
	s := NewRandomSearcher(0, 7)
	first := run(s)
	s.Reset()
	second := run(s)
	if len(first) != len(second) {
		t.Fatalf("probe counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("probe %d differs: %d vs %d", i, first[i], second[i])
		}
	}
}

func TestRandomAborts(t *testing.T) {
	w := newFakeWorld(0, 8)
	w.probeBudget = 50
	s := NewRandomSearcher(0, 1)
	res := s.Search(w)
	if !res.Aborted() {
		t.Fatal("expected abort on empty pool")
	}
}

func TestRandomProbesCoverAllSegments(t *testing.T) {
	// Over many aborted searches the random algorithm should touch every
	// segment (uniformity smoke test).
	w := newFakeWorld(0, 16)
	w.probeBudget = 4000
	s := NewRandomSearcher(0, 99)
	s.Search(w)
	seen := map[int]bool{}
	for _, p := range w.probeLog {
		seen[p] = true
	}
	if len(seen) != 16 {
		t.Fatalf("random probes visited only %d/16 segments", len(seen))
	}
}

func TestMatchingDescendant(t *testing.T) {
	// 16 leaves: heap indices 16..31.
	cases := []struct{ leaf, height, want int }{
		{16, 0, 17}, // flip within pair
		{17, 0, 16},
		{16, 1, 18}, // cross to the adjacent pair, same offset
		{19, 1, 17},
		{16, 2, 20},
		{23, 2, 19},
		{16, 3, 24}, // cross the tree's midline
		{31, 3, 23},
	}
	for _, c := range cases {
		if got := MatchingDescendant(c.leaf, c.height); got != c.want {
			t.Errorf("MatchingDescendant(%d,%d) = %d, want %d", c.leaf, c.height, got, c.want)
		}
	}
}

func TestMatchingDescendantProperties(t *testing.T) {
	f := func(leafRaw, heightRaw uint8) bool {
		const leaves = 16
		leaf := leaves + int(leafRaw)%leaves
		height := int(heightRaw) % 4 // heights 0..3 valid for 16 leaves
		m := MatchingDescendant(leaf, height)
		// Involution.
		if MatchingDescendant(m, height) != leaf {
			return false
		}
		// Still a leaf.
		if m < leaves || m >= 2*leaves {
			return false
		}
		// The ancestors at height+1 coincide; the ancestors at height differ.
		if m>>(uint(height)+1) != leaf>>(uint(height)+1) {
			return false
		}
		return m>>uint(height) == (leaf>>uint(height))^1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTreeFindsSibling(t *testing.T) {
	w := newFakeWorld(0, 16)
	w.fill(map[int]int{1: 6})
	s := NewTreeSearcher(0, 16)
	res := s.Search(w)
	if res.Aborted() || res.FoundAt != 1 {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.Got != 3 {
		t.Fatalf("Got = %d, want 3", res.Got)
	}
	// Own leaf then sibling leaf: 2 probes.
	if res.Examined != 2 {
		t.Fatalf("Examined = %d, want 2", res.Examined)
	}
}

func TestTreeFindsDistantSegment(t *testing.T) {
	w := newFakeWorld(0, 16)
	w.fill(map[int]int{15: 40})
	s := NewTreeSearcher(0, 16)
	res := s.Search(w)
	if res.Aborted() || res.FoundAt != 15 {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.Got != 20 {
		t.Fatalf("Got = %d, want 20", res.Got)
	}
	if res.NodeAccesses == 0 {
		t.Fatal("tree search should touch round counters")
	}
}

func TestTreeExaminesFewerSegmentsThanLinearWhenMarked(t *testing.T) {
	// After one full empty round the tree's counters steer the searcher;
	// the paper observes "the tree algorithm ... examines many fewer
	// segments in the course of a steal".
	const n = 16
	wTree := newFakeWorld(0, n)
	wTree.probeBudget = 200
	tr := NewTreeSearcher(0, n)
	tr.Search(wTree) // aborted; counters now mark empty subtrees
	wTree.aborted = false
	wTree.probeBudget = 0
	wTree.fill(map[int]int{8: 10})
	resTree := tr.Search(wTree)
	if resTree.Aborted() {
		t.Fatal("tree search aborted unexpectedly")
	}
	if resTree.Examined > n {
		t.Fatalf("tree examined %d segments, want <= %d", resTree.Examined, n)
	}
}

func TestTreeAbortsOnEmptyPool(t *testing.T) {
	w := newFakeWorld(3, 16)
	w.probeBudget = 500
	s := NewTreeSearcher(3, 16)
	res := s.Search(w)
	if !res.Aborted() {
		t.Fatal("expected abort")
	}
	if s.MyRound() < 2 {
		t.Fatalf("MyRound = %d; full empty traversals should advance rounds", s.MyRound())
	}
}

func TestTreeRoundsMonotone(t *testing.T) {
	w := newFakeWorld(0, 8)
	w.probeBudget = 300
	s := NewTreeSearcher(0, 8)
	prev := make([]uint64, len(w.rounds))
	// Wrap MaxRound to check monotonicity on every write.
	s.Search(w)
	for i, r := range w.rounds {
		if r < prev[i] {
			t.Fatalf("node %d round decreased", i)
		}
	}
	// A searcher's round never exceeds max node round + 1.
	var maxNode uint64
	for _, r := range w.rounds {
		if r > maxNode {
			maxNode = r
		}
	}
	if s.MyRound() > maxNode+1 {
		t.Fatalf("MyRound %d > max node round %d + 1", s.MyRound(), maxNode)
	}
}

func TestTreeCase3AdoptsNewerRound(t *testing.T) {
	w := newFakeWorld(0, 4)
	// Another process already marked the right half empty through round 5.
	// Searcher 0 exhausts the (actually empty) left half, reaches the root,
	// sees the sibling's round 5 > its own round 1, and must adopt it
	// (case 3) before eventually finding the elements hidden in segment 2.
	w.rounds[3] = 5 // right child of root
	w.fill(map[int]int{2: 2})
	s := NewTreeSearcher(0, 4)
	res := s.Search(w)
	if res.Aborted() {
		t.Fatal("aborted")
	}
	if s.MyRound() < 5 {
		t.Fatalf("MyRound = %d, want >= 5 (adopted from marked sibling)", s.MyRound())
	}
	if res.FoundAt != 2 {
		t.Fatalf("FoundAt = %d, want 2", res.FoundAt)
	}
}

func TestTreeSingleSegmentPool(t *testing.T) {
	w := newFakeWorld(0, 1)
	w.probeBudget = 10
	s := NewTreeSearcher(0, 1)
	res := s.Search(w)
	if !res.Aborted() {
		t.Fatal("expected abort on 1-segment empty pool")
	}
	w2 := newFakeWorld(0, 1)
	w2.fill(map[int]int{0: 3})
	s.Reset()
	res = s.Search(w2)
	if res.Aborted() || res.Got != 3 || res.FoundAt != 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestTreeNonPowerOfTwoSegments(t *testing.T) {
	// 5 segments pad to 8 leaves; phantom leaves must never be probed.
	w := newFakeWorld(0, 5)
	w.fill(map[int]int{4: 9})
	s := NewTreeSearcher(0, 5)
	res := s.Search(w)
	if res.Aborted() || res.FoundAt != 4 {
		t.Fatalf("unexpected result %+v", res)
	}
	for _, p := range w.probeLog {
		if p >= 5 {
			t.Fatalf("probed phantom segment %d", p)
		}
	}
}

func TestTreeRequiresTreeWorld(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-TreeWorld")
		}
	}()
	s := NewTreeSearcher(0, 4)
	s.Search(plainWorld{})
}

type plainWorld struct{}

func (plainWorld) Segments() int    { return 4 }
func (plainWorld) Self() int        { return 0 }
func (plainWorld) TrySteal(int) int { return 0 }
func (plainWorld) Aborted() bool    { return true }

func TestTreeResetRestoresInitialState(t *testing.T) {
	s := NewTreeSearcher(2, 16)
	w := newFakeWorld(2, 16)
	w.probeBudget = 100
	s.Search(w)
	s.Reset()
	if s.MyRound() != 1 {
		t.Fatalf("MyRound after Reset = %d, want 1", s.MyRound())
	}
	// After reset the first probe must be the process's own leaf.
	w2 := newFakeWorld(2, 16)
	w2.fill(map[int]int{2: 1})
	res := s.Search(w2)
	if res.Examined != 1 || res.FoundAt != 2 {
		t.Fatalf("first search after reset: %+v", res)
	}
}

// Cross-algorithm property: every algorithm finds the single non-empty
// segment (no aborts) and conserves elements.
func TestAllAlgorithmsFindAndConserve(t *testing.T) {
	f := func(selfRaw, targetRaw uint8, amountRaw uint8, kindRaw uint8) bool {
		const n = 16
		self := int(selfRaw) % n
		target := int(targetRaw) % n
		amount := int(amountRaw)%40 + 1
		kind := Kinds()[int(kindRaw)%3]
		w := newFakeWorld(self, n)
		w.fill(map[int]int{target: amount})
		before := w.total()
		s := New(kind, self, n, uint64(selfRaw)*7+1)
		res := s.Search(w)
		if res.Aborted() {
			return false
		}
		if w.total() != before {
			return false
		}
		if res.FoundAt != target && target != self {
			// Only the target had elements, so it must be found there
			// (if target == self the search may report self).
			return false
		}
		want := amount
		if target != self {
			want = (amount + 1) / 2
		}
		return res.Got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The tree steers searchers away from empty subtrees: with half the tree
// permanently empty and marked, repeated searches probe fewer segments
// than a full lap.
func TestTreeSteeringReducesProbes(t *testing.T) {
	const n = 16
	w := newFakeWorld(0, n)
	s := NewTreeSearcher(0, n)
	// Segment 15 refills forever; everything else stays empty.
	total := 0
	for trial := 0; trial < 20; trial++ {
		w.fill(map[int]int{15: 2})
		res := s.Search(w)
		if res.Aborted() {
			t.Fatal("aborted")
		}
		// Drain self for next iteration.
		for !w.segs[0].Empty() {
			w.segs[0].Remove()
		}
		total += res.Examined
	}
	avg := float64(total) / 20
	if avg > float64(n) {
		t.Fatalf("tree averaged %.1f probes per steal, want <= %d", avg, n)
	}
}

func BenchmarkLinearSearch16(b *testing.B) {
	w := newFakeWorld(0, 16)
	s := NewLinearSearcher(0)
	for i := 0; i < b.N; i++ {
		w.fill(map[int]int{15: 2})
		s.Search(w)
	}
}

func BenchmarkRandomSearch16(b *testing.B) {
	w := newFakeWorld(0, 16)
	s := NewRandomSearcher(0, 1)
	for i := 0; i < b.N; i++ {
		w.fill(map[int]int{15: 2})
		s.Search(w)
	}
}

func BenchmarkTreeSearch16(b *testing.B) {
	w := newFakeWorld(0, 16)
	s := NewTreeSearcher(0, 16)
	for i := 0; i < b.N; i++ {
		w.fill(map[int]int{15: 2})
		s.Search(w)
	}
}

var _ = rng.Mix // keep import for potential future use
