// Package search implements the three steal-search algorithms the paper
// evaluates: Manber's tree search, linear (ring) search, and random search.
//
// The algorithms are written against the World interface so that exactly
// the same decision logic drives both execution substrates in this repo:
//
//   - the real concurrent pool (internal/core), where World methods hit
//     mutex-protected element segments and atomic round counters, and
//   - the Butterfly simulator (internal/sim), where World methods charge
//     virtual time for local/remote accesses and queue on simulated locks.
//
// A Searcher carries the per-process state the paper describes (MyRound,
// LastLeaf for the tree; LastFound for linear; a private PRNG for random).
// Searchers are NOT safe for concurrent use: each process owns one.
package search

import "fmt"

// Kind selects a search algorithm.
type Kind int

// The three algorithms evaluated in the paper.
const (
	Linear Kind = iota + 1
	Random
	Tree
)

// String returns the lower-case algorithm name.
func (k Kind) String() string {
	switch k {
	case Linear:
		return "linear"
	case Random:
		return "random"
	case Tree:
		return "tree"
	case Ordered:
		return "ordered"
	case Hierarchical:
		return "hierarchical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists all algorithms in presentation order (the order the paper
// introduces them is tree, linear, random; we sweep in enum order).
func Kinds() []Kind { return []Kind{Linear, Random, Tree} }

// World is a searching process's view of the pool. Implementations are
// responsible for synchronization and for charging local/remote access
// costs; the search algorithms only decide *where to look next*.
type World interface {
	// Segments returns the number of segments in the pool.
	Segments() int
	// Self returns the caller's segment index.
	Self() int
	// TrySteal probes segment s. If s is non-empty it steals roughly half
	// of s's elements into the caller's segment (a single element is taken
	// outright) and returns the number obtained; it returns 0 if s was
	// empty. Probing s == Self just reports the local segment's size.
	TrySteal(s int) int
	// Aborted reports whether the search must stop: the paper aborts an
	// operation when every participating process is searching (pool-wide
	// livelock), and implementations may also fold in cancellation.
	Aborted() bool
}

// TreeWorld extends World with the superimposed binary tree of round
// counters required by the tree algorithm. Nodes use heap indices:
// the root is 1, node n's children are 2n and 2n+1, and with L leaves
// (L = NumLeaves, a power of two) leaf l of segment i has index L+i.
type TreeWorld interface {
	World
	// NumLeaves returns the number of tree leaves: the smallest power of
	// two >= Segments(). Segments beyond Segments() are phantom leaves
	// that are permanently empty.
	NumLeaves() int
	// RoundOf returns node n's round counter.
	RoundOf(n int) uint64
	// MaxRound raises node n's round counter to r if r is greater.
	// (The paper guards examine+modify with a lock; monotonic max is the
	// equivalent lock-free contract and is what the simulator serializes.)
	MaxRound(n int, r uint64)
}

// Result reports the outcome of one search.
type Result struct {
	// Got is the number of elements obtained (moved into the local
	// segment). Zero means the search aborted.
	Got int
	// FoundAt is the segment that supplied the elements, or -1 on abort.
	FoundAt int
	// Examined is the number of segment probes performed, including the
	// final successful one ("the number of segments examined per steal").
	Examined int
	// NodeAccesses counts tree round-counter reads and writes (zero for
	// the linear and random algorithms).
	NodeAccesses int
}

// Aborted reports whether the search failed to obtain elements.
func (r Result) Aborted() bool { return r.Got == 0 }

// Searcher is one process's search algorithm instance.
type Searcher interface {
	// Search hunts for elements on behalf of w.Self, stealing into the
	// local segment, and reports the outcome.
	Search(w World) Result
	// Reset clears per-run state (round counters, last-found positions)
	// so a Searcher can be reused across trials.
	Reset()
	// Kind identifies the algorithm.
	Kind() Kind
}

// New constructs a Searcher of the given kind for the process owning
// segment self in a pool with the given number of segments. The seed is
// used only by the random algorithm. It panics on an unknown kind or
// invalid geometry (these are programmer errors, not runtime conditions).
func New(kind Kind, self, segments int, seed uint64) Searcher {
	if segments < 1 {
		panic(fmt.Sprintf("search: segments = %d, need >= 1", segments))
	}
	if self < 0 || self >= segments {
		panic(fmt.Sprintf("search: self = %d out of [0,%d)", self, segments))
	}
	switch kind {
	case Linear:
		return NewLinearSearcher(self)
	case Random:
		return NewRandomSearcher(self, seed)
	case Tree:
		return NewTreeSearcher(self, segments)
	default:
		panic(fmt.Sprintf("search: unknown kind %d", int(kind)))
	}
}

// NumLeavesFor returns the tree leaf count for a segment count: the
// smallest power of two >= segments (the paper assumes a full tree).
func NumLeavesFor(segments int) int {
	l := 1
	for l < segments {
		l *= 2
	}
	return l
}

// NumTreeNodes returns the number of heap slots needed for a tree over the
// given segment count, including the unused slot 0.
func NumTreeNodes(segments int) int {
	return 2 * NumLeavesFor(segments)
}
