package search

import "fmt"

// TreeSearcher implements Manber's tree search algorithm as specified in
// Section 2.1 of the paper. A binary tree is superimposed on the segments,
// each segment occupying a leaf. Every tree node carries a round counter
// recording that the subtree below it has been traversed completely and
// found empty in all rounds up to and including that value. Each process
// keeps its own round counter (MyRound, initially 1; node counters start
// at 0) and the most recently visited leaf (LastLeaf).
//
// Walking up from an exhausted subtree at an internal node, with `child`
// the subtree it came from, the process:
//
//  1. descends into the sibling subtree when the sibling's counter is less
//     than its own round, jumping directly to the *matching descendant* —
//     the leaf in the sibling subtree symmetrically in the same position
//     as LastLeaf (Figure 1);
//  2. moves further up when the sibling's counter equals its round (at the
//     root it instead increments its round and restarts at its own leaf);
//  3. decides it is behind when a child's counter exceeds its round,
//     adopts the higher value, and restarts at its own leaf.
//
// The searcher operates on a TreeWorld, which owns the round-counter
// storage (so the two substrates can charge access costs and model the
// paper's per-node locking).
type TreeSearcher struct {
	self     int
	segments int
	leaves   int // power of two >= segments

	myRound  uint64
	lastLeaf int // heap index of the most recently visited leaf
	started  bool
}

// NewTreeSearcher returns a tree searcher for the process owning segment
// self in a pool with the given number of segments. If segments is not a
// power of two the tree is padded with permanently-empty phantom leaves
// (the paper assumes a full tree "for convenience").
func NewTreeSearcher(self, segments int) *TreeSearcher {
	leaves := NumLeavesFor(segments)
	return &TreeSearcher{
		self:     self,
		segments: segments,
		leaves:   leaves,
		myRound:  1,
		lastLeaf: leaves + self,
	}
}

var _ Searcher = (*TreeSearcher)(nil)

// Kind returns Tree.
func (t *TreeSearcher) Kind() Kind { return Tree }

// Reset restores the paper's initial state: MyRound = 1, next search
// starts at the process's own leaf.
func (t *TreeSearcher) Reset() {
	t.myRound = 1
	t.lastLeaf = t.leaves + t.self
	t.started = false
}

// MyRound exposes the process's round counter for tests and invariant
// checks.
func (t *TreeSearcher) MyRound() uint64 { return t.myRound }

// Search runs TreeSearch until a steal succeeds or the world aborts. The
// first search starts at the process's own leaf (TreeSearch(MyLeaf, nil));
// subsequent searches start at the last visited leaf
// (TreeSearch(LastLeaf, nil)), per Section 2.1.
func (t *TreeSearcher) Search(w World) Result {
	tw, ok := w.(TreeWorld)
	if !ok {
		panic(fmt.Sprintf("search: tree searcher requires a TreeWorld, got %T", w))
	}
	if tw.NumLeaves() != t.leaves {
		panic(fmt.Sprintf("search: world has %d leaves, searcher built for %d", tw.NumLeaves(), t.leaves))
	}
	myLeaf := t.leaves + t.self

	node := t.lastLeaf
	if !t.started {
		node = myLeaf
		t.started = true
	}
	// childHeight is the height of `child` when node is internal: the
	// subtree we most recently exhausted. At a leaf it is meaningless.
	child := 0
	childHeight := -1

	res := Result{FoundAt: -1}
	for !w.Aborted() {
		if node >= t.leaves { // leaf
			t.lastLeaf = node
			seg := node - t.leaves
			if seg < t.segments {
				got := w.TrySteal(seg)
				res.Examined++
				if got > 0 {
					res.Got = got
					res.FoundAt = seg
					return res
				}
			}
			// Leaf empty (or phantom): move up, remembering where we
			// came from. A 1-segment pool has the leaf as root; keep
			// re-probing until the world aborts.
			if node == 1 {
				continue
			}
			child = node
			childHeight = 0
			node >>= 1
			continue
		}

		// Internal node; child is the subtree we exhausted.
		left, right := 2*node, 2*node+1
		rl := tw.RoundOf(left)
		rr := tw.RoundOf(right)
		res.NodeAccesses += 2
		maxr := rl
		if rr > maxr {
			maxr = rr
		}
		if maxr > t.myRound {
			// Case 3: we are behind; adopt the newer round and restart
			// at our own leaf.
			t.myRound = maxr
			node = myLeaf
			continue
		}

		// Mark the exhausted child empty as of our round.
		tw.MaxRound(child, t.myRound)
		res.NodeAccesses++

		sibling := child ^ 1
		var siblingRound uint64
		if sibling == left {
			siblingRound = rl
		} else {
			siblingRound = rr
		}
		if siblingRound == t.myRound {
			// Case 2: sibling subtree marked empty as recently as ours.
			if node == 1 {
				// Whole tree empty this round: start a new round at our
				// own leaf.
				t.myRound++
				node = myLeaf
				continue
			}
			child = node
			childHeight++
			node >>= 1
			continue
		}

		// Case 1: descend into the sibling subtree, jumping directly to
		// the matching descendant of LastLeaf around this node.
		node = MatchingDescendant(t.lastLeaf, childHeight)
	}
	return res
}

// MatchingDescendant returns the leaf in the sibling subtree symmetrically
// in the same position as lastLeaf, where the subtree being left is rooted
// at lastLeaf's ancestor of the given height (0 = the leaf itself). In heap
// indexing this is lastLeaf with the height-th path bit flipped: the leaf
// reached by crossing to the sibling and keeping the same relative path.
func MatchingDescendant(lastLeaf, height int) int {
	return lastLeaf ^ (1 << uint(height))
}
