package search

// Ordered identifies OrderedSearcher instances. It is not one of the three
// paper algorithms (and search.New does not construct it): ordered
// searchers are built by locality-aware victim orders — see
// policy.LocalityOrder — which precompute a preference permutation from an
// access cost model.
const Ordered Kind = -1

// Hierarchical identifies cluster-first escalating searchers (see
// policy.HierarchicalOrder). Like Ordered it is not a paper algorithm and
// search.New does not construct it: hierarchical searchers are built by
// the policy layer from a numa.Topology's hop rings.
const Hierarchical Kind = -2

// OrderedSearcher visits segments in a fixed preference order, restarting
// from the front of the order on every search. It models a process that
// always looks in the cheapest places first — the locality-aware
// alternative to the paper's three algorithms, which are all blind to
// where a victim lives (Section 4.3 shows their costs converge as remote
// delays grow precisely because every remote probe is charged alike; under
// a non-uniform cost model a near-first order keeps its advantage).
type OrderedSearcher struct {
	order []int
}

// NewOrderedSearcher returns a searcher visiting the given segment order.
// The order must be non-empty; it conventionally starts with the caller's
// own segment (the cheapest probe). The slice is retained, not copied.
func NewOrderedSearcher(order []int) *OrderedSearcher {
	if len(order) == 0 {
		panic("search: empty order")
	}
	return &OrderedSearcher{order: order}
}

var _ Searcher = (*OrderedSearcher)(nil)

// Kind returns Ordered.
func (o *OrderedSearcher) Kind() Kind { return Ordered }

// Order returns the visit order (the retained slice; callers must not
// mutate it).
func (o *OrderedSearcher) Order() []int { return o.order }

// Reset implements Searcher. Ordered searches carry no cross-search state:
// every search restarts at the front of the preference order.
func (o *OrderedSearcher) Reset() {}

// Search probes segments in preference order, wrapping around, until a
// steal succeeds or the world aborts.
func (o *OrderedSearcher) Search(w World) Result {
	examined := 0
	for i := 0; !w.Aborted(); i++ {
		s := o.order[i%len(o.order)]
		got := w.TrySteal(s)
		examined++
		if got > 0 {
			return Result{Got: got, FoundAt: s, Examined: examined}
		}
	}
	return Result{FoundAt: -1, Examined: examined}
}
