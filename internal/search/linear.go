package search

// LinearSearcher implements the paper's linear algorithm: "starts looking
// at the segment where it last found elements, and travels from one segment
// to the next segment, as if they were arranged in a ring, until it finds a
// non-empty segment to split."
type LinearSearcher struct {
	self      int
	lastFound int
}

// NewLinearSearcher returns a linear searcher for the process owning
// segment self. The first search begins at the local segment, matching the
// paper's initial LinearSearch(MyLeaf) call.
func NewLinearSearcher(self int) *LinearSearcher {
	return &LinearSearcher{self: self, lastFound: self}
}

var _ Searcher = (*LinearSearcher)(nil)

// Kind returns Linear.
func (l *LinearSearcher) Kind() Kind { return Linear }

// Reset restores the initial state (next search starts at the local
// segment).
func (l *LinearSearcher) Reset() { l.lastFound = l.self }

// Search walks the ring from LastFound until a steal succeeds or the world
// aborts.
func (l *LinearSearcher) Search(w World) Result {
	n := w.Segments()
	s := l.lastFound
	if s >= n {
		s = l.self % n
	}
	examined := 0
	for !w.Aborted() {
		got := w.TrySteal(s)
		examined++
		if got > 0 {
			l.lastFound = s
			return Result{Got: got, FoundAt: s, Examined: examined}
		}
		s++
		if s == n {
			s = 0
		}
	}
	return Result{FoundAt: -1, Examined: examined}
}
