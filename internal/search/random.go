package search

import "pools/internal/rng"

// RandomSearcher implements the paper's random algorithm: "chooses segments
// at random until it finds a non-empty segment to split."
type RandomSearcher struct {
	self int
	seed uint64
	rng  *rng.Xoshiro256
}

// NewRandomSearcher returns a random searcher for the process owning
// segment self, with a private deterministic PRNG derived from seed.
func NewRandomSearcher(self int, seed uint64) *RandomSearcher {
	return &RandomSearcher{self: self, seed: seed, rng: rng.NewXoshiro256(seed)}
}

var _ Searcher = (*RandomSearcher)(nil)

// Kind returns Random.
func (r *RandomSearcher) Kind() Kind { return Random }

// Reset reseeds the private PRNG so a trial replays identically.
func (r *RandomSearcher) Reset() { r.rng.Seed(r.seed) }

// Search probes uniformly random segments until a steal succeeds or the
// world aborts.
func (r *RandomSearcher) Search(w World) Result {
	n := w.Segments()
	examined := 0
	for !w.Aborted() {
		s := r.rng.Intn(n)
		got := w.TrySteal(s)
		examined++
		if got > 0 {
			return Result{Got: got, FoundAt: s, Examined: examined}
		}
	}
	return Result{FoundAt: -1, Examined: examined}
}
