package search

import (
	"pools/internal/segment"
)

// fakeWorld is a single-threaded in-memory World/TreeWorld for unit tests.
// Segment contents are plain counters; TrySteal applies the paper's
// split-half rule into the self segment.
type fakeWorld struct {
	self    int
	segs    []segment.Counter
	rounds  []uint64
	leaves  int
	aborted bool

	probeBudget int   // abort after this many probes if > 0
	probes      int   // total probes so far
	probeLog    []int // sequence of probed segments
}

func newFakeWorld(self, segments int) *fakeWorld {
	leaves := NumLeavesFor(segments)
	return &fakeWorld{
		self:   self,
		segs:   make([]segment.Counter, segments),
		rounds: make([]uint64, 2*leaves),
		leaves: leaves,
	}
}

func (f *fakeWorld) fill(sizes map[int]int) {
	for s, n := range sizes {
		f.segs[s] = segment.Counter{}
		f.segs[s].Add(int64(n))
	}
}

func (f *fakeWorld) total() int {
	t := 0
	for i := range f.segs {
		t += f.segs[i].Len()
	}
	return t
}

func (f *fakeWorld) Segments() int { return len(f.segs) }
func (f *fakeWorld) Self() int     { return f.self }

func (f *fakeWorld) TrySteal(s int) int {
	f.probes++
	f.probeLog = append(f.probeLog, s)
	if f.probeBudget > 0 && f.probes >= f.probeBudget {
		f.aborted = true
	}
	if s == f.self {
		return f.segs[s].Len()
	}
	return f.segs[s].SplitInto(&f.segs[f.self])
}

func (f *fakeWorld) Aborted() bool { return f.aborted }

func (f *fakeWorld) NumLeaves() int { return f.leaves }

func (f *fakeWorld) RoundOf(n int) uint64 { return f.rounds[n] }

func (f *fakeWorld) MaxRound(n int, r uint64) {
	if r > f.rounds[n] {
		f.rounds[n] = r
	}
}

var (
	_ World     = (*fakeWorld)(nil)
	_ TreeWorld = (*fakeWorld)(nil)
)
