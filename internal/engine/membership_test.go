package engine

import (
	"sync"
	"testing"
)

// TestMembershipTransitions exercises the leave/join state machine: bit
// transitions, live counting, last-alive refusal, idempotence, and the
// epoch stamp on every successful transition.
func TestMembershipTransitions(t *testing.T) {
	m := NewMembership(4)
	if m.Segments() != 4 || m.Live() != 4 {
		t.Fatalf("fresh membership: Segments=%d Live=%d, want 4/4", m.Segments(), m.Live())
	}
	for s := 0; s < 4; s++ {
		if !m.Alive(s) || !m.Victim(s) {
			t.Fatalf("fresh segment %d: Alive=%v Victim=%v, want true/true", s, m.Alive(s), m.Victim(s))
		}
	}
	e0 := m.Epoch()

	// Steal-only leave: dead but still a victim.
	if !m.Leave(1, true) {
		t.Fatal("Leave(1, keepVictim) refused on a fresh membership")
	}
	if m.Alive(1) || !m.Victim(1) {
		t.Fatalf("steal-only departed segment: Alive=%v Victim=%v, want false/true", m.Alive(1), m.Victim(1))
	}
	if m.Live() != 3 {
		t.Fatalf("Live=%d after one leave, want 3", m.Live())
	}
	if m.Epoch() == e0 {
		t.Fatal("Leave did not bump the epoch")
	}

	// Drain leave: dead and out of the victim set.
	if !m.Leave(2, false) {
		t.Fatal("Leave(2, drain) refused")
	}
	if m.Alive(2) || m.Victim(2) {
		t.Fatalf("drained departed segment: Alive=%v Victim=%v, want false/false", m.Alive(2), m.Victim(2))
	}

	// Leaving an already-departed segment is a no-op.
	e := m.Epoch()
	if m.Leave(1, false) {
		t.Fatal("Leave succeeded on an already-departed segment")
	}
	if m.Epoch() != e || m.Live() != 2 {
		t.Fatalf("failed Leave mutated state: epoch %d→%d, Live=%d", e, m.Epoch(), m.Live())
	}

	// Join re-admits as a full alive victim; joining an alive segment is
	// a no-op.
	if !m.Join(2) {
		t.Fatal("Join(2) refused on a departed segment")
	}
	if !m.Alive(2) || !m.Victim(2) || m.Live() != 3 {
		t.Fatalf("rejoined segment: Alive=%v Victim=%v Live=%d, want true/true/3", m.Alive(2), m.Victim(2), m.Live())
	}
	if m.Epoch() == e {
		t.Fatal("Join did not bump the epoch")
	}
	if m.Join(2) {
		t.Fatal("Join succeeded on an alive segment")
	}

	// Bump advances the epoch with no membership change.
	e = m.Epoch()
	if got := m.Bump(); got != e+1 || m.Epoch() != e+1 {
		t.Fatalf("Bump: got %d, Epoch=%d, want %d", got, m.Epoch(), e+1)
	}
}

// TestMembershipLastAlive pins the refusal rule: the last alive segment
// cannot leave — a pool with no live member would strand every element.
func TestMembershipLastAlive(t *testing.T) {
	m := NewMembership(3)
	if !m.Leave(0, true) || !m.Leave(1, false) {
		t.Fatal("setup leaves refused")
	}
	e := m.Epoch()
	if m.Leave(2, true) {
		t.Fatal("last alive segment was allowed to leave")
	}
	if m.Live() != 1 || !m.Alive(2) || m.Epoch() != e {
		t.Fatalf("refused Leave mutated state: Live=%d Alive(2)=%v epoch %d→%d", m.Live(), m.Alive(2), e, m.Epoch())
	}
	// After a rejoin the previously-refused leave goes through.
	if !m.Join(0) || !m.Leave(2, true) {
		t.Fatal("leave still refused after a rejoin restored a second live member")
	}
}

// TestMembershipFallbackVictim covers the redirect scan: nearest victim
// at or after `from` in ring order, wrapping, and -1 when none remains.
func TestMembershipFallbackVictim(t *testing.T) {
	m := NewMembership(4)
	m.Leave(2, false)
	if got := m.FallbackVictim(2); got != 3 {
		t.Fatalf("FallbackVictim(2) = %d, want 3", got)
	}
	m.Leave(3, false)
	if got := m.FallbackVictim(2); got != 0 {
		t.Fatalf("FallbackVictim(2) = %d, want 0 (ring wrap)", got)
	}
	if got := m.FallbackVictim(1); got != 1 {
		t.Fatalf("FallbackVictim(1) = %d, want 1 (victim itself)", got)
	}

	// All victims gone is representable even though all alive is not:
	// steal-only members keep the victim bit, so strip it by hand.
	one := NewMembership(1)
	one.state[0].w.Store(memberAlive)
	if got := one.FallbackVictim(0); got != -1 {
		t.Fatalf("FallbackVictim with no victims = %d, want -1", got)
	}
}

// TestMembershipConcurrentChurn hammers leave/join from many goroutines
// (run under -race) and checks the conserved quantities afterwards: the
// live count matches the alive bits, at least one member survived, and
// the epoch moved at least as many times as there were successful
// transitions.
func TestMembershipConcurrentChurn(t *testing.T) {
	const segs, workers, iters = 8, 8, 500
	m := NewMembership(segs)
	var transitions sync.Map
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := 0
			for i := 0; i < iters; i++ {
				s := (w + i) % segs
				if i%2 == 0 {
					if m.Leave(s, i%4 == 0) {
						n++
					}
				} else if m.Join(s) {
					n++
				}
			}
			transitions.Store(w, n)
		}(w)
	}
	wg.Wait()

	alive := 0
	for s := 0; s < segs; s++ {
		if m.Alive(s) {
			alive++
		}
	}
	if alive != m.Live() {
		t.Fatalf("Live()=%d but %d alive bits set", m.Live(), alive)
	}
	if alive < 1 {
		t.Fatal("churn killed the last alive member")
	}
	total := 0
	transitions.Range(func(_, v any) bool { total += v.(int); return true })
	if got := m.Epoch(); got != uint64(total) {
		t.Fatalf("epoch %d after %d successful transitions", got, total)
	}
}
