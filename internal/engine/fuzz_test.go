package engine

import (
	"testing"

	"pools/internal/policy"
	"pools/internal/search"
)

// FuzzEngineSearch drives the engine over a scripted world decoded from
// the fuzz input: segment count, initial sizes, self index, search order,
// and termination rule all come from the bytes. The invariants are the
// protocol's contract, independent of configuration:
//
//   - a search never probes out of range and never runs past its
//     termination rule's budget (Bounded) or a covered-and-stable pool
//     (Coverage);
//   - Got > 0 implies the probed segment actually supplied elements, and
//     FoundAt is that segment;
//   - an aborted search reports Got == 0 and FoundAt == -1;
//   - Enter and Exit bracket every search exactly once.
func FuzzEngineSearch(f *testing.F) {
	f.Add([]byte{4, 0, 1, 0, 0, 8, 0})
	f.Add([]byte{8, 1, 0, 255, 0, 0, 0, 0, 0, 1, 2})
	f.Add([]byte{3, 2, 2, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		n := int(data[0])%12 + 1
		self := int(data[1]) % n
		mode := data[2]
		segs := make([]int, n)
		for i := range segs {
			if 3+i < len(data) {
				segs[i] = int(data[3+i]) % 16
			}
		}
		sub := &fakeSub{segs: segs, self: self}

		var pol policy.Set
		switch mode % 3 {
		case 0:
			pol = policy.Set{Order: policy.Order{Kind: search.Linear}}
		case 1:
			pol = policy.Set{Order: policy.Order{Kind: search.Random}}
		case 2:
			ph := policy.NewPerHandle()
			pol = policy.Set{Steal: ph, Control: ph, Order: policy.Order{Kind: search.Linear}}
		}
		budget := n * (int(mode/3)%3 + 1)
		e := New(Config{
			Self:     self,
			Segments: n,
			Policies: pol.WithDefaults(search.Linear, false),
			Seed:     uint64(len(data)),
		}, sub, NewBounded(budget))

		total := 0
		for _, s := range segs {
			total += s
		}
		res := e.Search(int(mode)%4 + 1)

		if sub.enters != 1 || sub.exits != 1 {
			t.Fatalf("Enter/Exit = %d/%d, want exactly one bracket", sub.enters, sub.exits)
		}
		for _, s := range sub.probes {
			if s < 0 || s >= n {
				t.Fatalf("probe of out-of-range segment %d (n=%d)", s, n)
			}
		}
		if res.Got > 0 {
			if res.FoundAt < 0 || res.FoundAt >= n {
				t.Fatalf("successful search reports FoundAt=%d", res.FoundAt)
			}
			if total == 0 {
				t.Fatal("search obtained elements from an empty world")
			}
			if sub.reserved != 1 {
				t.Fatalf("reserved %d elements, want exactly 1", sub.reserved)
			}
		} else {
			if res.FoundAt != -1 {
				t.Fatalf("aborted search reports FoundAt=%d, want -1", res.FoundAt)
			}
			// Bounded termination: the probe count never exceeds the
			// budget (the rule is checked before every probe).
			if res.Examined > budget {
				t.Fatalf("aborted after %d probes, budget %d", res.Examined, budget)
			}
		}
		left := 0
		for _, s := range sub.segs {
			left += s
		}
		if left+sub.reserved != total {
			t.Fatalf("elements not conserved: %d left + %d reserved != %d initial", left, sub.reserved, total)
		}
	})
}
