// Package engine implements the paper's parameterized search-and-steal
// protocol exactly once, shared by every execution substrate in the repo.
//
// The paper's contribution is a single protocol — search remote segments
// in a policy-chosen order, steal a policy-chosen share of the first
// non-empty one, feed the outcome back to an online controller, and abort
// when emptiness is certified — evaluated across substrates. Before this
// package existed the repo implemented that loop three times: the real
// pool (internal/core), the virtual-time simulator (internal/sim), and
// the keyed pool's ring sweep (internal/keyed). Every policy feature paid
// a triple-wiring tax. Now each substrate implements the small Substrate
// interface (probe one segment, reserve/transfer elements, charge its own
// costs) and an Engine per handle owns everything the substrates used to
// duplicate:
//
//   - policy resolution: the handle's Controller and StealAmount via
//     policy.Set.ForHandle, and its search strategy via
//     policy.BuildSearcher, so ControlAware orders (HierarchicalOrder)
//     receive the very controller their escalation threshold tunes from;
//   - the search loop: bracket the searcher run with the substrate's
//     Enter/Exit bookkeeping (lookers counters, hungry flags, shared-
//     counter charges) and adapt the Substrate to search.World;
//   - termination: the emptiness/livelock rules as pluggable Termination
//     values — Coverage (core's exact version-stamped rule), Laps (the
//     simulator's consecutive-fruitless-lap rule), and Bounded (the keyed
//     pool's fixed sweep budget);
//   - probe classification: every remote probe is recorded near or
//     cross-cluster against a numa.Topology, with the hop distances
//     precomputed per handle so the inner probe loop performs an array
//     load instead of an interface call;
//   - placement: Director placements (gift-to-emptiest and friends) are
//     consulted through DirectTarget with a size-probe closure the
//     substrate supplies once at construction, so the Put hot path does
//     not allocate a closure per call;
//   - feedback: Observe/BatchSize/Controller plumbing to the handle's
//     controller.
//
// The Engine is deliberately not generic: elements never pass through it.
// Reserving and transferring typed elements is the substrate's job
// (behind Probe), which is what keeps each substrate's implementation to
// roughly a hundred lines of locking or cost-charging glue.
package engine

import (
	"pools/internal/metrics"
	"pools/internal/numa"
	"pools/internal/policy"
	"pools/internal/search"
	"pools/internal/trace"
)

// Substrate is one handle's typed view of its pool: the operations the
// search-steal protocol needs but whose implementation (mutexes, virtual
// time, key buckets) differs per substrate. A Substrate is owned by one
// handle and, like the handle, is not safe for concurrent use.
type Substrate interface {
	// Probe examines segment s on behalf of an operation wanting up to
	// want elements (the StealAmount policy's appetite input). If s holds
	// elements the substrate transfers the policy-chosen share toward the
	// handle — reserving one element for the in-flight operation — and
	// returns the number obtained; it returns 0 if s was empty. Probing
	// the handle's own segment reports the local size and reserves one
	// element when available. The substrate charges its own access costs
	// (delays or virtual time) per probe.
	Probe(s, want int) int
	// Stopped reports substrate-specific hard stops, checked before every
	// probe: pool or handle closed, an external drain, or a directed-add
	// gift landing in the handle's mailbox.
	Stopped() bool
	// Enter brackets the start of one search: bump the pool's lookers
	// count, raise the hungry flag, charge the shared-counter access —
	// whatever the substrate's livelock accounting requires.
	Enter(want int)
	// Exit undoes Enter at the end of the same search.
	Exit()
}

// TreeSubstrate extends Substrate with the superimposed round-counter
// tree required by the paper's tree search algorithm. Substrates that can
// run search.Tree implement it; the keyed pool does not.
type TreeSubstrate interface {
	Substrate
	// NumLeaves returns the tree leaf count (search.NumLeavesFor).
	NumLeaves() int
	// RoundOf returns node n's round counter, charging a node access.
	RoundOf(n int) uint64
	// MaxRound raises node n's counter to r if greater.
	MaxRound(n int, r uint64)
}

// Config assembles one handle's engine.
type Config struct {
	// Self is the handle's segment index; Segments the pool size.
	Self, Segments int
	// Policies is the pool's resolved policy set (WithDefaults applied).
	// The engine resolves the handle's controller and steal amount from
	// it (Set.ForHandle) and builds the search strategy from its Order.
	Policies policy.Set
	// Seed drives randomized search orders. Pools pass a per-handle
	// sub-seed (rng.SubSeed), not the pool seed.
	Seed uint64
	// Topology classifies remote probes as near (hop distance 1) or
	// cross-cluster (> 1). Nil means uniform: every remote probe is near.
	Topology numa.Topology
	// Stats receives the probe classification (RecordProbe). Nil disables
	// probe accounting entirely — the real pool's CollectStats=false mode.
	Stats *metrics.PoolStats
	// Searcher, when non-nil, overrides the Policies.Order searcher. The
	// keyed pool supplies its ranked or ring sweep here; everyone else
	// leaves it nil and gets policy.BuildSearcher's result.
	Searcher search.Searcher
	// SizeProbe reports a segment's current size for Director placements,
	// charging one probe access. Supplied once at construction so the add
	// hot path does not allocate a closure per call. Required only when
	// Policies.Place is a policy.Director.
	SizeProbe func(s int) int
	// Tracer, when non-nil, receives the handle's flight-recorder events:
	// the engine emits the protocol edges (searches, probe classification,
	// ring escalation, termination verdicts, directed placements,
	// controller feedback) and the substrate adds only its reserve/
	// transfer and gift edges. Nil disables tracing; every emission site
	// is a nil check, so the disabled path stays 0 allocs/op.
	Tracer *trace.Recorder
	// Members, when non-nil, is the pool's dynamic membership: searches
	// skip non-victim segments (counting them as seen-empty, which the
	// deposit redirects keep true) and Director placements are clamped to
	// victim segments so no element lands where searches no longer look.
	// Nil means fixed membership — the paper's model — with zero overhead.
	Members *Membership
}

// Engine drives the search-steal protocol for one handle. Create with
// New; like the handle it serves, an Engine may be used by only one
// goroutine at a time.
type Engine struct {
	self     int
	segments int
	ctl      policy.Controller
	steal    policy.StealAmount
	searcher search.Searcher
	dir      policy.Director
	sizeFn   func(s int) int
	stats    *metrics.PoolStats
	tr       *trace.Recorder
	members  *Membership
	cross    []bool  // cross[s]: a probe of s leaves the cluster (nil = no topology)
	hops     []int32 // hops[s]: topology hop distance self→s (nil = no topology)
	foreign  []bool  // foreign[s]: segment s belongs to another tenant (nil = no partition)
	w        world
}

// New builds a handle's engine: resolve the controller and steal amount
// (per-handle sets spawn their instance here), build the search strategy
// through the ControlAware path, precompute the hop-distance
// classification, and bind the substrate and termination rule.
func New(cfg Config, sub Substrate, term Termination) *Engine {
	ctl, steal := cfg.Policies.ForHandle(cfg.Self)
	srch := cfg.Searcher
	if srch == nil {
		srch = policy.BuildSearcher(cfg.Policies.Order, cfg.Self, cfg.Segments, cfg.Seed, ctl)
	}
	e := &Engine{
		self:     cfg.Self,
		segments: cfg.Segments,
		ctl:      ctl,
		steal:    steal,
		searcher: srch,
		sizeFn:   cfg.SizeProbe,
		stats:    cfg.Stats,
		tr:       cfg.Tracer,
		members:  cfg.Members,
	}
	if d, ok := cfg.Policies.Place.(policy.Director); ok {
		e.dir = d
	}
	if cfg.Topology != nil {
		e.cross = make([]bool, cfg.Segments)
		e.hops = make([]int32, cfg.Segments)
		for s := 0; s < cfg.Segments; s++ {
			d := cfg.Topology.Distance(cfg.Self, s)
			e.cross[s] = s != cfg.Self && d > 1
			e.hops[s] = int32(d)
		}
	}
	if m := groupedOf(cfg.Policies); m != nil {
		mine := m.TenantOf(cfg.Self)
		e.foreign = make([]bool, cfg.Segments)
		for s := 0; s < cfg.Segments; s++ {
			e.foreign[s] = m.TenantOf(s) != mine
		}
	}
	e.w = world{e: e, sub: sub, term: term}
	if ts, ok := sub.(TreeSubstrate); ok {
		e.w.tree = ts
	}
	return e
}

// groupedOf extracts a tenant partition from the policy set, consulting
// the Placement first and the VictimOrder second (either slot may carry
// policy.Grouped). Nil when the set is tenant-blind.
func groupedOf(set policy.Set) policy.TenantMap {
	if g, ok := set.Place.(policy.Grouped); ok {
		return g.Partition()
	}
	if g, ok := set.Order.(policy.Grouped); ok {
		return g.Partition()
	}
	return nil
}

// Controller returns the controller resolved for this handle (nil when the
// policy set has none), for observability and trajectory traces.
func (e *Engine) Controller() policy.Controller { return e.ctl }

// Searcher returns the handle's search strategy, for observability and
// tests.
func (e *Engine) Searcher() search.Searcher { return e.searcher }

// StealAmount returns the handle's resolved steal amount — the spawned
// per-handle instance under policy.PerHandle sets.
func (e *Engine) StealAmount() policy.StealAmount { return e.steal }

// Tracer returns the handle's flight recorder, nil when tracing is
// disabled. Substrates use it to emit their reserve/transfer and gift
// edges onto the same timeline as the engine's protocol events.
func (e *Engine) Tracer() *trace.Recorder { return e.tr }

// Observe feeds one remove outcome to the handle's controller, if any,
// and records it on the flight recorder (got, or -1 on abort, plus the
// probe count) so traces show the controller's input stream.
func (e *Engine) Observe(fb policy.Feedback) {
	if e.tr != nil {
		got := int32(fb.Got)
		if fb.Aborted {
			got = -1
		}
		e.tr.Record(trace.Feedback, got, int32(fb.Examined))
	}
	if e.ctl != nil {
		e.ctl.Observe(fb)
	}
}

// BatchSize returns the controller's recommended batch size for a
// workload configured at current, or current without a controller.
func (e *Engine) BatchSize(current int) int {
	if e.ctl == nil {
		return current
	}
	return e.ctl.BatchSize(current)
}

// NoteProbe classifies one segment probe against the precomputed hop
// distances: local probes are no-ops; remote probes count as near or
// cross-cluster on the stats and the flight recorder. Substrates call
// it for Director placement sweeps; search probes are classified by
// the engine itself.
func (e *Engine) NoteProbe(s int) { e.noteProbe(s, 0) }

// noteProbe is NoteProbe with the steal outcome attached, used by the
// search loop so traced probes carry their haul.
func (e *Engine) noteProbe(s, got int) {
	if s == e.self {
		return
	}
	cross := e.cross != nil && e.cross[s]
	if e.stats != nil {
		e.stats.RecordProbe(cross)
	}
	if e.tr != nil {
		k := trace.ProbeNear
		if cross {
			k = trace.ProbeCross
		}
		e.tr.Record(k, int32(s), int32(got))
	}
}

// DirectTarget consults the Director placement (when the policy set has
// one) for where an add of n elements should land, probing segment sizes
// through the substrate's SizeProbe. Out-of-range answers keep the add
// local, as does the absence of a Director.
func (e *Engine) DirectTarget(n int) int {
	if e.dir == nil {
		return e.self
	}
	t := e.dir.Direct(e.self, e.segments, n, e.sizeFn)
	if t < 0 || t >= e.segments {
		return e.self
	}
	if e.members != nil && t != e.self && !e.members.Victim(t) {
		// The director picked a departed drain-mode segment: elements
		// there would be invisible to searches. Keep the add local.
		return e.self
	}
	if e.tr != nil && t != e.self {
		e.tr.Record(trace.DirectPlace, int32(t), int32(n))
	}
	return t
}

// Search runs one search-steal on behalf of an operation wanting up to
// want elements: arm the termination rule, run the substrate's Enter
// bookkeeping, drive the search strategy over the substrate, and undo the
// bookkeeping. On success (Result.Got > 0) the substrate holds the
// reserved element and has transferred the rest toward the handle; on
// abort the termination rule certified emptiness (or the substrate
// stopped the search). Search performs no per-call allocation.
func (e *Engine) Search(want int) search.Result {
	e.w.want = want
	e.w.maxHop = 1
	if e.tr != nil {
		e.tr.Record(trace.SearchBegin, int32(want), 0)
	}
	e.w.term.Begin(want)
	e.w.sub.Enter(want)
	res := e.searcher.Search(&e.w)
	e.w.sub.Exit()
	if e.tr != nil {
		if res.Got == 0 {
			// Distinguish the two empty-handed endings on the timeline:
			// a substrate hard stop (closed, drained, gift landed) is an
			// abort; otherwise the termination rule certified emptiness.
			if e.w.sub.Stopped() {
				e.tr.Record(trace.TerminationAborted, int32(want), 0)
			} else {
				e.tr.Record(trace.TerminationCertified, int32(want), 0)
			}
		}
		ring := e.w.maxHop
		if e.hops == nil {
			ring = 0 // no topology: rings are meaningless
		}
		e.tr.Record(trace.SearchEnd, int32(res.Got), ring)
	}
	return res
}

// world adapts a Substrate and a Termination rule to search.World (and
// search.TreeWorld when the substrate supports the round-counter tree),
// so the search algorithms see exactly the interface they were written
// against while the engine records probes and termination evidence.
type world struct {
	e      *Engine
	sub    Substrate
	tree   TreeSubstrate // non-nil iff sub implements TreeSubstrate
	term   Termination
	want   int
	maxHop int32 // farthest topology ring probed by the current search
}

var _ search.TreeWorld = (*world)(nil)

// Segments implements search.World.
func (w *world) Segments() int { return w.e.segments }

// Self implements search.World.
func (w *world) Self() int { return w.e.self }

// TrySteal implements search.World: delegate the probe to the substrate,
// classify it (near/cross-cluster, and same/foreign tenant when the policy
// set carries a partition), and report the outcome to the termination rule.
func (w *world) TrySteal(s int) int {
	if m := w.e.members; m != nil && s != w.e.self && !m.Victim(s) {
		// Departed drain-mode segment: the kill drained it and deposit
		// redirects keep it empty, so skipping the probe is sound. It
		// still counts as coverage evidence — the exact rule needs every
		// segment accounted for, and any later rejoin bumps the epoch,
		// which re-arms the rule before emptiness could be certified
		// against stale membership.
		w.term.SawEmpty(s)
		return 0
	}
	got := w.sub.Probe(s, w.want)
	w.e.noteProbe(s, got)
	if w.e.tr != nil && w.e.hops != nil && s != w.e.self {
		// Ring-escalation detection: the first probe past the farthest
		// ring this search has touched marks the searcher widening its
		// scope (HierarchicalOrder's ladder, or any order that strays).
		if h := w.e.hops[s]; h > w.maxHop {
			if h > 1 {
				w.e.tr.Record(trace.EscalateRing, h, int32(s))
			}
			w.maxHop = h
		}
	}
	if got > 0 {
		if s != w.e.self && w.e.foreign != nil {
			if w.e.stats != nil {
				w.e.stats.RecordStealVictim(w.e.foreign[s])
			}
			if w.e.foreign[s] && w.e.tr != nil {
				w.e.tr.Record(trace.TenantForeignSteal, int32(s), int32(got))
			}
		}
		w.term.SawProgress()
	} else {
		w.term.SawEmpty(s)
	}
	return got
}

// Aborted implements search.World: substrate hard stops first (closed
// pools, landed gifts, drains), then the termination rule's emptiness
// certificate.
func (w *world) Aborted() bool {
	return w.sub.Stopped() || w.term.Aborted()
}

// NumLeaves implements search.TreeWorld.
func (w *world) NumLeaves() int { return w.tree.NumLeaves() }

// RoundOf implements search.TreeWorld.
func (w *world) RoundOf(n int) uint64 { return w.tree.RoundOf(n) }

// MaxRound implements search.TreeWorld.
func (w *world) MaxRound(n int, r uint64) { w.tree.MaxRound(n, r) }
