package engine_test

// Seeded differential tests for the engine extraction: the golden
// fingerprints below were recorded by running exactly these drivers
// against the PRE-engine substrates (each of core, sim, and keyed still
// carrying its own hand-rolled search-steal loop). The extraction must be
// behavior-preserving: same seeds → same steals, probes, aborts,
// cross-fractions, and PoolStats on every substrate and policy
// combination. A mismatch here means the shared engine diverged from the
// protocol the paper's experiments measured.
//
// The drivers are single-goroutine (the real pool is driven round-robin
// over its handles), which makes every substrate deterministic; keyed
// GetAny is deliberately excluded because map iteration order makes it
// nondeterministic even under a fixed seed.

import (
	"fmt"
	"testing"

	"pools/internal/core"
	"pools/internal/keyed"
	"pools/internal/metrics"
	"pools/internal/numa"
	"pools/internal/policy"
	"pools/internal/rng"
	"pools/internal/search"
	"pools/internal/sim"
	"pools/internal/workload"
)

// statsFingerprint renders the deterministic PoolStats fields (timing
// summaries are wall-clock on the real pool and therefore excluded).
func statsFingerprint(s metrics.PoolStats) string {
	return fmt.Sprintf("adds=%d removes=%d local=%d steals=%d aborts=%d examined=%.0f stolen=%.0f remote=%d cross=%d gives=%d recvs=%d batchAdds=%d batchRemoves=%d",
		s.Adds, s.Removes, s.LocalRemoves, s.Steals, s.Aborts,
		s.SegmentsExamined.Sum(), s.ElementsStolen.Sum(),
		s.RemoteProbes, s.CrossProbes, s.DirectedGives, s.DirectedReceives,
		s.BatchAdds, s.BatchRemoves)
}

func corePolicies(name string) (policy.Set, search.Kind) {
	topo := numa.Clusters{Size: 2}
	switch name {
	case "default":
		return policy.Set{}, search.Linear
	case "tree":
		return policy.Set{}, search.Tree
	case "random":
		return policy.Set{}, search.Random
	case "hier-emptiest":
		return policy.Set{
			Order: policy.HierarchicalOrder{Topo: topo},
			Place: policy.GiftToEmptiest{},
		}, search.Linear
	case "per-handle-locality":
		p := policy.NewPerHandle()
		return policy.Set{
			Steal:   p,
			Control: p,
			Order:   policy.LocalityOrder{Model: numa.ButterflyCosts().WithTopology(topo)},
		}, search.Linear
	}
	panic(name)
}

// coreFingerprint drives the real pool deterministically from one
// goroutine: a seeded op mix over all handles, counting results and final
// stats.
func coreFingerprint(name string, seed uint64) string {
	pol, kind := corePolicies(name)
	p, err := core.New[int](core.Options{
		Segments:     8,
		Search:       kind,
		Seed:         seed,
		Policies:     pol,
		Topology:     numa.Clusters{Size: 2},
		CollectStats: true,
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 8; i++ {
		p.Handle(i).Register()
	}
	x := rng.NewXoshiro256(seed)
	got, misses, batchGot := 0, 0, 0
	for op := 0; op < 4000; op++ {
		h := p.Handle(int(x.Next() % 8))
		switch x.Next() % 10 {
		case 0, 1, 2, 3: // put
			h.Put(op)
		case 4: // batch put
			vs := make([]int, 1+int(x.Next()%5))
			for i := range vs {
				vs[i] = op
			}
			h.PutAll(vs)
		case 5, 6, 7, 8: // get
			if _, ok := h.Get(); ok {
				got++
			} else {
				misses++
			}
		case 9: // batch get
			batchGot += len(h.GetN(1 + int(x.Next()%5)))
		}
	}
	return fmt.Sprintf("got=%d misses=%d batchGot=%d len=%d | %s",
		got, misses, batchGot, p.Len(), statsFingerprint(p.Stats()))
}

// simFingerprint runs one simulated trial per configuration name.
func simFingerprint(name string, seed uint64) string {
	topo := numa.Clusters{Size: 4}
	costs := numa.ButterflyCosts().WithTopology(topo).WithExtraDelay(100)
	w := workload.Config{
		Procs: 16, TotalOps: 4000, InitialElements: 320,
		Model: workload.RandomOps, AddFraction: 0.3,
	}
	cfg := sim.RunConfig{Workload: w, Search: search.Linear, Costs: costs, Seed: seed}
	switch name {
	case "default":
	case "tree":
		cfg.Search = search.Tree
	case "random":
		cfg.Search = search.Random
	case "hier":
		cfg.Policies = policy.Set{Order: policy.HierarchicalOrder{Topo: topo}}
	case "hier-adaptive":
		p := policy.NewPerHandle()
		cfg.Policies = policy.Set{Order: policy.HierarchicalOrder{Topo: topo}, Steal: p, Control: p}
	case "burst-emptiest":
		w.Model = workload.Burst
		w.BatchSize = 8
		w.Producers = 4
		w.Arrangement = workload.Balanced
		cfg.Workload = w
		cfg.Policies = policy.Set{Place: policy.GiftToEmptiest{}}
	}
	res := sim.Run(cfg)
	return fmt.Sprintf("makespan=%d remaining=%d | %s",
		res.Makespan, res.Remaining, statsFingerprint(res.Stats))
}

func keyedPolicies(name string) (policy.Set, numa.Topology) {
	topo := numa.Clusters{Size: 2}
	switch name {
	case "default":
		return policy.Set{}, topo
	case "locality":
		return policy.Set{Order: policy.LocalityOrder{Model: numa.ButterflyCosts().WithTopology(topo)}}, topo
	case "hier":
		return policy.Set{Order: policy.HierarchicalOrder{Topo: topo}}, topo
	case "per-handle-emptiest":
		p := policy.NewPerHandle()
		return policy.Set{Steal: p, Control: p, Place: policy.GiftToEmptiest{}}, topo
	}
	panic(name)
}

// keyedFingerprint drives the keyed pool deterministically (no GetAny:
// map iteration order would break determinism).
func keyedFingerprint(name string, seed uint64) string {
	pol, topo := keyedPolicies(name)
	p, err := keyed.New[int, int](keyed.Options{
		Segments: 8,
		Sweeps:   2,
		Policies: pol,
		Topology: topo,
	})
	if err != nil {
		panic(err)
	}
	x := rng.NewXoshiro256(seed)
	got, misses, batchGot := 0, 0, 0
	for op := 0; op < 4000; op++ {
		h := p.Handle(int(x.Next() % 8))
		k := int(x.Next() % 4)
		switch x.Next() % 10 {
		case 0, 1, 2, 3:
			h.Put(k, op)
		case 4:
			vs := make([]int, 1+int(x.Next()%5))
			for i := range vs {
				vs[i] = op
			}
			h.PutAll(k, vs)
		case 5, 6, 7, 8:
			if _, ok := h.Get(k); ok {
				got++
			} else {
				misses++
			}
		case 9:
			batchGot += len(h.GetN(k, 1+int(x.Next()%5)))
		}
	}
	remote, cross := p.ProbeStats()
	return fmt.Sprintf("got=%d misses=%d batchGot=%d len=%d k0=%d k3=%d remote=%d cross=%d",
		got, misses, batchGot, p.Len(), p.LenKey(0), p.LenKey(3), remote, cross)
}

// golden maps substrate/config/seed to the fingerprint recorded against
// the pre-engine implementations. Do not regenerate these from current
// code after touching the protocol: a diff here is the finding.
var golden = map[string]string{
	"core/default/1":                 "got=1609 misses=0 batchGot=1004 len=161 | adds=2774 removes=2613 local=2463 steals=123 aborts=0 examined=171 stolen=450 remote=161 cross=136 gives=0 recvs=0 batchAdds=386 batchRemoves=384",
	"core/default/1989":              "got=1588 misses=0 batchGot=1049 len=127 | adds=2764 removes=2637 local=2492 steals=121 aborts=3 examined=155 stolen=444 remote=167 cross=135 gives=0 recvs=0 batchAdds=390 batchRemoves=412",
	"core/tree/1":                    "got=1609 misses=0 batchGot=1003 len=162 | adds=2774 removes=2612 local=2491 steals=104 aborts=0 examined=162 stolen=365 remote=137 cross=108 gives=0 recvs=0 batchAdds=386 batchRemoves=384",
	"core/tree/1989":                 "got=1588 misses=0 batchGot=1068 len=108 | adds=2764 removes=2656 local=2507 steals=124 aborts=3 examined=175 stolen=474 remote=179 cross=155 gives=0 recvs=0 batchAdds=390 batchRemoves=412",
	"core/random/1":                  "got=1609 misses=0 batchGot=1020 len=145 | adds=2774 removes=2629 local=2517 steals=91 aborts=0 examined=118 stolen=447 remote=106 cross=97 gives=0 recvs=0 batchAdds=386 batchRemoves=384",
	"core/random/1989":               "got=1588 misses=0 batchGot=1076 len=100 | adds=2764 removes=2664 local=2553 steals=93 aborts=3 examined=134 stolen=465 remote=169 cross=137 gives=0 recvs=0 batchAdds=390 batchRemoves=412",
	"core/hier-emptiest/1":           "got=1609 misses=0 batchGot=1057 len=108 | adds=2774 removes=2666 local=2639 steals=24 aborts=0 examined=53 stolen=51 remote=6050 cross=5028 gives=0 recvs=0 batchAdds=386 batchRemoves=384",
	"core/hier-emptiest/1989":        "got=1588 misses=0 batchGot=1120 len=56 | adds=2764 removes=2708 local=2670 steals=36 aborts=3 examined=82 stolen=75 remote=6058 cross=5017 gives=0 recvs=0 batchAdds=390 batchRemoves=412",
	"core/per-handle-locality/1":     "got=1609 misses=0 batchGot=1013 len=152 | adds=2774 removes=2622 local=2452 steals=126 aborts=0 examined=175 stolen=345 remote=164 cross=153 gives=0 recvs=0 batchAdds=386 batchRemoves=384",
	"core/per-handle-locality/1989":  "got=1588 misses=0 batchGot=1060 len=116 | adds=2764 removes=2648 local=2415 steals=193 aborts=3 examined=248 stolen=527 remote=258 cross=230 gives=0 recvs=0 batchAdds=390 batchRemoves=412",
	"sim/default/1":                  "makespan=585915 remaining=0 | adds=1206 removes=1526 local=1360 steals=166 aborts=1268 examined=788 stolen=189 remote=13105 cross=10653 gives=0 recvs=0 batchAdds=0 batchRemoves=0",
	"sim/default/1989":               "makespan=603995 remaining=2 | adds=1210 removes=1528 local=1365 steals=163 aborts=1262 examined=863 stolen=197 remote=13522 cross=11049 gives=0 recvs=0 batchAdds=0 batchRemoves=0",
	"sim/tree/1":                     "makespan=1930186 remaining=3 | adds=1220 removes=1537 local=1505 steals=32 aborts=1243 examined=95 stolen=41 remote=5423 cross=2073 gives=0 recvs=0 batchAdds=0 batchRemoves=0",
	"sim/tree/1989":                  "makespan=1872145 remaining=0 | adds=1205 removes=1525 local=1491 steals=34 aborts=1270 examined=93 stolen=45 remote=5234 cross=2008 gives=0 recvs=0 batchAdds=0 batchRemoves=0",
	"sim/random/1":                   "makespan=564966 remaining=0 | adds=1224 removes=1544 local=1384 steals=160 aborts=1232 examined=1017 stolen=186 remote=12199 cross=9795 gives=0 recvs=0 batchAdds=0 batchRemoves=0",
	"sim/random/1989":                "makespan=538449 remaining=1 | adds=1211 removes=1530 local=1365 steals=165 aborts=1259 examined=942 stolen=218 remote=11698 cross=9403 gives=0 recvs=0 batchAdds=0 batchRemoves=0",
	"sim/hier/1":                     "makespan=520720 remaining=1 | adds=1208 removes=1527 local=1344 steals=183 aborts=1265 examined=1163 stolen=209 remote=13030 cross=8758 gives=0 recvs=0 batchAdds=0 batchRemoves=0",
	"sim/hier/1989":                  "makespan=516877 remaining=0 | adds=1202 removes=1522 local=1332 steals=190 aborts=1276 examined=1074 stolen=241 remote=13218 cross=8901 gives=0 recvs=0 batchAdds=0 batchRemoves=0",
	"sim/hier-adaptive/1":            "makespan=512889 remaining=0 | adds=1213 removes=1533 local=1351 steals=182 aborts=1254 examined=877 stolen=187 remote=12653 cross=8379 gives=0 recvs=0 batchAdds=0 batchRemoves=0",
	"sim/hier-adaptive/1989":         "makespan=499201 remaining=0 | adds=1199 removes=1519 local=1330 steals=189 aborts=1282 examined=1012 stolen=205 remote=13026 cross=8769 gives=0 recvs=0 batchAdds=0 batchRemoves=0",
	"sim/burst-emptiest/1":           "makespan=78711 remaining=176 | adds=1920 removes=2064 local=1193 steals=139 aborts=16 examined=540 stolen=645 remote=1277 cross=457 gives=0 recvs=0 batchAdds=240 batchRemoves=343",
	"sim/burst-emptiest/1989":        "makespan=78711 remaining=176 | adds=1920 removes=2064 local=1193 steals=139 aborts=16 examined=540 stolen=645 remote=1277 cross=457 gives=0 recvs=0 batchAdds=240 batchRemoves=343",
	"keyed/default/1":                "got=1602 misses=26 batchGot=848 len=243 k0=42 k3=71 remote=1231 cross=1071",
	"keyed/default/1989":             "got=1550 misses=25 batchGot=927 len=328 k0=46 k3=84 remote=781 cross=673",
	"keyed/locality/1":               "got=1602 misses=26 batchGot=848 len=243 k0=42 k3=71 remote=1231 cross=1071",
	"keyed/locality/1989":            "got=1550 misses=25 batchGot=927 len=328 k0=46 k3=84 remote=781 cross=673",
	"keyed/hier/1":                   "got=1591 misses=37 batchGot=856 len=246 k0=44 k3=73 remote=1613 cross=1034",
	"keyed/hier/1989":                "got=1550 misses=25 batchGot=935 len=320 k0=41 k3=76 remote=866 cross=548",
	"keyed/per-handle-emptiest/1":    "got=1586 misses=42 batchGot=894 len=213 k0=32 k3=78 remote=7505 cross=6315",
	"keyed/per-handle-emptiest/1989": "got=1548 misses=27 batchGot=924 len=333 k0=44 k3=84 remote=6926 cross=5785",
}

var seeds = []uint64{1, 1989}

// TestCoreEquivalence asserts the engine-driven real pool reproduces the
// pre-engine fingerprints bit for bit.
func TestCoreEquivalence(t *testing.T) {
	for _, name := range []string{"default", "tree", "random", "hier-emptiest", "per-handle-locality"} {
		for _, seed := range seeds {
			key := fmt.Sprintf("core/%s/%d", name, seed)
			if got := coreFingerprint(name, seed); got != golden[key] {
				t.Errorf("%s diverged from the pre-engine protocol\n got: %s\nwant: %s", key, got, golden[key])
			}
		}
	}
}

// TestSimEquivalence asserts the engine-driven simulator reproduces the
// pre-engine fingerprints (including makespans: every virtual-time charge
// must land in the same order).
func TestSimEquivalence(t *testing.T) {
	for _, name := range []string{"default", "tree", "random", "hier", "hier-adaptive", "burst-emptiest"} {
		for _, seed := range seeds {
			key := fmt.Sprintf("sim/%s/%d", name, seed)
			if got := simFingerprint(name, seed); got != golden[key] {
				t.Errorf("%s diverged from the pre-engine protocol\n got: %s\nwant: %s", key, got, golden[key])
			}
		}
	}
}

// TestKeyedEquivalence asserts the engine-driven keyed pool reproduces
// the pre-engine fingerprints, sweep orders and probe accounting
// included.
func TestKeyedEquivalence(t *testing.T) {
	for _, name := range []string{"default", "locality", "hier", "per-handle-emptiest"} {
		for _, seed := range seeds {
			key := fmt.Sprintf("keyed/%s/%d", name, seed)
			if got := keyedFingerprint(name, seed); got != golden[key] {
				t.Errorf("%s diverged from the pre-engine protocol\n got: %s\nwant: %s", key, got, golden[key])
			}
		}
	}
}
