package engine

import (
	"testing"
	"unsafe"
)

// TestMembershipLayout pins the false-sharing contract of the shared
// membership word: the epoch (loaded on every abort check), the live
// count (written on every transition), and each segment's state bits
// must all occupy distinct cache lines.
func TestMembershipLayout(t *testing.T) {
	var m Membership
	if gap := unsafe.Offsetof(m.live) - unsafe.Offsetof(m.epoch); gap < 64 {
		t.Errorf("live only %d bytes after epoch; want >= 64 (separate cache line)", gap)
	}
	if gap := unsafe.Offsetof(m.state) - unsafe.Offsetof(m.live); gap < 64 {
		t.Errorf("state header only %d bytes after live; want >= 64", gap)
	}
	if sz := unsafe.Sizeof(memberWord{}); sz%64 != 0 {
		t.Errorf("memberWord size %d is not a multiple of 64", sz)
	}
}
