package engine

// This file adds dynamic membership to the search-steal protocol. The
// paper assumes a fixed set of processes that never crash; every
// substrate inherited that assumption, so a killed handle would either
// strand its segment's elements (nobody probes a departed segment) or
// let a searcher certify emptiness over elements a concurrent
// drain-and-redistribute was moving. Membership is the one shared piece
// that keeps both failure modes impossible:
//
//   - every segment carries an alive bit (its handle is operating) and a
//     victim bit (searches still probe the segment). A kill clears the
//     alive bit and either keeps the victim bit (the segment degrades to
//     a steal-only victim whose reserve drains through other processes'
//     steals — the generalization of Close's parked-gift path) or clears
//     it too (the pool drains and redistributes the segment at kill
//     time, and deposits aimed at it are redirected to a live victim);
//   - a membership epoch is bumped on every leave and join. The exact
//     Coverage termination rule snapshots the epoch when a search begins
//     and discards all accumulated emptiness evidence when it changes —
//     an epoch bump invalidates in-flight coverage certificates exactly
//     as CoverageState.TransfersInFlight guards mid-transfer surpluses.
//     The no-churn fast path stays a single atomic epoch load per abort
//     check.
//
// Membership is substrate-neutral: the real pool reads it under real
// concurrency (all fields are atomics), the simulator under virtual
// time, the keyed pool under its bounded sweeps.

import "sync/atomic"

// Per-segment membership state bits.
const (
	// memberVictim marks a segment that searches still probe. Departed
	// segments keep it in steal-only mode and lose it in drain mode.
	memberVictim uint32 = 1 << 0
	// memberAlive marks a segment whose handle is operating (performing
	// its own adds and removes).
	memberAlive uint32 = 1 << 1
)

// memberWord is one segment's membership bits, padded out to a cache
// line: every abort check loads the searcher's snapshot epoch and every
// probe loop reads victim bits, so a Leave/Join CAS on one segment must
// not invalidate the line its neighbors' read-mostly bits live on.
type memberWord struct {
	w atomic.Uint32
	_ [60]byte
}

// Membership tracks which segments of a pool are alive and which are
// still probed by searches, stamped by an epoch counter that invalidates
// in-flight coverage certificates on every transition. All methods are
// safe for concurrent use; reads are single atomic loads.
//
// The hot fields are line-isolated (the false-sharing audit): epoch is
// loaded on every abort check by every searcher, live is written by
// every Leave/Join, and each segment's state word gets its own line via
// memberWord. Verified by TestMembershipLayout.
type Membership struct {
	epoch atomic.Uint64
	_     [56]byte
	live  atomic.Int32
	_     [60]byte
	state []memberWord
}

// NewMembership returns a membership over n segments, all alive victims.
func NewMembership(n int) *Membership {
	m := &Membership{state: make([]memberWord, n)}
	for i := range m.state {
		m.state[i].w.Store(memberAlive | memberVictim)
	}
	m.live.Store(int32(n))
	return m
}

// Segments returns the membership's segment count.
func (m *Membership) Segments() int { return len(m.state) }

// Epoch returns the current membership epoch. Coverage snapshots it at
// search begin and re-arms when it moves.
func (m *Membership) Epoch() uint64 { return m.epoch.Load() }

// Alive reports whether segment s's handle is operating.
func (m *Membership) Alive(s int) bool { return m.state[s].w.Load()&memberAlive != 0 }

// Victim reports whether searches still probe segment s. A departed
// drain-mode segment is not a victim — and the deposit redirects keep it
// empty, so skipping it costs a search nothing.
func (m *Membership) Victim(s int) bool { return m.state[s].w.Load()&memberVictim != 0 }

// Live returns the number of alive segments.
func (m *Membership) Live() int { return int(m.live.Load()) }

// Leave removes segment s from the alive set: with keepVictim the
// segment stays a steal-only victim, without it the segment also leaves
// the victim set (the caller drains and redistributes its elements).
// Leave refuses to remove the last alive segment (a pool with no live
// member could strand every element) and reports whether the transition
// happened. On success the epoch has been bumped.
func (m *Membership) Leave(s int, keepVictim bool) bool {
	if m.live.Add(-1) < 1 {
		m.live.Add(1)
		return false
	}
	var next uint32
	if keepVictim {
		next = memberVictim
	}
	for {
		cur := m.state[s].w.Load()
		if cur&memberAlive == 0 {
			m.live.Add(1) // already departed: undo the reservation
			return false
		}
		if m.state[s].w.CompareAndSwap(cur, next) {
			break
		}
	}
	m.epoch.Add(1)
	return true
}

// Join re-admits segment s as an alive victim (a revive, or a fresh
// member joining after a leave). It reports whether the transition
// happened (false when s is already alive). On success the epoch has
// been bumped.
func (m *Membership) Join(s int) bool {
	for {
		cur := m.state[s].w.Load()
		if cur&memberAlive != 0 {
			return false
		}
		if m.state[s].w.CompareAndSwap(cur, memberAlive|memberVictim) {
			break
		}
	}
	m.live.Add(1)
	m.epoch.Add(1)
	return true
}

// Bump advances the epoch without a membership transition, invalidating
// every in-flight coverage certificate: pools call it after externally
// relocating elements (a kill-time drain) so a searcher that had already
// covered the destination segments re-scans them.
func (m *Membership) Bump() uint64 { return m.epoch.Add(1) }

// FallbackVictim returns the first victim segment at or after `from` in
// ring order, or -1 when no victim remains. Deposits and parks aimed at
// a departed drain-mode segment are redirected here so no element lands
// where searches no longer look.
func (m *Membership) FallbackVictim(from int) int {
	n := len(m.state)
	for off := 0; off < n; off++ {
		s := (from + off) % n
		if m.state[s].w.Load()&memberVictim != 0 {
			return s
		}
	}
	return -1
}
