package engine

import (
	"testing"

	"pools/internal/metrics"
	"pools/internal/numa"
	"pools/internal/policy"
	"pools/internal/search"
)

// fakeSub is a scripted in-memory substrate: segment sizes in a slice,
// steal-half semantics, and call accounting for the Enter/Exit contract.
type fakeSub struct {
	segs     []int
	self     int
	reserved int // elements reserved for in-flight operations
	enters   int
	exits    int
	probes   []int
	stopped  bool
}

func (f *fakeSub) Probe(s, want int) int {
	f.probes = append(f.probes, s)
	n := f.segs[s]
	if n == 0 {
		return 0
	}
	if s == f.self {
		f.segs[s]--
		f.reserved++
		return n
	}
	take := (n + 1) / 2
	f.segs[s] -= take
	f.segs[f.self] += take - 1
	f.reserved++
	return take
}

func (f *fakeSub) Stopped() bool { return f.stopped }
func (f *fakeSub) Enter(int)     { f.enters++ }
func (f *fakeSub) Exit()         { f.exits++ }

func newFakeEngine(t *testing.T, segs []int, self int, cfg Config, term Termination) (*Engine, *fakeSub) {
	t.Helper()
	sub := &fakeSub{segs: segs, self: self}
	cfg.Self = self
	cfg.Segments = len(segs)
	cfg.Policies = cfg.Policies.WithDefaults(search.Linear, false)
	return New(cfg, sub, term), sub
}

// TestSearchFindsAndBrackets checks a successful search: the linear order
// walks the ring to the first non-empty victim, Enter/Exit bracket the
// run exactly once, and the fruitless prefix is probed in order.
func TestSearchFindsAndBrackets(t *testing.T) {
	e, sub := newFakeEngine(t, []int{0, 0, 0, 8}, 0, Config{}, NewBounded(8))
	res := e.Search(1)
	if res.Got != 4 || res.FoundAt != 3 || res.Examined != 4 {
		t.Fatalf("Search = %+v, want Got=4 FoundAt=3 Examined=4", res)
	}
	if sub.enters != 1 || sub.exits != 1 {
		t.Fatalf("Enter/Exit = %d/%d, want 1/1", sub.enters, sub.exits)
	}
	want := []int{0, 1, 2, 3}
	for i, s := range want {
		if sub.probes[i] != s {
			t.Fatalf("probe order %v, want %v", sub.probes, want)
		}
	}
}

// TestBoundedBudgetExhausts checks the keyed pool's rule: an empty world
// is probed exactly budget times and then the search reports an abort.
func TestBoundedBudgetExhausts(t *testing.T) {
	e, sub := newFakeEngine(t, make([]int, 4), 0, Config{}, NewBounded(8))
	res := e.Search(1)
	if res.Got != 0 || res.Examined != 8 {
		t.Fatalf("Search = %+v, want abort after exactly 8 probes", res)
	}
	if sub.exits != 1 {
		t.Fatal("Exit not called on an aborted search")
	}
}

// TestStoppedSubstrateAborts checks substrate hard stops end the search
// before any probe.
func TestStoppedSubstrateAborts(t *testing.T) {
	e, sub := newFakeEngine(t, []int{0, 5}, 0, Config{}, NewBounded(8))
	sub.stopped = true
	res := e.Search(1)
	if res.Got != 0 || res.Examined != 0 {
		t.Fatalf("Search = %+v, want an immediate abort with no probes", res)
	}
}

// fakeCoverage is a scripted CoverageState.
type fakeCoverage struct {
	version   uint64
	epoch     uint64
	searching bool
	gifts     bool
	moving    bool
}

func (f *fakeCoverage) Version() uint64         { return f.version }
func (f *fakeCoverage) Epoch() uint64           { return f.epoch }
func (f *fakeCoverage) AllSearching() bool      { return f.searching }
func (f *fakeCoverage) GiftsInFlight() bool     { return f.gifts }
func (f *fakeCoverage) TransfersInFlight() bool { return f.moving }

// TestCoverageRule exercises the exact rule directly: no abort until
// every segment is covered; gifts in flight and version bumps hold off or
// re-arm the certificate; all-searching certifies it.
func TestCoverageRule(t *testing.T) {
	st := &fakeCoverage{}
	c := NewCoverage(3, st)
	c.Begin(1)
	c.SawEmpty(0)
	c.SawEmpty(1)
	if c.Aborted() {
		t.Fatal("aborted before covering every segment")
	}
	c.SawEmpty(2)
	if !c.Aborted() {
		t.Fatal("covered pool with stable version must certify emptiness")
	}
	// A version bump re-arms the rule instead of aborting.
	c.Begin(1)
	c.SawEmpty(0)
	c.SawEmpty(1)
	c.SawEmpty(2)
	st.version++
	if c.Aborted() {
		t.Fatal("aborted on a stale certificate after a version bump")
	}
	if c.Aborted() {
		t.Fatal("re-armed rule aborted without fresh coverage")
	}
	// Gifts in flight outrank even the all-searching observation.
	c.SawEmpty(0)
	c.SawEmpty(1)
	c.SawEmpty(2)
	st.searching = true
	st.gifts = true
	if c.Aborted() {
		t.Fatal("certified emptiness over an in-flight gift")
	}
	st.gifts = false
	// A steal mid-transfer (surplus in a thief's private buffer, not yet
	// deposited) equally holds off the certificate, even over the
	// all-searching observation — the thief is one of the lookers.
	st.moving = true
	if c.Aborted() {
		t.Fatal("certified emptiness over an in-flight steal transfer")
	}
	st.moving = false
	if !c.Aborted() {
		t.Fatal("all-searching covered pool must abort")
	}
	// Progress resets coverage entirely.
	c.Begin(1)
	c.SawEmpty(0)
	c.SawEmpty(1)
	c.SawProgress()
	c.SawEmpty(2)
	st.searching = false
	if c.Aborted() {
		t.Fatal("aborted with only one segment covered since progress")
	}
}

// TestCoverageEpochInvalidation pins the membership-epoch clause: an
// epoch bump discards all accumulated coverage evidence — even over a
// fully-covered pool with all processes searching — and the check fires
// before the coverage short-circuit, so evidence collected while
// coverage was still partial is discarded too (a drain-kill can move
// elements into segments the search already saw empty).
func TestCoverageEpochInvalidation(t *testing.T) {
	st := &fakeCoverage{searching: true}
	c := NewCoverage(3, st)

	// Bump with full coverage: the certificate must not survive.
	c.Begin(1)
	c.SawEmpty(0)
	c.SawEmpty(1)
	c.SawEmpty(2)
	st.epoch++
	if c.Aborted() {
		t.Fatal("certified emptiness across a membership epoch bump")
	}
	// The rule re-armed against the new epoch: fresh full coverage with a
	// stable epoch certifies again.
	c.SawEmpty(0)
	c.SawEmpty(1)
	c.SawEmpty(2)
	if !c.Aborted() {
		t.Fatal("re-armed rule refused fresh coverage under a stable epoch")
	}

	// Bump mid-search with partial coverage: the already-probed segments
	// must be forgotten, so completing the lap with only the previously
	// unprobed segment must NOT certify.
	c.Begin(1)
	c.SawEmpty(0)
	c.SawEmpty(1)
	st.epoch++
	if c.Aborted() {
		t.Fatal("aborted with partial coverage across an epoch bump")
	}
	c.SawEmpty(2)
	if c.Aborted() {
		t.Fatal("pre-bump probes survived the epoch invalidation")
	}
	c.SawEmpty(0)
	c.SawEmpty(1)
	if !c.Aborted() {
		t.Fatal("full post-bump coverage must certify emptiness")
	}

	// The epoch re-arm also swallows a concurrent version bump: both
	// snapshots refresh together, so a version moved during the same
	// churn does not demand a second extra lap.
	c.Begin(1)
	st.epoch++
	st.version++
	if c.Aborted() {
		t.Fatal("aborted immediately after churn")
	}
	c.SawEmpty(0)
	c.SawEmpty(1)
	c.SawEmpty(2)
	if !c.Aborted() {
		t.Fatal("version bump swallowed by the epoch re-arm still blocked the certificate")
	}
}

// fakeLaps is a scripted LapsState.
type fakeLaps struct {
	searching bool
	latched   bool
}

func (f *fakeLaps) AllSearching() bool { return f.searching }
func (f *fakeLaps) LatchEmpty()        { f.latched = true }

// TestLapsRule checks the simulator's rule: all-searching alone is not
// enough — a full lap of consecutive fruitless probes must also have been
// invested — and certifying emptiness latches the pool-wide abort.
func TestLapsRule(t *testing.T) {
	st := &fakeLaps{searching: true}
	l := NewLaps(3, st)
	l.Begin(1)
	l.SawEmpty(0)
	l.SawEmpty(1)
	if l.Aborted() {
		t.Fatal("aborted before a full fruitless lap")
	}
	l.SawEmpty(2)
	if !l.Aborted() {
		t.Fatal("full lap while all searching must abort")
	}
	if !st.latched {
		t.Fatal("certifying emptiness must latch the pool-wide abort")
	}
	// Progress resets the lap count.
	st.latched = false
	l.Begin(1)
	l.SawEmpty(0)
	l.SawEmpty(1)
	l.SawProgress()
	l.SawEmpty(2)
	if l.Aborted() {
		t.Fatal("aborted without a full consecutive lap after progress")
	}
}

// TestNoteProbeClassification checks the precomputed near/cross masks and
// the stats gate.
func TestNoteProbeClassification(t *testing.T) {
	var stats metrics.PoolStats
	e, _ := newFakeEngine(t, make([]int, 4), 0, Config{
		Topology: numa.Clusters{Size: 2},
		Stats:    &stats,
	}, NewBounded(4))
	e.NoteProbe(0) // self: not counted
	e.NoteProbe(1) // same cluster: near
	e.NoteProbe(2) // across the boundary: cross
	e.NoteProbe(3)
	if stats.RemoteProbes != 3 || stats.CrossProbes != 2 {
		t.Fatalf("remote/cross = %d/%d, want 3/2", stats.RemoteProbes, stats.CrossProbes)
	}
	// Nil stats disables the accounting entirely (CollectStats=false).
	e2, _ := newFakeEngine(t, make([]int, 4), 0, Config{Topology: numa.Clusters{Size: 2}}, NewBounded(4))
	e2.NoteProbe(2) // must not panic or record
}

// clampDir is a Director returning a scripted target.
type clampDir struct{ target int }

func (clampDir) GiftSplit(int, int) int { return 0 }
func (clampDir) Name() string           { return "clamp" }
func (d clampDir) Direct(self, segments, n int, size func(int) int) int {
	size(0)
	return d.target
}

// TestDirectTarget checks Director consultation and out-of-range
// clamping.
func TestDirectTarget(t *testing.T) {
	probed := 0
	mk := func(target int) *Engine {
		sub := &fakeSub{segs: make([]int, 4), self: 1}
		return New(Config{
			Self: 1, Segments: 4,
			Policies:  policy.Set{Place: clampDir{target: target}}.WithDefaults(search.Linear, false),
			SizeProbe: func(int) int { probed++; return 0 },
		}, sub, NewBounded(4))
	}
	if got := mk(3).DirectTarget(1); got != 3 {
		t.Fatalf("DirectTarget = %d, want the director's 3", got)
	}
	if got := mk(7).DirectTarget(1); got != 1 {
		t.Fatalf("out-of-range direct = %d, want clamp to self 1", got)
	}
	if got := mk(-2).DirectTarget(1); got != 1 {
		t.Fatalf("negative direct = %d, want clamp to self 1", got)
	}
	if probed != 3 {
		t.Fatalf("size probes = %d, want one per Direct call", probed)
	}
	// Without a Director every add stays local, no probes.
	e, _ := newFakeEngine(t, make([]int, 4), 2, Config{}, NewBounded(4))
	if got := e.DirectTarget(5); got != 2 {
		t.Fatalf("no-director DirectTarget = %d, want self", got)
	}
}

// TestControlAwareWiring checks the engine resolves per-handle
// controllers and threads them into ControlAware orders: two handles get
// distinct spawned controllers, and a hierarchical order's searcher is
// built through SearcherFor.
func TestControlAwareWiring(t *testing.T) {
	ph := policy.NewPerHandle()
	pol := policy.Set{
		Steal:   ph,
		Control: ph,
		Order:   policy.HierarchicalOrder{Topo: numa.Clusters{Size: 2}},
	}.WithDefaults(search.Linear, false)
	mk := func(self int) *Engine {
		sub := &fakeSub{segs: make([]int, 4), self: self}
		return New(Config{Self: self, Segments: 4, Policies: pol}, sub, NewBounded(4))
	}
	e0, e1 := mk(0), mk(1)
	if e0.Controller() == nil || e0.Controller() == e1.Controller() {
		t.Fatal("per-handle set must spawn a distinct controller per engine")
	}
	if e0.StealAmount() == nil || policy.StealAmount(ph) == e0.StealAmount() {
		t.Fatal("spawned controller must also become the handle's steal amount")
	}
	if k := e0.Searcher().Kind(); k != search.Hierarchical {
		t.Fatalf("searcher kind = %v, want hierarchical (ControlAware path)", k)
	}
}
