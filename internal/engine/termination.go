package engine

// This file holds the three emptiness/livelock termination rules the
// substrates used to hand-roll inside their World adapters. A Termination
// decides when a search must give up: the paper's pool aborts "when any
// process discovers that all the processes involved in the pool
// operations are looking", and each substrate sharpens that rule to what
// its execution model can afford — an exact coverage certificate on the
// real pool, a charged full-lap heuristic in the simulator, a fixed sweep
// budget on the keyed pool (where absence is decidable).

// Termination is the emptiness rule for one handle's searches. Like the
// Substrate it pairs with, a Termination is owned by one handle and is
// not safe for concurrent use.
type Termination interface {
	// Begin arms the rule for a new search wanting up to want elements.
	Begin(want int)
	// SawEmpty records a fruitless probe of segment s.
	SawEmpty(s int)
	// SawProgress records that the probe found elements (or that the
	// search otherwise observed the pool non-empty): accumulated
	// emptiness evidence is stale.
	SawProgress()
	// Aborted reports whether the rule certifies that the search should
	// stop empty-handed.
	Aborted() bool
}

// CoverageState is the pool-wide evidence the Coverage rule consults,
// implemented by the real pool.
type CoverageState interface {
	// Version is a counter bumped on every mutation that could feed a
	// search (adds, steals, parked gifts).
	Version() uint64
	// AllSearching reports the paper's livelock observation: every
	// registered, unclosed handle is simultaneously inside a search.
	AllSearching() bool
	// GiftsInFlight reports a banked directed-add gift whose owner is
	// still searching — invisible elements that are about to surface, so
	// emptiness must not be certified while one exists.
	GiftsInFlight() bool
	// TransfersInFlight reports a steal mid-transfer: a thief holding a
	// victim's surplus in its private buffer between releasing the
	// victim's lock and depositing into its own segment. Those elements
	// are in no segment — invisible to probes — but are about to land
	// with a version bump, so emptiness must not be certified while a
	// transfer is in flight. Substrates whose steals move elements
	// atomically return false.
	TransfersInFlight() bool
	// Epoch is the membership epoch: a counter bumped on every handle
	// kill, revive, or kill-time element redistribution. An epoch move
	// invalidates all accumulated coverage evidence — a drain-kill can
	// relocate elements into segments a search already saw empty, and a
	// join adds a segment the search never probed — so emptiness must
	// not be certified across one. Pools without dynamic membership
	// return a constant.
	Epoch() uint64
}

// Coverage is the real pool's exact rule: a search may abort only once it
// has probed every segment and found it empty with no pool mutation
// observed in between, and either every open handle is simultaneously
// searching (the paper's livelock rule) or nothing has changed since the
// search began (the sequential-liveness rule for a single goroutine
// driving several handles). Coverage makes the decision exact: a Get
// never returns false while an element it could have taken sits
// unprobed, and batch gifts banked in a still-searching process's
// mailbox hold off the staleness abort until they surface.
type Coverage struct {
	state       CoverageState
	probed      []bool
	probedCount int
	seenVersion uint64
	seenEpoch   uint64
}

// NewCoverage returns a Coverage rule over a pool with the given segment
// count.
func NewCoverage(segments int, state CoverageState) *Coverage {
	return &Coverage{state: state, probed: make([]bool, segments)}
}

// Begin implements Termination: snapshot the pool version and the
// membership epoch, and forget prior coverage.
func (c *Coverage) Begin(int) {
	c.seenVersion = c.state.Version()
	c.seenEpoch = c.state.Epoch()
	c.reset()
}

// reset forgets which segments were seen empty.
func (c *Coverage) reset() {
	for i := range c.probed {
		c.probed[i] = false
	}
	c.probedCount = 0
}

// SawEmpty implements Termination.
func (c *Coverage) SawEmpty(s int) {
	if !c.probed[s] {
		c.probed[s] = true
		c.probedCount++
	}
}

// SawProgress implements Termination.
func (c *Coverage) SawProgress() { c.reset() }

// Aborted implements Termination. The gifts-in-flight check must precede
// the all-searching rule — a banked gift's owner is one of the searchers,
// so lookers >= open exactly while a gift is in flight — and cannot
// livelock: the owner's own-mailbox check (its substrate's Stopped) ends
// its search, clearing its hunger flag either way. The transfer check
// must precede it for the same reason (the thief counts as a looker
// until its successful search returns) and cannot livelock either: the
// thief needs only its own segment lock to finish the deposit and drop
// the flag.
//
// The membership-epoch check comes first — before the coverage
// short-circuit — because an epoch bump can move elements into segments
// this search has already marked probed (a drain-kill redistributes its
// segment mid-search): waiting until coverage completes would certify
// emptiness without ever re-probing the destination. On the no-churn
// path the check costs exactly one atomic load per call.
func (c *Coverage) Aborted() bool {
	if e := c.state.Epoch(); e != c.seenEpoch {
		// Membership changed: every piece of accumulated evidence may be
		// stale. Re-arm against the new epoch and current version.
		c.seenEpoch = e
		c.seenVersion = c.state.Version()
		c.reset()
		return false
	}
	if c.probedCount < len(c.probed) {
		return false
	}
	if c.state.GiftsInFlight() || c.state.TransfersInFlight() {
		return false
	}
	if c.state.AllSearching() {
		return true
	}
	if v := c.state.Version(); v != c.seenVersion {
		// Something changed while we searched: re-arm and continue.
		c.seenVersion = v
		c.reset()
		return false
	}
	return true
}

// LapsState is the shared evidence the Laps rule consults, implemented by
// the simulated pool.
type LapsState interface {
	// AllSearching reports whether every participant is inside a search
	// (the paper's shared-count livelock observation).
	AllSearching() bool
	// LatchEmpty makes every concurrent and future search abort. The
	// all-searching observation is latched so that every concurrent
	// search aborts, not just the process that made the observation
	// (otherwise the first abort lowers the count and strands the rest);
	// the next add clears the latch.
	LatchEmpty()
}

// Laps is the simulator's rule: all participants searching certifies
// emptiness only once this searcher has also invested a full lap's worth
// of consecutive fruitless probes — the paper's processes keep searching
// between checks of the shared count, and charging that effort is what
// reproduces the measured cost of sparse-mix aborts. (The real pool uses
// the exact Coverage rule instead; a simulation trial tolerates the rare
// spurious abort that consecutive counting allows, a 5000-op library run
// must not.)
type Laps struct {
	state  LapsState
	lap    int // probes per full lap (the segment count)
	failed int // consecutive fruitless probes this search
}

// NewLaps returns a Laps rule with a full lap of the given length.
func NewLaps(lap int, state LapsState) *Laps {
	return &Laps{state: state, lap: lap}
}

// Begin implements Termination.
func (l *Laps) Begin(int) { l.failed = 0 }

// SawEmpty implements Termination.
func (l *Laps) SawEmpty(int) { l.failed++ }

// SawProgress implements Termination.
func (l *Laps) SawProgress() { l.failed = 0 }

// Aborted implements Termination.
func (l *Laps) Aborted() bool {
	if l.state.AllSearching() && l.failed >= l.lap {
		l.state.LatchEmpty()
		return true
	}
	return false
}

// Bounded is the keyed pool's rule: a search performs a fixed budget of
// probes (Sweeps full passes over the ring) and then concludes the
// requested class is absent. No livelock rule is needed — a keyed removal
// knows exactly what it is looking for, so emptiness is decidable.
type Bounded struct {
	budget int
	used   int
}

// NewBounded returns a Bounded rule allowing budget probes per search.
func NewBounded(budget int) *Bounded {
	return &Bounded{budget: budget}
}

// Begin implements Termination.
func (b *Bounded) Begin(int) { b.used = 0 }

// SawEmpty implements Termination.
func (b *Bounded) SawEmpty(int) { b.used++ }

// SawProgress implements Termination: a successful probe ends the search,
// so there is no evidence to reset.
func (b *Bounded) SawProgress() {}

// Aborted implements Termination.
func (b *Bounded) Aborted() bool { return b.used >= b.budget }
