package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestKindNames pins the Kind → export-name table: every kind below
// numKinds has a non-empty, unique snake_case name, and out-of-range
// kinds degrade to "unknown".
func TestKindNames(t *testing.T) {
	seen := map[string]Kind{}
	for k := KindInvalid; k < numKinds; k++ {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share name %q", prev, k, name)
		}
		seen[name] = k
		if strings.ToLower(name) != name || strings.Contains(name, " ") {
			t.Errorf("kind name %q is not snake_case", name)
		}
	}
	if got := Kind(200).String(); got != "unknown" {
		t.Errorf("out-of-range kind name = %q, want unknown", got)
	}
}

// TestRecorderWraparound fills a small ring past capacity and checks
// the snapshot keeps exactly the newest events, oldest first, with the
// overwritten remainder counted as dropped.
func TestRecorderWraparound(t *testing.T) {
	var now int64
	r := NewRecorder(3, 8, func() int64 { now++; return now })
	for i := int32(0); i < 20; i++ {
		r.Record(ProbeNear, i, i*2)
	}
	if got := r.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	if got := r.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("Events len = %d, want 8", len(evs))
	}
	for i, ev := range evs {
		want := int32(12 + i) // events 12..19 survive
		if ev.Arg1 != want || ev.Arg2 != want*2 || ev.Kind != ProbeNear {
			t.Fatalf("event %d = %+v, want Arg1=%d", i, ev, want)
		}
		if i > 0 && ev.TS <= evs[i-1].TS {
			t.Fatalf("timestamps not increasing at %d: %d then %d", i, evs[i-1].TS, ev.TS)
		}
	}

	tl := r.Timeline()
	if tl.Handle != 3 || len(tl.Events) != 8 || tl.Dropped != 12 {
		t.Fatalf("Timeline = handle %d, %d events, %d dropped; want 3, 8, 12",
			tl.Handle, len(tl.Events), tl.Dropped)
	}
}

// TestRecorderMembershipWraparound drives the membership kinds through
// a wrapping ring: a kill/relocate/revive cycle repeated past capacity
// must surface only the newest transitions, kinds intact, with the
// overwritten prefix counted — the flight recorder's contract does not
// bend for the chaos path.
func TestRecorderMembershipWraparound(t *testing.T) {
	var now int64
	r := NewRecorder(1, 4, func() int64 { now++; return now })
	for cycle := int32(0); cycle < 5; cycle++ {
		r.Record(MemberLeave, cycle, 1)
		r.Record(EpochBump, cycle*2+1, 7)
		r.Record(MemberJoin, cycle, 0)
	}
	if got := r.Dropped(); got != 11 {
		t.Fatalf("Dropped = %d, want 11", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want 4", len(evs))
	}
	want := []Kind{MemberJoin, MemberLeave, EpochBump, MemberJoin}
	for i, ev := range evs {
		if ev.Kind != want[i] {
			t.Errorf("event %d kind = %s, want %s", i, ev.Kind, want[i])
		}
	}
	// The surviving tail is the final cycle plus the prior revive.
	if evs[1].Arg1 != 4 || evs[2].Arg1 != 9 || evs[3].Arg1 != 4 {
		t.Errorf("surviving args wrong: %+v", evs)
	}
}

// TestRecorderPartialFill checks the pre-wrap snapshot: fewer events
// than capacity come back in insertion order with nothing dropped.
func TestRecorderPartialFill(t *testing.T) {
	r := NewRecorder(0, 16, nil)
	r.Record(GiftSend, 1, 4)
	r.Record(GiftRecv, -1, 4)
	if got := r.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
	evs := r.Events()
	if len(evs) != 2 || evs[0].Kind != GiftSend || evs[1].Kind != GiftRecv {
		t.Fatalf("Events = %+v", evs)
	}
}

// TestRecorderTinyCapacity clamps capacity to one slot rather than
// panicking on a degenerate configuration.
func TestRecorderTinyCapacity(t *testing.T) {
	r := NewRecorder(0, 0, nil)
	r.Record(SearchBegin, 1, 0)
	r.Record(SearchEnd, 1, 0)
	evs := r.Events()
	if len(evs) != 1 || evs[0].Kind != SearchEnd {
		t.Fatalf("Events = %+v, want single SearchEnd", evs)
	}
}

// TestRecorderConcurrentRecordDump hammers one recorder with a writer
// and two snapshotting readers; under -race this pins the record-vs-
// dump safety the live /trace endpoint depends on. Each snapshot must
// also be internally consistent: timestamps non-decreasing.
func TestRecorderConcurrentRecordDump(t *testing.T) {
	var now int64
	var nowMu sync.Mutex
	clock := func() int64 { nowMu.Lock(); now++; v := now; nowMu.Unlock(); return v }
	r := NewRecorder(0, 64, clock)
	stop := make(chan struct{})
	var writer, readers sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := int32(0); ; i++ {
			select {
			case <-stop:
				return
			default:
				r.Record(ReserveTransfer, i%8, i)
			}
		}
	}()
	for reader := 0; reader < 2; reader++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				evs := r.Events()
				for j := 1; j < len(evs); j++ {
					if evs[j].TS < evs[j-1].TS {
						t.Errorf("snapshot out of order: %d after %d", evs[j].TS, evs[j-1].TS)
						return
					}
				}
				r.Dropped()
				r.Timeline()
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

// TestRecordAllocFree pins the recorder's own contract: Record on a
// warm ring performs zero heap allocations.
func TestRecordAllocFree(t *testing.T) {
	r := NewRecorder(0, 256, func() int64 { return 7 })
	r.Record(ProbeNear, 1, 1)
	if avg := testing.AllocsPerRun(200, func() { r.Record(ProbeCross, 2, 3) }); avg != 0 {
		t.Errorf("Record: %.2f allocs/op, want 0", avg)
	}
}

// TestCollect skips nil recorders and snapshots the rest.
func TestCollect(t *testing.T) {
	a := NewRecorder(0, 4, nil)
	b := NewRecorder(2, 4, nil)
	a.Record(ProbeNear, 1, 0)
	tls := Collect(a, nil, b)
	if len(tls) != 2 || tls[0].Handle != 0 || tls[1].Handle != 2 {
		t.Fatalf("Collect = %+v", tls)
	}
}

// TestChromeJSONStructure builds a hand-rolled two-handle timeline and
// checks the exporter's structural promises: valid JSON, metadata
// tracks, searches paired into "X" slices with ring colors, aborted
// searches renamed, instants carrying their args, and determinism
// across repeated exports.
func TestChromeJSONStructure(t *testing.T) {
	tls := []Timeline{
		{Handle: 0, Events: []Event{
			{TS: 10, Kind: SearchBegin, Arg1: 1},
			{TS: 12, Kind: ProbeNear, Arg1: 1, Arg2: 0},
			{TS: 15, Kind: EscalateRing, Arg1: 2, Arg2: 3},
			{TS: 18, Kind: ProbeCross, Arg1: 3, Arg2: 5},
			{TS: 19, Kind: ReserveTransfer, Arg1: 3, Arg2: 5},
			{TS: 20, Kind: SearchEnd, Arg1: 5, Arg2: 2},
		}},
		{Handle: 1, Events: []Event{
			{TS: 30, Kind: SearchBegin, Arg1: 1},
			{TS: 33, Kind: TerminationAborted, Arg1: 1},
			{TS: 34, Kind: SearchEnd, Arg1: 0, Arg2: 1},
		}},
	}
	var buf bytes.Buffer
	if err := ChromeJSON(&buf, tls); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}

	var meta, slices, instants int
	var sawAborted, sawCrossSlice bool
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			slices++
			args, _ := ev["args"].(map[string]any)
			if args == nil || args["want"] == nil || args["got"] == nil || args["ring"] == nil {
				t.Errorf("slice missing want/got/ring args: %v", ev)
			}
			if ev["name"] == "search_aborted" {
				sawAborted = true
			}
			if ev["cname"] == "bad" { // ring 2 color
				sawCrossSlice = true
			}
		case "i":
			instants++
			if ev["s"] != "t" {
				t.Errorf("instant not thread-scoped: %v", ev)
			}
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
	}
	if meta != 3 { // process_name + one thread_name per handle
		t.Errorf("metadata events = %d, want 3", meta)
	}
	if slices != 2 {
		t.Errorf("search slices = %d, want 2", slices)
	}
	if instants != 5 { // 4 instants on handle 0 + TerminationAborted on handle 1
		t.Errorf("instants = %d, want 5", instants)
	}
	if !sawAborted {
		t.Error("aborted search not renamed search_aborted")
	}
	if !sawCrossSlice {
		t.Error("ring-2 search slice not colored")
	}

	var again bytes.Buffer
	if err := ChromeJSON(&again, tls); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("ChromeJSON output is not deterministic")
	}
}

// TestChromeJSONUnpaired covers the ring-wrap edge: a SearchEnd whose
// begin was overwritten and a SearchBegin still open at snapshot time
// both degrade to instants instead of being dropped.
func TestChromeJSONUnpaired(t *testing.T) {
	tls := []Timeline{{Handle: 0, Events: []Event{
		{TS: 5, Kind: SearchEnd, Arg1: 2, Arg2: 0},
		{TS: 9, Kind: SearchBegin, Arg1: 1},
	}}}
	var buf bytes.Buffer
	if err := ChromeJSON(&buf, tls); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"search_end"`, `"search_begin"`} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %s instant: %s", want, out)
		}
	}
	if strings.Contains(out, `"ph":"X"`) {
		t.Error("unpaired events must not form a slice")
	}
}

// TestWriteCSV checks the merged CSV: header, timestamp-sorted
// interleave across handles, and one row per event.
func TestWriteCSV(t *testing.T) {
	tls := []Timeline{
		{Handle: 0, Events: []Event{
			{TS: 10, Kind: SearchBegin, Arg1: 1},
			{TS: 40, Kind: SearchEnd, Arg1: 1, Arg2: 0},
		}},
		{Handle: 1, Events: []Event{{TS: 20, Kind: ReserveTransfer, Arg1: 0, Arg2: 3}}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tls); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := []string{
		"ts,handle,event,arg1,arg2",
		"10,0,search_begin,1,0",
		"20,1,reserve_transfer,0,3",
		"40,0,search_end,1,0",
	}
	if len(lines) != len(want) {
		t.Fatalf("CSV lines = %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}
