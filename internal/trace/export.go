// Chrome trace-event and CSV exporters for flight-recorder timelines.
//
// The Chrome format is the JSON-array-of-events schema consumed by
// chrome://tracing and https://ui.perfetto.dev: metadata events name
// the process and one thread ("track") per handle, steal searches
// become complete ("X") slices whose color encodes the farthest
// topology ring the search escalated to, and every other protocol
// event is an instant ("i") on its handle's track. Output is fully
// deterministic for a given timeline set — events are emitted in
// timeline order with struct-field JSON (no map iteration) — so a
// seeded sim run can be pinned by a golden file.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the trace-event JSON array. Field order
// here is the field order in the output.
type chromeEvent struct {
	Name  string      `json:"name"`
	Ph    string      `json:"ph"`
	TS    int64       `json:"ts"`
	Dur   int64       `json:"dur,omitempty"`
	Pid   int         `json:"pid"`
	Tid   int         `json:"tid"`
	Scope string      `json:"s,omitempty"`
	Cname string      `json:"cname,omitempty"`
	Args  *chromeArgs `json:"args,omitempty"`
}

// chromeArgs carries the kind-specific arguments. A struct rather than
// a map keeps key order (and therefore golden files) deterministic.
type chromeArgs struct {
	Name string `json:"name,omitempty"`
	A    *int32 `json:"arg1,omitempty"`
	B    *int32 `json:"arg2,omitempty"`
	Want *int32 `json:"want,omitempty"`
	Got  *int32 `json:"got,omitempty"`
	Ring *int32 `json:"ring,omitempty"`
}

// ringColor maps the farthest ring a search reached to a Chrome
// reserved color name: local-cluster searches are green, each
// escalation ring steps through the warning palette.
func ringColor(ring int32) string {
	switch {
	case ring <= 1:
		return "good"
	case ring == 2:
		return "bad"
	default:
		return "terrible"
	}
}

// instantColor picks a track color for non-slice events so the dense
// instants are visually separable in Perfetto.
func instantColor(k Kind) string {
	switch k {
	case ProbeCross, TenantForeignSteal:
		return "terrible"
	case EscalateRing:
		return "bad"
	case ReserveTransfer:
		return "good"
	case GiftSend, GiftRecv, DirectPlace:
		return "generic_work"
	default:
		return ""
	}
}

// ChromeJSON writes the timelines as Chrome trace-event JSON: one
// process, one thread per handle, searches as colored complete slices
// and all other events as instants. The output loads directly in
// chrome://tracing or Perfetto and is byte-deterministic for a given
// input.
func ChromeJSON(w io.Writer, tls []Timeline) error {
	events := make([]chromeEvent, 0, 64)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: &chromeArgs{Name: "pools"},
	})
	for _, tl := range tls {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tl.Handle,
			Args: &chromeArgs{Name: fmt.Sprintf("handle %d", tl.Handle)},
		})
	}
	for _, tl := range tls {
		events = append(events, chromeTrack(tl)...)
	}
	enc, err := json.Marshal(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
	if err != nil {
		return err
	}
	_, err = w.Write(append(enc, '\n'))
	return err
}

// chromeTrack converts one handle's events into its track: paired
// SearchBegin/SearchEnd become an "X" slice (aborted searches are
// named search_aborted), everything else an "i" instant.
func chromeTrack(tl Timeline) []chromeEvent {
	out := make([]chromeEvent, 0, len(tl.Events))
	var open *Event // pending SearchBegin
	aborted := false
	for i := range tl.Events {
		ev := tl.Events[i]
		switch ev.Kind {
		case SearchBegin:
			open = &tl.Events[i]
			aborted = false
		case TerminationAborted:
			aborted = true
			out = append(out, instant(tl.Handle, ev))
		case SearchEnd:
			if open == nil {
				// The begin fell off the ring; emit the end as an
				// instant so the data is not silently lost.
				out = append(out, instant(tl.Handle, ev))
				continue
			}
			name := "search"
			if aborted {
				name = "search_aborted"
			}
			want, got, ring := open.Arg1, ev.Arg1, ev.Arg2
			out = append(out, chromeEvent{
				Name: name, Ph: "X", TS: open.TS, Dur: ev.TS - open.TS,
				Pid: 0, Tid: tl.Handle, Cname: ringColor(ring),
				Args: &chromeArgs{Want: &want, Got: &got, Ring: &ring},
			})
			open = nil
		default:
			out = append(out, instant(tl.Handle, ev))
		}
	}
	if open != nil {
		// A search was still in flight at snapshot time.
		w := open.Arg1
		out = append(out, chromeEvent{
			Name: "search_begin", Ph: "i", TS: open.TS, Pid: 0,
			Tid: tl.Handle, Scope: "t", Args: &chromeArgs{Want: &w},
		})
	}
	return out
}

// instant renders one event as a thread-scoped instant.
func instant(handle int, ev Event) chromeEvent {
	a, b := ev.Arg1, ev.Arg2
	return chromeEvent{
		Name: ev.Kind.String(), Ph: "i", TS: ev.TS, Pid: 0, Tid: handle,
		Scope: "t", Cname: instantColor(ev.Kind),
		Args: &chromeArgs{A: &a, B: &b},
	}
}

// WriteCSV writes the timelines as flat CSV (`ts,handle,event,arg1,
// arg2`), merged across handles in timestamp order so the file reads
// as one interleaved protocol log. Ties keep handle order, so output
// is deterministic.
func WriteCSV(w io.Writer, tls []Timeline) error {
	if _, err := fmt.Fprintln(w, "ts,handle,event,arg1,arg2"); err != nil {
		return err
	}
	// K-way merge by timestamp across the (already time-sorted)
	// per-handle timelines.
	idx := make([]int, len(tls))
	for {
		best := -1
		for i, tl := range tls {
			if idx[i] >= len(tl.Events) {
				continue
			}
			if best < 0 || tl.Events[idx[i]].TS < tls[best].Events[idx[best]].TS {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		ev := tls[best].Events[idx[best]]
		idx[best]++
		if _, err := fmt.Fprintf(w, "%d,%d,%s,%d,%d\n",
			ev.TS, tls[best].Handle, ev.Kind, ev.Arg1, ev.Arg2); err != nil {
			return err
		}
	}
}
