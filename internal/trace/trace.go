// Package trace is the search-steal engine's flight recorder: a
// per-handle fixed-size ring buffer of typed protocol events. The
// paper's claims are about protocol dynamics — who probed whom, when a
// searcher escalated past its cluster, why the coverage rule certified
// emptiness — and aggregate counters cannot answer those questions
// after the fact. The recorder keeps the last N events per handle so
// any run (sim or real) can be opened as a timeline.
//
// Design constraints, in order:
//
//  1. The disabled path costs nothing. Substrates hold a *Recorder
//     that is nil unless tracing was requested; every emission site is
//     a nil check in front of a method call, so the hot path stays
//     0 allocs/op and `make bench-check` arbitrates the residual cost.
//  2. Record is allocation-free. An Event is four scalar fields, the
//     ring is a preallocated array, and the clock closures used by the
//     substrates (wall-time-since-epoch, sim virtual clock) do not
//     allocate. The only lock is the recorder's own mutex, which is
//     per-handle and therefore uncontended except against a concurrent
//     dump from the introspection endpoint.
//  3. Dumping is safe while the pool runs. Events() snapshots under
//     the same mutex, so the live /trace endpoint can read a recorder
//     that its handle is still writing (exercised under -race).
//
// Timestamps are int64 "ticks": microseconds since the pool's start on
// the real substrates, virtual time units in the simulator. The
// exporters (ChromeJSON, WriteCSV) treat ticks as microseconds, which
// is exact for the real pool and a harmless relabeling for the sim.
package trace

import "sync"

// Kind identifies one flight-recorder event type. The set mirrors the
// edges of the search-steal protocol: probes (near/cross ring), the
// reserve-transfer that moves elements, gift traffic, hierarchical
// ring escalation, termination verdicts, and cross-tenant steals.
type Kind uint8

// The event kinds, one per protocol edge. Arg1/Arg2 meanings are
// per-kind and documented on each constant.
const (
	// KindInvalid is the zero Kind; a recorder never emits it.
	KindInvalid Kind = iota
	// SearchBegin opens a steal search. Arg1 = elements wanted.
	SearchBegin
	// SearchEnd closes a steal search. Arg1 = elements obtained,
	// Arg2 = highest topology ring the search escalated to (0 when the
	// pool has no topology).
	SearchEnd
	// ProbeNear is a remote probe within the prober's cluster.
	// Arg1 = probed segment, Arg2 = elements obtained.
	ProbeNear
	// ProbeCross is a remote probe outside the prober's cluster.
	// Arg1 = probed segment, Arg2 = elements obtained.
	ProbeCross
	// ReserveTransfer is the substrate's reserve-and-move edge: the
	// victim's share was reserved under its lock and transferred to
	// the thief. Arg1 = victim segment, Arg2 = elements moved.
	ReserveTransfer
	// GiftSend records a directed add handed to another handle's
	// mailbox. Arg1 = receiving segment (-1 when fanned out),
	// Arg2 = elements gifted.
	GiftSend
	// GiftRecv records gifts collected from this handle's mailbox.
	// Arg1 = sending segment (-1 when unknown), Arg2 = elements.
	GiftRecv
	// EscalateRing marks a search widening to a farther topology ring.
	// Arg1 = ring (hop distance) now admitted, Arg2 = first segment
	// probed on that ring.
	EscalateRing
	// TerminationCertified records an empty verdict: the termination
	// rule proved the pool empty. Arg1 = elements wanted.
	TerminationCertified
	// TerminationAborted records a search cut short (Stop, sweep
	// budget, or rule abort) without an emptiness proof.
	// Arg1 = elements wanted.
	TerminationAborted
	// TenantForeignSteal is a steal whose victim belongs to another
	// tenant — the interference edge. Arg1 = victim segment,
	// Arg2 = elements moved.
	TenantForeignSteal
	// DirectPlace records the Director routing an add away from the
	// local segment. Arg1 = target segment, Arg2 = batch size.
	DirectPlace
	// Feedback is the post-search Observe edge feeding the adaptive
	// controller. Arg1 = elements obtained (-1 when aborted),
	// Arg2 = probes examined.
	Feedback
	// MemberLeave records a handle leaving the pool's membership (a kill
	// or a departure). Arg1 = departed segment, Arg2 = 1 when its
	// segment was drained and redistributed, 0 when it degraded to a
	// steal-only victim.
	MemberLeave
	// MemberJoin records a handle (re)joining the membership: its
	// segment is re-admitted to victim orders and placements.
	// Arg1 = joined segment.
	MemberJoin
	// EpochBump records a membership-epoch advance outside leave/join —
	// a kill-time drain relocating elements — which invalidates every
	// in-flight coverage certificate. Arg1 = low 31 bits of the new
	// epoch, Arg2 = elements relocated.
	EpochBump
	// numKinds bounds the Kind space for the name table.
	numKinds
)

// kindNames indexes Kind → export name. Keep in sync with the const
// block above; TestKindNames pins the correspondence.
var kindNames = [numKinds]string{
	KindInvalid:          "invalid",
	SearchBegin:          "search_begin",
	SearchEnd:            "search_end",
	ProbeNear:            "probe_near",
	ProbeCross:           "probe_cross",
	ReserveTransfer:      "reserve_transfer",
	GiftSend:             "gift_send",
	GiftRecv:             "gift_recv",
	EscalateRing:         "escalate_ring",
	TerminationCertified: "termination_certified",
	TerminationAborted:   "termination_aborted",
	TenantForeignSteal:   "tenant_foreign_steal",
	DirectPlace:          "direct_place",
	Feedback:             "feedback",
	MemberLeave:          "member_leave",
	MemberJoin:           "member_join",
	EpochBump:            "epoch_bump",
}

// String returns the stable snake_case name used by the JSON and CSV
// exporters.
func (k Kind) String() string {
	if k >= numKinds {
		return "unknown"
	}
	return kindNames[k]
}

// Event is one recorded protocol event: a timestamp in recorder ticks,
// the kind, and two kind-specific scalar arguments. Events are plain
// values (no pointers) so the ring is a flat array the GC never scans.
type Event struct {
	// TS is the event time in recorder ticks (microseconds on the
	// real substrates, virtual time in the sim).
	TS int64
	// Kind says which protocol edge fired.
	Kind Kind
	// Arg1 is the first kind-specific argument (see the Kind consts).
	Arg1 int32
	// Arg2 is the second kind-specific argument.
	Arg2 int32
}

// Recorder is a fixed-capacity ring buffer of Events for one handle.
// Record overwrites the oldest event once the ring is full — a flight
// recorder keeps the recent past, not the whole run. All methods are
// safe for concurrent use; the expected pattern is one writer (the
// owning handle) and occasional readers (the dump endpoints).
type Recorder struct {
	mu     sync.Mutex
	clock  func() int64
	handle int
	buf    []Event
	next   uint64 // events ever recorded; next % cap is the write slot
}

// NewRecorder returns a recorder for the given handle with room for
// capacity events, timestamping each Record with clock(). Capacity is
// clamped to at least 1; a nil clock records zero timestamps.
func NewRecorder(handle, capacity int, clock func() int64) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	return &Recorder{clock: clock, handle: handle, buf: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest if the ring is
// full. It performs no heap allocations.
func (r *Recorder) Record(k Kind, arg1, arg2 int32) {
	ts := r.clock()
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = Event{TS: ts, Kind: k, Arg1: arg1, Arg2: arg2}
	r.next++
	r.mu.Unlock()
}

// Handle returns the handle index this recorder belongs to.
func (r *Recorder) Handle() int { return r.handle }

// Len reports how many events the ring currently holds.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Dropped reports how many events have been overwritten because the
// ring wrapped.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped()
}

func (r *Recorder) dropped() uint64 {
	if r.next < uint64(len(r.buf)) {
		return 0
	}
	return r.next - uint64(len(r.buf))
}

// Events returns a snapshot of the retained events, oldest first. The
// snapshot is a fresh slice; the recorder may keep recording while the
// caller walks it.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	if r.next < n {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, n)
	start := r.next % n
	copy(out, r.buf[start:])
	copy(out[n-start:], r.buf[:start])
	return out
}

// Timeline snapshots the recorder into an exportable Timeline.
func (r *Recorder) Timeline() Timeline {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Inline Events() under the held lock so Events and Dropped come
	// from the same instant.
	n := uint64(len(r.buf))
	var out []Event
	if r.next < n {
		out = make([]Event, r.next)
		copy(out, r.buf[:r.next])
	} else {
		out = make([]Event, n)
		start := r.next % n
		copy(out, r.buf[start:])
		copy(out[n-start:], r.buf[:start])
	}
	return Timeline{Handle: r.handle, Events: out, Dropped: r.dropped()}
}

// Timeline is one handle's exportable slice of the flight recorder: a
// snapshot of its retained events plus how many older events the ring
// had already overwritten.
type Timeline struct {
	// Handle is the owning handle's index (one track per handle in
	// the Chrome export).
	Handle int
	// Events holds the retained events, oldest first.
	Events []Event
	// Dropped counts events lost to ring wraparound before this
	// snapshot.
	Dropped uint64
}

// Collect snapshots a set of recorders into timelines, skipping nil
// recorders (handles with tracing disabled).
func Collect(recs ...*Recorder) []Timeline {
	out := make([]Timeline, 0, len(recs))
	for _, r := range recs {
		if r != nil {
			out = append(out, r.Timeline())
		}
	}
	return out
}
