package plot

import (
	"strings"
	"testing"
)

func TestLineChartContainsSeriesAndLabels(t *testing.T) {
	out := LineChart("Figure 2", "% adds", "avg op time", 60, 12, []Series{
		{Name: "random", X: []float64{0, 50, 100}, Y: []float64{40, 10, 5}},
		{Name: "producer/consumer", X: []float64{0, 50, 100}, Y: []float64{45, 20, 5}},
	})
	for _, want := range []string{"Figure 2", "% adds", "avg op time", "random", "producer/consumer", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
}

func TestLineChartEmpty(t *testing.T) {
	out := LineChart("empty", "x", "y", 40, 10, nil)
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart should say so:\n%s", out)
	}
}

func TestLineChartDegenerateRanges(t *testing.T) {
	// Single point and all-zero Y must not panic or divide by zero.
	out := LineChart("deg", "x", "y", 30, 8, []Series{
		{Name: "pt", X: []float64{5}, Y: []float64{0}},
	})
	if !strings.Contains(out, "pt") {
		t.Fatal("degenerate chart missing legend")
	}
}

func TestLineChartMonotoneDataPlacesHighLeft(t *testing.T) {
	// Decreasing series: the marker in the first data column should be in a
	// higher row than the marker in the last column.
	out := LineChart("mono", "x", "y", 40, 10, []Series{
		{Name: "s", X: []float64{0, 1}, Y: []float64{100, 0}, Marker: '*'},
	})
	lines := strings.Split(out, "\n")
	firstRow, lastRow := -1, -1
	for r, line := range lines {
		bar := strings.IndexByte(line, '|')
		if bar < 0 {
			continue
		}
		body := line[bar+1:]
		if i := strings.IndexByte(body, '*'); i >= 0 {
			if firstRow == -1 {
				firstRow = r
			}
			lastRow = r
		}
	}
	if firstRow == -1 || firstRow == lastRow {
		t.Fatalf("marker rows not found or flat:\n%s", out)
	}
}

func TestSegmentTraces(t *testing.T) {
	traces := [][]int64{
		{0, 1, 2, 3},
		{10, 10, 0, 0},
	}
	out := SegmentTraces("Figure 3", traces, map[int]bool{1: true})
	if !strings.Contains(out, "seg  0 C") || !strings.Contains(out, "seg  1 P") {
		t.Fatalf("roles missing:\n%s", out)
	}
	if !strings.Contains(out, "max=10") {
		t.Fatalf("max annotation missing:\n%s", out)
	}
	if !strings.Contains(out, "@") {
		t.Fatalf("density ramp missing peak:\n%s", out)
	}
}

func TestSegmentTracesAllZero(t *testing.T) {
	out := SegmentTraces("z", [][]int64{{0, 0}}, nil)
	if !strings.Contains(out, "seg  0 C") {
		t.Fatalf("zero trace broken:\n%s", out)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"alg", "time"}, [][]string{
		{"linear", "12.5"},
		{"tree", "100.0"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("header/separator width mismatch:\n%s", out)
	}
	if !strings.Contains(lines[0], "alg") || !strings.Contains(lines[3], "tree") {
		t.Fatalf("table content wrong:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"a", "b"}, [][]string{
		{"1", "2"},
		{"x,y", `say "hi"`},
	})
	want := "a,b\n1,2\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}
