// Package plot renders the paper's figures as ASCII charts: multi-series
// line charts (Figures 2 and 7) and per-segment size trace panels
// (Figures 3-6). Output is plain text suitable for a terminal or for
// inclusion in EXPERIMENTS.md.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name   string
	X      []float64
	Y      []float64
	Marker byte // rune used for points; 0 defaults per-series
}

// defaultMarkers cycles when series don't specify one.
var defaultMarkers = []byte{'*', 'o', '+', 'x', '#', '@'}

// LineChart renders the series onto a width x height grid with axes and a
// legend. X and Y ranges are computed from the data (with a zero-based Y
// axis, matching the paper's figures).
func LineChart(title, xLabel, yLabel string, width, height int, series []Series) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := math.Inf(-1)
	empty := true
	for _, s := range series {
		for i := range s.X {
			empty = false
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if empty {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY <= 0 {
		maxY = 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, m byte) {
		cx := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		cy := int(math.Round(y / maxY * float64(height-1)))
		if cx < 0 || cx >= width || cy < 0 || cy >= height {
			return
		}
		row := height - 1 - cy
		grid[row][cx] = m
	}
	for si, s := range series {
		m := s.Marker
		if m == 0 {
			m = defaultMarkers[si%len(defaultMarkers)]
		}
		// Draw line interpolation between consecutive points, then points.
		for i := 0; i+1 < len(s.X); i++ {
			steps := width
			for st := 0; st <= steps; st++ {
				f := float64(st) / float64(steps)
				plot(s.X[i]+(s.X[i+1]-s.X[i])*f, s.Y[i]+(s.Y[i+1]-s.Y[i])*f, m)
			}
		}
		for i := range s.X {
			plot(s.X[i], s.Y[i], m)
		}
	}

	// Y axis labels on the left.
	yw := len(fmt.Sprintf("%.0f", maxY)) + 1
	for r := 0; r < height; r++ {
		yVal := maxY * float64(height-1-r) / float64(height-1)
		label := ""
		if r == 0 || r == height-1 || r == height/2 {
			label = fmt.Sprintf("%.0f", yVal)
		}
		fmt.Fprintf(&b, "%*s |%s\n", yw, label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%*s +%s\n", yw, "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%*s  %-*.0f%*.0f\n", yw, "", width/2, minX, width-width/2, maxX)
	fmt.Fprintf(&b, "%*s  x: %s   y: %s\n", yw, "", xLabel, yLabel)
	for si, s := range series {
		m := s.Marker
		if m == 0 {
			m = defaultMarkers[si%len(defaultMarkers)]
		}
		fmt.Fprintf(&b, "%*s  %c = %s\n", yw, "", m, s.Name)
	}
	return b.String()
}

// SegmentTraces renders Figures 3-6 style panels: one row per segment,
// showing each segment's size over time as a density ramp, with producers
// marked. traces[i] must be the resampled sizes of segment i at uniform
// time steps.
func SegmentTraces(title string, traces [][]int64, producers map[int]bool) string {
	return TracePanels(title, "seg", "elements", traces, producers, "P", "C")
}

// TracePanels renders one labeled density row per series: row i shows
// rows[i]'s values over uniform time steps as a ramp from ' ' (zero) to
// '@' (the global maximum). rowPrefix labels each row ("seg", "handle"),
// unit names the plotted quantity in the scale line, and marked rows get
// markLabel instead of unmarkLabel next to their index (producer/consumer
// roles in the figures). It is the shared renderer behind the Figure 3-6
// segment-size panels and the controller-trajectory panels.
func TracePanels(title, rowPrefix, unit string, rows [][]int64, marked map[int]bool, markLabel, unmarkLabel string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	var maxV int64 = 1
	for _, tr := range rows {
		for _, v := range tr {
			if v > maxV {
				maxV = v
			}
		}
	}
	ramp := []byte(" .:-=+*#%@")
	for i, tr := range rows {
		role := unmarkLabel
		if marked[i] {
			role = markLabel
		}
		fmt.Fprintf(&b, "%s %2d %s |", rowPrefix, i, role)
		for _, v := range tr {
			idx := int(v * int64(len(ramp)-1) / maxV)
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		fmt.Fprintf(&b, "| max=%d\n", maxOf(tr))
	}
	fmt.Fprintf(&b, "scale: ' '=0 .. '@'=%d %s; time runs left to right\n", maxV, unit)
	return b.String()
}

func maxOf(vs []int64) int64 {
	var m int64
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

// Table renders rows as a fixed-width text table. header names the
// columns; every row must have len(header) cells.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders header and rows as RFC-4180-ish comma-separated values
// (fields containing commas or quotes are quoted).
func CSV(header []string, rows [][]string) string {
	var b strings.Builder
	writeRec := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRec(header)
	for _, r := range rows {
		writeRec(r)
	}
	return b.String()
}
