// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the repository.
//
// Experiments in this repo must be reproducible: every trial is driven by an
// explicit seed, and every virtual processor owns an independent stream.
// The math/rand global generator is deliberately avoided because it is
// process-global and lock-protected; these generators are value types that
// can be embedded per goroutine or per virtual processor with no sharing.
//
// Two generators are provided:
//
//   - SplitMix64: a tiny 64-bit generator used mainly to seed other
//     generators and for stateless hashing of seeds.
//   - Xoshiro256: xoshiro256**, a high-quality general-purpose generator
//     with 256 bits of state, used for all workload decisions.
package rng

import "math/bits"

// SplitMix64 is Steele, Lea & Flood's splitmix64 generator. The zero value
// is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix hashes a seed into a well-distributed 64-bit value without mutating
// any state. It is the pure-function form of a single SplitMix64 step and
// is used to derive independent sub-seeds (for example, per-processor
// streams from a trial seed).
func Mix(seed uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SubSeed derives the stream-th sub-seed of seed. Distinct (seed, stream)
// pairs yield independent-looking seeds, so each virtual processor in a
// trial can own its own generator.
func SubSeed(seed uint64, stream int) uint64 {
	return Mix(seed ^ Mix(uint64(stream)+0x6a09e667f3bcc909))
}

// Xoshiro256 is Blackman & Vigna's xoshiro256** 1.0 generator.
// It must be created with NewXoshiro256; the zero value is invalid
// (all-zero state is a fixed point) and Next will panic on it.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is derived from seed via
// SplitMix64, per the authors' recommendation. Any seed (including 0) is
// acceptable.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	var x Xoshiro256
	x.Seed(seed)
	return &x
}

// Seed resets the generator state from seed.
func (x *Xoshiro256) Seed(seed uint64) {
	sm := SplitMix64{state: seed}
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// The all-zero state is the only invalid state and cannot be produced
	// by four SplitMix64 outputs in practice, but guard anyway.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
}

// Next returns the next 64-bit value in the sequence.
func (x *Xoshiro256) Next() uint64 {
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		panic("rng: Xoshiro256 used before seeding")
	}
	result := bits.RotateLeft64(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = bits.RotateLeft64(x.s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	bound := uint64(n)
	for {
		v := x.Next()
		hi, lo := bits.Mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1) with 53 bits of
// precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Next()>>11) / (1 << 53)
}

// Bool returns true with probability p. Probabilities outside [0, 1] are
// clamped.
func (x *Xoshiro256) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return x.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher-Yates.
func (x *Xoshiro256) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
