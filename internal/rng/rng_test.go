package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// Reference values for splitmix64 seeded with 1234567, from the public
// reference implementation (Vigna).
func TestSplitMix64KnownVector(t *testing.T) {
	sm := NewSplitMix64(1234567)
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	for i, w := range want {
		if got := sm.Next(); got != w {
			t.Fatalf("splitmix64 output %d = %d, want %d", i, got, w)
		}
	}
}

func TestMixMatchesSplitMixStep(t *testing.T) {
	f := func(seed uint64) bool {
		sm := NewSplitMix64(seed)
		return sm.Next() == Mix(seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubSeedStreamsDiffer(t *testing.T) {
	seen := make(map[uint64]int)
	for stream := 0; stream < 1000; stream++ {
		s := SubSeed(42, stream)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SubSeed(42, %d) collides with stream %d", stream, prev)
		}
		seen[s] = stream
	}
}

func TestSubSeedDeterministic(t *testing.T) {
	f := func(seed uint64, stream uint8) bool {
		return SubSeed(seed, int(stream)) == SubSeed(seed, int(stream))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXoshiroZeroValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Next on zero-value Xoshiro256 did not panic")
		}
	}()
	var x Xoshiro256
	x.Next()
}

func TestXoshiroDeterministic(t *testing.T) {
	a := NewXoshiro256(99)
	b := NewXoshiro256(99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a := NewXoshiro256(1)
	b := NewXoshiro256(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestIntnRange(t *testing.T) {
	x := NewXoshiro256(7)
	for _, n := range []int{1, 2, 3, 10, 16, 1000} {
		for i := 0; i < 2000; i++ {
			v := x.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	x := NewXoshiro256(7)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			x.Intn(n)
		}()
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared smoke test over 16 buckets (the paper's segment count).
	const buckets = 16
	const samples = 160000
	x := NewXoshiro256(2026)
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[x.Intn(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile is ~37.7.
	if chi2 > 37.7 {
		t.Fatalf("chi-squared %.1f exceeds 37.7; counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro256(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := x.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	x := NewXoshiro256(5)
	cases := []struct {
		p    float64
		want float64
	}{
		{-0.5, 0}, {0, 0}, {0.3, 0.3}, {0.5, 0.5}, {1, 1}, {1.5, 1},
	}
	const n = 50000
	for _, c := range cases {
		hits := 0
		for i := 0; i < n; i++ {
			if x.Bool(c.p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("Bool(%v) rate %.4f, want %.2f", c.p, got, c.want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	x := NewXoshiro256(11)
	for _, n := range []int{0, 1, 2, 5, 16, 64} {
		p := x.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSeedResetsSequence(t *testing.T) {
	x := NewXoshiro256(123)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = x.Next()
	}
	x.Seed(123)
	for i := range first {
		if got := x.Next(); got != first[i] {
			t.Fatalf("after reseed, output %d = %d, want %d", i, got, first[i])
		}
	}
}

func BenchmarkXoshiroNext(b *testing.B) {
	x := NewXoshiro256(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = x.Next()
	}
	_ = sink
}

func BenchmarkIntn16(b *testing.B) {
	x := NewXoshiro256(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = x.Intn(16)
	}
	_ = sink
}
