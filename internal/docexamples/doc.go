// Package docexamples keeps the documentation honest: examples.go (build
// tag "docsexamples") mirrors every Go code fence in README.md and the
// pools package documentation, so `make docs-check` fails if a fence
// references an API that no longer compiles. Update the fences and this
// package together.
package docexamples
