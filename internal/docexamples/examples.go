//go:build docsexamples

package docexamples

import "pools"

// Task stands in for the element type the documentation examples pool.
type Task struct{}

// readmeQuickstart mirrors the README "Quickstart" fence.
func readmeQuickstart(workerID int, task Task, tasks []Task) {
	p, _ := pools.New[Task](pools.Options{Segments: 8, Search: pools.SearchTree})
	h := p.Handle(workerID) // each worker goroutine owns one segment
	h.Put(task)             // O(1), local
	task, ok := h.Get()     // local pop, or steal from a remote segment
	_, _ = task, ok

	// Batch operations amortize one segment acquisition over k elements:
	h.PutAll(tasks)
	batch := h.GetN(32)
	_ = batch

	// Policies make every knob pluggable; "adaptive" tunes itself online,
	// "per-handle" gives every worker its own independent controller:
	set, _ := pools.PolicyByName("per-handle")
	p2, _ := pools.New[Task](pools.Options{Segments: 8, Policies: set})
	_ = p2

	// On machines where "remote" is not one cost, rank steal victims by a
	// cost model and steer adds toward the emptiest segment:
	costs := pools.ButterflyCosts().WithTopology(pools.ClusterTopology{Size: 4}).WithExtraDelay(1000)
	p3, _ := pools.New[Task](pools.Options{Segments: 16, Policies: pools.PolicySet{
		Order: pools.LocalityVictimOrder{Model: costs},
		Place: pools.EmptiestPlacement{},
	}})
	_ = p3

	// On clustered machines, go further: exhaust your own cluster before
	// crossing (with an online-tuned escalation threshold), weigh emptiness
	// against hop cost on the add side, and count cross-cluster probes:
	topo := pools.ClusterTopology{Size: 4}
	p4, _ := pools.New[Task](pools.Options{Segments: 16, Topology: topo, Policies: pools.PolicySet{
		Order: pools.HierarchicalVictimOrder{Topo: topo},
		Place: pools.NearestEmptiestPlacement{Model: costs},
	}})
	_ = p4

	// Multi-tenant sharing: partition segments among tenants, confine each
	// tenant's adds to its own block, and measure cross-tenant theft:
	tm := pools.EvenTenants(16, 4)
	p5, _ := pools.New[Task](pools.Options{Segments: 16, CollectStats: true,
		Policies: pools.PolicySet{Place: pools.TenantFairPlacement{Map: tm}}})
	st := p5.Stats() // st.StealInterference() is the cross-tenant fraction
	_ = st
}

// readmeDeprecatedAliases mirrors the README fence mapping the deprecated
// Options fields onto their policy-set replacements.
func readmeDeprecatedAliases() {
	// Options{Steal: pools.StealOne}  ->
	p6, _ := pools.New[Task](pools.Options{Segments: 8,
		Policies: pools.PolicySet{Steal: pools.StealOneAmount{}}})
	// (StealHalf is the default: leave Policies.Steal nil, or set pools.StealHalfAmount{}.)

	// Options{DirectedAdds: true}  ->
	p7, _ := pools.New[Task](pools.Options{Segments: 8,
		Policies: pools.PolicySet{Place: pools.GiftAllPlacement{}}})
	_, _ = p6, p7
}

// packageDocExamples mirrors the pools package documentation fences
// (quickstart, batch operations, policies, locality-aware policies).
func packageDocExamples(workerID int, task Task, tasks []Task) {
	p, err := pools.New[Task](pools.Options{Segments: 8, Search: pools.SearchLinear})
	if err != nil {
		return
	}
	h := p.Handle(workerID)
	h.Put(task)
	if _, ok := h.Get(); !ok {
		return
	}

	h.PutAll(tasks)
	batch := h.GetN(32)
	_ = batch

	set, _ := pools.PolicyByName("adaptive")
	p2, _ := pools.New[Task](pools.Options{Segments: 8, Policies: set})
	_ = p2

	costs := pools.ButterflyCosts().WithTopology(pools.ClusterTopology{Size: 4}).WithExtraDelay(1000)
	p3, _ := pools.New[Task](pools.Options{
		Segments: 16,
		Policies: pools.PolicySet{
			Order: pools.LocalityVictimOrder{Model: costs},
			Place: pools.EmptiestPlacement{},
		},
	})
	_ = p3
	set2, _ := pools.PolicyByName("per-handle")
	_ = set2
}

var _ = readmeQuickstart
var _ = readmeDeprecatedAliases
var _ = packageDocExamples
