//go:build docsexamples

package docexamples

import "pools"

// Task stands in for the element type the documentation examples pool.
type Task struct{}

// readmeQuickstart mirrors the README "Quickstart" fence.
func readmeQuickstart(workerID int, task Task, tasks []Task) {
	p, _ := pools.New[Task](pools.Options{Segments: 8, Search: pools.SearchTree})
	h := p.Handle(workerID) // each worker goroutine owns one segment
	h.Put(task)             // O(1), local
	task, ok := h.Get()     // local pop, or steal from a remote segment
	_, _ = task, ok

	// Batch operations amortize one segment acquisition over k elements:
	h.PutAll(tasks)
	batch := h.GetN(32)
	_ = batch

	// Policies make every knob pluggable; "adaptive" tunes itself online,
	// "per-handle" gives every worker its own independent controller:
	set, _ := pools.PolicyByName("per-handle")
	p2, _ := pools.New[Task](pools.Options{Segments: 8, Policies: set})
	_ = p2

	// On machines where "remote" is not one cost, rank steal victims by a
	// cost model and steer adds toward the emptiest segment:
	costs := pools.ButterflyCosts().WithTopology(pools.ClusterTopology{Size: 4}).WithExtraDelay(1000)
	p3, _ := pools.New[Task](pools.Options{Segments: 16, Policies: pools.PolicySet{
		Order: pools.LocalityVictimOrder{Model: costs},
		Place: pools.EmptiestPlacement{},
	}})
	_ = p3
}

// packageDocExamples mirrors the pools package documentation fences
// (quickstart, batch operations, policies, locality-aware policies).
func packageDocExamples(workerID int, task Task, tasks []Task) {
	p, err := pools.New[Task](pools.Options{Segments: 8, Search: pools.SearchLinear})
	if err != nil {
		return
	}
	h := p.Handle(workerID)
	h.Put(task)
	if _, ok := h.Get(); !ok {
		return
	}

	h.PutAll(tasks)
	batch := h.GetN(32)
	_ = batch

	set, _ := pools.PolicyByName("adaptive")
	p2, _ := pools.New[Task](pools.Options{Segments: 8, Policies: set})
	_ = p2

	costs := pools.ButterflyCosts().WithTopology(pools.ClusterTopology{Size: 4}).WithExtraDelay(1000)
	p3, _ := pools.New[Task](pools.Options{
		Segments: 16,
		Policies: pools.PolicySet{
			Order: pools.LocalityVictimOrder{Model: costs},
			Place: pools.EmptiestPlacement{},
		},
	})
	_ = p3
	set2, _ := pools.PolicyByName("per-handle")
	_ = set2
}

var _ = readmeQuickstart
var _ = packageDocExamples
