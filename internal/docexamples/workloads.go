//go:build docsexamples

package docexamples

import "pools"

// workloadsTenantQuickstart mirrors the docs/WORKLOADS.md "Multi-tenant
// open loop" fence.
func workloadsTenantQuickstart() {
	tm := pools.EvenTenants(16, 4) // 4 tenants, 4 segments each
	p, _ := pools.New[Task](pools.Options{
		Segments: 16, CollectStats: true,
		Policies: pools.PolicySet{Place: pools.TenantFairPlacement{Map: tm}},
	})
	// ... after running:
	st := p.Stats()
	_ = st.StealInterference() // foreign fraction of classified steals
	_ = st.OpLat.P99()         // per-op latency, µs (wall-clock stats)
}

var _ = workloadsTenantQuickstart
