package introspect

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pools/internal/metrics"
	"pools/internal/trace"
)

// stubSource is a canned run: fixed stats and one short two-handle
// timeline, mutable under a lock so the concurrency test can write while
// handlers read.
type stubSource struct {
	mu  sync.Mutex
	st  metrics.PoolStats
	tls []trace.Timeline
}

func (s *stubSource) Stats() metrics.PoolStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st
}

func (s *stubSource) Timelines() []trace.Timeline {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]trace.Timeline, len(s.tls))
	copy(out, s.tls)
	return out
}

func (s *stubSource) Timeline(h int) trace.Timeline {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h < 0 || h >= len(s.tls) {
		return trace.Timeline{Handle: h}
	}
	return s.tls[h]
}

func newStub() *stubSource {
	s := &stubSource{}
	s.st.RecordAdd(10)
	s.st.RecordStealRemove(40, 25, 3, 2)
	s.tls = []trace.Timeline{
		{Handle: 0, Events: []trace.Event{
			{TS: 1, Kind: trace.SearchBegin, Arg1: 1},
			{TS: 5, Kind: trace.ReserveTransfer, Arg1: 1, Arg2: 2},
			{TS: 9, Kind: trace.SearchEnd, Arg1: 2, Arg2: 1},
		}},
		{Handle: 1, Events: []trace.Event{
			{TS: 3, Kind: trace.ProbeNear, Arg1: 0},
		}},
	}
	return s
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpoints(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", newStub())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	if code, body := get(t, base+"/stats"); code != 200 || !strings.Contains(body, "ops=2") {
		t.Errorf("/stats = %d %q, want 200 with ops=2", code, body)
	}

	code, body := get(t, base+"/debug/vars")
	if code != 200 || !strings.Contains(body, "poolstats") {
		t.Fatalf("/debug/vars = %d, want 200 mentioning poolstats", code)
	}
	var vars struct {
		Poolstats struct {
			Ops               int64   `json:"ops"`
			Steals            int64   `json:"steals"`
			StealInterference float64 `json:"steal_interference"`
			CrossProbeFrac    float64 `json:"cross_probe_frac"`
			P99               float64 `json:"oplat_p99_us"`
			Summary           string  `json:"summary"`
		} `json:"poolstats"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if vars.Poolstats.Ops != 2 || vars.Poolstats.Steals != 1 {
		t.Errorf("poolstats = %+v, want ops=2 steals=1", vars.Poolstats)
	}
	if vars.Poolstats.Summary == "" {
		t.Error("poolstats.summary missing")
	}

	code, body = get(t, base+"/trace")
	if code != 200 {
		t.Fatalf("/trace = %d, want 200", code)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace is not Chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("/trace returned no events")
	}

	if code, body := get(t, base+"/trace?handle=1"); code != 200 || !strings.Contains(body, "probe_near") {
		t.Errorf("/trace?handle=1 = %d, want 200 containing probe_near", code)
	}
	if code, _ := get(t, base+"/trace?handle=bogus"); code != http.StatusBadRequest {
		t.Errorf("/trace?handle=bogus = %d, want 400", code)
	}
	if code, body := get(t, base+"/trace?format=csv"); code != 200 || !strings.HasPrefix(body, "ts,handle,event,arg1,arg2") {
		t.Errorf("/trace?format=csv = %d %q, want CSV header", code, body[:min(len(body), 40)])
	}

	if code, _ := get(t, base+"/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d, want 200", code)
	}
	if code, body := get(t, base+"/"); code != 200 || !strings.Contains(body, "/debug/pprof/") {
		t.Errorf("/ = %d, want 200 index", code)
	}
	if code, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Errorf("/nope = %d, want 404", code)
	}
}

// TestConcurrentReads hammers the endpoints from several goroutines
// while the source mutates, for the race detector's benefit.
func TestConcurrentReads(t *testing.T) {
	stub := newStub()
	srv, err := Serve("127.0.0.1:0", stub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		// Mutate at a bounded pace: an unthrottled append loop grows the
		// timeline so fast that each /trace dump (which serializes the
		// whole thing) degenerates quadratically under the race detector.
		tick := time.NewTicker(100 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			stub.mu.Lock()
			stub.st.RecordAdd(5)
			if len(stub.tls[0].Events) < 1000 {
				stub.tls[0].Events = append(stub.tls[0].Events,
					trace.Event{TS: 100, Kind: trace.Feedback})
			}
			stub.mu.Unlock()
		}
	}()

	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for j := 0; j < 20; j++ {
				for _, p := range []string{"/stats", "/debug/vars", "/trace", "/trace?handle=0"} {
					// Plain errors only: t.Fatalf must not run off the
					// test goroutine.
					resp, err := http.Get(base + p)
					if err != nil {
						t.Errorf("GET %s: %v", p, err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						t.Errorf("GET %s = %d under load", p, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}
