// Package introspect serves the live debugging surface for a pool run:
// net/http/pprof profiles, expvar-published PoolStats snapshots, a
// plain-text stats digest, and a /trace endpoint that dumps the
// flight-recorder timelines as Chrome trace-event JSON (load in
// chrome://tracing or Perfetto) or CSV.
//
// The package is deliberately thin: it renders whatever a Source shows
// it and owns no synchronization of its own beyond the current-source
// pointer. harness.StartLive is the canonical Source — its Stats merges
// worker-published snapshots and its recorder dumps are internally
// locked, so every endpoint here is safe to hit mid-run.
//
// Endpoints:
//
//	/              index listing the routes below
//	/stats         one-line PoolStats digest (metrics.PoolStats.Summary)
//	/trace         Chrome trace JSON of all handles; ?handle=N for one
//	               track, ?format=csv for the flat event log
//	/debug/vars    expvar, including the "poolstats" snapshot object
//	/debug/pprof/  the standard pprof index (profile, heap, trace, ...)
package introspect

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"pools/internal/metrics"
	"pools/internal/trace"
)

// Source is a run that can be observed while in flight. Implementations
// must make every method safe to call concurrently with the run's own
// workers (see harness.Live). Timelines returns nil when the run was
// started without a flight recorder.
type Source interface {
	Stats() metrics.PoolStats
	Timelines() []trace.Timeline
	Timeline(handle int) trace.Timeline
}

var (
	srcMu sync.Mutex
	cur   Source

	// expvar.Publish panics on duplicate names and the expvar registry
	// is process-global, so the "poolstats" var is published once and
	// reads whatever Source is current.
	publishOnce sync.Once
)

func setSource(s Source) {
	srcMu.Lock()
	cur = s
	srcMu.Unlock()
	publishOnce.Do(func() {
		expvar.Publish("poolstats", expvar.Func(snapshot))
	})
}

func source() Source {
	srcMu.Lock()
	defer srcMu.Unlock()
	return cur
}

// snapshot renders the current source's stats as the expvar "poolstats"
// object: headline counters, the interference and cross-probe fractions,
// and the per-op latency quantiles in µs.
func snapshot() any {
	s := source()
	if s == nil {
		return nil
	}
	st := s.Stats()
	return map[string]any{
		"ops":                st.Ops(),
		"adds":               st.Adds,
		"removes":            st.Removes,
		"steals":             st.Steals,
		"aborts":             st.Aborts,
		"steal_interference": st.StealInterference(),
		"cross_probe_frac":   st.CrossProbeFraction(),
		"oplat_p50_us":       st.OpLat.P50(),
		"oplat_p99_us":       st.OpLat.P99(),
		"oplat_p999_us":      st.OpLat.P999(),
		"summary":            st.Summary(),
	}
}

// NewMux builds the introspection routes over src and registers src as
// the expvar "poolstats" source. Mount it on any server, or use Serve.
func NewMux(src Source) *http.ServeMux {
	setSource(src)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/stats", statsHandler)
	mux.HandleFunc("/trace", traceHandler)
	mux.HandleFunc("/", indexHandler)
	return mux
}

func indexHandler(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `pool introspection endpoints:
  /stats         one-line stats digest
  /trace         Chrome trace JSON (?handle=N for one track, ?format=csv for CSV)
  /debug/vars    expvar (see "poolstats")
  /debug/pprof/  pprof index
`)
}

func statsHandler(w http.ResponseWriter, r *http.Request) {
	s := source()
	if s == nil {
		http.Error(w, "no run attached", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	st := s.Stats()
	fmt.Fprintln(w, st.Summary())
}

func traceHandler(w http.ResponseWriter, r *http.Request) {
	s := source()
	if s == nil {
		http.Error(w, "no run attached", http.StatusServiceUnavailable)
		return
	}
	var tls []trace.Timeline
	if q := r.URL.Query().Get("handle"); q != "" {
		h, err := strconv.Atoi(q)
		if err != nil {
			http.Error(w, "bad handle: "+q, http.StatusBadRequest)
			return
		}
		tls = []trace.Timeline{s.Timeline(h)}
	} else {
		tls = s.Timelines()
	}
	if len(tls) == 0 {
		http.Error(w, "tracing disabled: run without a trace buffer", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := trace.WriteCSV(w, tls); err != nil {
			return // client went away mid-dump; nothing to clean up
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := trace.ChromeJSON(w, tls); err != nil {
		return
	}
}

// Server is a running introspection listener.
type Server struct {
	// Addr is the bound address, with the real port when the requested
	// one was :0.
	Addr string
	srv  *http.Server
}

// Serve binds addr (e.g. "localhost:6060", or ":0" for an ephemeral
// port), registers src, and serves the introspection mux in the
// background until Close.
func Serve(addr string, src Source) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(src)}
	s := &Server{Addr: ln.Addr().String(), srv: srv}
	go func() {
		// ErrServerClosed after Close is the normal shutdown path; any
		// other error means the listener died and endpoints are gone,
		// which the next request will surface.
		_ = srv.Serve(ln)
	}()
	return s, nil
}

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
