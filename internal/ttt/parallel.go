package ttt

import (
	"math"
	"sync/atomic"
)

// Node is one game-tree position in the parallel minimax computation.
// Nodes are the elements placed in the work list: "each position is placed
// in a pool when it is generated. Processors repeatedly pull a position
// from the pool and possibly generate new positions to put in the pool."
type Node struct {
	Board  Board
	ToMove Player
	Depth  int // remaining expansion depth; 0 = evaluate statically

	parent  *Node
	pending atomic.Int32 // children not yet resolved
	value   atomic.Int64 // running max (X to move) or min (O to move)
}

// Value returns the node's current minimax value. Only meaningful once the
// node has resolved.
func (n *Node) Value() int { return int(n.value.Load()) }

// applyChild folds a resolved child's value into this node's running
// max/min using a CAS loop (workers resolve children concurrently).
func (n *Node) applyChild(v int64) {
	max := n.ToMove == X
	for {
		cur := n.value.Load()
		if max && v <= cur || !max && v >= cur {
			return
		}
		if n.value.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Source is one worker's view of the work list: a concurrent pool handle,
// a global stack, or their simulated counterparts. Get's false return
// means "nothing obtained right now" — the engine decides whether the
// computation is finished or the worker should retry.
type Source interface {
	Put(*Node)
	Get() (*Node, bool)
}

// Engine drives a parallel depth-limited minimax expansion. Workers share
// one Engine and each call Step with their own Source until Done.
type Engine struct {
	root *Node

	done      atomic.Bool
	expanded  atomic.Int64 // internal nodes expanded
	evaluated atomic.Int64 // leaf positions evaluated
	rootValue atomic.Int64
}

// NewEngine prepares the expansion of (board, toMove) to the given depth
// and places the root in seed. Depth must be >= 1.
func NewEngine(board Board, toMove Player, depth int, seed Source) *Engine {
	e := &Engine{}
	e.root = newNode(board, toMove, depth, nil)
	seed.Put(e.root)
	return e
}

func newNode(b Board, toMove Player, depth int, parent *Node) *Node {
	n := &Node{Board: b, ToMove: toMove, Depth: depth, parent: parent}
	if toMove == X {
		n.value.Store(math.MinInt64)
	} else {
		n.value.Store(math.MaxInt64)
	}
	return n
}

// Done reports whether the root has resolved.
func (e *Engine) Done() bool { return e.done.Load() }

// RootValue returns the minimax value of the root (valid once Done).
func (e *Engine) RootValue() int { return int(e.rootValue.Load()) }

// Expanded returns the number of internal nodes expanded so far.
func (e *Engine) Expanded() int64 { return e.expanded.Load() }

// Evaluated returns the number of leaf positions evaluated so far — the
// paper's "board positions examined".
func (e *Engine) Evaluated() int64 { return e.evaluated.Load() }

// Positions returns all positions handled (internal + leaves).
func (e *Engine) Positions() int64 { return e.expanded.Load() + e.evaluated.Load() }

// Step retrieves one position from src and processes it: leaves are
// evaluated and their values propagated; internal positions generate their
// children into src. It returns false if src yielded nothing (the caller
// should check Done and otherwise retry).
func (e *Engine) Step(src Source) bool {
	n, ok := src.Get()
	if !ok {
		return false
	}
	e.Expand(n, src)
	return true
}

// Expand processes one node. Exposed separately so the simulator can
// charge the position-processing cost between Get and Expand.
func (e *Engine) Expand(n *Node, src Source) {
	if w := n.Board.Winner(); w != 0 || n.Depth == 0 {
		var v int64
		if w != 0 {
			v = int64(w) * WinScore
		} else {
			v = int64(n.Board.Eval())
		}
		e.evaluated.Add(1)
		e.resolve(n, v)
		return
	}
	moves := n.Board.Moves(make([]int, 0, Cells))
	if len(moves) == 0 {
		e.evaluated.Add(1)
		e.resolve(n, int64(n.Board.Eval()))
		return
	}
	e.expanded.Add(1)
	n.pending.Store(int32(len(moves)))
	for _, m := range moves {
		child := newNode(n.Board.Play(m, n.ToMove), n.ToMove.Opponent(), n.Depth-1, n)
		src.Put(child)
	}
}

// resolve reports node n's final value v, propagating completion up the
// tree; resolving the root finishes the computation.
func (e *Engine) resolve(n *Node, v int64) {
	for {
		if n.parent == nil {
			e.rootValue.Store(v)
			e.done.Store(true)
			return
		}
		p := n.parent
		p.applyChild(v)
		if p.pending.Add(-1) != 0 {
			return
		}
		n, v = p, p.value.Load()
	}
}
