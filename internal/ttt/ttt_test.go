package ttt

import (
	"math/bits"
	"sync"
	"testing"
	"testing/quick"

	"pools/internal/baseline"
	"pools/internal/core"
	"pools/internal/search"
)

func TestLineCount(t *testing.T) {
	masks := LineMasks()
	if len(masks) != NumLines {
		t.Fatalf("lines = %d, want %d", len(masks), NumLines)
	}
	seen := map[uint64]bool{}
	for i, m := range masks {
		if bits.OnesCount64(m) != Size {
			t.Errorf("line %d has %d cells", i, bits.OnesCount64(m))
		}
		if seen[m] {
			t.Errorf("line %d duplicated", i)
		}
		seen[m] = true
	}
}

func TestEveryCellOnALine(t *testing.T) {
	// Each of the 64 cells lies on at least 4 lines in 4x4x4 (3 axis rows
	// plus diagonals for some cells); at minimum the 3 axis rows.
	for c := 0; c < Cells; c++ {
		count := 0
		for _, m := range LineMasks() {
			if m&(1<<uint(c)) != 0 {
				count++
			}
		}
		if count < 3 {
			t.Errorf("cell %d on only %d lines", c, count)
		}
	}
	// The center-most and corner cells lie on 7 lines each in 4^3.
	corner := Cell(0, 0, 0)
	count := 0
	for _, m := range LineMasks() {
		if m&(1<<uint(corner)) != 0 {
			count++
		}
	}
	if count != 7 {
		t.Errorf("corner cell on %d lines, want 7", count)
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	f := func(raw uint8) bool {
		c := int(raw) % Cells
		x, y, z := Coords(c)
		return Cell(x, y, z) == c && x < Size && y < Size && z < Size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlayAndWinnerRow(t *testing.T) {
	var b Board
	for i := 0; i < Size; i++ {
		if b.Winner() != 0 {
			t.Fatal("premature winner")
		}
		b = b.Play(Cell(i, 0, 0), X)
	}
	if b.Winner() != X {
		t.Fatal("X row not detected")
	}
}

func TestWinnerSpaceDiagonal(t *testing.T) {
	var b Board
	for i := 0; i < Size; i++ {
		b = b.Play(Cell(i, i, i), O)
	}
	if b.Winner() != O {
		t.Fatal("O space diagonal not detected")
	}
}

func TestPlayOccupiedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var b Board
	b = b.Play(5, X)
	b.Play(5, O)
}

func TestMovesEnumeratesFreeCells(t *testing.T) {
	var b Board
	if got := len(b.Moves(nil)); got != Cells {
		t.Fatalf("empty board has %d moves", got)
	}
	b = b.Play(0, X)
	b = b.Play(63, O)
	moves := b.Moves(nil)
	if len(moves) != Cells-2 {
		t.Fatalf("%d moves after 2 plays", len(moves))
	}
	for _, m := range moves {
		if m == 0 || m == 63 {
			t.Fatal("occupied cell in move list")
		}
	}
}

func TestEvalSymmetric(t *testing.T) {
	// Swapping X and O negates the evaluation.
	f := func(xRaw, oRaw uint16) bool {
		// Build small non-overlapping occupancies.
		xb := uint64(xRaw)
		ob := uint64(oRaw) << 16
		b := Board{XBits: xb, OBits: ob}
		swapped := Board{XBits: ob, OBits: xb}
		return b.Eval() == -swapped.Eval()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalEmptyZero(t *testing.T) {
	var b Board
	if b.Eval() != 0 {
		t.Fatalf("empty board eval = %d", b.Eval())
	}
	if b.MoveCount() != 0 {
		t.Fatal("empty board has stones")
	}
}

func TestEvalFavorsCenterOpening(t *testing.T) {
	// An inner cell (on 7 lines incl. diagonals? centers lie on 7) scores
	// at least as high as an edge-adjacent cell with fewer lines.
	inner := Board{}.Play(Cell(1, 1, 1), X)
	edge := Board{}.Play(Cell(1, 0, 0), X)
	if inner.Eval() < edge.Eval() {
		t.Fatalf("inner %d < edge %d", inner.Eval(), edge.Eval())
	}
}

func TestPositionCount(t *testing.T) {
	if got := PositionCount(64, 3); got != 249984 {
		t.Fatalf("PositionCount(64,3) = %d, want 249984 (the paper's figure)", got)
	}
	if got := PositionCount(64, 1); got != 64 {
		t.Fatalf("PositionCount(64,1) = %d", got)
	}
	if got := PositionCount(64, 0); got != 1 {
		t.Fatalf("PositionCount(64,0) = %d", got)
	}
}

func TestMinimaxLeafCountsMatchFormula(t *testing.T) {
	var b Board
	for depth := 0; depth <= 2; depth++ {
		_, leaves := Minimax(b, X, depth)
		if want := PositionCount(Cells, depth); leaves != want {
			t.Fatalf("depth %d: leaves = %d, want %d", depth, leaves, want)
		}
	}
}

func TestMinimaxDepth1PicksMaxEval(t *testing.T) {
	var b Board
	v, _ := Minimax(b, X, 1)
	best := -1 << 30
	for _, m := range b.Moves(nil) {
		if e := b.Play(m, X).Eval(); e > best {
			best = e
		}
	}
	if v != best {
		t.Fatalf("minimax depth 1 = %d, want %d", v, best)
	}
}

func TestMinimaxDetectsImmediateWin(t *testing.T) {
	var b Board
	// X has three in a row; X to move completes it.
	b = b.Play(Cell(0, 0, 0), X)
	b = b.Play(Cell(1, 0, 0), X)
	b = b.Play(Cell(2, 0, 0), X)
	// Give O some stones elsewhere to keep the position plausible.
	b = b.Play(Cell(0, 3, 3), O)
	b = b.Play(Cell(1, 3, 3), O)
	b = b.Play(Cell(2, 3, 2), O)
	move, v := BestMove(b, X, 2)
	if move != Cell(3, 0, 0) {
		t.Fatalf("BestMove = %d, want %d", move, Cell(3, 0, 0))
	}
	if v < WinScore {
		t.Fatalf("winning value = %d", v)
	}
}

func TestBestMoveTerminalBoard(t *testing.T) {
	var b Board
	for i := 0; i < Size; i++ {
		b = b.Play(Cell(i, 0, 0), X)
	}
	if move, v := BestMove(b, O, 2); move != -1 || v != WinScore {
		t.Fatalf("BestMove on won board = (%d,%d)", move, v)
	}
}

// chanSource adapts a plain slice for single-threaded engine tests.
type sliceSource struct{ items []*Node }

func (s *sliceSource) Put(n *Node) { s.items = append(s.items, n) }
func (s *sliceSource) Get() (*Node, bool) {
	if len(s.items) == 0 {
		return nil, false
	}
	n := s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return n, true
}

func TestEngineSequentialMatchesMinimax(t *testing.T) {
	for depth := 1; depth <= 2; depth++ {
		var b Board
		src := &sliceSource{}
		e := NewEngine(b, X, depth, src)
		for e.Step(src) {
		}
		if !e.Done() {
			t.Fatalf("depth %d: engine not done with empty list", depth)
		}
		want, leaves := Minimax(b, X, depth)
		if e.RootValue() != want {
			t.Fatalf("depth %d: engine value %d, minimax %d", depth, e.RootValue(), want)
		}
		if e.Evaluated() != leaves {
			t.Fatalf("depth %d: evaluated %d, want %d", depth, e.Evaluated(), leaves)
		}
	}
}

func TestEngineFromMidgamePosition(t *testing.T) {
	var b Board
	b = b.Play(5, X)
	b = b.Play(40, O)
	b = b.Play(22, X)
	src := &sliceSource{}
	e := NewEngine(b, O, 2, src)
	for e.Step(src) {
	}
	want, _ := Minimax(b, O, 2)
	if e.RootValue() != want {
		t.Fatalf("engine %d, minimax %d", e.RootValue(), want)
	}
}

func TestEngineParallelWithGlobalStack(t *testing.T) {
	var b Board
	stack := baseline.NewGlobalStack[*Node]()
	e := NewEngine(b, X, 2, stack)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !e.Done() {
				e.Step(stack)
			}
		}()
	}
	wg.Wait()
	want, leaves := Minimax(b, X, 2)
	if e.RootValue() != want {
		t.Fatalf("parallel value %d, want %d", e.RootValue(), want)
	}
	if e.Evaluated() != leaves {
		t.Fatalf("evaluated %d, want %d", e.Evaluated(), leaves)
	}
}

// poolSource adapts a core.Handle to the engine's Source.
type poolSource struct{ h *core.Handle[*Node] }

func (p poolSource) Put(n *Node)        { p.h.Put(n) }
func (p poolSource) Get() (*Node, bool) { return p.h.Get() }

func TestEngineParallelWithConcurrentPool(t *testing.T) {
	for _, kind := range search.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			var b Board
			pool, err := core.New[*Node](core.Options{Segments: 4, Search: kind, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				pool.Handle(i).Register()
			}
			e := NewEngine(b, X, 2, poolSource{pool.Handle(0)})
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					src := poolSource{pool.Handle(id)}
					for !e.Done() {
						e.Step(src)
					}
					pool.Handle(id).Close()
				}(w)
			}
			wg.Wait()
			want, leaves := Minimax(b, X, 2)
			if e.RootValue() != want {
				t.Fatalf("parallel pool value %d, want %d", e.RootValue(), want)
			}
			if e.Evaluated() != leaves {
				t.Fatalf("evaluated %d, want %d", e.Evaluated(), leaves)
			}
		})
	}
}

func TestNodeApplyChildMinNode(t *testing.T) {
	n := newNode(Board{}, O, 1, nil) // O to move: min node
	n.applyChild(5)
	n.applyChild(-3)
	n.applyChild(10)
	if n.Value() != -3 {
		t.Fatalf("min node value = %d, want -3", n.Value())
	}
	m := newNode(Board{}, X, 1, nil)
	m.applyChild(5)
	m.applyChild(-3)
	if m.Value() != 5 {
		t.Fatalf("max node value = %d, want 5", m.Value())
	}
}

func TestPlayerHelpers(t *testing.T) {
	if X.Opponent() != O || O.Opponent() != X {
		t.Fatal("Opponent wrong")
	}
	if X.String() != "X" || O.String() != "O" || Player(0).String() != "?" {
		t.Fatal("String wrong")
	}
}

func TestBoardString(t *testing.T) {
	var b Board
	b = b.Play(Cell(0, 0, 0), X)
	b = b.Play(Cell(1, 0, 0), O)
	s := b.String()
	if len(s) == 0 || s[len("z=0\n")] != 'X' {
		t.Fatalf("render wrong:\n%s", s)
	}
}

func BenchmarkEval(b *testing.B) {
	board := Board{XBits: 0x0123456789abcdef & 0xaaaa, OBits: 0x5555}
	for i := 0; i < b.N; i++ {
		board.Eval()
	}
}

func BenchmarkMinimaxDepth2(b *testing.B) {
	var board Board
	for i := 0; i < b.N; i++ {
		Minimax(board, X, 2)
	}
}
