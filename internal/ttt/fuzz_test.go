package ttt

import "testing"

// FuzzBoardScript plays an arbitrary byte script as alternating moves and
// checks structural invariants: stone counts, winner stability, and
// move-list consistency.
func FuzzBoardScript(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0, 16, 32, 48})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, script []byte) {
		var b Board
		player := X
		placed := 0
		for _, raw := range script {
			c := int(raw) % Cells
			if b.Occupied()&(1<<uint(c)) != 0 {
				continue // skip occupied cells; Play panics by contract
			}
			if b.Winner() != 0 {
				break
			}
			b = b.Play(c, player)
			placed++
			player = player.Opponent()
		}
		if b.MoveCount() != placed {
			t.Fatalf("MoveCount %d != placed %d", b.MoveCount(), placed)
		}
		if b.XBits&b.OBits != 0 {
			t.Fatal("players overlap")
		}
		moves := b.Moves(nil)
		if len(moves) != Cells-placed {
			t.Fatalf("moves %d != %d", len(moves), Cells-placed)
		}
		// Eval must be antisymmetric under color swap.
		swapped := Board{XBits: b.OBits, OBits: b.XBits}
		if b.Eval() != -swapped.Eval() {
			t.Fatal("eval not antisymmetric")
		}
		// A winner implies a full line for that player.
		if w := b.Winner(); w != 0 {
			found := false
			for _, m := range LineMasks() {
				if w == X && b.XBits&m == m || w == O && b.OBits&m == m {
					found = true
					break
				}
			}
			if !found {
				t.Fatal("winner without a full line")
			}
		}
	})
}
