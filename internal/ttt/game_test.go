package ttt

import "testing"

func TestSelfPlayTerminatesLegally(t *testing.T) {
	g := NewGame()
	winner := g.Play(1, Cells)
	if len(g.Moves) == 0 || len(g.Moves) > Cells {
		t.Fatalf("game length %d", len(g.Moves))
	}
	// Every move must be distinct and in range.
	seen := map[int]bool{}
	for _, m := range g.Moves {
		if m < 0 || m >= Cells || seen[m] {
			t.Fatalf("illegal move sequence %v", g.Moves)
		}
		seen[m] = true
	}
	if g.Board.MoveCount() != len(g.Moves) {
		t.Fatalf("board has %d stones after %d moves", g.Board.MoveCount(), len(g.Moves))
	}
	// In 4x4x4 with both sides playing greedily, someone wins (4^3 has no
	// known draw under reasonable play; at minimum the game must have
	// ended legally).
	if winner == 0 && g.Board.MoveCount() != Cells {
		t.Fatal("game stopped early without a winner")
	}
}

func TestSelfPlayDepth2FirstPlayerAdvantage(t *testing.T) {
	// 3D tic-tac-toe is a known first-player win; with equal shallow
	// search the winner should exist and be X far more often than not.
	// A single deterministic game suffices for a smoke check.
	g := NewGame()
	winner := g.Play(2, Cells)
	if winner == 0 {
		t.Skip("drawn game at depth 2 (legal but unexpected)")
	}
	if winner != X {
		t.Logf("O won the depth-2 self-play game (unusual but legal)")
	}
}

func TestStepOnFinishedGame(t *testing.T) {
	g := NewGame()
	for i := 0; i < Size; i++ {
		g.Board = g.Board.Play(Cell(i, 0, 0), X)
	}
	if g.Step(1) {
		t.Fatal("Step on a won board should return false")
	}
}
