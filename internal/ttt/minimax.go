package ttt

import "math"

// Minimax returns the depth-limited minimax value of the position from X's
// point of view, with toMove next to play, expanding the full game tree
// (no pruning — the paper's program places every generated position in the
// work list, so the sequential reference must visit the same tree).
// It also returns the number of leaf positions evaluated, which for
// (empty board, X, depth 3) is the paper's 249,984.
func Minimax(b Board, toMove Player, depth int) (value int, leaves int64) {
	if w := b.Winner(); w != 0 {
		return int(w) * WinScore, 1
	}
	if depth == 0 {
		return b.Eval(), 1
	}
	moves := b.Moves(make([]int, 0, Cells))
	if len(moves) == 0 {
		return b.Eval(), 1
	}
	best := math.MinInt
	if toMove == O {
		best = math.MaxInt
	}
	var total int64
	for _, m := range moves {
		v, n := Minimax(b.Play(m, toMove), toMove.Opponent(), depth-1)
		total += n
		if toMove == X {
			if v > best {
				best = v
			}
		} else if v < best {
			best = v
		}
	}
	return best, total
}

// BestMove returns a move for toMove maximizing (or minimizing, for O) the
// depth-limited minimax value, along with that value. It returns -1 on a
// full or won board.
func BestMove(b Board, toMove Player, depth int) (move, value int) {
	if b.Winner() != 0 {
		return -1, int(b.Winner()) * WinScore
	}
	moves := b.Moves(make([]int, 0, Cells))
	if len(moves) == 0 {
		return -1, b.Eval()
	}
	best := math.MinInt
	if toMove == O {
		best = math.MaxInt
	}
	bestMove := moves[0]
	for _, m := range moves {
		v, _ := Minimax(b.Play(m, toMove), toMove.Opponent(), depth-1)
		if toMove == X {
			if v > best {
				best, bestMove = v, m
			}
		} else if v < best {
			best, bestMove = v, m
		}
	}
	return bestMove, best
}

// PositionCount returns the number of leaf positions a full expansion to
// the given depth examines from a position with free empty cells:
// free * (free-1) * ... * (free-depth+1).
func PositionCount(free, depth int) int64 {
	n := int64(1)
	for i := 0; i < depth; i++ {
		n *= int64(free - i)
	}
	return n
}
