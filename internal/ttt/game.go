package ttt

// Game drives a complete self-play game between two depth-limited minimax
// players, the usage pattern the paper's application embeds in a game
// loop. It exists for the cmd/tictactoe demo and as an integration check
// that the engine's values produce legal, terminating play.
type Game struct {
	Board  Board
	ToMove Player
	Moves  []int
}

// NewGame returns an empty board with X to move.
func NewGame() *Game {
	return &Game{ToMove: X}
}

// Step plays one move chosen by minimax at the given depth. It returns
// false when the game is over (win or full board).
func (g *Game) Step(depth int) bool {
	if g.Board.Winner() != 0 || g.Board.MoveCount() == Cells {
		return false
	}
	move, _ := BestMove(g.Board, g.ToMove, depth)
	if move < 0 {
		return false
	}
	g.Board = g.Board.Play(move, g.ToMove)
	g.Moves = append(g.Moves, move)
	g.ToMove = g.ToMove.Opponent()
	return true
}

// Play runs the game to completion and returns the winner (0 = draw).
// maxMoves caps runaway games defensively; Cells always suffices.
func (g *Game) Play(depth, maxMoves int) Player {
	for i := 0; i < maxMoves && g.Step(depth); i++ {
	}
	return g.Board.Winner()
}
