// Package ttt implements the paper's application study (Section 4.4): a
// parallel 3-dimensional tic-tac-toe (4x4x4) program using the minimax
// algorithm over a game tree whose unexpanded nodes live in a work list —
// either a concurrent pool or the original global-lock stack. "To examine
// the first three moves of a 4 by 4 by 4 game requires examining 249,984
// board positions" (64 * 63 * 62).
package ttt

import (
	"fmt"
	"math/bits"
	"strings"
)

// Size is the board edge length; the board is Size^3 cells.
const Size = 4

// Cells is the number of board cells (64).
const Cells = Size * Size * Size

// NumLines is the number of winning lines on a 4x4x4 board: 48 axis rows,
// 24 in-plane diagonals, and 4 space diagonals.
const NumLines = 76

// Player identifies a side. X moves first.
type Player int8

// The two players.
const (
	X Player = 1
	O Player = -1
)

// Opponent returns the other player.
func (p Player) Opponent() Player { return -p }

// String returns "X" or "O".
func (p Player) String() string {
	switch p {
	case X:
		return "X"
	case O:
		return "O"
	default:
		return "?"
	}
}

// Cell converts (x, y, z) coordinates (0..3 each) to a cell index.
func Cell(x, y, z int) int { return x + Size*y + Size*Size*z }

// Coords converts a cell index back to (x, y, z).
func Coords(c int) (x, y, z int) {
	return c % Size, (c / Size) % Size, c / (Size * Size)
}

// lineMasks holds one 64-bit occupancy mask per winning line.
var lineMasks = buildLines()

// buildLines enumerates all 76 winning lines as bitmasks.
func buildLines() []uint64 {
	var lines []uint64
	addLine := func(cells [Size]int) {
		var m uint64
		for _, c := range cells {
			m |= 1 << uint(c)
		}
		lines = append(lines, m)
	}
	// Axis rows: vary one coordinate, fix the other two. 3 * 16 = 48.
	for a := 0; a < Size; a++ {
		for b := 0; b < Size; b++ {
			var lx, ly, lz [Size]int
			for i := 0; i < Size; i++ {
				lx[i] = Cell(i, a, b)
				ly[i] = Cell(a, i, b)
				lz[i] = Cell(a, b, i)
			}
			addLine(lx)
			addLine(ly)
			addLine(lz)
		}
	}
	// In-plane diagonals: for each orientation, each of the 4 planes has 2.
	// 3 * 4 * 2 = 24.
	for a := 0; a < Size; a++ {
		var d [6][Size]int
		for i := 0; i < Size; i++ {
			d[0][i] = Cell(i, i, a)        // xy plane, main
			d[1][i] = Cell(i, Size-1-i, a) // xy plane, anti
			d[2][i] = Cell(i, a, i)        // xz plane, main
			d[3][i] = Cell(i, a, Size-1-i) // xz plane, anti
			d[4][i] = Cell(a, i, i)        // yz plane, main
			d[5][i] = Cell(a, i, Size-1-i) // yz plane, anti
		}
		for _, l := range d {
			addLine(l)
		}
	}
	// Space diagonals: 4.
	var s [4][Size]int
	for i := 0; i < Size; i++ {
		s[0][i] = Cell(i, i, i)
		s[1][i] = Cell(Size-1-i, i, i)
		s[2][i] = Cell(i, Size-1-i, i)
		s[3][i] = Cell(i, i, Size-1-i)
	}
	for _, l := range s {
		addLine(l)
	}
	if len(lines) != NumLines {
		panic(fmt.Sprintf("ttt: built %d lines, want %d", len(lines), NumLines))
	}
	return lines
}

// Board is a 4x4x4 position as two occupancy bitboards.
type Board struct {
	XBits uint64 // cells occupied by X
	OBits uint64 // cells occupied by O
}

// Occupied returns the combined occupancy mask.
func (b Board) Occupied() uint64 { return b.XBits | b.OBits }

// MoveCount returns the number of stones on the board.
func (b Board) MoveCount() int { return bits.OnesCount64(b.Occupied()) }

// Play returns the position after player p claims cell c. It panics if the
// cell is occupied (programmer error: move generation must filter).
func (b Board) Play(c int, p Player) Board {
	bit := uint64(1) << uint(c)
	if b.Occupied()&bit != 0 {
		panic(fmt.Sprintf("ttt: cell %d already occupied", c))
	}
	if p == X {
		b.XBits |= bit
	} else {
		b.OBits |= bit
	}
	return b
}

// Winner returns the winning player, or 0 if neither has a complete line.
func (b Board) Winner() Player {
	for _, m := range lineMasks {
		if b.XBits&m == m {
			return X
		}
		if b.OBits&m == m {
			return O
		}
	}
	return 0
}

// Moves appends the indices of all empty cells to dst and returns it.
func (b Board) Moves(dst []int) []int {
	free := ^b.Occupied()
	for free != 0 {
		c := bits.TrailingZeros64(free)
		dst = append(dst, c)
		free &= free - 1
	}
	return dst
}

// evalWeights scores a line with n same-player stones (and no opposing
// stones). A complete line dominates everything else.
var evalWeights = [Size + 1]int{0, 1, 4, 32, WinScore}

// WinScore is the evaluation magnitude of a completed line.
const WinScore = 1 << 20

// Eval returns a static evaluation from X's point of view: the sum over
// lines open for exactly one player of a weight growing with the stones
// already placed. This is the standard 3D tic-tac-toe heuristic: it
// rewards building unblocked lines.
func (b Board) Eval() int {
	score := 0
	for _, m := range lineMasks {
		nx := bits.OnesCount64(b.XBits & m)
		no := bits.OnesCount64(b.OBits & m)
		switch {
		case no == 0 && nx > 0:
			score += evalWeights[nx]
		case nx == 0 && no > 0:
			score -= evalWeights[no]
		}
	}
	return score
}

// String renders the board layer by layer (z slices).
func (b Board) String() string {
	var sb strings.Builder
	for z := 0; z < Size; z++ {
		fmt.Fprintf(&sb, "z=%d\n", z)
		for y := 0; y < Size; y++ {
			for x := 0; x < Size; x++ {
				bit := uint64(1) << uint(Cell(x, y, z))
				switch {
				case b.XBits&bit != 0:
					sb.WriteByte('X')
				case b.OBits&bit != 0:
					sb.WriteByte('O')
				default:
					sb.WriteByte('.')
				}
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// LineMasks exposes a copy of the winning-line masks for tests and tools.
func LineMasks() []uint64 {
	out := make([]uint64, len(lineMasks))
	copy(out, lineMasks)
	return out
}
