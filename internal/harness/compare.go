package harness

import (
	"fmt"

	"pools/internal/plot"
	"pools/internal/search"
	"pools/internal/sim"
	"pools/internal/workload"
)

// AlgoRow is one line of the Section 4.3 algorithm comparison.
type AlgoRow struct {
	Kind     search.Kind
	Scenario string
	Point    Point
}

// AlgoCompare reproduces the Section 4.3 comparison: the three algorithms
// under (a) the random operations model at a sparse mix, (b) the random
// model at a sufficient mix, and (c) the balanced producer/consumer model
// — operation times, segments examined per steal, and elements stolen.
//
// Expected shape: the tree algorithm examines the fewest segments and
// steals the most elements, but its operation times never beat linear or
// random ("the complexity of the tree search algorithm does not pay off").
func AlgoCompare(cfg Config) []AlgoRow {
	c := cfg.withDefaults()
	var rows []AlgoRow
	for _, kind := range search.Kinds() {
		kind := kind
		rows = append(rows, AlgoRow{
			Kind: kind, Scenario: "random 30% adds (sparse)",
			Point: c.average(30, func(seed uint64) sim.RunResult {
				return c.runRandom(kind, 0.3, seed, false)
			}),
		})
		rows = append(rows, AlgoRow{
			Kind: kind, Scenario: "random 70% adds (sufficient)",
			Point: c.average(70, func(seed uint64) sim.RunResult {
				return c.runRandom(kind, 0.7, seed, false)
			}),
		})
		rows = append(rows, AlgoRow{
			Kind: kind, Scenario: "balanced prod/cons, 5 producers",
			Point: c.average(5, func(seed uint64) sim.RunResult {
				return c.runPC(kind, 5, workload.Balanced, seed, false)
			}),
		})
	}
	return rows
}

// RenderAlgoCompare formats the comparison table.
func RenderAlgoCompare(rows []AlgoRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Kind.String(),
			r.Scenario,
			fmtF(r.Point.AvgOpTime / 1000),
			fmtF(r.Point.AvgAddTime / 1000),
			fmtF(r.Point.AvgRemoveTime / 1000),
			fmtF(r.Point.SegmentsExamined),
			fmtF(r.Point.ElementsStolen),
			fmtF(r.Point.StealFraction * 100),
		})
	}
	return plot.Table([]string{
		"search", "scenario", "op (ms)", "add (ms)", "remove (ms)",
		"segs/steal", "stolen/steal", "%removes stealing",
	}, cells)
}

// DelayRow is one point of the Section 4.3 remote-delay sweep.
type DelayRow struct {
	DelayUS  int64
	Scenario string
	Times    map[search.Kind]float64 // avg op time (µs) per algorithm
}

// DelaySweepDelays are the added per-remote-operation delays: the paper
// tried "a variety of different delays from 1 µsec per operation to 100
// msec per operation".
var DelaySweepDelays = []int64{0, 1, 10, 100, 1000, 10000, 100000}

// DelaySweep reproduces the Section 4.3 delay experiment on both stressed
// scenarios. Expected shape: the tree algorithm "never performed better
// than either of the two other search algorithms; in fact, as the delay
// increased all three algorithms converged to very nearly identical
// performance graphs."
func DelaySweep(cfg Config) []DelayRow {
	c := cfg.withDefaults()
	var out []DelayRow
	for _, d := range DelaySweepDelays {
		costs := c.Costs.WithExtraDelay(d)
		cd := c
		cd.Costs = costs
		random := DelayRow{DelayUS: d, Scenario: "random 30% adds", Times: map[search.Kind]float64{}}
		pc := DelayRow{DelayUS: d, Scenario: "balanced prod/cons 5", Times: map[search.Kind]float64{}}
		for _, kind := range search.Kinds() {
			kind := kind
			rpt := cd.average(float64(d), func(seed uint64) sim.RunResult {
				return cd.runRandom(kind, 0.3, seed, false)
			})
			random.Times[kind] = rpt.AvgOpTime
			ppt := cd.average(float64(d), func(seed uint64) sim.RunResult {
				return cd.runPC(kind, 5, workload.Balanced, seed, false)
			})
			pc.Times[kind] = ppt.AvgOpTime
		}
		out = append(out, random, pc)
	}
	return out
}

// RenderDelaySweep formats the sweep with a convergence ratio column
// (tree time / best simple-algorithm time; -> 1.0 means converged).
func RenderDelaySweep(rows []DelayRow) string {
	var cells [][]string
	for _, r := range rows {
		lin, ran, tree := r.Times[search.Linear], r.Times[search.Random], r.Times[search.Tree]
		best := lin
		if ran < best {
			best = ran
		}
		ratio := 0.0
		if best > 0 {
			ratio = tree / best
		}
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.DelayUS),
			r.Scenario,
			fmtF(lin / 1000),
			fmtF(ran / 1000),
			fmtF(tree / 1000),
			fmt.Sprintf("%.3f", ratio),
		})
	}
	return plot.Table([]string{
		"delay (µs)", "scenario", "linear (ms)", "random (ms)", "tree (ms)", "tree/best",
	}, cells)
}

// StealPolicyRow compares steal-half with steal-one (the ablation backing
// the paper's design rationale: stealing half balances reserves and
// reduces steal frequency).
type StealPolicyRow struct {
	Kind     search.Kind
	StealOne bool
	Point    Point
}

// StealPolicyAblation runs the balanced producer/consumer workload (5
// producers) under both policies. That scenario steals multi-element
// hauls, so the policies separate cleanly; at sparse random mixes most
// victims hold a single element and the two policies coincide.
func StealPolicyAblation(cfg Config) []StealPolicyRow {
	c := cfg.withDefaults()
	var out []StealPolicyRow
	for _, kind := range search.Kinds() {
		for _, one := range []bool{false, true} {
			kind, one := kind, one
			out = append(out, StealPolicyRow{
				Kind: kind, StealOne: one,
				Point: c.average(0, func(seed uint64) sim.RunResult {
					return c.runPC(kind, 5, workload.Balanced, seed, one)
				}),
			})
		}
	}
	return out
}

// RenderStealPolicy formats the ablation table.
func RenderStealPolicy(rows []StealPolicyRow) string {
	var cells [][]string
	for _, r := range rows {
		policy := "steal-half"
		if r.StealOne {
			policy = "steal-one"
		}
		cells = append(cells, []string{
			r.Kind.String(), policy,
			fmtF(r.Point.AvgOpTime / 1000),
			fmtF(r.Point.StealsPerOp),
			fmtF(r.Point.ElementsStolen),
			fmtF(r.Point.SegmentsExamined),
		})
	}
	return plot.Table([]string{
		"search", "policy", "op (ms)", "steals/op", "stolen/steal", "segs/steal",
	}, cells)
}

// ArrangementRow compares contiguous vs balanced producer placement for
// one algorithm (the Section 4.2 headline: "Balancing the producers
// consistently lowered the average time for add operations, remove
// operations, and steals").
type ArrangementRow struct {
	Kind        search.Kind
	Arrangement workload.Arrangement
	Point       Point
}

// ArrangementCompare runs the producer/consumer workload with k producers
// under both arrangements.
func ArrangementCompare(cfg Config, kind search.Kind, producers int) []ArrangementRow {
	c := cfg.withDefaults()
	var out []ArrangementRow
	for _, arr := range []workload.Arrangement{workload.Contiguous, workload.Balanced} {
		arr := arr
		out = append(out, ArrangementRow{
			Kind: kind, Arrangement: arr,
			Point: c.average(float64(producers), func(seed uint64) sim.RunResult {
				return c.runPC(kind, producers, arr, seed, false)
			}),
		})
	}
	return out
}

// RenderArrangement formats the arrangement comparison.
func RenderArrangement(rows []ArrangementRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Kind.String(),
			r.Arrangement.String(),
			fmtF(r.Point.AvgOpTime / 1000),
			fmtF(r.Point.AvgAddTime / 1000),
			fmtF(r.Point.AvgRemoveTime / 1000),
			fmtF(r.Point.ElementsStolen),
			fmtF(r.Point.StealsPerOp),
			fmtF(r.Point.SegmentsExamined),
		})
	}
	return plot.Table([]string{
		"search", "producers", "op (ms)", "add (ms)", "remove (ms)",
		"stolen/steal", "steals/op", "segs/steal",
	}, cells)
}

// DynamicRolesRow compares fixed producer roles with rotating ones (the
// paper's Section 3.3 note that "in many real systems, the identity of
// the processes acting as producers may change dynamically over time").
type DynamicRolesRow struct {
	Kind      search.Kind
	FlipEvery int // 0 = fixed roles
	Point     Point
}

// DynamicRoles runs the contiguous producer/consumer workload with fixed
// roles and with roles rotating one position at several cadences.
// Rotation spreads production around the ring over time, so it should
// recover some of the balanced arrangement's benefit without any static
// placement decision.
func DynamicRoles(cfg Config) []DynamicRolesRow {
	c := cfg.withDefaults()
	var out []DynamicRolesRow
	for _, kind := range []search.Kind{search.Linear, search.Tree} {
		for _, flip := range []int{0, 50, 10} {
			kind, flip := kind, flip
			out = append(out, DynamicRolesRow{
				Kind: kind, FlipEvery: flip,
				Point: c.average(float64(flip), func(seed uint64) sim.RunResult {
					w := c.workloadFor(workload.ProducerConsumer)
					w.Producers = 5
					w.Arrangement = workload.Contiguous
					w.RoleFlipEvery = flip
					return sim.Run(sim.RunConfig{
						Workload: w, Search: kind, Costs: c.Costs, Seed: seed,
					})
				}),
			})
		}
	}
	return out
}

// RenderDynamicRoles formats the dynamic-roles table.
func RenderDynamicRoles(rows []DynamicRolesRow) string {
	var cells [][]string
	for _, r := range rows {
		roles := "fixed"
		if r.FlipEvery > 0 {
			roles = fmt.Sprintf("rotate/%d ops", r.FlipEvery)
		}
		cells = append(cells, []string{
			r.Kind.String(), roles,
			fmtF(r.Point.AvgOpTime / 1000),
			fmtF(r.Point.ElementsStolen),
			fmtF(r.Point.StealsPerOp),
			fmtF(r.Point.AbortsPerOp),
		})
	}
	return plot.Table([]string{
		"search", "roles", "op (ms)", "stolen/steal", "steals/op", "aborts/op",
	}, cells)
}
