package harness

import (
	"testing"

	"pools/internal/core"
	"pools/internal/search"
	"pools/internal/workload"
)

func realWL(model workload.Model) workload.Config {
	w := workload.Paper(model)
	w.TotalOps = 2000
	w.InitialElements = 128
	w.Procs = 8
	return w
}

func TestRealRunConservation(t *testing.T) {
	for _, kind := range search.Kinds() {
		wl := realWL(workload.RandomOps)
		wl.AddFraction = 0.5
		res, err := RealRun(RealRunConfig{Workload: wl, Search: kind, Seed: 11})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		st := res.Stats
		if got := st.Ops() + st.Aborts; got != int64(wl.TotalOps) {
			t.Fatalf("%v: ops+aborts = %d, want %d", kind, got, wl.TotalOps)
		}
		want := int64(wl.InitialElements) + st.Adds - st.Removes
		if int64(res.Remaining) != want {
			t.Fatalf("%v: remaining = %d, want %d", kind, res.Remaining, want)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("%v: elapsed = %v", kind, res.Elapsed)
		}
	}
}

func TestRealRunProducerConsumer(t *testing.T) {
	wl := realWL(workload.ProducerConsumer)
	wl.Producers = 3
	wl.Arrangement = workload.Balanced
	res, err := RealRun(RealRunConfig{Workload: wl, Search: search.Linear, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Steals == 0 {
		t.Fatal("producer/consumer run had no steals")
	}
}

func TestRealRunDirectedAdds(t *testing.T) {
	wl := realWL(workload.ProducerConsumer)
	wl.Producers = 2
	res, err := RealRun(RealRunConfig{Workload: wl, Search: search.Linear, Seed: 5, Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	// Whether a Put catches a consumer mid-search depends on the Go
	// scheduler (on one core, producers and searchers interleave only at
	// preemption points), so engagement is logged, not required; the
	// deterministic engagement test lives in internal/core.
	if res.Stats.DirectedGives == 0 {
		t.Log("directed adds never engaged on this scheduler; core tests cover engagement")
	}
	if res.Stats.DirectedGives < res.Stats.DirectedReceives {
		t.Fatalf("gives %d < receives %d", res.Stats.DirectedGives, res.Stats.DirectedReceives)
	}
	if res.Stats.Adds == 0 {
		t.Fatal("producers were starved of the operation budget")
	}
}

func TestRealRunStealOne(t *testing.T) {
	wl := realWL(workload.ProducerConsumer)
	wl.Producers = 2
	res, err := RealRun(RealRunConfig{Workload: wl, Search: search.Random, Seed: 6, Steal: core.StealOne})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Steals > 0 && res.Stats.ElementsStolen.Max() > 1 {
		t.Fatalf("steal-one moved %v elements in one steal", res.Stats.ElementsStolen.Max())
	}
}

func TestRealRunValidates(t *testing.T) {
	if _, err := RealRun(RealRunConfig{Workload: workload.Config{}}); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestRealCompareAllAlgorithms(t *testing.T) {
	wl := realWL(workload.RandomOps)
	wl.AddFraction = 0.4
	pts, err := RealCompare(wl, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for kind, pt := range pts {
		if pt.MixAchieved < 0.3 || pt.MixAchieved > 0.5 {
			t.Errorf("%v: mix achieved %.2f, want ~0.4", kind, pt.MixAchieved)
		}
	}
}
