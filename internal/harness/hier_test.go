package harness

import (
	"strings"
	"testing"
)

// TestHierSweepReducesCrossProbes is the tentpole acceptance bar: the
// hierarchical order's cross-cluster probe fraction must sit below every
// flat order's at both the zero and the largest swept delay (the
// discipline is structural, not delay-dependent), and at the largest
// delay its average operation time must beat both flat orders — each
// avoided crossing is worth Far hops of added delay.
func TestHierSweepReducesCrossProbes(t *testing.T) {
	cfg := Config{Trials: 2, Seed: 1989, Ops: 1200, Fill: 96}
	scales := []int64{0, 5000}
	rows := HierSweep(cfg, scales)
	if len(rows) != len(scales)*len(HierOrderNames()) {
		t.Fatalf("sweep produced %d rows, want %d", len(rows), len(scales)*len(HierOrderNames()))
	}
	at := func(order string, d int64) Point {
		for _, r := range rows {
			if r.Order == order && r.DelayUS == d {
				return r.Point
			}
		}
		t.Fatalf("row (%s, %d) missing", order, d)
		return Point{}
	}
	for _, d := range scales {
		hier := at("hier", d).CrossProbeFrac
		if lin := at("linear", d).CrossProbeFrac; hier >= lin {
			t.Errorf("at delay %d hier cross-frac %.3f >= linear %.3f", d, hier, lin)
		}
		if ran := at("random", d).CrossProbeFrac; hier >= ran {
			t.Errorf("at delay %d hier cross-frac %.3f >= random %.3f", d, hier, ran)
		}
	}
	const top = 5000
	hier := at("hier", top).AvgOpTime
	if lin := at("linear", top).AvgOpTime; hier >= lin {
		t.Errorf("hier %.0f µs/op >= linear %.0f at delay %d", hier, lin, top)
	}
	if ran := at("random", top).AvgOpTime; hier >= ran {
		t.Errorf("hier %.0f µs/op >= random %.0f at delay %d", hier, ran, top)
	}
	// The topology-aware placement must cut crossings further still: it
	// steers adds near, so searches cross even less.
	if hp, h := at("hier-place", top).CrossProbeFrac, at("hier", top).CrossProbeFrac; hp >= h {
		t.Errorf("hier-place cross-frac %.3f >= hier %.3f at delay %d", hp, h, top)
	}
}

// TestRenderHier checks the figures, table, and CSV carry the sweep.
func TestRenderHier(t *testing.T) {
	cfg := Config{Trials: 1, Seed: 7, Ops: 600, Fill: 64}
	rows := HierSweep(cfg, []int64{0, 1000})
	out := RenderHier(rows)
	for _, want := range []string{"cross-cluster probe fraction", "avg operation time", "hier-adaptive", "vs best flat"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	csv := HierCSV(rows)
	if !strings.Contains(csv, "order,topology,delay_us,cross_probe_frac,avg_op_us") {
		t.Errorf("CSV header missing:\n%s", csv)
	}
	if !strings.Contains(csv, ",clusters-4,") {
		t.Errorf("CSV rows missing the topology column:\n%s", csv)
	}
	if got := strings.Count(csv, "\n"); got != len(rows)+1 {
		t.Errorf("CSV has %d lines, want %d", got, len(rows)+1)
	}
}

// TestKeyedLocalitySweepShape checks the keyed sweep's headline: the
// hierarchical rank's cross fraction sits below the ring walk's at every
// scale, its modeled probe cost beats the ring walk at the largest scale,
// and at scale 0 the locality rank coincides with the ring walk (a
// victim-uniform model ranks nothing).
func TestKeyedLocalitySweepShape(t *testing.T) {
	cfg := Config{Trials: 1, Seed: 1989, Ops: 1500, Fill: 96}
	scales := []int64{0, 5000}
	rows := KeyedLocalitySweep(cfg, scales)
	if len(rows) != len(scales)*len(KeyedLocOrderNames()) {
		t.Fatalf("sweep produced %d rows, want %d", len(rows), len(scales)*len(KeyedLocOrderNames()))
	}
	at := func(order string, d int64) KeyedLocRow {
		for _, r := range rows {
			if r.Order == order && r.DelayUS == d {
				return r
			}
		}
		t.Fatalf("row (%s, %d) missing", order, d)
		return KeyedLocRow{}
	}
	for _, d := range scales {
		if h, r := at("hier", d).CrossFrac, at("ring", d).CrossFrac; h >= r {
			t.Errorf("at delay %d hier cross-frac %.3f >= ring %.3f", d, h, r)
		}
	}
	if h, r := at("hier", 5000).CostPerGet, at("ring", 5000).CostPerGet; h >= r {
		t.Errorf("hier cost/Get %.0f >= ring %.0f at delay 5000", h, r)
	}
	if l, r := at("locality", 0), at("ring", 0); l.ProbesPerGet != r.ProbesPerGet || l.CrossFrac != r.CrossFrac {
		t.Errorf("at zero delay locality (%v) != ring (%v): fallback must coincide", l, r)
	}
}

// TestRenderKeyedLoc checks the figure, table, and CSV carry the sweep.
func TestRenderKeyedLoc(t *testing.T) {
	cfg := Config{Trials: 1, Seed: 7, Ops: 600, Fill: 64}
	rows := KeyedLocalitySweep(cfg, []int64{0, 1000})
	out := RenderKeyedLoc(rows)
	for _, want := range []string{"Keyed locality sweep", "probe cost per Get", "cross-frac", "misses"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	csv := KeyedLocCSV(rows)
	if !strings.Contains(csv, "order,delay_us,probes_per_get,cross_frac") {
		t.Errorf("CSV header missing:\n%s", csv)
	}
	if got := strings.Count(csv, "\n"); got != len(rows)+1 {
		t.Errorf("CSV has %d lines, want %d", got, len(rows)+1)
	}
}
