package harness

import (
	"strings"
	"testing"

	"pools/internal/policy"
	"pools/internal/search"
	"pools/internal/workload"
)

// TestPolicySweepAdaptiveCompetitive is the subsystem's acceptance bar:
// on the batch-16 burst sweep the adaptive policy's per-element time must
// be within 10% of the best static policy — the controller has to find a
// good operating point online, without being configured for the workload.
func TestPolicySweepAdaptiveCompetitive(t *testing.T) {
	cfg := Config{Trials: 3, Seed: 1989}
	rows := PolicySweep(cfg, search.Tree, 5, []int{16})
	perElem := map[string]float64{}
	for _, r := range rows {
		if r.Batch == 16 {
			perElem[r.Policy] = r.Point.PerElementTime
		}
	}
	best := 0.0
	for _, name := range []string{"half", "one", "proportional"} {
		v, ok := perElem[name]
		if !ok || v <= 0 {
			t.Fatalf("static policy %q missing from sweep: %v", name, perElem)
		}
		if best == 0 || v < best {
			best = v
		}
	}
	adaptive, ok := perElem["adaptive"]
	if !ok || adaptive <= 0 {
		t.Fatalf("adaptive missing from sweep: %v", perElem)
	}
	if adaptive > best*1.10 {
		t.Fatalf("adaptive per-element time %.2f exceeds best static %.2f by more than 10%%",
			adaptive, best)
	}
}

// TestPolicySweepSeparatesPolicies checks the sweep actually measures
// different policies: steal-one must haul exactly one element per steal
// while steal-half hauls many on the batch-16 burst workload.
func TestPolicySweepSeparatesPolicies(t *testing.T) {
	cfg := Config{Trials: 2, Seed: 7}
	rows := PolicySweep(cfg, search.Tree, 5, []int{16})
	byPolicy := map[string]Point{}
	for _, r := range rows {
		byPolicy[r.Policy] = r.Point
	}
	if got := byPolicy["one"].ElementsStolen; got != 1 {
		t.Fatalf("steal-one stolen/steal = %.2f, want 1", got)
	}
	if byPolicy["half"].ElementsStolen <= byPolicy["proportional"].ElementsStolen {
		t.Fatalf("half stolen/steal %.2f <= proportional %.2f",
			byPolicy["half"].ElementsStolen, byPolicy["proportional"].ElementsStolen)
	}
}

// TestPolicyFluctuate checks the fluctuating-roles comparison produces a
// row per (policy, cadence) with measured times.
func TestPolicyFluctuate(t *testing.T) {
	cfg := Config{Trials: 1, Seed: 3}
	rows := PolicyFluctuate(cfg, search.Linear, 4, 8, []int{0, 50})
	if len(rows) != len(PolicyNames())*2 {
		t.Fatalf("got %d rows, want %d", len(rows), len(PolicyNames())*2)
	}
	byKey := map[string]map[int]Point{}
	for _, r := range rows {
		if r.Point.PerElementTime <= 0 {
			t.Fatalf("row %s/%d has no per-element time", r.Policy, r.FlipEvery)
		}
		if byKey[r.Policy] == nil {
			byKey[r.Policy] = map[int]Point{}
		}
		byKey[r.Policy][r.FlipEvery] = r.Point
	}
	// The cadence must actually rotate roles: at ~300 elements per process
	// a flip-50 run cannot be byte-identical to fixed roles for every
	// policy (that would mean the rotation clock never ticked).
	same := 0
	for _, pts := range byKey {
		if pts[0] == pts[50] {
			same++
		}
	}
	if same == len(byKey) {
		t.Fatal("flip-50 rows identical to fixed-roles rows for every policy: rotation never engaged")
	}
}

// TestRenderPolicy checks the chart, tables, and CSVs render with every
// policy present.
func TestRenderPolicy(t *testing.T) {
	cfg := Config{Trials: 1, Seed: 11}
	rows := PolicySweep(cfg, search.Tree, 5, []int{1, 8})
	out := RenderPolicy(search.Tree, rows)
	for _, want := range []string{"half", "one", "proportional", "adaptive", "per-element time", "µs/element"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered sweep missing %q:\n%s", want, out)
		}
	}
	csv := PolicyCSV(rows)
	if !strings.Contains(csv, "per_element_us") ||
		len(strings.Split(strings.TrimSpace(csv), "\n")) != len(rows)+1 {
		t.Fatalf("unexpected CSV:\n%s", csv)
	}
	fluct := PolicyFluctuate(cfg, search.Linear, 4, 8, []int{0, 10})
	fout := RenderPolicyFluct(8, fluct)
	if !strings.Contains(fout, "rotate/10 elems") || !strings.Contains(fout, "Fluctuating") {
		t.Fatalf("fluct render missing content:\n%s", fout)
	}
	fcsv := PolicyFluctCSV(fluct)
	if !strings.Contains(fcsv, "flip_every") ||
		len(strings.Split(strings.TrimSpace(fcsv), "\n")) != len(fluct)+1 {
		t.Fatalf("unexpected fluct CSV:\n%s", fcsv)
	}
}

// TestRealRunBurstAdaptive runs the adaptive policy set on the real-pool
// substrate's burst loop (which consults the controller's batch
// recommendation, mirroring the simulator) and checks conservation.
func TestRealRunBurstAdaptive(t *testing.T) {
	set, err := policy.Named("adaptive")
	if err != nil {
		t.Fatal(err)
	}
	wl := workload.Config{
		Procs:           4,
		Model:           workload.Burst,
		Producers:       2,
		Arrangement:     workload.Balanced,
		BatchSize:       8,
		TotalOps:        400,
		InitialElements: 32,
	}
	res, err := RealRun(RealRunConfig{Workload: wl, Search: search.Linear, Seed: 9, Policies: set})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.BatchAdds == 0 {
		t.Fatal("adaptive burst run recorded no batch adds")
	}
	total := int64(wl.InitialElements) + st.Adds
	if st.Removes+int64(res.Remaining) != total {
		t.Fatalf("conservation violated: removes=%d remaining=%d added=%d",
			st.Removes, res.Remaining, total)
	}
}

// TestPolicySweepDeterministic re-runs the sweep with the same seed and
// requires identical points (the adaptive controller is rebuilt per
// trial, so no state leaks across runs).
func TestPolicySweepDeterministic(t *testing.T) {
	cfg := Config{Trials: 1, Seed: 42}
	a := PolicySweep(cfg, search.Linear, 5, []int{8})
	b := PolicySweep(cfg, search.Linear, 5, []int{8})
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at row %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
