package harness

import (
	"fmt"
	"strings"

	"pools/internal/metrics"
	"pools/internal/plot"
	"pools/internal/rng"
	"pools/internal/search"
	"pools/internal/sim"
	"pools/internal/workload"
)

// Fig2Result holds Figure 2: average operation time vs job mix for the
// tree traversal algorithm, comparing the random and producer/consumer
// models.
type Fig2Result struct {
	Random []Point // x = requested %adds (0..100)
	PC     []Point // x = measured %adds; swept over producer counts
}

// Fig2 reproduces Figure 2.
func Fig2(cfg Config) Fig2Result {
	c := cfg.withDefaults()
	var out Fig2Result
	for _, mix := range workload.MixSweep() {
		pt := c.average(mix*100, func(seed uint64) sim.RunResult {
			return c.runRandom(search.Tree, mix, seed, false)
		})
		out.Random = append(out.Random, pt)
	}
	for _, k := range workload.ProducerSweep(c.Procs) {
		k := k
		pt := c.average(0, func(seed uint64) sim.RunResult {
			return c.runPC(search.Tree, k, workload.Contiguous, seed, false)
		})
		// The paper plots the producer/consumer data at the measured mix:
		// "the job mix was measured and the data was plotted on that
		// scale."
		pt.X = pt.MixAchieved * 100
		out.PC = append(out.PC, pt)
	}
	return out
}

// Render draws the Figure 2 chart (times in ms, as in the paper).
func (r Fig2Result) Render() string {
	toSeries := func(name string, pts []Point) plot.Series {
		s := plot.Series{Name: name}
		for _, p := range pts {
			s.X = append(s.X, p.X)
			s.Y = append(s.Y, p.AvgOpTime/1000) // µs -> ms
		}
		return s
	}
	chart := plot.LineChart(
		"Figure 2: average operation time for the tree traversal algorithm",
		"percent of operations that were adds", "avg op time (ms)",
		70, 16,
		[]plot.Series{toSeries("random", r.Random), toSeries("producer/consumer", r.PC)},
	)
	var rows [][]string
	for _, p := range r.Random {
		rows = append(rows, []string{"random", fmtF(p.X), fmtF(p.AvgOpTime / 1000), fmtF(p.StealFraction * 100), fmtF(p.SegmentsExamined)})
	}
	for _, p := range r.PC {
		rows = append(rows, []string{"prod/cons", fmtF(p.X), fmtF(p.AvgOpTime / 1000), fmtF(p.StealFraction * 100), fmtF(p.SegmentsExamined)})
	}
	table := plot.Table(
		[]string{"model", "%adds", "avg op (ms)", "%removes stealing", "segs/steal"}, rows)
	return chart + "\n" + table
}

// TraceResult holds one Figures 3-6 style panel: per-segment sizes over
// virtual time for one trial.
type TraceResult struct {
	Figure      string
	Kind        search.Kind
	Arrangement workload.Arrangement
	Producers   map[int]bool
	Sampled     [][]int64 // [segment][time bucket]
	Waited      []int64   // queueing delay per segment (interference)
	Stats       metrics.PoolStats
}

// FigTrace reproduces one of Figures 3-6: a single traced trial of the
// producer/consumer model with 5 producers and 11 consumers.
//
//	Figure 3: linear search, contiguous producers
//	Figure 4: linear search, balanced producers
//	Figure 5: tree search, contiguous producers
//	Figure 6: tree search, balanced producers
func FigTrace(cfg Config, figure string, kind search.Kind, arr workload.Arrangement, producers int) TraceResult {
	c := cfg.withDefaults()
	w := c.workloadFor(workload.ProducerConsumer)
	w.Producers = producers
	w.Arrangement = arr
	res := sim.Run(sim.RunConfig{
		Workload: w, Search: kind, Costs: c.Costs,
		Seed: rng.SubSeed(c.Seed, 0), Trace: true,
	})

	const buckets = 100
	end := int64(1)
	for i := range res.Traces {
		if t := res.Traces[i].MaxTime(); t > end {
			end = t
		}
	}
	times := make([]int64, buckets)
	for i := range times {
		times[i] = end * int64(i+1) / buckets
	}
	out := TraceResult{
		Figure:      figure,
		Kind:        kind,
		Arrangement: arr,
		Producers:   map[int]bool{},
		Waited:      res.SegmentWaited,
		Stats:       res.Stats,
	}
	for _, p := range workload.ProducerPositions(c.Procs, producers, arr) {
		out.Producers[p] = true
	}
	for i := range res.Traces {
		out.Sampled = append(out.Sampled, res.Traces[i].SampleAt(times))
	}
	return out
}

// Render draws the trace panel.
func (r TraceResult) Render() string {
	title := fmt.Sprintf("%s: segment sizes over time (%s search, %s producers)",
		r.Figure, r.Kind, r.Arrangement)
	body := plot.SegmentTraces(title, r.Sampled, r.Producers)
	var waits []string
	for i, w := range r.Waited {
		role := "C"
		if r.Producers[i] {
			role = "P"
		}
		waits = append(waits, fmt.Sprintf("%d%s:%d", i, role, w))
	}
	return body + "queueing delay per segment (µs): " + strings.Join(waits, " ") + "\n"
}

// ProducersDrained reports how many producer segments were ever stolen
// down to empty during the run — the paper's bunching evidence is that
// with contiguous producers "producer 4 is never stolen from".
func (r TraceResult) ProducersDrained() int {
	drained := 0
	for seg, isP := range r.Producers {
		if !isP {
			continue
		}
		// A producer's segment only shrinks via steals. Look for any
		// decrease in its sampled trace.
		tr := r.Sampled[seg]
		for i := 1; i < len(tr); i++ {
			if tr[i] < tr[i-1] {
				drained++
				break
			}
		}
	}
	return drained
}

// Fig7Result holds Figure 7 (errata orientation): average number of
// elements stolen per steal vs the number of producers, for the
// unbalanced (contiguous) and balanced arrangements under tree search.
type Fig7Result struct {
	Unbalanced []Point
	Balanced   []Point
}

// Fig7 reproduces Figure 7.
func Fig7(cfg Config) Fig7Result {
	c := cfg.withDefaults()
	var out Fig7Result
	for _, k := range workload.ProducerSweep(c.Procs) {
		k := k
		out.Unbalanced = append(out.Unbalanced, c.average(float64(k), func(seed uint64) sim.RunResult {
			return c.runPC(search.Tree, k, workload.Contiguous, seed, false)
		}))
		out.Balanced = append(out.Balanced, c.average(float64(k), func(seed uint64) sim.RunResult {
			return c.runPC(search.Tree, k, workload.Balanced, seed, false)
		}))
	}
	return out
}

// Render draws the Figure 7 chart and table.
func (r Fig7Result) Render() string {
	toSeries := func(name string, pts []Point) plot.Series {
		s := plot.Series{Name: name}
		for _, p := range pts {
			s.X = append(s.X, p.X)
			s.Y = append(s.Y, p.ElementsStolen)
		}
		return s
	}
	chart := plot.LineChart(
		"Figure 7: average number of elements stolen per steal (tree search)",
		"number of producers", "elements stolen per steal",
		70, 16,
		[]plot.Series{toSeries("unbalanced", r.Unbalanced), toSeries("balanced", r.Balanced)},
	)
	var rows [][]string
	for i := range r.Unbalanced {
		rows = append(rows, []string{
			fmt.Sprintf("%d", int(r.Unbalanced[i].X)),
			fmtF(r.Unbalanced[i].ElementsStolen),
			fmtF(r.Balanced[i].ElementsStolen),
			fmtF(r.Unbalanced[i].StealsPerOp),
			fmtF(r.Balanced[i].StealsPerOp),
		})
	}
	table := plot.Table(
		[]string{"producers", "stolen/steal (unbal)", "stolen/steal (bal)", "steals/op (unbal)", "steals/op (bal)"}, rows)
	return chart + "\n" + table
}

// CSV emits the Figure 2 data points as comma-separated values for
// external plotting.
func (r Fig2Result) CSV() string {
	header := []string{"model", "pct_adds", "avg_op_us", "steal_fraction", "segments_per_steal", "stolen_per_steal"}
	var rows [][]string
	emit := func(model string, pts []Point) {
		for _, p := range pts {
			rows = append(rows, []string{
				model,
				fmt.Sprintf("%.1f", p.X),
				fmt.Sprintf("%.1f", p.AvgOpTime),
				fmt.Sprintf("%.4f", p.StealFraction),
				fmt.Sprintf("%.2f", p.SegmentsExamined),
				fmt.Sprintf("%.2f", p.ElementsStolen),
			})
		}
	}
	emit("random", r.Random)
	emit("producer-consumer", r.PC)
	return plot.CSV(header, rows)
}

// CSV emits the Figure 7 data points as comma-separated values.
func (r Fig7Result) CSV() string {
	header := []string{"producers", "stolen_per_steal_unbalanced", "stolen_per_steal_balanced", "steals_per_op_unbalanced", "steals_per_op_balanced"}
	var rows [][]string
	for i := range r.Unbalanced {
		rows = append(rows, []string{
			fmt.Sprintf("%d", int(r.Unbalanced[i].X)),
			fmt.Sprintf("%.2f", r.Unbalanced[i].ElementsStolen),
			fmt.Sprintf("%.2f", r.Balanced[i].ElementsStolen),
			fmt.Sprintf("%.4f", r.Unbalanced[i].StealsPerOp),
			fmt.Sprintf("%.4f", r.Balanced[i].StealsPerOp),
		})
	}
	return plot.CSV(header, rows)
}
