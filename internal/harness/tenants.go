package harness

import (
	"fmt"

	"pools/internal/metrics"
	"pools/internal/plot"
	"pools/internal/policy"
	"pools/internal/rng"
	"pools/internal/search"
	"pools/internal/sim"
	"pools/internal/workload"
)

// This file measures the open-loop multi-tenant extension: N tenants, each
// a contiguous block of processors with its own arrival rate, share one
// pool. The sweep crosses tenant count with lambda skew and reports each
// tenant's sojourn-time percentiles (p50/p99/p999) plus steal
// interference — the fraction of a tenant's successful steals whose
// victim segment belonged to another tenant. Percentiles come from the
// per-processor latency histograms merged across a tenant's processors
// and across trials (histograms merge exactly; averaging per-trial
// percentiles would not).

// DefaultTenantArrivals returns the arrival process of the tenants sweep:
// Poisson arrivals at a per-process rate that keeps the *average* process
// comfortably under capacity on the simulated Butterfly (an op plus its
// zipf service draw costs a few hundred virtual µs against a 1000 µs mean
// gap). Skewing lambda across tenants then pushes the hottest tenant
// toward (and past) saturation, which is where the sojourn tail separates
// from the median.
func DefaultTenantArrivals() workload.Arrivals {
	return workload.Arrivals{
		Lambda:      0.001, // arrivals per virtual µs per process
		Burstiness:  1,     // <= 1: Poisson
		ServiceMean: 100,   // µs of post-op work per element
		ServiceZipf: 1.1,   // heavy-tailed service mix
	}
}

// TenantFill is the initial pool size of the tenants sweep when
// Config.Fill is unset. The paper's 320-element seed cushions every
// fluctuation — at 16 procs no segment ever runs dry and no steal (hence
// no interference) occurs. A thin reserve is the regime where tenants
// actually contend for elements, which is what this sweep measures.
const TenantFill = 64

// DefaultTenantCounts returns the tenant counts the sweep crosses.
func DefaultTenantCounts() []int { return []int{2, 4} }

// DefaultTenantSkews returns the lambda-skew exponents the sweep crosses
// (0 = uniform tenants; higher concentrates arrivals on tenant 0).
func DefaultTenantSkews() []float64 { return []float64{0, 0.7, 1.4} }

// TenantPoint is one tenant's aggregate measurements at one sweep cell.
type TenantPoint struct {
	Tenant int     // tenant id (0 is the hottest under skew)
	Procs  int     // processors in this tenant's block
	Lambda float64 // per-process arrival rate after skew (arrivals/µs)
	Ops    int64   // completed operations across the tenant, all trials

	// Sojourn-time percentiles in virtual µs, from the merged histograms.
	P50, P99, P999 float64

	// Interference is the foreign fraction of this tenant's successful
	// steals: how often satisfying this tenant's demand reached into
	// another tenant's segments (thief-side view).
	Interference float64
}

// TenantRow is one sweep cell: a tenant count × skew pair and its
// per-tenant points.
type TenantRow struct {
	Tenants  int
	Skew     float64
	WorstP99 float64 // max per-tenant p99, the fairness headline
	Points   []TenantPoint
}

// TenantSweep crosses tenant counts with lambda skews, running the
// open-loop workload under the tenant-fair placement (policy.TenantFair,
// which also arms the engine's steal-interference classification) and
// aggregating per-tenant sojourn histograms and steal stats across
// workload.PaperTrials seeded trials. The sweep runs linear search: on a
// thin open-loop pool the tree search's round-counter walks dominate every
// fruitless probe (a sparse-pool abort costs tens of virtual ms), which
// would measure the search algorithm rather than tenant interference.
func TenantSweep(cfg Config, counts []int, skews []float64) []TenantRow {
	fill := cfg.Fill
	if fill == 0 {
		fill = TenantFill
	}
	c := cfg.withDefaults()
	var out []TenantRow
	for _, nt := range counts {
		for _, skew := range skews {
			w := c.workloadFor(workload.OpenLoop)
			w.InitialElements = fill
			w.AddFraction = 0.5
			w.Arrivals = DefaultTenantArrivals()
			w.Tenants = nt
			w.TenantSkew = skew
			tmap := policy.TenantMap(w.TenantMapping())
			n := w.TenantCount()
			soj := make([]metrics.LatencyHist, n)
			stats := make([]metrics.PoolStats, n)
			procs := make([]int, n)
			for trial := 0; trial < c.Trials; trial++ {
				res := sim.Run(sim.RunConfig{
					Workload: w,
					Search:   search.Linear,
					Costs:    c.Costs,
					Seed:     rng.SubSeed(c.Seed, trial),
					Policies: policy.Set{Place: policy.TenantFair{Map: tmap}},
				})
				for p := 0; p < w.Procs; p++ {
					t := w.TenantOf(p)
					soj[t].Merge(&res.Sojourns[p])
					stats[t].Merge(&res.PerProc[p])
					if trial == 0 {
						procs[t]++
					}
				}
			}
			row := TenantRow{Tenants: n, Skew: skew}
			for t := 0; t < n; t++ {
				pt := TenantPoint{
					Tenant:       t,
					Procs:        procs[t],
					Lambda:       w.Arrivals.Lambda * w.TenantWeight(t),
					Ops:          soj[t].N(),
					P50:          soj[t].P50(),
					P99:          soj[t].P99(),
					P999:         soj[t].P999(),
					Interference: stats[t].StealInterference(),
				}
				if pt.P99 > row.WorstP99 {
					row.WorstP99 = pt.P99
				}
				row.Points = append(row.Points, pt)
			}
			out = append(out, row)
		}
	}
	return out
}

// RenderTenants draws the sweep figure (worst-tenant p99 vs skew, one
// series per tenant count) and the full per-tenant table.
func RenderTenants(rows []TenantRow) string {
	series := map[int]*plot.Series{}
	var order []int
	for _, r := range rows {
		s, ok := series[r.Tenants]
		if !ok {
			s = &plot.Series{Name: fmt.Sprintf("%d tenants", r.Tenants)}
			series[r.Tenants] = s
			order = append(order, r.Tenants)
		}
		s.X = append(s.X, r.Skew)
		s.Y = append(s.Y, r.WorstP99/1000)
	}
	var ss []plot.Series
	for _, nt := range order {
		ss = append(ss, *series[nt])
	}
	chart := plot.LineChart(
		"Open-loop tenants: worst-tenant p99 sojourn vs lambda skew (linear search, tenant-fair placement)",
		"lambda skew (zipf exponent)", "worst-tenant p99 sojourn (virt ms)",
		70, 16,
		ss,
	)
	var cells [][]string
	for _, r := range rows {
		for _, p := range r.Points {
			cells = append(cells, []string{
				fmt.Sprintf("%d", r.Tenants),
				fmtF(r.Skew),
				fmt.Sprintf("%d", p.Tenant),
				fmt.Sprintf("%d", p.Procs),
				fmt.Sprintf("%.4f", p.Lambda),
				fmtF(p.P50),
				fmtF(p.P99),
				fmtF(p.P999),
				fmt.Sprintf("%.2f", p.Interference),
				fmt.Sprintf("%d", p.Ops),
			})
		}
	}
	table := plot.Table([]string{
		"tenants", "skew", "tenant", "procs", "λ/proc", "p50 µs", "p99 µs", "p999 µs", "interf", "ops",
	}, cells)
	return chart + "\n" + table
}

// TenantsCSV emits the sweep as comma-separated values, one line per
// tenant per sweep cell.
func TenantsCSV(rows []TenantRow) string {
	header := []string{
		"tenants", "skew", "tenant", "procs", "lambda_per_proc",
		"p50_us", "p99_us", "p999_us", "steal_interference", "ops",
	}
	var out [][]string
	for _, r := range rows {
		for _, p := range r.Points {
			out = append(out, []string{
				fmt.Sprintf("%d", r.Tenants),
				fmt.Sprintf("%.2f", r.Skew),
				fmt.Sprintf("%d", p.Tenant),
				fmt.Sprintf("%d", p.Procs),
				fmt.Sprintf("%.5f", p.Lambda),
				fmt.Sprintf("%.1f", p.P50),
				fmt.Sprintf("%.1f", p.P99),
				fmt.Sprintf("%.1f", p.P999),
				fmt.Sprintf("%.4f", p.Interference),
				fmt.Sprintf("%d", p.Ops),
			})
		}
	}
	return plot.CSV(header, out)
}
