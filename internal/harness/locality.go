package harness

import (
	"fmt"

	"pools/internal/numa"
	"pools/internal/plot"
	"pools/internal/policy"
	"pools/internal/rng"
	"pools/internal/search"
	"pools/internal/sim"
	"pools/internal/workload"
)

// This file measures the locality-aware policy extensions. The paper's
// Section 4.3 delay experiments add 1 µs .. 100 ms to every remote
// operation "to simulate a higher-cost remote access architecture" and
// find all three search algorithms converging — they are equally blind to
// where a victim lives, so every extra microsecond hits them alike. The
// locality sweep re-runs that experiment on a machine where "remote" is
// not one cost (numa.Clusters: near-remote one hop, far-remote four) and
// adds the policy the paper could not have: a victim order that consults
// the cost model (policy.LocalityOrder). The controller-trace experiment
// surfaces the other PR-2 follow-on, per-handle controllers, by plotting
// each handle's steal fraction and batch recommendation over virtual
// time.

// LocalityScales are the added per-remote-operation delays (virtual µs)
// swept by the locality experiment, the Section 4.3 range at one-decade
// steps.
func LocalityScales() []int64 { return []int64{0, 10, 100, 1000, 10000} }

// LocalityClusterSize is the cluster width of the swept topology: 16
// paper processors in four clusters of four.
const LocalityClusterSize = 4

// LocalityOrderNames lists the victim orders the sweep compares: the
// paper's three locality-blind algorithms plus the cost-ranked order.
func LocalityOrderNames() []string {
	return []string{"linear", "random", "tree", "locality"}
}

// localitySet builds a fresh policy set for one victim-order name under
// the given cost model.
func localitySet(name string, costs numa.CostModel) policy.Set {
	switch name {
	case "locality":
		return policy.Set{Order: policy.LocalityOrder{Model: costs}}
	case "linear":
		return policy.Set{Order: policy.Order{Kind: search.Linear}}
	case "random":
		return policy.Set{Order: policy.Order{Kind: search.Random}}
	case "tree":
		return policy.Set{Order: policy.Order{Kind: search.Tree}}
	default:
		panic(fmt.Sprintf("harness: unknown victim order %q", name))
	}
}

// LocalityRow is one (victim order, delay scale) measurement.
type LocalityRow struct {
	Order   string
	DelayUS int64
	Point   Point
}

// LocalityMix is the job mix of the locality sweep: the paper's sparse
// 30%-adds random-operations workload (the same scenario its own delay
// experiment stresses), chosen because every process both adds and
// removes — a slow searcher keeps claiming budget, so the comparison is
// not distorted by role drift the way asymmetric producer/consumer runs
// are at extreme delays.
const LocalityMix = 0.3

// LocalitySweep runs the sparse random-operations workload on a
// clustered machine at each added remote delay under each victim order.
// Expected shape: at zero delay all orders coincide with their fallbacks
// (LocalityOrder falls back to linear — with no per-victim cost
// difference there is nothing to rank); as the delay grows, random and
// tree pay the far-cluster rate on most probes (they wander across
// cluster boundaries, and the tree's round counters are remote besides)
// while the locality order exhausts its cheap in-cluster victims first
// and its curve pulls away below the blind orders.
func LocalitySweep(cfg Config, scales []int64) []LocalityRow {
	c := cfg.withDefaults()
	base := c.Costs.WithTopology(numa.Clusters{Size: LocalityClusterSize})
	var out []LocalityRow
	for _, name := range LocalityOrderNames() {
		for _, d := range scales {
			name, d := name, d
			costs := base.WithExtraDelay(d)
			cd := c
			cd.Costs = costs
			pt := cd.average(float64(d), func(seed uint64) sim.RunResult {
				w := cd.workloadFor(workload.RandomOps)
				w.AddFraction = LocalityMix
				return sim.Run(sim.RunConfig{
					Workload: w, Search: search.Linear, Costs: costs,
					Seed: seed, Policies: localitySet(name, costs),
				})
			})
			out = append(out, LocalityRow{Order: name, DelayUS: d, Point: pt})
		}
	}
	return out
}

// RenderLocality draws the locality sweep: one average-operation-time
// series per victim order across the delay scales (the paper's Figure 2
// metric), plus the measurement table with a locality/best-blind ratio
// column (< 1.0 means the cost-ranked order beat every blind order at
// that delay).
func RenderLocality(rows []LocalityRow) string {
	series := map[string]*plot.Series{}
	var order []string
	for _, r := range rows {
		s := series[r.Order]
		if s == nil {
			s = &plot.Series{Name: r.Order}
			series[r.Order] = s
			order = append(order, r.Order)
		}
		s.X = append(s.X, float64(r.DelayUS))
		s.Y = append(s.Y, r.Point.AvgOpTime)
	}
	var ss []plot.Series
	for _, name := range order {
		ss = append(ss, *series[name])
	}
	chart := plot.LineChart(
		fmt.Sprintf("Locality sweep: avg operation time vs added remote delay (clustered topology, %d-proc clusters)", LocalityClusterSize),
		"added delay per remote op (virt µs)", "avg op time (virt µs)",
		70, 16,
		ss,
	)
	best := map[int64]float64{}
	for _, r := range rows {
		if r.Order == "locality" {
			continue
		}
		if v, ok := best[r.DelayUS]; !ok || r.Point.AvgOpTime < v {
			best[r.DelayUS] = r.Point.AvgOpTime
		}
	}
	var cells [][]string
	for _, r := range rows {
		ratio := "-"
		if r.Order == "locality" && best[r.DelayUS] > 0 {
			ratio = fmt.Sprintf("%.3f", r.Point.AvgOpTime/best[r.DelayUS])
		}
		cells = append(cells, []string{
			r.Order,
			fmt.Sprintf("%d", r.DelayUS),
			fmtF(r.Point.AvgOpTime),
			fmtF(r.Point.AvgRemoveTime),
			fmtF(r.Point.SegmentsExamined),
			fmtF(r.Point.StealsPerOp),
			fmtF(r.Point.AbortsPerOp),
			ratio,
		})
	}
	table := plot.Table([]string{
		"order", "delay (µs)", "µs/op", "µs/remove", "segs/steal", "steals/op", "aborts/op", "vs best blind",
	}, cells)
	return chart + "\n" + table
}

// LocalityCSV emits the sweep as comma-separated values.
func LocalityCSV(rows []LocalityRow) string {
	header := []string{"order", "delay_us", "avg_op_us", "avg_remove_us", "segs_per_steal", "steals_per_op", "aborts_per_op", "makespan_us"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Order,
			fmt.Sprintf("%d", r.DelayUS),
			fmt.Sprintf("%.2f", r.Point.AvgOpTime),
			fmt.Sprintf("%.2f", r.Point.AvgRemoveTime),
			fmt.Sprintf("%.2f", r.Point.SegmentsExamined),
			fmt.Sprintf("%.4f", r.Point.StealsPerOp),
			fmt.Sprintf("%.4f", r.Point.AbortsPerOp),
			fmt.Sprintf("%.0f", r.Point.MakespanMean),
		})
	}
	return plot.CSV(header, out)
}

// ControlTraceResult holds one controller-trajectory run: the per-handle
// steal fraction, batch recommendation, and cross-cluster probe fraction
// over virtual time under the per-handle adaptive policy on the burst
// producer/consumer workload (run on the clustered topology so the
// cross-probe accounting has boundaries to observe).
type ControlTraceResult struct {
	Kind      search.Kind
	Batch     int
	Producers map[int]bool
	// FracSampled[h] is handle h's steal fraction (permil) resampled at
	// uniform virtual-time steps; BatchSampled[h] the batch
	// recommendation; CrossSampled[h] the cumulative cross-cluster probe
	// fraction (permil).
	FracSampled  [][]int64
	BatchSampled [][]int64
	CrossSampled [][]int64
	// FinalFrac, FinalBatch, and FinalCross are each handle's last
	// sampled values.
	FinalFrac  []float64
	FinalBatch []int64
	FinalCross []float64
	Makespan   int64
}

// ControlTraceRun executes one burst producer/consumer trial under the
// per-handle adaptive policy with controller tracing on, on the clustered
// topology the locality sweep uses. Producers never remove, so their
// controllers hold the paper's steal-half fraction; consumers steal
// constantly and their fractions climb — per-handle control is visible as
// diverging rows, where the pool-wide adaptive set would show every row
// identical. Producers are contiguous (the paper's unbalanced Figure 3
// arrangement), so whole clusters hold no producer at all and the
// cross-probe panels have structure to show: a consumer sharing a cluster
// with a producer settles to a low cross fraction, one marooned in an
// all-consumer cluster pays the boundary on most probes.
func ControlTraceRun(cfg Config, kind search.Kind, producers, batch int) ControlTraceResult {
	c := cfg.withDefaults()
	set, err := policy.Named("per-handle")
	if err != nil {
		panic(err) // programmer error: the name is a registry constant
	}
	w := c.workloadFor(workload.Burst)
	w.Producers = producers
	w.Arrangement = workload.Contiguous
	w.BatchSize = batch
	res := sim.Run(sim.RunConfig{
		Workload: w, Search: kind,
		Costs: c.Costs.WithTopology(numa.Clusters{Size: LocalityClusterSize}),
		Seed:  rng.SubSeed(c.Seed, 0), Policies: set, ControlTrace: true,
	})

	const buckets = 100
	end := int64(1)
	for i := range res.Controls {
		if t := res.Controls[i].FracPermil.MaxTime(); t > end {
			end = t
		}
	}
	times := make([]int64, buckets)
	for i := range times {
		times[i] = end * int64(i+1) / buckets
	}
	out := ControlTraceResult{
		Kind:      kind,
		Batch:     batch,
		Producers: map[int]bool{},
		Makespan:  res.Makespan,
	}
	for _, p := range workload.ProducerPositions(c.Procs, producers, workload.Contiguous) {
		out.Producers[p] = true
	}
	for i := range res.Controls {
		fr := res.Controls[i].FracPermil.SampleAt(times)
		ba := res.Controls[i].Batch.SampleAt(times)
		cr := res.Controls[i].CrossPermil.SampleAt(times)
		out.FracSampled = append(out.FracSampled, fr)
		out.BatchSampled = append(out.BatchSampled, ba)
		out.CrossSampled = append(out.CrossSampled, cr)
		out.FinalFrac = append(out.FinalFrac, float64(fr[len(fr)-1])/1000)
		out.FinalBatch = append(out.FinalBatch, ba[len(ba)-1])
		out.FinalCross = append(out.FinalCross, float64(cr[len(cr)-1])/1000)
	}
	return out
}

// RenderControlTrace draws the trajectory panels — steal fraction per
// handle over virtual time, then each handle's cross-cluster probe
// fraction — and the final-operating-point table.
func RenderControlTrace(r ControlTraceResult) string {
	title := fmt.Sprintf("Controller trajectories: per-handle steal fraction over time (%s search, burst batch %d)",
		r.Kind, r.Batch)
	body := plot.TracePanels(title, "handle", "steal fraction (permil)", r.FracSampled, r.Producers, "P", "C")
	crossTitle := fmt.Sprintf("Cross-cluster probe fraction per handle over time (%d-proc clusters)",
		LocalityClusterSize)
	body += "\n" + plot.TracePanels(crossTitle, "handle", "cross-probe fraction (permil)", r.CrossSampled, r.Producers, "P", "C")
	var cells [][]string
	for h := range r.FracSampled {
		role := "consumer"
		if r.Producers[h] {
			role = "producer"
		}
		cells = append(cells, []string{
			fmt.Sprintf("%d", h),
			role,
			fmt.Sprintf("%.3f", r.FinalFrac[h]),
			fmt.Sprintf("%d", r.FinalBatch[h]),
			fmt.Sprintf("%.3f", r.FinalCross[h]),
		})
	}
	table := plot.Table([]string{"handle", "role", "final steal fraction", "final batch", "final cross-frac"}, cells)
	return body + "\n" + table
}

// ControlTraceCSV emits the trajectories in long form: one row per
// (handle, sample).
func ControlTraceCSV(r ControlTraceResult) string {
	header := []string{"handle", "role", "sample", "frac_permil", "batch", "cross_permil"}
	var out [][]string
	for h := range r.FracSampled {
		role := "consumer"
		if r.Producers[h] {
			role = "producer"
		}
		for i := range r.FracSampled[h] {
			out = append(out, []string{
				fmt.Sprintf("%d", h),
				role,
				fmt.Sprintf("%d", i),
				fmt.Sprintf("%d", r.FracSampled[h][i]),
				fmt.Sprintf("%d", r.BatchSampled[h][i]),
				fmt.Sprintf("%d", r.CrossSampled[h][i]),
			})
		}
	}
	return plot.CSV(header, out)
}
