package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"pools/internal/core"
	"pools/internal/metrics"
	"pools/internal/numa"
	"pools/internal/policy"
	"pools/internal/rng"
	"pools/internal/search"
	"pools/internal/trace"
	"pools/internal/workload"
)

// RealRunConfig describes one wall-clock trial of the paper's protocol on
// the real concurrent pool (internal/core): one goroutine per segment,
// a shared operation budget, and optional busy-wait NUMA emulation.
//
// On a single-core host this measures protocol overheads rather than true
// parallel contention; the simulator (sim.Run) is the calibrated
// instrument for the paper's figures. RealRun exists so the library
// itself — the artifact a user adopts — is exercised under exactly the
// workloads the paper defines, and so multicore hosts can compare.
type RealRunConfig struct {
	Workload workload.Config
	Search   search.Kind
	Seed     uint64
	// Policies selects the pool's steal/search/placement/control policies
	// (see core.Options.Policies). Adaptive sets carry state: construct a
	// fresh Set per trial.
	Policies policy.Set
	Steal    core.StealPolicy // deprecated steal-one alias; see core.Options.Steal
	Delay    numa.Delayer
	// Topology assigns hop distances to segments so the real pool can run
	// the clustered experiments: cross-cluster probes are counted in the
	// result stats, and an active Delay without its own topology inherits
	// this one (see core.Options.Topology).
	Topology numa.Topology
	Directed bool // enable the Section 5 directed-adds extension
	// TraceBuf, when positive, attaches a flight recorder of that many
	// events per handle (core.Options.TraceBuf); the recorded timelines
	// come back in RealRunResult.Timelines.
	TraceBuf int
	// Churn, when enabled, runs a wall-clock chaos driver alongside the
	// workers: it kills one live handle at a time on the seeded schedule
	// (workload.Churn, gaps in wall-clock µs), revives it after the
	// configured downtime, and stops when the budget is exhausted. A
	// killed worker idles without claiming budget until revived (its
	// next operation re-registers the handle). Not supported under the
	// OpenLoop model, whose arrival streams assume a fixed worker set.
	Churn workload.Churn
	// Publish, when non-nil, is called by each worker with a copy of its
	// own handle's statistics every publishEvery operations and once as
	// it exits. Per-handle stats are unsynchronized — only the owning
	// worker may read them mid-run — so this callback is the race-safe
	// window a live observer (harness.StartLive, the introspection
	// endpoint) gets into an in-flight run. The callback runs on the
	// worker goroutine: keep it short.
	Publish func(worker int, s metrics.PoolStats)
	// onPool hands the constructed pool to a same-package observer
	// (StartLive) before any worker starts, for mid-run recorder dumps.
	onPool func(p *core.Pool[int])
}

// publishEvery is the operation interval between RealRunConfig.Publish
// snapshots. Coarse enough to stay off the hot path, fine enough that a
// live dashboard never lags the run by more than a few hundred µs.
const publishEvery = 64

// RealRunResult carries the measurements of one wall-clock trial.
type RealRunResult struct {
	Stats     metrics.PoolStats
	Elapsed   time.Duration
	Remaining int
	// Sojourns are per-worker sojourn-time histograms (completion minus
	// scheduled arrival, wall-clock µs) under the OpenLoop model; nil for
	// closed-loop models.
	Sojourns []metrics.LatencyHist
	// Timelines are the per-handle flight-recorder snapshots (only when
	// RealRunConfig.TraceBuf), on the wall clock in µs since pool start.
	Timelines []trace.Timeline
	// Kills and Revives count the chaos driver's membership transitions
	// (only when RealRunConfig.Churn is enabled).
	Kills, Revives int
}

// RealRun executes one trial with real goroutines and returns its
// measurements.
func RealRun(cfg RealRunConfig) (RealRunResult, error) {
	wl := cfg.Workload
	if err := wl.Validate(); err != nil {
		return RealRunResult{}, err
	}
	if err := cfg.Churn.Validate(); err != nil {
		return RealRunResult{}, err
	}
	churnOn := cfg.Churn.Enabled()
	if churnOn && wl.Model == workload.OpenLoop {
		return RealRunResult{}, fmt.Errorf("harness: churn is not supported under the OpenLoop model")
	}
	if churnOn && wl.Procs < 2 {
		return RealRunResult{}, fmt.Errorf("harness: churn needs Procs >= 2, got %d", wl.Procs)
	}
	p, err := core.New[int](core.Options{
		Segments:     wl.Procs,
		Search:       cfg.Search,
		Seed:         cfg.Seed,
		Policies:     cfg.Policies,
		Steal:        cfg.Steal,
		Delay:        cfg.Delay,
		Topology:     cfg.Topology,
		DirectedAdds: cfg.Directed,
		CollectStats: true,
		TraceBuf:     cfg.TraceBuf,
	})
	if err != nil {
		return RealRunResult{}, err
	}
	if cfg.onPool != nil {
		cfg.onPool(p)
	}
	seed := make([]int, wl.InitialElements)
	p.SeedEvenly(seed)
	for i := 0; i < wl.Procs; i++ {
		p.Handle(i).Register()
	}

	budget := workload.NewBudget(wl.TotalOps)
	var sojourns []metrics.LatencyHist
	if wl.Model == workload.OpenLoop {
		sojourns = make([]metrics.LatencyHist, wl.Procs)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < wl.Procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := p.Handle(id)
			ch := workload.NewChooser(wl, id, cfg.Seed)
			ticks := 0
			tick := func() {
				if cfg.Publish == nil {
					return
				}
				if ticks++; ticks%publishEvery == 0 {
					cfg.Publish(id, h.Stats())
				}
			}
			defer func() {
				if cfg.Publish != nil {
					cfg.Publish(id, h.Stats())
				}
			}()
			if wl.Model == workload.OpenLoop {
				// Open loop on the wall clock: claim the budget first (so
				// exhaustion never waits out one more arrival gap), spin to
				// the scheduled arrival, run the op, then busy-spin the
				// drawn service time. Sojourn is measured from the
				// scheduled arrival, so a backlogged worker accrues its
				// queueing delay.
				gen := wl.ArrivalsFor(id).Gen(id, cfg.Seed)
				var arrival int64
				for budget.TryClaim() {
					gap, svc := gen.Next()
					arrival += gap
					for time.Since(start).Microseconds() < arrival {
						runtime.Gosched()
					}
					if ch.Next() == metrics.OpAdd {
						h.Put(0)
					} else {
						h.Get()
					}
					if svc > 0 {
						until := arrival + svc
						if now := time.Since(start).Microseconds(); now > arrival {
							until = now + svc
						}
						for time.Since(start).Microseconds() < until {
							runtime.Gosched()
						}
					}
					sojourns[id].Record(time.Since(start).Microseconds() - arrival)
					tick()
				}
				h.Close()
				return
			}
			// A killed worker idles off the budget until revived (or the
			// budget runs out); its next operation re-registers the handle.
			downWait := func() bool {
				if !churnOn || p.Alive(id) {
					return false
				}
				runtime.Gosched()
				return !budget.Exhausted()
			}
			if wl.Model == workload.Burst {
				batch := make([]int, wl.BatchSize)
				for {
					if downWait() {
						continue
					}
					// An online controller (adaptive policy) may retune
					// the batch between operations, exactly as in the
					// simulator's burst loop.
					want := h.BatchSize(wl.BatchSize)
					if want > len(batch) {
						batch = make([]int, want)
					}
					take := budget.TryClaimN(want)
					if take == 0 {
						break
					}
					if ch.NextBatch(take) == metrics.OpAdd {
						h.PutAll(batch[:take])
					} else {
						consumed := len(h.GetN(take))
						if consumed == 0 {
							consumed = 1 // an abort costs one unit
						}
						budget.Refund(take - consumed)
					}
					tick()
					runtime.Gosched()
				}
				h.Close()
				return
			}
			for {
				if downWait() {
					continue
				}
				if !budget.TryClaim() {
					break
				}
				if ch.Next() == metrics.OpAdd {
					h.Put(0)
				} else {
					h.Get()
				}
				// Yield between operations so the shared budget is
				// spread across all workers even on GOMAXPROCS=1 (the
				// paper's processes each ran on their own processor;
				// without this, one goroutine's cheap aborted removes
				// can burn the whole budget before producers run).
				tick()
				runtime.Gosched()
			}
			// Withdraw so stragglers stuck searching can abort.
			h.Close()
		}(id)
	}
	kills, revives := 0, 0
	if churnOn {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Wall-clock chaos driver: gaps and downtimes are µs sleeps,
			// chopped so budget exhaustion ends the schedule promptly.
			wait := func(us int64) bool {
				const step = 200 * time.Microsecond
				deadline := time.Now().Add(time.Duration(us) * time.Microsecond)
				for time.Now().Before(deadline) {
					if budget.Exhausted() {
						return false
					}
					time.Sleep(step)
				}
				return !budget.Exhausted()
			}
			gen := cfg.Churn.Gen(cfg.Seed)
			for {
				gap := gen.NextGap()
				if gap < 0 || !wait(gap) {
					return
				}
				t := gen.PickVictim(wl.Procs)
				if !p.Kill(t, cfg.Churn.Drain) {
					continue // refused (last live member); retry next gap
				}
				kills++
				stop := !wait(cfg.Churn.ReviveAfter)
				if p.Revive(t) {
					revives++
				}
				if stop {
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	return RealRunResult{
		Stats:     p.Stats(),
		Elapsed:   elapsed,
		Remaining: p.Len(),
		Sojourns:  sojourns,
		Timelines: p.Timelines(),
		Kills:     kills,
		Revives:   revives,
	}, nil
}

// RealCompare runs the three algorithms on the same wall-clock workload
// and returns one Point per algorithm (X encodes the search kind).
func RealCompare(wl workload.Config, trials int, seed uint64) (map[search.Kind]Point, error) {
	out := make(map[search.Kind]Point, 3)
	for _, kind := range search.Kinds() {
		var pt Point
		n := float64(trials)
		for trial := 0; trial < trials; trial++ {
			res, err := RealRun(RealRunConfig{
				Workload: wl,
				Search:   kind,
				Seed:     rng.SubSeed(seed, trial),
			})
			if err != nil {
				return nil, err
			}
			st := res.Stats
			pt.AvgOpTime += st.AvgOpTime() / n
			pt.SegmentsExamined += st.SegmentsExamined.Mean() / n
			pt.ElementsStolen += st.ElementsStolen.Mean() / n
			pt.StealFraction += st.StealFraction() / n
			if ops := float64(st.OpCount()); ops > 0 {
				pt.StealsPerOp += float64(st.Steals) / ops / n
			}
			pt.MixAchieved += st.MixAchieved() / n
		}
		pt.X = float64(kind)
		out[kind] = pt
	}
	return out, nil
}
