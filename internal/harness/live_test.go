package harness

import (
	"testing"

	"pools/internal/search"
	"pools/internal/workload"
)

// TestStartLive observes a wall-clock run from the outside while its
// workers are mutating their collectors — the exact access pattern the
// introspection endpoint performs — so the race detector can vouch for
// the publish-under-mutex design.
func TestStartLive(t *testing.T) {
	const total = 20000
	live := StartLive(RealRunConfig{
		Workload: workload.Config{
			Procs:           4,
			Model:           workload.RandomOps,
			AddFraction:     0.5,
			TotalOps:        total,
			InitialElements: 64,
		},
		Search:   search.Tree,
		Seed:     3,
		TraceBuf: 256,
	})

	// Hammer the observer API until the run finishes.
	var lastOps int64
	for alive := true; alive; {
		select {
		case <-live.Done():
			alive = false
		default:
		}
		st := live.Stats()
		if st.Ops() < lastOps {
			// Merged published snapshots only ever grow.
			t.Fatalf("live ops went backwards: %d -> %d", lastOps, st.Ops())
		}
		lastOps = st.Ops()
		for _, tl := range live.Timelines() {
			_ = len(tl.Events)
		}
		_ = live.Timeline(0)
	}

	res, err := live.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.Ops() + res.Stats.Aborts; got != total {
		t.Errorf("ops+aborts = %d, want %d", got, total)
	}
	// After completion Stats returns the authoritative final merge.
	final := live.Stats()
	if final.Ops() != res.Stats.Ops() {
		t.Errorf("post-done Stats = %d ops, result says %d", final.Ops(), res.Stats.Ops())
	}
	if len(live.Timelines()) != 4 {
		t.Errorf("timelines = %d, want 4", len(live.Timelines()))
	}
	if tl := live.Timeline(0); tl.Handle != 0 || len(tl.Events) == 0 {
		t.Errorf("handle 0 timeline empty (handle=%d, %d events)", tl.Handle, len(tl.Events))
	}
	if tl := live.Timeline(99); len(tl.Events) != 0 {
		t.Error("out-of-range handle returned events")
	}
}

// TestEventTraceRun pins the density resampling: buckets hold every
// recorded event exactly once and the table columns agree with the raw
// timelines.
func TestEventTraceRun(t *testing.T) {
	cfg := Config{Trials: 1, Seed: 11, Procs: 8, Ops: 2000, Fill: 64}
	r := EventTraceRun(cfg, search.Tree, 5, 1)
	if len(r.Timelines) != 8 || len(r.Density) != 8 {
		t.Fatalf("got %d timelines, %d density rows, want 8", len(r.Timelines), len(r.Density))
	}
	if r.Dropped != 0 {
		t.Errorf("dropped %d events at EventTraceBuf=%d", r.Dropped, EventTraceBuf)
	}
	for h, tl := range r.Timelines {
		var sum int64
		for _, c := range r.Density[h] {
			sum += c
		}
		if sum != int64(len(tl.Events)) {
			t.Errorf("handle %d: density sums to %d, timeline has %d events", h, sum, len(tl.Events))
		}
	}
	if out := RenderEventTrace(r); out == "" {
		t.Error("empty render")
	}
	csv := EventTraceCSV(r)
	if len(csv) == 0 || csv[:3] != "ts," {
		t.Error("CSV missing header")
	}
}
