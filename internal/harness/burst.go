package harness

import (
	"fmt"

	"pools/internal/plot"
	"pools/internal/search"
	"pools/internal/sim"
	"pools/internal/workload"
)

// This file measures the batch-operation extension: the paper shows pool
// throughput is dominated by how rarely an operation leaves its local
// segment; batching pushes the same lever from the other side, amortizing
// one segment acquisition over k elements. The burst workload replays the
// producer/consumer model with every process moving elements in batches
// (PutAll/GetN), sweeping the batch size.

// BurstBatchSweep returns the default batch sizes for the burst sweep.
// Batch 1 is the degenerate case, equivalent in work to the paper's
// single-element producer/consumer model.
func BurstBatchSweep() []int { return []int{1, 2, 4, 8, 16, 32, 64} }

// BurstRow is one batch-size measurement.
type BurstRow struct {
	Batch int
	Point Point
}

// BurstSweep runs the burst workload at each batch size and averages the
// usual measurements per data point. Producers are balanced around the
// ring (the Section 4.2 lesson applied); per-element time is the headline:
// it should fall as the batch grows, because one segment access — and one
// queueing exposure at a contended segment — now covers the whole batch.
func BurstSweep(cfg Config, kind search.Kind, producers int, batches []int) []BurstRow {
	c := cfg.withDefaults()
	var out []BurstRow
	for _, bs := range batches {
		bs := bs
		pt := c.average(float64(bs), func(seed uint64) sim.RunResult {
			w := c.workloadFor(workload.Burst)
			w.Producers = producers
			w.Arrangement = workload.Balanced
			w.BatchSize = bs
			return sim.Run(sim.RunConfig{
				Workload: w, Search: kind, Costs: c.Costs, Seed: seed,
			})
		})
		out = append(out, BurstRow{Batch: bs, Point: pt})
	}
	return out
}

// RenderBurst draws the burst sweep chart and table.
func RenderBurst(kind search.Kind, rows []BurstRow) string {
	s := plot.Series{Name: "per-element time"}
	for _, r := range rows {
		s.X = append(s.X, float64(r.Batch))
		s.Y = append(s.Y, r.Point.PerElementTime)
	}
	chart := plot.LineChart(
		fmt.Sprintf("Burst workload: per-element operation time vs batch size (%s search)", kind),
		"batch size (elements per PutAll/GetN)", "per-element time (virt µs)",
		70, 16,
		[]plot.Series{s},
	)
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Batch),
			fmtF(r.Point.PerElementTime),
			fmtF(r.Point.AvgOpTime),
			fmtF(r.Point.ElementsStolen),
			fmtF(r.Point.StealsPerOp),
			fmtF(r.Point.MakespanMean / 1000),
		})
	}
	table := plot.Table([]string{
		"batch", "µs/element", "µs/op", "stolen/steal", "steals/op", "makespan (ms)",
	}, cells)
	return chart + "\n" + table
}

// BurstCSV emits the sweep as comma-separated values.
func BurstCSV(rows []BurstRow) string {
	header := []string{"batch", "per_element_us", "avg_op_us", "stolen_per_steal", "steals_per_op", "makespan_us"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Batch),
			fmt.Sprintf("%.2f", r.Point.PerElementTime),
			fmt.Sprintf("%.2f", r.Point.AvgOpTime),
			fmt.Sprintf("%.2f", r.Point.ElementsStolen),
			fmt.Sprintf("%.4f", r.Point.StealsPerOp),
			fmt.Sprintf("%.0f", r.Point.MakespanMean),
		})
	}
	return plot.CSV(header, out)
}
