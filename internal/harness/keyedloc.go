package harness

import (
	"fmt"

	"pools/internal/keyed"
	"pools/internal/numa"
	"pools/internal/plot"
	"pools/internal/policy"
	"pools/internal/rng"
)

// This file measures the keyed pool's topology-aware sweep. The keyed
// pool (internal/keyed) walks the segment ring when a class misses
// locally; a VictimOrder that implements policy.Ranker reorders that walk.
// On a clustered machine the question is the same one the hierarchical
// sweep asks of the plain pool: how many of those probes cross a cluster
// boundary? The keyed pool has no virtual clock, so the experiment counts
// probes (keyed.Pool.ProbeStats) and prices them under the cost model —
// the counts are workload-determined, the price scales with the swept
// per-hop delay.

// KeyedLocOrderNames lists the sweep orders compared: the default ring
// walk, the cost-ranked order, and cluster-first hierarchical rings.
func KeyedLocOrderNames() []string { return []string{"ring", "locality", "hier"} }

// keyedLocSet builds the policy set for one keyed sweep order. Note that
// LocalityOrder ranks by the cost model, so at zero added delay (a
// victim-uniform model) it degenerates to the ring walk, while
// HierarchicalOrder ranks by the topology's rings regardless of scale.
func keyedLocSet(name string, costs numa.CostModel, topo numa.Topology) policy.Set {
	switch name {
	case "ring":
		return policy.Set{}
	case "locality":
		return policy.Set{Order: policy.LocalityOrder{Model: costs}}
	case "hier":
		return policy.Set{Order: policy.HierarchicalOrder{Topo: topo}}
	default:
		panic(fmt.Sprintf("harness: unknown keyed sweep order %q", name))
	}
}

// KeyedLocRow is one (sweep order, delay scale) measurement.
type KeyedLocRow struct {
	Order        string
	DelayUS      int64
	ProbesPerGet float64 // remote probes per completed Get
	CrossFrac    float64 // fraction of remote probes crossing a cluster
	CostPerGet   float64 // modeled probe cost per Get (virt µs)
	Misses       int64   // Gets that found no element of their class
}

// KeyedLocalitySweep drives a clustered keyed workload under each sweep
// order and delay scale: every handle produces elements of its own class
// (so each class is homed at its own segment) and consumes classes biased
// three-to-one toward its own cluster — the locality a clustered machine
// rewards. Expected shape: the ring walk wanders across cluster
// boundaries on most sweeps, so its cross fraction is high at every
// scale; the hierarchical rank stays near first and its cross fraction is
// structurally lower, with the modeled probe cost diverging linearly in
// the delay scale; the locality rank matches ring at scale 0 (a
// victim-uniform model ranks nothing) and joins hier once the scale makes
// costs non-uniform.
func KeyedLocalitySweep(cfg Config, scales []int64) []KeyedLocRow {
	c := cfg.withDefaults()
	topo := numa.Clusters{Size: LocalityClusterSize}
	farHops := int64(topo.Distance(0, LocalityClusterSize)) // cross-cluster hop count
	var out []KeyedLocRow
	for _, name := range KeyedLocOrderNames() {
		for _, d := range scales {
			costs := c.Costs.WithTopology(topo).WithExtraDelay(d)
			p, err := keyed.New[int, int](keyed.Options{
				Segments: c.Procs,
				Policies: keyedLocSet(name, costs, topo),
				Topology: topo,
			})
			if err != nil {
				panic(err) // programmer error: the config is static
			}
			// Home Fill elements: class s lives at segment s.
			per := c.Fill / c.Procs
			if per < 1 {
				per = 1
			}
			for s := 0; s < c.Procs; s++ {
				for j := 0; j < per; j++ {
					p.Handle(s).Put(s, j)
				}
			}
			x := rng.NewXoshiro256(rng.SubSeed(c.Seed, int(d)))
			var misses int64
			size := LocalityClusterSize
			for i := 0; i < c.Ops; i++ {
				h := p.Handle(i % c.Procs)
				// Replenish the handle's own class so the pool never
				// drains (a drained pool costs every order one full
				// sweep per Get, erasing the ordering signal).
				h.Put(h.ID(), i)
				var k int
				if i%4 != 3 {
					k = (h.ID()/size)*size + int(x.Next()%uint64(size))
				} else {
					k = int(x.Next() % uint64(c.Procs))
				}
				if _, ok := h.Get(k); !ok {
					misses++
				}
			}
			remote, cross := p.ProbeStats()
			near := remote - cross
			remoteProbe := costs.ProbeCost * costs.RemoteFactor
			cost := float64(near)*float64(remoteProbe+d) + float64(cross)*float64(remoteProbe+d*farHops)
			gets := float64(c.Ops)
			row := KeyedLocRow{
				Order:        name,
				DelayUS:      d,
				ProbesPerGet: float64(remote) / gets,
				CostPerGet:   cost / gets,
				Misses:       misses,
			}
			if remote > 0 {
				row.CrossFrac = float64(cross) / float64(remote)
			}
			out = append(out, row)
		}
	}
	return out
}

// RenderKeyedLoc draws the keyed sweep: modeled probe cost per Get across
// the delay scales, one series per sweep order, plus the measurement
// table.
func RenderKeyedLoc(rows []KeyedLocRow) string {
	series := map[string]*plot.Series{}
	var order []string
	for _, r := range rows {
		s := series[r.Order]
		if s == nil {
			s = &plot.Series{Name: r.Order}
			series[r.Order] = s
			order = append(order, r.Order)
		}
		s.X = append(s.X, float64(r.DelayUS))
		s.Y = append(s.Y, r.CostPerGet)
	}
	var ss []plot.Series
	for _, name := range order {
		ss = append(ss, *series[name])
	}
	chart := plot.LineChart(
		fmt.Sprintf("Keyed locality sweep: modeled probe cost per Get vs added remote delay (%d-proc clusters)", LocalityClusterSize),
		"added delay per remote op (virt µs)", "probe cost per Get (virt µs)",
		70, 14,
		ss,
	)
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Order,
			fmt.Sprintf("%d", r.DelayUS),
			fmt.Sprintf("%.2f", r.ProbesPerGet),
			fmt.Sprintf("%.3f", r.CrossFrac),
			fmtF(r.CostPerGet),
			fmt.Sprintf("%d", r.Misses),
		})
	}
	table := plot.Table([]string{
		"order", "delay (µs)", "probes/get", "cross-frac", "probe µs/get", "misses",
	}, cells)
	return chart + "\n" + table
}

// KeyedLocCSV emits the sweep as comma-separated values.
func KeyedLocCSV(rows []KeyedLocRow) string {
	header := []string{"order", "delay_us", "probes_per_get", "cross_frac", "probe_cost_per_get", "misses"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Order,
			fmt.Sprintf("%d", r.DelayUS),
			fmt.Sprintf("%.3f", r.ProbesPerGet),
			fmt.Sprintf("%.4f", r.CrossFrac),
			fmt.Sprintf("%.2f", r.CostPerGet),
			fmt.Sprintf("%d", r.Misses),
		})
	}
	return plot.CSV(header, out)
}
