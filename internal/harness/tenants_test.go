package harness

import (
	"reflect"
	"strings"
	"testing"

	"pools/internal/search"
	"pools/internal/workload"
)

func tenantTestCfg() Config {
	return Config{Trials: 1, Seed: 1989, Ops: 1500}
}

func TestTenantSweep(t *testing.T) {
	counts := []int{2}
	skews := []float64{0, 1.4}
	rows := TenantSweep(tenantTestCfg(), counts, skews)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Tenants != 2 || len(r.Points) != 2 {
			t.Fatalf("row %+v: want 2 tenants with 2 points", r)
		}
		worst := 0.0
		for _, p := range r.Points {
			if p.Ops == 0 {
				t.Errorf("tenant %d at skew %v completed no operations", p.Tenant, r.Skew)
			}
			if p.Procs == 0 || p.Lambda <= 0 {
				t.Errorf("tenant point not populated: %+v", p)
			}
			if !(p.P50 <= p.P99 && p.P99 <= p.P999) {
				t.Errorf("percentiles not ordered: %+v", p)
			}
			if p.Interference < 0 || p.Interference > 1 {
				t.Errorf("interference %v outside [0,1]", p.Interference)
			}
			if p.P99 > worst {
				worst = p.P99
			}
		}
		if r.WorstP99 != worst {
			t.Errorf("WorstP99 = %v, want max point p99 %v", r.WorstP99, worst)
		}
	}
	// Uniform tenants share the base rate; skew concentrates it on tenant
	// 0 and the hot tenant's tail is the one that grows.
	uniform, skewed := rows[0], rows[1]
	if uniform.Points[0].Lambda != uniform.Points[1].Lambda {
		t.Error("skew 0 must give equal per-tenant lambdas")
	}
	if skewed.Points[0].Lambda <= skewed.Points[1].Lambda {
		t.Error("skew must make tenant 0 the hot one")
	}
	if skewed.Points[0].P99 <= skewed.Points[1].P99 {
		t.Errorf("hot tenant p99 %v not above cold %v under skew",
			skewed.Points[0].P99, skewed.Points[1].P99)
	}

	// The sweep is deterministic in its Config.
	again := TenantSweep(tenantTestCfg(), counts, skews)
	if !reflect.DeepEqual(rows, again) {
		t.Error("TenantSweep is not deterministic")
	}
}

func TestRenderTenantsAndCSV(t *testing.T) {
	rows := TenantSweep(tenantTestCfg(), []int{2}, []float64{0.7})
	out := RenderTenants(rows)
	for _, want := range []string{"worst-tenant p99", "lambda skew", "interf", "p999 µs"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
	csv := TenantsCSV(rows)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 { // header + one line per tenant
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "tenants,skew,tenant,procs,lambda_per_proc") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

// TestRealRunOpenLoop smokes the wall-clock open-loop driver: arrivals at
// a rate the host easily sustains, per-worker sojourn histograms
// populated for every completed operation.
func TestRealRunOpenLoop(t *testing.T) {
	wl := workload.Config{
		Procs:           4,
		TotalOps:        400,
		InitialElements: 32,
		Model:           workload.OpenLoop,
		AddFraction:     0.5,
		Arrivals:        workload.Arrivals{Lambda: 0.05, ServiceMean: 5},
		Tenants:         2,
		TenantSkew:      1,
	}
	res, err := RealRun(RealRunConfig{Workload: wl, Search: search.Linear, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sojourns) != wl.Procs {
		t.Fatalf("got %d sojourn histograms, want %d", len(res.Sojourns), wl.Procs)
	}
	var n int64
	for i := range res.Sojourns {
		n += res.Sojourns[i].N()
	}
	if n != int64(wl.TotalOps) {
		t.Errorf("recorded %d sojourns, want %d (one per claimed op)", n, wl.TotalOps)
	}
}
