package harness

import (
	"fmt"

	"pools/internal/numa"
	"pools/internal/plot"
	"pools/internal/policy"
	"pools/internal/search"
	"pools/internal/sim"
	"pools/internal/workload"
)

// This file measures the hierarchical-steal extension. The locality sweep
// (locality.go) showed a cost-ranked victim order pulling ahead of the
// paper's blind searches once "remote" stops being one cost; the
// hierarchical sweep asks the follow-on question: is ranking enough, or
// should a searcher *refuse* to cross a cluster boundary until its own
// cluster has proven fruitless? policy.HierarchicalOrder escalates
// through hop rings under a tunable fruitless-probe threshold, and
// policy.GiftToNearestEmptiest attacks the same cost from the add side —
// both are judged here by the fraction of remote probes that cross a
// cluster boundary (the dominant cost on loosely-coupled machines) next
// to the usual average operation time.

// HierOrderNames lists the configurations the hierarchical sweep
// compares: two flat paper orders, the cost-ranked order, hierarchical
// escalation (static threshold and per-handle-tuned), and hierarchical
// stealing paired with the topology-aware placement. (On the two-ring
// cluster topology the default-threshold hierarchical searcher coincides
// with the cost-ranked order whenever the delay scale is non-zero — both
// walk cluster-first in ring order — so the rows that separate "hier"
// from "locality" are scale 0, where locality has nothing to rank, and
// the tuned/placement variants.)
func HierOrderNames() []string {
	return []string{"linear", "random", "locality", "hier", "hier-adaptive", "hier-place"}
}

// hierSet builds a fresh policy set for one hierarchical-sweep
// configuration under the given cost model and topology.
func hierSet(name string, costs numa.CostModel, topo numa.Topology) policy.Set {
	switch name {
	case "linear":
		return policy.Set{Order: policy.Order{Kind: search.Linear}}
	case "random":
		return policy.Set{Order: policy.Order{Kind: search.Random}}
	case "locality":
		return policy.Set{Order: policy.LocalityOrder{Model: costs}}
	case "hier":
		return policy.Set{Order: policy.HierarchicalOrder{Topo: topo}}
	case "hier-adaptive":
		// Fresh per trial: each handle's spawned controller is both its
		// steal amount and its escalation tuner (policy.Escalator).
		p := policy.NewPerHandle()
		return policy.Set{Order: policy.HierarchicalOrder{Topo: topo}, Steal: p, Control: p}
	case "hier-place":
		return policy.Set{
			Order: policy.HierarchicalOrder{Topo: topo},
			Place: policy.GiftToNearestEmptiest{Model: costs},
		}
	default:
		panic(fmt.Sprintf("harness: unknown hierarchical configuration %q", name))
	}
}

// HierRow is one (configuration, delay scale) measurement. Topo names
// the hop topology the sweep ran on, so the two-level and three-level
// sweeps' CSV rows stay distinguishable when concatenated.
type HierRow struct {
	Order   string
	Topo    string
	DelayUS int64
	Point   Point
}

// HierSweep runs the sparse random-operations workload on the clustered
// machine at each added remote delay under each configuration. Expected
// shape: the hierarchical orders hold a structurally lower cross-cluster
// probe fraction than the flat orders at every delay (they re-probe the
// near ring before crossing), and as the delay scale grows that
// discipline compounds — each avoided crossing is worth Far hops of
// RemoteExtra — so their operation-time curves pull below the flat
// orders' alongside (and then past) the merely-ranked locality order.
func HierSweep(cfg Config, scales []int64) []HierRow {
	return hierSweepOn(cfg, scales, numa.Clusters{Size: LocalityClusterSize})
}

// DeepTopology is the three-level machine the deep hierarchical sweep
// runs on: 16 paper processors as eight 2-processor boards in two
// 8-processor cabinets (numa.NestedClusters{Inner: 2, Outer: 8}) — hop
// distances 1 (board), 2 (cabinet), 4 (machine). Each searcher's
// escalation ladder has three rings here, so the threshold fires twice
// per fully-fruitless search instead of once.
func DeepTopology() numa.Topology { return numa.NestedClusters{Inner: 2, Outer: 8} }

// HierDeepSweep is HierSweep on the three-level DeepTopology — the
// deeper-than-two-level machine the escalation ladder supports but the
// two-level sweep never exercises. The cross-probe fraction counts every
// probe that leaves the searcher's inner cluster (hop distance > 1), so
// hierarchical orders start from a higher flat baseline here (any
// off-board probe is "cross") and the discipline of climbing board →
// cabinet → machine shows up as a larger relative reduction.
func HierDeepSweep(cfg Config, scales []int64) []HierRow {
	return hierSweepOn(cfg, scales, DeepTopology())
}

// hierSweepOn runs the hierarchical sweep on one hop topology.
func hierSweepOn(cfg Config, scales []int64, topo numa.Topology) []HierRow {
	c := cfg.withDefaults()
	base := c.Costs.WithTopology(topo)
	var out []HierRow
	for _, name := range HierOrderNames() {
		for _, d := range scales {
			name, d := name, d
			costs := base.WithExtraDelay(d)
			cd := c
			cd.Costs = costs
			pt := cd.average(float64(d), func(seed uint64) sim.RunResult {
				w := cd.workloadFor(workload.RandomOps)
				w.AddFraction = LocalityMix
				return sim.Run(sim.RunConfig{
					Workload: w, Search: search.Linear, Costs: costs,
					Seed: seed, Policies: hierSet(name, costs, topo),
				})
			})
			out = append(out, HierRow{Order: name, Topo: topo.Name(), DelayUS: d, Point: pt})
		}
	}
	return out
}

// RenderHier draws the hierarchical sweep: the cross-cluster probe
// fraction per configuration across the delay scales (the discipline the
// policy exists to enforce), the average-operation-time chart, and the
// measurement table with a hier/best-flat time ratio column (< 1.0 means
// cluster-first escalation beat every flat order at that delay).
func RenderHier(rows []HierRow) string {
	return renderHier(rows, fmt.Sprintf("%d-proc clusters", LocalityClusterSize))
}

// RenderHierDeep draws the deep sweep (HierDeepSweep) with the
// three-level topology named in the chart titles.
func RenderHierDeep(rows []HierRow) string {
	return renderHier(rows, DeepTopology().Name()+" three-level topology")
}

// renderHier renders one hierarchical sweep, labelling the charts with
// the topology description.
func renderHier(rows []HierRow, label string) string {
	frac := map[string]*plot.Series{}
	times := map[string]*plot.Series{}
	var order []string
	for _, r := range rows {
		f := frac[r.Order]
		if f == nil {
			f = &plot.Series{Name: r.Order}
			frac[r.Order] = f
			times[r.Order] = &plot.Series{Name: r.Order}
			order = append(order, r.Order)
		}
		f.X = append(f.X, float64(r.DelayUS))
		f.Y = append(f.Y, r.Point.CrossProbeFrac)
		times[r.Order].X = append(times[r.Order].X, float64(r.DelayUS))
		times[r.Order].Y = append(times[r.Order].Y, r.Point.AvgOpTime)
	}
	var fs, ts []plot.Series
	for _, name := range order {
		fs = append(fs, *frac[name])
		ts = append(ts, *times[name])
	}
	fracChart := plot.LineChart(
		fmt.Sprintf("Hierarchical sweep: cross-cluster probe fraction vs added remote delay (%s)", label),
		"added delay per remote op (virt µs)", "cross-cluster probe fraction",
		70, 14,
		fs,
	)
	timeChart := plot.LineChart(
		fmt.Sprintf("Hierarchical sweep: avg operation time vs added remote delay (%s)", label),
		"added delay per remote op (virt µs)", "avg op time (virt µs)",
		70, 14,
		ts,
	)
	// Best flat (locality-blind, non-hierarchical) time per delay for the
	// ratio column.
	bestFlat := map[int64]float64{}
	for _, r := range rows {
		if r.Order != "linear" && r.Order != "random" {
			continue
		}
		if v, ok := bestFlat[r.DelayUS]; !ok || r.Point.AvgOpTime < v {
			bestFlat[r.DelayUS] = r.Point.AvgOpTime
		}
	}
	var cells [][]string
	for _, r := range rows {
		ratio := "-"
		if r.Order == "hier" && bestFlat[r.DelayUS] > 0 {
			ratio = fmt.Sprintf("%.3f", r.Point.AvgOpTime/bestFlat[r.DelayUS])
		}
		cells = append(cells, []string{
			r.Order,
			fmt.Sprintf("%d", r.DelayUS),
			fmt.Sprintf("%.3f", r.Point.CrossProbeFrac),
			fmtF(r.Point.AvgOpTime),
			fmtF(r.Point.SegmentsExamined),
			fmtF(r.Point.StealsPerOp),
			fmtF(r.Point.AbortsPerOp),
			ratio,
		})
	}
	table := plot.Table([]string{
		"order", "delay (µs)", "cross-frac", "µs/op", "segs/steal", "steals/op", "aborts/op", "vs best flat",
	}, cells)
	return fracChart + "\n" + timeChart + "\n" + table
}

// HierCSV emits the sweep as comma-separated values. The topology column
// keeps rows from the two-level and three-level sweeps distinguishable
// when both blocks appear in one output.
func HierCSV(rows []HierRow) string {
	header := []string{"order", "topology", "delay_us", "cross_probe_frac", "avg_op_us", "segs_per_steal", "steals_per_op", "aborts_per_op", "makespan_us"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Order,
			r.Topo,
			fmt.Sprintf("%d", r.DelayUS),
			fmt.Sprintf("%.4f", r.Point.CrossProbeFrac),
			fmt.Sprintf("%.2f", r.Point.AvgOpTime),
			fmt.Sprintf("%.2f", r.Point.SegmentsExamined),
			fmt.Sprintf("%.4f", r.Point.StealsPerOp),
			fmt.Sprintf("%.4f", r.Point.AbortsPerOp),
			fmt.Sprintf("%.0f", r.Point.MakespanMean),
		})
	}
	return plot.CSV(header, out)
}
