package harness

import (
	"strings"
	"testing"

	"pools/internal/search"
)

// TestLocalitySweepBeatsBlindAtScale is the tentpole acceptance bar: at
// the largest swept delay the cost-ranked order's average operation time
// must beat both structurally blind orders (random and tree) and stay
// within 10% of linear, the strongest blind order; at zero delay it must
// match linear exactly (it falls back to it).
func TestLocalitySweepBeatsBlindAtScale(t *testing.T) {
	cfg := Config{Trials: 2, Seed: 1989, Ops: 1200, Fill: 96}
	scales := []int64{0, 5000}
	rows := LocalitySweep(cfg, scales)
	if len(rows) != len(scales)*len(LocalityOrderNames()) {
		t.Fatalf("sweep produced %d rows, want %d", len(rows), len(scales)*len(LocalityOrderNames()))
	}
	at := func(order string, d int64) Point {
		for _, r := range rows {
			if r.Order == order && r.DelayUS == d {
				return r.Point
			}
		}
		t.Fatalf("row (%s, %d) missing", order, d)
		return Point{}
	}
	const top = 5000
	loc := at("locality", top).AvgOpTime
	if ran := at("random", top).AvgOpTime; loc >= ran {
		t.Fatalf("locality %.0f >= random %.0f at delay %d", loc, ran, top)
	}
	if tr := at("tree", top).AvgOpTime; loc >= tr {
		t.Fatalf("locality %.0f >= tree %.0f at delay %d", loc, tr, top)
	}
	if lin := at("linear", top).AvgOpTime; loc > lin*1.10 {
		t.Fatalf("locality %.0f more than 10%% above linear %.0f at delay %d", loc, lin, top)
	}
	if l0, lin0 := at("locality", 0), at("linear", 0); l0.AvgOpTime != lin0.AvgOpTime {
		t.Fatalf("at zero delay locality %.2f != linear %.2f (fallback must coincide)", l0.AvgOpTime, lin0.AvgOpTime)
	}
}

// TestRenderLocality checks the figure, table, and CSV carry the sweep.
func TestRenderLocality(t *testing.T) {
	cfg := Config{Trials: 1, Seed: 7, Ops: 600, Fill: 64}
	rows := LocalitySweep(cfg, []int64{0, 1000})
	out := RenderLocality(rows)
	for _, want := range []string{"Locality sweep", "clustered topology", "locality", "vs best blind", "added delay"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	csv := LocalityCSV(rows)
	if !strings.Contains(csv, "order,delay_us,avg_op_us") {
		t.Errorf("CSV header missing:\n%s", csv)
	}
	if got := strings.Count(csv, "\n"); got != len(rows)+1 {
		t.Errorf("CSV has %d lines, want %d", got, len(rows)+1)
	}
}

// TestControlTraceRunDiverges checks the trace experiment's headline:
// producers hold the steal-half fraction while at least one consumer's
// trajectory leaves it, and the render/CSV carry per-handle rows.
func TestControlTraceRunDiverges(t *testing.T) {
	cfg := Config{Trials: 1, Seed: 1989, Ops: 2000, Fill: 128}
	res := ControlTraceRun(cfg, search.Tree, 5, 1)
	if len(res.FracSampled) != 16 || len(res.FinalFrac) != 16 {
		t.Fatalf("trajectories for %d handles, want 16", len(res.FracSampled))
	}
	moved := false
	for h, frac := range res.FinalFrac {
		if res.Producers[h] {
			if frac != 0.5 {
				t.Fatalf("producer %d final fraction %v, want 0.5", h, frac)
			}
		} else if frac != 0.5 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("no consumer fraction left steal-half: per-handle control invisible")
	}
	out := RenderControlTrace(res)
	for _, want := range []string{"Controller trajectories", "handle  0 P", "final steal fraction", "steal fraction (permil)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// The cross-probe trajectories ride along: panels in the render, a
	// cross_permil column in the CSV, and — with contiguous producers on
	// the clustered topology — at least one consumer that had to cross a
	// boundary to eat.
	if !strings.Contains(out, "Cross-cluster probe fraction per handle") {
		t.Error("render missing the cross-probe panels")
	}
	crossed := false
	for h := range res.FinalCross {
		if res.FinalCross[h] > 0 {
			crossed = true
		}
	}
	if !crossed {
		t.Error("no handle shows a cross-cluster probe fraction: trace accounting lost")
	}
	csv := ControlTraceCSV(res)
	if !strings.Contains(csv, "handle,role,sample,frac_permil,batch,cross_permil") {
		t.Errorf("CSV header missing:\n%s", csv)
	}
	if got := strings.Count(csv, "\n"); got != 16*100+1 {
		t.Errorf("CSV has %d lines, want %d", got, 16*100+1)
	}
}
