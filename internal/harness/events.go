package harness

import (
	"bytes"
	"fmt"

	"pools/internal/metrics"
	"pools/internal/numa"
	"pools/internal/plot"
	"pools/internal/policy"
	"pools/internal/rng"
	"pools/internal/search"
	"pools/internal/sim"
	"pools/internal/trace"
	"pools/internal/workload"
)

// EventTraceBuf is the per-handle flight-recorder capacity the event-trace
// experiment attaches. Large enough that the pinned burst run never drops
// an event; EventTraceResult.Dropped reports if a custom config overflows.
const EventTraceBuf = 4096

// EventTraceResult holds one flight-recorder run: the full per-handle
// event timelines plus an event-density resampling for the terminal
// panels. The run uses the same clustered burst producer/consumer
// configuration as the controller-trajectory experiment, so the two
// views line up: where the control trace shows a consumer's steal
// fraction climbing, the event trace shows the probe and transfer storm
// that drove it.
type EventTraceResult struct {
	Kind      search.Kind
	Batch     int
	Producers map[int]bool
	// Timelines are the raw per-handle recorder snapshots on the virtual
	// clock, exportable with trace.ChromeJSON or trace.WriteCSV.
	Timelines []trace.Timeline
	// Density[h] counts handle h's recorded events per uniform
	// virtual-time bucket — the rows of the terminal panel.
	Density [][]int64
	// Transfers[h] and Crosses[h] are handle h's reserve/transfer and
	// cross-cluster probe event totals, for the summary table.
	Transfers []int64
	Crosses   []int64
	Stats     metrics.PoolStats
	Makespan  int64
	// Dropped is the total number of events lost to ring-buffer
	// wraparound across all handles (0 at the default EventTraceBuf).
	Dropped uint64
}

// EventTraceRun executes one burst producer/consumer trial on the
// clustered topology with the flight recorder attached to every handle,
// and resamples each handle's event stream into uniform time buckets.
// Producers are contiguous (as in the locality sweep), so consumer
// handles far from any producer show dense probe/transfer activity while
// producer tracks stay sparse — the asymmetry the density panel exists
// to make visible.
func EventTraceRun(cfg Config, kind search.Kind, producers, batch int) EventTraceResult {
	c := cfg.withDefaults()
	set, err := policy.Named("per-handle")
	if err != nil {
		panic(err) // programmer error: the name is a registry constant
	}
	w := c.workloadFor(workload.Burst)
	w.Producers = producers
	w.Arrangement = workload.Contiguous
	w.BatchSize = batch
	res := sim.Run(sim.RunConfig{
		Workload: w, Search: kind,
		Costs: c.Costs.WithTopology(numa.Clusters{Size: LocalityClusterSize}),
		Seed:  rng.SubSeed(c.Seed, 0), Policies: set,
		EventBuf: EventTraceBuf,
	})

	out := EventTraceResult{
		Kind:      kind,
		Batch:     batch,
		Producers: map[int]bool{},
		Timelines: res.Events,
		Stats:     res.Stats,
		Makespan:  res.Makespan,
	}
	for _, p := range workload.ProducerPositions(c.Procs, producers, workload.Contiguous) {
		out.Producers[p] = true
	}

	const buckets = 100
	end := res.Makespan
	if end < 1 {
		end = 1
	}
	for _, tl := range res.Events {
		out.Dropped += tl.Dropped
		density := make([]int64, buckets)
		var transfers, crosses int64
		for _, ev := range tl.Events {
			b := int(ev.TS * buckets / end)
			if b < 0 {
				b = 0
			}
			if b >= buckets {
				b = buckets - 1
			}
			density[b]++
			switch ev.Kind {
			case trace.ReserveTransfer:
				transfers++
			case trace.ProbeCross:
				crosses++
			}
		}
		out.Density = append(out.Density, density)
		out.Transfers = append(out.Transfers, transfers)
		out.Crosses = append(out.Crosses, crosses)
	}
	return out
}

// RenderEventTrace draws the event-density panels — one row per handle
// over virtual time — and a per-handle activity table, footed by the
// run's one-line stats summary.
func RenderEventTrace(r EventTraceResult) string {
	title := fmt.Sprintf("Flight recorder: events per handle over time (%s search, burst batch %d, %d-proc clusters)",
		r.Kind, r.Batch, LocalityClusterSize)
	body := plot.TracePanels(title, "handle", "events per bucket", r.Density, r.Producers, "P", "C")
	var cells [][]string
	for h, tl := range r.Timelines {
		role := "consumer"
		if r.Producers[h] {
			role = "producer"
		}
		cells = append(cells, []string{
			fmt.Sprintf("%d", h),
			role,
			fmt.Sprintf("%d", len(tl.Events)),
			fmt.Sprintf("%d", r.Transfers[h]),
			fmt.Sprintf("%d", r.Crosses[h]),
			fmt.Sprintf("%d", tl.Dropped),
		})
	}
	table := plot.Table([]string{"handle", "role", "events", "transfers", "cross probes", "dropped"}, cells)
	return body + "\n" + table + "\n" + r.Stats.Summary() + "\n"
}

// EventTraceCSV emits the raw recorded events in long form (one row per
// event, merged across handles by virtual time) via trace.WriteCSV.
func EventTraceCSV(r EventTraceResult) string {
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, r.Timelines); err != nil {
		panic(err) // bytes.Buffer writes cannot fail
	}
	return buf.String()
}
