// Package harness defines one reproducible experiment per table and figure
// in the paper's evaluation (Section 4), plus the ablations DESIGN.md
// calls out. Every experiment runs on the virtual-time Butterfly
// (internal/sim), averages workload.PaperTrials seeded trials exactly as
// Section 3.4 prescribes, and renders its results as text tables and ASCII
// figures.
package harness

import (
	"fmt"

	"pools/internal/numa"
	"pools/internal/rng"
	"pools/internal/search"
	"pools/internal/sim"
	"pools/internal/workload"
)

// Config carries the experiment-wide knobs. Zero fields take paper
// defaults via withDefaults.
type Config struct {
	Trials int            // trials averaged per data point (default 10)
	Seed   uint64         // master seed; trial i uses SubSeed(Seed, i)
	Costs  numa.CostModel // access cost model (default ButterflyCosts)
	Procs  int            // processors/segments (default 16)
	Ops    int            // shared op budget per trial (default 5000)
	Fill   int            // initial elements (default 320)
}

// withDefaults fills unset fields with the paper's protocol values.
func (c Config) withDefaults() Config {
	if c.Trials == 0 {
		c.Trials = workload.PaperTrials
	}
	if c.Seed == 0 {
		c.Seed = 1989
	}
	if c.Costs == (numa.CostModel{}) {
		c.Costs = numa.ButterflyCosts()
	}
	if c.Procs == 0 {
		c.Procs = workload.PaperProcs
	}
	if c.Ops == 0 {
		c.Ops = workload.PaperTotalOps
	}
	if c.Fill == 0 {
		c.Fill = workload.PaperInitialElements
	}
	return c
}

// workloadFor builds the workload config for this experiment config.
func (c Config) workloadFor(model workload.Model) workload.Config {
	w := workload.Config{
		Procs:           c.Procs,
		Model:           model,
		Arrangement:     workload.Contiguous,
		TotalOps:        c.Ops,
		InitialElements: c.Fill,
	}
	return w
}

// Point is one averaged measurement set at one sweep position.
type Point struct {
	X float64 // sweep coordinate (job mix %, producer count, delay ...)

	AvgOpTime        float64 // µs, over adds + removes + aborts (Figure 2)
	PerElementTime   float64 // µs per element moved (AvgOpTime under batching)
	AvgAddTime       float64 // µs
	AvgRemoveTime    float64 // µs
	SegmentsExamined float64 // per steal
	ElementsStolen   float64 // per steal (Figure 7)
	StealFraction    float64 // fraction of removes requiring a steal
	StealsPerOp      float64 // steal frequency
	AbortsPerOp      float64 // abort frequency
	MixAchieved      float64 // fraction of completed ops that were adds
	MakespanMean     float64 // virtual µs
	CrossProbeFrac   float64 // fraction of remote probes crossing a cluster boundary
}

// average runs cfg.Trials simulated trials of run and averages the paper's
// measurements. run must honor the per-trial seed it receives.
func (c Config) average(x float64, run func(trialSeed uint64) sim.RunResult) Point {
	pt := Point{X: x}
	n := float64(c.Trials)
	for trial := 0; trial < c.Trials; trial++ {
		res := run(rng.SubSeed(c.Seed, trial))
		st := res.Stats
		pt.AvgOpTime += st.AvgOpTime() / n
		pt.PerElementTime += st.AvgTimePerElement() / n
		pt.AvgAddTime += st.AddTime.Mean() / n
		pt.AvgRemoveTime += st.RemoveTime.Mean() / n
		pt.SegmentsExamined += st.SegmentsExamined.Mean() / n
		pt.ElementsStolen += st.ElementsStolen.Mean() / n
		pt.StealFraction += st.StealFraction() / n
		// Per-operation rates: one batch PutAll/GetN is one operation,
		// so these stay comparable between batched and single-element runs.
		if ops := float64(st.OpCount()); ops > 0 {
			pt.StealsPerOp += float64(st.Steals) / ops / n
			pt.AbortsPerOp += float64(st.Aborts) / ops / n
		}
		pt.MixAchieved += st.MixAchieved() / n
		pt.MakespanMean += float64(res.Makespan) / n
		pt.CrossProbeFrac += st.CrossProbeFraction() / n
	}
	return pt
}

// runRandom executes one random-ops trial.
func (c Config) runRandom(kind search.Kind, addFraction float64, trialSeed uint64, stealOne bool) sim.RunResult {
	w := c.workloadFor(workload.RandomOps)
	w.AddFraction = addFraction
	return sim.Run(sim.RunConfig{
		Workload: w, Search: kind, Costs: c.Costs, Seed: trialSeed, StealOne: stealOne,
	})
}

// runPC executes one producer/consumer trial.
func (c Config) runPC(kind search.Kind, producers int, arr workload.Arrangement, trialSeed uint64, stealOne bool) sim.RunResult {
	w := c.workloadFor(workload.ProducerConsumer)
	w.Producers = producers
	w.Arrangement = arr
	return sim.Run(sim.RunConfig{
		Workload: w, Search: kind, Costs: c.Costs, Seed: trialSeed, StealOne: stealOne,
	})
}

// fmtF renders a float with sensible precision for tables.
func fmtF(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
