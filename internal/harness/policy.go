package harness

import (
	"fmt"

	"pools/internal/plot"
	"pools/internal/policy"
	"pools/internal/search"
	"pools/internal/sim"
	"pools/internal/workload"
)

// This file measures the policy subsystem (internal/policy): the same
// burst workload under every steal policy — the paper's steal-half, the
// steal-one ablation, the proportional-to-appetite split, and the online
// adaptive controller — swept across batch sizes, plus a fluctuating-
// roles variant where the producer set rotates during the run. The
// sweep's question is the paper's question generalized: which transfer
// policy minimizes per-element time once consumers ask for batches, and
// can an online controller match the best static choice without being
// told the workload?

// PolicyNames returns the steal policies the sweep compares, in
// presentation order (see policy.Named).
func PolicyNames() []string { return policy.Names() }

// PolicyRow is one (policy, batch size) measurement.
type PolicyRow struct {
	Policy string
	Batch  int
	Point  Point
}

// policyBurstRun executes one burst trial under a freshly constructed
// policy set (adaptive controllers carry state, so sharing one across
// trials would contaminate the average).
func (c Config) policyBurstRun(name string, kind search.Kind, producers, batch, flipEvery int, seed uint64) sim.RunResult {
	set, err := policy.Named(name)
	if err != nil {
		panic(err) // programmer error: sweep names come from PolicyNames
	}
	w := c.workloadFor(workload.Burst)
	w.Producers = producers
	w.Arrangement = workload.Balanced
	w.BatchSize = batch
	w.RoleFlipEvery = flipEvery
	return sim.Run(sim.RunConfig{
		Workload: w, Search: kind, Costs: c.Costs, Seed: seed, Policies: set,
	})
}

// PolicySweep runs the burst workload at each batch size under each steal
// policy, averaging the usual measurements per data point. Producers are
// balanced around the ring. Expected shape: steal-one pays a search per
// batch and stays flat and slow; steal-half amortizes; proportional
// tracks the requested batch exactly; adaptive should sit within a few
// percent of the best static policy at every batch size without being
// configured for any of them.
func PolicySweep(cfg Config, kind search.Kind, producers int, batches []int) []PolicyRow {
	c := cfg.withDefaults()
	var out []PolicyRow
	for _, name := range PolicyNames() {
		for _, bs := range batches {
			name, bs := name, bs
			pt := c.average(float64(bs), func(seed uint64) sim.RunResult {
				return c.policyBurstRun(name, kind, producers, bs, 0, seed)
			})
			out = append(out, PolicyRow{Policy: name, Batch: bs, Point: pt})
		}
	}
	return out
}

// PolicyFluctRow is one (policy, role-flip cadence) measurement.
type PolicyFluctRow struct {
	Policy    string
	FlipEvery int // 0 = fixed roles
	Point     Point
}

// PolicyFluctuate runs the burst workload at one batch size while the
// producer set rotates around the ring every flipEvery elements a process
// moves — the fluctuating workload: reserves keep appearing behind a
// moving frontier, so static transfer policies tuned for a stationary
// layout lose their footing. flips lists the cadences (0 = fixed roles
// for reference); at the paper scale each process moves only a few
// hundred elements, so meaningful cadences are well under that.
func PolicyFluctuate(cfg Config, kind search.Kind, producers, batch int, flips []int) []PolicyFluctRow {
	c := cfg.withDefaults()
	var out []PolicyFluctRow
	for _, name := range PolicyNames() {
		for _, flip := range flips {
			name, flip := name, flip
			pt := c.average(float64(flip), func(seed uint64) sim.RunResult {
				return c.policyBurstRun(name, kind, producers, batch, flip, seed)
			})
			out = append(out, PolicyFluctRow{Policy: name, FlipEvery: flip, Point: pt})
		}
	}
	return out
}

// RenderPolicy draws the policy sweep: one per-element-time series per
// policy across the batch sweep, plus the measurement table.
func RenderPolicy(kind search.Kind, rows []PolicyRow) string {
	series := map[string]*plot.Series{}
	var order []string
	for _, r := range rows {
		s := series[r.Policy]
		if s == nil {
			s = &plot.Series{Name: r.Policy}
			series[r.Policy] = s
			order = append(order, r.Policy)
		}
		s.X = append(s.X, float64(r.Batch))
		s.Y = append(s.Y, r.Point.PerElementTime)
	}
	var ss []plot.Series
	for _, name := range order {
		ss = append(ss, *series[name])
	}
	chart := plot.LineChart(
		fmt.Sprintf("Policy sweep: per-element time vs batch size (%s search, burst workload)", kind),
		"batch size (elements per PutAll/GetN)", "per-element time (virt µs)",
		70, 16,
		ss,
	)
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Policy,
			fmt.Sprintf("%d", r.Batch),
			fmtF(r.Point.PerElementTime),
			fmtF(r.Point.AvgOpTime),
			fmtF(r.Point.ElementsStolen),
			fmtF(r.Point.StealsPerOp),
			fmtF(r.Point.AbortsPerOp),
			fmtF(r.Point.MakespanMean / 1000),
		})
	}
	table := plot.Table([]string{
		"policy", "batch", "µs/element", "µs/op", "stolen/steal", "steals/op", "aborts/op", "makespan (ms)",
	}, cells)
	return chart + "\n" + table
}

// RenderPolicyFluct formats the fluctuating-roles comparison table.
func RenderPolicyFluct(batch int, rows []PolicyFluctRow) string {
	var cells [][]string
	for _, r := range rows {
		roles := "fixed"
		if r.FlipEvery > 0 {
			roles = fmt.Sprintf("rotate/%d elems", r.FlipEvery)
		}
		cells = append(cells, []string{
			r.Policy,
			roles,
			fmtF(r.Point.PerElementTime),
			fmtF(r.Point.ElementsStolen),
			fmtF(r.Point.StealsPerOp),
			fmtF(r.Point.AbortsPerOp),
		})
	}
	return fmt.Sprintf("Fluctuating producers (batch %d):\n", batch) + plot.Table([]string{
		"policy", "roles", "µs/element", "stolen/steal", "steals/op", "aborts/op",
	}, cells)
}

// PolicyCSV emits the batch sweep as comma-separated values.
func PolicyCSV(rows []PolicyRow) string {
	header := []string{"policy", "batch", "per_element_us", "avg_op_us", "stolen_per_steal", "steals_per_op", "aborts_per_op", "makespan_us"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Policy,
			fmt.Sprintf("%d", r.Batch),
			fmt.Sprintf("%.2f", r.Point.PerElementTime),
			fmt.Sprintf("%.2f", r.Point.AvgOpTime),
			fmt.Sprintf("%.2f", r.Point.ElementsStolen),
			fmt.Sprintf("%.4f", r.Point.StealsPerOp),
			fmt.Sprintf("%.4f", r.Point.AbortsPerOp),
			fmt.Sprintf("%.0f", r.Point.MakespanMean),
		})
	}
	return plot.CSV(header, out)
}

// PolicyFluctCSV emits the fluctuating-roles comparison as CSV.
func PolicyFluctCSV(rows []PolicyFluctRow) string {
	header := []string{"policy", "flip_every", "per_element_us", "stolen_per_steal", "steals_per_op", "aborts_per_op"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Policy,
			fmt.Sprintf("%d", r.FlipEvery),
			fmt.Sprintf("%.2f", r.Point.PerElementTime),
			fmt.Sprintf("%.2f", r.Point.ElementsStolen),
			fmt.Sprintf("%.4f", r.Point.StealsPerOp),
			fmt.Sprintf("%.4f", r.Point.AbortsPerOp),
		})
	}
	return plot.CSV(header, out)
}
