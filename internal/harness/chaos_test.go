package harness

import (
	"strings"
	"testing"

	"pools/internal/search"
	"pools/internal/workload"
)

func TestChaosSweep(t *testing.T) {
	cfg := Config{Trials: 2, Seed: 7, Procs: 8, Ops: 2000, Fill: 160}
	scheds := []ChaosSchedule{
		{Churn: workload.Churn{KillEvery: 2000, ReviveAfter: 1000, Drain: true}, Label: "drain/1000µs"},
		{Churn: workload.Churn{KillEvery: 2000, ReviveAfter: 1000}, Label: "steal-only/1000µs"},
	}
	rows := ChaosSweep(cfg, search.Tree, scheds)
	if len(rows) != len(scheds) {
		t.Fatalf("rows = %d, want %d", len(rows), len(scheds))
	}
	for _, r := range rows {
		if r.BaselineRate <= 0 {
			t.Errorf("%s: baseline rate = %v, want > 0", r.Schedule.Label, r.BaselineRate)
		}
		if r.Kills == 0 {
			t.Errorf("%s: no kills performed", r.Schedule.Label)
		}
		if r.DipFraction < 0 || r.DipFraction > 1 {
			t.Errorf("%s: dip fraction = %v, want in [0,1]", r.Schedule.Label, r.DipFraction)
		}
		if r.Recovered > r.Kills {
			t.Errorf("%s: recovered %d of %d kills", r.Schedule.Label, r.Recovered, r.Kills)
		}
	}
	out := RenderChaos(search.Tree, rows)
	if !strings.Contains(out, "recovered ") {
		t.Errorf("render missing the recovery footer:\n%s", out)
	}
	csv := ChaosCSV(rows)
	if lines := strings.Count(strings.TrimSpace(csv), "\n"); lines != len(rows) {
		t.Errorf("CSV body lines = %d, want %d:\n%s", lines, len(rows), csv)
	}
}

// The sweep is deterministic for a seed: same config, same rows.
func TestChaosSweepDeterministic(t *testing.T) {
	cfg := Config{Trials: 1, Seed: 11, Procs: 8, Ops: 1500, Fill: 160}
	scheds := []ChaosSchedule{
		{Churn: workload.Churn{KillEvery: 1500, ReviveAfter: 800, Drain: true}, Label: "drain"},
	}
	a := ChaosSweep(cfg, search.Tree, scheds)
	b := ChaosSweep(cfg, search.Tree, scheds)
	if a[0] != b[0] {
		t.Errorf("sweep not deterministic:\n%+v\n%+v", a[0], b[0])
	}
}

// RealRun under a wall-clock churn schedule: kills happen, every kill
// is revived, and no element is lost or invented across the
// transitions (conservation: fill + adds - removes = remaining).
func TestRealRunChurn(t *testing.T) {
	res, err := RealRun(RealRunConfig{
		Workload: workload.Config{
			Procs:           4,
			Model:           workload.RandomOps,
			AddFraction:     0.5,
			TotalOps:        6000,
			InitialElements: 64,
		},
		Search: search.Tree,
		Seed:   42,
		Churn:  workload.Churn{KillEvery: 300, ReviveAfter: 200, Drain: true, MaxKills: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kills == 0 {
		t.Error("no kills performed (schedule should fire well inside the run)")
	}
	if res.Kills != res.Revives {
		t.Errorf("kills = %d, revives = %d, want equal", res.Kills, res.Revives)
	}
	want := 64 + res.Stats.Adds - res.Stats.Removes
	if int64(res.Remaining) != want {
		t.Errorf("conservation violated: remaining = %d, want fill+adds-removes = %d", res.Remaining, want)
	}
}

// Steal-only kills run the same conservation check: the dead segment's
// reserve must drain through survivors' steals, never vanish.
func TestRealRunChurnStealOnly(t *testing.T) {
	res, err := RealRun(RealRunConfig{
		Workload: workload.Config{
			Procs:           4,
			Model:           workload.RandomOps,
			AddFraction:     0.5,
			TotalOps:        6000,
			InitialElements: 64,
		},
		Search: search.Tree,
		Seed:   43,
		Churn:  workload.Churn{KillEvery: 300, ReviveAfter: 200, MaxKills: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 64 + res.Stats.Adds - res.Stats.Removes
	if int64(res.Remaining) != want {
		t.Errorf("conservation violated: remaining = %d, want fill+adds-removes = %d", res.Remaining, want)
	}
}

func TestRealRunChurnValidation(t *testing.T) {
	churn := workload.Churn{KillEvery: 100, ReviveAfter: 50}
	if _, err := RealRun(RealRunConfig{
		Workload: workload.Config{Procs: 4, Model: workload.OpenLoop, AddFraction: 0.5, TotalOps: 100,
			Arrivals: workload.Arrivals{Lambda: 0.01}},
		Churn: churn,
	}); err == nil {
		t.Error("OpenLoop + churn should be rejected")
	}
	if _, err := RealRun(RealRunConfig{
		Workload: workload.Config{Procs: 1, Model: workload.RandomOps, AddFraction: 0.5, TotalOps: 100},
		Churn:    churn,
	}); err == nil {
		t.Error("Procs < 2 + churn should be rejected")
	}
	if _, err := RealRun(RealRunConfig{
		Workload: workload.Config{Procs: 2, Model: workload.RandomOps, AddFraction: 0.5, TotalOps: 100},
		Churn:    workload.Churn{KillEvery: 100, ReviveAfter: -1},
	}); err == nil {
		t.Error("invalid churn schedule should be rejected")
	}
}
