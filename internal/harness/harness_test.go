package harness

import (
	"fmt"
	"strings"
	"testing"

	"pools/internal/search"
	"pools/internal/workload"
)

// quickCfg shrinks the protocol for fast unit tests (full-protocol runs
// happen in the benchmarks and cmd/poolbench).
func quickCfg() Config {
	return Config{Trials: 2, Seed: 7, Ops: 1500, Fill: 96}
}

func TestFig2Shape(t *testing.T) {
	r := Fig2(quickCfg())
	if len(r.Random) != 11 || len(r.PC) != 17 {
		t.Fatalf("series lengths: random=%d pc=%d", len(r.Random), len(r.PC))
	}
	// Sparse mixes must be slower than sufficient mixes (random model).
	sparse := r.Random[2].AvgOpTime // 20% adds
	rich := r.Random[8].AvgOpTime   // 80% adds
	if sparse <= rich {
		t.Errorf("sparse (%.0f) not slower than sufficient (%.0f)", sparse, rich)
	}
	// Performance levels off at and beyond 50% adds: the 60..100% points
	// should all be within a modest band of each other.
	for i := 7; i <= 10; i++ {
		lo, hi := r.Random[6].AvgOpTime, r.Random[i].AvgOpTime
		if hi > 3*lo+1 && lo > 0 {
			t.Errorf("sufficient region not level: %.0f vs %.0f", lo, hi)
		}
	}
	// Producer/consumer steals at every producer count (except the
	// degenerate all-producer point).
	for _, p := range r.PC[1:16] {
		if p.StealsPerOp == 0 {
			t.Errorf("PC point at mix %.0f%% had no steals", p.X)
		}
	}
	out := r.Render()
	for _, want := range []string{"Figure 2", "random", "producer/consumer", "%adds"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig2PCWorseAtSparse(t *testing.T) {
	// "The performance of this model is similar to the random operations
	// model above 50% adds, but is generally not as good at sparse job
	// mixes." Compare PC at ~5 producers vs random near the same measured
	// mix.
	r := Fig2(quickCfg())
	// PC with 5/16 producers achieves a mix just under 50%.
	pc5 := r.PC[5]
	// Closest random point: interpolate between the bracketing mixes.
	var randomAt float64
	for i := 0; i+1 < len(r.Random); i++ {
		a, b := r.Random[i], r.Random[i+1]
		if pc5.X >= a.X && pc5.X <= b.X {
			f := (pc5.X - a.X) / (b.X - a.X)
			randomAt = a.AvgOpTime + f*(b.AvgOpTime-a.AvgOpTime)
			break
		}
	}
	if randomAt == 0 {
		t.Skip("PC mix outside random sweep")
	}
	if pc5.AvgOpTime < randomAt/3 {
		t.Errorf("PC (%.0f) unexpectedly much faster than random (%.0f) at sparse mix", pc5.AvgOpTime, randomAt)
	}
}

func TestFigTraceBunchingAndBalance(t *testing.T) {
	cfg := quickCfg()
	unbal := FigTrace(cfg, "Figure 3", search.Linear, workload.Contiguous, 5)
	bal := FigTrace(cfg, "Figure 4", search.Linear, workload.Balanced, 5)

	if len(unbal.Sampled) != 16 {
		t.Fatalf("sampled %d segments", len(unbal.Sampled))
	}
	// Balanced producers should have at least as many producers stolen
	// from as the contiguous arrangement (paper: contiguous leaves
	// producer 4 untouched; balanced drains all five).
	if bal.ProducersDrained() < unbal.ProducersDrained() {
		t.Errorf("balanced drained %d producers, contiguous %d",
			bal.ProducersDrained(), unbal.ProducersDrained())
	}
	out := unbal.Render()
	for _, want := range []string{"Figure 3", "linear", "contiguous", "seg  0 P", "queueing delay"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig7BalancedStealsMore(t *testing.T) {
	// This comparison needs the full 5000-op protocol: short runs are
	// dominated by the initial drain transient.
	r := Fig7(Config{Trials: 2, Seed: 7})
	if len(r.Unbalanced) != 17 || len(r.Balanced) != 17 {
		t.Fatalf("lengths %d/%d", len(r.Unbalanced), len(r.Balanced))
	}
	// Errata orientation: the balanced arrangement steals more elements
	// per steal. The effect is robust from moderate producer counts up
	// (see EXPERIMENTS.md for the sparse-end deviation); compare the sums
	// over 6..14 producers to damp seed noise.
	var balSum, unbalSum float64
	for k := 6; k <= 14; k++ {
		balSum += r.Balanced[k].ElementsStolen
		unbalSum += r.Unbalanced[k].ElementsStolen
	}
	if balSum <= unbalSum {
		t.Errorf("balanced stole %.1f total, unbalanced %.1f — errata shape violated", balSum, unbalSum)
	}
	if !strings.Contains(r.Render(), "Figure 7") {
		t.Error("render missing title")
	}
}

func TestAlgoCompareTreeNeverFasterButExaminesFewer(t *testing.T) {
	rows := AlgoCompare(quickCfg())
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKS := map[string]Point{}
	for _, r := range rows {
		byKS[r.Kind.String()+"/"+r.Scenario] = r.Point
	}
	// In the sparse random scenario, the tree should examine fewer
	// segments per steal than linear or random...
	sc := "random 30% adds (sparse)"
	tree, lin, ran := byKS["tree/"+sc], byKS["linear/"+sc], byKS["random/"+sc]
	if tree.SegmentsExamined >= lin.SegmentsExamined || tree.SegmentsExamined >= ran.SegmentsExamined {
		t.Errorf("tree examined %.2f segs/steal, linear %.2f, random %.2f — paper expects fewest for tree",
			tree.SegmentsExamined, lin.SegmentsExamined, ran.SegmentsExamined)
	}
	// ... and steals more elements per steal than linear ("it also tends
	// to steal more elements").
	if tree.ElementsStolen <= lin.ElementsStolen*0.9 {
		t.Errorf("tree stole %.2f per steal, linear %.2f — paper expects more for tree",
			tree.ElementsStolen, lin.ElementsStolen)
	}
	// In the balanced producer/consumer pattern the tree has "similar,
	// though slightly slower, times" — it must not decisively beat the
	// best simple algorithm there.
	pcScenario := "balanced prod/cons, 5 producers"
	treePC := byKS["tree/"+pcScenario]
	bestPC := byKS["linear/"+pcScenario].AvgOpTime
	if r := byKS["random/"+pcScenario].AvgOpTime; r < bestPC {
		bestPC = r
	}
	if treePC.AvgOpTime < bestPC*0.8 {
		t.Errorf("tree P/C op time %.0f decisively beats simple algorithms (%.0f) — unexpected",
			treePC.AvgOpTime, bestPC)
	}
	out := RenderAlgoCompare(rows)
	if !strings.Contains(out, "tree") || !strings.Contains(out, "segs/steal") {
		t.Error("render incomplete")
	}
}

func TestDelaySweepConvergence(t *testing.T) {
	// Full protocol, single trial: the convergence claim is about steady
	// state, which the shortened test config does not reach.
	rows := DelaySweep(Config{Trials: 1, Seed: 7})
	if len(rows) != 2*len(DelaySweepDelays) {
		t.Fatalf("rows = %d", len(rows))
	}
	// With large delays the three algorithms converge: at the largest
	// delay the tree/best ratio must be closer to 1 than at zero delay,
	// or already within 25%.
	ratio := func(r DelayRow) float64 {
		best := r.Times[search.Linear]
		if r.Times[search.Random] < best {
			best = r.Times[search.Random]
		}
		if best == 0 {
			return 0
		}
		return r.Times[search.Tree] / best
	}
	// Convergence is asserted on the balanced producer/consumer scenario
	// (odd rows), where the paper's claim reproduces; the sparse random
	// scenario's deviation is documented in EXPERIMENTS.md.
	firstPC, lastPC := rows[1], rows[len(rows)-1]
	r0, rN := ratio(firstPC), ratio(lastPC)
	converged := abs(rN-1) < 0.3 || abs(rN-1) < abs(r0-1)+0.05
	if !converged {
		t.Errorf("no convergence: P/C ratio %.2f at delay 0, %.2f at max delay", r0, rN)
	}
	// Times must grow with delay.
	firstRandom, lastRandom := rows[0], rows[len(rows)-2]
	if lastRandom.Times[search.Linear] <= firstRandom.Times[search.Linear] {
		t.Error("delay did not increase linear op times")
	}
	if !strings.Contains(RenderDelaySweep(rows), "tree/best") {
		t.Error("render incomplete")
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestStealPolicyAblation(t *testing.T) {
	// Full-protocol runs: the steady-state steal frequency difference is
	// what the paper's rationale predicts.
	rows := StealPolicyAblation(Config{Trials: 2, Seed: 7})
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Steal-one must steal fewer elements per steal and steal more often
	// (the paper's rationale for steal-half).
	for _, kind := range search.Kinds() {
		var half, one Point
		for _, r := range rows {
			if r.Kind != kind {
				continue
			}
			if r.StealOne {
				one = r.Point
			} else {
				half = r.Point
			}
		}
		if one.ElementsStolen >= half.ElementsStolen {
			t.Errorf("%v: steal-one stole %.2f >= steal-half %.2f", kind, one.ElementsStolen, half.ElementsStolen)
		}
		if one.StealsPerOp <= half.StealsPerOp {
			t.Errorf("%v: steal-one frequency %.3f <= steal-half %.3f", kind, one.StealsPerOp, half.StealsPerOp)
		}
	}
	if !strings.Contains(RenderStealPolicy(rows), "steal-one") {
		t.Error("render incomplete")
	}
}

func TestAppSpeedupShape(t *testing.T) {
	// Depth 2 keeps the test fast (4032 leaves); the speedup shape is
	// cost-model-driven, not depth-driven.
	rows := App(Config{Seed: 3}, DefaultAppCosts(), 2, []int{1, 4, 16}, AppImpls())
	byIP := map[string]AppRow{}
	for _, r := range rows {
		if !r.Correct {
			t.Fatalf("%v/%d: wrong result (value %d, positions %d)", r.Impl, r.Procs, r.RootValue, r.Positions)
		}
		byIP[fmt.Sprintf("%s/%d", r.Impl, r.Procs)] = r
	}
	// Pools speed up near-linearly at 16 procs; the stack lags.
	for _, impl := range []AppImpl{ImplPoolLinear, ImplPoolRandom, ImplPoolTree} {
		s := byIP[impl.String()+"/16"].Speedup
		if s < 10 {
			t.Errorf("%v speedup at 16 procs = %.1f, want near-linear (>10)", impl, s)
		}
	}
	stack := byIP["global-stack/16"]
	poolBest := byIP["pool-linear/16"]
	if stack.Speedup >= poolBest.Speedup {
		t.Errorf("stack speedup %.1f >= pool %.1f — paper expects the stack to lag", stack.Speedup, poolBest.Speedup)
	}
	if float64(stack.Makespan) < 1.1*float64(poolBest.Makespan) {
		t.Errorf("stack makespan %d not clearly slower than pool %d", stack.Makespan, poolBest.Makespan)
	}
	if !strings.Contains(RenderApp(rows), "global-stack") {
		t.Error("render incomplete")
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Trials != workload.PaperTrials || c.Procs != 16 || c.Ops != 5000 || c.Fill != 320 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	custom := Config{Trials: 3, Procs: 8}.withDefaults()
	if custom.Trials != 3 || custom.Procs != 8 || custom.Ops != 5000 {
		t.Fatalf("custom overrides lost: %+v", custom)
	}
}

func TestFmtF(t *testing.T) {
	cases := map[float64]string{0: "0", 5.234: "5.23", 42.5: "42.5", 1234.5: "1234"}
	for v, want := range cases {
		if got := fmtF(v); got != want {
			t.Errorf("fmtF(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestDynamicRolesChurnCosts(t *testing.T) {
	// Section 3.3: fixed roles are the paper's simplifying assumption;
	// our extension shows that rotating roles frequently introduces
	// starvation windows (the new producer's segment is empty right after
	// a flip), visible as aborted removes that fixed roles never incur.
	cfg := quickCfg()
	cfg.Trials = 1
	rows := DynamicRoles(cfg)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, kind := range []search.Kind{search.Linear, search.Tree} {
		var fixed, rotating *DynamicRolesRow
		for i := range rows {
			r := &rows[i]
			if r.Kind != kind {
				continue
			}
			if r.FlipEvery == 0 {
				fixed = r
			} else if r.FlipEvery == 10 {
				rotating = r
			}
		}
		if fixed == nil || rotating == nil {
			t.Fatal("missing rows")
		}
		if rotating.Point.AbortsPerOp <= fixed.Point.AbortsPerOp {
			t.Errorf("%v: rotation aborts %.3f <= fixed %.3f", kind,
				rotating.Point.AbortsPerOp, fixed.Point.AbortsPerOp)
		}
	}
	if !strings.Contains(RenderDynamicRoles(rows), "rotate/10 ops") {
		t.Error("render incomplete")
	}
}
