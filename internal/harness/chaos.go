package harness

import (
	"fmt"

	"pools/internal/plot"
	"pools/internal/rng"
	"pools/internal/search"
	"pools/internal/sim"
	"pools/internal/workload"
)

// This file measures the pool under failure injection: the chaos driver
// (sim.RunConfig.Churn) kills one processor at a time on a seeded
// schedule and revives it after a configured downtime, and the sweep
// reports how far throughput dips while a member is down and how long
// the survivors take to absorb the loss — the availability companion to
// the paper's steady-state throughput tables. Two kill modes bracket
// the design space: drain redistributes the victim's segment at kill
// time (paying the relocation up front), steal-only leaves the reserve
// in place for the survivors' steals to drain (paying in search time).

// Chaos measurement windows, on the virtual clock. The throughput
// curve is the windowed difference of the driver's cumulative-ops
// samples; recovery is declared when the windowed rate is back within
// chaosRecoverFrac of the zero-churn baseline.
const (
	chaosRateWindow  = 500 // µs per throughput window (5 driver ticks)
	chaosRecoverFrac = 0.9
)

// ChaosSchedule is one swept failure-injection configuration.
type ChaosSchedule struct {
	Churn workload.Churn
	Label string
}

// DefaultChaosSchedules returns the swept schedules: three downtime
// lengths, each in both kill modes, with a mean gap long enough that
// downtime windows rarely overlap their recovery tails.
func DefaultChaosSchedules() []ChaosSchedule {
	var out []ChaosSchedule
	for _, drain := range []bool{true, false} {
		mode := "steal-only"
		if drain {
			mode = "drain"
		}
		for _, down := range []int64{500, 2000, 8000} {
			out = append(out, ChaosSchedule{
				Churn: workload.Churn{KillEvery: 3000, ReviveAfter: down, Drain: drain},
				Label: fmt.Sprintf("%s/%dµs", mode, down),
			})
		}
	}
	return out
}

// ChaosRow is one schedule's averaged measurements.
type ChaosRow struct {
	Schedule ChaosSchedule
	// BaselineRate is the zero-churn throughput (completed ops per
	// virtual ms) of the identical workload, the yardstick dips and
	// recoveries are measured against.
	BaselineRate float64
	// MeanRate is the overall throughput under churn (ops per ms).
	MeanRate float64
	// DipFraction is the mean worst-case throughput loss per downtime
	// window: 1 - (minimum windowed rate while the victim is down) /
	// baseline, averaged over kills. 0 = churn invisible, 1 = stalled.
	DipFraction float64
	// RecoveryTime is the mean virtual µs from a revive until the
	// windowed rate is back to chaosRecoverFrac of baseline, over the
	// kills whose recovery completed inside the run.
	RecoveryTime float64
	// Recovered of Kills counts downtime windows whose post-revive rate
	// regained the baseline before the run ended.
	Recovered, Kills int
	MakespanMean     float64
}

// ChaosSweep measures each schedule against its own zero-churn
// baseline, averaging cfg.Trials seeded trials of the steady random-ops
// workload (50% adds — the mix with no drift, so the throughput curve
// is flat except where churn bends it).
func ChaosSweep(cfg Config, kind search.Kind, schedules []ChaosSchedule) []ChaosRow {
	c := cfg.withDefaults()
	runTrial := func(seed uint64, churn workload.Churn) sim.RunResult {
		w := c.workloadFor(workload.RandomOps)
		w.AddFraction = 0.5
		return sim.Run(sim.RunConfig{
			Workload: w, Search: kind, Costs: c.Costs, Seed: seed, Churn: churn,
		})
	}
	var out []ChaosRow
	for _, sched := range schedules {
		row := ChaosRow{Schedule: sched}
		n := float64(c.Trials)
		dipTrials := 0.0
		var recSum float64
		for trial := 0; trial < c.Trials; trial++ {
			seed := rng.SubSeed(c.Seed, trial)
			base := runTrial(seed, workload.Churn{})
			baseRate := rate(float64(base.Stats.Ops()), float64(base.Makespan))
			res := runTrial(seed, sched.Churn)
			row.BaselineRate += 1000 * baseRate / n
			row.MeanRate += 1000 * rate(float64(res.Stats.Ops()), float64(res.Makespan)) / n
			row.MakespanMean += float64(res.Makespan) / n
			m := measureChurn(res, baseRate)
			row.Kills += m.kills
			row.Recovered += m.recovered
			if m.kills > 0 {
				row.DipFraction += m.meanDip
				dipTrials++
			}
			if m.recovered > 0 {
				recSum += m.recoverySum
			}
		}
		if dipTrials > 0 {
			row.DipFraction /= dipTrials
		}
		if row.Recovered > 0 {
			row.RecoveryTime = recSum / float64(row.Recovered)
		}
		out = append(out, row)
	}
	return out
}

// rate guards a per-µs throughput division.
func rate(ops, dt float64) float64 {
	if dt <= 0 {
		return 0
	}
	return ops / dt
}

// churnMeasure is one trial's dip/recovery extraction.
type churnMeasure struct {
	kills       int
	recovered   int
	meanDip     float64 // mean over kills of the worst windowed dip
	recoverySum float64 // summed recovery µs over recovered kills
}

// measureChurn walks the trial's kill/revive pairs and reads the
// throughput curve (windowed differences of the driver's cumulative-ops
// samples) around each downtime window against the zero-churn baseline
// rate (ops per µs).
func measureChurn(res sim.RunResult, baseRate float64) churnMeasure {
	var m churnMeasure
	if baseRate <= 0 {
		return m
	}
	end := res.OpsTrace.MaxTime()
	windowRate := func(t int64) float64 {
		s := res.OpsTrace.SampleAt([]int64{t - chaosRateWindow, t})
		return rate(float64(s[1]-s[0]), chaosRateWindow)
	}
	events := res.Churn
	for i, ev := range events {
		if ev.Revive {
			continue
		}
		m.kills++
		// The matching revive is the next event (one victim at a time);
		// a kill the run ended on has no revive to recover from.
		reviveAt := end
		revived := false
		if i+1 < len(events) && events[i+1].Revive {
			reviveAt = events[i+1].Time
			revived = true
		}
		// Worst dip across the downtime window (and one window past the
		// revive, so a dip the sampling straddles is not missed).
		minRate := baseRate
		for t := ev.Time + chaosRateWindow; t <= reviveAt+chaosRateWindow && t <= end; t += chaosRateWindow {
			if r := windowRate(t); r < minRate {
				minRate = r
			}
		}
		m.meanDip += 1 - minRate/baseRate
		if !revived {
			continue
		}
		// Recovery: first window past the revive back at recoverFrac of
		// baseline.
		for t := reviveAt + chaosRateWindow; t <= end; t += chaosRateWindow {
			if windowRate(t) >= chaosRecoverFrac*baseRate {
				m.recovered++
				m.recoverySum += float64(t - reviveAt)
				break
			}
		}
	}
	if m.kills > 0 {
		m.meanDip /= float64(m.kills)
	}
	return m
}

// RenderChaos draws the chaos sweep: throughput dip vs downtime for the
// two kill modes, the per-schedule table, and a greppable recovery
// footer (make chaos-smoke validates it).
func RenderChaos(kind search.Kind, rows []ChaosRow) string {
	series := map[bool]*plot.Series{}
	for _, drain := range []bool{true, false} {
		name := "steal-only kill"
		if drain {
			name = "drain kill"
		}
		series[drain] = &plot.Series{Name: name}
	}
	for _, r := range rows {
		s := series[r.Schedule.Churn.Drain]
		s.X = append(s.X, float64(r.Schedule.Churn.ReviveAfter))
		s.Y = append(s.Y, r.DipFraction*100)
	}
	chart := plot.LineChart(
		fmt.Sprintf("Chaos: worst throughput dip vs downtime (%s search)", kind),
		"downtime before revive (virt µs)", "throughput dip (% of baseline)",
		70, 16,
		[]plot.Series{*series[true], *series[false]},
	)
	var cells [][]string
	totalRecovered, totalKills := 0, 0
	for _, r := range rows {
		totalRecovered += r.Recovered
		totalKills += r.Kills
		cells = append(cells, []string{
			r.Schedule.Label,
			fmt.Sprintf("%d", r.Kills),
			fmtF(r.BaselineRate),
			fmtF(r.MeanRate),
			fmtF(r.DipFraction * 100),
			fmtF(r.RecoveryTime),
			fmt.Sprintf("%d/%d", r.Recovered, r.Kills),
			fmtF(r.MakespanMean / 1000),
		})
	}
	table := plot.Table([]string{
		"schedule", "kills", "base ops/ms", "churn ops/ms", "dip %", "recovery (µs)", "recovered", "makespan (ms)",
	}, cells)
	footer := fmt.Sprintf("recovered %d/%d downtime windows to %.0f%% of baseline throughput\n",
		totalRecovered, totalKills, chaosRecoverFrac*100)
	return chart + "\n" + table + footer
}

// ChaosCSV emits the sweep as comma-separated values.
func ChaosCSV(rows []ChaosRow) string {
	header := []string{"mode", "kill_every_us", "downtime_us", "kills", "baseline_ops_per_ms", "churn_ops_per_ms", "dip_fraction", "recovery_us", "recovered", "makespan_us"}
	var out [][]string
	for _, r := range rows {
		mode := "steal_only"
		if r.Schedule.Churn.Drain {
			mode = "drain"
		}
		out = append(out, []string{
			mode,
			fmt.Sprintf("%d", r.Schedule.Churn.KillEvery),
			fmt.Sprintf("%d", r.Schedule.Churn.ReviveAfter),
			fmt.Sprintf("%d", r.Kills),
			fmt.Sprintf("%.2f", r.BaselineRate),
			fmt.Sprintf("%.2f", r.MeanRate),
			fmt.Sprintf("%.4f", r.DipFraction),
			fmt.Sprintf("%.0f", r.RecoveryTime),
			fmt.Sprintf("%d", r.Recovered),
			fmt.Sprintf("%.0f", r.MakespanMean),
		})
	}
	return plot.CSV(header, out)
}
