package harness

import (
	"sync"

	"pools/internal/core"
	"pools/internal/metrics"
	"pools/internal/trace"
)

// Live is a wall-clock run in flight: RealRun executing on background
// goroutines while observers read statistics and flight-recorder
// timelines without racing the workers. Per-handle stats are
// unsynchronized by design (the 0-alloc hot path), so Live never touches
// them directly — each worker publishes a copy of its own collector
// under the Live mutex every few operations (RealRunConfig.Publish), and
// Stats merges those copies. Recorder dumps need no such indirection:
// trace.Recorder snapshots are internally locked.
//
// The introspection endpoint (internal/introspect, poolbench
// -debug-addr) is the primary consumer.
type Live struct {
	mu    sync.Mutex
	stats []metrics.PoolStats // workers' published per-handle snapshots
	pool  *core.Pool[int]     // set by onPool before any worker starts
	res   RealRunResult
	err   error
	done  chan struct{}
}

// StartLive launches RealRun(cfg) in the background and returns
// immediately. The returned Live serves race-safe mid-run snapshots;
// Result blocks for the final measurements. cfg.Publish is overridden —
// Live owns the publishing channel.
func StartLive(cfg RealRunConfig) *Live {
	l := &Live{done: make(chan struct{})}
	if n := cfg.Workload.Procs; n > 0 {
		l.stats = make([]metrics.PoolStats, n)
	}
	cfg.Publish = func(worker int, s metrics.PoolStats) {
		l.mu.Lock()
		if worker >= 0 && worker < len(l.stats) {
			l.stats[worker] = s
		}
		l.mu.Unlock()
	}
	cfg.onPool = func(p *core.Pool[int]) {
		l.mu.Lock()
		l.pool = p
		l.mu.Unlock()
	}
	go func() {
		res, err := RealRun(cfg)
		l.mu.Lock()
		l.res, l.err = res, err
		l.mu.Unlock()
		close(l.done)
	}()
	return l
}

// Done is closed when the run has finished.
func (l *Live) Done() <-chan struct{} { return l.done }

// Result blocks until the run finishes and returns its measurements.
func (l *Live) Result() (RealRunResult, error) {
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.res, l.err
}

// Stats returns the merged pool statistics: the workers' latest
// published snapshots while the run is in flight (at most publishEvery
// operations stale per worker), the authoritative final merge once it
// has finished.
func (l *Live) Stats() metrics.PoolStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	select {
	case <-l.done:
		return l.res.Stats
	default:
	}
	var out metrics.PoolStats
	for i := range l.stats {
		out.Merge(&l.stats[i])
	}
	return out
}

// Timelines snapshots every handle's flight recorder (nil unless the run
// was started with TraceBuf). Safe mid-run: recorders lock internally.
func (l *Live) Timelines() []trace.Timeline {
	l.mu.Lock()
	p := l.pool
	l.mu.Unlock()
	if p == nil {
		return nil
	}
	return p.Timelines()
}

// Timeline snapshots one handle's recorder, or a zero Timeline if the
// handle is out of range or tracing is off.
func (l *Live) Timeline(handle int) trace.Timeline {
	l.mu.Lock()
	p := l.pool
	l.mu.Unlock()
	if p == nil || handle < 0 || handle >= p.Segments() {
		return trace.Timeline{Handle: handle}
	}
	tr := p.Tracer(handle)
	if tr == nil {
		return trace.Timeline{Handle: handle}
	}
	return tr.Timeline()
}
