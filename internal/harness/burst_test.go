package harness

import (
	"strings"
	"testing"

	"pools/internal/search"
	"pools/internal/workload"
)

func TestBurstSweepAmortizes(t *testing.T) {
	cfg := Config{Trials: 2, Seed: 1989}
	rows := BurstSweep(cfg, search.Tree, 5, []int{1, 8})
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	one, eight := rows[0].Point, rows[1].Point
	if one.PerElementTime <= 0 || eight.PerElementTime <= 0 {
		t.Fatalf("per-element times not measured: %v / %v", one.PerElementTime, eight.PerElementTime)
	}
	// The acceptance bar: batch 8 amortizes the segment accesses, so the
	// per-element cost must fall well below batch 1's.
	if eight.PerElementTime >= one.PerElementTime {
		t.Fatalf("batch 8 per-element time %.1f >= batch 1's %.1f: no amortization",
			eight.PerElementTime, one.PerElementTime)
	}
	if eight.MakespanMean >= one.MakespanMean {
		t.Fatalf("batch 8 makespan %.0f >= batch 1's %.0f", eight.MakespanMean, one.MakespanMean)
	}
}

func TestBurstDeterministic(t *testing.T) {
	cfg := Config{Trials: 1, Seed: 42}
	a := BurstSweep(cfg, search.Linear, 5, []int{4})
	b := BurstSweep(cfg, search.Linear, 5, []int{4})
	if a[0].Point != b[0].Point {
		t.Fatalf("same seed diverged: %+v vs %+v", a[0].Point, b[0].Point)
	}
}

func TestRenderBurst(t *testing.T) {
	cfg := Config{Trials: 1, Seed: 7}
	rows := BurstSweep(cfg, search.Tree, 5, []int{1, 8})
	out := RenderBurst(search.Tree, rows)
	for _, want := range []string{"batch size", "µs/element", "per-element"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
	csv := BurstCSV(rows)
	if !strings.Contains(csv, "per_element_us") || len(strings.Split(strings.TrimSpace(csv), "\n")) != 3 {
		t.Fatalf("unexpected CSV:\n%s", csv)
	}
}

func TestRealRunBurst(t *testing.T) {
	wl := workload.Config{
		Procs:           4,
		Model:           workload.Burst,
		Producers:       2,
		Arrangement:     workload.Balanced,
		BatchSize:       8,
		TotalOps:        400,
		InitialElements: 32,
	}
	res, err := RealRun(RealRunConfig{Workload: wl, Search: search.Linear, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.BatchAdds == 0 {
		t.Fatal("burst run recorded no batch adds")
	}
	// Conservation: everything added (by seed or batch) is either removed
	// or still pooled.
	total := int64(wl.InitialElements) + st.Adds
	if st.Removes+int64(res.Remaining) != total {
		t.Fatalf("conservation violated: removes=%d remaining=%d added=%d",
			st.Removes, res.Remaining, total)
	}
}
