package harness

import (
	"fmt"

	"pools/internal/plot"
	"pools/internal/rng"
	"pools/internal/search"
	"pools/internal/sim"
	"pools/internal/ttt"
)

// AppImpl selects the work-list implementation for the tic-tac-toe study.
type AppImpl int

// Work-list implementations compared in Section 4.4.
const (
	ImplStack AppImpl = iota + 1 // global-lock stack (the paper's original)
	ImplPoolLinear
	ImplPoolRandom
	ImplPoolTree
)

// String names the implementation.
func (i AppImpl) String() string {
	switch i {
	case ImplStack:
		return "global-stack"
	case ImplPoolLinear:
		return "pool-linear"
	case ImplPoolRandom:
		return "pool-random"
	case ImplPoolTree:
		return "pool-tree"
	default:
		return fmt.Sprintf("AppImpl(%d)", int(i))
	}
}

// AppImpls lists all implementations in presentation order.
func AppImpls() []AppImpl {
	return []AppImpl{ImplStack, ImplPoolLinear, ImplPoolRandom, ImplPoolTree}
}

// searchKind maps a pool implementation to its search algorithm.
func (i AppImpl) searchKind() search.Kind {
	switch i {
	case ImplPoolLinear:
		return search.Linear
	case ImplPoolRandom:
		return search.Random
	case ImplPoolTree:
		return search.Tree
	default:
		return 0
	}
}

// AppCosts calibrates the simulated application per DESIGN.md's
// substitution: a 1989-scale position evaluation dominates list overheads,
// while the global stack's single critical section serializes.
type AppCosts struct {
	// PositionCost is the work to process one board position (µs).
	PositionCost int64
	// StackAccess is the cost of one global-stack critical section,
	// including the remote reference to the central lock (µs).
	StackAccess int64
}

// DefaultAppCosts mirrors the era's scale: ~1 ms to evaluate or expand a
// position, ~50 µs per remote stack access.
func DefaultAppCosts() AppCosts {
	return AppCosts{PositionCost: 1000, StackAccess: 50}
}

// AppRow is one (implementation, processors) measurement.
type AppRow struct {
	Impl      AppImpl
	Procs     int
	Makespan  int64 // virtual µs
	Speedup   float64
	Positions int64 // leaf positions evaluated
	RootValue int
	Correct   bool // matches the sequential minimax value
}

// App reproduces Section 4.4: parallel 3D tic-tac-toe minimax with the
// work list implemented as each candidate structure, over a processor
// sweep. Speedups are relative to the same implementation on one
// processor. Expected shape: the three pools are nearly identical with
// near-linear speedup; the global-lock stack is materially slower at 16
// processors with clearly worse speedup (paper: 40% slower, 10.7 vs
// 14.6-15.4).
func App(cfg Config, appCosts AppCosts, depth int, procsList []int, impls []AppImpl) []AppRow {
	c := cfg.withDefaults()
	var board ttt.Board
	wantValue, wantLeaves := ttt.Minimax(board, ttt.X, depth)

	var rows []AppRow
	base := map[AppImpl]int64{}
	for _, impl := range impls {
		for _, procs := range procsList {
			makespan, value, leaves := runApp(c, appCosts, impl, board, depth, procs)
			row := AppRow{
				Impl:      impl,
				Procs:     procs,
				Makespan:  makespan,
				Positions: leaves,
				RootValue: value,
				Correct:   value == wantValue && leaves == wantLeaves,
			}
			if procs == 1 {
				base[impl] = makespan
			}
			if b := base[impl]; b > 0 && makespan > 0 {
				row.Speedup = float64(b) / float64(makespan)
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// runApp executes one simulated expansion and returns (makespan, root
// value, leaves evaluated).
func runApp(c Config, ac AppCosts, impl AppImpl, board ttt.Board, depth, procs int) (int64, int, int64) {
	s := sim.New(procs)
	var eng *ttt.Engine
	switch impl {
	case ImplStack:
		stack := &simStack{cost: ac.StackAccess}
		eng = ttt.NewEngine(board, ttt.X, depth, preSeed{stack: stack})
		for id := 0; id < procs; id++ {
			s.Spawn(id, func(env *sim.Env) {
				src := &simStackSource{env: env, stack: stack}
				appWorker(env, eng, src, ac, nil)
			})
		}
	default:
		pool := sim.NewPool[*ttt.Node](sim.PoolConfig{
			Procs:  procs,
			Search: impl.searchKind(),
			Costs:  c.Costs,
			Seed:   rng.SubSeed(c.Seed, procs),
		})
		eng = ttt.NewEngine(board, ttt.X, depth, preSeed{pool: pool})
		for id := 0; id < procs; id++ {
			s.Spawn(id, func(env *sim.Env) {
				src := simPoolSource{pr: pool.Proc(env)}
				appWorker(env, eng, src, ac, pool.AbortAll)
			})
		}
	}
	makespan := s.Run()
	return makespan, eng.RootValue(), eng.Evaluated()
}

// appWorker is the per-processor loop: pull a position, charge the
// processing cost, expand. onExit releases peers stuck searching.
func appWorker(env *sim.Env, eng *ttt.Engine, src ttt.Source, ac AppCosts, onExit func()) {
	for !eng.Done() {
		n, ok := src.Get()
		if !ok {
			continue // Get charged time; re-check Done
		}
		env.Compute(ac.PositionCost)
		eng.Expand(n, src)
	}
	if onExit != nil {
		onExit()
	}
}

// preSeed places the root task before the simulation starts (no virtual
// time to charge yet).
type preSeed struct {
	pool  *sim.Pool[*ttt.Node]
	stack *simStack
}

func (p preSeed) Put(n *ttt.Node) {
	if p.pool != nil {
		p.pool.Inject(n)
		return
	}
	p.stack.items = append(p.stack.items, n)
}

func (p preSeed) Get() (*ttt.Node, bool) { return nil, false }

// simPoolSource adapts a simulated pool processor to ttt.Source.
type simPoolSource struct{ pr *sim.Proc[*ttt.Node] }

func (s simPoolSource) Put(n *ttt.Node)        { s.pr.Put(n) }
func (s simPoolSource) Get() (*ttt.Node, bool) { return s.pr.Get() }

// simStack is the simulated global-lock stack: one resource serializes
// every access.
type simStack struct {
	res   sim.Resource
	items []*ttt.Node
	cost  int64
}

// simStackSource is one processor's view of the shared stack.
type simStackSource struct {
	env   *sim.Env
	stack *simStack
}

func (s *simStackSource) Put(n *ttt.Node) {
	s.env.Charge(&s.stack.res, s.stack.cost)
	s.stack.items = append(s.stack.items, n)
}

func (s *simStackSource) Get() (*ttt.Node, bool) {
	s.env.Charge(&s.stack.res, s.stack.cost)
	items := s.stack.items
	if len(items) == 0 {
		return nil, false
	}
	n := items[len(items)-1]
	s.stack.items = items[:len(items)-1]
	return n, true
}

// RenderApp formats the Section 4.4 table.
func RenderApp(rows []AppRow) string {
	var cells [][]string
	for _, r := range rows {
		ok := "yes"
		if !r.Correct {
			ok = "NO"
		}
		cells = append(cells, []string{
			r.Impl.String(),
			fmt.Sprintf("%d", r.Procs),
			fmt.Sprintf("%d", r.Makespan),
			fmt.Sprintf("%.1f", r.Speedup),
			fmt.Sprintf("%d", r.Positions),
			ok,
		})
	}
	return plot.Table([]string{
		"work list", "procs", "makespan (virt µs)", "speedup", "positions", "correct",
	}, cells)
}
