package numa

import "testing"

// TestTopologyDistances checks the distance laws: Uniform charges every
// remote pair one hop; Clusters charges one hop within a cluster and Far
// (default 4) across; both are symmetric and zero on the diagonal.
func TestTopologyDistances(t *testing.T) {
	u := Uniform{}
	c := Clusters{Size: 4}
	cf := Clusters{Size: 2, Far: 7}
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			for _, topo := range []Topology{u, c, cf} {
				if got, rev := topo.Distance(a, b), topo.Distance(b, a); got != rev {
					t.Fatalf("%s.Distance(%d,%d)=%d but (%d,%d)=%d: asymmetric", topo.Name(), a, b, got, b, a, rev)
				}
			}
			switch {
			case a == b:
				if u.Distance(a, b) != 0 || c.Distance(a, b) != 0 {
					t.Fatalf("Distance(%d,%d) != 0 on the diagonal", a, b)
				}
			default:
				if got := u.Distance(a, b); got != 1 {
					t.Fatalf("Uniform.Distance(%d,%d) = %d, want 1", a, b, got)
				}
				want := 4
				if a/4 == b/4 {
					want = 1
				}
				if got := c.Distance(a, b); got != want {
					t.Fatalf("Clusters{4}.Distance(%d,%d) = %d, want %d", a, b, got, want)
				}
			}
		}
	}
	if got := cf.Distance(0, 15); got != 7 {
		t.Fatalf("Clusters{2,7}.Distance(0,15) = %d, want 7", got)
	}
	if got := cf.Distance(0, 1); got != 1 {
		t.Fatalf("Clusters{2,7}.Distance(0,1) = %d, want 1", got)
	}
	// A zero Size treats every processor as its own cluster.
	if got := (Clusters{}).Distance(0, 1); got != 4 {
		t.Fatalf("Clusters{}.Distance(0,1) = %d, want 4", got)
	}
	if (Clusters{}).Name() != "clusters-1" || (Clusters{Size: 4}).Name() != "clusters-4" || (Uniform{}).Name() != "uniform" {
		t.Fatal("topology names drifted")
	}
}

// TestCostWithTopology checks RemoteExtra scales with hop distance, the
// nil-topology behavior is unchanged, and shared objects (home < 0) stay
// at one hop.
func TestCostWithTopology(t *testing.T) {
	base := ButterflyCosts().WithExtraDelay(100)
	flat := base.Cost(AccessProbe, 0, 8)
	if got := base.WithTopology(Uniform{}).Cost(AccessProbe, 0, 8); got != flat {
		t.Fatalf("Uniform topology changed cost: %d vs %d", got, flat)
	}
	cl := base.WithTopology(Clusters{Size: 4})
	near := cl.Cost(AccessProbe, 0, 1)  // same cluster: 1 hop
	far := cl.Cost(AccessProbe, 0, 8)   // cross cluster: 4 hops
	if near != 4*4+100 {
		t.Fatalf("near-remote probe = %d, want %d", near, 4*4+100)
	}
	if far != 4*4+400 {
		t.Fatalf("far-remote probe = %d, want %d", far, 4*4+400)
	}
	if local := cl.Cost(AccessProbe, 3, 3); local != 4 {
		t.Fatalf("local probe = %d, want 4 (no remote multiplier)", local)
	}
	// Tree nodes are shared (home -1, forced remote): one hop regardless.
	if got, want := cl.Cost(AccessNode, 0, -1), base.Cost(AccessNode, 0, -1); got != want {
		t.Fatalf("node access under clusters = %d, want %d (shared objects stay 1 hop)", got, want)
	}
}
