package numa

import (
	"testing"
	"time"
)

func TestKindString(t *testing.T) {
	kinds := []Kind{AccessProbe, AccessAdd, AccessRemove, AccessSplit, AccessNode, AccessShared}
	names := []string{"probe", "add", "remove", "split", "node", "shared"}
	for i, k := range kinds {
		if k.String() != names[i] {
			t.Errorf("%d: String = %q, want %q", i, k.String(), names[i])
		}
	}
	if Kind(0).String() != "unknown" {
		t.Error("zero kind should be unknown")
	}
}

func TestButterflyLocalCosts(t *testing.T) {
	m := ButterflyCosts()
	if got := m.Cost(AccessAdd, 3, 3); got != 70 {
		t.Errorf("local add = %d, want 70", got)
	}
	if got := m.Cost(AccessRemove, 3, 3); got != 110 {
		t.Errorf("local remove = %d, want 110", got)
	}
}

func TestRemoteFactorApplied(t *testing.T) {
	m := ButterflyCosts()
	local := m.Cost(AccessProbe, 1, 1)
	remote := m.Cost(AccessProbe, 1, 2)
	if remote != 4*local {
		t.Errorf("remote probe = %d, want %d (4x local)", remote, 4*local)
	}
}

func TestSharedObjectsChargedLocal(t *testing.T) {
	m := ButterflyCosts()
	if got := m.Cost(AccessShared, 7, -1); got != m.SharedCost {
		t.Errorf("shared access = %d, want local rate %d", got, m.SharedCost)
	}
}

func TestNodeAlwaysRemoteWhenConfigured(t *testing.T) {
	m := ButterflyCosts()
	// Even an access to a node "homed" on the accessor is charged remote.
	if got := m.Cost(AccessNode, 2, 2); got != m.NodeCost*m.RemoteFactor {
		t.Errorf("node access = %d, want %d", got, m.NodeCost*m.RemoteFactor)
	}
	m.NodeRemote = false
	if got := m.Cost(AccessNode, 2, 2); got != m.NodeCost {
		t.Errorf("local node access = %d, want %d", got, m.NodeCost)
	}
}

func TestWithExtraDelay(t *testing.T) {
	m := ButterflyCosts().WithExtraDelay(1000)
	local := m.Cost(AccessAdd, 0, 0)
	if local != 70 {
		t.Errorf("extra delay applied to local access: %d", local)
	}
	remote := m.Cost(AccessAdd, 0, 1)
	if remote != 70*4+1000 {
		t.Errorf("remote add with delay = %d, want %d", remote, 70*4+1000)
	}
	node := m.Cost(AccessNode, 0, 0)
	if node != m.NodeCost*4+1000 {
		t.Errorf("node with delay = %d, want %d", node, m.NodeCost*4+1000)
	}
}

func TestRemoteFactorClamped(t *testing.T) {
	m := ButterflyCosts()
	m.RemoteFactor = 0
	if got := m.Cost(AccessProbe, 0, 1); got != m.ProbeCost {
		t.Errorf("factor<1 should clamp to 1: got %d", got)
	}
}

func TestUnknownKindZeroCost(t *testing.T) {
	m := ButterflyCosts()
	if got := m.Cost(Kind(0), 0, 1); got != 0 {
		t.Errorf("unknown kind cost = %d, want 0", got)
	}
}

func TestDelayerZeroValueNoDelay(t *testing.T) {
	var d Delayer
	start := time.Now()
	for i := 0; i < 1000; i++ {
		d.Delay(AccessAdd, 0, 1)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("zero Delayer should be near-free, took %v", elapsed)
	}
}

func TestDelayerBusyWaits(t *testing.T) {
	d := Delayer{Model: ButterflyCosts(), Scale: 10 * time.Microsecond}
	// Remote add = 280 virtual µs -> 2.8 ms wall.
	start := time.Now()
	d.Delay(AccessAdd, 0, 1)
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("delay too short: %v", elapsed)
	}
}
