package numa

import "fmt"

// Topology assigns a hop distance to every processor pair, generalizing
// the paper's two-level local/remote split to machines where "remote" is
// not one cost. The Butterfly the paper measures reaches every remote
// memory through one switch traversal (Uniform); Section 4.3's delayed
// architectures ("to simulate a higher-cost remote access architecture")
// are modelled by scaling CostModel.RemoteExtra with the topology's
// distance, so a clustered machine charges far references more than near
// ones. A CostModel with a nil Topology behaves exactly like Uniform.
type Topology interface {
	// Distance returns the hop distance from processor a to processor b:
	// 0 when a == b, and >= 1 for remote pairs. Implementations must be
	// symmetric (Distance(a,b) == Distance(b,a)) and deterministic, since
	// both the simulator and policy.LocalityOrder derive victim rankings
	// from them.
	Distance(a, b int) int
	// Name identifies the topology in tables and CSV output.
	Name() string
}

// Uniform is the Butterfly's switch network: every remote reference
// traverses the same interconnect, so all remote pairs are one hop (the
// paper's "remote accesses roughly 4x slower than local" with no further
// structure). It is the behavior of a CostModel with no Topology set.
type Uniform struct{}

// Distance implements Topology: 0 locally, 1 for every remote pair.
func (Uniform) Distance(a, b int) int {
	if a == b {
		return 0
	}
	return 1
}

// Name implements Topology.
func (Uniform) Name() string { return "uniform" }

// Clusters models a two-level loosely-coupled machine — the architecture
// class the paper's Section 4.3 delay sweep stands in for: processors are
// grouped into fixed-size clusters, references inside a cluster are one
// hop, and references that cross a cluster boundary cost Far hops. With
// CostModel.RemoteExtra = d, a near-remote reference pays d extra virtual
// µs and a far one pays Far*d, which is what makes a locality-aware
// victim order (policy.LocalityOrder) measurably different from the
// paper's locality-blind searches.
type Clusters struct {
	// Size is the number of processors per cluster (>= 1). A Size of 0 is
	// treated as 1 (every processor its own cluster).
	Size int
	// Far is the hop distance across clusters; 0 defaults to 4, echoing
	// the Butterfly's measured remote/local ratio.
	Far int
}

// Distance implements Topology: 0 locally, 1 within a cluster, Far
// (default 4) across clusters.
func (c Clusters) Distance(a, b int) int {
	if a == b {
		return 0
	}
	size := c.Size
	if size < 1 {
		size = 1
	}
	if a/size == b/size {
		return 1
	}
	if c.Far > 0 {
		return c.Far
	}
	return 4
}

// Name implements Topology.
func (c Clusters) Name() string {
	size := c.Size
	if size < 1 {
		size = 1
	}
	return fmt.Sprintf("clusters-%d", size)
}

// NestedClusters models a three-level machine — boards of tightly-coupled
// processors grouped into cabinets, cabinets linked by a slow interconnect
// — the deeper-than-two-level architecture the hierarchical-steal
// escalation ladder was built for but Clusters cannot express: processors
// are grouped into inner clusters of Inner processors, inner clusters
// into outer clusters of Outer processors, and references pay 1 hop
// within an inner cluster, Mid hops within the outer cluster, and Far
// hops across outer clusters. A hierarchical searcher on this topology
// climbs three rings (board, cabinet, machine), so its escalation
// threshold fires twice per fruitless search instead of once.
type NestedClusters struct {
	// Inner is the number of processors per inner cluster (>= 1; 0 is
	// treated as 1).
	Inner int
	// Outer is the number of processors per outer cluster and must cover
	// whole inner clusters; values smaller than Inner are treated as one
	// inner cluster per outer cluster.
	Outer int
	// Mid is the hop distance between inner clusters of one outer
	// cluster; 0 defaults to 2.
	Mid int
	// Far is the hop distance across outer clusters; 0 defaults to 4,
	// echoing the Butterfly's measured remote/local ratio.
	Far int
}

// Distance implements Topology: 0 locally, 1 within an inner cluster,
// Mid (default 2) within an outer cluster, Far (default 4) across outer
// clusters.
func (c NestedClusters) Distance(a, b int) int {
	if a == b {
		return 0
	}
	inner := c.Inner
	if inner < 1 {
		inner = 1
	}
	outer := c.Outer
	if outer < inner {
		outer = inner
	}
	if a/inner == b/inner {
		return 1
	}
	if a/outer == b/outer {
		if c.Mid > 0 {
			return c.Mid
		}
		return 2
	}
	if c.Far > 0 {
		return c.Far
	}
	return 4
}

// Name implements Topology.
func (c NestedClusters) Name() string {
	inner := c.Inner
	if inner < 1 {
		inner = 1
	}
	outer := c.Outer
	if outer < inner {
		outer = inner
	}
	return fmt.Sprintf("nested-%d-%d", inner, outer)
}
