// Package numa models the two-level (local/remote) memory hierarchy of the
// paper's target architectures.
//
// The Butterfly the paper measures has remote accesses roughly 4x slower
// than local ones; the paper additionally injects artificial delays into
// each remote operation "to simulate a higher-cost remote access
// architecture" (Section 4.3, 1 µs .. 100 ms per operation). This package
// provides that cost model in two forms:
//
//   - CostModel: pure accounting (integer virtual microseconds), used by
//     the discrete-event simulator in internal/sim;
//   - Delayer: wall-clock busy-wait injection for the real concurrent
//     pool, so goroutine-based runs can emulate loosely-coupled machines.
package numa

import "time"

// Kind classifies a memory access by the object touched.
type Kind int

// Access kinds. Costs follow Section 3 of the paper: "typical undelayed
// segment operation times are approximately 70 µs for add operations and
// 110 µs for remove operations", remote accesses ~4x local, and the tree's
// round counters "must reside somewhere ... in any case [the tree] is
// likely to be remote for most of the processors".
const (
	AccessProbe  Kind = iota + 1 // examine a segment's size
	AccessAdd                    // add an element to a segment
	AccessRemove                 // remove an element from a segment
	AccessSplit                  // split half of a segment into another
	AccessNode                   // read or update a tree round counter
	AccessShared                 // shared scalar (looker count, op count)
)

// String names the access kind.
func (k Kind) String() string {
	switch k {
	case AccessProbe:
		return "probe"
	case AccessAdd:
		return "add"
	case AccessRemove:
		return "remove"
	case AccessSplit:
		return "split"
	case AccessNode:
		return "node"
	case AccessShared:
		return "shared"
	default:
		return "unknown"
	}
}

// CostModel maps accesses to virtual time (microseconds). The zero value is
// not useful; start from ButterflyCosts.
type CostModel struct {
	// Local base costs per access kind, in virtual µs.
	ProbeCost  int64
	AddCost    int64
	RemoveCost int64
	SplitCost  int64
	NodeCost   int64
	SharedCost int64

	// RemoteFactor multiplies the base cost of a remote access (the
	// Butterfly's is about 4).
	RemoteFactor int64

	// RemoteExtra is added to every remote segment access and every tree
	// node access: the paper's Section 4.3 sweep parameter ("to simulate a
	// higher-cost remote access architecture", 1 µs .. 100 ms per
	// operation). Under a non-nil Topo it is scaled by the hop distance
	// between accessor and home.
	RemoteExtra int64

	// Topo assigns hop distances to processor pairs; RemoteExtra is
	// multiplied by the distance of each remote access. Nil behaves like
	// Uniform (every remote pair one hop — the Butterfly's flat switch
	// network), preserving the paper's two-level model.
	Topo Topology

	// NodeRemote, when true, charges tree-node accesses at the remote rate
	// regardless of the accessor (the paper treats the superimposed tree
	// as "likely to be remote for most of the processors").
	NodeRemote bool
}

// ButterflyCosts returns the cost model calibrated to the paper's reported
// Butterfly numbers: 70 µs local add, 110 µs local remove, remote accesses
// about 4x local. The measured segments are "a single counter that is
// atomically added to, subtracted from, or split in half", so a probe is a
// single remote reference (a few µs), while a tree-node visit takes the
// node's lock around an examine/modify pair ("the overhead of traversing
// the tree (and its locks) is comparable to the segment access time").
func ButterflyCosts() CostModel {
	return CostModel{
		ProbeCost:    4,
		AddCost:      70,
		RemoveCost:   110,
		SplitCost:    40,
		NodeCost:     45,
		SharedCost:   5,
		RemoteFactor: 4,
		NodeRemote:   true,
	}
}

// WithExtraDelay returns a copy of the model with the Section 4.3 per-
// remote-operation delay set to d virtual µs.
func (m CostModel) WithExtraDelay(d int64) CostModel {
	m.RemoteExtra = d
	return m
}

// WithTopology returns a copy of the model with the given hop-distance
// topology; remote accesses are charged RemoteExtra times the distance.
func (m CostModel) WithTopology(t Topology) CostModel {
	m.Topo = t
	return m
}

// hops returns the distance multiplier for a remote access from proc to
// home: 1 under a nil topology or for shared/interleaved objects
// (home < 0), otherwise the topology's distance floored at 1.
func (m CostModel) hops(proc, home int) int64 {
	if m.Topo == nil || home < 0 || proc < 0 {
		return 1
	}
	d := m.Topo.Distance(proc, home)
	if d < 1 {
		d = 1
	}
	return int64(d)
}

// base returns the local base cost for an access kind.
func (m CostModel) base(kind Kind) int64 {
	switch kind {
	case AccessProbe:
		return m.ProbeCost
	case AccessAdd:
		return m.AddCost
	case AccessRemove:
		return m.RemoveCost
	case AccessSplit:
		return m.SplitCost
	case AccessNode:
		return m.NodeCost
	case AccessShared:
		return m.SharedCost
	default:
		return 0
	}
}

// Cost returns the virtual µs charged to processor proc for an access of
// the given kind to an object homed on processor home. home < 0 denotes an
// interleaved/shared object charged at the local rate.
func (m CostModel) Cost(kind Kind, proc, home int) int64 {
	c := m.base(kind)
	remote := home >= 0 && home != proc
	if kind == AccessNode && m.NodeRemote {
		remote = true
	}
	if remote {
		f := m.RemoteFactor
		if f < 1 {
			f = 1
		}
		c = c*f + m.RemoteExtra*m.hops(proc, home)
	}
	return c
}

// Delayer injects wall-clock delays for the real concurrent pool, turning
// the same cost model into busy-waits (1 virtual µs = Scale of wall time).
// A zero Delayer injects nothing.
type Delayer struct {
	Model CostModel
	// Scale converts one virtual microsecond into wall time. Zero disables
	// injection entirely.
	Scale time.Duration
}

// Delay busy-waits for the scaled cost of the access. Busy-waiting (rather
// than sleeping) mirrors a processor stalled on a remote reference: the
// paper's delays model latency the processor cannot overlap. The pointer
// receiver keeps the no-op call on the disabled hot path from copying the
// whole struct (CostModel embeds an interface and five words).
func (d *Delayer) Delay(kind Kind, proc, home int) {
	if d.Scale == 0 {
		return
	}
	c := d.Model.Cost(kind, proc, home)
	if c <= 0 {
		return
	}
	deadline := time.Now().Add(time.Duration(c) * d.Scale)
	for time.Now().Before(deadline) {
	}
}
