package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "fig3", "-trials", "1", "-ops", "800", "-fill", "64"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"## fig3", "Figure 3", "seg  0 P", "queueing delay"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "nope"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunAppExperimentSmallDepth(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "app", "-depth", "1", "-trials", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "global-stack") || !strings.Contains(out.String(), "yes") {
		t.Errorf("app output incomplete:\n%s", out.String())
	}
}

func TestExperimentNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if seen[e.name] {
			t.Errorf("duplicate experiment name %q", e.name)
		}
		seen[e.name] = true
	}
}

func TestRunCSVOutput(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "fig7", "-trials", "1", "-ops", "600", "-fill", "64", "-csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "producers,stolen_per_steal_unbalanced") {
		t.Errorf("CSV block missing:\n%s", out.String())
	}
}

func TestRunBurstExperiment(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "burst", "-trials", "1", "-ops", "800", "-fill", "64", "-csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"## burst", "batch size", "µs/element", "batch,per_element_us"} {
		if !strings.Contains(got, want) {
			t.Errorf("burst output missing %q", want)
		}
	}
}

func TestRunLocalityExperiment(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "locality", "-trials", "1", "-ops", "600", "-fill", "64", "-csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"## locality", "clustered", "vs best blind", "order,delay_us"} {
		if !strings.Contains(got, want) {
			t.Errorf("locality output missing %q", want)
		}
	}
}

func TestRunHierExperiment(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "hier", "-trials", "1", "-ops", "600", "-fill", "64", "-csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"## hier", "cross-cluster probe fraction", "vs best flat",
		"order,topology,delay_us,cross_probe_frac",
		// Both topologies appear: the two-level cluster sweep and the
		// three-level nested sweep, distinguishable by the CSV column.
		",clusters-4,", ",nested-2-8,",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("hier output missing %q", want)
		}
	}
}

func TestRunKeyedLocExperiment(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "keyedloc", "-trials", "1", "-ops", "600", "-fill", "64", "-csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"## keyedloc", "Keyed locality sweep", "cross-frac", "order,delay_us,probes_per_get"} {
		if !strings.Contains(got, want) {
			t.Errorf("keyedloc output missing %q", want)
		}
	}
}

func TestRunTenantsExperiment(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "tenants", "-trials", "1", "-ops", "1500", "-csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"## tenants", "worst-tenant p99 sojourn",
		"tenants,skew,tenant,procs,lambda_per_proc,p50_us,p99_us,p999_us,steal_interference,ops",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("tenants output missing %q", want)
		}
	}
}

func TestRunTraceExperiment(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "trace", "-trials", "1", "-ops", "1200", "-fill", "96", "-csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"## trace", "Controller trajectories", "final steal fraction", "handle,role,sample",
		// The flight-recorder half: density panels, activity table, raw log.
		"Flight recorder", "events per bucket", "cross probes", "ts,handle,event,arg1,arg2",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("trace output missing %q", want)
		}
	}
}

func TestRunTraceDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var out strings.Builder
	if err := run([]string{"-trace", path, "-ops", "600", "-procs", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Errorf("no write confirmation:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("dump is not Chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("dump holds no events")
	}
	if err := run([]string{"-trace", filepath.Join(path, "nope", "out.json")}, &out); err == nil {
		t.Error("uncreatable trace path accepted")
	}
}

func TestRunDebugAddr(t *testing.T) {
	var out strings.Builder
	// No -serve: the server closes as soon as the run completes; the test
	// only pins that the address line and the final summary render.
	if err := run([]string{"-debug-addr", "127.0.0.1:0", "-ops", "2000", "-procs", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"introspection: http://127.0.0.1:", "run complete", "ops=2000"} {
		if !strings.Contains(got, want) {
			t.Errorf("debug-addr output missing %q:\n%s", want, got)
		}
	}
	if err := run([]string{"-debug-addr", "256.0.0.1:bad"}, &out); err == nil {
		t.Error("unbindable debug address accepted")
	}
}
