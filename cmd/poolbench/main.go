// Command poolbench regenerates every table and figure in the paper's
// evaluation section on the simulated Butterfly.
//
// Usage:
//
//	poolbench -exp fig2                 # one experiment
//	poolbench -exp all                  # everything (docs/EXPERIMENTS.md catalog)
//	poolbench -exp fig7 -trials 3       # faster, noisier
//	poolbench -exp app -depth 2         # smaller game tree
//	poolbench -exp policy -csv          # steal-policy sweep + CSV
//	poolbench -exp locality -csv        # victim orders under clustered delays
//	poolbench -exp hier -csv            # hierarchical cluster-first stealing
//	poolbench -exp keyedloc -csv        # keyed sweep orders on clusters
//	poolbench -exp trace -csv           # controller trajectories + event density
//	poolbench -exp tenants -csv         # open-loop multi-tenant tail latency
//	poolbench -exp chaos -csv           # failure injection: throughput dip & recovery
//	poolbench -trace out.json           # flight-recorder dump (chrome://tracing)
//	poolbench -debug-addr :6060         # live run with pprof/expvar//trace
//
// Experiments: fig2, fig3, fig4, fig5, fig6, fig7, algos, arrange, delay,
// steal, roles, burst, policy, locality, hier, keyedloc, trace, tenants,
// chaos, app, all.
// See docs/EXPERIMENTS.md for what each reproduces and its expected shape,
// and docs/OBSERVABILITY.md for the flight recorder and the live
// introspection endpoints.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pools/internal/harness"
	"pools/internal/introspect"
	"pools/internal/numa"
	"pools/internal/search"
	"pools/internal/trace"
	"pools/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "poolbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("poolbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: fig2|fig3|fig4|fig5|fig6|fig7|algos|arrange|delay|steal|roles|burst|policy|locality|hier|keyedloc|trace|tenants|chaos|app|all")
	trials := fs.Int("trials", workload.PaperTrials, "trials averaged per data point")
	seed := fs.Uint64("seed", 1989, "master seed")
	ops := fs.Int("ops", workload.PaperTotalOps, "operations per trial")
	fill := fs.Int("fill", 0, "initial pool elements (0 = experiment default: the paper's 320, except the thin-fill tenants sweep)")
	procs := fs.Int("procs", workload.PaperProcs, "processors/segments")
	depth := fs.Int("depth", 3, "tic-tac-toe expansion depth (3 = paper's 249,984 positions)")
	csv := fs.Bool("csv", false, "append machine-readable CSV for fig2, fig7, burst, and policy")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON dump of a seeded flight-recorder run to this file and exit")
	debugAddr := fs.String("debug-addr", "", "serve live introspection (pprof, expvar, /stats, /trace) on this address while a wall-clock trial runs, then exit")
	serveFor := fs.Duration("serve", 0, "with -debug-addr: keep serving this long after the run completes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := harness.Config{Trials: *trials, Seed: *seed, Ops: *ops, Fill: *fill, Procs: *procs}

	if *tracePath != "" {
		return writeTrace(cfg, *tracePath, out)
	}
	if *debugAddr != "" {
		return liveServe(cfg, *debugAddr, *serveFor, out)
	}

	want := strings.ToLower(*exp)
	ran := false
	for _, e := range experiments {
		if want != "all" && want != e.name {
			continue
		}
		ran = true
		fmt.Fprintf(out, "## %s — %s\n\n", e.name, e.title)
		fmt.Fprintln(out, e.run(cfg, *depth, *csv))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}

// writeTrace runs the seeded flight-recorder trial (the same clustered
// burst configuration as -exp trace) and writes its Chrome trace-event
// JSON to path, for chrome://tracing / Perfetto. Deterministic for a
// given -seed/-procs/-ops, which is what lets CI validate the dump
// against a schema (make trace-smoke).
func writeTrace(cfg harness.Config, path string, out io.Writer) error {
	res := harness.EventTraceRun(cfg, search.Tree, 5, 1)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.ChromeJSON(f, res.Timelines); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	events := 0
	for _, tl := range res.Timelines {
		events += len(tl.Events)
	}
	fmt.Fprintf(out, "wrote %s: %d handles, %d events, %d dropped (load in chrome://tracing or Perfetto)\n",
		path, len(res.Timelines), events, res.Dropped)
	return nil
}

// liveServe starts one wall-clock trial on the real pool with the flight
// recorder attached, serves the introspection endpoints while it runs,
// and reports the final stats. The bound address is printed first so
// scripts can pass :0 and scrape the real port.
func liveServe(cfg harness.Config, addr string, keep time.Duration, out io.Writer) error {
	fill := cfg.Fill
	if fill == 0 {
		fill = workload.PaperInitialElements
	}
	live := harness.StartLive(harness.RealRunConfig{
		Workload: workload.Config{
			Procs:           cfg.Procs,
			Model:           workload.RandomOps,
			AddFraction:     0.5,
			TotalOps:        cfg.Ops,
			InitialElements: fill,
		},
		Search:   search.Tree,
		Seed:     cfg.Seed,
		Topology: numa.Clusters{Size: harness.LocalityClusterSize},
		TraceBuf: harness.EventTraceBuf,
	})
	srv, err := introspect.Serve(addr, live)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(out, "introspection: http://%s\n", srv.Addr)
	res, err := live.Result()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "run complete in %v: %s\n", res.Elapsed.Round(time.Millisecond), res.Stats.Summary())
	if keep > 0 {
		fmt.Fprintf(out, "serving for another %v\n", keep)
		time.Sleep(keep)
	}
	return nil
}

type experiment struct {
	name  string
	title string
	// run renders the experiment; with csv set, experiments that have a
	// machine-readable form append it (computing the sweep only once).
	run func(cfg harness.Config, depth int, csv bool) string
}

var experiments = []experiment{
	{"fig2", "average operation time vs job mix (tree search)", func(cfg harness.Config, _ int, csv bool) string {
		r := harness.Fig2(cfg)
		if csv {
			return r.Render() + "\n" + r.CSV()
		}
		return r.Render()
	}},
	{"fig3", "segment sizes over time: linear search, contiguous producers", func(cfg harness.Config, _ int, _ bool) string {
		return harness.FigTrace(cfg, "Figure 3", search.Linear, workload.Contiguous, 5).Render()
	}},
	{"fig4", "segment sizes over time: linear search, balanced producers", func(cfg harness.Config, _ int, _ bool) string {
		return harness.FigTrace(cfg, "Figure 4", search.Linear, workload.Balanced, 5).Render()
	}},
	{"fig5", "segment sizes over time: tree search, contiguous producers", func(cfg harness.Config, _ int, _ bool) string {
		return harness.FigTrace(cfg, "Figure 5", search.Tree, workload.Contiguous, 5).Render()
	}},
	{"fig6", "segment sizes over time: tree search, balanced producers", func(cfg harness.Config, _ int, _ bool) string {
		return harness.FigTrace(cfg, "Figure 6", search.Tree, workload.Balanced, 5).Render()
	}},
	{"fig7", "elements stolen per steal vs producers (tree search, errata orientation)", func(cfg harness.Config, _ int, csv bool) string {
		r := harness.Fig7(cfg)
		if csv {
			return r.Render() + "\n" + r.CSV()
		}
		return r.Render()
	}},
	{"algos", "Section 4.3 algorithm comparison", func(cfg harness.Config, _ int, _ bool) string {
		return harness.RenderAlgoCompare(harness.AlgoCompare(cfg))
	}},
	{"arrange", "Section 4.2 contiguous vs balanced producers", func(cfg harness.Config, _ int, _ bool) string {
		var b strings.Builder
		for _, kind := range search.Kinds() {
			b.WriteString(harness.RenderArrangement(harness.ArrangementCompare(cfg, kind, 5)))
			b.WriteByte('\n')
		}
		return b.String()
	}},
	{"delay", "Section 4.3 remote-delay sweep", func(cfg harness.Config, _ int, _ bool) string {
		return harness.RenderDelaySweep(harness.DelaySweep(cfg))
	}},
	{"steal", "steal-half vs steal-one ablation", func(cfg harness.Config, _ int, _ bool) string {
		return harness.RenderStealPolicy(harness.StealPolicyAblation(cfg))
	}},
	{"roles", "dynamic producer roles extension (Section 3.3)", func(cfg harness.Config, _ int, _ bool) string {
		return harness.RenderDynamicRoles(harness.DynamicRoles(cfg))
	}},
	{"burst", "batch operations: per-element time vs batch size (burst workload)", func(cfg harness.Config, _ int, csv bool) string {
		rows := harness.BurstSweep(cfg, search.Tree, 5, harness.BurstBatchSweep())
		if csv {
			return harness.RenderBurst(search.Tree, rows) + "\n" + harness.BurstCSV(rows)
		}
		return harness.RenderBurst(search.Tree, rows)
	}},
	{"policy", "steal/placement policy sweep: half vs one vs proportional vs adaptive (burst + fluctuating workloads)", func(cfg harness.Config, _ int, csv bool) string {
		rows := harness.PolicySweep(cfg, search.Tree, 5, harness.BurstBatchSweep())
		fluct := harness.PolicyFluctuate(cfg, search.Tree, 5, 16, []int{0, 100, 25})
		out := harness.RenderPolicy(search.Tree, rows) + "\n" + harness.RenderPolicyFluct(16, fluct)
		if csv {
			out += "\n" + harness.PolicyCSV(rows) + "\n" + harness.PolicyFluctCSV(fluct)
		}
		return out
	}},
	{"locality", "locality-aware victim order vs the blind searches under clustered remote delays", func(cfg harness.Config, _ int, csv bool) string {
		rows := harness.LocalitySweep(cfg, harness.LocalityScales())
		out := harness.RenderLocality(rows)
		if csv {
			out += "\n" + harness.LocalityCSV(rows)
		}
		return out
	}},
	{"hier", "hierarchical cluster-first stealing vs flat and locality orders (cross-cluster probe fraction; two-level and three-level topologies)", func(cfg harness.Config, _ int, csv bool) string {
		rows := harness.HierSweep(cfg, harness.LocalityScales())
		out := harness.RenderHier(rows)
		deep := harness.HierDeepSweep(cfg, harness.LocalityScales())
		out += "\n" + harness.RenderHierDeep(deep)
		if csv {
			out += "\n" + harness.HierCSV(rows)
			out += "\n" + harness.HierCSV(deep)
		}
		return out
	}},
	{"keyedloc", "keyed pool sweep orders on a clustered topology (ring vs locality vs hierarchical rank)", func(cfg harness.Config, _ int, csv bool) string {
		rows := harness.KeyedLocalitySweep(cfg, harness.LocalityScales())
		out := harness.RenderKeyedLoc(rows)
		if csv {
			out += "\n" + harness.KeyedLocCSV(rows)
		}
		return out
	}},
	{"trace", "controller trajectories & flight-recorder event density per handle over virtual time", func(cfg harness.Config, _ int, csv bool) string {
		res := harness.ControlTraceRun(cfg, search.Tree, 5, 1)
		out := harness.RenderControlTrace(res)
		ev := harness.EventTraceRun(cfg, search.Tree, 5, 1)
		out += "\n" + harness.RenderEventTrace(ev)
		if csv {
			out += "\n" + harness.ControlTraceCSV(res)
			out += "\n" + harness.EventTraceCSV(ev)
		}
		return out
	}},
	{"tenants", "open-loop multi-tenant arrivals: per-tenant sojourn percentiles and steal interference", func(cfg harness.Config, _ int, csv bool) string {
		rows := harness.TenantSweep(cfg, harness.DefaultTenantCounts(), harness.DefaultTenantSkews())
		out := harness.RenderTenants(rows)
		if csv {
			out += "\n" + harness.TenantsCSV(rows)
		}
		return out
	}},
	{"chaos", "failure injection: throughput dip and recovery under kill/revive churn", func(cfg harness.Config, _ int, csv bool) string {
		rows := harness.ChaosSweep(cfg, search.Tree, harness.DefaultChaosSchedules())
		out := harness.RenderChaos(search.Tree, rows)
		if csv {
			out += "\n" + harness.ChaosCSV(rows)
		}
		return out
	}},
	{"app", "Section 4.4 tic-tac-toe work-list comparison", func(cfg harness.Config, depth int, _ bool) string {
		rows := harness.App(cfg, harness.DefaultAppCosts(), depth,
			[]int{1, 2, 4, 8, 16}, harness.AppImpls())
		return harness.RenderApp(rows)
	}},
}
