// Command tictactoe runs the paper's application study directly: parallel
// 3D tic-tac-toe minimax with a selectable work list, in either simulated
// (virtual-time Butterfly) or real (goroutines + wall clock) mode.
//
// Usage:
//
//	tictactoe -mode sim  -impl pool-linear -procs 16 -depth 3
//	tictactoe -mode real -impl global-stack -procs 8 -depth 2
//	tictactoe -mode play -depth 2       # print the engine's opening move
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"pools/internal/baseline"
	"pools/internal/core"
	"pools/internal/harness"
	"pools/internal/search"
	"pools/internal/ttt"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tictactoe:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tictactoe", flag.ContinueOnError)
	mode := fs.String("mode", "sim", "sim | real | play")
	impl := fs.String("impl", "pool-linear", "global-stack | pool-linear | pool-random | pool-tree")
	procs := fs.Int("procs", 16, "processors (sim) / workers (real)")
	depth := fs.Int("depth", 3, "expansion depth (3 = 249,984 positions)")
	seed := fs.Uint64("seed", 1989, "seed for the random search algorithm")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var board ttt.Board
	switch *mode {
	case "play":
		start := time.Now()
		move, value := ttt.BestMove(board, ttt.X, *depth)
		x, y, z := ttt.Coords(move)
		fmt.Printf("best opening move for X at depth %d: cell %d (x=%d y=%d z=%d), value %d [%v]\n",
			*depth, move, x, y, z, value, time.Since(start).Round(time.Millisecond))
		return nil

	case "sim":
		ai, err := parseImpl(*impl)
		if err != nil {
			return err
		}
		rows := harness.App(harness.Config{Seed: *seed}, harness.DefaultAppCosts(), *depth,
			[]int{1, *procs}, []harness.AppImpl{ai})
		fmt.Println(harness.RenderApp(rows))
		return nil

	case "real":
		return runReal(*impl, *procs, *depth, *seed, board)

	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func parseImpl(name string) (harness.AppImpl, error) {
	for _, i := range harness.AppImpls() {
		if i.String() == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("unknown implementation %q", name)
}

// poolSource adapts a core.Handle to ttt.Source.
type poolSource struct{ h *core.Handle[*ttt.Node] }

func (p poolSource) Put(n *ttt.Node)        { p.h.Put(n) }
func (p poolSource) Get() (*ttt.Node, bool) { return p.h.Get() }

// runReal executes the expansion with real goroutines and reports wall
// time. On a single-core host this measures overhead, not speedup; the
// simulator mode reproduces the paper's speedup figures (see DESIGN.md).
func runReal(impl string, workers, depth int, seed uint64, board ttt.Board) error {
	wantValue, wantLeaves := ttt.Minimax(board, ttt.X, depth)
	start := time.Now()
	var eng *ttt.Engine
	sources := make([]ttt.Source, workers)
	var cleanup func(i int)

	switch impl {
	case "global-stack":
		stack := baseline.NewGlobalStack[*ttt.Node]()
		for i := range sources {
			sources[i] = stack
		}
		cleanup = func(int) {}
		eng = ttt.NewEngine(board, ttt.X, depth, stack)
	case "pool-linear", "pool-random", "pool-tree":
		kind := map[string]search.Kind{
			"pool-linear": search.Linear, "pool-random": search.Random, "pool-tree": search.Tree,
		}[impl]
		pool, err := core.New[*ttt.Node](core.Options{Segments: workers, Search: kind, Seed: seed})
		if err != nil {
			return err
		}
		for i := range sources {
			pool.Handle(i).Register()
			sources[i] = poolSource{pool.Handle(i)}
		}
		cleanup = func(i int) { pool.Handle(i).Close() }
		eng = ttt.NewEngine(board, ttt.X, depth, sources[0])
	default:
		return fmt.Errorf("unknown implementation %q", impl)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for !eng.Done() {
				eng.Step(sources[id])
			}
			cleanup(id)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	status := "ok"
	if eng.RootValue() != wantValue || eng.Evaluated() != wantLeaves {
		status = "MISMATCH vs sequential minimax"
	}
	fmt.Printf("impl=%s workers=%d depth=%d positions=%d value=%d wall=%v GOMAXPROCS=%d [%s]\n",
		impl, workers, depth, eng.Evaluated(), eng.RootValue(),
		elapsed.Round(time.Millisecond), runtime.GOMAXPROCS(0), status)
	return nil
}
