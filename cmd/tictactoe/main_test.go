package main

import "testing"

func TestPlayMode(t *testing.T) {
	if err := run([]string{"-mode", "play", "-depth", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestSimMode(t *testing.T) {
	if err := run([]string{"-mode", "sim", "-impl", "pool-linear", "-procs", "4", "-depth", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-mode", "sim", "-impl", "global-stack", "-procs", "2", "-depth", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRealMode(t *testing.T) {
	for _, impl := range []string{"global-stack", "pool-linear", "pool-random", "pool-tree"} {
		if err := run([]string{"-mode", "real", "-impl", impl, "-procs", "4", "-depth", "1"}); err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
	}
}

func TestBadInputs(t *testing.T) {
	cases := [][]string{
		{"-mode", "nope"},
		{"-mode", "sim", "-impl", "nope"},
		{"-mode", "real", "-impl", "nope"},
		{"-bogus"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestParseImpl(t *testing.T) {
	if _, err := parseImpl("pool-tree"); err != nil {
		t.Fatal(err)
	}
	if _, err := parseImpl("zzz"); err == nil {
		t.Fatal("bad impl accepted")
	}
}
