package pools_test

import (
	"errors"
	"sync"
	"testing"

	"pools"
)

func TestPublicAPIQuickstart(t *testing.T) {
	p, err := pools.New[string](pools.Options{Segments: 4, Search: pools.SearchLinear})
	if err != nil {
		t.Fatal(err)
	}
	h := p.Handle(0)
	h.Put("a")
	h.Put("b")
	if v, ok := h.Get(); !ok || v != "b" {
		t.Fatalf("Get = (%q,%v)", v, ok)
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestPublicAPIAllSearchKinds(t *testing.T) {
	for _, kind := range []pools.SearchKind{pools.SearchLinear, pools.SearchRandom, pools.SearchTree} {
		p, err := pools.New[int](pools.Options{Segments: 8, Search: kind, Seed: 42})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		producer := p.Handle(7)
		for i := 0; i < 16; i++ {
			producer.Put(i)
		}
		consumer := p.Handle(0)
		got := 0
		for {
			if _, ok := consumer.Get(); !ok {
				break
			}
			got++
		}
		// The consumer steals everything the producer left behind.
		if got != 16 {
			t.Fatalf("%v: consumed %d, want 16", kind, got)
		}
	}
}

func TestPublicAPIBadOptions(t *testing.T) {
	if _, err := pools.New[int](pools.Options{}); !errors.Is(err, pools.ErrBadOptions) {
		t.Fatalf("err = %v, want ErrBadOptions", err)
	}
}

func TestPublicAPIStealPolicies(t *testing.T) {
	if pools.StealHalf.String() != "steal-half" || pools.StealOne.String() != "steal-one" {
		t.Fatal("policy aliases broken")
	}
}

func TestPublicAPIPolicySet(t *testing.T) {
	// Configure a proportional steal through the policy layer: a GetN(4)
	// against a remote reserve of 40 steals exactly the 4 it asked for.
	p, err := pools.New[int](pools.Options{
		Segments: 4,
		Policies: pools.PolicySet{Steal: pools.ProportionalSteal{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	producer := p.Handle(2)
	producer.PutAll(make([]int, 40))
	if out := p.Handle(0).GetN(4); len(out) != 4 {
		t.Fatalf("GetN(4) = %d elements", len(out))
	}
	if got := p.SegmentLen(0); got != 0 {
		t.Fatalf("proportional steal parked %d locally, want 0", got)
	}

	// The named registry builds every advertised policy.
	for _, name := range []string{"half", "one", "proportional", "adaptive"} {
		set, err := pools.PolicyByName(name)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		if _, err := pools.New[int](pools.Options{Segments: 2, Policies: set}); err != nil {
			t.Fatalf("New with %q policies: %v", name, err)
		}
	}
	if _, err := pools.PolicyByName("bogus"); err == nil {
		t.Fatal("PolicyByName(bogus) succeeded")
	}
	if pools.NewAdaptivePolicy() == pools.NewAdaptivePolicy() {
		t.Fatal("NewAdaptivePolicy returned a shared instance")
	}

	// Every shipped placement and the victim order are reachable through
	// the public facade.
	p3, err := pools.New[int](pools.Options{
		Segments: 2,
		Policies: pools.PolicySet{
			Steal: pools.StealHalfAmount{},
			Order: pools.SearchOrder{Kind: pools.SearchTree},
			Place: pools.GiftHalfPlacement{},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p3.Handle(0).Put(1)
	if v, ok := p3.Handle(1).Get(); !ok || v != 1 {
		t.Fatalf("Get through policy-configured pool = (%d,%v)", v, ok)
	}
	for _, place := range []pools.Placement{
		pools.LocalPlacement{}, pools.GiftOnePlacement{}, pools.GiftAllPlacement{},
	} {
		if _, err := pools.New[int](pools.Options{
			Segments: 2,
			Policies: pools.PolicySet{Place: place},
		}); err != nil {
			t.Fatalf("New with placement %s: %v", place.Name(), err)
		}
	}
}

func TestPublicAPIConcurrentWorkers(t *testing.T) {
	const workers = 4
	p, err := pools.New[int](pools.Options{Segments: workers, Search: pools.SearchTree})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workers; i++ {
		p.Handle(i).Register()
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := p.Handle(id)
			for i := 0; i < 500; i++ {
				h.Put(i)
			}
			count := 0
			for {
				if _, ok := h.Get(); !ok {
					break
				}
				count++
			}
			h.Close()
			mu.Lock()
			total += count
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	total += p.Len()
	if total != workers*500 {
		t.Fatalf("conservation broken: %d of %d accounted", total, workers*500)
	}
}

func TestPublicKeyedAPI(t *testing.T) {
	p, err := pools.NewKeyed[string, int](pools.KeyedOptions{Segments: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := p.Handle(0)
	h.Put("red", 1)
	p.Handle(2).Put("blue", 9)
	if v, ok := h.Get("blue"); !ok || v != 9 {
		t.Fatalf("keyed steal = (%d,%v)", v, ok)
	}
	if k, v, ok := h.GetAny(); !ok || k != "red" || v != 1 {
		t.Fatalf("GetAny = (%s,%d,%v)", k, v, ok)
	}
}

func TestPublicAPIBatchOps(t *testing.T) {
	p, err := pools.New[int](pools.Options{Segments: 4})
	if err != nil {
		t.Fatal(err)
	}
	producer := p.Handle(2)
	consumer := p.Handle(0)
	producer.PutAll([]int{1, 2, 3, 4, 5, 6, 7, 8})
	// Dry local segment: the GetN surfaces the steal-half batch (4 of 8).
	if out := consumer.GetN(8); len(out) != 4 {
		t.Fatalf("GetN returned %d elements, want the stolen half (4)", len(out))
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d, want 4", p.Len())
	}

	kp, err := pools.NewKeyed[string, int](pools.KeyedOptions{Segments: 4})
	if err != nil {
		t.Fatal(err)
	}
	kp.Handle(1).PutAll("k", []int{1, 2, 3})
	if out := kp.Handle(1).GetN("k", 10); len(out) != 3 {
		t.Fatalf("keyed GetN returned %d elements, want 3", len(out))
	}
	if out := kp.Handle(1).GetN("missing", 10); out != nil {
		t.Fatalf("keyed GetN of absent class = %v, want nil", out)
	}
}
