module pools

go 1.24
