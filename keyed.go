package pools

import "pools/internal/keyed"

// KeyedPool extends the concurrent pool to distinguishable elements — the
// paper's second Section 5 open question. Elements carry a comparable key
// class; removals may request a specific class (Get) or any class
// (GetAny). Batch operations mirror the plain pool: PutAll(key, items)
// adds a slice under one lock, GetN(key, max) drains or steals a batch.
// Locality and steal-half behaviour match the plain pool; see the
// internal/keyed package documentation for the emptiness semantics.
type KeyedPool[K comparable, V any] = keyed.Pool[K, V]

// KeyedHandle is one process's attachment to a KeyedPool segment.
type KeyedHandle[K comparable, V any] = keyed.Handle[K, V]

// KeyedOptions configures a KeyedPool.
type KeyedOptions = keyed.Options

// NewKeyed creates a keyed pool.
func NewKeyed[K comparable, V any](opts KeyedOptions) (*KeyedPool[K, V], error) {
	return keyed.New[K, V](opts)
}
