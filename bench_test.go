// Package pools_test holds the top-level benchmark harness: one benchmark
// per table and figure in the paper's evaluation section, plus
// microbenchmarks of the real concurrent pool. Each figure benchmark runs
// the corresponding simulated experiment and reports the paper's headline
// measurement as a custom metric, so `go test -bench .` regenerates the
// numbers EXPERIMENTS.md records (at reduced trial counts; cmd/poolbench
// runs the full ten-trial protocol).
package pools_test

import (
	"fmt"
	"sync"
	"testing"

	"pools"
	"pools/internal/harness"
	"pools/internal/search"
	"pools/internal/workload"
)

// benchCfg runs each sweep point with fewer trials than the paper's ten so
// the full bench suite stays in CI range; shapes are unchanged.
func benchCfg() harness.Config {
	return harness.Config{Trials: 2, Seed: 1989}
}

// BenchmarkFig2 regenerates Figure 2 (average operation time vs job mix,
// tree search, random vs producer/consumer models) and reports the
// sparse-mix and sufficient-mix operation times.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig2(benchCfg())
		b.ReportMetric(r.Random[2].AvgOpTime/1000, "sparse20%-ms/op")
		b.ReportMetric(r.Random[8].AvgOpTime/1000, "rich80%-ms/op")
		b.ReportMetric(r.PC[5].AvgOpTime/1000, "pc5-ms/op")
	}
}

// BenchmarkFig3Fig4 regenerates the linear-search segment traces
// (contiguous vs balanced producers) and reports how many producer
// segments were ever stolen from in each arrangement.
func BenchmarkFig3Fig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		unbal := harness.FigTrace(benchCfg(), "Figure 3", search.Linear, workload.Contiguous, 5)
		bal := harness.FigTrace(benchCfg(), "Figure 4", search.Linear, workload.Balanced, 5)
		b.ReportMetric(float64(unbal.ProducersDrained()), "producers-drained-contig")
		b.ReportMetric(float64(bal.ProducersDrained()), "producers-drained-balanced")
	}
}

// BenchmarkFig5Fig6 regenerates the tree-search segment traces.
func BenchmarkFig5Fig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		unbal := harness.FigTrace(benchCfg(), "Figure 5", search.Tree, workload.Contiguous, 5)
		bal := harness.FigTrace(benchCfg(), "Figure 6", search.Tree, workload.Balanced, 5)
		b.ReportMetric(float64(unbal.ProducersDrained()), "producers-drained-contig")
		b.ReportMetric(float64(bal.ProducersDrained()), "producers-drained-balanced")
	}
}

// BenchmarkFig7 regenerates Figure 7 (elements stolen per steal vs
// producer count, errata orientation) and reports the balanced and
// unbalanced means over the mid-range producer counts.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig7(benchCfg())
		var bal, unbal float64
		for k := 6; k <= 14; k++ {
			bal += r.Balanced[k].ElementsStolen / 9
			unbal += r.Unbalanced[k].ElementsStolen / 9
		}
		b.ReportMetric(bal, "balanced-stolen/steal")
		b.ReportMetric(unbal, "unbalanced-stolen/steal")
	}
}

// BenchmarkAlgos regenerates the Section 4.3 algorithm comparison and
// reports segments examined per steal for each algorithm at the sparse
// random mix (the paper's "tree examines many fewer segments").
func BenchmarkAlgos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.AlgoCompare(benchCfg())
		for _, r := range rows {
			if r.Scenario != "random 30% adds (sparse)" {
				continue
			}
			b.ReportMetric(r.Point.SegmentsExamined, r.Kind.String()+"-segs/steal")
			b.ReportMetric(r.Point.AvgOpTime/1000, r.Kind.String()+"-ms/op")
		}
	}
}

// BenchmarkDelaySweep regenerates the Section 4.3 remote-delay sweep and
// reports the tree/best convergence ratio at zero and maximal delay.
func BenchmarkDelaySweep(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 1
	for i := 0; i < b.N; i++ {
		rows := harness.DelaySweep(cfg)
		ratio := func(r harness.DelayRow) float64 {
			best := r.Times[search.Linear]
			if r.Times[search.Random] < best {
				best = r.Times[search.Random]
			}
			if best == 0 {
				return 0
			}
			return r.Times[search.Tree] / best
		}
		b.ReportMetric(ratio(rows[0]), "tree/best-delay0")
		b.ReportMetric(ratio(rows[len(rows)-2]), "tree/best-delay100ms")
	}
}

// BenchmarkStealPolicy regenerates the steal-half vs steal-one ablation.
func BenchmarkStealPolicy(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 1
	for i := 0; i < b.N; i++ {
		rows := harness.StealPolicyAblation(cfg)
		for _, r := range rows {
			if r.Kind != search.Linear {
				continue
			}
			name := "half"
			if r.StealOne {
				name = "one"
			}
			b.ReportMetric(r.Point.StealsPerOp, "steal-"+name+"-steals/op")
		}
	}
}

// BenchmarkApp regenerates the Section 4.4 application study at depth 2
// (4032 positions; cmd/poolbench -exp app runs the paper's full depth 3)
// and reports the 16-processor speedups.
func BenchmarkApp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.App(harness.Config{Seed: 1989}, harness.DefaultAppCosts(), 2,
			[]int{1, 16}, harness.AppImpls())
		for _, r := range rows {
			if r.Procs == 16 {
				b.ReportMetric(r.Speedup, r.Impl.String()+"-speedup16")
			}
		}
	}
}

// --- Real concurrent pool microbenchmarks (wall clock) ---

// BenchmarkGetHotPath measures the allocation-free local fast path — the
// operation pair the 0 allocs/op contract covers (TestHotPathAllocFree
// enforces it; this benchmark reports the number under the regression
// gate alongside the time). Stats and topology accounting are on, the
// costliest configuration the contract still holds for.
func BenchmarkGetHotPath(b *testing.B) {
	p, err := pools.New[int](pools.Options{
		Segments: 8, CollectStats: true, Topology: pools.ClusterTopology{Size: 2},
	})
	if err != nil {
		b.Fatal(err)
	}
	h := p.Handle(0)
	h.Put(0)
	h.Get()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Put(i)
		if _, ok := h.Get(); !ok {
			b.Fatal("local Get missed")
		}
	}
}

// BenchmarkGetHotPathTraced measures the stats-on fast path with the
// flight recorder attached: identical loop to BenchmarkGetHotPath, so
// the gap between the two is the per-event recording cost (a clock read,
// a mutex, and a ring store — still 0 allocs/op). Pinned in
// BENCH_BASELINE.json so recorder overhead can't creep.
func BenchmarkGetHotPathTraced(b *testing.B) {
	p, err := pools.New[int](pools.Options{
		Segments: 8, CollectStats: true, Topology: pools.ClusterTopology{Size: 2},
		TraceBuf: 1024,
	})
	if err != nil {
		b.Fatal(err)
	}
	h := p.Handle(0)
	h.Put(0)
	h.Get()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Put(i)
		if _, ok := h.Get(); !ok {
			b.Fatal("local Get missed")
		}
	}
	b.StopTimer()
	if tls := p.Timelines(); len(tls) == 0 || len(tls[0].Events) == 0 {
		b.Fatal("traced benchmark recorded no events")
	}
}

// BenchmarkGetHotPathHist measures the same stats-on fast path while
// confirming the per-op latency histogram is populated: identical loop to
// BenchmarkGetHotPath, so any gap between the two is the histogram's
// recording cost (three atomic adds — and still 0 allocs/op; percentile
// math happens only at report time, outside the loop).
func BenchmarkGetHotPathHist(b *testing.B) {
	p, err := pools.New[int](pools.Options{
		Segments: 8, CollectStats: true, Topology: pools.ClusterTopology{Size: 2},
	})
	if err != nil {
		b.Fatal(err)
	}
	h := p.Handle(0)
	h.Put(0)
	h.Get()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Put(i)
		if _, ok := h.Get(); !ok {
			b.Fatal("local Get missed")
		}
	}
	b.StopTimer()
	// Sub-µs operations all land in the histogram's lowest bucket (stats
	// record whole µs), so only the recorded count is asserted here.
	if st := p.Stats(); st.OpLat.N() == 0 {
		b.Fatal("no per-op latencies recorded")
	}
}

// BenchmarkPoolLocalPutGet measures the uncontended local fast path.
func BenchmarkPoolLocalPutGet(b *testing.B) {
	for _, kind := range search.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			p, err := pools.New[int](pools.Options{Segments: 4, Search: kind})
			if err != nil {
				b.Fatal(err)
			}
			h := p.Handle(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Put(i)
				h.Get()
			}
		})
	}
}

// BenchmarkBatchPutGet compares the batch operations against an
// equivalent loop of single-element operations on the same workload: move
// `batch` elements into the local segment and back out. At batch >= 8 the
// one-lock batch path must win — the amortization the tentpole claims.
func BenchmarkBatchPutGet(b *testing.B) {
	for _, batch := range []int{1, 8, 64, 512} {
		items := make([]int, batch)
		b.Run(fmt.Sprintf("loop-%d", batch), func(b *testing.B) {
			p, err := pools.New[int](pools.Options{Segments: 4})
			if err != nil {
				b.Fatal(err)
			}
			h := p.Handle(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, v := range items {
					h.Put(v)
				}
				for j := 0; j < batch; j++ {
					h.Get()
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/element")
		})
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			p, err := pools.New[int](pools.Options{Segments: 4})
			if err != nil {
				b.Fatal(err)
			}
			h := p.Handle(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.PutAll(items)
				h.GetN(batch)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/element")
		})
	}
}

// BenchmarkBatchSteal measures GetN across the steal path: the consumer's
// segment is always dry, so every batch surfaces a steal-half transfer,
// versus draining the same transfer one Get at a time.
func BenchmarkBatchSteal(b *testing.B) {
	const batch = 16
	items := make([]int, 2*batch)
	b.Run("loop", func(b *testing.B) {
		p, err := pools.New[int](pools.Options{Segments: 16, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		producer := p.Handle(9)
		consumer := p.Handle(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			producer.PutAll(items)
			for j := 0; j < 2*batch; j++ {
				if _, ok := consumer.Get(); !ok {
					b.Fatal("get failed")
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		p, err := pools.New[int](pools.Options{Segments: 16, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		producer := p.Handle(9)
		consumer := p.Handle(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			producer.PutAll(items)
			drained := 0
			for drained < 2*batch {
				out := consumer.GetN(2 * batch)
				if len(out) == 0 {
					b.Fatal("GetN failed")
				}
				drained += len(out)
			}
		}
	})
}

// BenchmarkBurstSim regenerates the burst sweep's endpoints on the
// simulated Butterfly and reports the per-element amortization ratio.
func BenchmarkBurstSim(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 1
	for i := 0; i < b.N; i++ {
		rows := harness.BurstSweep(cfg, search.Tree, 5, []int{1, 16})
		b.ReportMetric(rows[0].Point.PerElementTime, "batch1-us/elem")
		b.ReportMetric(rows[1].Point.PerElementTime, "batch16-us/elem")
	}
}

// BenchmarkPoolSteal measures the steal path: the consumer's segment is
// always empty, so every Get searches and splits.
func BenchmarkPoolSteal(b *testing.B) {
	for _, kind := range search.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			p, err := pools.New[int](pools.Options{Segments: 16, Search: kind, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			producer := p.Handle(9)
			consumer := p.Handle(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				producer.Put(i)
				producer.Put(i)
				if _, ok := consumer.Get(); !ok {
					b.Fatal("steal failed")
				}
				consumer.Get() // drain what the steal brought along
			}
		})
	}
}

// BenchmarkPoolContended measures throughput with every segment's worker
// hammering the pool concurrently at a slightly-sufficient mix.
func BenchmarkPoolContended(b *testing.B) {
	for _, kind := range search.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			const workers = 8
			p, err := pools.New[int](pools.Options{Segments: workers, Search: kind, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < workers; i++ {
				p.Handle(i).Register()
			}
			perWorker := b.N/workers + 1
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					h := p.Handle(id)
					for i := 0; i < perWorker; i++ {
						if i%2 == 0 {
							h.Put(i)
						} else {
							h.Get()
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkTreeRounds compares the paper's locked round counters with the
// atomic-max variant (ablation noted in DESIGN.md).
func BenchmarkTreeRounds(b *testing.B) {
	for _, locked := range []bool{false, true} {
		name := "atomic"
		if locked {
			name = "locked"
		}
		b.Run(name, func(b *testing.B) {
			p, err := pools.New[int](pools.Options{
				Segments: 16, Search: pools.SearchTree, TreeLocking: locked,
			})
			if err != nil {
				b.Fatal(err)
			}
			producer := p.Handle(15)
			consumer := p.Handle(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				producer.Put(i)
				if _, ok := consumer.Get(); !ok {
					b.Fatal("get failed")
				}
			}
		})
	}
}

// BenchmarkDirectedAdds compares the Section 5 hint extension against the
// plain pool on a producer/consumer handoff loop.
func BenchmarkDirectedAdds(b *testing.B) {
	for _, directed := range []bool{false, true} {
		name := "off"
		if directed {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			p, err := pools.New[int](pools.Options{
				Segments: 4, Search: pools.SearchLinear, DirectedAdds: directed,
			})
			if err != nil {
				b.Fatal(err)
			}
			producer := p.Handle(2)
			consumer := p.Handle(0)
			consumer.Register()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				producer.Put(i)
				if _, ok := consumer.Get(); !ok {
					b.Fatal("get failed")
				}
			}
		})
	}
}

// BenchmarkKeyedPool measures the distinguishable-elements extension.
func BenchmarkKeyedPool(b *testing.B) {
	p, err := pools.NewKeyed[int, int](pools.KeyedOptions{Segments: 8})
	if err != nil {
		b.Fatal(err)
	}
	producer := p.Handle(5)
	consumer := p.Handle(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		producer.Put(i%4, i)
		if _, ok := consumer.Get(i % 4); !ok {
			b.Fatal("get failed")
		}
	}
}

// BenchmarkRealProtocol runs the paper's workload end-to-end on the real
// pool (wall clock) for each algorithm.
func BenchmarkRealProtocol(b *testing.B) {
	for _, kind := range search.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			wl := workload.Paper(workload.RandomOps)
			wl.AddFraction = 0.5
			wl.Procs = 8
			wl.TotalOps = 2000
			wl.InitialElements = 128
			for i := 0; i < b.N; i++ {
				if _, err := harness.RealRun(harness.RealRunConfig{
					Workload: wl, Search: kind, Seed: uint64(i),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
