// Package pools implements concurrent pools: unordered collections
// partitioned into per-process segments so that most operations touch
// only local state, with remote steal-half searches when a local segment
// runs dry. It is a full reproduction of the data structure evaluated in
//
//	David Kotz and Carla Schlatter Ellis, "Evaluation of Concurrent
//	Pools", Proc. 9th International Conference on Distributed Computing
//	Systems (ICDCS), 1989.
//
// Three steal-search algorithms are provided: Manber's tree search with
// round counters, linear (ring) search, and random search. The pool is a
// natural work list for dynamically created tasks — the paper's
// application study schedules a parallel game-tree search with one.
//
// # Quickstart
//
//	p, err := pools.New[Task](pools.Options{Segments: 8, Search: pools.SearchLinear})
//	if err != nil { ... }
//	h := p.Handle(workerID) // each worker owns one segment
//	h.Put(task)             // O(1), local
//	task, ok := h.Get()     // local pop, or steal half of a remote segment
//
// Get returns ok=false only when the pool is empty and no registered
// participant could be adding (the paper's livelock rule plus a staleness
// backstop), or the pool/handle is closed.
//
// # Batch operations
//
// Bursty producers and consumers should move elements in batches: PutAll
// places a whole slice under one segment-lock acquisition, and GetN drains
// up to max elements in one operation — on a dry local segment a
// steal-half already transfers a batch, and GetN returns that batch
// instead of one element at a time:
//
//	h.PutAll(tasks)          // k elements, one lock acquisition
//	batch := h.GetN(32)      // up to 32 elements; nil under Get's ok=false conditions
//
// The keyed pool mirrors the same pair as PutAll(key, items) and
// GetN(key, max). At batch sizes >= 8 the amortization is worth several
// times the per-element cost of the single-element loop (see
// BenchmarkBatchPutGet and the `poolbench -exp burst` sweep).
//
// # Policies
//
// Every tunable decision in the pool is a pluggable value on
// Options.Policies (a PolicySet): how many elements a steal transfers
// (StealAmount — the paper's steal-half, the steal-one ablation, a split
// proportional to the requester's batch, or an online-tuned adaptive
// fraction), which victims a search visits (VictimOrder, layered over the
// three search algorithms), where adds land (Placement — local, or gifted
// whole or split to hungry searchers through the directed-add mailboxes),
// and an optional Controller that retunes the steal fraction and batch
// size from live feedback:
//
//	set, _ := pools.PolicyByName("adaptive")
//	p, _ := pools.New[Task](pools.Options{Segments: 8, Policies: set})
//
// The zero PolicySet is the paper's configuration. The same sets drive
// the simulated Butterfly, so `poolbench -exp policy` measures exactly
// the policies this library executes.
//
// # Locality-aware policies
//
// On machines where "remote" is not one cost, three policies consult
// where things live instead of being blind to it. LocalityVictimOrder
// ranks steal victims by a CostModel (cheapest first, falling back to a
// paper algorithm when costs are victim-uniform); EmptiestPlacement
// probes segment sizes and lands adds on the emptiest segment; and the
// "per-handle" policy set gives every handle its own adaptive controller
// so a producer-heavy handle and a consumer-heavy one converge to
// different steal fractions:
//
//	costs := pools.ButterflyCosts().WithTopology(pools.ClusterTopology{Size: 4}).WithExtraDelay(1000)
//	p, _ := pools.New[Task](pools.Options{
//		Segments: 16,
//		Policies: pools.PolicySet{
//			Order: pools.LocalityVictimOrder{Model: costs},
//			Place: pools.EmptiestPlacement{},
//		},
//	})
//	set, _ := pools.PolicyByName("per-handle")
//
// On clustered machines two policies go further: HierarchicalVictimOrder
// exhausts the searcher's own cluster before escalating to the next hop
// ring (with an escalation threshold the adaptive controllers tune
// online), and NearestEmptiestPlacement weighs a segment's emptiness
// against the hop cost of reaching it. Setting Options.Topology makes the
// pool count cross-cluster probes in its stats:
//
//	topo := pools.ClusterTopology{Size: 4}
//	p, _ := pools.New[Task](pools.Options{
//		Segments: 16,
//		Topology: topo,
//		Policies: pools.PolicySet{
//			Order: pools.HierarchicalVictimOrder{Topo: topo},
//			Place: pools.NearestEmptiestPlacement{Model: costs},
//		},
//	})
//
// `poolbench -exp locality`, `-exp hier`, `-exp keyedloc`, and
// `-exp trace` measure these; see docs/EXPERIMENTS.md.
//
// The packages under internal/ hold the implementation, the simulated
// 16-processor Butterfly used to reproduce the paper's measurements, the
// experiment harness (cmd/poolbench regenerates every table and figure),
// and the tic-tac-toe application study (cmd/tictactoe).
// docs/ARCHITECTURE.md maps the packages and how a policy decision
// travels through both substrates.
package pools

import (
	"io"

	"pools/internal/core"
	"pools/internal/numa"
	"pools/internal/policy"
	"pools/internal/search"
	"pools/internal/trace"
)

// Pool is a concurrent pool of T. See core.Pool.
type Pool[T any] = core.Pool[T]

// Handle is one process's attachment to a pool segment. See core.Handle.
type Handle[T any] = core.Handle[T]

// Options configures a Pool. See core.Options.
type Options = core.Options

// StealPolicy selects how many elements a steal transfers.
//
// Deprecated: the enum covers only the paper's two original policies and
// is consulted only when Options.Policies.Steal is nil. Use
// Options.Policies (see PolicySet).
type StealPolicy = core.StealPolicy

// Steal policies: the paper's steal-half, and steal-one for comparison.
//
// Deprecated: see StealPolicy.
const (
	StealHalf = core.StealHalf
	StealOne  = core.StealOne
)

// PolicySet bundles the pool's pluggable decisions: steal amount, victim
// order, placement, and online control. See internal/policy for the
// catalog of implementations.
type PolicySet = policy.Set

// The four policy decision points. Custom implementations plug into a
// PolicySet alongside the built-ins.
type (
	// StealAmount decides how many elements a steal transfers.
	StealAmount = policy.StealAmount
	// VictimOrder decides which segments a search visits, in what order.
	VictimOrder = policy.VictimOrder
	// Placement decides how much of an added batch is gifted to hungry
	// searchers rather than kept local.
	Placement = policy.Placement
	// Controller retunes steal fraction and batch size from feedback.
	Controller = policy.Controller
)

// Built-in steal amounts and placements, re-exported for configuration
// literals like Options{Policies: PolicySet{Steal: ProportionalSteal{}}}.
type (
	// StealHalfAmount is the paper's steal-half (ceil(n/2)).
	StealHalfAmount = policy.Half
	// StealOneAmount is the steal-one ablation.
	StealOneAmount = policy.One
	// ProportionalSteal steals about Factor times the requester's batch.
	ProportionalSteal = policy.Proportional
	// AdaptiveSteal tunes its fraction online; see NewAdaptivePolicy.
	AdaptiveSteal = policy.Adaptive
	// GiftAllPlacement gifts whole batches to hungry searchers.
	GiftAllPlacement = policy.GiftAll
	// GiftHalfPlacement gifts half of each batch and keeps half local.
	GiftHalfPlacement = policy.GiftHalf
	// GiftOnePlacement gifts one element per hungry searcher.
	GiftOnePlacement = policy.GiftOne
	// LocalPlacement keeps every add in the adder's own segment.
	LocalPlacement = policy.Local
	// EmptiestPlacement probes segment sizes and lands each add on the
	// emptiest segment probed (gifting to hungry searchers first).
	EmptiestPlacement = policy.GiftToEmptiest
	// NearestEmptiestPlacement weighs a candidate segment's emptiness
	// against the hop cost of reaching it, keeping adds near on clustered
	// machines unless a farther segment is much emptier.
	NearestEmptiestPlacement = policy.GiftToNearestEmptiest
	// SearchOrder is the VictimOrder wrapping a search algorithm, e.g.
	// SearchOrder{Kind: SearchTree}.
	SearchOrder = policy.Order
	// LocalityVictimOrder ranks steal victims by expected access cost
	// under a CostModel, visiting near victims first.
	LocalityVictimOrder = policy.LocalityOrder
	// HierarchicalVictimOrder exhausts the searcher's own cluster —
	// repeatedly, under a tunable fruitless-probe threshold — before
	// escalating to the next hop ring of its Topology.
	HierarchicalVictimOrder = policy.HierarchicalOrder
	// PerHandleControl hands every pool handle its own independent
	// adaptive controller; see NewPerHandlePolicy.
	PerHandleControl = policy.PerHandle
	// TenantMap assigns each segment to a tenant; see EvenTenants.
	TenantMap = policy.TenantMap
	// TenantFairPlacement keeps a tenant's adds inside its own segment
	// block and arms the pool's steal-interference accounting (the
	// TenantSteals/ForeignSteals counters on its stats).
	TenantFairPlacement = policy.TenantFair
)

// EvenTenants partitions segments into contiguous equal blocks, one per
// tenant — the mapping behind the multi-tenant experiments (see
// docs/WORKLOADS.md). Pair it with TenantFairPlacement:
//
//	tm := pools.EvenTenants(16, 4)
//	p, _ := pools.New[Task](pools.Options{
//		Segments: 16, CollectStats: true,
//		Policies: pools.PolicySet{Place: pools.TenantFairPlacement{Map: tm}},
//	})
func EvenTenants(segments, tenants int) TenantMap { return policy.EvenTenants(segments, tenants) }

// CostModel maps memory accesses to time by access kind, accessor, and
// home processor; see internal/numa. Build one with ButterflyCosts and
// shape it with WithExtraDelay / WithTopology.
type CostModel = numa.CostModel

// Topology assigns hop distances to processor pairs. Set one on
// Options.Topology to classify remote probes as near or cross-cluster in
// the pool's stats (and to scale an active Delayer's busy-waits by hop
// distance), and on HierarchicalVictimOrder to define its rings.
type Topology = numa.Topology

// UniformTopology is the flat switch network: every remote pair one hop.
type UniformTopology = numa.Uniform

// ClusterTopology groups processors into fixed-size clusters: remote
// references inside a cluster are near (one hop), across clusters far.
type ClusterTopology = numa.Clusters

// ButterflyCosts returns the cost model calibrated to the paper's
// measured BBN Butterfly (70 µs local add, 110 µs local remove, remote
// about 4x local).
func ButterflyCosts() CostModel { return numa.ButterflyCosts() }

// NewAdaptivePolicy returns a fresh adaptive steal policy/controller pair
// (one per pool; adaptive state must not be shared between pools).
func NewAdaptivePolicy() *AdaptiveSteal { return policy.NewAdaptive() }

// NewPerHandlePolicy returns a fresh per-handle adaptive policy: each
// pool handle spawns its own controller from it (one per pool, like
// NewAdaptivePolicy).
func NewPerHandlePolicy() *PerHandleControl { return policy.NewPerHandle() }

// PolicyByName returns a fresh PolicySet for a steal-policy name: "half",
// "one", "proportional", "adaptive", or "per-handle".
func PolicyByName(name string) (PolicySet, error) { return policy.Named(name) }

// SearchKind selects the steal-search algorithm.
type SearchKind = search.Kind

// The three search algorithms the paper evaluates.
const (
	SearchLinear = search.Linear
	SearchRandom = search.Random
	SearchTree   = search.Tree
)

// Flight-recorder types, so callers can name what Options.TraceBuf turns
// on and Pool.Timelines/Pool.Tracer return. The recorder is a per-handle
// fixed-size ring of typed protocol events (probes, reserve/transfer
// edges, gifts, escalations, termination verdicts); recording is
// allocation-free and disabled entirely when TraceBuf is 0. See
// internal/trace and docs/OBSERVABILITY.md.
type (
	// TraceEvent is one recorded protocol event.
	TraceEvent = trace.Event
	// TraceKind identifies a TraceEvent's type (its String is the
	// snake_case name used in exports).
	TraceKind = trace.Kind
	// TraceTimeline is one handle's recorded history, oldest first.
	TraceTimeline = trace.Timeline
	// TraceRecorder is the per-handle ring recorder itself; safe to dump
	// while its handle keeps recording.
	TraceRecorder = trace.Recorder
)

// WriteChromeTrace exports recorded timelines as Chrome trace-event JSON
// — load the file in chrome://tracing or Perfetto; each handle renders
// as its own track with searches as slices and everything else as
// instants.
func WriteChromeTrace(w io.Writer, tls []TraceTimeline) error { return trace.ChromeJSON(w, tls) }

// WriteTraceCSV exports recorded timelines as a flat CSV event log
// (ts,handle,event,arg1,arg2), merged across handles by timestamp.
func WriteTraceCSV(w io.Writer, tls []TraceTimeline) error { return trace.WriteCSV(w, tls) }

// ErrBadOptions is returned by New for invalid configuration.
var ErrBadOptions = core.ErrBadOptions

// New creates a pool with the given options.
func New[T any](opts Options) (*Pool[T], error) {
	return core.New[T](opts)
}
